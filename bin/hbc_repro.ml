(* Command-line driver over the experiment harness: reproduce any of the
   paper's figures (4-16), list benchmarks, or run a single benchmark under a
   chosen executor. *)

open Cmdliner

let scale_arg =
  let doc = "Input-size multiplier (1.0 = documented defaults)." in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"S" ~doc)

let workers_arg =
  let doc = "Number of simulated cores (the paper uses 64)." in
  Arg.(value & opt int 64 & info [ "workers"; "w" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Simulation seed (runs are deterministic per seed)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let verbose_arg =
  let doc = "Log each simulation run to stderr as it starts." in
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc)

let trial_budget_arg =
  let doc =
    "Per-trial virtual-cycle watchdog budget: a trial whose simulation exceeds it aborts with a \
     structured timeout instead of livelocking the campaign."
  in
  Arg.(value & opt (some int) None & info [ "trial-budget" ] ~docv:"CYCLES" ~doc)

let wall_budget_arg =
  let doc = "Per-trial wall-clock guard in seconds, polled from inside the simulator." in
  Arg.(value & opt (some float) None & info [ "wall-budget" ] ~docv:"SECONDS" ~doc)

let max_retries_arg =
  let doc = "Bounded retries (with exponential backoff) for transient trial failures." in
  Arg.(value & opt int 1 & info [ "max-retries" ] ~docv:"N" ~doc)

let config_term =
  let make scale workers seed verbose trial_budget wall_budget max_retries =
    {
      Experiments.Harness.scale;
      workers;
      seed;
      verbose;
      trial_budget;
      wall_budget;
      max_retries;
      retry_backoff = Experiments.Harness.default_config.Experiments.Harness.retry_backoff;
    }
  in
  Term.(
    const make $ scale_arg $ workers_arg $ seed_arg $ verbose_arg $ trial_budget_arg
    $ wall_budget_arg $ max_retries_arg)

let default_journal = "hbc-journal.jsonl"

let journal_term =
  let path =
    let doc =
      Printf.sprintf
        "Journal completed trials to $(docv) (one JSON line per trial, flushed). Without \
         $(b,--resume) the file is truncated first. Implied (as %s) by $(b,--resume)."
        default_journal
    in
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"PATH" ~doc)
  in
  let resume =
    let doc =
      "Resume from the journal: trials already recorded are replayed from disk instead of \
       re-run; corrupt (torn) trailing lines from a killed run are dropped."
    in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let make path resume =
    match (path, resume) with
    | None, false -> None
    | path, resume -> Some (Option.value path ~default:default_journal, resume)
  in
  Term.(const make $ path $ resume)

(* Install the campaign journal around a command, closing it even when the
   command exits through an exception. *)
let with_journal spec f =
  match spec with
  | None -> f ()
  | Some (path, resume) ->
      let j = Experiments.Checkpoint.create ~path ~resume in
      Experiments.Harness.set_journal (Some j);
      Fun.protect
        ~finally:(fun () ->
          Experiments.Harness.set_journal None;
          Experiments.Checkpoint.close j)
        f

let fig_cmd (f : Experiments.Figure.t) =
  let doc = f.Experiments.Figure.caption in
  let run config journal =
    with_journal journal (fun () ->
        print_string (Experiments.Run_all.render_one config f);
        print_string (Experiments.Run_all.campaign_summary ()));
    (match Experiments.Harness.validation_failures () with
    | [] -> ()
    | _ -> exit 2);
    ()
  in
  Cmd.v (Cmd.info f.Experiments.Figure.id ~doc) Term.(const run $ config_term $ journal_term)

let all_cmd =
  let doc = "Reproduce every figure (4-16)." in
  let parallel_trials =
    let doc =
      "Warm trial simulations across $(docv) OCaml domains before the sequential replay pass. \
       Output (figures, journal) is byte-identical to the sequential campaign; only wall time \
       changes. 1 = fully sequential."
    in
    Arg.(value & opt int 1 & info [ "parallel-trials" ] ~docv:"N" ~doc)
  in
  let run config journal domains =
    with_journal journal (fun () ->
        print_string (Experiments.Run_all.render_all_parallel config ~domains))
  in
  Cmd.v (Cmd.info "all" ~doc) Term.(const run $ config_term $ journal_term $ parallel_trials)

let list_cmd =
  let doc = "List the benchmarks (Table 1) with their metadata." in
  let run () =
    let table =
      Report.Table.create ~title:"Benchmarks (Table 1)"
        ~columns:[ "name"; "source"; "regularity"; "TPAL suite"; "TPAL chunk" ]
    in
    List.iter
      (fun e ->
        Report.Table.add_row table
          [
            e.Workloads.Registry.name;
            e.Workloads.Registry.source;
            (if e.Workloads.Registry.regular then "regular" else "irregular");
            (if e.Workloads.Registry.tpal_suite then "yes" else "no");
            string_of_int e.Workloads.Registry.tpal_chunk;
          ])
      Workloads.Registry.all;
    Report.Table.print table
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let fault_plan_term =
  let drop =
    let doc = "Fault injection: probability (0-1) that a heartbeat delivery is dropped." in
    Arg.(value & opt float 0.0 & info [ "fault-drop" ] ~docv:"P" ~doc)
  in
  let jitter =
    let doc = "Fault injection: maximum extra heartbeat delivery delay in cycles." in
    Arg.(value & opt int 0 & info [ "fault-jitter" ] ~docv:"CYCLES" ~doc)
  in
  let steal =
    let doc = "Fault injection: probability (0-1) that a steal attempt starts a failure burst." in
    Arg.(value & opt float 0.0 & info [ "fault-steal" ] ~docv:"P" ~doc)
  in
  let stall =
    let doc = "Fault injection: per-task probability (0-1) of an OS-preemption stall." in
    Arg.(value & opt float 0.0 & info [ "fault-stall" ] ~docv:"P" ~doc)
  in
  let wakeup =
    let doc =
      "Fault injection: probability (0-1) that a parked-worker wakeup signal is suppressed \
       (domains backend; the monitor's bounded park timeout recovers it)."
    in
    Arg.(value & opt float 0.0 & info [ "fault-wakeup" ] ~docv:"P" ~doc)
  in
  let spolls =
    let doc =
      "Fault injection: stall window in polls for the domains backend (defaults to 64 when \
       $(b,--fault-stall) is set; the cycle-counted window only exists in the simulator)."
    in
    Arg.(value & opt int 0 & info [ "fault-stall-polls" ] ~docv:"N" ~doc)
  in
  let fseed =
    let doc = "Fault injection: seed of the fault schedule (defaults to the run seed)." in
    Arg.(value & opt (some int) None & info [ "fault-seed" ] ~docv:"SEED" ~doc)
  in
  let make drop jitter steal stall wakeup spolls fseed seed =
    let plan =
      {
        Sim.Fault_plan.seed = Option.value fseed ~default:seed;
        beat_drop_prob = drop;
        beat_jitter = jitter;
        steal_fail_prob = steal;
        steal_fail_burst = (if steal > 0.0 then 3 else 0);
        stall_prob = stall;
        stall_cycles = (if stall > 0.0 then 5_000 else 0);
        stall_polls = (if spolls > 0 then spolls else if stall > 0.0 then 64 else 0);
        delay_wakeup_prob = wakeup;
      }
    in
    if Sim.Fault_plan.is_zero plan then None else Some plan
  in
  Term.(const make $ drop $ jitter $ steal $ stall $ wakeup $ spolls $ fseed $ seed_arg)

let run_cmd =
  let doc =
    "Run one benchmark under one executor and print its statistics. The $(b,--fault-*) options \
     inject a deterministic fault plan into the hbc executors (seed-reproducible; outputs still \
     match the sequential reference; on the domains backend the portable kinds also apply — \
     see $(b,--beat)). $(b,--trace) additionally captures every scheduler event and exports a \
     Chrome trace_event / Perfetto JSON file. $(b,--pause-at) checkpoints the run cooperatively \
     at a boundary; $(b,--resume-from) continues it to a byte-identical final result (on \
     domains: $(b,--beat polls:N) with one worker)."
  in
  let bench_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK" ~doc:"Benchmark name.")
  in
  let exec_arg =
    let doc = "Executor: seq, hbc, hbc-km, hbc-ping, tpal, omp-static, or omp-dynamic." in
    Arg.(value & opt string "hbc" & info [ "executor"; "e" ] ~docv:"EXEC" ~doc)
  in
  let backend_arg =
    let doc =
      "Scheduler backend: $(b,sim) (the virtual-time engine; the default) or $(b,domains) (real \
       OCaml 5 domains via the native runner — same policy core, wall-clock heartbeats). The \
       domains backend supports the seq, hbc, and tpal executors; makespan is wall microseconds. \
       Portable fault kinds (drop/steal/stall-polls/wakeup) inject natively; pause/resume needs \
       $(b,--beat polls:N) and one worker."
    in
    Arg.(value & opt string "sim" & info [ "backend" ] ~docv:"BACKEND" ~doc)
  in
  let trace_arg =
    let doc =
      "Capture the full scheduler event trace and write it as Chrome trace_event JSON to \
       $(docv) (load in ui.perfetto.dev or chrome://tracing)."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"PATH" ~doc)
  in
  let sanitize_arg =
    let doc =
      "Run under the online scheduler sanitizer: every trace event is checked against the work \
       conservation, deque discipline, promotion policy, chunk-rule, and clock invariants; a \
       one-line verdict is printed and a non-zero exit reports violations."
    in
    Arg.(value & flag & info [ "sanitize" ] ~doc)
  in
  let pause_arg =
    let doc =
      "Cooperatively pause the run at the first event at or past $(docv) virtual cycles and \
       write the serializable checkpoint to the $(b,--checkpoint) path (hbc executors only)."
    in
    Arg.(value & opt (some int) None & info [ "pause-at" ] ~docv:"CYCLE" ~doc)
  in
  let ckpt_arg =
    let doc = "Where $(b,--pause-at) writes the checkpoint JSON." in
    Arg.(value & opt string "hbc-checkpoint.json" & info [ "checkpoint" ] ~docv:"PATH" ~doc)
  in
  let resume_arg =
    let doc =
      "Resume a previously paused run from the checkpoint in $(docv): the job is replayed to \
       the boundary with trace emission muted, byte-verified against the checkpoint, then \
       continued live — the final result is byte-identical to an uninterrupted run."
    in
    Arg.(value & opt (some string) None & info [ "resume-from" ] ~docv:"PATH" ~doc)
  in
  let beat_arg =
    let doc =
      "Heartbeat source for $(b,--backend domains): $(b,wall:US) (interval timer, microseconds; \
       the default is wall:100) or $(b,polls:N) (a deterministic beat every N leaf polls — \
       reproducible schedules; required for native pause/resume)."
    in
    Arg.(value & opt (some string) None & info [ "beat" ] ~docv:"SRC" ~doc)
  in
  let run config bench executor backend_s fault_plan trace_path sanitize pause_at ckpt_path
      resume_path beat_s journal =
    with_journal journal @@ fun () ->
    let beat =
      Option.map
        (fun spec ->
          let fail () =
            Printf.eprintf "run: --beat wants polls:N or wall:US, not %s\n" spec;
            exit 1
          in
          match String.split_on_char ':' spec with
          | [ "polls"; n ] -> (
              match int_of_string_opt n with
              | Some n when n > 0 -> Hb_parallel.Native_run.Every_polls n
              | _ -> fail ())
          | [ "wall"; us ] -> (
              match float_of_string_opt us with
              | Some us when us > 0.0 -> Hb_parallel.Native_run.Wall_us us
              | _ -> fail ())
          | _ -> fail ())
        beat_s
    in
    let backend =
      match Sched.Policy.backend_kind_of_string backend_s with
      | Ok b -> b
      | Error e ->
          Printf.eprintf "run: %s\n" e;
          exit 1
    in
    let entry =
      try Workloads.Registry.find bench
      with Not_found ->
        Printf.eprintf "unknown benchmark %s; try `hbc_repro list`\n" bench;
        exit 1
    in
    let resume_from =
      Option.map
        (fun path ->
          let contents =
            try
              let ic = open_in_bin path in
              Fun.protect
                ~finally:(fun () -> close_in_noerr ic)
                (fun () -> really_input_string ic (in_channel_length ic))
            with Sys_error msg ->
              Printf.eprintf "run: cannot read checkpoint %s: %s\n" path msg;
              exit 2
          in
          match Sim.Checkpoint_state.of_string contents with
          | Ok ck -> ck
          | Error e ->
              Printf.eprintf "run: %s is not a checkpoint: %s\n" path e;
              exit 2)
        resume_path
    in
    let base = Experiments.Harness.baseline config entry in
    let san =
      if sanitize then
        Some (Sanitizer.Checker.create (Sanitizer.Checker.config_of_rt Hbc_core.Rt_config.default))
      else None
    in
    (* The sanitizer sink tees with a capture sink when --trace is also
       given: checking costs no virtual time and drops no events. *)
    let sink =
      match (san, Option.map (fun _ -> Obs.Trace.Sink.stream ()) trace_path) with
      | None, s -> s
      | Some sa, None -> Some (Sanitizer.Checker.sink sa)
      | Some sa, Some s -> Some (Obs.Trace.Sink.tee (Sanitizer.Checker.sink sa) s)
    in
    let request =
      Hbc_core.Run_request.make ~backend ?fault_plan ?trace:sink ~sanitize ?pause_at ?resume_from
        ()
    in
    let finish_sanitizer (r : Sim.Run_result.t) =
      match san with
      | None -> ()
      | Some sa ->
          Sanitizer.Checker.finish sa;
          let verdict = Sanitizer.Checker.summary sa in
          r.Sim.Run_result.sanitizer <- Some verdict;
          Printf.printf "sanitizer        : %s\n" verdict;
          if not (Sanitizer.Checker.ok sa) then begin
            List.iter
              (fun (v : Sanitizer.Checker.violation) ->
                Printf.eprintf "  [%s] t=%d w=%d %s\n"
                  (Sanitizer.Checker.invariant_name v.Sanitizer.Checker.invariant)
                  v.Sanitizer.Checker.time v.Sanitizer.Checker.worker v.Sanitizer.Checker.message)
              (Sanitizer.Checker.violations sa);
            exit 3
          end
    in
    let export_trace (r : Sim.Run_result.t) =
      match trace_path with
      | None -> ()
      | Some path ->
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () ->
              output_string oc
                (Obs.Perfetto.to_string
                   ~process_name:(entry.Workloads.Registry.name ^ "/" ^ executor)
                   r.Sim.Run_result.trace));
          Printf.printf "trace            : %d events -> %s\n"
            (List.length r.Sim.Run_result.trace) path
    in
    if backend = Sched.Policy.Domains then begin
      (* Native runs bypass the trial journal: wall-clock makespans are not
         reproducible measurements, and the harness's virtual-time stats do
         not apply. Validation is still against the simulated sequential
         reference — fingerprints are backend-independent. *)
      let engine =
        match executor with
        | "seq" -> Sched_run.Serial
        | "hbc" ->
            Sched_run.Hbc
              {
                Hbc_core.Rt_config.default with
                workers = config.Experiments.Harness.workers;
                seed = config.Experiments.Harness.seed;
              }
        | "tpal" -> Sched_run.Tpal { chunk = entry.Workloads.Registry.tpal_chunk }
        | other ->
            Printf.eprintf "run: --backend domains supports seq, hbc, and tpal, not %s\n" other;
            exit 2
      in
      let (Ir.Program.Any p) = entry.Workloads.Registry.make config.Experiments.Harness.scale in
      let r = Sched_run.run ~request ~backend ?beat engine p in
      Printf.printf "benchmark        : %s (%s on %s)\n" entry.Workloads.Registry.name executor
        backend_s;
      Printf.printf "baseline work    : %d cycles (simulated reference)\n"
        base.Sim.Run_result.work_cycles;
      Printf.printf "makespan         : %d us wall on %d domains\n" r.Sim.Run_result.makespan
        config.Experiments.Harness.workers;
      Printf.printf "body work        : %d cycles\n" r.Sim.Run_result.work_cycles;
      Printf.printf "promotions       : %d\n" r.Sim.Run_result.metrics.Sim.Metrics.promotions;
      (match fault_plan with
      | None -> ()
      | Some plan ->
          let m = r.Sim.Run_result.metrics in
          Printf.printf "fault plan       : %s\n" (Sim.Fault_plan.to_string plan);
          Printf.printf
            "faults injected  : %d (beats dropped %d; steals failed %d; stalls %d for %d polls; \
             wakeups delayed %d)\n"
            (Sim.Metrics.faults_injected m) m.Sim.Metrics.faults_beats_dropped
            m.Sim.Metrics.faults_steals_failed m.Sim.Metrics.faults_stalls
            m.Sim.Metrics.faults_stall_cycles m.Sim.Metrics.faults_wakeups_delayed;
          Printf.printf "downgrades       : %d" (Sim.Metrics.downgrade_count m);
          List.iter
            (fun (w, t) -> Printf.printf " [worker %d at %d]" w t)
            (Obs.Trace_query.downgrades r.Sim.Run_result.trace);
          print_newline ());
      export_trace r;
      (match r.Sim.Run_result.termination with
      | Sim.Run_result.Paused ck ->
          let oc = open_out ckpt_path in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () -> output_string oc (Sim.Checkpoint_state.to_string ck));
          Printf.printf "paused           : %s\n" (Sim.Checkpoint_state.describe ck);
          Printf.printf "checkpoint       : digest %s -> %s\n" (Sim.Checkpoint_state.digest ck)
            ckpt_path;
          Printf.printf "resume           : hbc_repro run %s -e %s --backend domains -w 1 %s \
--resume-from %s\n"
            bench executor
            (match beat_s with Some b -> "--beat " ^ b | None -> "")
            ckpt_path;
          finish_sanitizer r
      | Sim.Run_result.Guard_aborted reason ->
          Printf.printf "aborted          : %s\n" reason;
          finish_sanitizer r;
          exit 4
      | _ ->
          let valid = Sim.Run_result.fingerprints_close base r in
          Printf.printf "output valid     : %b\n" valid;
          finish_sanitizer r;
          if not valid then exit 4)
    end
    else begin
    let tag_of t =
      let t = if fault_plan = None then t else t ^ "+faults" in
      let t = if trace_path = None then t else t ^ "+trace" in
      let t = if pause_at = None then t else t ^ "+pause" in
      let t = if resume_from = None then t else t ^ "+resume" in
      if sanitize then t ^ "+sanitize" else t
    in
    (* A paused (or resumed) run is not a campaign trial: the harness
       would journal it as a poisoned entry and flag the pause as an
       invariant error. Drive the executor directly instead. *)
    let run_direct cfg_fn =
      let (Ir.Program.Any p) = entry.Workloads.Registry.make config.Experiments.Harness.scale in
      let rt =
        cfg_fn
          {
            Hbc_core.Rt_config.default with
            workers = config.Experiments.Harness.workers;
            seed = config.Experiments.Harness.seed;
          }
      in
      let r = Hbc_core.Executor.run ~request rt p in
      let valid =
        match r.Sim.Run_result.termination with
        | Sim.Run_result.Finished -> Sim.Run_result.fingerprints_close base r
        | _ -> false
      in
      {
        Experiments.Harness.result = r;
        speedup = Sim.Run_result.speedup ~baseline:base r;
        valid;
        error = None;
      }
    in
    let direct = pause_at <> None || resume_from <> None in
    (if direct then
       match executor with
       | "hbc" | "hbc-km" | "hbc-ping" -> ()
       | other ->
           Printf.eprintf "run: --pause-at/--resume-from need an hbc executor, not %s\n" other;
           exit 2);
    let outcome =
      match executor with
      | "seq" -> { Experiments.Harness.result = base; speedup = 1.0; valid = true; error = None }
      | "hbc" when direct -> run_direct (fun c -> c)
      | "hbc-km" when direct ->
          run_direct (fun c ->
              {
                c with
                Hbc_core.Rt_config.mechanism = Hbc_core.Rt_config.Interrupt_kernel_module;
                chunk = Hbc_core.Compiled.Static entry.Workloads.Registry.tpal_chunk;
              })
      | "hbc-ping" when direct ->
          run_direct (fun c ->
              {
                c with
                Hbc_core.Rt_config.mechanism = Hbc_core.Rt_config.Interrupt_ping_thread;
                chunk = Hbc_core.Compiled.Static entry.Workloads.Registry.tpal_chunk;
              })
      | "hbc" -> Experiments.Harness.run_hbc config ~tag:(tag_of "hbc") ~request entry
      | "hbc-km" ->
          Experiments.Harness.run_hbc config ~tag:(tag_of "hbc-km") ~request
            ~cfg:(fun c ->
              {
                c with
                Hbc_core.Rt_config.mechanism = Hbc_core.Rt_config.Interrupt_kernel_module;
                chunk = Hbc_core.Compiled.Static entry.Workloads.Registry.tpal_chunk;
              })
            entry
      | "hbc-ping" ->
          Experiments.Harness.run_hbc config ~tag:(tag_of "hbc-ping") ~request
            ~cfg:(fun c ->
              {
                c with
                Hbc_core.Rt_config.mechanism = Hbc_core.Rt_config.Interrupt_ping_thread;
                chunk = Hbc_core.Compiled.Static entry.Workloads.Registry.tpal_chunk;
              })
            entry
      | "tpal" -> Experiments.Harness.run_tpal config ~tag:(tag_of "tpal") ~request entry
      | "omp-static" ->
          Experiments.Harness.run_omp config ~tag:(tag_of "omp-static") ~request
            ~cfg:(fun c -> { c with Baselines.Openmp.schedule = Baselines.Openmp.Static })
            entry
      | "omp-dynamic" ->
          Experiments.Harness.run_omp config ~tag:(tag_of "omp") ~request entry
      | other ->
          Printf.eprintf "unknown executor %s\n" other;
          exit 1
    in
    let r = outcome.Experiments.Harness.result in
    let m = r.Sim.Run_result.metrics in
    Printf.printf "benchmark        : %s (%s)\n" entry.Workloads.Registry.name executor;
    Printf.printf "baseline work    : %d cycles\n" base.Sim.Run_result.work_cycles;
    Printf.printf "makespan         : %d cycles (%.3f simulated ms)\n" r.Sim.Run_result.makespan
      (1000.0 *. Sim.Cost_model.seconds_of_cycles Sim.Cost_model.default r.Sim.Run_result.makespan);
    Printf.printf "speedup          : %.2fx on %d workers\n" outcome.Experiments.Harness.speedup
      config.Experiments.Harness.workers;
    Printf.printf "output valid     : %b\n" outcome.Experiments.Harness.valid;
    Printf.printf "promotions       : %d (levels:" m.Sim.Metrics.promotions;
    Array.iteri
      (fun l n -> if n > 0 then Printf.printf " L%d=%d" l n)
      m.Sim.Metrics.promotions_by_level;
    Printf.printf ")\n";
    Printf.printf "tasks spawned    : %d (leftovers run: %d)\n" m.Sim.Metrics.tasks_spawned
      m.Sim.Metrics.leftover_tasks_run;
    Printf.printf "steals           : %d of %d attempts\n" m.Sim.Metrics.steals
      m.Sim.Metrics.steal_attempts;
    Printf.printf "heartbeats       : %d detected / %d generated (%d missed)\n"
      m.Sim.Metrics.heartbeats_detected m.Sim.Metrics.heartbeats_generated
      m.Sim.Metrics.heartbeats_missed;
    Printf.printf "polls            : %d\n" m.Sim.Metrics.polls;
    Printf.printf "overhead cycles  : %d\n" m.Sim.Metrics.overhead_cycles;
    Hashtbl.iter
      (fun k v -> Printf.printf "  %-16s %d\n" k v)
      m.Sim.Metrics.overhead_by_kind;
    (match fault_plan with
    | None -> ()
    | Some plan ->
        Printf.printf "fault plan       : %s\n" (Sim.Fault_plan.to_string plan);
        Printf.printf
          "faults injected  : %d (beats dropped %d, delayed %d; steals failed %d; stalls %d for \
           %d cycles)\n"
          (Sim.Metrics.faults_injected m) m.Sim.Metrics.faults_beats_dropped
          m.Sim.Metrics.faults_beats_delayed m.Sim.Metrics.faults_steals_failed
          m.Sim.Metrics.faults_stalls m.Sim.Metrics.faults_stall_cycles;
        Printf.printf "downgrades       : %d" (Sim.Metrics.downgrade_count m);
        List.iter
          (fun (w, t) -> Printf.printf " [worker %d at %d]" w t)
          (Obs.Trace_query.downgrades r.Sim.Run_result.trace);
        print_newline ());
    export_trace r;
    (match outcome.Experiments.Harness.error with
    | Some e ->
        Printf.printf "trial error      : %s\n" (Experiments.Trial_error.to_string e)
    | None -> ());
    (match r.Sim.Run_result.termination with
    | Sim.Run_result.Paused ck ->
        let oc = open_out ckpt_path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc (Sim.Checkpoint_state.to_string ck));
        Printf.printf "paused           : %s\n" (Sim.Checkpoint_state.describe ck);
        Printf.printf "checkpoint       : digest %s -> %s\n" (Sim.Checkpoint_state.digest ck)
          ckpt_path;
        Printf.printf "resume           : hbc_repro run %s -e %s --resume-from %s\n" bench
          executor ckpt_path
    | _ -> ());
    if r.Sim.Run_result.dnf then print_endline "run DID NOT FINISH (virtual-time cap)";
    finish_sanitizer r
    end
  in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(
      const run $ config_term $ bench_arg $ exec_arg $ backend_arg $ fault_plan_term $ trace_arg
      $ sanitize_arg $ pause_arg $ ckpt_arg $ resume_arg $ beat_arg $ journal_term)

let asm_cmd =
  let doc =
    "Show the compiler and linker artifacts for a benchmark: nesting tree, leftover tasks, \
     pseudo-assembly, and the rollforward twins and tables."
  in
  let bench_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK" ~doc:"Benchmark name.")
  in
  let mode_arg =
    let doc = "Linker mode: polling or interrupts." in
    Arg.(value & opt string "interrupts" & info [ "mode"; "m" ] ~docv:"MODE" ~doc)
  in
  let run bench mode =
    let entry =
      try Workloads.Registry.find bench
      with Not_found ->
        Printf.eprintf "unknown benchmark %s; try `hbc_repro list`\n" bench;
        exit 1
    in
    let (Ir.Program.Any p) = entry.Workloads.Registry.make 0.05 in
    let compiled = Hbc_core.Pipeline.compile_program p in
    List.iter
      (fun (_, nest) ->
        Printf.printf "=== nest %s ===\n" nest.Hbc_core.Compiled.source_name;
        Printf.printf "--- loop nesting tree ---\n%s"
          (Format.asprintf "%a" Ir.Nesting_tree.pp nest.Hbc_core.Compiled.tree);
        Printf.printf "--- leftover tasks (%d) ---\n" (Array.length nest.Hbc_core.Compiled.leftovers);
        Array.iter
          (fun (l : Hbc_core.Compiled.leftover) ->
            Printf.printf "  (heartbeat in %d, split %d): %s\n" l.Hbc_core.Compiled.li
              l.Hbc_core.Compiled.lj
              (String.concat "; "
                 (List.map
                    (function
                      | Hbc_core.Compiled.Increase_iv o -> Printf.sprintf "iv[%d]++" o
                      | Hbc_core.Compiled.Call_slice o -> Printf.sprintf "slice(%d)" o
                      | Hbc_core.Compiled.Tail_work { of_; after } ->
                          Printf.sprintf "tail(%d after %d)" of_ after)
                    l.Hbc_core.Compiled.steps)))
          nest.Hbc_core.Compiled.leftovers;
        match mode with
        | "polling" ->
            let a = Hbc_core.Linker.link Hbc_core.Linker.Software_polling nest in
            Printf.printf "--- linked image (software polling, %d poll sites) ---\n%s\n"
              a.Hbc_core.Linker.polling_sites
              (Hbc_core.Pseudo_asm.to_string a.Hbc_core.Linker.listing)
        | _ -> (
            let a = Hbc_core.Linker.link Hbc_core.Linker.Interrupts nest in
            match a.Hbc_core.Linker.rollforward with
            | Some rf ->
                Printf.printf "--- source twin (polls elided) ---\n%s\n"
                  (Hbc_core.Pseudo_asm.to_string rf.Hbc_core.Rollforward.source);
                Printf.printf "--- destination twin ---\n%s\n"
                  (Hbc_core.Pseudo_asm.to_string rf.Hbc_core.Rollforward.destination);
                Printf.printf "--- rollforward table (%d entries) ---\n"
                  (List.length rf.Hbc_core.Rollforward.table);
                List.iter
                  (fun (src, dst) ->
                    Printf.printf "  %s (0x%x) -> %s (0x%x)\n" src
                      (Option.value ~default:0 (Hbc_core.Rollforward.lookup_address rf src))
                      dst
                      (Option.value ~default:0 (Hbc_core.Rollforward.lookup_address rf dst)))
                  rf.Hbc_core.Rollforward.table
            | None -> ()))
      compiled.Hbc_core.Pipeline.nests
  in
  Cmd.v (Cmd.info "asm" ~doc) Term.(const run $ bench_arg $ mode_arg)

let ablation_cmd =
  let doc =
    "Run ablation/sensitivity studies (leftover-task, promotion-policy, chunk-transferring, \
     leftover-pairs, heartbeat-rate, ac-window, worker-scaling, hybrid, or `all`)."
  in
  let which_arg =
    Arg.(value & pos 0 string "all" & info [] ~docv:"STUDY" ~doc:"Study name or `all`.")
  in
  let run config journal which =
    with_journal journal @@ fun () ->
    let studies =
      if which = "all" then Experiments.Ablations.all
      else
        match List.assoc_opt which Experiments.Ablations.all with
        | Some f -> [ (which, f) ]
        | None ->
            Printf.eprintf "unknown study %s; available: %s\n" which
              (String.concat ", " (List.map fst Experiments.Ablations.all));
            exit 1
    in
    List.iter
      (fun (name, f) ->
        Printf.printf "== ablation: %s ==\n%s\n\n" name (f config))
      studies;
    match Experiments.Harness.validation_failures () with
    | [] -> ()
    | fails ->
        Printf.printf "VALIDATION FAILURES: %s\n"
          (String.concat ", " (List.map (fun (b, t) -> b ^ "/" ^ t) fails));
        exit 2
  in
  Cmd.v (Cmd.info "ablations" ~doc) Term.(const run $ config_term $ journal_term $ which_arg)

let timeline_cmd =
  let doc = "Render a per-worker execution timeline (ASCII gantt) for one benchmark under HBC." in
  let bench_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK" ~doc:"Benchmark name.")
  in
  let run config bench =
    let entry =
      try Workloads.Registry.find bench
      with Not_found ->
        Printf.eprintf "unknown benchmark %s; try `hbc_repro list`\n" bench;
        exit 1
    in
    let (Ir.Program.Any p) = entry.Workloads.Registry.make config.Experiments.Harness.scale in
    let rt =
      {
        Hbc_core.Rt_config.default with
        workers = config.Experiments.Harness.workers;
        seed = config.Experiments.Harness.seed;
      }
    in
    let request =
      Hbc_core.Run_request.make
        ~trace:
          (Obs.Trace.Sink.stream
             ~keep:(function Obs.Trace.Interval _ -> true | _ -> false)
             ())
        ()
    in
    let r = Hbc_core.Executor.run ~request rt p in
    print_string
      (Report.Gantt.render ~workers:config.Experiments.Harness.workers
         ~makespan:r.Sim.Run_result.makespan r.Sim.Run_result.trace)
  in
  Cmd.v (Cmd.info "timeline" ~doc) Term.(const run $ config_term $ bench_arg)

let trace_lint_cmd =
  let doc =
    "Validate an exported trace file: well-formed Chrome trace_event JSON with at least one \
     promotion and one steal event (used by check.sh as an end-to-end probe)."
  in
  let path_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PATH" ~doc:"Trace JSON file.")
  in
  let run path =
    let contents =
      try
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with Sys_error msg ->
        Printf.eprintf "trace-lint: cannot read %s: %s\n" path msg;
        exit 1
    in
    let j =
      match Obs.Json.parse contents with
      | j -> j
      | exception Obs.Json.Parse_error msg ->
          Printf.eprintf "trace-lint: %s is not valid JSON: %s\n" path msg;
          exit 1
    in
    let events =
      match j with
      | Obs.Json.Obj fields -> (
          match Obs.Json.mem "traceEvents" fields with
          | Some (Obs.Json.Arr evs) -> evs
          | _ ->
              Printf.eprintf "trace-lint: %s has no traceEvents array\n" path;
              exit 1)
      | _ ->
          Printf.eprintf "trace-lint: %s top level is not an object\n" path;
          exit 1
    in
    let count pred =
      List.length
        (List.filter
           (function
             | Obs.Json.Obj fields -> (
                 match Obs.Json.get_str "name" fields with Some n -> pred n | None -> false)
             | _ -> false)
           events)
    in
    let promotions = count (String.equal "promotion") in
    let steals = count (fun n -> n = "steal-attempt" || n = "steal-success") in
    Printf.printf "trace-lint: %s: %d events, %d promotions, %d steal events\n" path
      (List.length events) promotions steals;
    if promotions = 0 || steals = 0 then begin
      Printf.eprintf "trace-lint: expected at least one promotion and one steal event\n";
      exit 1
    end
  in
  Cmd.v (Cmd.info "trace-lint" ~doc) Term.(const run $ path_arg)

let bench_diff_cmd =
  let doc =
    "Compare two perf-gate reports (written by $(b,bench/main.exe --report)). Deterministic \
     metrics (virtual cycles, scheduler counters, allocation words) that regressed past the \
     threshold hard-fail (exit 1); wall-time drift and metric-set skew (probes present on only \
     one side) warn but exit 0. Prints a per-metric delta table."
  in
  let old_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"OLD" ~doc:"Baseline report JSON (e.g. bench/baseline.json).")
  in
  let new_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"NEW" ~doc:"Candidate report JSON.")
  in
  let threshold_arg =
    let doc = "Hard-fail threshold for deterministic metrics (relative; 0.02 = 2%)." in
    Arg.(value & opt float 0.02 & info [ "threshold" ] ~docv:"T" ~doc)
  in
  let adv_threshold_arg =
    let doc = "Warn threshold for advisory metrics such as wall time (relative)." in
    Arg.(value & opt float 0.25 & info [ "adv-threshold" ] ~docv:"T" ~doc)
  in
  let subset_arg =
    let doc =
      "Compare only probes present in NEW: baseline probes the candidate did not run are out \
       of scope rather than 'removed'. For diffing a partial-suite report (CI's split \
       micro/macro bench steps) against the full committed baseline."
    in
    Arg.(value & flag & info [ "subset" ] ~doc)
  in
  let read_report path =
    match Benchgate.Report.read_file path with
    | r -> r
    | exception Sys_error msg ->
        Printf.eprintf "bench-diff: cannot read %s: %s\n" path msg;
        exit 2
    | exception Obs.Json.Parse_error msg ->
        Printf.eprintf "bench-diff: %s is not valid JSON: %s\n" path msg;
        exit 2
    | exception Benchgate.Report.Malformed msg ->
        Printf.eprintf "bench-diff: %s is not a benchmark report: %s\n" path msg;
        exit 2
  in
  let run old_path new_path threshold adv_threshold subset =
    let old = read_report old_path in
    let new_ = read_report new_path in
    let old =
      if not subset then old
      else
        {
          old with
          Benchgate.Report.probes =
            List.filter
              (fun p ->
                Benchgate.Report.find_probe new_ p.Benchgate.Report.probe <> None)
              old.Benchgate.Report.probes;
        }
    in
    let lines, verdict = Benchgate.Diff.compare ~threshold ~adv_threshold ~old ~new_ () in
    print_string (Benchgate.Diff.render ~threshold ~old ~new_ lines verdict);
    exit (Benchgate.Diff.exit_code verdict)
  in
  Cmd.v
    (Cmd.info "bench-diff" ~doc)
    Term.(const run $ old_arg $ new_arg $ threshold_arg $ adv_threshold_arg $ subset_arg)

let fuzz_cmd =
  let doc =
    "Adversarial schedule fuzzing: run seed-deterministic random cases (workload x runtime knobs \
     x fault plan) under the scheduler sanitizer, differentially checked against the sequential \
     reference. A failing case is shrunk to a minimal JSON repro (replay it with \
     $(b,--replay)). $(b,--force-fail) seeds a known scheduler bug to exercise the whole \
     catch/shrink/replay pipeline."
  in
  let smoke_arg =
    let doc = "Fixed-seed quick sweep for CI: a small case count with a pinned seed." in
    Arg.(value & flag & info [ "smoke" ] ~doc)
  in
  let fseed_arg =
    let doc = "Campaign seed: equal seeds generate equal case lists." in
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let cases_arg =
    let doc = "Number of generated cases to run." in
    Arg.(value & opt int 25 & info [ "cases" ] ~docv:"N" ~doc)
  in
  let replay_arg =
    let doc =
      "Re-run the case in this repro file and check it reproduces the recorded failure class \
       (exit 0 when it does, 1 when it does not)."
    in
    Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"FILE" ~doc)
  in
  let out_arg =
    let doc = "Where to write the shrunk repro case when a run fails." in
    Arg.(value & opt string "fuzz-repro.json" & info [ "out" ] ~docv:"PATH" ~doc)
  in
  let force_arg =
    let doc =
      "Seed a known scheduler bug (duplicate-leftover, lose-stolen-task, or promote-innermost) \
       into a fixed case; the fuzzer must catch, shrink, and write a repro for it (exit 1)."
    in
    Arg.(value & opt (some string) None & info [ "force-fail" ] ~docv:"BUG" ~doc)
  in
  let native_arg =
    let doc =
      "Fuzz the real domains backend: cases run on OCaml 5 domains under a deterministic \
       $(b,polls:N) beat with backend-portable chaos plans (beat drops, steal refusals, \
       poll-counted stalls, wakeup suppressions), sanitizer on, differentially checked against \
       the sequential reference — chaos may change performance, never results."
    in
    Arg.(value & flag & info [ "native" ] ~doc)
  in
  let serve_arg =
    let doc =
      "Fuzz whole multi-tenant workload mixes (N tenants x arrival process x fault plan) through \
       the job server instead of single cases: every completed job is differentially checked \
       against its serial reference under contention, with the server and per-job sanitizers on. \
       $(b,--cases) counts mixes."
    in
    Arg.(value & flag & info [ "serve" ] ~doc)
  in
  let write_file path contents =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc contents)
  in
  let read_file path =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error msg ->
      Printf.eprintf "fuzz: cannot read %s: %s\n" path msg;
      exit 2
  in
  (* Deterministic forced-failure case: small nested workload, all knobs at
     their defaults, so each seeded bug maps to one stable failure class. *)
  let forced_case bug =
    {
      Sanitizer.Fuzz.seed = 99;
      workload = "spmv-powerlaw";
      scale = 0.03;
      workers = 4;
      mechanism = Hbc_core.Rt_config.Software_polling;
      chunk = Hbc_core.Compiled.Adaptive;
      policy = Hbc_core.Rt_config.Outer_loop_first;
      leftover = Hbc_core.Rt_config.Spawn;
      chunk_transferring = true;
      ac_target_polls = 8;
      ac_window = 8;
      plan = Sim.Fault_plan.none;
      bug = Some bug;
      native_beat = None;
    }
  in
  let fail_and_shrink out c f =
    let kind = Sanitizer.Fuzz.failure_kind f in
    Printf.printf "FAIL [%s] %s\n" kind (Sanitizer.Fuzz.failure_describe f);
    let shrunk, spent = Sanitizer.Fuzz.shrink c ~kind in
    write_file out
      (Obs.Json.to_string
         (Sanitizer.Fuzz.repro_to_json shrunk ~kind
            ~summary:(Sanitizer.Fuzz.failure_describe f))
      ^ "\n");
    Printf.printf "minimized after %d shrink run(s): %s scale=%.4f P=%d faults=%s\n" spent
      shrunk.Sanitizer.Fuzz.workload shrunk.Sanitizer.Fuzz.scale shrunk.Sanitizer.Fuzz.workers
      (if Sim.Fault_plan.is_zero shrunk.Sanitizer.Fuzz.plan then "none" else "yes");
    Printf.printf "repro written to %s (replay: hbc_repro fuzz --replay %s)\n" out out;
    exit 1
  in
  let run_serve_mixes fseed mixes =
    let rng = Sim.Sim_rng.create fseed in
    for i = 1 to mixes do
      let m = Sanitizer.Fuzz.gen_mix rng in
      (* Every mix is also crash-injected: the campaign is re-run through
         a WAL killed halfway, recovered, and byte-compared. *)
      let o = Serve.Fuzz.run_mix_recovery m in
      if o.Serve.Fuzz.failures <> [] then begin
        Printf.printf "FAIL mix %d/%d %s\n" i mixes (Sanitizer.Fuzz.mix_describe m);
        Printf.printf "  hash %s\n" (Sanitizer.Fuzz.mix_hash m);
        List.iter
          (fun f ->
            Printf.printf "  [%s] %s\n" (Serve.Fuzz.failure_kind f)
              (Serve.Fuzz.failure_describe f))
          o.Serve.Fuzz.failures;
        Printf.printf "replay: hbc_repro fuzz --serve --seed %d --cases %d (mix %d)\n" fseed
          mixes i;
        exit 1
      end;
      let s = o.Serve.Fuzz.result.Serve.Server.stats in
      Printf.printf
        "mix %2d/%d ok [%s]: %d submitted, %d completed, %d shed, %d deadline, %d failed, %d \
         ck/%d res\n\
         %!"
        i mixes m.Sanitizer.Fuzz.mix_preempt s.Serve.Server.submitted s.Serve.Server.completed
        s.Serve.Server.shed s.Serve.Server.deadline_exceeded s.Serve.Server.failed
        s.Serve.Server.checkpointed s.Serve.Server.resumed
    done;
    Printf.printf "fuzz --serve: %d mix(es) (+ kill-and-recover each), 0 failures (seed %d)\n"
      mixes fseed
  in
  let run smoke fseed cases replay out force serve native =
    if serve then begin
      let fseed = if smoke then 2026 else fseed in
      let mixes = if smoke then 3 else cases in
      run_serve_mixes fseed mixes;
      exit 0
    end;
    match replay with
    | Some path -> (
        let j =
          match Obs.Json.parse (read_file path) with
          | j -> j
          | exception Obs.Json.Parse_error msg ->
              Printf.eprintf "fuzz: %s is not valid JSON: %s\n" path msg;
              exit 2
        in
        match Sanitizer.Fuzz.repro_of_json j with
        | Error e ->
            Printf.eprintf "fuzz: %s is not a repro file: %s\n" path e;
            exit 2
        | Ok (case, expect) ->
            let o = Sanitizer.Fuzz.run_case case in
            let got =
              match o.Sanitizer.Fuzz.failure with
              | Some f -> Sanitizer.Fuzz.failure_kind f
              | None -> "none"
            in
            Printf.printf "replay %s: expect=%s got=%s\n" path expect got;
            (match o.Sanitizer.Fuzz.failure with
            | Some f -> Printf.printf "  %s\n" (Sanitizer.Fuzz.failure_describe f)
            | None -> Printf.printf "  %s\n" o.Sanitizer.Fuzz.sanitizer_summary);
            if got = expect then begin
              print_endline "failure class REPRODUCED";
              exit 0
            end
            else begin
              print_endline "failure class NOT reproduced";
              exit 1
            end)
    | None -> (
        match force with
        | Some bugname -> (
            match Sanitizer.Fuzz.bug_of_string bugname with
            | Error e ->
                Printf.eprintf "fuzz: %s\n" e;
                exit 2
            | Ok bug -> (
                let c = forced_case bug in
                let o = Sanitizer.Fuzz.run_case c in
                match o.Sanitizer.Fuzz.failure with
                | Some f -> fail_and_shrink out c f
                | None ->
                    Printf.eprintf
                      "fuzz: forced bug %s was NOT caught — the sanitizer pipeline is broken\n"
                      bugname;
                    exit 2))
        | None ->
            let fseed = if smoke then 2026 else fseed in
            let cases = if smoke then (if native then 6 else 8) else cases in
            let rng = Sim.Sim_rng.create fseed in
            let gen = if native then Sanitizer.Fuzz.gen_native else Sanitizer.Fuzz.gen in
            for i = 1 to cases do
              let c = gen rng in
              let o = Sanitizer.Fuzz.run_case c in
              (match o.Sanitizer.Fuzz.failure with
              | Some f -> fail_and_shrink out c f
              | None -> ());
              Printf.printf "case %2d/%d %-18s P=%-2d ok (%s)\n%!" i cases
                c.Sanitizer.Fuzz.workload c.Sanitizer.Fuzz.workers
                o.Sanitizer.Fuzz.sanitizer_summary
            done;
            Printf.printf "fuzz: %d case(s), 0 failures (seed %d)\n" cases fseed)
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc)
    Term.(
      const run $ smoke_arg $ fseed_arg $ cases_arg $ replay_arg $ out_arg $ force_arg
      $ serve_arg $ native_arg)

let serve_cmd =
  let doc =
    "Multi-tenant serving: a seeded open-loop stream of jobs from N tenants shares one simulated \
     worker pool under admission control, weighted fairness, metered promotion budgets, per-job \
     deadlines, and per-tenant circuit breakers. Overload degrades explicitly — typed sheds, \
     deadline preemptions with partial results journaled, quarantined faulty tenants — and every \
     decision is deterministic from the seed. Exit codes: 3 sanitizer violation, 4 an \
     $(b,--expect-*) assertion failed."
  in
  let tenants_arg =
    Arg.(value & opt int 3 & info [ "tenants" ] ~docv:"N" ~doc:"Number of tenants.")
  in
  let jobs_arg =
    Arg.(value & opt int 6 & info [ "jobs" ] ~docv:"N" ~doc:"Jobs per tenant.")
  in
  let pool_arg =
    Arg.(value & opt int 8 & info [ "pool" ] ~docv:"N" ~doc:"Simulated workers in the shared pool.")
  in
  let qcap_arg =
    Arg.(
      value & opt int 16
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:"Admission queue capacity; 0 sheds everything (the forced-shed smoke).")
  in
  let arrival_arg =
    Arg.(
      value & opt string "poisson:5000"
      & info [ "arrival" ] ~docv:"PROC"
          ~doc:
            "Arrival process for every tenant: poisson:MEANGAP, burst:PERIOD:SIZE, or \
             adversarial:QUIET:BURST.")
  in
  let deadline_arg =
    Arg.(
      value & opt (some string) None
      & info [ "deadline" ] ~docv:"LO:HI"
          ~doc:"Per-job deadline drawn from [LO,HI] cycles after submission.")
  in
  let faulty_arg =
    Arg.(
      value & opt (some int) None
      & info [ "faulty-tenant" ] ~docv:"T"
          ~doc:
            "Give tenant $(docv) a fault plan and a tight cycle budget, so its jobs fail \
             structurally and its circuit breaker quarantines it.")
  in
  let service_arg =
    Arg.(
      value & opt string "hbc"
      & info [ "service" ] ~docv:"SVC" ~doc:"Service executor: hbc, tpal, omp-static, or omp-dynamic.")
  in
  let sseed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Server seed: the whole run.")
  in
  let sanitize_arg =
    Arg.(
      value & flag
      & info [ "sanitize" ]
          ~doc:
            "Run the server-level checker (job + budget conservation) and a per-job scheduler \
             checker; violations exit 3.")
  in
  let verify_arg =
    Arg.(
      value & flag
      & info [ "verify" ] ~doc:"Differentially check every completed job against its serial reference.")
  in
  let trace_arg =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"PATH"
          ~doc:"Write the server's lifecycle trace as Chrome trace_event JSON to $(docv).")
  in
  let decisions_arg =
    Arg.(
      value & opt (some string) None
      & info [ "decisions" ] ~docv:"PATH"
          ~doc:
            "Write the textual decision journal to $(docv); byte-identical across equal-seed \
             runs (the determinism smoke diffs two of these).")
  in
  let expect_shed_arg =
    Arg.(value & flag & info [ "expect-shed" ] ~doc:"Exit 4 unless at least one job was shed.")
  in
  let expect_deadline_arg =
    Arg.(
      value & flag
      & info [ "expect-deadline" ] ~doc:"Exit 4 unless at least one job exceeded its deadline.")
  in
  let preempt_arg =
    Arg.(
      value & opt string "cancel"
      & info [ "preempt-policy" ] ~docv:"POLICY"
          ~doc:
            "What a deadline does to a running job: $(b,cancel) kills it (partial results \
             journaled); $(b,pause) checkpoints it at an engine boundary, refunds its unused \
             promotion grant, and requeues it with a refreshed deadline — completed jobs are \
             byte-identical to uninterrupted runs.")
  in
  let max_preempts_arg =
    Arg.(
      value & opt int 4
      & info [ "max-preempts" ] ~docv:"N"
          ~doc:
            "Pause/resume episodes (and breaker deferrals) allowed per job before the final \
             episode runs against a hard deadline.")
  in
  let wal_arg =
    Arg.(
      value & opt (some string) None
      & info [ "wal" ] ~docv:"PATH"
          ~doc:
            "Write the decision journal through a write-ahead log at $(docv): each line is \
             flushed before the next decision. Re-running against a partial log (after a kill) \
             byte-verifies the committed prefix, drops a torn trailing record, and appends only \
             new decisions.")
  in
  let kill_after_arg =
    Arg.(
      value & opt (some int) None
      & info [ "kill-after" ] ~docv:"N"
          ~doc:
            "Crash injection (needs $(b,--wal)): after $(docv) WAL appends, tear the next \
             record mid-write and abort with exit 137 — the recovery smoke resumes from the \
             torn log.")
  in
  let workload_cycle = [| "plus-reduce-array"; "mandelbrot"; "spmv-powerlaw"; "kmeans" |] in
  let run tenants jobs pool qcap arrival deadline faulty service seed sanitize verify trace_path
      decisions_path expect_shed expect_deadline preempt max_preempts wal kill_after =
    let arrival =
      match Serve.Arrival.of_string arrival with
      | Some a -> a
      | None ->
          Printf.eprintf "serve: bad --arrival %s (poisson:G | burst:P:S | adversarial:Q:B)\n"
            arrival;
          exit 2
    in
    let deadline =
      Option.map
        (fun s ->
          match String.split_on_char ':' s with
          | [ lo; hi ] -> (
              match (int_of_string_opt lo, int_of_string_opt hi) with
              | Some lo, Some hi when 0 < lo && lo <= hi -> (lo, hi)
              | _ ->
                  Printf.eprintf "serve: bad --deadline %s (want LO:HI, 0 < LO <= HI)\n" s;
                  exit 2)
          | _ ->
              Printf.eprintf "serve: bad --deadline %s (want LO:HI)\n" s;
              exit 2)
        deadline
    in
    let service =
      match service with
      | "hbc" -> Serve.Server.Hbc
      | "tpal" -> Serve.Server.Tpal { chunk = 64 }
      | "omp-static" ->
          Serve.Server.Omp
            { (Baselines.Openmp.dynamic ()) with Baselines.Openmp.schedule = Baselines.Openmp.Static }
      | "omp-dynamic" -> Serve.Server.Omp (Baselines.Openmp.dynamic ())
      | other ->
          Printf.eprintf "serve: unknown service %s\n" other;
          exit 2
    in
    let tenant i =
      let faulty = faulty = Some i in
      {
        Serve.Server.tenant_default with
        Serve.Server.weight = 1 + (i mod 2);
        arrival;
        jobs;
        workloads = [ workload_cycle.(i mod Array.length workload_cycle) ];
        workers_wanted = 2 + (2 * (i mod 2));
        deadline;
        cycle_budget = (if faulty then Some (3_000, 6_000) else None);
        fault_plan =
          (if faulty then
             Some
               {
                 Sim.Fault_plan.none with
                 Sim.Fault_plan.seed = seed + i;
                 beat_drop_prob = 0.3;
                 beat_jitter = 2_000;
                 steal_fail_prob = 0.3;
                 steal_fail_burst = 2;
                 stall_prob = 0.1;
                 stall_cycles = 1_000;
               }
           else None);
      }
    in
    (match faulty with
    | Some t when t < 0 || t >= tenants ->
        Printf.eprintf "serve: --faulty-tenant %d out of range (0..%d)\n" t (tenants - 1);
        exit 2
    | _ -> ());
    let preempt =
      match Serve.Server.preempt_of_string preempt with
      | Some p -> p
      | None ->
          Printf.eprintf "serve: bad --preempt-policy %s (cancel | pause)\n" preempt;
          exit 2
    in
    if kill_after <> None && wal = None then begin
      Printf.eprintf "serve: --kill-after needs --wal\n";
      exit 2
    end;
    let capture = Option.map (fun _ -> Obs.Trace.Sink.stream ()) trace_path in
    let cfg =
      {
        Serve.Server.default_config with
        Serve.Server.tenants = Array.init tenants tenant;
        pool;
        queue_capacity = qcap;
        seed;
        service;
        sanitize;
        verify;
        trace = (match capture with Some s -> s | None -> Obs.Trace.Sink.null);
        preempt;
        max_preempts;
        wal;
        wal_kill_after = kill_after;
      }
    in
    let r =
      try Serve.Server.run cfg with
      | Serve.Server.Killed ->
          Printf.eprintf "serve: killed by --kill-after crash injection (WAL record torn)\n";
          exit 137
      | Serve.Server.Wal msg ->
          Printf.eprintf "serve: WAL recovery failed: %s\n" msg;
          exit 5
    in
    let s = r.Serve.Server.stats in
    Printf.printf
      "service          : %s (%d tenants x %d jobs, pool %d, queue %d, seed %d, preempt %s)\n"
      (Serve.Server.service_name service)
      tenants jobs pool qcap seed
      (Serve.Server.preempt_name preempt);
    (match wal with
    | None -> ()
    | Some path ->
        Printf.printf "wal              : %d committed line(s) replayed <- %s\n"
          r.Serve.Server.wal_replayed path);
    Printf.printf "%s\n" (Serve.Server.summary r);
    let by_tenant = Hashtbl.create 8 in
    List.iter
      (fun (rep : Serve.Server.job_report) ->
        let c, d, sh, f =
          try Hashtbl.find by_tenant rep.Serve.Server.tenant with Not_found -> (0, 0, 0, 0)
        in
        Hashtbl.replace by_tenant rep.Serve.Server.tenant
          (match rep.Serve.Server.outcome with
          | Serve.Server.Completed -> (c + 1, d, sh, f)
          | Serve.Server.Deadline_exceeded -> (c, d + 1, sh, f)
          | Serve.Server.Rejected _ -> (c, d, sh + 1, f)
          | Serve.Server.Failed _ -> (c, d, sh, f + 1)))
      r.Serve.Server.reports;
    for t = 0 to tenants - 1 do
      let c, d, sh, f = try Hashtbl.find by_tenant t with Not_found -> (0, 0, 0, 0) in
      Printf.printf "tenant %d         : %d completed, %d deadline, %d shed, %d failed%s\n" t c d
        sh f
        (if faulty = Some t then " (faulty)" else "")
    done;
    (match decisions_path with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc r.Serve.Server.decisions);
        Printf.printf "decisions        : %d lines -> %s\n"
          (List.length (String.split_on_char '\n' r.Serve.Server.decisions) - 1)
          path);
    (match (trace_path, capture) with
    | Some path, Some sink ->
        let records = Obs.Trace.Sink.captured sink in
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc (Obs.Perfetto.to_string ~process_name:"hbc-serve" records));
        Printf.printf "trace            : %d events -> %s\n" (List.length records) path
    | _ -> ());
    if r.Serve.Server.violations <> [] then begin
      List.iter
        (fun (job, (v : Sanitizer.Checker.violation)) ->
          Printf.eprintf "violation %s: [%s] t=%d %s\n"
            (match job with Some j -> Printf.sprintf "job %d" j | None -> "server")
            (Sanitizer.Checker.invariant_name v.Sanitizer.Checker.invariant)
            v.Sanitizer.Checker.time v.Sanitizer.Checker.message)
        r.Serve.Server.violations;
      exit 3
    end;
    if sanitize then Printf.printf "sanitizer        : ok (server + %d job runs)\n" s.Serve.Server.admitted;
    if expect_shed && s.Serve.Server.shed = 0 then begin
      Printf.eprintf "serve: expected sheds but none occurred\n";
      exit 4
    end;
    if expect_deadline && s.Serve.Server.deadline_exceeded = 0 then begin
      Printf.eprintf "serve: expected deadline misses but none occurred\n";
      exit 4
    end
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const run $ tenants_arg $ jobs_arg $ pool_arg $ qcap_arg $ arrival_arg $ deadline_arg
      $ faulty_arg $ service_arg $ sseed_arg $ sanitize_arg $ verify_arg $ trace_arg
      $ decisions_arg $ expect_shed_arg $ expect_deadline_arg $ preempt_arg $ max_preempts_arg
      $ wal_arg $ kill_after_arg)

let () =
  let doc = "Reproduction harness for 'Compiling Loop-Based Nested Parallelism for Irregular Workloads' (ASPLOS'24)" in
  let info = Cmd.info "hbc_repro" ~doc in
  let cmds =
    [
      all_cmd;
      list_cmd;
      run_cmd;
      asm_cmd;
      ablation_cmd;
      timeline_cmd;
      trace_lint_cmd;
      bench_diff_cmd;
      fuzz_cmd;
      serve_cmd;
    ]
    @ List.map fig_cmd Experiments.Run_all.figures
  in
  exit (Cmd.eval (Cmd.group info cmds))
