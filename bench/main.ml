(* Benchmark harness.

   Report mode — `main.exe --report PATH [--label L]` runs the deterministic
   perf-gate suite (Benchgate.Suite: micro probes over the runtime
   primitives and hot paths, one tiny-scale macro probe per figure family)
   and writes a machine-readable Benchgate.Report JSON; CI diffs it against
   bench/baseline.json with `hbc_repro bench-diff`. Nothing else runs in
   this mode.

   Part 1 — bechamel micro-benchmarks of the runtime primitives whose costs
   the simulator's cost model abstracts (deque operations, polls/AC, the
   perfect-hash leftover table, the rollforward compiler, the compilation
   pipeline itself), plus one Test.make per reproduced table/figure running
   a miniature configuration of that experiment.

   Part 2 — regeneration of every table and figure of the paper's evaluation
   (Figs. 4-16) at full scale, printing the same rows/series the paper
   reports. Scale/workers can be overridden with HBC_BENCH_SCALE and
   HBC_BENCH_WORKERS. *)

open Bechamel
open Toolkit

let tiny = { Experiments.Harness.default_config with scale = 0.04; workers = 8 }

(* --------------------- micro-benchmarks -------------------------- *)

let bench_deque =
  Test.make ~name:"deque push/pop x64"
    (Staged.stage (fun () ->
         let d = Sim.Deque.create () in
         for i = 0 to 63 do
           Sim.Deque.push_bottom d i
         done;
         for _ = 0 to 31 do
           ignore (Sim.Deque.pop_bottom d)
         done;
         for _ = 0 to 31 do
           ignore (Sim.Deque.steal d)
         done))

let bench_rng =
  Test.make ~name:"rng zipf x64"
    (Staged.stage
       (let r = Sim.Sim_rng.create 1 in
        fun () ->
          for _ = 0 to 63 do
            ignore (Sim.Sim_rng.zipf r ~alpha:1.4 ~n:1000)
          done))

let bench_perfect_hash =
  let keys = List.init 24 (fun i -> (i, i / 2)) in
  let t = Hbc_core.Perfect_hash.build keys in
  Test.make ~name:"leftover table lookup x64"
    (Staged.stage (fun () ->
         for i = 0 to 63 do
           ignore (Hbc_core.Perfect_hash.lookup t (i mod 24, i mod 12))
         done))

let bench_ac =
  Test.make ~name:"adaptive chunking beat cycle"
    (Staged.stage
       (let ac = Sched.Adaptive_chunking.create ~target_polls:8 ~window:2 () in
        fun () ->
          for _ = 0 to 15 do
            Sched.Adaptive_chunking.on_poll ac
          done;
          ignore (Sched.Adaptive_chunking.on_heartbeat ac)))

let bench_membus =
  Test.make ~name:"membus serve x64"
    (Staged.stage
       (let b = Sim.Membus.create ~bytes_per_cycle:44.0 in
        let t = ref 0 in
        fun () ->
          for _ = 0 to 63 do
            t := !t + 100;
            ignore (Sim.Membus.serve b ~now:!t ~compute:80 ~bytes:512)
          done))

let bench_engine =
  Test.make ~name:"engine: 4 workers x100 advances"
    (Staged.stage (fun () ->
         let e = Sim.Engine.create ~num_workers:4 () in
         Sim.Engine.run e (fun w ->
             for _ = 1 to 100 do
               Sim.Engine.advance e (w + 7)
             done)))

let spmv_nest_for_bench () =
  Ir.Program.single_nest
    (Workloads.Spmv.make_program ~name:"bench-nest" ~make_matrix:(fun () ->
         Workloads.Matrix_gen.arrowhead ~n:64))

let bench_pipeline =
  Test.make ~name:"HBC pipeline: compile spmv nest"
    (Staged.stage (fun () -> ignore (Hbc_core.Pipeline.compile_nest (spmv_nest_for_bench ()))))

let bench_rollforward =
  let listing =
    Hbc_core.Pseudo_asm.generate (Hbc_core.Pipeline.compile_nest (spmv_nest_for_bench ()))
  in
  Test.make ~name:"rollforward compiler (RFC)"
    (Staged.stage (fun () -> ignore (Hbc_core.Rollforward.compile listing)))

(* One miniature run per figure: these are the end-to-end units the full
   tables below are made of. *)
let bench_figure (f : Experiments.Figure.t) =
  Test.make ~name:(f.Experiments.Figure.id ^ " (miniature)")
    (Staged.stage (fun () ->
         Experiments.Harness.clear_cache ();
         ignore (f.Experiments.Figure.render tiny)))

let bench_fork_join =
  Test.make ~name:"fork-join: heartbeat fib(15)"
    (Staged.stage (fun () ->
         let rec fib ctx n =
           if n < 2 then n
           else begin
             let a, b =
               Hbc_core.Fork_join.fork2 ctx (fun c -> fib c (n - 1)) (fun c -> fib c (n - 2))
             in
             a + b
           end
         in
         let out = ref 0 in
         ignore
           (Hbc_core.Fork_join.run
              ~cfg:{ Hbc_core.Rt_config.default with workers = 4 }
              (fun ctx -> out := fib ctx 15))))

let bench_native_pool =
  Test.make ~name:"native domains: parallel_reduce 50k"
    (Staged.stage
       (let pool = Hb_parallel.Hb_par.create ~num_domains:2 () in
        at_exit (fun () -> Hb_parallel.Hb_par.shutdown pool);
        fun () ->
          ignore
            (Hb_parallel.Hb_par.parallel_reduce pool ~lo:0 ~hi:50_000 ~init:0
               ~body:(fun a i -> a + (i land 7))
               ~combine:( + ))))

let micro_tests =
  [
    bench_deque;
    bench_rng;
    bench_perfect_hash;
    bench_ac;
    bench_membus;
    bench_engine;
    bench_pipeline;
    bench_rollforward;
    bench_fork_join;
    bench_native_pool;
  ]

let run_bechamel tests =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.25) ~stabilize:false ~kde:None () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name est ->
          let ns =
            match Analyze.OLS.estimates est with Some [ v ] -> v | _ -> Float.nan
          in
          Printf.printf "  %-44s %14.1f ns/run\n%!" name ns)
        results)
    tests

(* --report PATH [--label L] [--note K=V]...: emit the perf-gate report
   and exit. *)
let flag_value name =
  let rec find i =
    if i + 1 >= Array.length Sys.argv then None
    else if Sys.argv.(i) = name then Some Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

let flag_values name =
  let rec collect i acc =
    if i + 1 >= Array.length Sys.argv then List.rev acc
    else if Sys.argv.(i) = name then collect (i + 2) (Sys.argv.(i + 1) :: acc)
    else collect (i + 1) acc
  in
  collect 1 []

(* --suite selects which probe families the report runs. "macro" is the
   whole macro-scale gate set (figure families, the P-sweep, serving) so
   CI's micro and macro steps partition the full suite between them;
   "nightly" is the ungated P=1024 sweep point. *)
let suite_probes = function
  | "all" -> Benchgate.Suite.all ()
  | "micro" -> Benchgate.Suite.micro ()
  | "macro" -> Benchgate.Suite.macro () @ Benchgate.Suite.p_sweep () @ Benchgate.Suite.serve ()
  | "p-sweep" -> Benchgate.Suite.p_sweep ()
  | "serve" -> Benchgate.Suite.serve ()
  | "nightly" -> Benchgate.Suite.nightly ()
  | s ->
      Printf.eprintf
        "unknown --suite %s (expected all | micro | macro | p-sweep | serve | nightly)\n" s;
      exit 2

let report_mode path =
  let label = Option.value (flag_value "--label") ~default:"dev" in
  let suite = Option.value (flag_value "--suite") ~default:"all" in
  let notes =
    List.map
      (fun kv ->
        match String.index_opt kv '=' with
        | Some i -> (String.sub kv 0 i, String.sub kv (i + 1) (String.length kv - i - 1))
        | None -> (kv, ""))
      (flag_values "--note")
  in
  let probes = suite_probes suite in
  let report = Benchgate.Suite.report ~notes:(notes @ [ ("suite", suite) ]) ~probes ~label () in
  Benchgate.Report.write_file path report;
  Printf.printf "benchgate: wrote %d probes (suite %s, label %s) to %s\n"
    (List.length report.Benchgate.Report.probes) suite label path

let () =
  match flag_value "--report" with
  | Some path -> report_mode path
  | None ->
  let scale =
    match Sys.getenv_opt "HBC_BENCH_SCALE" with Some s -> float_of_string s | None -> 1.0
  in
  let workers =
    match Sys.getenv_opt "HBC_BENCH_WORKERS" with Some s -> int_of_string s | None -> 64
  in
  print_endline "=== Part 1: micro-benchmarks (bechamel) ===";
  run_bechamel micro_tests;
  print_endline "\n=== Part 1b: per-figure miniature benchmarks (bechamel) ===";
  run_bechamel (List.map bench_figure Experiments.Run_all.figures);
  Printf.printf "\n=== Part 2: full reproduction of Figures 4-16 (scale %.2f, %d workers) ===\n\n%!"
    scale workers;
  Experiments.Harness.clear_cache ();
  let config = { Experiments.Harness.default_config with scale; workers } in
  print_string (Experiments.Run_all.render_all config);
  match Experiments.Harness.validation_failures () with
  | [] -> print_endline "\nAll runs validated against the sequential reference."
  | fails ->
      Printf.printf "\nVALIDATION FAILURES: %s\n"
        (String.concat ", " (List.map (fun (b, t) -> b ^ "/" ^ t) fails));
      exit 1
