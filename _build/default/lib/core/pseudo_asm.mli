(** Pseudo-assembly emission.

    The heartbeat linker of the paper operates on the textual ".s" file
    produced by the back-end. We reproduce that stage faithfully on a small
    x86-flavoured pseudo-assembly: each compiled nest lowers to a listing
    with one slice function per DOALL loop, their chunked latches, and a
    [poll] instruction at every promotion-ready program point. The
    rollforward compiler ({!Rollforward}) then transforms this text exactly
    as the paper's 250-line Perl RFC does. *)

type listing = string list

val generate : 'e Compiled.nest -> listing
(** Deterministic lowering of a compiled nest. *)

val poll_mnemonic : string
(** The instruction injected at PRPPTs ("poll"). *)

val is_poll : string -> bool
(** Does this line contain the poll instruction? *)

val is_label_def : string -> bool

val label_name : string -> string option
(** Label being defined on the line, when {!is_label_def}. *)

val is_directive : string -> bool

val instruction_count : listing -> int
(** Lines that are real instructions (not labels/directives/blank). *)

val poll_sites : listing -> int

val to_string : listing -> string
