(** Heartbeat scheduling for recursive fork-join programs — the extension
    the paper leaves as future work ("HBC targets loops and not recursive
    functions", Sec. 6.1), implemented per the original heartbeat-scheduling
    model (Acar et al., PLDI'18): every [fork2] is {e latent} parallelism;
    the runtime runs both branches sequentially unless a heartbeat has
    elapsed, in which case the second branch is promoted into a stealable
    task. Task creation is therefore amortized against at least one
    heartbeat interval of useful work, independent of the recursion's
    granularity.

    Runs on the same simulated machine, scheduler, and heartbeat mechanisms
    as the loop runtime. *)

type ctx
(** Execution context handed to the recursive computation. *)

val fork2 : ctx -> (ctx -> 'a) -> (ctx -> 'b) -> 'a * 'b
(** Evaluate two branches as a (latently parallel) fork-join pair. *)

val advance : ctx -> int -> unit
(** Consume cycles of leaf work (with bytes use {!advance_bytes}). *)

val advance_bytes : ctx -> compute:int -> bytes:int -> unit

type result = {
  makespan : int;
  work_cycles : int;
  metrics : Sim.Metrics.t;
  promoted_forks : int;
  sequential_forks : int;
}

val run : ?cfg:Rt_config.t -> (ctx -> unit) -> result
(** Execute a recursive computation under heartbeat scheduling; worker 0
    runs the root, promotions feed the work-stealing pool. The config's
    mechanism must be [Software_polling] (the default); forks poll at entry
    like PRPPTs. *)
