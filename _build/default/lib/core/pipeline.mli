(** The HBC middle-end driver (Fig. 2): validation, outlining + nesting-tree
    construction, loop-slice task generation, promotion-point insertion,
    chunking, leftover generation, and task linking. *)

exception Compile_error of string

val compile_nest :
  ?chunk:Compiled.chunk_mode -> ?all_leftover_pairs:bool -> 'e Ir.Nest.loop -> 'e Compiled.nest
(** Compile one loop nest. [chunk] (default [Adaptive]) applies to every
    innermost DOALL loop.
    @raise Compile_error when {!Ir.Validate} reports errors. *)

type 'e program = {
  source : 'e Ir.Program.t;
  nests : ('e Ir.Nest.loop * 'e Compiled.nest) list;
      (** keyed by physical equality on the source nest *)
}

val compile_program :
  ?chunk:Compiled.chunk_mode -> ?all_leftover_pairs:bool -> 'e Ir.Program.t -> 'e program

val nest_of : 'e program -> 'e Ir.Nest.loop -> 'e Compiled.nest
(** Find the compiled form of a source nest (physical equality).
    @raise Not_found otherwise. *)
