let fn_name (l : _ Ir.Nest.loop) = Printf.sprintf "__hbc_slice_%s@%d" l.Ir.Nest.loop_name l.Ir.Nest.ordinal

let run root =
  let tree = Ir.Nesting_tree.build root in
  let outlined =
    Ir.Nest.loops_preorder root
    |> List.filter (fun (l : _ Ir.Nest.loop) -> l.Ir.Nest.doall && not (Ir.Loop_id.is_none l.Ir.Nest.id))
    |> List.map (fun (l : _ Ir.Nest.loop) ->
           {
             Compiled.out_ordinal = l.Ir.Nest.ordinal;
             fn_name = fn_name l;
             live_out_floats = l.Ir.Nest.locals_spec.Ir.Locals.nfloats;
             live_out_ints = l.Ir.Nest.locals_spec.Ir.Locals.nints;
           })
  in
  (tree, outlined)
