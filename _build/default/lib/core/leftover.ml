(* Algorithm 2: build the step program of the leftover task for the case
   where L_i received a heartbeat and L_j was split. *)
let generate_one tree ~li ~lj =
  let steps = ref [] in
  let add s = steps := s :: !steps in
  (* Complete the current invocation of L_i, starting at its next iteration. *)
  add (Compiled.Increase_iv li);
  add (Compiled.Call_slice li);
  (* Walk ancestors strictly between L_i and L_j. *)
  let rec walk prev p =
    if p <> lj then begin
      add (Compiled.Tail_work { of_ = p; after = prev });
      add (Compiled.Increase_iv p);
      add (Compiled.Call_slice p);
      match (Ir.Nesting_tree.node tree p).Ir.Nesting_tree.parent with
      | Some gp -> walk p gp
      | None -> invalid_arg "Leftover.generate_one: lj is not an ancestor of li"
    end
    else add (Compiled.Tail_work { of_ = lj; after = prev })
  in
  (match (Ir.Nesting_tree.node tree li).Ir.Nesting_tree.parent with
  | Some p -> walk li p
  | None -> invalid_arg "Leftover.generate_one: li has no ancestor");
  { Compiled.li; lj; steps = List.rev !steps }

(* Algorithm 1: enumerate the (L_i, ancestor) pairs needing a leftover. *)
let generate_all ?(all_pairs = true) tree =
  let origins =
    if all_pairs then
      List.filter
        (fun o -> (Ir.Nesting_tree.node tree o).Ir.Nesting_tree.parent <> None)
        (Ir.Nesting_tree.doall_ordinals tree)
    else Ir.Nesting_tree.leaves tree
  in
  List.concat_map
    (fun l ->
      List.map (fun p -> generate_one tree ~li:l ~lj:p) (Ir.Nesting_tree.ancestors tree l))
    origins
