type t = {
  config : Rt_config.t;
  eng : Sim.Engine.t;
  metrics : Sim.Metrics.t;
  busy : bool array;
  (* software polling: index of the last heartbeat interval seen per worker *)
  last_interval : int array;
  (* interrupt mechanisms: pending-delivery flags *)
  pending : bool array;
  mutable cancel : (unit -> unit) option;
  mutable stopped : bool;
  mutable stretch_debt : int;  (* ping thread: accumulated period overrun *)
}

let create config eng metrics =
  let n = Sim.Engine.num_workers eng in
  {
    config;
    eng;
    metrics;
    busy = Array.make n false;
    last_interval = Array.make n 0;
    pending = Array.make n false;
    cancel = None;
    stopped = false;
    stretch_debt = 0;
  }

let interval t = t.config.Rt_config.cost.Sim.Cost_model.heartbeat_interval

let kernel_module_beat t () =
  for w = 0 to Array.length t.busy - 1 do
    if t.busy.(w) then begin
      t.metrics.Sim.Metrics.heartbeats_generated <-
        t.metrics.Sim.Metrics.heartbeats_generated + 1;
      if t.pending.(w) then
        t.metrics.Sim.Metrics.heartbeats_missed <- t.metrics.Sim.Metrics.heartbeats_missed + 1
      else t.pending.(w) <- true
    end
  done

(* The ping thread is one sequential sender: each beat it walks the busy
   workers issuing one POSIX signal at a time. When signaling the team takes
   longer than the heartbeat interval, the next beat starts late — the
   effective heartbeat rate stretches and the difference shows up as missed
   beats, uniformly over workers (the paper reports up to 45% missed). *)
let rec ping_thread_beat t scheduled_time () =
  if not t.stopped then begin
    let beat_time = Sim.Engine.now t.eng in
    let send = t.config.Rt_config.cost.Sim.Cost_model.signal_send_cost in
    let busy_workers = ref [] in
    for w = Array.length t.busy - 1 downto 0 do
      if t.busy.(w) then busy_workers := w :: !busy_workers
    done;
    let finish = ref beat_time in
    List.iteri
      (fun i w ->
        let delivery = beat_time + ((i + 1) * send) in
        finish := delivery;
        t.metrics.Sim.Metrics.heartbeats_generated <-
          t.metrics.Sim.Metrics.heartbeats_generated + 1;
        Sim.Engine.schedule_at t.eng ~time:delivery (fun () ->
            if t.pending.(w) then
              t.metrics.Sim.Metrics.heartbeats_missed <-
                t.metrics.Sim.Metrics.heartbeats_missed + 1
            else t.pending.(w) <- true))
      !busy_workers;
    (* Next beat: on schedule if the team was signaled in time, otherwise as
       soon as the sender is free; skipped periods are lost heartbeats. *)
    let next_nominal = scheduled_time + interval t in
    let next = Stdlib.max next_nominal !finish in
    (* Period overrun accumulates; every full interval of accumulated debt
       is one heartbeat the machine never received. *)
    t.stretch_debt <- t.stretch_debt + (next - next_nominal);
    let nbusy = List.length !busy_workers in
    while t.stretch_debt >= interval t do
      t.stretch_debt <- t.stretch_debt - interval t;
      t.metrics.Sim.Metrics.heartbeats_generated <-
        t.metrics.Sim.Metrics.heartbeats_generated + nbusy;
      t.metrics.Sim.Metrics.heartbeats_missed <-
        t.metrics.Sim.Metrics.heartbeats_missed + nbusy
    done;
    Sim.Engine.schedule_at t.eng ~time:next (ping_thread_beat t next)
  end

let start t =
  let arm beat =
    t.cancel <- Some (Sim.Engine.every t.eng ~start:(interval t) ~interval:(interval t) beat)
  in
  match t.config.Rt_config.mechanism with
  | Rt_config.Software_polling -> ()
  | Rt_config.Interrupt_kernel_module -> arm (kernel_module_beat t)
  | Rt_config.Interrupt_ping_thread ->
      Sim.Engine.schedule_at t.eng ~time:(interval t) (ping_thread_beat t (interval t))

let stop t =
  t.stopped <- true;
  match t.cancel with
  | Some cancel ->
      cancel ();
      t.cancel <- None
  | None -> ()

let set_busy t ~worker v =
  t.busy.(worker) <- v;
  if v && t.config.Rt_config.mechanism = Rt_config.Software_polling then
    t.last_interval.(worker) <- Sim.Engine.now t.eng / interval t

let poll_cost t =
  match t.config.Rt_config.mechanism with
  | Rt_config.Software_polling -> t.config.Rt_config.cost.Sim.Cost_model.poll_cost
  | Rt_config.Interrupt_kernel_module | Rt_config.Interrupt_ping_thread -> 0

let consume t ~worker ~count_poll =
  let cm = t.config.Rt_config.cost in
  match t.config.Rt_config.mechanism with
  | Rt_config.Software_polling ->
      if count_poll then t.metrics.Sim.Metrics.polls <- t.metrics.Sim.Metrics.polls + 1;
      let cur = Sim.Engine.now t.eng / interval t in
      let last = t.last_interval.(worker) in
      if cur > last then begin
        t.last_interval.(worker) <- cur;
        let gap = cur - last in
        t.metrics.Sim.Metrics.heartbeats_generated <-
          t.metrics.Sim.Metrics.heartbeats_generated + gap;
        t.metrics.Sim.Metrics.heartbeats_detected <-
          t.metrics.Sim.Metrics.heartbeats_detected + 1;
        t.metrics.Sim.Metrics.heartbeats_missed <-
          t.metrics.Sim.Metrics.heartbeats_missed + (gap - 1);
        true
      end
      else false
  | Rt_config.Interrupt_kernel_module | Rt_config.Interrupt_ping_thread ->
      if t.pending.(worker) then begin
        t.pending.(worker) <- false;
        let c =
          (match t.config.Rt_config.mechanism with
          | Rt_config.Interrupt_kernel_module -> cm.Sim.Cost_model.interrupt_delivery_cost
          | Rt_config.Interrupt_ping_thread -> cm.Sim.Cost_model.signal_delivery_cost
          | Rt_config.Software_polling -> 0)
          + cm.Sim.Cost_model.rollforward_lookup_cost
        in
        Sim.Engine.advance t.eng c;
        Sim.Metrics.add_overhead t.metrics "interrupt" c;
        t.metrics.Sim.Metrics.heartbeats_detected <-
          t.metrics.Sim.Metrics.heartbeats_detected + 1;
        true
      end
      else false
