type t = {
  target : int;
  window : int;
  mutable chunk : int;
  mutable polls : int;  (* since last heartbeat *)
  mutable log : int list;  (* poll counts of closed intervals, newest first *)
}

let create ?(initial_chunk = 1) ~target_polls ~window () =
  if target_polls < 1 then invalid_arg "Adaptive_chunking.create: target_polls < 1";
  if window < 1 then invalid_arg "Adaptive_chunking.create: window < 1";
  { target = target_polls; window; chunk = Stdlib.max 1 initial_chunk; polls = 0; log = [] }

let chunk_size t = t.chunk

let on_poll t = t.polls <- t.polls + 1

let on_heartbeat t =
  t.log <- t.polls :: t.log;
  t.polls <- 0;
  if List.length t.log >= t.window then begin
    let minimum = List.fold_left Stdlib.min max_int t.log in
    t.log <- [];
    let ratio = Float.of_int minimum /. Float.of_int t.target in
    let chunk = Stdlib.max 1 (int_of_float (Float.round (Float.of_int t.chunk *. ratio))) in
    t.chunk <- chunk;
    Some chunk
  end
  else None

let polls_since_heartbeat t = t.polls

let intervals_logged t = List.length t.log
