(** The heartbeat linker (Sec. 4): the final pipeline stage that makes
    heartbeats visible to the program, in one of two ways.

    Software polling: keep the [poll] instructions at every promotion-ready
    program point and link the program against the polling runtime.

    Hardware interrupts: run the rollforward compiler, link both twins, and
    embed the rollforward/rollback tables for the signal handler or kernel
    module to use. *)

type mode = Software_polling | Interrupts

type artifact = {
  mode : mode;
  listing : Pseudo_asm.listing;  (** the image actually executed *)
  polling_sites : int;  (** PRPPTs carrying a poll in the executed image *)
  rollforward : Rollforward.t option;  (** present in [Interrupts] mode *)
}

val link : mode -> 'e Compiled.nest -> artifact

val link_program : mode -> 'e Pipeline.program -> artifact list
