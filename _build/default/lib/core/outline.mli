(** Loop nested tree outlining (Sec. 3.1).

    Isolates each DOALL loop into its own callable loop-slice function,
    identifies live-ins/live-outs, and builds the inter-procedural
    loop-nesting tree with (level, index) IDs. In this embedding the
    "function" is the runtime's slice interpreter specialized by the
    descriptor produced here; the live-out analysis reads the loop's locals
    spec (the storage HBC would pass by reference). *)

val run : 'e Ir.Nest.loop -> Ir.Nesting_tree.t * Compiled.outlined list
(** Build the pruned nesting tree (assigning ordinals and loop IDs as a side
    effect) and one outlined-function descriptor per DOALL loop. *)

val fn_name : 'e Ir.Nest.loop -> string
(** Deterministic generated name, e.g. ["__hbc_slice_col@1"]. *)
