type t = {
  mult : int64;
  shift : int;
  (* slot -> (encoded key, value); -1 encodes an empty slot *)
  keys : int array;
  values : int array;
}

let encode (a, b) = (a * 65_536) + b + 1

let slot_of mult shift key =
  let h = Int64.mul (Int64.of_int key) mult in
  Int64.to_int (Int64.shift_right_logical h shift)

let rec next_pow2 n = if n <= 1 then 1 else 2 * next_pow2 ((n + 1) / 2)

let build pairs =
  let n = List.length pairs in
  let encoded = List.map encode pairs in
  let distinct = List.sort_uniq Stdlib.compare encoded in
  if List.length distinct <> n then invalid_arg "Perfect_hash.build: duplicate keys";
  let try_size size =
    let shift = 64 - int_of_float (Float.round (Float.log2 (Float.of_int size))) in
    let rng = Sim.Sim_rng.create (size + n) in
    let rec attempt tries =
      if tries = 0 then None
      else begin
        let mult = Int64.logor (Sim.Sim_rng.next_int64 rng) 1L in
        let seen = Array.make size false in
        let ok =
          List.for_all
            (fun k ->
              let s = slot_of mult shift k in
              if s < size && not seen.(s) then begin
                seen.(s) <- true;
                true
              end
              else false)
            encoded
        in
        if ok then Some (mult, shift) else attempt (tries - 1)
      end
    in
    attempt 64
  in
  let rec search size =
    match try_size size with
    | Some (mult, shift) -> (size, mult, shift)
    | None -> search (2 * size)
  in
  let size0 = Stdlib.max 2 (next_pow2 (2 * Stdlib.max n 1)) in
  let size, mult, shift = search size0 in
  let keys = Array.make size (-1) in
  let values = Array.make size (-1) in
  List.iteri
    (fun i k ->
      let s = slot_of mult shift k in
      keys.(s) <- k;
      values.(s) <- i)
    encoded;
  { mult; shift; keys; values }

let lookup t pair =
  let k = encode pair in
  let s = slot_of t.mult t.shift k in
  if s < Array.length t.keys && t.keys.(s) = k then Some t.values.(s) else None

let table_size t = Array.length t.keys

let multiplier t = t.mult
