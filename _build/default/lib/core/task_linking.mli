(** Task linking (Sec. 3.4).

    Organizes the generated tasks for O(1) retrieval by the runtime: the
    two-dimensional loop-slice task array indexed by loop ID (level, index),
    and the perfectly-hashed leftover task table keyed by the (heartbeat
    loop, split loop) ordinal pair. *)

val slice_array : Ir.Nesting_tree.t -> int array array
(** [.(level).(index)] is the ordinal of the loop-slice task with that loop
    ID; [-1] for holes. *)

val leftover_table : Compiled.leftover list -> Compiled.leftover array * Perfect_hash.t
