type chunk_mode = No_chunking | Static of int | Adaptive

type step =
  | Increase_iv of int
  | Call_slice of int
  | Tail_work of { of_ : int; after : int }

type leftover = { li : int; lj : int; steps : step list }

type outlined = {
  out_ordinal : int;
  fn_name : string;
  live_out_floats : int;
  live_out_ints : int;
}

type 'e loop_info = {
  loop : 'e Ir.Nest.loop;
  ordinal : int;
  id : Ir.Loop_id.t;
  parent : int option;
  ancestors_up : int list;
  chain_from_root : int list;
  is_leaf : bool;
  doall : bool;
  depth : int;
  subtree : int list;
  tails : (int * 'e Ir.Nest.segment list) list;
  prppt : bool;
  chunk : chunk_mode;
}

type 'e nest = {
  source_name : string;
  tree : Ir.Nesting_tree.t;
  infos : 'e loop_info array;
  specs : Ir.Locals.spec array;
  root : int;
  outlined : outlined list;
  slice_array : int array array;
  leftovers : leftover array;
  leftover_table : Perfect_hash.t;
}

let info nest o = nest.infos.(o)

let tail_of info ~after = List.assoc after info.tails

let find_leftover nest ~li ~lj =
  match Perfect_hash.lookup nest.leftover_table (li, lj) with
  | Some i -> Some nest.leftovers.(i)
  | None -> None

let slice_ordinal nest (id : Ir.Loop_id.t) =
  if Ir.Loop_id.is_none id then None
  else if id.Ir.Loop_id.level >= Array.length nest.slice_array then None
  else begin
    let row = nest.slice_array.(id.Ir.Loop_id.level) in
    if id.Ir.Loop_id.index >= Array.length row then None
    else begin
      let o = row.(id.Ir.Loop_id.index) in
      if o < 0 then None else Some o
    end
  end
