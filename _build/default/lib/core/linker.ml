type mode = Software_polling | Interrupts

type artifact = {
  mode : mode;
  listing : Pseudo_asm.listing;
  polling_sites : int;
  rollforward : Rollforward.t option;
}

let link mode nest =
  let listing = Pseudo_asm.generate nest in
  match mode with
  | Software_polling ->
      { mode; listing; polling_sites = Pseudo_asm.poll_sites listing; rollforward = None }
  | Interrupts ->
      let rf = Rollforward.compile listing in
      (* The executed image is the poll-free source twin; the destination twin
         is entered only through the rollforward table. *)
      {
        mode;
        listing = rf.Rollforward.source;
        polling_sites = 0;
        rollforward = Some rf;
      }

let link_program mode (p : _ Pipeline.program) =
  List.map (fun (_, nest) -> link mode nest) p.Pipeline.nests
