(** The rollforward compiler, RFC (Sec. 4).

    A source-to-source translator over the assembly text: it emits a
    "source" twin of the code with every polling instruction elided and a
    "destination" twin with the polls kept, prepends a generated label to
    every instruction line ([__RF_SRC_n] / [__RF_DST_n]), renames original
    labels in the destination so the linked image has no duplicate symbols,
    and emits the rollforward table mapping each source label to its
    destination twin (plus the inverse rollback table). A hardware interrupt
    then only needs a table lookup on the interrupted instruction pointer to
    switch the execution into the polling version of the code. *)

type t = {
  source : Pseudo_asm.listing;  (** polls elided *)
  destination : Pseudo_asm.listing;  (** polls kept, labels renamed *)
  table : (string * string) list;  (** __RF_SRC_n -> __RF_DST_n *)
  rollback : (string * string) list;  (** inverse *)
  addresses : (string * int) list;
      (** "linker"-resolved byte addresses of every generated label *)
}

val compile : Pseudo_asm.listing -> t

val lookup : t -> string -> string option
(** Rollforward: destination label for a source label. *)

val lookup_rollback : t -> string -> string option

val lookup_address : t -> string -> int option

val src_label : int -> string

val dst_label : int -> string
