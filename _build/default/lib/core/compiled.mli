(** Artifacts produced by the HBC middle-end (Sec. 3).

    Each loop nest compiles into per-loop slice-task descriptors, a chunking
    plan for the leaves, the set of generated leftover tasks (as explicit
    step programs, the output of Algorithms 1 and 2), and the two lookup
    structures of the task-linking step: the loop-slice task array and the
    perfectly-hashed leftover task table. *)

type chunk_mode =
  | No_chunking  (** a promotion point runs at every leaf iteration *)
  | Static of int  (** fixed chunk size, as TPAL's hand tuning *)
  | Adaptive  (** runtime-controlled (Sec. 5.1) *)

(** One instruction of a leftover task (Algorithm 2). Interpreted against the
    task's LST context set. *)
type step =
  | Increase_iv of int  (** ordinal: advance that loop's induction variable *)
  | Call_slice of int  (** ordinal: run that loop's slice task over [lo, hi) *)
  | Tail_work of { of_ : int; after : int }
      (** run body segments of loop [of_] located after child [after], for
          the iteration currently in [of_]'s context *)

type leftover = {
  li : int;  (** loop that received the heartbeat *)
  lj : int;  (** loop that gets split *)
  steps : step list;
}

type outlined = {
  out_ordinal : int;
  fn_name : string;  (** name of the generated loop-slice function *)
  live_out_floats : int;  (** live-outs promoted into the LST context *)
  live_out_ints : int;
}

type 'e loop_info = {
  loop : 'e Ir.Nest.loop;
  ordinal : int;
  id : Ir.Loop_id.t;
  parent : int option;
  ancestors_up : int list;  (** parent, grandparent, ..., root *)
  chain_from_root : int list;  (** root, ..., self *)
  is_leaf : bool;
  doall : bool;
  depth : int;
  subtree : int list;  (** self + descendants, for context refresh on split *)
  tails : (int * 'e Ir.Nest.segment list) list;
      (** child ordinal -> segments after it (tail work), precomputed *)
  prppt : bool;  (** a promotion point was inserted at this loop's latch *)
  chunk : chunk_mode;  (** meaningful for leaves *)
}

type 'e nest = {
  source_name : string;
  tree : Ir.Nesting_tree.t;
  infos : 'e loop_info array;  (** indexed by ordinal *)
  specs : Ir.Locals.spec array;
  root : int;
  outlined : outlined list;
  slice_array : int array array;
      (** the loop-slice task array: [slice_array.(level).(index)] is the
          ordinal of the task with that loop ID; [-1] where undefined *)
  leftovers : leftover array;
  leftover_table : Perfect_hash.t;  (** (li, lj) -> index into [leftovers] *)
}

val info : 'e nest -> int -> 'e loop_info

val tail_of : 'e loop_info -> after:int -> 'e Ir.Nest.segment list
(** @raise Not_found if [after] is not a direct child. *)

val find_leftover : 'e nest -> li:int -> lj:int -> leftover option

val slice_ordinal : 'e nest -> Ir.Loop_id.t -> int option
(** Resolve a loop ID through the loop-slice task array. *)
