(** Leftover task generation (Sec. 3.3, Algorithms 1 and 2).

    A leftover task completes the current iteration of the split loop L_j
    after a heartbeat interrupted loop L_i: it finishes L_i's remaining
    iterations (through L_i's slice task, so they stay promotable), then for
    each intermediate ancestor runs its tail work, advances its induction
    variable, and runs its remaining iterations, and finally runs L_j's tail
    work. The task's code is the explicit {!Compiled.step} list.

    Algorithm 1 enumerates (leaf, ancestor) pairs. Because HBC also inserts
    promotion points at non-leaf latches, a heartbeat can interrupt an
    intermediate loop too; with [all_pairs] (the default used by the
    pipeline) the enumeration covers every (loop, proper-ancestor) pair so
    that such promotions also find their leftover task. *)

val generate_one : Ir.Nesting_tree.t -> li:int -> lj:int -> Compiled.leftover
(** Algorithm 2 for one (L_i, L_j) pair. [lj] must be a proper ancestor of
    [li]. *)

val generate_all : ?all_pairs:bool -> Ir.Nesting_tree.t -> Compiled.leftover list
(** Algorithm 1. [all_pairs] defaults to [true]; [false] reproduces the
    paper's leaves-only enumeration. *)
