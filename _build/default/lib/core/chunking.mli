(** Loop chunking transformation (Sec. 3.2).

    Applied to every innermost DOALL loop of a nesting tree: the promotion
    handler is invoked every S iterations instead of every iteration, with
    the residual counter R transferred across loop invocations (chunk size
    transferring). This pass only decides {e where} chunking applies and with
    which mode; the runtime maintains R per task. *)

val plan : Ir.Nesting_tree.t -> mode:Compiled.chunk_mode -> (int * Compiled.chunk_mode) list
(** [(leaf ordinal, mode)] for every DOALL leaf. Non-leaves never chunk. *)
