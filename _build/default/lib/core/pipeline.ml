exception Compile_error of string

let compile_nest ?(chunk = Compiled.Adaptive) ?(all_leftover_pairs = true) root =
  let tree, outlined = Outline.run root in
  (match Ir.Validate.errors (Ir.Validate.check root) with
  | [] -> ()
  | issues ->
      let msg =
        String.concat "; " (List.map (Format.asprintf "%a" Ir.Validate.pp_issue) issues)
      in
      raise (Compile_error msg));
  let n = Ir.Nesting_tree.size tree in
  let chunk_plan = Chunking.plan tree ~mode:chunk in
  let loops = Ir.Nest.loops_preorder root in
  let infos = Array.make n None in
  List.iter
    (fun (l : _ Ir.Nest.loop) ->
      let o = l.Ir.Nest.ordinal in
      let node = Ir.Nesting_tree.node tree o in
      let ancestors_up = Ir.Nesting_tree.ancestors tree o in
      let chain_from_root = List.rev (o :: ancestors_up) in
      let children = Ir.Nest.nested_of l in
      let tails =
        List.map
          (fun (c : _ Ir.Nest.loop) -> (c.Ir.Nest.ordinal, Ir.Nest.tail_segments l ~after:c))
          children
      in
      let is_leaf = node.Ir.Nesting_tree.children = [] in
      let doall = l.Ir.Nest.doall && not (Ir.Loop_id.is_none l.Ir.Nest.id) in
      infos.(o) <-
        Some
          {
            Compiled.loop = l;
            ordinal = o;
            id = l.Ir.Nest.id;
            parent = node.Ir.Nesting_tree.parent;
            ancestors_up;
            chain_from_root;
            is_leaf;
            doall;
            depth = node.Ir.Nesting_tree.depth;
            subtree = Ir.Nest.subtree_ordinals l;
            tails;
            (* Promotion points go at the latch of every DOALL loop
               (Sec. 3.2). *)
            prppt = doall;
            chunk =
              (match List.assoc_opt o chunk_plan with
              | Some mode when doall -> mode
              | _ -> Compiled.No_chunking);
          })
    loops;
  let infos = Array.map Option.get infos in
  let leftovers, leftover_table =
    Task_linking.leftover_table (Leftover.generate_all ~all_pairs:all_leftover_pairs tree)
  in
  {
    Compiled.source_name = root.Ir.Nest.loop_name;
    tree;
    infos;
    specs = Ir.Nest.locals_specs root;
    root = root.Ir.Nest.ordinal;
    outlined;
    slice_array = Task_linking.slice_array tree;
    leftovers;
    leftover_table;
  }

type 'e program = {
  source : 'e Ir.Program.t;
  nests : ('e Ir.Nest.loop * 'e Compiled.nest) list;
}

let compile_program ?chunk ?all_leftover_pairs (p : _ Ir.Program.t) =
  {
    source = p;
    nests =
      List.map
        (fun nest -> (nest, compile_nest ?chunk ?all_leftover_pairs nest))
        p.Ir.Program.nests;
  }

let nest_of t nest =
  match List.find_opt (fun (src, _) -> src == nest) t.nests with
  | Some (_, compiled) -> compiled
  | None -> raise Not_found
