type t = {
  source : Pseudo_asm.listing;
  destination : Pseudo_asm.listing;
  table : (string * string) list;
  rollback : (string * string) list;
  addresses : (string * int) list;
}

let src_label n = Printf.sprintf "__RF_SRC_%d" n

let dst_label n = Printf.sprintf "__RF_DST_%d" n

let dst_suffix = "__rf_dst"

(* Rewrite every occurrence of the original labels in a destination line,
   token-wise, so the twin copies link without duplicate symbols. *)
let rename_labels labels line =
  let is_ident_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
    || c = '.' || c = '@'
  in
  let buf = Buffer.create (String.length line + 16) in
  let n = String.length line in
  let i = ref 0 in
  while !i < n do
    if is_ident_char line.[!i] then begin
      let start = !i in
      while !i < n && is_ident_char line.[!i] do
        incr i
      done;
      let tok = String.sub line start (!i - start) in
      if Hashtbl.mem labels tok then Buffer.add_string buf (tok ^ dst_suffix)
      else Buffer.add_string buf tok
    end
    else begin
      Buffer.add_char buf line.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let compile listing =
  let labels = Hashtbl.create 64 in
  List.iter
    (fun line ->
      match Pseudo_asm.label_name line with
      | Some l -> Hashtbl.replace labels l ()
      | None -> ())
    listing;
  let source = ref [] and destination = ref [] and table = ref [] in
  List.iteri
    (fun n line ->
      if Pseudo_asm.is_directive line || String.trim line = "" then begin
        (* Directives appear once, in the source image only. *)
        source := line :: !source
      end
      else if Pseudo_asm.is_label_def line then begin
        source := line :: !source;
        destination := rename_labels labels line :: !destination
      end
      else begin
        (* Instruction line: prepend the generated twin labels. *)
        table := (src_label n, dst_label n) :: !table;
        if Pseudo_asm.is_poll line then
          (* Poll elided in the source twin; label kept for table alignment. *)
          source := Printf.sprintf "%s:" (src_label n) :: !source
        else source := Printf.sprintf "%s:%s" (src_label n) line :: !source;
        destination := Printf.sprintf "%s:%s" (dst_label n) (rename_labels labels line) :: !destination
      end)
    listing;
  let source = List.rev !source and destination = List.rev !destination in
  let table = List.rev !table in
  let rollback = List.map (fun (s, d) -> (d, s)) table in
  (* "GNU ld resolves all the labels to addresses": lay the two twins out
     back to back, 4 bytes per line. *)
  let addresses = ref [] in
  let place base lines label_of =
    List.iteri
      (fun i line ->
        match label_of line with
        | Some l -> addresses := (l, base + (4 * i)) :: !addresses
        | None -> ())
      lines
  in
  let generated_label line =
    match String.index_opt line ':' with
    | Some i when String.length line > 5 && String.sub line 0 5 = "__RF_" -> Some (String.sub line 0 i)
    | _ -> None
  in
  place 0 source generated_label;
  place (4 * List.length source) destination generated_label;
  { source; destination; table; rollback; addresses = List.rev !addresses }

let lookup t l = List.assoc_opt l t.table

let lookup_rollback t l = List.assoc_opt l t.rollback

let lookup_address t l = List.assoc_opt l t.addresses
