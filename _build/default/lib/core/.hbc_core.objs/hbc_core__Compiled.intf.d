lib/core/compiled.mli: Ir Perfect_hash
