lib/core/perfect_hash.ml: Array Float Int64 List Sim Stdlib
