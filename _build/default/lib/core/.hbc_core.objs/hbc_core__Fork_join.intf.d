lib/core/fork_join.mli: Rt_config Sim
