lib/core/pseudo_asm.ml: Array Compiled Ir List Outline Printf String
