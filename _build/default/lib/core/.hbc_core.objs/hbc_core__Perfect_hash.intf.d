lib/core/perfect_hash.mli:
