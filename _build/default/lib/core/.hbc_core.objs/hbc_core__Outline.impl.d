lib/core/outline.ml: Compiled Ir List Printf
