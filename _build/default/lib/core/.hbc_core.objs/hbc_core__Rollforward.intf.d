lib/core/rollforward.mli: Pseudo_asm
