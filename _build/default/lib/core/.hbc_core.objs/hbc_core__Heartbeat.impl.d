lib/core/heartbeat.ml: Array List Rt_config Sim Stdlib
