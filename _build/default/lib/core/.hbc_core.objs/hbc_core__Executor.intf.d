lib/core/executor.mli: Ir Pipeline Rt_config Sim
