lib/core/rt_config.mli: Compiled Sim
