lib/core/leftover.ml: Compiled Ir List
