lib/core/adaptive_chunking.mli:
