lib/core/task_linking.mli: Compiled Ir Perfect_hash
