lib/core/heartbeat.mli: Rt_config Sim
