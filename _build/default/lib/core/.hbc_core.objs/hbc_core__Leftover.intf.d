lib/core/leftover.mli: Compiled Ir
