lib/core/pipeline.ml: Array Chunking Compiled Format Ir Leftover List Option Outline String Task_linking
