lib/core/pseudo_asm.mli: Compiled
