lib/core/fork_join.ml: Array Fun Heartbeat List Option Rt_config Sim
