lib/core/outline.mli: Compiled Ir
