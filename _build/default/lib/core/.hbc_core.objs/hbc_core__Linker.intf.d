lib/core/linker.mli: Compiled Pipeline Pseudo_asm Rollforward
