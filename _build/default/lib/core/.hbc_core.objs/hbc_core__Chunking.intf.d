lib/core/chunking.mli: Compiled Ir
