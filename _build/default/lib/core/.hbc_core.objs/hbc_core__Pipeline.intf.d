lib/core/pipeline.mli: Compiled Ir
