lib/core/rollforward.ml: Buffer Hashtbl List Printf Pseudo_asm String
