lib/core/rt_config.ml: Compiled Sim
