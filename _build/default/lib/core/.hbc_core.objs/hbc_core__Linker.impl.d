lib/core/linker.ml: List Pipeline Pseudo_asm Rollforward
