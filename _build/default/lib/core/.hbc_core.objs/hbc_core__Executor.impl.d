lib/core/executor.ml: Adaptive_chunking Array Compiled Hashtbl Heartbeat Ir List Option Pipeline Printf Rt_config Sim Stdlib
