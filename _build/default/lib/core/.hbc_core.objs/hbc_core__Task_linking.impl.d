lib/core/task_linking.ml: Array Compiled Ir List Perfect_hash Stdlib
