lib/core/compiled.ml: Array Ir List Perfect_hash
