lib/core/adaptive_chunking.ml: Float List Stdlib
