lib/core/chunking.ml: Ir List
