let plan tree ~mode = List.map (fun leaf -> (leaf, mode)) (Ir.Nesting_tree.leaves tree)
