let slice_array tree =
  let max_level = Ir.Nesting_tree.max_level tree in
  Array.init (max_level + 1) (fun level ->
      let at_level = Ir.Nesting_tree.loops_at_level tree level in
      let max_index =
        List.fold_left
          (fun acc o -> Stdlib.max acc (Ir.Nesting_tree.node tree o).Ir.Nesting_tree.id.Ir.Loop_id.index)
          (-1) at_level
      in
      let row = Array.make (max_index + 1) (-1) in
      List.iter
        (fun o -> row.((Ir.Nesting_tree.node tree o).Ir.Nesting_tree.id.Ir.Loop_id.index) <- o)
        at_level;
      row)

let leftover_table leftovers =
  let arr = Array.of_list leftovers in
  let keys = List.map (fun l -> (l.Compiled.li, l.Compiled.lj)) leftovers in
  (arr, Perfect_hash.build keys)
