type listing = string list

let poll_mnemonic = "poll"

let strip line = String.trim line

let is_blank line = strip line = ""

let is_comment line =
  let s = strip line in
  String.length s > 0 && (s.[0] = ';' || s.[0] = '#')

let is_directive line =
  let s = strip line in
  String.length s > 0 && s.[0] = '.' && not (String.contains s ':')

let is_label_def line =
  let s = strip line in
  String.length s > 1 && s.[String.length s - 1] = ':' && not (String.contains s ' ')

let label_name line =
  if is_label_def line then begin
    let s = strip line in
    Some (String.sub s 0 (String.length s - 1))
  end
  else None

let is_poll line =
  (* Tolerate a leading "label:" prefix, as the rollforward twins carry. *)
  let s = strip line in
  let s =
    match String.index_opt s ':' with
    | Some i when not (String.contains (String.sub s 0 i) ' ') ->
        strip (String.sub s (i + 1) (String.length s - i - 1))
    | _ -> s
  in
  s = poll_mnemonic
  || String.length s > String.length poll_mnemonic
     && String.sub s 0 (String.length poll_mnemonic + 1) = poll_mnemonic ^ " "

let is_instruction line =
  (not (is_blank line)) && (not (is_comment line)) && (not (is_directive line))
  && not (is_label_def line)

let instruction_count listing = List.length (List.filter is_instruction listing)

let poll_sites listing = List.length (List.filter is_poll listing)

let to_string listing = String.concat "\n" listing ^ "\n"

(* Lowering. The body statements become symbolic instruction placeholders;
   loop skeleton (header compare, latch, promotion branch) is spelled out so
   the rollforward transform sees realistic control flow. *)
let generate (nest : _ Compiled.nest) =
  let buf = ref [] in
  let emit line = buf := line :: !buf in
  emit "\t.text";
  Array.iter
    (fun (info : _ Compiled.loop_info) ->
      if info.Compiled.doall then begin
        let o = info.Compiled.ordinal in
        let fname = Outline.fn_name info.Compiled.loop in
        emit (Printf.sprintf "\t.globl %s" fname);
        emit (Printf.sprintf "%s:" fname);
        emit "\tpush rbp";
        emit "\tmov rbp, rsp";
        emit (Printf.sprintf "\tmov r12, [rdi+%d]\t; LST context of loop %d" (8 * o) o);
        emit "\tmov r13, [r12+0]\t; lo";
        emit "\tmov r14, [r12+8]\t; hi";
        emit (Printf.sprintf ".L_header_%d:" o);
        emit "\tcmp r13, r14";
        emit (Printf.sprintf "\tjge .L_exit_%d" o);
        List.iteri
          (fun k seg ->
            match seg with
            | Ir.Nest.Stmt s ->
                emit (Printf.sprintf "\tcall __body_%s_%d\t; %s" info.Compiled.loop.Ir.Nest.loop_name k s.Ir.Nest.stmt_name)
            | Ir.Nest.Nested child ->
                emit (Printf.sprintf "\tlea rsi, [r12+%d]" (8 * child.Ir.Nest.ordinal));
                emit (Printf.sprintf "\tcall %s" (Outline.fn_name child)))
          info.Compiled.loop.Ir.Nest.body;
        emit (Printf.sprintf ".L_latch_%d:" o);
        (match info.Compiled.chunk with
        | Compiled.No_chunking -> ()
        | Compiled.Static _ | Compiled.Adaptive ->
            emit "\tsub r15, 1\t; residual chunk";
            emit (Printf.sprintf "\tjnz .L_next_%d" o));
        if info.Compiled.prppt then begin
          emit ("\t" ^ poll_mnemonic);
          emit "\ttest rax, rax";
          emit (Printf.sprintf "\tjnz .L_promote_%d" o)
        end;
        emit (Printf.sprintf ".L_next_%d:" o);
        emit "\tadd r13, 1";
        emit (Printf.sprintf "\tjmp .L_header_%d" o);
        emit (Printf.sprintf ".L_promote_%d:" o);
        emit "\tcall __hbc_promotion_handler";
        emit (Printf.sprintf ".L_exit_%d:" o);
        emit "\tpop rbp";
        emit "\tret"
      end)
    nest.Compiled.infos;
  List.rev !buf
