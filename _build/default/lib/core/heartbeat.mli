(** Heartbeat signaling mechanisms (Secs. 4 and 5).

    The executor consults this module at every promotion-ready program
    point. Mechanisms differ in cost and in how a beat becomes visible:

    - {e Software polling}: a poll (TSC read, {!poll_cost} cycles, charged by
      the caller as part of its batched advance) compares the worker's clock
      against heartbeat-interval boundaries.
    - {e Kernel module}: the executed image carries no polls; a broadcast
      timer callback marks every busy worker and {!consume} charges the
      interrupt delivery cost (3800 cycles) plus a rollforward-table lookup
      when a pending beat is taken.
    - {e Ping thread}: like the kernel module, but deliveries are serialized
      through one signaling thread; beats whose signal cannot be issued
      before the next beat are dropped — the source of the up-to-45%%-missed
      heartbeats the paper reports.

    Generated/detected/missed counts land in the run's {!Sim.Metrics.t}
    (Fig. 13). *)

type t

val create : Rt_config.t -> Sim.Engine.t -> Sim.Metrics.t -> t

val start : t -> unit
(** Arm the timer callbacks (no-op for software polling). *)

val stop : t -> unit

val set_busy : t -> worker:int -> bool -> unit
(** Only busy workers receive or account for heartbeats. *)

val poll_cost : t -> int
(** Cycles a PRPPT poll costs under this mechanism (0 for interrupts). *)

val consume : t -> worker:int -> count_poll:bool -> bool
(** Check (and consume) a heartbeat at a PRPPT. [count_poll] marks the call
    as a real leaf-latch poll for the polling statistics; the cached checks
    at outer-loop latches pass [false]. Charges the interrupt delivery cost
    when an interrupt-mode beat is taken; never charges the poll cost (the
    caller batches it via {!poll_cost}). *)
