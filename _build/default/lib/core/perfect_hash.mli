(** Compile-time perfect hashing for the leftover-task table (Sec. 3.4).

    The table maps a pair of loop ordinals (the loop that received the
    heartbeat, the loop that gets split) to a leftover-task index. HBC
    generates a perfect hash at compile time so the runtime lookup is one
    multiply-shift and one probe; we do the same: the builder searches for a
    multiplier that maps all keys to distinct slots of a power-of-two table. *)

type t

val build : (int * int) list -> t
(** [build keys] constructs a perfect (collision-free) table over the given
    distinct keys; the value of key [i] is its position in the input list.
    @raise Invalid_argument on duplicate keys. *)

val lookup : t -> int * int -> int option
(** One-probe lookup; [None] when the pair was not a key. *)

val table_size : t -> int

val multiplier : t -> int64
(** Exposed for tests and for the linker's table dump. *)
