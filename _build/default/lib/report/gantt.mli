(** ASCII gantt chart of per-worker execution timelines. *)

val render :
  ?width:int -> workers:int -> makespan:int -> (int * int * int * string) list -> string
(** [render ~workers ~makespan intervals] draws one row per worker, one
    column per [makespan/width] cycles: '#' = executing, '.' = idle, with a
    per-worker utilization percentage and an aggregate summary. Intervals
    are (worker, start, end, kind) as recorded by {!Sim.Metrics}. *)

val utilization : workers:int -> makespan:int -> (int * int * int * string) list -> float
(** Aggregate busy fraction in percent. *)
