(** Horizontal bar charts rendered in ASCII, mirroring the paper's figures. *)

val bars :
  title:string -> ?unit_label:string -> ?width:int -> (string * float) list -> string
(** One bar per (label, value); bar lengths scaled to the maximum. *)

val grouped :
  title:string ->
  ?unit_label:string ->
  ?width:int ->
  series:string list ->
  (string * float list) list ->
  string
(** Grouped bars: each row carries one value per series. *)
