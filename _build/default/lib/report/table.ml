type t = {
  title : string;
  columns : string list;
  mutable body : [ `Row of string list | `Sep ] list;  (* reversed *)
}

let create ~title ~columns = { title; columns; body = [] }

let add_row t row = t.body <- `Row row :: t.body

let add_separator t = t.body <- `Sep :: t.body

let cell_f ?(decimals = 1) v = Printf.sprintf "%.*f" decimals v

let cell_pct v = Printf.sprintf "%.2f%%" v

let cell_i = string_of_int

let title t = t.title

let rows t =
  List.rev t.body |> List.filter_map (function `Row r -> Some r | `Sep -> None)

let render t =
  let body = List.rev t.body in
  let all_rows = t.columns :: List.filter_map (function `Row r -> Some r | `Sep -> None) body in
  let ncols = List.fold_left (fun acc r -> Stdlib.max acc (List.length r)) 0 all_rows in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- Stdlib.max widths.(i) (String.length cell)) row)
    all_rows;
  let pad i cell = cell ^ String.make (widths.(i) - String.length cell) ' ' in
  let render_row row =
    let cells = List.mapi pad row in
    let missing = ncols - List.length row in
    let cells =
      if missing > 0 then
        cells @ List.init missing (fun k -> String.make widths.(List.length row + k) ' ')
      else cells
    in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let rule = "+" ^ String.concat "+" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths)) ^ "+" in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (t.title ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  Buffer.add_string buf (render_row t.columns ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  List.iter
    (fun item ->
      match item with
      | `Row r -> Buffer.add_string buf (render_row r ^ "\n")
      | `Sep -> Buffer.add_string buf (rule ^ "\n"))
    body;
  Buffer.add_string buf rule;
  Buffer.contents buf

let print t = print_endline (render t)
