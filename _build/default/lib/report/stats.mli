(** Small statistics helpers for the experiment harness. *)

val geomean : float list -> float
(** Geometric mean of the positive entries; 0 if none. *)

val mean : float list -> float

val median : float list -> float

val minimum : float list -> float

val maximum : float list -> float
