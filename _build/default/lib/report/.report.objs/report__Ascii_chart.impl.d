lib/report/ascii_chart.ml: Buffer Float List Printf Stdlib String
