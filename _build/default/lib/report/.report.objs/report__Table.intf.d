lib/report/table.mli:
