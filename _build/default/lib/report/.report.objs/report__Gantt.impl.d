lib/report/gantt.ml: Array Buffer Bytes Float List Printf Stdlib
