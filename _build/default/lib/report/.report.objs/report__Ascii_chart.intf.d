lib/report/ascii_chart.mli:
