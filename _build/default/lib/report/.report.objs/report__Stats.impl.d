lib/report/stats.ml: Float List
