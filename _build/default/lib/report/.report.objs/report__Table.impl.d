lib/report/table.ml: Array Buffer List Printf Stdlib String
