lib/report/stats.mli:
