lib/report/gantt.mli:
