let geomean xs =
  let xs = List.filter (fun x -> x > 0.0) xs in
  match xs with
  | [] -> 0.0
  | _ ->
      let n = Float.of_int (List.length xs) in
      Float.exp (List.fold_left (fun acc x -> acc +. Float.log x) 0.0 xs /. n)

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. Float.of_int (List.length xs)

let median = function
  | [] -> 0.0
  | xs ->
      let sorted = List.sort Float.compare xs in
      let n = List.length sorted in
      if n mod 2 = 1 then List.nth sorted (n / 2)
      else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.0

let minimum = function [] -> 0.0 | xs -> List.fold_left Float.min Float.infinity xs

let maximum = function [] -> 0.0 | xs -> List.fold_left Float.max Float.neg_infinity xs
