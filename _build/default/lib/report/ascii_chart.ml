let bar_of width vmax v =
  if vmax <= 0.0 then ""
  else begin
    let n = int_of_float (Float.round (Float.of_int width *. v /. vmax)) in
    String.make (Stdlib.max 0 (Stdlib.min width n)) '#'
  end

let bars ~title ?(unit_label = "") ?(width = 50) rows =
  let vmax = List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 rows in
  let lw = List.fold_left (fun acc (l, _) -> Stdlib.max acc (String.length l)) 0 rows in
  let buf = Buffer.create 512 in
  Buffer.add_string buf (title ^ "\n");
  List.iter
    (fun (label, v) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-*s %8.2f%s |%s\n" lw label v unit_label (bar_of width vmax v)))
    rows;
  Buffer.contents buf

let grouped ~title ?(unit_label = "") ?(width = 40) ~series rows =
  let vmax =
    List.fold_left (fun acc (_, vs) -> List.fold_left Float.max acc vs) 0.0 rows
  in
  let lw =
    List.fold_left (fun acc (l, _) -> Stdlib.max acc (String.length l)) 0 rows
    |> Stdlib.max
         (List.fold_left (fun acc s -> Stdlib.max acc (String.length s)) 0 series)
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (title ^ "\n");
  List.iter
    (fun (label, vs) ->
      List.iteri
        (fun i v ->
          let tag = if i = 0 then label else "" in
          let sname = try List.nth series i with _ -> "" in
          Buffer.add_string buf
            (Printf.sprintf "  %-*s %-12s %8.2f%s |%s\n" lw tag sname v unit_label
               (bar_of width vmax v)))
        vs;
      Buffer.add_string buf "\n")
    rows;
  Buffer.contents buf
