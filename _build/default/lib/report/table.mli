(** Plain-text tables, one per reproduced figure. *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** Rows shorter than the header are right-padded with empty cells. *)

val add_separator : t -> unit

val cell_f : ?decimals:int -> float -> string
(** Format a float cell (default 1 decimal). *)

val cell_pct : float -> string

val cell_i : int -> string

val title : t -> string

val rows : t -> string list list

val render : t -> string
(** Aligned, boxed with ASCII rules. *)

val print : t -> unit
