(** Fig. 9: the three heartbeat signaling mechanisms compared — the
    paper's counter-intuitive result that software polling matches the
    custom-OS kernel module. *)

val render : Harness.config -> string

val figure : Figure.t
