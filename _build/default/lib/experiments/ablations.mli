(** Ablation and sensitivity studies beyond the paper's figures, probing the
    design decisions DESIGN.md calls out. Each returns a rendered table.

    - {!leftover_task}: HBC's third parallel task (spawned leftover with a
      full closure) vs TPAL's inline leftover — the Sec. 6.3 mechanism.
    - {!promotion_policy}: the paper's outer-loop-first policy vs splitting
      the interrupted loop itself.
    - {!chunk_transferring}: carrying the residual chunk across leaf
      invocations (HBC) vs resetting per invocation (TPAL) — responsiveness
      vs critical-path bookkeeping.
    - {!leftover_pairs}: Algorithm 1's leaves-only enumeration vs the
      all-pairs extension this implementation defaults to.
    - {!heartbeat_rate}: sensitivity to the heartbeat interval around the
      default (the paper tunes to 100 us following TPAL).
    - {!ac_window}: the paper's claim that any AC window >= 2 behaves the
      same (Sec. 6.6).
    - {!worker_scaling}: speedup vs simulated core count.
    - {!hybrid}: the conclusion's combined static+heartbeat scheduler
      against each policy alone, over regular and irregular benchmarks. *)

val leftover_task : Harness.config -> string

val promotion_policy : Harness.config -> string

val chunk_transferring : Harness.config -> string

val leftover_pairs : Harness.config -> string

val heartbeat_rate : Harness.config -> string

val ac_window : Harness.config -> string

val worker_scaling : Harness.config -> string

val hybrid : Harness.config -> string

val omp_schedules : Harness.config -> string

val all : (string * (Harness.config -> string)) list
(** (name, render) pairs, for the CLI. *)
