(** Fig. 11: ten mandelbrot invocations over mixed inputs — static chunk
    sizes against adaptive chunking. *)

val render : Harness.config -> string

val figure : Figure.t
