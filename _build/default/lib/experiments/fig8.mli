(** Fig. 8: software-polling overhead under no / static / adaptive
    chunking (promotions disabled). *)

val render : Harness.config -> string

val figure : Figure.t
