(** Fig. 10: mandelbrot run time across static chunk sizes for a
    high-latency and a low-latency input; their optima sit at opposite ends
    of the sweep. *)

val render : Harness.config -> string

val figure : Figure.t
