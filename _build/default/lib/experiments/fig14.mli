(** Fig. 14: OpenMP dynamic scheduling under hand-tuned chunk sizes on
    the manually written irregular benchmarks. *)

val render : Harness.config -> string

val figure : Figure.t
