(** Fig. 15: OpenMP parallelizing the outermost loop only vs every DOALL
    loop (nested regions) — the task explosion that motivates heartbeat
    scheduling. *)

val render : Harness.config -> string

val figure : Figure.t
