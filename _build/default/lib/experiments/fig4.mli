(** Fig. 4: 64-core speedups of OpenMP dynamic scheduling vs HBC over the
    13 irregular benchmarks — the paper's headline result (geomeans 14.2x
    vs 21.7x). *)

val render : Harness.config -> string

val figure : Figure.t
