(** Fig. 12: visualization of adaptive chunking on the four spmv inputs
    (chunk size vs per-row non-zeros). *)

val render : Harness.config -> string

val figure : Figure.t
