(* Fig. 8: software-polling overhead under the three chunking regimes, with
   promotions disabled. Expected shape: no chunking costs up to several
   hundred percent on fine-grained loops (the paper's 7.5x worst case);
   static chunking cuts it to a few percent; adaptive chunking is best. *)

let render config =
  (* Overheads are ratios, so a smaller input keeps this figure fast even
     with a poll at every iteration. *)
  let config = { config with Harness.workers = 1; scale = config.Harness.scale *. 0.3 } in
  let entries = Workloads.Registry.tpal_set () in
  let table =
    Report.Table.create
      ~title:"Figure 8: software polling overhead by chunking mechanism (promotions disabled)"
      ~columns:[ "benchmark"; "no chunking"; "static chunking"; "adaptive chunking" ]
  in
  List.iter
    (fun entry ->
      let run chunk tag =
        (Harness.run_hbc config
           ~cfg:(fun c ->
             { c with Hbc_core.Rt_config.promotion = false; chunk; workers = 1 })
           ~tag entry)
          .Harness.result
      in
      let none = run Hbc_core.Compiled.No_chunking "poll-none" in
      let static =
        run (Hbc_core.Compiled.Static entry.Workloads.Registry.tpal_chunk) "poll-static"
      in
      let adaptive = run Hbc_core.Compiled.Adaptive "poll-adaptive" in
      (* The paper plots the overhead of the polling itself (the injected
         poll instructions and their guard branches), not the rest of the
         compiled-in machinery, which Fig. 7 already breaks down. *)
      let poll_pct (r : Sim.Run_result.t) =
        let m = r.Sim.Run_result.metrics in
        100.0
        *. Float.of_int
             (Sim.Metrics.overhead_of m "poll" + Sim.Metrics.overhead_of m "promotion-branch")
        /. Float.of_int (Stdlib.max 1 r.Sim.Run_result.work_cycles)
      in
      Report.Table.add_row table
        [
          entry.Workloads.Registry.name;
          Report.Table.cell_pct (poll_pct none);
          Report.Table.cell_pct (poll_pct static);
          Report.Table.cell_pct (poll_pct adaptive);
        ])
    entries;
  Report.Table.render table

let figure =
  Figure.make ~id:"fig8" ~caption:"Software polling overhead with different chunking mechanisms"
    render
