(** Fig. 13: heartbeat detection rate as the AC target polling count
    sweeps; the paper's operating point (target 4 captures ~99%). *)

val render : Harness.config -> string

val figure : Figure.t
