(* Fig. 5: percentage of parallelism promotions generated at each loop
   nesting level under HBC. Flat benchmarks promote only at level 0; nested
   ones (spmv, mandelbulb, cg, ttv/ttm, graph kernels) split inner loops
   too, showing that the best granularity is input-dependent. *)

let render config =
  let entries = Workloads.Registry.irregular_set () in
  let table =
    Report.Table.create ~title:"Figure 5: parallelism promotions generated per nesting level (%)"
      ~columns:[ "benchmark"; "level 0"; "level 1"; "level 2"; "level 3"; "promotions" ]
  in
  List.iter
    (fun entry ->
      let hbc = Harness.run_hbc config entry in
      let shares = Sim.Metrics.promotion_share_by_level hbc.Harness.result.Sim.Run_result.metrics in
      let cell l = Report.Table.cell_f ~decimals:2 shares.(l) in
      Report.Table.add_row table
        [
          entry.Workloads.Registry.name;
          cell 0;
          cell 1;
          cell 2;
          cell 3;
          Report.Table.cell_i hbc.Harness.result.Sim.Run_result.metrics.Sim.Metrics.promotions;
        ])
    entries;
  Report.Table.render table

let figure =
  Figure.make ~id:"fig5" ~caption:"Parallelism is generated at different loop nesting levels"
    render
