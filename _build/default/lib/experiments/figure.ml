type t = { id : string; caption : string; render : Harness.config -> string }

let make ~id ~caption render = { id; caption; render }
