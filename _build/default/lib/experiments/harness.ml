type config = { scale : float; workers : int; seed : int; verbose : bool }

let default_config = { scale = 1.0; workers = 64; seed = 1; verbose = false }

type outcome = { result : Sim.Run_result.t; speedup : float; valid : bool }

let cache : (string, Sim.Run_result.t) Hashtbl.t = Hashtbl.create 64

let failures : (string * string) list ref = ref []

let clear_cache () =
  Hashtbl.reset cache;
  failures := []

let validation_failures () = List.rev !failures

let key config entry tag = Printf.sprintf "%s/%s/%.3f/%d" entry.Workloads.Registry.name tag config.scale config.workers

let cached config entry tag compute =
  let k = key config entry tag in
  match Hashtbl.find_opt cache k with
  | Some r -> r
  | None ->
      if config.verbose then Printf.eprintf "[run] %s\n%!" k;
      let r = compute () in
      Hashtbl.add cache k r;
      r

let baseline config entry =
  cached config entry "seq" (fun () ->
      let (Ir.Program.Any p) = entry.Workloads.Registry.make config.scale in
      Baselines.Serial_exec.run_program p)

let outcome_of config entry tag result =
  let base = baseline config entry in
  let valid = result.Sim.Run_result.dnf || Sim.Run_result.fingerprints_close base result in
  if not valid then failures := (entry.Workloads.Registry.name, tag) :: !failures;
  { result; speedup = Sim.Run_result.speedup ~baseline:base result; valid }

let run_hbc ?(cfg = fun c -> c) ?(tag = "hbc") config entry =
  let result =
    cached config entry tag (fun () ->
        let (Ir.Program.Any p) = entry.Workloads.Registry.make config.scale in
        let rt =
          { (cfg Hbc_core.Rt_config.default) with
            Hbc_core.Rt_config.workers = config.workers;
            seed = config.seed;
          }
        in
        Hbc_core.Executor.run rt p)
  in
  outcome_of config entry tag result

let run_tpal ?(tag = "tpal") config entry =
  let result =
    cached config entry tag (fun () ->
        let (Ir.Program.Any p) = entry.Workloads.Registry.make config.scale in
        let rt =
          { (Hbc_core.Rt_config.tpal ~chunk:entry.Workloads.Registry.tpal_chunk) with
            Hbc_core.Rt_config.workers = config.workers;
            seed = config.seed;
          }
        in
        Hbc_core.Executor.run rt p)
  in
  outcome_of config entry tag result

let run_omp ?(cfg = fun c -> c) ?(tag = "omp") config entry =
  let result =
    cached config entry tag (fun () ->
        let (Ir.Program.Any p) = entry.Workloads.Registry.make config.scale in
        let oc =
          { (cfg (Baselines.Openmp.dynamic ())) with
            Baselines.Openmp.workers = config.workers;
            seed = config.seed;
          }
        in
        Baselines.Openmp.run_program oc p)
  in
  outcome_of config entry tag result

let dnf_cap base = 2 * base.Sim.Run_result.work_cycles

let geomean_row ~label columns =
  label :: List.map (fun col -> Report.Table.cell_f (Report.Stats.geomean col)) columns
