(* Fig. 7: overhead of the HBC binaries over the sequential baseline with
   promotions disabled (so only the compiled-in machinery costs remain), and
   the breakdown of the software-polling configuration by compilation
   component. Expected shape: spmv-arrowhead ~+58% and spmv-powerlaw ~+22%
   dominated by chunk-size transferring; everything else below ~10%. *)

let overhead_run config entry cfg tag =
  let o =
    Harness.run_hbc config
      ~cfg:(fun c ->
        let c = cfg c in
        { c with Hbc_core.Rt_config.promotion = false; workers = 1 })
      ~tag entry
  in
  o.Harness.result

let pct_of base part = 100.0 *. Float.of_int part /. Float.of_int (Stdlib.max 1 base)

let render config =
  let config = { config with Harness.workers = 1 } in
  let entries = Workloads.Registry.tpal_set () in
  let table =
    Report.Table.create
      ~title:
        "Figure 7: overhead over sequential baseline (promotions disabled), with the software-polling breakdown"
      ~columns:
        [
          "benchmark";
          "TPAL";
          "HBC interrupt (KM)";
          "HBC polling";
          "| outline";
          "closure";
          "chunking";
          "prom.branch";
          "chunk-transfer";
          "AC polling";
        ]
  in
  List.iter
    (fun entry ->
      let chunk = entry.Workloads.Registry.tpal_chunk in
      let tpal =
        overhead_run config entry
          (fun _ ->
            { (Hbc_core.Rt_config.tpal ~chunk) with Hbc_core.Rt_config.promotion = false })
          "ovh-tpal"
      in
      let km =
        overhead_run config entry
          (fun _ ->
            { Hbc_core.Rt_config.hbc_kernel_module with chunk = Hbc_core.Compiled.Static chunk })
          "ovh-km"
      in
      let poll = overhead_run config entry (fun c -> c) "ovh-poll" in
      let m = poll.Sim.Run_result.metrics in
      let work = poll.Sim.Run_result.work_cycles in
      let component k = Report.Table.cell_pct (pct_of work (Sim.Metrics.overhead_of m k)) in
      Report.Table.add_row table
        [
          entry.Workloads.Registry.name;
          Report.Table.cell_pct (Sim.Run_result.overhead_pct tpal);
          Report.Table.cell_pct (Sim.Run_result.overhead_pct km);
          Report.Table.cell_pct (Sim.Run_result.overhead_pct poll);
          component "outline-call";
          component "closure";
          component "chunking";
          component "promotion-branch";
          component "chunk-transfer";
          component "poll";
        ])
    entries;
  Report.Table.render table

let figure =
  Figure.make ~id:"fig7" ~caption:"Overhead of HBC (with and without software polling) and TPAL"
    render
