(** Fig. 6: HBC's automatically generated binaries against the manually
    written TPAL ones on the 8 iterative TPAL benchmarks. *)

val render : Harness.config -> string

val figure : Figure.t
