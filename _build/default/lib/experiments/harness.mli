(** Shared machinery for the per-figure experiments: configuration, cached
    runs, output validation against the sequential reference, and geomean
    summaries. *)

type config = {
  scale : float;  (** input-size multiplier (1.0 = the documented defaults) *)
  workers : int;  (** simulated cores (paper: 64) *)
  seed : int;
  verbose : bool;
}

val default_config : config

type outcome = { result : Sim.Run_result.t; speedup : float; valid : bool }

val baseline : config -> Workloads.Registry.entry -> Sim.Run_result.t
(** Sequential reference run (cached per benchmark and scale). *)

val run_hbc :
  ?cfg:(Hbc_core.Rt_config.t -> Hbc_core.Rt_config.t) ->
  ?tag:string ->
  config ->
  Workloads.Registry.entry ->
  outcome
(** Run under the heartbeat runtime; [cfg] tweaks the default HBC
    configuration (workers and seed are applied afterwards). Results are
    cached under [tag] when given. *)

val run_tpal : ?tag:string -> config -> Workloads.Registry.entry -> outcome

val run_omp :
  ?cfg:(Baselines.Openmp.config -> Baselines.Openmp.config) ->
  ?tag:string ->
  config ->
  Workloads.Registry.entry ->
  outcome

val dnf_cap : Sim.Run_result.t -> int
(** Virtual-time cap marking a run as DNF: twice the sequential time — a
    parallel run slower than that reproduces the paper's
    did-not-finish-in-2-hours outcomes. *)

val validation_failures : unit -> (string * string) list
(** (benchmark, tag) pairs whose fingerprint diverged from the reference. *)

val geomean_row : label:string -> float list list -> string list
(** Build a geomean summary row from the speedup columns. *)

val clear_cache : unit -> unit
