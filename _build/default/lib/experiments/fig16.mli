(** Fig. 16: OpenMP static scheduling vs HBC on the regular benchmarks —
    where heartbeat scheduling is not the right sole policy. *)

val render : Harness.config -> string

val figure : Figure.t
