(** Fig. 7: overhead of the compiled-in machinery over the sequential
    baseline with promotions disabled, with the per-component breakdown of
    the software-polling configuration. *)

val render : Harness.config -> string

val figure : Figure.t
