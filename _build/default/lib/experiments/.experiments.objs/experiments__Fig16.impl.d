lib/experiments/fig16.ml: Baselines Figure Float Harness List Report Workloads
