lib/experiments/fig12.mli: Figure Harness
