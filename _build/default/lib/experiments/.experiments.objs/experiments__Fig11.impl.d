lib/experiments/fig11.ml: Baselines Figure Harness Hbc_core List Printf Report Sim Workloads
