lib/experiments/harness.mli: Baselines Hbc_core Sim Workloads
