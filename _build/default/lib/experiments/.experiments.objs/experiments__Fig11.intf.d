lib/experiments/fig11.mli: Figure Harness
