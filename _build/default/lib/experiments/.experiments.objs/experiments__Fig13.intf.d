lib/experiments/fig13.mli: Figure Harness
