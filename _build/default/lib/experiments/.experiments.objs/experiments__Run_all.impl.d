lib/experiments/run_all.ml: Fig10 Fig11 Fig12 Fig13 Fig14 Fig15 Fig16 Fig4 Fig5 Fig6 Fig7 Fig8 Fig9 Figure Harness List Printf String
