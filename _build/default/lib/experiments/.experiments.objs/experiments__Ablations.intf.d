lib/experiments/ablations.mli: Harness
