lib/experiments/fig6.mli: Figure Harness
