lib/experiments/fig14.mli: Figure Harness
