lib/experiments/fig5.mli: Figure Harness
