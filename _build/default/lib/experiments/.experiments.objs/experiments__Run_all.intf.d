lib/experiments/run_all.mli: Figure Harness
