lib/experiments/fig15.mli: Figure Harness
