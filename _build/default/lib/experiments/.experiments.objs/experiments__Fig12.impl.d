lib/experiments/fig12.ml: Array Buffer Figure Float Harness Hbc_core Ir List Printf Report Sim Stdlib Workloads
