lib/experiments/fig9.mli: Figure Harness
