lib/experiments/fig10.ml: Figure Harness Hbc_core List Report Sim Workloads
