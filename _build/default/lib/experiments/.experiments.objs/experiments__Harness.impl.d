lib/experiments/harness.ml: Baselines Hashtbl Hbc_core Ir List Printf Report Sim Workloads
