lib/experiments/fig13.ml: Figure Harness Hbc_core List Printf Report Sim Workloads
