lib/experiments/figure.ml: Harness
