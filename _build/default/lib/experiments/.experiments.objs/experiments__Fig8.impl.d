lib/experiments/fig8.ml: Figure Float Harness Hbc_core List Report Sim Stdlib Workloads
