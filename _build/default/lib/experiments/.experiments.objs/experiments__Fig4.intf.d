lib/experiments/fig4.mli: Figure Harness
