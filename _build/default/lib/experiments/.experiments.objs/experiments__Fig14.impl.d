lib/experiments/fig14.ml: Baselines Figure Harness List Printf Report Workloads
