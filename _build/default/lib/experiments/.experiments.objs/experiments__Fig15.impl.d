lib/experiments/fig15.ml: Baselines Figure Harness List Report Sim Workloads
