lib/experiments/ablations.ml: Baselines Float Harness Hbc_core Ir List Printf Report Sim Workloads
