lib/experiments/fig4.ml: Figure Float Harness List Report Workloads
