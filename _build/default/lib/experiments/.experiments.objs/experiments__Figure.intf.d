lib/experiments/figure.mli: Harness
