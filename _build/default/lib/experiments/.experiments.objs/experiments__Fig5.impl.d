lib/experiments/fig5.ml: Array Figure Harness List Report Sim Workloads
