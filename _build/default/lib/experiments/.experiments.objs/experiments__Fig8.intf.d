lib/experiments/fig8.mli: Figure Harness
