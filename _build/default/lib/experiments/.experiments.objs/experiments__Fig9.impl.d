lib/experiments/fig9.ml: Figure Float Harness Hbc_core List Report Sim Stdlib Workloads
