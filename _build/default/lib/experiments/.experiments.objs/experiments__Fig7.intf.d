lib/experiments/fig7.mli: Figure Harness
