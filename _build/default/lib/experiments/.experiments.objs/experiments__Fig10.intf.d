lib/experiments/fig10.mli: Figure Harness
