lib/experiments/fig6.ml: Figure Float Harness List Report Workloads
