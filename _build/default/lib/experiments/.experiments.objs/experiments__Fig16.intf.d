lib/experiments/fig16.mli: Figure Harness
