(** Fig. 5: share of parallelism promotions generated at each loop nesting
    level — evidence that the right granularity is input-dependent. *)

val render : Harness.config -> string

val figure : Figure.t
