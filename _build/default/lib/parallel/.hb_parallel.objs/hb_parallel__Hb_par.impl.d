lib/parallel/hb_par.ml: Array Atomic Domain Fun Hbc_core List Option Stdlib Unix Ws_deque
