lib/parallel/ws_deque.mli:
