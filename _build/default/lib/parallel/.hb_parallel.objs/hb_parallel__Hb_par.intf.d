lib/parallel/hb_par.mli:
