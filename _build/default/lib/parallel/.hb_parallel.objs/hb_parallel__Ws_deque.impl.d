lib/parallel/ws_deque.ml: Array Atomic Stdlib
