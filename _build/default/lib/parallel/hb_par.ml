type task = unit -> unit

type pool = {
  n : int;
  queues : task Ws_deque.t array;
  mutable domains : unit Domain.t list;
  stop : bool Atomic.t;
  hb_interval : float;  (* seconds *)
  promo_count : int Atomic.t;
  next_beat : float array;
  rng_state : int array;  (* per-domain xorshift for victim selection *)
  ac : Hbc_core.Adaptive_chunking.t array;  (* per-member adaptive chunking *)
  mutable closed : bool;
}

let index_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> -1)

let my_index pool =
  let i = Domain.DLS.get index_key in
  if i >= 0 && i < pool.n then i else pool.n - 1

let chunk_size = 32

let now () = Unix.gettimeofday ()

(* Owner-side operations go through the lock-free Chase-Lev deque; thieves
   use [steal]. *)
let push pool i task = Ws_deque.push pool.queues.(i) task

let pop_own pool i = Ws_deque.pop pool.queues.(i)

let next_victim pool i =
  let s = pool.rng_state.(i) in
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 7) in
  let s = (s lxor (s lsl 17)) land max_int in
  pool.rng_state.(i) <- s;
  s mod pool.n

let find_task pool i =
  match pop_own pool i with
  | Some t -> Some t
  | None ->
      let rec hunt k =
        if k = 0 then None
        else begin
          let v = next_victim pool i in
          if v = i then hunt (k - 1)
          else
            match Ws_deque.steal pool.queues.(v) with
            | Some t -> Some t
            | None -> hunt (k - 1)
        end
      in
      hunt pool.n

let worker pool i () =
  Domain.DLS.set index_key i;
  while not (Atomic.get pool.stop) do
    match find_task pool i with Some t -> t () | None -> Domain.cpu_relax ()
  done

let create ?(heartbeat_us = 100.0) ~num_domains () =
  let n = Stdlib.max 1 num_domains in
  let pool =
    {
      n;
      queues = Array.init n (fun _ -> Ws_deque.create ());
      domains = [];
      stop = Atomic.make false;
      hb_interval = heartbeat_us *. 1e-6;
      promo_count = Atomic.make 0;
      next_beat = Array.make n 0.0;
      rng_state = Array.init n (fun i -> (i * 0x9E3779B9) + 1);
      ac =
        Array.init n (fun _ ->
            Hbc_core.Adaptive_chunking.create ~initial_chunk:chunk_size ~target_polls:8 ~window:2 ());
      closed = false;
    }
  in
  let t0 = now () +. (heartbeat_us *. 1e-6) in
  Array.iteri (fun i _ -> pool.next_beat.(i) <- t0) pool.next_beat;
  (* The caller is the last pool member; n-1 extra domains. *)
  Domain.DLS.set index_key (n - 1);
  pool.domains <- List.init (n - 1) (fun i -> Domain.spawn (worker pool i));
  pool

let shutdown pool =
  if not pool.closed then begin
    pool.closed <- true;
    Atomic.set pool.stop true;
    List.iter Domain.join pool.domains;
    pool.domains <- []
  end

let with_pool ?heartbeat_us ~num_domains f =
  let pool = create ?heartbeat_us ~num_domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let num_domains pool = pool.n

let promotions pool = Atomic.get pool.promo_count

(* Poll the clock: true when a heartbeat interval elapsed on this member.
   Polls and beats also drive the member's adaptive chunking, exactly as in
   the simulated runtime (Sec. 5.1). *)
let poll_beat pool i =
  Hbc_core.Adaptive_chunking.on_poll pool.ac.(i);
  let t = now () in
  if t >= pool.next_beat.(i) then begin
    pool.next_beat.(i) <- t +. pool.hb_interval;
    ignore (Hbc_core.Adaptive_chunking.on_heartbeat pool.ac.(i));
    true
  end
  else false

let current_chunk pool i = Hbc_core.Adaptive_chunking.chunk_size pool.ac.(i)

type 'a cell = { mutable value : 'a option; done_flag : bool Atomic.t }

let wait_cell pool i cell =
  while not (Atomic.get cell.done_flag) do
    match find_task pool i with Some t -> t () | None -> Domain.cpu_relax ()
  done;
  Option.get cell.value

(* Heartbeat-promoted execution of [lo, hi): run chunks sequentially; on a
   beat, hand the upper half of the remaining range to the scheduler and
   continue on the lower half, joining (and help-stealing) at the end. *)
let rec run_range : 'a. pool -> ('a -> int -> 'a) -> ('a -> 'a -> 'a) -> 'a -> 'a -> int -> int -> 'a
    =
 fun pool body combine init acc lo hi ->
  let i = my_index pool in
  let l = ref lo and acc = ref acc in
  let result = ref None in
  while !result = None && !l < hi do
    let c = Stdlib.min (current_chunk pool i) (hi - !l) in
    for k = !l to !l + c - 1 do
      acc := body !acc k
    done;
    l := !l + c;
    if hi - !l > 1 && poll_beat pool i then begin
      let mid = !l + (((hi - !l) + 1) / 2) in
      let cell = { value = None; done_flag = Atomic.make false } in
      Atomic.incr pool.promo_count;
      push pool i (fun () ->
          let r = run_range pool body combine init init mid hi in
          cell.value <- Some r;
          Atomic.set cell.done_flag true);
      let left = run_range pool body combine init !acc !l mid in
      let right = wait_cell pool i cell in
      result := Some (combine left right)
    end
  done;
  match !result with Some r -> r | None -> !acc

let chunk_size_of pool ~member = Hbc_core.Adaptive_chunking.chunk_size pool.ac.(member)

let parallel_for pool ~lo ~hi body =
  if hi > lo then
    run_range pool (fun () k -> body k) (fun () () -> ()) () () lo hi

let parallel_reduce pool ~lo ~hi ~init ~body ~combine =
  if hi <= lo then init else run_range pool body combine init init lo hi
