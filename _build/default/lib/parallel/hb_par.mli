(** A real heartbeat-scheduled parallel-for on OCaml 5 domains.

    This is the runtime half of the paper running natively (not simulated):
    a work-stealing domain pool whose [parallel_for] polls a monotonic clock
    at chunk boundaries and, when a heartbeat interval has elapsed, promotes
    the remaining iterations by splitting them in half and pushing the upper
    half as a stealable task — all parallelism is latent until a heartbeat
    materializes it, so tight loops run at near-sequential speed.

    On the single-core container this library is exercised for correctness
    (results equal the sequential ones under any interleaving); on a real
    multicore it provides speedup too. *)

type pool

val create : ?heartbeat_us:float -> num_domains:int -> unit -> pool
(** Spawn [num_domains - 1] worker domains (the caller participates as the
    last member). [heartbeat_us] defaults to 100 (the paper's rate). *)

val shutdown : pool -> unit
(** Join all worker domains. Idempotent. *)

val with_pool : ?heartbeat_us:float -> num_domains:int -> (pool -> 'a) -> 'a

val parallel_for : pool -> lo:int -> hi:int -> (int -> unit) -> unit
(** Heartbeat-promoted loop over [\[lo, hi)]. The body may itself call
    [parallel_for] (nested parallelism) but must not raise. *)

val parallel_reduce :
  pool -> lo:int -> hi:int -> init:'a -> body:('a -> int -> 'a) -> combine:('a -> 'a -> 'a) -> 'a
(** Heartbeat-promoted reduction; [combine] must be associative and is
    applied in deterministic split order. *)

val num_domains : pool -> int

val promotions : pool -> int
(** Promotions performed since pool creation (observability/tests). *)

val chunk_size_of : pool -> member:int -> int
(** Current adaptive chunk size of a pool member (Sec. 5.1 running natively;
    observability/tests). *)
