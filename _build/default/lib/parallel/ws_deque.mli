(** Lock-free Chase–Lev work-stealing deque on OCaml [Atomic].

    The owner pushes and pops at the bottom without contention in the common
    case; thieves steal from the top with a compare-and-set. This is the
    classic dynamic circular work-stealing deque (Chase & Lev, SPAA'05) in
    its sequentially-consistent form — OCaml's [Atomic] operations are SC,
    so no explicit fences are needed.

    Safety contract: {!push} and {!pop} may only be called by the owning
    domain; {!steal} may be called by any domain. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Owner-side push at the bottom; grows the buffer as needed. *)

val pop : 'a t -> 'a option
(** Owner-side pop of the newest element; races with thieves only on the
    last element. *)

val steal : 'a t -> 'a option
(** Thief-side removal of the oldest element; [None] when empty or when the
    race for the element was lost. *)

val size : 'a t -> int
(** Snapshot size (approximate under concurrency; exact when quiescent). *)
