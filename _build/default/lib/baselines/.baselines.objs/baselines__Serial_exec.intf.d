lib/baselines/serial_exec.mli: Ir Sim
