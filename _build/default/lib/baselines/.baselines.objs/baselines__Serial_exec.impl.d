lib/baselines/serial_exec.ml: Array Ir List Sim
