lib/baselines/tpal.mli: Hbc_core Ir Sim
