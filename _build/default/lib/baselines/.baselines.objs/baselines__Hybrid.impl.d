lib/baselines/hybrid.ml: Hbc_core Ir Openmp
