lib/baselines/openmp.mli: Ir Sim
