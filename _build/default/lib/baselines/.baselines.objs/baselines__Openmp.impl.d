lib/baselines/openmp.ml: Array Ir List Option Serial_exec Sim Stdlib
