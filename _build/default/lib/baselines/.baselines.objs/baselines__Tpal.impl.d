lib/baselines/tpal.ml: Hbc_core
