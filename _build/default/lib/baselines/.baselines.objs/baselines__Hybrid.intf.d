lib/baselines/hybrid.mli: Hbc_core Ir Openmp Sim
