(** The scheduler the paper's conclusion asks for (Sec. 6.8): "an ideal
    compiler should include both heartbeat and static scheduling."

    Regular programs run under OpenMP-style static scheduling (minimal
    runtime overhead, perfect balance by construction); irregular programs
    run under the heartbeat runtime. The regularity classification comes
    from the program metadata — the same attribute the paper's Table 1
    assigns per benchmark. *)

val run_program :
  ?hbc:Hbc_core.Rt_config.t -> ?omp:Openmp.config -> 'e Ir.Program.t -> Sim.Run_result.t

val chosen : 'e Ir.Program.t -> [ `Heartbeat | `Static ]
(** Which engine {!run_program} will pick. *)
