let config ~chunk = Hbc_core.Rt_config.tpal ~chunk

let run_program ~chunk prog = Hbc_core.Executor.run (config ~chunk) prog
