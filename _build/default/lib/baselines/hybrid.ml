let chosen (p : _ Ir.Program.t) =
  match p.Ir.Program.regularity with `Regular -> `Static | `Irregular -> `Heartbeat

let run_program ?(hbc = Hbc_core.Rt_config.default) ?(omp = Openmp.static ()) p =
  match chosen p with
  | `Static -> Openmp.run_program { omp with Openmp.schedule = Openmp.Static } p
  | `Heartbeat -> Hbc_core.Executor.run hbc p
