type 'a t = {
  mutable buf : 'a option array;
  mutable top : int;    (* index of oldest element *)
  mutable bottom : int; (* one past the newest element *)
}

let create () = { buf = Array.make 16 None; top = 0; bottom = 0 }

let length t = t.bottom - t.top

let is_empty t = length t = 0

let slot t i = i land (Array.length t.buf - 1)

let grow t =
  let old = t.buf in
  let n = Array.length old in
  let nbuf = Array.make (2 * n) None in
  for i = t.top to t.bottom - 1 do
    nbuf.(i land (2 * n - 1)) <- old.(i land (n - 1))
  done;
  t.buf <- nbuf

let push_bottom t x =
  if length t = Array.length t.buf then grow t;
  t.buf.(slot t t.bottom) <- Some x;
  t.bottom <- t.bottom + 1

let pop_bottom t =
  if is_empty t then None
  else begin
    t.bottom <- t.bottom - 1;
    let i = slot t t.bottom in
    let x = t.buf.(i) in
    t.buf.(i) <- None;
    x
  end

let steal t =
  if is_empty t then None
  else begin
    let i = slot t t.top in
    let x = t.buf.(i) in
    t.buf.(i) <- None;
    t.top <- t.top + 1;
    x
  end

let peek_bottom t = if is_empty t then None else t.buf.(slot t (t.bottom - 1))

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.top <- 0;
  t.bottom <- 0

let to_list t =
  let rec gather i acc =
    if i >= t.bottom then List.rev acc
    else
      match t.buf.(slot t i) with
      | Some x -> gather (i + 1) (x :: acc)
      | None -> gather (i + 1) acc
  in
  gather t.top []
