lib/sim/run_result.mli: Metrics
