lib/sim/sim_rng.mli:
