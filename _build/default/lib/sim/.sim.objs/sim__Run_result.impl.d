lib/sim/run_result.ml: Float Metrics
