lib/sim/metrics.mli: Hashtbl
