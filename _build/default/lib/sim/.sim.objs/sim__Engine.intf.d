lib/sim/engine.mli: Sim_rng
