lib/sim/sim_rng.ml: Float Int64 Stdlib
