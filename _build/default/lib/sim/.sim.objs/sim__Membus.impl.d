lib/sim/membus.ml: Float Stdlib
