lib/sim/deque.ml: Array List
