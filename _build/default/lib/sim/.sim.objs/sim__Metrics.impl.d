lib/sim/metrics.ml: Array Float Hashtbl List Option Stdlib
