lib/sim/cost_model.mli:
