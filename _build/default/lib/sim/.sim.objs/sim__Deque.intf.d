lib/sim/deque.mli:
