lib/sim/membus.mli:
