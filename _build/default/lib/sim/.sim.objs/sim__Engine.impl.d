lib/sim/engine.ml: Array Effect Option Sim_rng Stdlib
