type t = {
  ghz : float;
  heartbeat_interval : int;
  poll_cost : int;
  promotion_branch_cost : int;
  chunk_transfer_cost : int;
  closure_load_cost : int;
  outline_call_cost : int;
  lst_store_cost : int;
  promotion_handler_cost : int;
  deque_push_cost : int;
  deque_pop_cost : int;
  steal_attempt_cost : int;
  steal_success_cost : int;
  join_slow_path_cost : int;
  interrupt_delivery_cost : int;
  rollforward_lookup_cost : int;
  signal_send_cost : int;
  signal_delivery_cost : int;
  omp_fork_cost : int;
  omp_join_cost : int;
  omp_dispatch_cost : int;
  omp_static_setup_cost : int;
  omp_task_spawn_cost : int;
  omp_dispatch_hold : int;
  dram_bytes_per_cycle : float;
  idle_backoff : int;
}

(* Paper-exact constants: 3 GHz, 100 us heartbeat = 300k cycles, 50-cycle
   polls, 3800-cycle kernel-module events, few-thousand-cycle task spawns. *)
let paper =
  {
    ghz = 3.0;
    heartbeat_interval = 300_000;
    poll_cost = 50;
    promotion_branch_cost = 2;
    chunk_transfer_cost = 10;
    closure_load_cost = 6;
    outline_call_cost = 4;
    lst_store_cost = 4;
    promotion_handler_cost = 900;
    deque_push_cost = 30;
    deque_pop_cost = 30;
    steal_attempt_cost = 400;
    steal_success_cost = 1_200;
    join_slow_path_cost = 600;
    interrupt_delivery_cost = 3_800;
    rollforward_lookup_cost = 120;
    signal_send_cost = 2_600;
    signal_delivery_cost = 5_200;
    omp_fork_cost = 12_000;
    omp_join_cost = 9_000;
    omp_dispatch_cost = 180;
    omp_static_setup_cost = 120;
    omp_task_spawn_cost = 5_000;
    omp_dispatch_hold = 8;
    dram_bytes_per_cycle = 44.0;
    idle_backoff = 500;
  }

(* Default preset: every heartbeat-frequency-linked constant divided by 10
   so container-scale inputs see the same beats-per-run and overhead-per-beat
   ratios as the paper's second-long runs (see DESIGN.md). Per-instruction
   costs (polls, chunk bookkeeping, OpenMP dispatch) are physical and stay. *)
let default =
  {
    paper with
    heartbeat_interval = 30_000;
    promotion_handler_cost = 300;
    deque_push_cost = 20;
    deque_pop_cost = 20;
    steal_attempt_cost = 200;
    steal_success_cost = 600;
    join_slow_path_cost = 300;
    interrupt_delivery_cost = 1_200;
    rollforward_lookup_cost = 40;
    signal_send_cost = 850;
    signal_delivery_cost = 1_800;
    omp_fork_cost = 9_000;
    omp_join_cost = 7_000;
  }

let cycles_of_us t us = int_of_float (us *. t.ghz *. 1_000.0)

let us_of_cycles t cy = Float.of_int cy /. (t.ghz *. 1_000.0)

let seconds_of_cycles t cy = us_of_cycles t cy /. 1_000_000.0
