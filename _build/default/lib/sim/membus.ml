type t = { bytes_per_cycle : float; mutable free_at : float }

let create ~bytes_per_cycle =
  assert (bytes_per_cycle > 0.0);
  { bytes_per_cycle; free_at = 0.0 }

let serve t ~now ~compute ~bytes =
  if bytes <= 0 then compute
  else begin
    let mem_cycles = Float.of_int bytes /. t.bytes_per_cycle in
    let start = Float.max t.free_at (Float.of_int now) in
    let finish_mem = start +. mem_cycles in
    t.free_at <- finish_mem;
    let mem_total = int_of_float (Float.ceil (finish_mem -. Float.of_int now)) in
    Stdlib.max compute mem_total
  end

let reset t = t.free_at <- 0.0

let busy_until t = t.free_at
