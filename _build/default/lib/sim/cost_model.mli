(** Virtual-cycle cost model of the simulated 64-core machine.

    All constants are in clock cycles of the simulated 3.0 GHz machine (the
    paper's Xeon Platinum 8375C testbed). Constants quoted directly from the
    paper: a poll reads the TSC in ~50 cycles, a kernel-module heartbeat event
    costs 3800 cycles end to end, a heartbeat fires every 100 us, and spawning
    an OS-visible parallel task costs a few thousand cycles. *)

type t = {
  ghz : float;  (** simulated clock, used to convert us to cycles *)
  heartbeat_interval : int;  (** cycles between heartbeats (100 us default) *)
  poll_cost : int;  (** software poll: read TSC + compare (paper: ~50) *)
  promotion_branch_cost : int;
      (** latch-inserted call + conditional branch on the handler result *)
  chunk_transfer_cost : int;
      (** maintaining the residual chunk counter [R] across leaf-loop
          invocations (the cost HBC pays and TPAL does not, Sec. 6.3) *)
  closure_load_cost : int;
      (** loading live-ins/live-outs/iteration space from an LST context at
          loop-slice entry *)
  outline_call_cost : int;  (** calling an outlined loop function *)
  lst_store_cost : int;
      (** parent storing the child iteration space into the child context *)
  promotion_handler_cost : int;
      (** promotion: reify contexts, allocate task closures, push to deque *)
  deque_push_cost : int;
  deque_pop_cost : int;
  steal_attempt_cost : int;  (** failed remote probe (cache-line bounce) *)
  steal_success_cost : int;  (** successful steal incl. task migration *)
  join_slow_path_cost : int;
      (** synchronization when a promoted task was stolen (atomics) *)
  interrupt_delivery_cost : int;
      (** kernel-module IPI: user->kernel->user round trip (paper: 3800) *)
  rollforward_lookup_cost : int;  (** binary search of the rollforward table *)
  signal_send_cost : int;
      (** ping thread: issuing one POSIX signal to one worker *)
  signal_delivery_cost : int;
      (** ping thread: signal frame setup/teardown in the receiver *)
  omp_fork_cost : int;  (** entering a parallel region (waking the team) *)
  omp_join_cost : int;  (** barrier at region end *)
  omp_dispatch_cost : int;
      (** dynamic schedule: grabbing the next chunk from the shared queue *)
  omp_static_setup_cost : int;  (** static schedule per-thread bounds setup *)
  omp_task_spawn_cost : int;
      (** spawning a nested task/region (paper: a few thousand cycles) *)
  omp_dispatch_hold : int;
      (** exclusive occupancy of the dynamic-schedule shared counter per
          grab (cache-line ownership transfer): serializes fine-grained
          dynamic scheduling across the team *)
  dram_bytes_per_cycle : float;
      (** aggregate memory bandwidth of the simulated machine (see
          {!Membus}); calibrated so bandwidth-bound kernels saturate at the
          paper's speedup levels *)
  idle_backoff : int;  (** cycles between steal rounds when everything fails *)
}

val paper : t
(** The paper's exact constants (100 us heartbeat at 3 GHz). Appropriate for
    full-size inputs; at container scale too few heartbeats fire per run. *)

val default : t
(** The calibrated preset used by all experiments: heartbeat-period-linked
    constants uniformly scaled by 1/10 so the beats-per-run and
    overhead-per-beat ratios match the paper at container-scale inputs
    (DESIGN.md, "Substitutions"). *)

val cycles_of_us : t -> float -> int
(** Convert microseconds of the simulated machine to cycles. *)

val us_of_cycles : t -> int -> float

val seconds_of_cycles : t -> int -> float
