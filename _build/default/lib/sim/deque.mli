(** Per-worker work-stealing deque.

    The owning worker pushes and pops at the bottom (LIFO, cache-friendly);
    thieves steal from the top (FIFO, oldest — hence largest — task first).
    The simulator is single-threaded, so no synchronization is needed; the
    structure only reproduces the Chase–Lev access discipline. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push_bottom : 'a t -> 'a -> unit
(** Owner-side push. *)

val pop_bottom : 'a t -> 'a option
(** Owner-side pop of the most recently pushed element. *)

val steal : 'a t -> 'a option
(** Thief-side removal of the oldest element. *)

val peek_bottom : 'a t -> 'a option
(** Owner-side inspection without removal. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Elements from top (oldest) to bottom (newest); for tests. *)
