(** Shared memory-bus model.

    Irregular kernels like spmv are bandwidth-bound on real multicores: the
    paper's 64-core spmv speedups saturate far below core count. The bus is
    a single shared resource serving [bytes_per_cycle]; a chunk of work
    occupying the bus past the caller's own compute time stalls the caller.
    One core alone never saturates it (the sequential baseline is
    compute-priced), matching how the paper's baselines already include
    single-thread memory time. *)

type t

val create : bytes_per_cycle:float -> t

val serve : t -> now:int -> compute:int -> bytes:int -> int
(** [serve t ~now ~compute ~bytes] books [bytes] of traffic starting at
    [now] and returns the total cycles the requester occupies (compute
    overlapped with its memory service time; never less than [compute]). *)

val reset : t -> unit

val busy_until : t -> float
(** For tests. *)
