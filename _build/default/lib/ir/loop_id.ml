type t = { level : int; index : int }

let make ~level ~index = { level; index }

let none = { level = -1; index = -1 }

let is_none t = t.level < 0

let equal a b = a.level = b.level && a.index = b.index

let compare a b =
  match Stdlib.compare a.level b.level with 0 -> Stdlib.compare a.index b.index | c -> c

let hash t = (t.level * 8191) + t.index

let pp fmt t = Format.fprintf fmt "(%d, %d)" t.level t.index

let to_string t = Format.asprintf "%a" pp t
