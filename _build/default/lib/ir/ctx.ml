type t = {
  ordinal : int;
  mutable lo : int;
  mutable hi : int;
  mutable locals : Locals.t;
}

type set = t array

let make ~ordinal ~spec = { ordinal; lo = 0; hi = 0; locals = Locals.create spec }

let remaining t = Stdlib.max 0 (t.hi - t.lo - 1)

let set_slice t ~lo ~hi =
  t.lo <- lo;
  t.hi <- hi

let copy_set set = Array.map (fun c -> { c with ordinal = c.ordinal }) set

let refresh_subtree set ~ordinals ~specs =
  List.iter
    (fun o ->
      let fresh = make ~ordinal:o ~spec:specs.(o) in
      set.(o) <- fresh)
    ordinals
