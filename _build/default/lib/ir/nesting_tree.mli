(** Inter-procedural loop-nesting tree (Sec. 3.1), pruned to DOALL loops.

    Built once per nest by the compiler front half; drives loop-slice task
    generation, the outer-loop-first promotion policy, and leftover-task
    enumeration (Algorithm 1). *)

type node = {
  ordinal : int;
  id : Loop_id.t;  (** [Loop_id.none] for pruned (non-DOALL) loops *)
  name : string;
  doall : bool;
  parent : int option;  (** ordinal of the nearest enclosing DOALL loop *)
  children : int list;  (** DOALL children ordinals, body order *)
  depth : int;  (** DOALL nesting level; -1 for pruned loops *)
}

type t

val build : 'e Nest.loop -> t
(** Assigns ordinals and IDs on the loop records (via {!Nest.index}) and
    returns the pruned tree. *)

val size : t -> int
(** Number of loops, including pruned ones. *)

val node : t -> int -> node

val root : t -> int

val doall_ordinals : t -> int list

val leaves : t -> int list
(** DOALL loops with no DOALL children, preorder. *)

val ancestors : t -> int -> int list
(** DOALL ancestors from the parent upward to the root. *)

val is_ancestor : t -> ancestor:int -> of_:int -> bool

val max_level : t -> int

val loops_at_level : t -> int -> int list

val pp : Format.formatter -> t -> unit
