(** Loop-nest intermediate representation.

    A program region with fork-join parallelism is a tree of loops whose
    bodies are sequences of segments: opaque straight-line statements and
    nested loops. This is the shape HBC sees after its clang front-end has
    marked DOALL loops: the compiler passes only inspect loop structure,
    never the inside of straight-line code, so statements are modelled as
    OCaml closures that perform the real computation and return their cost
    in simulated cycles.

    Statements receive the environment (the workload's own state), the LST
    context set (to read enclosing induction variables and their own loop's
    locals), and the current iteration index. Any value that must cross a
    nested-loop boundary within an iteration — exactly HBC's live-ins and
    live-outs — must live in the environment or in some loop's locals,
    because a leftover task resumes tail statements in a different task
    than the one that ran the head statements. *)

type 'e stmt = {
  stmt_name : string;
  exec : 'e -> Ctx.set -> int -> int;
      (** [exec env ctxs iter] performs the iteration's work for this
          statement and returns its cost in cycles. *)
}

type 'e loop = {
  loop_name : string;
  doall : bool;  (** false = sequential loop: executed inline, never promoted *)
  mutable ordinal : int;  (** preorder position in the nest; set by {!index} *)
  mutable id : Loop_id.t;  (** (level, index) among DOALL loops; set by {!index} *)
  bounds : 'e -> Ctx.set -> int * int;
      (** iteration space of one invocation, evaluated at invocation time so
          it may depend on enclosing induction variables (irregularity) *)
  locals_spec : Locals.spec;
  bytes_per_iter : int;
      (** memory traffic one iteration of this loop puts on the shared bus
          (its own statements only, not nested loops); drives the
          {!Sim.Membus} bandwidth model *)
  init : ('e -> Locals.t -> unit) option;
      (** run when a task starts executing a slice of this loop; must
          establish the reduction identity if [reduction] is present *)
  reduction : (Locals.t -> Locals.t -> unit) option;
      (** [combine dst src]: fold a sibling slice's locals into the
          canonical ones; declaring it makes parallel splits of this loop
          use fresh locals per half *)
  commit : ('e -> Ctx.set -> unit) option;
      (** for root loops only: publish locals into the environment after the
          whole loop completed (a nested loop's results are instead read by
          the parent's tail statements) *)
  body : 'e segment list;
}

and 'e segment = Stmt of 'e stmt | Nested of 'e loop

val stmt : name:string -> ('e -> Ctx.set -> int -> int) -> 'e segment
(** Convenience constructor for a statement segment. *)

val loop :
  ?doall:bool ->
  ?locals_spec:Locals.spec ->
  ?bytes_per_iter:int ->
  ?init:('e -> Locals.t -> unit) ->
  ?reduction:(Locals.t -> Locals.t -> unit) ->
  ?commit:('e -> Ctx.set -> unit) ->
  name:string ->
  bounds:('e -> Ctx.set -> int * int) ->
  'e segment list ->
  'e loop
(** Build a loop node. [doall] defaults to true. Ordinal and id are
    assigned later by {!index}. *)

val index : 'e loop -> int
(** [index root] walks the nest in preorder, assigns each loop's [ordinal]
    and its DOALL [id] (level, index), and returns the number of loops.
    Idempotent; called by {!Program.v} and the compiler pipeline. *)

val loops_preorder : 'e loop -> 'e loop list

val loop_of_ordinal : 'e loop -> int -> 'e loop
(** @raise Not_found if no loop in the nest has that ordinal. *)

val nested_of : 'e loop -> 'e loop list
(** Direct child loops, in body order. *)

val is_leaf : 'e loop -> bool
(** No nested DOALL loop in the body. *)

val tail_segments : 'e loop -> after:'e loop -> 'e segment list
(** Body segments of [loop] strictly after the [Nested after] segment —
    the "tail work" consumed by leftover tasks (Algorithm 2).
    @raise Not_found if [after] is not a direct child. *)

val locals_specs : 'e loop -> Locals.spec array
(** Locals spec per ordinal, for context-set allocation. *)

val subtree_ordinals : 'e loop -> int list
(** Ordinals of the loop and all its descendants. *)
