type issue =
  | Duplicate_ordinal of int
  | Unassigned_ordinal of string
  | Empty_body of string
  | Doall_under_sequential of string

let pp_issue fmt = function
  | Duplicate_ordinal o -> Format.fprintf fmt "duplicate ordinal %d" o
  | Unassigned_ordinal name -> Format.fprintf fmt "loop %s has no ordinal (call Nest.index)" name
  | Empty_body name -> Format.fprintf fmt "loop %s has an empty body" name
  | Doall_under_sequential name ->
      Format.fprintf fmt "DOALL loop %s is nested under a sequential loop and will never be promoted" name

let check root =
  let loops = Nest.loops_preorder root in
  let issues = ref [] in
  let add i = issues := i :: !issues in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (l : _ Nest.loop) ->
      if l.Nest.ordinal < 0 then add (Unassigned_ordinal l.Nest.loop_name)
      else if Hashtbl.mem seen l.Nest.ordinal then add (Duplicate_ordinal l.Nest.ordinal)
      else Hashtbl.add seen l.Nest.ordinal ();
      if l.Nest.body = [] then add (Empty_body l.Nest.loop_name))
    loops;
  let rec warn (l : _ Nest.loop) under_sequential =
    if l.Nest.doall && under_sequential then add (Doall_under_sequential l.Nest.loop_name);
    List.iter (fun c -> warn c (under_sequential || not l.Nest.doall)) (Nest.nested_of l)
  in
  warn root false;
  List.rev !issues

let errors issues =
  List.filter
    (function
      | Duplicate_ordinal _ | Unassigned_ordinal _ | Empty_body _ -> true
      | Doall_under_sequential _ -> false)
    issues
