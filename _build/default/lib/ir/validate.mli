(** Structural validation of loop nests, run by the compiler pipeline before
    any transformation. *)

type issue =
  | Duplicate_ordinal of int
  | Unassigned_ordinal of string  (** loop name *)
  | Empty_body of string
  | Doall_under_sequential of string
      (** a DOALL loop nested inside a non-DOALL loop: legal but pruned, the
          heartbeat runtime will never promote it — reported so the user can
          restructure (paper Sec. 3.1 prunes such loops from the tree) *)

val pp_issue : Format.formatter -> issue -> unit

val check : 'e Nest.loop -> issue list
(** Hard errors first ([Duplicate_ordinal], [Unassigned_ordinal],
    [Empty_body]), then warnings. *)

val errors : issue list -> issue list
(** The subset that must abort compilation. *)
