lib/ir/nesting_tree.mli: Format Loop_id Nest
