lib/ir/ctx.ml: Array List Locals Stdlib
