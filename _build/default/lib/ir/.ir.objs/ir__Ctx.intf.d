lib/ir/ctx.mli: Locals
