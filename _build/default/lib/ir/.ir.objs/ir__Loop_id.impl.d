lib/ir/loop_id.ml: Format Stdlib
