lib/ir/program.mli: Nest
