lib/ir/program.ml: List Nest Printf
