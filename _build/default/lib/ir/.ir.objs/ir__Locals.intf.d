lib/ir/locals.mli:
