lib/ir/loop_id.mli: Format
