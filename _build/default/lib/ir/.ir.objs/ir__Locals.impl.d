lib/ir/locals.ml: Array Stdlib
