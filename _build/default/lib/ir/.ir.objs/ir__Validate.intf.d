lib/ir/validate.mli: Format Nest
