lib/ir/nesting_tree.ml: Array Format List Loop_id Nest Option Stdlib
