lib/ir/validate.ml: Format Hashtbl List Nest
