lib/ir/nest.mli: Ctx Locals Loop_id
