lib/ir/nest.ml: Array Ctx Hashtbl List Locals Loop_id Option
