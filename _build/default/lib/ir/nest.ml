type 'e stmt = { stmt_name : string; exec : 'e -> Ctx.set -> int -> int }

type 'e loop = {
  loop_name : string;
  doall : bool;
  mutable ordinal : int;
  mutable id : Loop_id.t;
  bounds : 'e -> Ctx.set -> int * int;
  locals_spec : Locals.spec;
  bytes_per_iter : int;
  init : ('e -> Locals.t -> unit) option;
  reduction : (Locals.t -> Locals.t -> unit) option;
  commit : ('e -> Ctx.set -> unit) option;
  body : 'e segment list;
}

and 'e segment = Stmt of 'e stmt | Nested of 'e loop

let stmt ~name exec = Stmt { stmt_name = name; exec }

let loop ?(doall = true) ?(locals_spec = Locals.no_spec) ?(bytes_per_iter = 0) ?init ?reduction
    ?commit ~name ~bounds body =
  {
    loop_name = name;
    doall;
    ordinal = -1;
    id = Loop_id.none;
    bounds;
    locals_spec;
    bytes_per_iter;
    init;
    reduction;
    commit;
    body;
  }

let nested_of l =
  List.filter_map (function Nested child -> Some child | Stmt _ -> None) l.body

let rec loops_preorder l = l :: List.concat_map loops_preorder (nested_of l)

let index root =
  let counter = ref 0 in
  let per_level = Hashtbl.create 8 in
  let rec assign l level =
    l.ordinal <- !counter;
    incr counter;
    if l.doall && level >= 0 then begin
      let idx = Option.value ~default:0 (Hashtbl.find_opt per_level level) in
      Hashtbl.replace per_level level (idx + 1);
      l.id <- Loop_id.make ~level ~index:idx
    end
    else l.id <- Loop_id.none;
    (* A non-DOALL loop is pruned from the tree: its DOALL descendants do not
       exist for the heartbeat runtime (they run serially inside it), which we
       encode by pushing them outside any valid level. *)
    let child_level = if l.doall && level >= 0 then level + 1 else -1 in
    List.iter (fun c -> assign c child_level) (nested_of l)
  in
  assign root 0;
  !counter

let loop_of_ordinal root o =
  match List.find_opt (fun l -> l.ordinal = o) (loops_preorder root) with
  | Some l -> l
  | None -> raise Not_found

let is_leaf l = nested_of l = []

let tail_segments l ~after =
  let rec drop = function
    | [] -> raise Not_found
    | Nested c :: rest when c == after -> rest
    | _ :: rest -> drop rest
  in
  drop l.body

let locals_specs root =
  let loops = loops_preorder root in
  let n = List.length loops in
  let specs = Array.make n Locals.no_spec in
  List.iter (fun l -> specs.(l.ordinal) <- l.locals_spec) loops;
  specs

let subtree_ordinals l = List.map (fun x -> x.ordinal) (loops_preorder l)
