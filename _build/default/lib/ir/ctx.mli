(** Loop-Slice Task (LST) contexts (Sec. 3.2).

    One context per DOALL loop of a nesting tree, owned by a task. It
    captures the loop's closure (its {!Locals.t}), its iteration space
    [\[lo, hi)], and its induction variable. [lo] doubles as the induction
    variable: during execution it is the index of the iteration currently
    running; the promotion handler reads it to split the remaining space and
    leftover tasks resume from [lo + 1].

    A context {e set} is the array of contexts for all loops of one nesting
    tree, indexed by loop ordinal, allocated before the root loop is invoked
    and passed down to every nested loop — exactly the structure HBC
    allocates in its task-linking step. *)

type t = {
  ordinal : int;  (** ordinal of the loop this context belongs to *)
  mutable lo : int;  (** induction variable: iteration currently running *)
  mutable hi : int;  (** exclusive upper bound of the slice *)
  mutable locals : Locals.t;
}

type set = t array

val make : ordinal:int -> spec:Locals.spec -> t

val remaining : t -> int
(** Iterations strictly after the current one: [hi - lo - 1], clamped at 0. *)

val set_slice : t -> lo:int -> hi:int -> unit

val copy_set : set -> set
(** Shallow per-context copy: new context records sharing the same locals
    objects. Used to seed leftover tasks. *)

val refresh_subtree : set -> ordinals:int list -> specs:Locals.spec array -> unit
(** Replace the contexts of the given ordinals (in an already-copied set)
    with fresh contexts and fresh locals. Used to seed loop-slice tasks so
    that parallel siblings never share mutable state below the split loop. *)
