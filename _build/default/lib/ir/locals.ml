type t = { floats : float array; ints : int array }

type spec = { nfloats : int; nints : int }

let no_spec = { nfloats = 0; nints = 0 }

let create spec = { floats = Array.make (Stdlib.max spec.nfloats 0) 0.0; ints = Array.make (Stdlib.max spec.nints 0) 0 }

let copy t = { floats = Array.copy t.floats; ints = Array.copy t.ints }

let clear t =
  Array.fill t.floats 0 (Array.length t.floats) 0.0;
  Array.fill t.ints 0 (Array.length t.ints) 0

let equal a b = a.floats = b.floats && a.ints = b.ints
