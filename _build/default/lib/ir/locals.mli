(** Per-loop-invocation local storage.

    A loop's locals hold the values that must survive task boundaries: they
    are the live-outs and reduction accumulators that HBC would place in the
    loop's closure. Statements read and write them through the loop's
    {!Ctx.t}. Splitting a slice with a declared reduction gives each half a
    fresh copy (built with {!create} + the loop's init) that is later combined
    into the canonical copy. *)

type t = { floats : float array; ints : int array }

type spec = { nfloats : int; nints : int }

val no_spec : spec

val create : spec -> t

val copy : t -> t

val clear : t -> unit
(** Zero all slots. *)

val equal : t -> t -> bool
