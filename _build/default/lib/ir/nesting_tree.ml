type node = {
  ordinal : int;
  id : Loop_id.t;
  name : string;
  doall : bool;
  parent : int option;
  children : int list;
  depth : int;
}

type t = { nodes : node array; root_ordinal : int }

let build root =
  let n = Nest.index root in
  let nodes = Array.make n None in
  let rec walk (l : _ Nest.loop) parent =
    let doall_children =
      List.filter_map
        (fun (c : _ Nest.loop) -> if c.Nest.doall then Some c.Nest.ordinal else None)
        (Nest.nested_of l)
    in
    nodes.(l.Nest.ordinal) <-
      Some
        {
          ordinal = l.Nest.ordinal;
          id = l.Nest.id;
          name = l.Nest.loop_name;
          doall = l.Nest.doall;
          parent = (if l.Nest.doall then parent else None);
          children = (if l.Nest.doall then doall_children else []);
          depth = l.Nest.id.Loop_id.level;
        };
    let next_parent = if l.Nest.doall then Some l.Nest.ordinal else None in
    List.iter (fun c -> walk c next_parent) (Nest.nested_of l)
  in
  walk root None;
  let nodes = Array.map Option.get nodes in
  { nodes; root_ordinal = root.Nest.ordinal }

let size t = Array.length t.nodes

let node t o = t.nodes.(o)

let root t = t.root_ordinal

let doall_ordinals t =
  Array.to_list t.nodes |> List.filter (fun n -> n.doall && not (Loop_id.is_none n.id))
  |> List.map (fun n -> n.ordinal)

let leaves t =
  doall_ordinals t
  |> List.filter (fun o ->
         let n = node t o in
         n.children = [])

let ancestors t o =
  let rec up acc o =
    match (node t o).parent with None -> List.rev acc | Some p -> up (p :: acc) p
  in
  up [] o

let is_ancestor t ~ancestor ~of_ = List.mem ancestor (ancestors t of_)

let max_level t = Array.fold_left (fun acc n -> Stdlib.max acc n.depth) 0 t.nodes

let loops_at_level t level =
  doall_ordinals t |> List.filter (fun o -> (node t o).depth = level)

let pp fmt t =
  Array.iter
    (fun n ->
      Format.fprintf fmt "%d %s %a doall=%b parent=%s depth=%d@." n.ordinal n.name Loop_id.pp
        n.id n.doall
        (match n.parent with None -> "-" | Some p -> string_of_int p)
        n.depth)
    t.nodes
