(** A whole benchmark program: environment construction, the static loop
    nests, and a serial driver that invokes them.

    This mirrors the structure of the paper's benchmarks: ordinary serial
    C/C++ control flow (convergence loops, phase sequencing) around a small
    number of parallel loop nests that the compiler transforms. Executors
    (sequential, OpenMP-like, TPAL, HBC) provide the [cpu] handle; the driver
    calls [exec] to run a nest and [advance] to account for serial work
    between nests. *)

type 'e cpu = {
  exec : 'e Nest.loop -> unit;  (** run one of the program's nests to completion *)
  advance : int -> unit;  (** consume cycles of serial (non-nest) driver work *)
}

type 'e t = {
  name : string;
  make_env : unit -> 'e;
      (** build inputs (deterministically) and fresh output storage *)
  nests : 'e Nest.loop list;  (** every parallel nest, for ahead-of-time compilation *)
  omp_serial_nests : string list;
      (** nests the original benchmark's OpenMP pragmas leave sequential
          (e.g. Rodinia kmeans' center-update reduction); the OpenMP
          executors honor this, heartbeat executors parallelize everything *)
  driver : 'e -> 'e cpu -> unit;
  fingerprint : 'e -> float;
      (** checksum over the outputs, used to validate every executor against
          the sequential reference *)
  regularity : [ `Regular | `Irregular ];
}

type any = Any : 'e t -> any

val v :
  ?omp_serial_nests:string list ->
  ?regularity:[ `Regular | `Irregular ] ->
  name:string ->
  make_env:(unit -> 'e) ->
  nests:'e Nest.loop list ->
  driver:('e -> 'e cpu -> unit) ->
  fingerprint:('e -> float) ->
  unit ->
  'e t
(** Smart constructor; indexes every nest (ordinals and loop IDs).
    [regularity] defaults to [`Irregular]. *)

val single_nest : 'e t -> 'e Nest.loop
(** The nest of a single-nest program.
    @raise Invalid_argument otherwise. *)
