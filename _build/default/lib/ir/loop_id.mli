(** Identity of a DOALL loop inside its loop-nesting tree (Sec. 3.1).

    The ID is the pair (level, index): [level] is the nesting depth among
    DOALL loops, starting at 0 for the root loop; [index] is the position of
    the loop within its level, left to right. In spmv the row loop is (0, 0)
    and the col loop is (1, 0). Loops pruned from the tree (non-DOALL) carry
    {!none}. *)

type t = { level : int; index : int }

val make : level:int -> index:int -> t

val none : t
(** Sentinel for loops outside the DOALL tree: [(-1, -1)]. *)

val is_none : t -> bool

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string
