type 'e cpu = { exec : 'e Nest.loop -> unit; advance : int -> unit }

type 'e t = {
  name : string;
  make_env : unit -> 'e;
  nests : 'e Nest.loop list;
  omp_serial_nests : string list;
  driver : 'e -> 'e cpu -> unit;
  fingerprint : 'e -> float;
  regularity : [ `Regular | `Irregular ];
}

type any = Any : 'e t -> any

let v ?(omp_serial_nests = []) ?(regularity = `Irregular) ~name ~make_env ~nests ~driver
    ~fingerprint () =
  List.iter (fun nest -> ignore (Nest.index nest)) nests;
  { name; make_env; nests; omp_serial_nests; driver; fingerprint; regularity }

let single_nest t =
  match t.nests with
  | [ nest ] -> nest
  | _ -> invalid_arg (Printf.sprintf "program %s does not have exactly one nest" t.name)
