(** Floyd–Warshall all-pairs shortest paths: a serial driver over k with a
    regular two-level DOALL nest (i over j) per step — one of the paper's
    regular benchmarks (Figs. 6, 16). *)

type env = {
  n : int;
  dist : float array;  (** n*n row-major *)
  mutable k : int;
}

val program : scale:float -> env Ir.Program.t
