type env = { tensor : Tensor.csf; factor : float array; f : int; out : float array }

let fiber_ord = 1

let k_ord = 2

let nk = 2048

let fcols = 8

let nest () =
  let k_loop =
    Ir.Nest.loop ~name:"ttm_k" ~bytes_per_iter:76
      ~locals_spec:{ Ir.Locals.nfloats = fcols; nints = 0 }
      ~init:(fun _ (l : Ir.Locals.t) -> Array.fill l.Ir.Locals.floats 0 fcols 0.0)
      ~reduction:(fun dst src ->
        for c = 0 to fcols - 1 do
          dst.Ir.Locals.floats.(c) <- dst.Ir.Locals.floats.(c) +. src.Ir.Locals.floats.(c)
        done)
      ~bounds:(fun e (ctxs : Ir.Ctx.set) ->
        let fb = ctxs.(fiber_ord).Ir.Ctx.lo in
        (e.tensor.Tensor.nnz_ptr.(fb), e.tensor.Tensor.nnz_ptr.(fb + 1)))
      [
        Ir.Nest.stmt ~name:"mac_row" (fun e ctxs p ->
            let l = ctxs.(k_ord).Ir.Ctx.locals in
            let k = e.tensor.Tensor.nnz_k.(p) in
            let v = e.tensor.Tensor.vals.(p) in
            for c = 0 to e.f - 1 do
              l.Ir.Locals.floats.(c) <- l.Ir.Locals.floats.(c) +. (v *. e.factor.((k * e.f) + c))
            done;
            6 * fcols);
      ]
  in
  let fiber_loop =
    Ir.Nest.loop ~name:"ttm_fiber" ~bytes_per_iter:80
      ~bounds:(fun e (ctxs : Ir.Ctx.set) ->
        let i = ctxs.(0).Ir.Ctx.lo in
        (e.tensor.Tensor.fiber_ptr.(i), e.tensor.Tensor.fiber_ptr.(i + 1)))
      [
        Ir.Nest.Nested k_loop;
        Ir.Nest.stmt ~name:"store_row" (fun e ctxs fb ->
            let l = ctxs.(k_ord).Ir.Ctx.locals in
            for c = 0 to e.f - 1 do
              e.out.((fb * e.f) + c) <- l.Ir.Locals.floats.(c)
            done;
            4 * fcols);
      ]
  in
  Ir.Nest.loop ~name:"ttm_slice"
    ~bounds:(fun e _ -> (0, e.tensor.Tensor.ni))
    [ Ir.Nest.Nested fiber_loop ]

let program ~scale =
  let ni = Workload_util.scaled scale 12_000 in
  let root = nest () in
  Ir.Program.v ~name:"ttm"
    ~make_env:(fun () ->
      let tensor = Tensor.generate ~ni ~avg_fibers:5 ~avg_nnz:8 ~nk ~seed:91 in
      let rng = Sim.Sim_rng.create 92 in
      {
        tensor;
        factor = Array.init (nk * fcols) (fun _ -> Sim.Sim_rng.float rng 1.0);
        f = fcols;
        out = Array.make (Tensor.nfibers tensor * fcols) 0.0;
      })
    ~nests:[ root ]
    ~driver:(fun _ cpu -> cpu.Ir.Program.exec root)
    ~fingerprint:(fun e -> Workload_util.checksum e.out)
    ()
