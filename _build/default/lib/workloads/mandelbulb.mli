(** Mandelbulb: the 3D extension of mandelbrot (White's z^8 + c triplex
    iteration) over a voxel grid — a three-level DOALL nest (planes, rows,
    columns), the deepest nesting in the benchmark set (Fig. 5 shows its
    promotions span three levels). *)

type env = {
  nz : int;  (** outer planes (the paper's input has a wide outer dimension) *)
  ny : int;
  nx : int;
  power : int;
  max_iters : int;
  out : int array;
}

val program : scale:float -> env Ir.Program.t

val escape_iterations : env -> x:int -> y:int -> z:int -> int
