type env = { n : int; data : float array; mutable result : float }

let cost_per_element = 5

let nest () =
  Ir.Nest.loop ~name:"plus_reduce" ~bytes_per_iter:8
    ~locals_spec:{ Ir.Locals.nfloats = 1; nints = 0 }
    ~init:(fun _ (l : Ir.Locals.t) -> l.Ir.Locals.floats.(0) <- 0.0)
    ~reduction:(fun dst src ->
      dst.Ir.Locals.floats.(0) <- dst.Ir.Locals.floats.(0) +. src.Ir.Locals.floats.(0))
    ~commit:(fun e (ctxs : Ir.Ctx.set) -> e.result <- ctxs.(0).Ir.Ctx.locals.Ir.Locals.floats.(0))
    ~bounds:(fun e _ -> (0, e.n))
    [
      Ir.Nest.stmt ~name:"add" (fun e (ctxs : Ir.Ctx.set) i ->
          let l = ctxs.(0).Ir.Ctx.locals in
          l.Ir.Locals.floats.(0) <- l.Ir.Locals.floats.(0) +. e.data.(i);
          cost_per_element);
    ]

let program ~scale =
  let n = Workload_util.scaled scale 3_000_000 in
  let root = nest () in
  Ir.Program.v ~name:"plus-reduce-array" ~regularity:`Regular
    ~make_env:(fun () ->
      let rng = Sim.Sim_rng.create 41 in
      { n; data = Array.init n (fun _ -> Sim.Sim_rng.float rng 1.0); result = 0.0 })
    ~nests:[ root ]
    ~driver:(fun _ cpu -> cpu.Ir.Program.exec root)
    ~fingerprint:(fun e -> e.result)
    ()
