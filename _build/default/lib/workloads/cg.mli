(** NAS conjugate gradient (cg), the only NAS benchmark whose input can make
    the workload irregular; the paper runs it on the cage15 matrix from the
    SuiteSparse collection. We substitute a synthetic matrix with the same
    moderate power-law row-length skew (DESIGN.md).

    The driver runs fixed CG iterations around five nests: the two-level
    spmv nest [q = A p] and flat dot/axpy nests with scalar reductions. *)

type env = {
  matrix : Matrix_gen.csr;
  p : float array;
  q : float array;
  r : float array;
  z : float array;
  mutable alpha : float;
  mutable beta : float;
  mutable rho : float;
  mutable dot_result : float;
  iterations : int;
}

val program : scale:float -> env Ir.Program.t
