type env = { nz : int; ny : int; nx : int; power : int; max_iters : int; out : int array }

let escape_iterations e ~x ~y ~z =
  let cx = (2.4 *. Float.of_int x /. Float.of_int e.nx) -. 1.2 in
  let cy = (2.4 *. Float.of_int y /. Float.of_int e.ny) -. 1.2 in
  let cz = (2.4 *. Float.of_int z /. Float.of_int e.nz) -. 1.2 in
  let p = Float.of_int e.power in
  let rec go zx zy zz k =
    if k >= e.max_iters then k
    else begin
      let r2 = (zx *. zx) +. (zy *. zy) +. (zz *. zz) in
      if r2 > 4.0 then k
      else begin
        (* White's triplex power: spherical coordinates raised to p. *)
        let r = Float.sqrt r2 in
        let theta = Float.atan2 (Float.sqrt ((zx *. zx) +. (zy *. zy))) zz in
        let phi = Float.atan2 zy zx in
        let rp = r ** p in
        let zx' = (rp *. Float.sin (theta *. p) *. Float.cos (phi *. p)) +. cx in
        let zy' = (rp *. Float.sin (theta *. p) *. Float.sin (phi *. p)) +. cy in
        let zz' = (rp *. Float.cos (theta *. p)) +. cz in
        go zx' zy' zz' (k + 1)
      end
    end
  in
  go 0.0 0.0 0.0 0

let plane_ord = 0

let row_ord = 1

(* A triplex iteration is trigonometry-heavy: ~90 cycles each. *)
let cost_of_iters k = 14 + (90 * k)

let nest () =
  let col_loop =
    Ir.Nest.loop ~name:"mandelbulb_col"
      ~bounds:(fun e _ -> (0, e.nx))
      [
        Ir.Nest.stmt ~name:"voxel" (fun e (ctxs : Ir.Ctx.set) x ->
            let z = ctxs.(plane_ord).Ir.Ctx.lo and y = ctxs.(row_ord).Ir.Ctx.lo in
            let k = escape_iterations e ~x ~y ~z in
            e.out.((((z * e.ny) + y) * e.nx) + x) <- k;
            cost_of_iters k);
      ]
  in
  let row_loop =
    Ir.Nest.loop ~name:"mandelbulb_row" ~bounds:(fun e _ -> (0, e.ny)) [ Ir.Nest.Nested col_loop ]
  in
  Ir.Nest.loop ~name:"mandelbulb_plane"
    ~bounds:(fun e _ -> (0, e.nz))
    [ Ir.Nest.Nested row_loop ]

let program ~scale =
  let side = Workload_util.scaled_dim scale 48 ~dims:3 in
  let nz = 2 * side and ny = side and nx = side in
  let root = nest () in
  Ir.Program.v ~name:"mandelbulb"
    ~make_env:(fun () -> { nz; ny; nx; power = 8; max_iters = 60; out = Array.make (nz * ny * nx) 0 })
    ~nests:[ root ]
    ~driver:(fun _ cpu -> cpu.Ir.Program.exec root)
    ~fingerprint:(fun e -> Workload_util.checksum_int e.out)
    ()
