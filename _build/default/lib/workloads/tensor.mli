(** Third-order sparse tensors in compressed sparse fiber (CSF) format, as
    TACO compiles them with a dense first dimension and sparse second and
    third dimensions. The synthetic generator substitutes the paper's NELL-2
    input with the same kind of skew: Zipf-distributed fibers per slice and
    non-zeros per fiber. *)

type csf = {
  ni : int;  (** dense slices *)
  fiber_ptr : int array;  (** ni+1: fibers of slice i *)
  fiber_j : int array;  (** j coordinate per fiber *)
  nnz_ptr : int array;  (** nfibers+1: non-zeros of fiber f *)
  nnz_k : int array;  (** k coordinate per non-zero *)
  vals : float array;
}

val nfibers : csf -> int

val nnz : csf -> int

val generate : ni:int -> avg_fibers:int -> avg_nnz:int -> nk:int -> seed:int -> csf

val ttv_reference : csf -> v:float array -> out:float array -> unit
(** out.(fiber index) = sum_k B(i,j,k) * v(k); for tests. *)
