(** Sparse-matrix by dense-vector product, the paper's running example
    (Fig. 1): a two-level DOALL nest (row loop over col loop) with a scalar
    reduction in the inner loop.

    Three inputs reproduce the paper's spmv variants: arrowhead (dense first
    row makes the outer-only parallelization collapse), power-law (skewed
    row lengths), and uniform random (the regular control). *)

type env = {
  matrix : Matrix_gen.csr;
  x : float array;
  y : float array;
  mutable invocations : int;
}

val cost_per_nnz : int
(** Simulated cycles per non-zero in the inner loop. *)

val cost_store : int

val make_program : name:string -> make_matrix:(unit -> Matrix_gen.csr) -> env Ir.Program.t
(** Build an spmv program over any matrix source (also the entry point for
    the quickstart example). *)

val arrowhead : scale:float -> env Ir.Program.t

val powerlaw : scale:float -> env Ir.Program.t

val powerlaw_reverse : scale:float -> env Ir.Program.t
(** Fig. 12's ascending-row-length input. *)

val random : scale:float -> env Ir.Program.t

val row_loop_ordinal : int

val col_loop_ordinal : int
