exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

let with_lines path f =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> f ic)

let split_ws line =
  String.split_on_char ' ' (String.map (fun c -> if c = '\t' then ' ' else c) line)
  |> List.filter (fun s -> s <> "")

(* ------------------------- MatrixMarket --------------------------- *)

type mm_field = Real | Integer | Pattern

type mm_symmetry = General | Symmetric

let parse_mm_header line =
  match String.lowercase_ascii line |> split_ws with
  | [ "%%matrixmarket"; "matrix"; "coordinate"; field; symmetry ] ->
      let field =
        match field with
        | "real" -> Real
        | "integer" -> Integer
        | "pattern" -> Pattern
        | other -> fail "unsupported MatrixMarket field %s" other
      in
      let symmetry =
        match symmetry with
        | "general" -> General
        | "symmetric" -> Symmetric
        | other -> fail "unsupported MatrixMarket symmetry %s" other
      in
      (field, symmetry)
  | _ -> fail "not a coordinate MatrixMarket header: %s" line

let read_matrix_market path =
  with_lines path (fun ic ->
      let header =
        match In_channel.input_line ic with
        | Some l -> l
        | None -> fail "%s: empty file" path
      in
      let field, symmetry = parse_mm_header header in
      let rec dims () =
        match In_channel.input_line ic with
        | None -> fail "%s: missing size line" path
        | Some l when String.length l > 0 && l.[0] = '%' -> dims ()
        | Some l -> (
            match split_ws l with
            | [ r; c; n ] -> (int_of_string r, int_of_string c, int_of_string n)
            | _ -> fail "%s: bad size line: %s" path l)
      in
      let rows, cols, nnz = dims () in
      if rows <> cols then fail "%s: only square matrices are supported (%dx%d)" path rows cols;
      let entries = ref [] in
      let count = ref 0 in
      (try
         while !count < nnz do
           match In_channel.input_line ic with
           | None -> fail "%s: expected %d entries, found %d" path nnz !count
           | Some l when String.length l = 0 || l.[0] = '%' -> ()
           | Some l ->
               (match (split_ws l, field) with
               | [ i; j ], Pattern ->
                   entries := (int_of_string i - 1, int_of_string j - 1, 1.0) :: !entries
               | [ i; j; v ], (Real | Integer) ->
                   entries := (int_of_string i - 1, int_of_string j - 1, float_of_string v) :: !entries
               | _ -> fail "%s: bad entry line: %s" path l);
               incr count
         done
       with Failure _ -> fail "%s: malformed number" path);
      let entries =
        match symmetry with
        | General -> !entries
        | Symmetric ->
            List.concat_map (fun (i, j, v) -> if i = j then [ (i, j, v) ] else [ (i, j, v); (j, i, v) ]) !entries
      in
      let n = rows in
      let sizes = Array.make n 0 in
      List.iter
        (fun (i, j, _) ->
          if i < 0 || i >= n || j < 0 || j >= n then fail "%s: index out of range (%d, %d)" path i j;
          sizes.(i) <- sizes.(i) + 1)
        entries;
      let row_ptr = Array.make (n + 1) 0 in
      for i = 0 to n - 1 do
        row_ptr.(i + 1) <- row_ptr.(i) + sizes.(i)
      done;
      let total = row_ptr.(n) in
      let col_ind = Array.make total 0 and vals = Array.make total 0.0 in
      let cursor = Array.copy row_ptr in
      List.iter
        (fun (i, j, v) ->
          col_ind.(cursor.(i)) <- j;
          vals.(cursor.(i)) <- v;
          cursor.(i) <- cursor.(i) + 1)
        (List.rev entries);
      { Matrix_gen.n; row_ptr; col_ind; vals })

let write_matrix_market path (m : Matrix_gen.csr) =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
      output_string oc "%%MatrixMarket matrix coordinate real general\n";
      Printf.fprintf oc "%% written by hbc\n";
      Printf.fprintf oc "%d %d %d\n" m.Matrix_gen.n m.Matrix_gen.n (Matrix_gen.nnz m);
      for i = 0 to m.Matrix_gen.n - 1 do
        for k = m.Matrix_gen.row_ptr.(i) to m.Matrix_gen.row_ptr.(i + 1) - 1 do
          Printf.fprintf oc "%d %d %.17g\n" (i + 1) (m.Matrix_gen.col_ind.(k) + 1) m.Matrix_gen.vals.(k)
        done
      done)

(* --------------------------- edge lists --------------------------- *)

let read_edge_list ?(default_weight = 1.0) path =
  with_lines path (fun ic ->
      let edges = ref [] in
      let max_id = ref (-1) in
      let rec go () =
        match In_channel.input_line ic with
        | None -> ()
        | Some l ->
            (if String.length l > 0 && l.[0] <> '#' then
               match split_ws l with
               | [] -> ()
               | [ s; d ] ->
                   let s = int_of_string s and d = int_of_string d in
                   max_id := Stdlib.max !max_id (Stdlib.max s d);
                   edges := (s, d, default_weight) :: !edges
               | [ s; d; w ] ->
                   let s = int_of_string s and d = int_of_string d in
                   max_id := Stdlib.max !max_id (Stdlib.max s d);
                   edges := (s, d, float_of_string w) :: !edges
               | _ -> fail "%s: bad edge line: %s" path l);
            go ()
      in
      (try go () with Failure _ -> fail "%s: malformed number" path);
      let n = !max_id + 1 in
      if n <= 0 then fail "%s: no edges" path;
      let in_deg = Array.make n 0 in
      List.iter (fun (_, d, _) -> in_deg.(d) <- in_deg.(d) + 1) !edges;
      let in_ptr = Array.make (n + 1) 0 in
      for v = 0 to n - 1 do
        in_ptr.(v + 1) <- in_ptr.(v) + in_deg.(v)
      done;
      let m = in_ptr.(n) in
      let in_src = Array.make m 0 and weights = Array.make m 0.0 in
      let cursor = Array.copy in_ptr in
      List.iter
        (fun (s, d, w) ->
          in_src.(cursor.(d)) <- s;
          weights.(cursor.(d)) <- w;
          cursor.(d) <- cursor.(d) + 1)
        (List.rev !edges);
      let out_deg = Array.make n 0 in
      Array.iter (fun s -> out_deg.(s) <- out_deg.(s) + 1) in_src;
      for v = 0 to n - 1 do
        if out_deg.(v) = 0 then out_deg.(v) <- 1
      done;
      { Graph.n; in_ptr; in_src; weights; out_deg })

let write_edge_list path (g : Graph.t) =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
      Printf.fprintf oc "# %d vertices, %d edges (src dst weight)\n" g.Graph.n (Graph.edges g);
      for dst = 0 to g.Graph.n - 1 do
        for k = g.Graph.in_ptr.(dst) to g.Graph.in_ptr.(dst + 1) - 1 do
          Printf.fprintf oc "%d %d %.17g\n" g.Graph.in_src.(k) dst g.Graph.weights.(k)
        done
      done)
