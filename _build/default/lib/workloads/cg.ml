type env = {
  matrix : Matrix_gen.csr;
  p : float array;
  q : float array;
  r : float array;
  z : float array;
  mutable alpha : float;
  mutable beta : float;
  mutable rho : float;
  mutable dot_result : float;
  iterations : int;
}

let row_ord = 0

let col_ord = 1

let spmv_nest () =
  let col =
    Ir.Nest.loop ~name:"cg_spmv_col" ~bytes_per_iter:20
      ~locals_spec:{ Ir.Locals.nfloats = 1; nints = 0 }
      ~init:(fun _ (l : Ir.Locals.t) -> l.Ir.Locals.floats.(0) <- 0.0)
      ~reduction:(fun dst src ->
        dst.Ir.Locals.floats.(0) <- dst.Ir.Locals.floats.(0) +. src.Ir.Locals.floats.(0))
      ~bounds:(fun e (ctxs : Ir.Ctx.set) ->
        let i = ctxs.(row_ord).Ir.Ctx.lo in
        (e.matrix.Matrix_gen.row_ptr.(i), e.matrix.Matrix_gen.row_ptr.(i + 1)))
      [
        Ir.Nest.stmt ~name:"mac" (fun e ctxs k ->
            let l = ctxs.(col_ord).Ir.Ctx.locals in
            l.Ir.Locals.floats.(0) <-
              l.Ir.Locals.floats.(0)
              +. (e.matrix.Matrix_gen.vals.(k) *. e.p.(e.matrix.Matrix_gen.col_ind.(k)));
            11);
      ]
  in
  Ir.Nest.loop ~name:"cg_spmv_row" ~bytes_per_iter:64
    ~bounds:(fun e _ -> (0, e.matrix.Matrix_gen.n))
    [
      Ir.Nest.Nested col;
      Ir.Nest.stmt ~name:"store_q" (fun e ctxs i ->
          e.q.(i) <- ctxs.(col_ord).Ir.Ctx.locals.Ir.Locals.floats.(0);
          8);
    ]

let dot_nest ~name get_a get_b =
  Ir.Nest.loop ~name ~bytes_per_iter:16
    ~locals_spec:{ Ir.Locals.nfloats = 1; nints = 0 }
    ~init:(fun _ (l : Ir.Locals.t) -> l.Ir.Locals.floats.(0) <- 0.0)
    ~reduction:(fun dst src ->
      dst.Ir.Locals.floats.(0) <- dst.Ir.Locals.floats.(0) +. src.Ir.Locals.floats.(0))
    ~commit:(fun e (ctxs : Ir.Ctx.set) -> e.dot_result <- ctxs.(0).Ir.Ctx.locals.Ir.Locals.floats.(0))
    ~bounds:(fun e _ -> (0, e.matrix.Matrix_gen.n))
    [
      Ir.Nest.stmt ~name:"dot" (fun e (ctxs : Ir.Ctx.set) i ->
          let l = ctxs.(0).Ir.Ctx.locals in
          l.Ir.Locals.floats.(0) <- l.Ir.Locals.floats.(0) +. (get_a e i *. get_b e i);
          7);
    ]

let axpy_nest ~name f =
  Ir.Nest.loop ~name ~bytes_per_iter:24
    ~bounds:(fun e _ -> (0, e.matrix.Matrix_gen.n))
    [ Ir.Nest.stmt ~name:"axpy" (fun e _ i -> f e i; 7) ]

let program ~scale =
  let n = Workload_util.scaled scale 60_000 in
  let spmv = spmv_nest () in
  let dot_pq = dot_nest ~name:"cg_dot_pq" (fun e i -> e.p.(i)) (fun e i -> e.q.(i)) in
  let dot_rr = dot_nest ~name:"cg_dot_rr" (fun e i -> e.r.(i)) (fun e i -> e.r.(i)) in
  let axpy_z =
    axpy_nest ~name:"cg_axpy_z" (fun e i -> e.z.(i) <- e.z.(i) +. (e.alpha *. e.p.(i)))
  in
  let axpy_r =
    axpy_nest ~name:"cg_axpy_r" (fun e i -> e.r.(i) <- e.r.(i) -. (e.alpha *. e.q.(i)))
  in
  let axpy_p =
    axpy_nest ~name:"cg_axpy_p" (fun e i -> e.p.(i) <- e.r.(i) +. (e.beta *. e.p.(i)))
  in
  Ir.Program.v ~name:"cg"
    ~make_env:(fun () ->
      (* cage15-like: moderately skewed row lengths. *)
      let matrix =
        Matrix_gen.symmetric_spd (Matrix_gen.powerlaw ~reverse:false ~n ~avg_nnz:10 ~seed:77)
      in
      let rng = Sim.Sim_rng.create 78 in
      let r = Array.init n (fun _ -> Sim.Sim_rng.float rng 1.0) in
      {
        matrix;
        p = Array.copy r;
        q = Array.make n 0.0;
        r;
        z = Array.make n 0.0;
        alpha = 0.0;
        beta = 0.0;
        rho = 0.0;
        dot_result = 0.0;
        iterations = 4;
      })
    ~nests:[ spmv; dot_pq; dot_rr; axpy_z; axpy_r; axpy_p ]
    ~driver:(fun e cpu ->
      cpu.Ir.Program.exec dot_rr;
      e.rho <- e.dot_result;
      for _ = 1 to e.iterations do
        cpu.Ir.Program.exec spmv;
        cpu.Ir.Program.exec dot_pq;
        e.alpha <- e.rho /. Stdlib.max 1e-30 e.dot_result;
        cpu.Ir.Program.exec axpy_z;
        cpu.Ir.Program.exec axpy_r;
        cpu.Ir.Program.exec dot_rr;
        e.beta <- e.dot_result /. Stdlib.max 1e-30 e.rho;
        e.rho <- e.dot_result;
        cpu.Ir.Program.exec axpy_p;
        cpu.Ir.Program.advance 60
      done)
    ~fingerprint:(fun e -> Workload_util.checksum e.z +. e.rho)
    ()
