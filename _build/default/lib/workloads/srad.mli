(** SRAD: speckle-reducing anisotropic diffusion (Rodinia), a regular
    stencil benchmark. Each iteration computes per-pixel diffusion
    coefficients from the four-neighbour gradients (first nest), then
    applies the divergence update (second nest); the global statistics q0
    come from serial driver work as in the original code. *)

type env = {
  rows : int;
  cols : int;
  img : float array;
  coeff : float array;
  dn : float array;
  ds : float array;
  de : float array;
  dw : float array;
  mutable q0sqr : float;
  iterations : int;
  lambda : float;
}

val program : scale:float -> env Ir.Program.t
