(** TACO's tensor-times-vector kernel A(i,j) = sum_k B(i,j,k) v(k) on a CSF
    tensor: a three-level DOALL nest (slices, fibers, non-zeros) with a
    scalar reduction in the leaf. *)

type env = { tensor : Tensor.csf; v : float array; out : float array }

val program : scale:float -> env Ir.Program.t
