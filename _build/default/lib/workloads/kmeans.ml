type env = {
  n : int;
  k : int;
  d : int;
  points : float array;
  centers : float array;
  assignment : int array;
  sums : float array;
  counts : int array;
  iterations : int;
}

let update_nest_name = "kmeans_update"

let assign_cost e = (e.k * e.d * 3) + 12

let update_cost = 5

let assign_nest () =
  Ir.Nest.loop ~name:"kmeans_assign" ~bytes_per_iter:36
    ~bounds:(fun e _ -> (0, e.n))
    [
      Ir.Nest.stmt ~name:"nearest" (fun e _ p ->
          let best = ref 0 and best_d = ref Float.infinity in
          for c = 0 to e.k - 1 do
            let acc = ref 0.0 in
            for j = 0 to e.d - 1 do
              let diff = e.points.((p * e.d) + j) -. e.centers.((c * e.d) + j) in
              acc := !acc +. (diff *. diff)
            done;
            if !acc < !best_d then begin
              best_d := !acc;
              best := c
            end
          done;
          e.assignment.(p) <- !best;
          assign_cost e);
    ]

(* Per-task partial sums and counts live in the loop's locals; the reduction
   merges sibling slices, the commit publishes into the environment. *)
let update_nest ~k ~d =
  let nf = k * d and ni = k in
  Ir.Nest.loop ~name:update_nest_name ~bytes_per_iter:36
    ~locals_spec:{ Ir.Locals.nfloats = nf; nints = ni }
    ~init:(fun _ (l : Ir.Locals.t) ->
      Array.fill l.Ir.Locals.floats 0 nf 0.0;
      Array.fill l.Ir.Locals.ints 0 ni 0)
    ~reduction:(fun dst src ->
      for i = 0 to nf - 1 do
        dst.Ir.Locals.floats.(i) <- dst.Ir.Locals.floats.(i) +. src.Ir.Locals.floats.(i)
      done;
      for i = 0 to ni - 1 do
        dst.Ir.Locals.ints.(i) <- dst.Ir.Locals.ints.(i) + src.Ir.Locals.ints.(i)
      done)
    ~commit:(fun e (ctxs : Ir.Ctx.set) ->
      let l = ctxs.(0).Ir.Ctx.locals in
      Array.blit l.Ir.Locals.floats 0 e.sums 0 nf;
      Array.blit l.Ir.Locals.ints 0 e.counts 0 ni)
    ~bounds:(fun e _ -> (0, e.n))
    [
      Ir.Nest.stmt ~name:"accumulate" (fun e (ctxs : Ir.Ctx.set) p ->
          let l = ctxs.(0).Ir.Ctx.locals in
          let c = e.assignment.(p) in
          for j = 0 to e.d - 1 do
            l.Ir.Locals.floats.((c * e.d) + j) <-
              l.Ir.Locals.floats.((c * e.d) + j) +. e.points.((p * e.d) + j)
          done;
          l.Ir.Locals.ints.(c) <- l.Ir.Locals.ints.(c) + 1;
          update_cost);
    ]

let program ~scale =
  let n = Workload_util.scaled scale 120_000 in
  let k = 8 and d = 4 in
  let assign = assign_nest () in
  let update = update_nest ~k ~d in
  Ir.Program.v ~name:"kmeans" ~regularity:`Regular
    ~omp_serial_nests:[ update_nest_name ]
    ~make_env:(fun () ->
      let rng = Sim.Sim_rng.create 31 in
      let points = Array.init (n * d) (fun _ -> Sim.Sim_rng.float rng 10.0) in
      let centers = Array.init (k * d) (fun _ -> Sim.Sim_rng.float rng 10.0) in
      {
        n;
        k;
        d;
        points;
        centers;
        assignment = Array.make n 0;
        sums = Array.make (k * d) 0.0;
        counts = Array.make k 0;
        iterations = 3;
      })
    ~nests:[ assign; update ]
    ~driver:(fun e cpu ->
      for _ = 1 to e.iterations do
        cpu.Ir.Program.exec assign;
        cpu.Ir.Program.exec update;
        (* Recompute the centers from the reduced sums: serial driver work. *)
        for c = 0 to e.k - 1 do
          if e.counts.(c) > 0 then
            for j = 0 to e.d - 1 do
              e.centers.((c * e.d) + j) <-
                e.sums.((c * e.d) + j) /. Float.of_int e.counts.(c)
            done
        done;
        cpu.Ir.Program.advance (e.k * e.d * 4)
      done)
    ~fingerprint:(fun e -> Workload_util.checksum e.centers +. Workload_util.checksum_int e.assignment)
    ()
