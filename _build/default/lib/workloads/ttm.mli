(** TACO's tensor-times-matrix kernel A(i,j,c) = sum_k B(i,j,k) C(k,c) on a
    CSF tensor with a dense factor matrix: like TTV but with a vector-valued
    reduction (one accumulator per factor column) in the leaf. *)

type env = {
  tensor : Tensor.csf;
  factor : float array;  (** nk * f, row-major *)
  f : int;  (** factor columns *)
  out : float array;  (** nfibers * f *)
}

val program : scale:float -> env Ir.Program.t
