type csr = { n : int; row_ptr : int array; col_ind : int array; vals : float array }

let nnz m = m.row_ptr.(m.n)

let nnz_of_row m i = m.row_ptr.(i + 1) - m.row_ptr.(i)

let of_row_sizes ~n ~sizes ~fill =
  let row_ptr = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    row_ptr.(i + 1) <- row_ptr.(i) + sizes.(i)
  done;
  let total = row_ptr.(n) in
  let col_ind = Array.make total 0 in
  let vals = Array.make total 0.0 in
  for i = 0 to n - 1 do
    fill i row_ptr.(i) sizes.(i) col_ind vals
  done;
  { n; row_ptr; col_ind; vals }

let arrowhead ~n =
  let sizes = Array.init n (fun i -> if i = 0 then n else 2) in
  let rng = Sim.Sim_rng.create 97 in
  of_row_sizes ~n ~sizes ~fill:(fun i base len col_ind vals ->
      if i = 0 then
        for k = 0 to len - 1 do
          col_ind.(base + k) <- k;
          vals.(base + k) <- 0.5 +. Sim.Sim_rng.float rng 1.0
        done
      else begin
        col_ind.(base) <- 0;
        vals.(base) <- 0.5 +. Sim.Sim_rng.float rng 1.0;
        col_ind.(base + 1) <- i;
        vals.(base + 1) <- 0.5 +. Sim.Sim_rng.float rng 1.0
      end)

let powerlaw ~reverse ~n ~avg_nnz ~seed =
  let rng = Sim.Sim_rng.create seed in
  let raw = Array.init n (fun _ -> Sim.Sim_rng.zipf rng ~alpha:1.35 ~n:(Stdlib.min n 50_000)) in
  let total_raw = Array.fold_left ( + ) 0 raw in
  let target = n * avg_nnz in
  let factor = Float.of_int target /. Float.of_int (Stdlib.max 1 total_raw) in
  let sizes =
    Array.map
      (fun s -> Stdlib.max 1 (Stdlib.min n (int_of_float (Float.round (Float.of_int s *. factor)))))
      raw
  in
  Array.sort (fun a b -> if reverse then Stdlib.compare a b else Stdlib.compare b a) sizes;
  of_row_sizes ~n ~sizes ~fill:(fun _ base len col_ind vals ->
      for k = 0 to len - 1 do
        col_ind.(base + k) <- Sim.Sim_rng.int rng n;
        vals.(base + k) <- 0.5 +. Sim.Sim_rng.float rng 1.0
      done)

let random_uniform ~n ~nnz_per_row ~seed =
  let rng = Sim.Sim_rng.create seed in
  let sizes = Array.make n nnz_per_row in
  of_row_sizes ~n ~sizes ~fill:(fun _ base len col_ind vals ->
      for k = 0 to len - 1 do
        col_ind.(base + k) <- Sim.Sim_rng.int rng n;
        vals.(base + k) <- 0.5 +. Sim.Sim_rng.float rng 1.0
      done)

(* Append a dominant diagonal entry to every row: makes iterative solvers
   on the synthetic matrix numerically stable (contraction-like recurrences
   instead of divergence that amplifies float reassociation noise). *)
let with_dominant_diagonal m =
  let n = m.n in
  let sizes = Array.init n (fun i -> m.row_ptr.(i + 1) - m.row_ptr.(i) + 1) in
  let row_ptr = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    row_ptr.(i + 1) <- row_ptr.(i) + sizes.(i)
  done;
  let total = row_ptr.(n) in
  let col_ind = Array.make total 0 in
  let vals = Array.make total 0.0 in
  for i = 0 to n - 1 do
    let src = m.row_ptr.(i) and dst = row_ptr.(i) and len = sizes.(i) - 1 in
    let row_sum = ref 0.0 in
    for k = 0 to len - 1 do
      col_ind.(dst + k) <- m.col_ind.(src + k);
      vals.(dst + k) <- m.vals.(src + k);
      row_sum := !row_sum +. Float.abs m.vals.(src + k)
    done;
    col_ind.(dst + len) <- i;
    vals.(dst + len) <- (2.0 *. !row_sum) +. 1.0
  done;
  { n; row_ptr; col_ind; vals }

(* Symmetrize (A := M + M^T) and add a dominant diagonal: the result is
   symmetric positive definite, the class NAS cg's conjugate gradient is
   defined for. *)
let symmetric_spd m =
  let n = m.n in
  let counts = Array.make n 1 (* diagonal slot *) in
  for i = 0 to n - 1 do
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      let j = m.col_ind.(k) in
      if j <> i then begin
        counts.(i) <- counts.(i) + 1;
        counts.(j) <- counts.(j) + 1
      end
    done
  done;
  let row_ptr = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    row_ptr.(i + 1) <- row_ptr.(i) + counts.(i)
  done;
  let total = row_ptr.(n) in
  let col_ind = Array.make total 0 in
  let vals = Array.make total 0.0 in
  let cursor = Array.copy row_ptr in
  let push r c v =
    col_ind.(cursor.(r)) <- c;
    vals.(cursor.(r)) <- v;
    cursor.(r) <- cursor.(r) + 1
  in
  for i = 0 to n - 1 do
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      let j = m.col_ind.(k) and v = m.vals.(k) in
      if j <> i then begin
        push i j v;
        push j i v
      end
    done
  done;
  (* dominant diagonal in the reserved slots *)
  for i = 0 to n - 1 do
    let sum = ref 0.0 in
    for k = row_ptr.(i) to cursor.(i) - 1 do
      sum := !sum +. Float.abs vals.(k)
    done;
    push i i ((2.0 *. !sum) +. 1.0)
  done;
  { n; row_ptr; col_ind; vals }

let spmv_reference m ~x ~y =
  for i = 0 to m.n - 1 do
    let acc = ref 0.0 in
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      acc := !acc +. (m.vals.(k) *. x.(m.col_ind.(k)))
    done;
    y.(i) <- !acc
  done
