type csf = {
  ni : int;
  fiber_ptr : int array;
  fiber_j : int array;
  nnz_ptr : int array;
  nnz_k : int array;
  vals : float array;
}

let nfibers t = t.fiber_ptr.(t.ni)

let nnz t = t.nnz_ptr.(nfibers t)

let generate ~ni ~avg_fibers ~avg_nnz ~nk ~seed =
  let rng = Sim.Sim_rng.create seed in
  let scale_sizes raw target =
    let total = Array.fold_left ( + ) 0 raw in
    let f = Float.of_int target /. Float.of_int (Stdlib.max 1 total) in
    Array.map (fun s -> Stdlib.max 1 (int_of_float (Float.round (Float.of_int s *. f)))) raw
  in
  let fibers_per_slice =
    scale_sizes
      (Array.init ni (fun _ -> Sim.Sim_rng.zipf rng ~alpha:1.4 ~n:1000))
      (ni * avg_fibers)
  in
  let fiber_ptr = Array.make (ni + 1) 0 in
  for i = 0 to ni - 1 do
    fiber_ptr.(i + 1) <- fiber_ptr.(i) + fibers_per_slice.(i)
  done;
  let nf = fiber_ptr.(ni) in
  let fiber_j = Array.init nf (fun _ -> Sim.Sim_rng.int rng 4096) in
  let nnz_per_fiber =
    scale_sizes (Array.init nf (fun _ -> Sim.Sim_rng.zipf rng ~alpha:1.5 ~n:500)) (nf * avg_nnz)
  in
  let nnz_ptr = Array.make (nf + 1) 0 in
  for f = 0 to nf - 1 do
    nnz_ptr.(f + 1) <- nnz_ptr.(f) + nnz_per_fiber.(f)
  done;
  let total = nnz_ptr.(nf) in
  let nnz_k = Array.init total (fun _ -> Sim.Sim_rng.int rng nk) in
  let vals = Array.init total (fun _ -> 0.5 +. Sim.Sim_rng.float rng 1.0) in
  { ni; fiber_ptr; fiber_j; nnz_ptr; nnz_k; vals }

let ttv_reference t ~v ~out =
  for i = 0 to t.ni - 1 do
    for f = t.fiber_ptr.(i) to t.fiber_ptr.(i + 1) - 1 do
      let acc = ref 0.0 in
      for e = t.nnz_ptr.(f) to t.nnz_ptr.(f + 1) - 1 do
        acc := !acc +. (t.vals.(e) *. v.(t.nnz_k.(e)))
      done;
      out.(f) <- !acc
    done
  done
