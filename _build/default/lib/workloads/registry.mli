(** Benchmark registry: Table 1 of the paper, with per-benchmark metadata
    the experiments need (which figure sets a benchmark belongs to, TPAL's
    hand-tuned static chunk size). *)

type entry = {
  name : string;
  source : string;  (** TPAL / NAS / TACO / GraphIt / 3D-mandelbrot *)
  regular : bool;
  tpal_suite : bool;  (** the 8 iterative TPAL benchmarks (Figs. 6-9) *)
  manual_irregular : bool;
      (** the 5 hand-written irregular benchmarks of Figs. 14 and 15 *)
  tpal_chunk : int;  (** TPAL's per-benchmark static chunk size *)
  make : float -> Ir.Program.any;  (** scale -> program *)
}

val all : entry list
(** In the paper's Table 1 order. *)

val find : string -> entry
(** @raise Not_found for unknown names. *)

val names : unit -> string list

val irregular_set : unit -> entry list
(** The 13 irregular benchmarks of Fig. 4. *)

val regular_set : unit -> entry list
(** The 5 regular benchmarks of Fig. 16. *)

val tpal_set : unit -> entry list

val manual_irregular_set : unit -> entry list
