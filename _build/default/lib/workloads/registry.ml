type entry = {
  name : string;
  source : string;
  regular : bool;
  tpal_suite : bool;
  manual_irregular : bool;
  tpal_chunk : int;
  make : float -> Ir.Program.any;
}

let entry ?(regular = false) ?(tpal_suite = false) ?(manual_irregular = false) ?(tpal_chunk = 64)
    ~name ~source make =
  { name; source; regular; tpal_suite; manual_irregular; tpal_chunk; make }

let all =
  [
    entry ~name:"mandelbrot" ~source:"TPAL" ~tpal_suite:true ~manual_irregular:true
      ~tpal_chunk:4 (fun scale -> Ir.Program.Any (Mandelbrot.program ~scale));
    entry ~name:"spmv-arrowhead" ~source:"TPAL" ~tpal_suite:true ~manual_irregular:true
      ~tpal_chunk:128 (fun scale -> Ir.Program.Any (Spmv.arrowhead ~scale));
    entry ~name:"spmv-powerlaw" ~source:"TPAL" ~tpal_suite:true ~manual_irregular:true
      ~tpal_chunk:128 (fun scale -> Ir.Program.Any (Spmv.powerlaw ~scale));
    entry ~name:"spmv-random" ~source:"TPAL" ~regular:true ~tpal_suite:true ~tpal_chunk:128
      (fun scale -> Ir.Program.Any (Spmv.random ~scale));
    entry ~name:"floyd-warshall" ~source:"TPAL" ~regular:true ~tpal_suite:true ~tpal_chunk:256
      (fun scale -> Ir.Program.Any (Floyd_warshall.program ~scale));
    entry ~name:"kmeans" ~source:"TPAL" ~regular:true ~tpal_suite:true ~tpal_chunk:256
      (fun scale -> Ir.Program.Any (Kmeans.program ~scale));
    entry ~name:"plus-reduce-array" ~source:"TPAL" ~regular:true ~tpal_suite:true
      ~tpal_chunk:1024 (fun scale -> Ir.Program.Any (Plus_reduce_array.program ~scale));
    entry ~name:"srad" ~source:"TPAL" ~regular:true ~tpal_suite:true ~tpal_chunk:128
      (fun scale -> Ir.Program.Any (Srad.program ~scale));
    entry ~name:"mandelbulb" ~source:"3D-mandelbrot" ~manual_irregular:true ~tpal_chunk:4
      (fun scale -> Ir.Program.Any (Mandelbulb.program ~scale));
    entry ~name:"cg" ~source:"NAS" ~manual_irregular:true ~tpal_chunk:128 (fun scale ->
        Ir.Program.Any (Cg.program ~scale));
    entry ~name:"ttv" ~source:"TACO" ~tpal_chunk:64 (fun scale ->
        Ir.Program.Any (Ttv.program ~scale));
    entry ~name:"ttm" ~source:"TACO" ~tpal_chunk:32 (fun scale ->
        Ir.Program.Any (Ttm.program ~scale));
    entry ~name:"bfs" ~source:"GraphIt" ~tpal_chunk:64 (fun scale ->
        Ir.Program.Any (Graph_kernels.bfs ~scale));
    entry ~name:"cc" ~source:"GraphIt" ~tpal_chunk:64 (fun scale ->
        Ir.Program.Any (Graph_kernels.cc ~scale));
    entry ~name:"pr" ~source:"GraphIt" ~tpal_chunk:64 (fun scale ->
        Ir.Program.Any (Graph_kernels.pr ~scale));
    entry ~name:"cf" ~source:"GraphIt" ~tpal_chunk:16 (fun scale ->
        Ir.Program.Any (Graph_kernels.cf ~scale));
    entry ~name:"pr-delta" ~source:"GraphIt" ~tpal_chunk:64 (fun scale ->
        Ir.Program.Any (Graph_kernels.pr_delta ~scale));
    entry ~name:"sssp" ~source:"GraphIt" ~tpal_chunk:64 (fun scale ->
        Ir.Program.Any (Graph_kernels.sssp ~scale));
  ]

let find name =
  match List.find_opt (fun e -> e.name = name) all with
  | Some e -> e
  | None -> raise Not_found

let names () = List.map (fun e -> e.name) all

let irregular_set () = List.filter (fun e -> not e.regular) all

let regular_set () = List.filter (fun e -> e.regular) all

let tpal_set () = List.filter (fun e -> e.tpal_suite) all

let manual_irregular_set () = List.filter (fun e -> e.manual_irregular) all
