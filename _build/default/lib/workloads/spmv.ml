type env = {
  matrix : Matrix_gen.csr;
  x : float array;
  y : float array;
  mutable invocations : int;
}

let cost_per_nnz = 11

let cost_store = 8

let row_loop_ordinal = 0

let col_loop_ordinal = 1

let nest () =
  let col_loop =
    Ir.Nest.loop ~name:"spmv_col" ~bytes_per_iter:20
      ~locals_spec:{ Ir.Locals.nfloats = 1; nints = 0 }
      ~init:(fun _ (l : Ir.Locals.t) -> l.Ir.Locals.floats.(0) <- 0.0)
      ~reduction:(fun dst src ->
        dst.Ir.Locals.floats.(0) <- dst.Ir.Locals.floats.(0) +. src.Ir.Locals.floats.(0))
      ~bounds:(fun e (ctxs : Ir.Ctx.set) ->
        let i = ctxs.(row_loop_ordinal).Ir.Ctx.lo in
        (e.matrix.Matrix_gen.row_ptr.(i), e.matrix.Matrix_gen.row_ptr.(i + 1)))
      [
        Ir.Nest.stmt ~name:"mac" (fun e ctxs j ->
            let l = ctxs.(col_loop_ordinal).Ir.Ctx.locals in
            l.Ir.Locals.floats.(0) <-
              l.Ir.Locals.floats.(0)
              +. (e.matrix.Matrix_gen.vals.(j) *. e.x.(e.matrix.Matrix_gen.col_ind.(j)));
            cost_per_nnz);
      ]
  in
  Ir.Nest.loop ~name:"spmv_row" ~bytes_per_iter:64
    ~bounds:(fun e _ -> (0, e.matrix.Matrix_gen.n))
    [
      Ir.Nest.Nested col_loop;
      Ir.Nest.stmt ~name:"store" (fun e ctxs i ->
          e.y.(i) <- ctxs.(col_loop_ordinal).Ir.Ctx.locals.Ir.Locals.floats.(0);
          cost_store);
    ]

let make_program ~name ~make_matrix =
  let root = nest () in
  Ir.Program.v ~name
    ~make_env:(fun () ->
      let matrix = make_matrix () in
      let rng = Sim.Sim_rng.create 11 in
      let x = Array.init matrix.Matrix_gen.n (fun _ -> Sim.Sim_rng.float rng 2.0) in
      { matrix; x; y = Array.make matrix.Matrix_gen.n 0.0; invocations = 0 })
    ~nests:[ root ]
    ~driver:(fun e cpu ->
      e.invocations <- e.invocations + 1;
      cpu.Ir.Program.exec root)
    ~fingerprint:(fun e -> Workload_util.checksum e.y)
    ()

let arrowhead ~scale =
  let n = Workload_util.scaled scale 300_000 in
  make_program ~name:"spmv-arrowhead" ~make_matrix:(fun () -> Matrix_gen.arrowhead ~n)

let powerlaw ~scale =
  let n = Workload_util.scaled scale 120_000 in
  make_program ~name:"spmv-powerlaw" ~make_matrix:(fun () ->
      Matrix_gen.powerlaw ~reverse:false ~n ~avg_nnz:20 ~seed:5)

let powerlaw_reverse ~scale =
  let n = Workload_util.scaled scale 120_000 in
  make_program ~name:"spmv-powerlaw-reverse" ~make_matrix:(fun () ->
      Matrix_gen.powerlaw ~reverse:true ~n ~avg_nnz:20 ~seed:5)

let random ~scale =
  let n = Workload_util.scaled scale 50_000 in
  make_program ~name:"spmv-random" ~make_matrix:(fun () ->
      Matrix_gen.random_uniform ~n ~nnz_per_row:48 ~seed:6)
