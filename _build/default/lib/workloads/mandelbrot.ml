type view = {
  x0 : float;
  y0 : float;
  x1 : float;
  y1 : float;
  max_iters : int;
  width : int;
  height : int;
}

type env = { mutable view : view; out : int array; mutable runs : int }

let input1 ~scale =
  let w = Workload_util.scaled_dim scale 256 ~dims:2 in
  {
    x0 = -0.7463;
    y0 = 0.1102;
    x1 = -0.7453;
    y1 = 0.1112;
    max_iters = 1500;
    width = w;
    height = w;
  }

let input2 ~scale =
  (* Entirely outside the set: every pixel escapes within a couple of
     iterations, so per-pixel latency is tens of cycles and only large
     chunks amortize the poll. *)
  let w = Workload_util.scaled_dim scale 256 ~dims:2 in
  { x0 = -3.5; y0 = -3.0; x1 = -2.5; y1 = -2.0; max_iters = 24; width = w; height = w }

let classic ~scale =
  (* The paper's input uses a 40k iteration cap: single interior pixels are
     huge, so whole rows dwarf a fair per-core share and row-granular
     scheduling cannot balance them. Scaled-down equivalent. *)
  let w = Workload_util.scaled_dim scale 256 ~dims:2 in
  { x0 = -1.5; y0 = -0.95; x1 = 0.4; y1 = 0.95; max_iters = 2_000; width = w; height = w }

let escape_iterations v ~px ~py =
  let cx = v.x0 +. ((v.x1 -. v.x0) *. Float.of_int px /. Float.of_int v.width) in
  let cy = v.y0 +. ((v.y1 -. v.y0) *. Float.of_int py /. Float.of_int v.height) in
  let rec go zx zy k =
    if k >= v.max_iters then k
    else begin
      let zx2 = zx *. zx and zy2 = zy *. zy in
      if zx2 +. zy2 > 4.0 then k
      else go (zx2 -. zy2 +. cx) ((2.0 *. zx *. zy) +. cy) (k + 1)
    end
  in
  go 0.0 0.0 0

let row_ord = 0

let cost_of_iters k = 10 + (14 * k)

let nest () =
  let col_loop =
    Ir.Nest.loop ~name:"mandelbrot_col"
      ~bounds:(fun e _ -> (0, e.view.width))
      [
        Ir.Nest.stmt ~name:"pixel" (fun e (ctxs : Ir.Ctx.set) px ->
            let py = ctxs.(row_ord).Ir.Ctx.lo in
            let k = escape_iterations e.view ~px ~py in
            e.out.((py * e.view.width) + px) <- k;
            cost_of_iters k);
      ]
  in
  Ir.Nest.loop ~name:"mandelbrot_row"
    ~bounds:(fun e _ -> (0, e.view.height))
    [ Ir.Nest.Nested col_loop ]

let fingerprint e =
  let acc = ref 0.0 in
  let n = e.view.width * e.view.height in
  for i = 0 to n - 1 do
    let w = 1.0 +. (Float.of_int ((i * 2654435761) land 1023) /. 1024.0) in
    acc := !acc +. (Float.of_int e.out.(i) *. w)
  done;
  !acc +. (Float.of_int e.runs *. 0.5)

let program_of_views ~name views =
  let root = nest () in
  let max_pixels =
    List.fold_left (fun acc v -> Stdlib.max acc (v.width * v.height)) 0 views
  in
  let first = List.hd views in
  Ir.Program.v ~name
    ~make_env:(fun () -> { view = first; out = Array.make max_pixels 0; runs = 0 })
    ~nests:[ root ]
    ~driver:(fun e cpu ->
      List.iter
        (fun v ->
          e.view <- v;
          cpu.Ir.Program.exec root;
          e.runs <- e.runs + 1;
          cpu.Ir.Program.advance 2_000)
        views)
    ~fingerprint ()

let program_of_view ~name view = program_of_views ~name [ view ]

let program ~scale = program_of_view ~name:"mandelbrot" (classic ~scale)

let repeated ~scale:_ ~views = program_of_views ~name:"mandelbrot-repeated" views
