let checksum a =
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let w = 1.0 +. (Float.of_int ((i * 2654435761) land 1023) /. 1024.0) in
    acc := !acc +. (a.(i) *. w)
  done;
  !acc

let checksum_int a = checksum (Array.map Float.of_int a)

let scaled s base = Stdlib.max 1 (int_of_float (Float.round (s *. Float.of_int base)))

let scaled_dim s base ~dims =
  Stdlib.max 1 (int_of_float (Float.round (Float.of_int base *. (s ** (1.0 /. Float.of_int dims)))))

let fmin (a : float) b = if a < b then a else b
