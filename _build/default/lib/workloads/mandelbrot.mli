(** Mandelbrot escape-time rendering: a two-level DOALL nest (rows over
    columns) whose per-pixel latency is the escape iteration count — the
    paper's canonical input-sensitive workload (Figs. 10 and 11).

    [view] describes one input: the complex-plane window and the iteration
    cap. [input1] (a deep zoom on the set boundary with a high cap) has
    high, wildly varying per-pixel latency; [input2] (a wide view with a low
    cap) is cheap everywhere. *)

type view = {
  x0 : float;
  y0 : float;
  x1 : float;
  y1 : float;
  max_iters : int;
  width : int;
  height : int;
}

type env = {
  mutable view : view;
  out : int array;  (** escape iteration per pixel, row-major, max size *)
  mutable runs : int;
}

val input1 : scale:float -> view
(** High latency (Fig. 10's input 1). *)

val input2 : scale:float -> view
(** Low latency (Fig. 10's input 2). *)

val classic : scale:float -> view
(** The standard full-set view used for Figs. 4 and 6. *)

val program_of_view : name:string -> view -> env Ir.Program.t

val program : scale:float -> env Ir.Program.t
(** The Fig. 4 / Fig. 6 benchmark. *)

val repeated : scale:float -> views:view list -> env Ir.Program.t
(** One program invoking the render nest once per view — Fig. 11's scenario
    of an important loop repeatedly invoked with different inputs. *)

val escape_iterations : view -> px:int -> py:int -> int
(** The actual escape-time computation (also used by tests). *)
