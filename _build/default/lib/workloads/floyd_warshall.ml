type env = { n : int; dist : float array; mutable k : int }

let i_ord = 0

let cost_per_cell = 10

let nest () =
  let j_loop =
    Ir.Nest.loop ~name:"fw_j" ~bytes_per_iter:12
      ~bounds:(fun e _ -> (0, e.n))
      [
        Ir.Nest.stmt ~name:"relax" (fun e (ctxs : Ir.Ctx.set) j ->
            let i = ctxs.(i_ord).Ir.Ctx.lo in
            let ik = e.dist.((i * e.n) + e.k) and kj = e.dist.((e.k * e.n) + j) in
            let via = ik +. kj in
            if via < e.dist.((i * e.n) + j) then e.dist.((i * e.n) + j) <- via;
            cost_per_cell);
      ]
  in
  Ir.Nest.loop ~name:"fw_i" ~bounds:(fun e _ -> (0, e.n)) [ Ir.Nest.Nested j_loop ]

let program ~scale =
  let n = Workload_util.scaled_dim scale 384 ~dims:3 in
  let root = nest () in
  Ir.Program.v ~name:"floyd-warshall" ~regularity:`Regular
    ~make_env:(fun () ->
      let rng = Sim.Sim_rng.create 23 in
      let dist =
        Array.init (n * n) (fun idx ->
            let i = idx / n and j = idx mod n in
            if i = j then 0.0
            else if Sim.Sim_rng.int rng 100 < 20 then 1.0 +. Sim.Sim_rng.float rng 9.0
            else 1.0e9)
      in
      { n; dist; k = 0 })
    ~nests:[ root ]
    ~driver:(fun e cpu ->
      for k = 0 to e.n - 1 do
        e.k <- k;
        cpu.Ir.Program.exec root;
        cpu.Ir.Program.advance 40
      done)
    ~fingerprint:(fun e ->
      Workload_util.checksum (Array.map (fun d -> Workload_util.fmin d 1.0e9) e.dist))
    ()
