(** K-means clustering (Rodinia-style, the TPAL benchmark set).

    Each of the fixed iterations runs two nests: the assignment loop (DOALL
    over points) and the center-update loop (DOALL over points with an
    array reduction over per-cluster sums and counts). The original Rodinia
    OpenMP code leaves the update reduction sequential on the main thread —
    declared via [omp_serial_nests] — which is why HBC beats OpenMP static
    by >50% on this benchmark (Sec. 6.8). *)

type env = {
  n : int;
  k : int;
  d : int;
  points : float array;  (** n*d *)
  centers : float array;  (** k*d *)
  assignment : int array;
  sums : float array;  (** k*d, refreshed per iteration *)
  counts : int array;  (** k *)
  iterations : int;
}

val program : scale:float -> env Ir.Program.t

val update_nest_name : string
