(** Sum of a large float array: a single flat DOALL loop with a scalar
    reduction — the simplest, most regular TPAL benchmark. *)

type env = { n : int; data : float array; mutable result : float }

val program : scale:float -> env Ir.Program.t
