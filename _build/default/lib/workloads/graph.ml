type t = {
  n : int;
  in_ptr : int array;
  in_src : int array;
  weights : float array;
  out_deg : int array;
}

let edges g = g.in_ptr.(g.n)

let in_degree g v = g.in_ptr.(v + 1) - g.in_ptr.(v)

let powerlaw ~n ~avg_deg ~alpha ~seed =
  let rng = Sim.Sim_rng.create seed in
  let raw = Array.init n (fun _ -> Sim.Sim_rng.zipf rng ~alpha ~n:(Stdlib.min n 100_000)) in
  let total_raw = Array.fold_left ( + ) 0 raw in
  let target = n * avg_deg in
  let factor = Float.of_int target /. Float.of_int (Stdlib.max 1 total_raw) in
  let degs =
    Array.map (fun s -> Stdlib.max 1 (int_of_float (Float.round (Float.of_int s *. factor)))) raw
  in
  let in_ptr = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    in_ptr.(v + 1) <- in_ptr.(v) + degs.(v)
  done;
  let m = in_ptr.(n) in
  let in_src = Array.init m (fun _ -> Sim.Sim_rng.int rng n) in
  let weights = Array.init m (fun _ -> 1.0 +. Sim.Sim_rng.float rng 9.0) in
  let out_deg = Array.make n 0 in
  Array.iter (fun s -> out_deg.(s) <- out_deg.(s) + 1) in_src;
  (* Every vertex needs at least one outgoing edge for PageRank's division. *)
  for v = 0 to n - 1 do
    if out_deg.(v) = 0 then out_deg.(v) <- 1
  done;
  { n; in_ptr; in_src; weights; out_deg }

let twitter_like ~scale =
  let n = Workload_util.scaled scale 60_000 in
  powerlaw ~n ~avg_deg:32 ~alpha:1.8 ~seed:301

let livejournal_like ~scale =
  let n = Workload_util.scaled scale 60_000 in
  powerlaw ~n ~avg_deg:16 ~alpha:1.5 ~seed:302
