(** Readers and writers for the standard exchange formats of the paper's
    input collections, so real inputs (SuiteSparse .mtx matrices, SNAP edge
    lists) can be dropped in for the synthetic generators.

    MatrixMarket: the coordinate format of the SuiteSparse collection
    (cage15 in the paper). Supports [real], [integer], and [pattern] fields,
    [general] and [symmetric] symmetry (mirrored on read), 1-based indices,
    '%' comments.

    Edge lists: SNAP's whitespace-separated "src dst [weight]" lines with
    '#' comments (Twitter/LiveJournal in the paper); read as incoming-edge
    CSR for the DensePull kernels. *)

exception Parse_error of string
(** Raised with a message naming the offending line. *)

val read_matrix_market : string -> Matrix_gen.csr
(** Read a square sparse matrix from a .mtx file.
    @raise Parse_error on malformed input. *)

val write_matrix_market : string -> Matrix_gen.csr -> unit
(** Write in coordinate/real/general form (round-trips with the reader). *)

val read_edge_list : ?default_weight:float -> string -> Graph.t
(** Read a graph from an edge-list file; vertex ids may be sparse (the graph
    is sized by the maximum id + 1). *)

val write_edge_list : string -> Graph.t -> unit
