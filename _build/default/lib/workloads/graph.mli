(** CSR graphs (incoming edges, for GraphIt's DensePull direction) and a
    power-law generator substituting the paper's Twitter and LiveJournal
    inputs with the same degree skew (DESIGN.md). *)

type t = {
  n : int;
  in_ptr : int array;  (** n+1 *)
  in_src : int array;  (** source vertex per incoming edge *)
  weights : float array;  (** per incoming edge *)
  out_deg : int array;
}

val edges : t -> int

val in_degree : t -> int -> int

val powerlaw : n:int -> avg_deg:int -> alpha:float -> seed:int -> t
(** Zipf in-degrees rescaled to [avg_deg], uniform random sources. *)

val twitter_like : scale:float -> t
(** Heavy-tailed, higher average degree. *)

val livejournal_like : scale:float -> t
