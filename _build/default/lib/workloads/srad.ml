type env = {
  rows : int;
  cols : int;
  img : float array;
  coeff : float array;
  dn : float array;
  ds : float array;
  de : float array;
  dw : float array;
  mutable q0sqr : float;
  iterations : int;
  lambda : float;
}

let row_ord = 0

let cost_coeff = 42

let cost_update = 28

let idx e i j = (i * e.cols) + j

let coeff_nest () =
  let col =
    Ir.Nest.loop ~name:"srad_coeff_col" ~bytes_per_iter:24
      ~bounds:(fun e _ -> (0, e.cols))
      [
        Ir.Nest.stmt ~name:"coeff" (fun e (ctxs : Ir.Ctx.set) j ->
            let i = ctxs.(row_ord).Ir.Ctx.lo in
            let c = e.img.(idx e i j) in
            let n = if i = 0 then c else e.img.(idx e (i - 1) j) in
            let s = if i = e.rows - 1 then c else e.img.(idx e (i + 1) j) in
            let w = if j = 0 then c else e.img.(idx e i (j - 1)) in
            let east = if j = e.cols - 1 then c else e.img.(idx e i (j + 1)) in
            let dn = n -. c and ds = s -. c and dw = w -. c and de = east -. c in
            e.dn.(idx e i j) <- dn;
            e.ds.(idx e i j) <- ds;
            e.dw.(idx e i j) <- dw;
            e.de.(idx e i j) <- de;
            let g2 = ((dn *. dn) +. (ds *. ds) +. (dw *. dw) +. (de *. de)) /. (c *. c) in
            let l = (dn +. ds +. dw +. de) /. c in
            let num = (0.5 *. g2) -. (0.0625 *. l *. l) in
            let den = 1.0 +. (0.25 *. l) in
            let qsqr = num /. (den *. den) in
            let cden = (qsqr -. e.q0sqr) /. (e.q0sqr *. (1.0 +. e.q0sqr)) in
            let v = 1.0 /. (1.0 +. cden) in
            e.coeff.(idx e i j) <- (if v < 0.0 then 0.0 else if v > 1.0 then 1.0 else v);
            cost_coeff);
      ]
  in
  Ir.Nest.loop ~name:"srad_coeff_row" ~bounds:(fun e _ -> (0, e.rows)) [ Ir.Nest.Nested col ]

let update_nest () =
  let col =
    Ir.Nest.loop ~name:"srad_update_col" ~bytes_per_iter:28
      ~bounds:(fun e _ -> (0, e.cols))
      [
        Ir.Nest.stmt ~name:"update" (fun e (ctxs : Ir.Ctx.set) j ->
            let i = ctxs.(row_ord).Ir.Ctx.lo in
            let cc = e.coeff.(idx e i j) in
            let cs = if i = e.rows - 1 then cc else e.coeff.(idx e (i + 1) j) in
            let ce = if j = e.cols - 1 then cc else e.coeff.(idx e i (j + 1)) in
            let d =
              (cc *. e.dn.(idx e i j))
              +. (cs *. e.ds.(idx e i j))
              +. (cc *. e.dw.(idx e i j))
              +. (ce *. e.de.(idx e i j))
            in
            e.img.(idx e i j) <- e.img.(idx e i j) +. (0.25 *. e.lambda *. d);
            cost_update);
      ]
  in
  Ir.Nest.loop ~name:"srad_update_row" ~bounds:(fun e _ -> (0, e.rows)) [ Ir.Nest.Nested col ]

let program ~scale =
  let side = Workload_util.scaled_dim scale 640 ~dims:2 in
  let coeff = coeff_nest () and update = update_nest () in
  Ir.Program.v ~name:"srad" ~regularity:`Regular
    ~make_env:(fun () ->
      let rng = Sim.Sim_rng.create 53 in
      let npx = side * side in
      {
        rows = side;
        cols = side;
        img = Array.init npx (fun _ -> Float.exp (Sim.Sim_rng.float rng 1.0));
        coeff = Array.make npx 0.0;
        dn = Array.make npx 0.0;
        ds = Array.make npx 0.0;
        de = Array.make npx 0.0;
        dw = Array.make npx 0.0;
        q0sqr = 0.05;
        iterations = 2;
        lambda = 0.5;
      })
    ~nests:[ coeff; update ]
    ~driver:(fun e cpu ->
      for _ = 1 to e.iterations do
        (* Global statistics over a fixed ROI, serial as in Rodinia. *)
        let sum = ref 0.0 and sum2 = ref 0.0 in
        let roi = Stdlib.min 64 e.rows in
        for i = 0 to roi - 1 do
          for j = 0 to roi - 1 do
            let v = e.img.(idx e i j) in
            sum := !sum +. v;
            sum2 := !sum2 +. (v *. v)
          done
        done;
        let npx = Float.of_int (roi * roi) in
        let mean = !sum /. npx in
        let var = (!sum2 /. npx) -. (mean *. mean) in
        e.q0sqr <- var /. (mean *. mean);
        cpu.Ir.Program.advance (roi * roi * 4);
        cpu.Ir.Program.exec coeff;
        cpu.Ir.Program.exec update
      done)
    ~fingerprint:(fun e -> Workload_util.checksum e.img)
    ()
