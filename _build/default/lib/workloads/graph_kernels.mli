(** The six GraphIt benchmarks of the paper (DensePull direction): each
    round is a two-level DOALL nest — destination vertices over incoming
    edges — whose inner trip count is the vertex in-degree, the source of
    the benchmarks' heavy irregularity on power-law graphs. bfs, cc, and pr
    run on the Twitter-like graph; cf, pr-delta, and sssp on the
    LiveJournal-like graph, matching the paper's input assignment. *)

type common = {
  g : Graph.t;
  rank : float array;  (** pr/pr-delta ranks, cf latents use [latent] *)
  rank_next : float array;
  parent : int array;  (** bfs *)
  label : int array;  (** cc *)
  dist : float array;  (** sssp *)
  delta : float array;  (** pr-delta *)
  active : bool array;
  active_next : bool array;
  latent : float array;  (** cf: n*k latent vectors *)
  latent_next : float array;
  mutable round : int;
  mutable changed : int;
}

val bfs : scale:float -> common Ir.Program.t

val cc : scale:float -> common Ir.Program.t

val pr : scale:float -> common Ir.Program.t

val pr_delta : scale:float -> common Ir.Program.t

val sssp : scale:float -> common Ir.Program.t

val cf : scale:float -> common Ir.Program.t
