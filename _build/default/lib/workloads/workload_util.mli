(** Shared helpers for benchmark construction. *)

val checksum : float array -> float
(** Position-weighted checksum of an output array: catches both wrong values
    and values landing at wrong indices, while staying stable under the
    floating-point reassociation of parallel reductions (relative error
    below 1e-9 for our sizes). *)

val checksum_int : int array -> float

val scaled : float -> int -> int
(** [scaled s base] is [base * s] rounded, at least 1. *)

val scaled_dim : float -> int -> dims:int -> int
(** Scale one dimension of a [dims]-dimensional grid so total volume scales
    by [s]. *)

val fmin : float -> float -> float
