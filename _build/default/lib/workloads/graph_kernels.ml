type common = {
  g : Graph.t;
  rank : float array;
  rank_next : float array;
  parent : int array;
  label : int array;
  dist : float array;
  delta : float array;
  active : bool array;
  active_next : bool array;
  latent : float array;
  latent_next : float array;
  mutable round : int;
  mutable changed : int;
}

let dst_ord = 0

let edge_ord = 1

let latent_k = 8

let make_common g =
  let n = g.Graph.n in
  {
    g;
    rank = Array.make n (1.0 /. Float.of_int n);
    rank_next = Array.make n 0.0;
    parent = Array.make n (-1);
    label = Array.init n (fun v -> v);
    dist = Array.make n Float.infinity;
    delta = Array.make n 1.0;
    active = Array.make n true;
    active_next = Array.make n false;
    latent = Array.init (n * latent_k) (fun i -> Float.of_int ((i * 37 mod 101) + 1) /. 101.0);
    latent_next = Array.make (n * latent_k) 0.0;
    round = 0;
    changed = 0;
  }

let edge_bounds ?(skip = fun _ _ -> false) () =
 fun e (ctxs : Ir.Ctx.set) ->
  let dst = ctxs.(dst_ord).Ir.Ctx.lo in
  if skip e dst then (0, 0) else (e.g.Graph.in_ptr.(dst), e.g.Graph.in_ptr.(dst + 1))

let dst_nest ~name ~edge_loop ~tail =
  Ir.Nest.loop ~name ~bytes_per_iter:16
    ~bounds:(fun e _ -> (0, e.g.Graph.n))
    [ Ir.Nest.Nested edge_loop; Ir.Nest.stmt ~name:(name ^ "_apply") tail ]

let int_min_reduction =
  ( (fun (l : Ir.Locals.t) -> l.Ir.Locals.ints.(0) <- max_int),
    fun (dst : Ir.Locals.t) (src : Ir.Locals.t) ->
      dst.Ir.Locals.ints.(0) <- Stdlib.min dst.Ir.Locals.ints.(0) src.Ir.Locals.ints.(0) )

let float_min_reduction =
  ( (fun (l : Ir.Locals.t) -> l.Ir.Locals.floats.(0) <- Float.infinity),
    fun (dst : Ir.Locals.t) (src : Ir.Locals.t) ->
      dst.Ir.Locals.floats.(0) <- Workload_util.fmin dst.Ir.Locals.floats.(0) src.Ir.Locals.floats.(0)
  )

let float_sum_reduction =
  ( (fun (l : Ir.Locals.t) -> l.Ir.Locals.floats.(0) <- 0.0),
    fun (dst : Ir.Locals.t) (src : Ir.Locals.t) ->
      dst.Ir.Locals.floats.(0) <- dst.Ir.Locals.floats.(0) +. src.Ir.Locals.floats.(0) )

let rounds_driver ~max_rounds ~until_quiet nest prepare finalize e (cpu : _ Ir.Program.cpu) =
  let continue_ = ref true in
  while !continue_ do
    e.changed <- 0;
    prepare e;
    cpu.Ir.Program.exec nest;
    finalize e;
    cpu.Ir.Program.advance (2 * e.g.Graph.n);
    e.round <- e.round + 1;
    if e.round >= max_rounds || (until_quiet && e.changed = 0) then continue_ := false
  done

(* --------------------------- bfs --------------------------------- *)

let bfs_program g_make name =
  let init_, combine = int_min_reduction in
  let edge_loop =
    Ir.Nest.loop ~name:(name ^ "_edges") ~bytes_per_iter:6
      ~locals_spec:{ Ir.Locals.nfloats = 0; nints = 1 }
      ~init:(fun _ l -> init_ l)
      ~reduction:combine
      ~bounds:(edge_bounds ~skip:(fun e dst -> e.parent.(dst) >= 0) ())
      [
        Ir.Nest.stmt ~name:"scan" (fun e ctxs k ->
            let src = e.g.Graph.in_src.(k) in
            if e.active.(src) then begin
              let l = ctxs.(edge_ord).Ir.Ctx.locals in
              if src < l.Ir.Locals.ints.(0) then l.Ir.Locals.ints.(0) <- src
            end;
            5);
      ]
  in
  let nest =
    dst_nest ~name:(name ^ "_dst") ~edge_loop ~tail:(fun e ctxs dst ->
        let found = ctxs.(edge_ord).Ir.Ctx.locals.Ir.Locals.ints.(0) in
        if e.parent.(dst) < 0 && found < max_int then begin
          e.parent.(dst) <- found;
          e.active_next.(dst) <- true;
          e.changed <- e.changed + 1
        end;
        8)
  in
  Ir.Program.v ~name
    ~make_env:(fun () ->
      let e = make_common (g_make ()) in
      Array.fill e.active 0 e.g.Graph.n false;
      e.active.(0) <- true;
      e.parent.(0) <- 0;
      e)
    ~nests:[ nest ]
    ~driver:
      (rounds_driver ~max_rounds:24 ~until_quiet:true nest
         (fun e -> Array.fill e.active_next 0 e.g.Graph.n false)
         (fun e -> Array.blit e.active_next 0 e.active 0 e.g.Graph.n))
    ~fingerprint:(fun e -> Workload_util.checksum_int e.parent)
    ()

(* --------------------------- cc ---------------------------------- *)

let cc_program g_make name =
  let init_, combine = int_min_reduction in
  let edge_loop =
    Ir.Nest.loop ~name:(name ^ "_edges") ~bytes_per_iter:6
      ~locals_spec:{ Ir.Locals.nfloats = 0; nints = 1 }
      ~init:(fun _ l -> init_ l)
      ~reduction:combine ~bounds:(edge_bounds ())
      [
        Ir.Nest.stmt ~name:"min_label" (fun e ctxs k ->
            let src = e.g.Graph.in_src.(k) in
            let l = ctxs.(edge_ord).Ir.Ctx.locals in
            if e.label.(src) < l.Ir.Locals.ints.(0) then l.Ir.Locals.ints.(0) <- e.label.(src);
            4);
      ]
  in
  let nest =
    dst_nest ~name:(name ^ "_dst") ~edge_loop ~tail:(fun e ctxs dst ->
        let m = ctxs.(edge_ord).Ir.Ctx.locals.Ir.Locals.ints.(0) in
        let m = Stdlib.min m e.label.(dst) in
        (* Synchronous label propagation: the new labels are staged in the
           (otherwise unused) rank_next buffer and installed by the driver,
           keeping rounds deterministic. *)
        if m < e.label.(dst) then e.changed <- e.changed + 1;
        e.rank_next.(dst) <- Float.of_int m;
        10)
  in
  Ir.Program.v ~name
    ~make_env:(fun () -> make_common (g_make ()))
    ~nests:[ nest ]
    ~driver:
      (rounds_driver ~max_rounds:10 ~until_quiet:true nest
         (fun _ -> ())
         (fun e ->
           for v = 0 to e.g.Graph.n - 1 do
             e.label.(v) <- int_of_float e.rank_next.(v)
           done))
    ~fingerprint:(fun e -> Workload_util.checksum_int e.label)
    ()

(* --------------------------- pr ---------------------------------- *)

let pr_program g_make name =
  let init_, combine = float_sum_reduction in
  let edge_loop =
    Ir.Nest.loop ~name:(name ^ "_edges") ~bytes_per_iter:8
      ~locals_spec:{ Ir.Locals.nfloats = 1; nints = 0 }
      ~init:(fun _ l -> init_ l)
      ~reduction:combine ~bounds:(edge_bounds ())
      [
        Ir.Nest.stmt ~name:"gather" (fun e ctxs k ->
            let src = e.g.Graph.in_src.(k) in
            let l = ctxs.(edge_ord).Ir.Ctx.locals in
            l.Ir.Locals.floats.(0) <-
              l.Ir.Locals.floats.(0) +. (e.rank.(src) /. Float.of_int e.g.Graph.out_deg.(src));
            6);
      ]
  in
  let nest =
    dst_nest ~name:(name ^ "_dst") ~edge_loop ~tail:(fun e ctxs dst ->
        let sum = ctxs.(edge_ord).Ir.Ctx.locals.Ir.Locals.floats.(0) in
        e.rank_next.(dst) <- (0.15 /. Float.of_int e.g.Graph.n) +. (0.85 *. sum);
        12)
  in
  Ir.Program.v ~name
    ~make_env:(fun () -> make_common (g_make ()))
    ~nests:[ nest ]
    ~driver:
      (rounds_driver ~max_rounds:5 ~until_quiet:false nest
         (fun _ -> ())
         (fun e -> Array.blit e.rank_next 0 e.rank 0 e.g.Graph.n))
    ~fingerprint:(fun e -> Workload_util.checksum e.rank)
    ()

(* --------------------------- pr-delta ----------------------------- *)

let pr_delta_program g_make name =
  let init_, combine = float_sum_reduction in
  let edge_loop =
    Ir.Nest.loop ~name:(name ^ "_edges") ~bytes_per_iter:8
      ~locals_spec:{ Ir.Locals.nfloats = 1; nints = 0 }
      ~init:(fun _ l -> init_ l)
      ~reduction:combine
      ~bounds:(edge_bounds ~skip:(fun e dst -> not e.active.(dst)) ())
      [
        Ir.Nest.stmt ~name:"gather" (fun e ctxs k ->
            let src = e.g.Graph.in_src.(k) in
            let l = ctxs.(edge_ord).Ir.Ctx.locals in
            l.Ir.Locals.floats.(0) <-
              l.Ir.Locals.floats.(0) +. (e.rank.(src) /. Float.of_int e.g.Graph.out_deg.(src));
            6);
      ]
  in
  let nest =
    dst_nest ~name:(name ^ "_dst") ~edge_loop ~tail:(fun e ctxs dst ->
        if e.active.(dst) then begin
          let sum = ctxs.(edge_ord).Ir.Ctx.locals.Ir.Locals.floats.(0) in
          let fresh = (0.15 /. Float.of_int e.g.Graph.n) +. (0.85 *. sum) in
          e.delta.(dst) <- Float.abs (fresh -. e.rank.(dst));
          e.rank_next.(dst) <- fresh;
          (* Vertices whose rank still moves stay in the active set: the
             shrinking-frontier irregularity of GraphIt's PageRankDelta. *)
          if e.delta.(dst) > 1e-7 then begin
            e.active_next.(dst) <- true;
            e.changed <- e.changed + 1
          end
        end
        else e.rank_next.(dst) <- e.rank.(dst);
        14)
  in
  Ir.Program.v ~name
    ~make_env:(fun () -> make_common (g_make ()))
    ~nests:[ nest ]
    ~driver:
      (rounds_driver ~max_rounds:8 ~until_quiet:true nest
         (fun e -> Array.fill e.active_next 0 e.g.Graph.n false)
         (fun e ->
           Array.blit e.rank_next 0 e.rank 0 e.g.Graph.n;
           Array.blit e.active_next 0 e.active 0 e.g.Graph.n))
    ~fingerprint:(fun e -> Workload_util.checksum e.rank)
    ()

(* --------------------------- sssp --------------------------------- *)

let sssp_program g_make name =
  let init_, combine = float_min_reduction in
  let edge_loop =
    Ir.Nest.loop ~name:(name ^ "_edges") ~bytes_per_iter:12
      ~locals_spec:{ Ir.Locals.nfloats = 1; nints = 0 }
      ~init:(fun _ l -> init_ l)
      ~reduction:combine ~bounds:(edge_bounds ())
      [
        Ir.Nest.stmt ~name:"relax" (fun e ctxs k ->
            let src = e.g.Graph.in_src.(k) in
            let l = ctxs.(edge_ord).Ir.Ctx.locals in
            let cand = e.dist.(src) +. e.g.Graph.weights.(k) in
            if cand < l.Ir.Locals.floats.(0) then l.Ir.Locals.floats.(0) <- cand;
            6);
      ]
  in
  let nest =
    dst_nest ~name:(name ^ "_dst") ~edge_loop ~tail:(fun e ctxs dst ->
        let m = ctxs.(edge_ord).Ir.Ctx.locals.Ir.Locals.floats.(0) in
        if m < e.dist.(dst) then begin
          e.rank_next.(dst) <- m;
          e.changed <- e.changed + 1
        end
        else e.rank_next.(dst) <- e.dist.(dst);
        10)
  in
  Ir.Program.v ~name
    ~make_env:(fun () ->
      let e = make_common (g_make ()) in
      e.dist.(0) <- 0.0;
      e)
    ~nests:[ nest ]
    ~driver:
      (rounds_driver ~max_rounds:8 ~until_quiet:true nest
         (fun _ -> ())
         (fun e -> Array.blit e.rank_next 0 e.dist 0 e.g.Graph.n))
    ~fingerprint:(fun e ->
      Workload_util.checksum (Array.map (fun d -> Workload_util.fmin d 1.0e9) e.dist))
    ()

(* --------------------------- cf ----------------------------------- *)

let cf_program g_make name =
  let edge_loop =
    Ir.Nest.loop ~name:(name ^ "_edges") ~bytes_per_iter:48
      ~locals_spec:{ Ir.Locals.nfloats = latent_k; nints = 0 }
      ~init:(fun _ (l : Ir.Locals.t) -> Array.fill l.Ir.Locals.floats 0 latent_k 0.0)
      ~reduction:(fun dst src ->
        for c = 0 to latent_k - 1 do
          dst.Ir.Locals.floats.(c) <- dst.Ir.Locals.floats.(c) +. src.Ir.Locals.floats.(c)
        done)
      ~bounds:(edge_bounds ())
      [
        Ir.Nest.stmt ~name:"gather_latent" (fun e ctxs k ->
            let src = e.g.Graph.in_src.(k) in
            let w = e.g.Graph.weights.(k) in
            let l = ctxs.(edge_ord).Ir.Ctx.locals in
            for c = 0 to latent_k - 1 do
              l.Ir.Locals.floats.(c) <-
                l.Ir.Locals.floats.(c) +. (w *. e.latent.((src * latent_k) + c))
            done;
            6 * latent_k);
      ]
  in
  let nest =
    dst_nest ~name:(name ^ "_dst") ~edge_loop ~tail:(fun e ctxs dst ->
        let l = ctxs.(edge_ord).Ir.Ctx.locals in
        let deg = Float.of_int (Stdlib.max 1 (Graph.in_degree e.g dst)) in
        for c = 0 to latent_k - 1 do
          e.latent_next.((dst * latent_k) + c) <-
            (0.5 *. e.latent.((dst * latent_k) + c)) +. (0.5 *. l.Ir.Locals.floats.(c) /. deg /. 10.0)
        done;
        30)
  in
  Ir.Program.v ~name
    ~make_env:(fun () -> make_common (g_make ()))
    ~nests:[ nest ]
    ~driver:
      (rounds_driver ~max_rounds:2 ~until_quiet:false nest
         (fun _ -> ())
         (fun e -> Array.blit e.latent_next 0 e.latent 0 (e.g.Graph.n * latent_k)))
    ~fingerprint:(fun e -> Workload_util.checksum e.latent)
    ()

(* --------------------------- entry points ------------------------- *)

let bfs ~scale = bfs_program (fun () -> Graph.twitter_like ~scale) "bfs"

let cc ~scale = cc_program (fun () -> Graph.twitter_like ~scale) "cc"

let pr ~scale = pr_program (fun () -> Graph.twitter_like ~scale) "pr"

let pr_delta ~scale = pr_delta_program (fun () -> Graph.livejournal_like ~scale) "pr-delta"

let sssp ~scale = sssp_program (fun () -> Graph.livejournal_like ~scale) "sssp"

let cf ~scale = cf_program (fun () -> Graph.livejournal_like ~scale) "cf"
