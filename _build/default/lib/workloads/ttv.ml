type env = { tensor : Tensor.csf; v : float array; out : float array }

let slice_ord = 0

let fiber_ord = 1

let k_ord = 2

let nk = 4096

let nest () =
  let k_loop =
    Ir.Nest.loop ~name:"ttv_k" ~bytes_per_iter:48
      ~locals_spec:{ Ir.Locals.nfloats = 1; nints = 0 }
      ~init:(fun _ (l : Ir.Locals.t) -> l.Ir.Locals.floats.(0) <- 0.0)
      ~reduction:(fun dst src ->
        dst.Ir.Locals.floats.(0) <- dst.Ir.Locals.floats.(0) +. src.Ir.Locals.floats.(0))
      ~bounds:(fun e (ctxs : Ir.Ctx.set) ->
        let f = ctxs.(fiber_ord).Ir.Ctx.lo in
        (e.tensor.Tensor.nnz_ptr.(f), e.tensor.Tensor.nnz_ptr.(f + 1)))
      [
        Ir.Nest.stmt ~name:"mac" (fun e ctxs p ->
            let l = ctxs.(k_ord).Ir.Ctx.locals in
            l.Ir.Locals.floats.(0) <-
              l.Ir.Locals.floats.(0) +. (e.tensor.Tensor.vals.(p) *. e.v.(e.tensor.Tensor.nnz_k.(p)));
            11);
      ]
  in
  let fiber_loop =
    Ir.Nest.loop ~name:"ttv_fiber" ~bytes_per_iter:24
      ~bounds:(fun e (ctxs : Ir.Ctx.set) ->
        let i = ctxs.(slice_ord).Ir.Ctx.lo in
        (e.tensor.Tensor.fiber_ptr.(i), e.tensor.Tensor.fiber_ptr.(i + 1)))
      [
        Ir.Nest.Nested k_loop;
        Ir.Nest.stmt ~name:"store" (fun e ctxs f ->
            e.out.(f) <- ctxs.(k_ord).Ir.Ctx.locals.Ir.Locals.floats.(0);
            8);
      ]
  in
  Ir.Nest.loop ~name:"ttv_slice"
    ~bounds:(fun e _ -> (0, e.tensor.Tensor.ni))
    [ Ir.Nest.Nested fiber_loop ]

let program ~scale =
  let ni = Workload_util.scaled scale 30_000 in
  let root = nest () in
  Ir.Program.v ~name:"ttv"
    ~make_env:(fun () ->
      let tensor = Tensor.generate ~ni ~avg_fibers:6 ~avg_nnz:8 ~nk ~seed:83 in
      let rng = Sim.Sim_rng.create 84 in
      {
        tensor;
        v = Array.init nk (fun _ -> Sim.Sim_rng.float rng 1.0);
        out = Array.make (Tensor.nfibers tensor) 0.0;
      })
    ~nests:[ root ]
    ~driver:(fun _ cpu -> cpu.Ir.Program.exec root)
    ~fingerprint:(fun e -> Workload_util.checksum e.out)
    ()
