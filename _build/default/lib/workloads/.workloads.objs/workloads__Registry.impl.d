lib/workloads/registry.ml: Cg Floyd_warshall Graph_kernels Ir Kmeans List Mandelbrot Mandelbulb Plus_reduce_array Spmv Srad Ttm Ttv
