lib/workloads/mandelbulb.ml: Array Float Ir Workload_util
