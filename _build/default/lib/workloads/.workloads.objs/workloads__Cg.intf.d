lib/workloads/cg.mli: Ir Matrix_gen
