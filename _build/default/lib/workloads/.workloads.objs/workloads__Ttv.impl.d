lib/workloads/ttv.ml: Array Ir Sim Tensor Workload_util
