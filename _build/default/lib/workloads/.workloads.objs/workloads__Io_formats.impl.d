lib/workloads/io_formats.ml: Array Fun Graph In_channel List Matrix_gen Printf Stdlib String
