lib/workloads/spmv.ml: Array Ir Matrix_gen Sim Workload_util
