lib/workloads/ttm.ml: Array Ir Sim Tensor Workload_util
