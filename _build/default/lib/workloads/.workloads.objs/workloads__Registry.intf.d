lib/workloads/registry.mli: Ir
