lib/workloads/floyd_warshall.ml: Array Ir Sim Workload_util
