lib/workloads/ttm.mli: Ir Tensor
