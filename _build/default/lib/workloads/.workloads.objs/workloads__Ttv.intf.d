lib/workloads/ttv.mli: Ir Tensor
