lib/workloads/cg.ml: Array Ir Matrix_gen Sim Stdlib Workload_util
