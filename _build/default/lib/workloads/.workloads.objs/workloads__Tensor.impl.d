lib/workloads/tensor.ml: Array Float Sim Stdlib
