lib/workloads/kmeans.ml: Array Float Ir Sim Workload_util
