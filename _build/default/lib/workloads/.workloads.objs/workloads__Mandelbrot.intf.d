lib/workloads/mandelbrot.mli: Ir
