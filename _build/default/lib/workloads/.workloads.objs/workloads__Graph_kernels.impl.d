lib/workloads/graph_kernels.ml: Array Float Graph Ir Stdlib Workload_util
