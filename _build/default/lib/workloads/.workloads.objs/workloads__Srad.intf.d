lib/workloads/srad.mli: Ir
