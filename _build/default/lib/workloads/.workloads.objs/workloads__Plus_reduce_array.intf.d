lib/workloads/plus_reduce_array.mli: Ir
