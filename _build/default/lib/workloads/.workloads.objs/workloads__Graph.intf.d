lib/workloads/graph.mli:
