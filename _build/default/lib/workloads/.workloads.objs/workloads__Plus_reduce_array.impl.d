lib/workloads/plus_reduce_array.ml: Array Ir Sim Workload_util
