lib/workloads/graph_kernels.mli: Graph Ir
