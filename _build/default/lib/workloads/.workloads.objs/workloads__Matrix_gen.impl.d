lib/workloads/matrix_gen.ml: Array Float Sim Stdlib
