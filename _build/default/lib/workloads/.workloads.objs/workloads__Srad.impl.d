lib/workloads/srad.ml: Array Float Ir Sim Stdlib Workload_util
