lib/workloads/tensor.mli:
