lib/workloads/spmv.mli: Ir Matrix_gen
