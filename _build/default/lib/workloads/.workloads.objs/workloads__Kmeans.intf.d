lib/workloads/kmeans.mli: Ir
