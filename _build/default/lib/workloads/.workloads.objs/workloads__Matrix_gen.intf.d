lib/workloads/matrix_gen.mli:
