lib/workloads/mandelbrot.ml: Array Float Ir List Stdlib Workload_util
