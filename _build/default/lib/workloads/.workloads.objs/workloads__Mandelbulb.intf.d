lib/workloads/mandelbulb.mli: Ir
