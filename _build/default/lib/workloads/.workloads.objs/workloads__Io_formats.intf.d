lib/workloads/io_formats.mli: Graph Matrix_gen
