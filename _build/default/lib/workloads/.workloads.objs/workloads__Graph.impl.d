lib/workloads/graph.ml: Array Float Sim Stdlib Workload_util
