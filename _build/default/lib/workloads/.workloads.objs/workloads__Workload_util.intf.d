lib/workloads/workload_util.mli:
