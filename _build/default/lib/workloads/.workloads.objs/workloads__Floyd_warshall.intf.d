lib/workloads/floyd_warshall.mli: Ir
