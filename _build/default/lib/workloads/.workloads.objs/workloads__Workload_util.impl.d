lib/workloads/workload_util.ml: Array Float Stdlib
