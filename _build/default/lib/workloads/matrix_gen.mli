(** Sparse-matrix generators in compressed sparse-row format.

    Ports of the TPAL matrix generator used by the paper for the spmv
    inputs: the arrowhead pattern (dense first row, first column, and
    diagonal — the classic granularity-control challenge input), a power-law
    pattern with Zipf-distributed row lengths, and a uniform random
    pattern. *)

type csr = {
  n : int;  (** rows *)
  row_ptr : int array;  (** length n+1 *)
  col_ind : int array;
  vals : float array;
}

val nnz : csr -> int

val nnz_of_row : csr -> int -> int

val arrowhead : n:int -> csr
(** Row 0 holds the dense first row; every other row holds the first-column
    and diagonal entries. *)

val powerlaw : reverse:bool -> n:int -> avg_nnz:int -> seed:int -> csr
(** Zipf row lengths rescaled to the requested average, rows sorted longest
    first ([reverse] sorts shortest first, the paper's powerlaw-reverse
    input of Fig. 12). *)

val random_uniform : n:int -> nnz_per_row:int -> seed:int -> csr
(** Every row has exactly [nnz_per_row] entries: the regular input. *)

val with_dominant_diagonal : csr -> csr
(** Append a dominant diagonal entry to every row (numerical stability for
    iterative solvers on the synthetic inputs). *)

val symmetric_spd : csr -> csr
(** [M + M^T] plus a dominant diagonal: symmetric positive definite, the
    matrix class conjugate gradient requires (NAS cg's inputs are SPD). *)

val spmv_reference : csr -> x:float array -> y:float array -> unit
(** Straightforward sequential product, for tests. *)
