(* Tests for the native domains-based heartbeat runtime. *)

module Hb_par = Hb_parallel.Hb_par

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let for_covers_all_indices () =
  Hb_par.with_pool ~heartbeat_us:50.0 ~num_domains:2 (fun pool ->
      let n = 200_000 in
      let hits = Array.make n 0 in
      Hb_par.parallel_for pool ~lo:0 ~hi:n (fun i -> hits.(i) <- hits.(i) + 1);
      let bad = ref 0 in
      Array.iter (fun h -> if h <> 1 then incr bad) hits;
      check_int "each index exactly once" 0 !bad)

let reduce_matches_sequential () =
  Hb_par.with_pool ~heartbeat_us:50.0 ~num_domains:3 (fun pool ->
      let n = 300_000 in
      let expected = ref 0.0 in
      for i = 0 to n - 1 do
        expected := !expected +. Float.of_int (i mod 101)
      done;
      let got =
        Hb_par.parallel_reduce pool ~lo:0 ~hi:n ~init:0.0
          ~body:(fun acc i -> acc +. Float.of_int (i mod 101))
          ~combine:( +. )
      in
      Alcotest.(check (float 1e-6)) "sums equal" !expected got)

let nested_for_correct () =
  Hb_par.with_pool ~heartbeat_us:50.0 ~num_domains:2 (fun pool ->
      let rows = 300 and cols = 300 in
      let m = Array.make (rows * cols) (-1) in
      Hb_par.parallel_for pool ~lo:0 ~hi:rows (fun i ->
          Hb_par.parallel_for pool ~lo:0 ~hi:cols (fun j -> m.((i * cols) + j) <- i + j));
      let ok = ref true in
      for i = 0 to rows - 1 do
        for j = 0 to cols - 1 do
          if m.((i * cols) + j) <> i + j then ok := false
        done
      done;
      check_bool "all cells" true !ok)

let empty_and_tiny_ranges () =
  Hb_par.with_pool ~num_domains:2 (fun pool ->
      let count = ref 0 in
      Hb_par.parallel_for pool ~lo:5 ~hi:5 (fun _ -> incr count);
      check_int "empty" 0 !count;
      Hb_par.parallel_for pool ~lo:5 ~hi:6 (fun _ -> incr count);
      check_int "singleton" 1 !count;
      Alcotest.(check (float 0.0)) "empty reduce keeps init" 3.5
        (Hb_par.parallel_reduce pool ~lo:0 ~hi:0 ~init:3.5 ~body:(fun a _ -> a +. 1.0)
           ~combine:( +. )))

let single_domain_works () =
  Hb_par.with_pool ~num_domains:1 (fun pool ->
      let n = 50_000 in
      let got =
        Hb_par.parallel_reduce pool ~lo:0 ~hi:n ~init:0 ~body:(fun a i -> a + (i mod 7)) ~combine:( + )
      in
      let expected = ref 0 in
      for i = 0 to n - 1 do
        expected := !expected + (i mod 7)
      done;
      check_int "sum" !expected got)

let promotions_fire_under_load () =
  Hb_par.with_pool ~heartbeat_us:20.0 ~num_domains:2 (fun pool ->
      let acc = ref 0.0 in
      Hb_par.parallel_reduce pool ~lo:0 ~hi:2_000_000 ~init:0.0
        ~body:(fun a i -> a +. (Float.of_int i *. 1e-9))
        ~combine:( +. )
      |> fun v -> acc := v;
      check_bool "some promotions happened" true (Hb_par.promotions pool > 0);
      check_bool "result sane" true (!acc > 0.0))

let shutdown_idempotent () =
  let pool = Hb_par.create ~num_domains:2 () in
  Hb_par.parallel_for pool ~lo:0 ~hi:100 (fun _ -> ());
  Hb_par.shutdown pool;
  Hb_par.shutdown pool;
  check_bool "ok" true true

(* --------------------- Chase-Lev deque stress ---------------------- *)

module Wd = Hb_parallel.Ws_deque

let ws_deque_sequential_laws () =
  let d = Wd.create () in
  for i = 0 to 99 do
    Wd.push d i
  done;
  check_int "size" 100 (Wd.size d);
  Alcotest.(check (option int)) "pop newest" (Some 99) (Wd.pop d);
  Alcotest.(check (option int)) "steal oldest" (Some 0) (Wd.steal d);
  let d2 = Wd.create () in
  Alcotest.(check (option int)) "empty pop" None (Wd.pop d2);
  Alcotest.(check (option int)) "empty steal" None (Wd.steal d2);
  (* growth across the initial 64-slot buffer *)
  let d3 = Wd.create () in
  for i = 0 to 999 do
    Wd.push d3 i
  done;
  let seen = ref 0 in
  let rec drain () =
    match Wd.steal d3 with
    | Some _ ->
        incr seen;
        drain ()
    | None -> ()
  in
  drain ();
  check_int "all stolen after growth" 1000 !seen

let ws_deque_concurrent_exactly_once () =
  (* One owner pushing/popping, two thieves stealing: every element must be
     consumed exactly once across all parties. *)
  let d = Wd.create () in
  let n = 100_000 in
  let consumed = Array.make n (Atomic.make 0) in
  for i = 0 to n - 1 do
    consumed.(i) <- Atomic.make 0
  done;
  let stop = Atomic.make false in
  let thief () =
    let got = ref 0 in
    while not (Atomic.get stop) do
      match Wd.steal d with
      | Some i ->
          Atomic.incr consumed.(i);
          incr got
      | None -> Domain.cpu_relax ()
    done;
    !got
  in
  let t1 = Domain.spawn thief and t2 = Domain.spawn thief in
  let owner_got = ref 0 in
  for i = 0 to n - 1 do
    Wd.push d i;
    if i land 3 = 0 then
      match Wd.pop d with
      | Some j ->
          Atomic.incr consumed.(j);
          incr owner_got
      | None -> ()
  done;
  let rec drain () =
    match Wd.pop d with
    | Some j ->
        Atomic.incr consumed.(j);
        incr owner_got;
        drain ()
    | None -> ()
  in
  drain ();
  (* let thieves finish any in-flight steal, then stop them *)
  Atomic.set stop true;
  let g1 = Domain.join t1 and g2 = Domain.join t2 in
  check_int "every element exactly once" n (!owner_got + g1 + g2);
  Array.iteri
    (fun i c -> check_int (Printf.sprintf "element %d once" i) 1 (Atomic.get c))
    consumed

let suite =
  [
    Alcotest.test_case "parallel_for covers all indices" `Quick for_covers_all_indices;
    Alcotest.test_case "parallel_reduce equals sequential" `Quick reduce_matches_sequential;
    Alcotest.test_case "nested parallel_for" `Quick nested_for_correct;
    Alcotest.test_case "empty and tiny ranges" `Quick empty_and_tiny_ranges;
    Alcotest.test_case "single domain" `Quick single_domain_works;
    Alcotest.test_case "promotions under load" `Quick promotions_fire_under_load;
    Alcotest.test_case "shutdown idempotent" `Quick shutdown_idempotent;
    Alcotest.test_case "ws-deque: sequential laws" `Quick ws_deque_sequential_laws;
    Alcotest.test_case "ws-deque: concurrent exactly-once" `Slow ws_deque_concurrent_exactly_once;
  ]
