test/test_semantics.ml: Alcotest Array Baselines Float Hbc_core Ir List Queue Sim Stdlib Workloads
