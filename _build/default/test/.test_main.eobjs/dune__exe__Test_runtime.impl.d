test/test_runtime.ml: Alcotest Array Baselines Float Hashtbl Hbc_core Ir List Printf QCheck QCheck_alcotest Seq Sim Stdlib Workloads
