test/test_compiler.ml: Alcotest Array Hbc_core Ir List Printf QCheck QCheck_alcotest Stdlib
