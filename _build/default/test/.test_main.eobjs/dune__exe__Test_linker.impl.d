test/test_linker.ml: Alcotest Hbc_core Ir List Printf QCheck QCheck_alcotest String
