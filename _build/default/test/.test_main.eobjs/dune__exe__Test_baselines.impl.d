test/test_baselines.ml: Alcotest Array Baselines Float Ir List Printf Sim
