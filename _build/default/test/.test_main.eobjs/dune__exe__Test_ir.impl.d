test/test_ir.ml: Alcotest Array Ir List
