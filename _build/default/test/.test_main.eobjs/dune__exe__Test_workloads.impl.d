test/test_workloads.ml: Alcotest Array Baselines Float Hbc_core Ir List Sim Stdlib String Workloads
