test/test_sim.ml: Alcotest Array Buffer Float Fun List Printf QCheck QCheck_alcotest Sim
