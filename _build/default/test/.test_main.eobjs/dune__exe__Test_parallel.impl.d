test/test_parallel.ml: Alcotest Array Atomic Domain Float Hb_parallel Printf
