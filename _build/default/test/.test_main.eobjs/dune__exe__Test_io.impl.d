test/test_io.ml: Alcotest Array Baselines Experiments Filename Fun Hbc_core List Report Sim Stdlib String Sys Workloads
