test/test_heartbeat.ml: Alcotest Hbc_core Sim
