test/test_fork_join.ml: Alcotest Array Float Hbc_core List Printf QCheck QCheck_alcotest Sim
