(* Tests for the heartbeat linker: pseudo-assembly emission and the
   rollforward compiler (source/destination twins and tables). *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let sample_nest () =
  let inner =
    Ir.Nest.loop ~name:"inner" ~bounds:(fun () _ -> (0, 4)) [ Ir.Nest.stmt ~name:"w" (fun () _ _ -> 1) ]
  in
  Ir.Nest.loop ~name:"outer"
    ~bounds:(fun () _ -> (0, 4))
    [ Ir.Nest.Nested inner; Ir.Nest.stmt ~name:"t" (fun () _ _ -> 1) ]

let compiled () = Hbc_core.Pipeline.compile_nest (sample_nest ())

let asm_structure () =
  let listing = Hbc_core.Pseudo_asm.generate (compiled ()) in
  check_bool "has instructions" true (Hbc_core.Pseudo_asm.instruction_count listing > 10);
  (* one poll per DOALL loop latch *)
  check_int "poll sites" 2 (Hbc_core.Pseudo_asm.poll_sites listing);
  check_bool "labels present" true
    (List.exists (fun l -> Hbc_core.Pseudo_asm.is_label_def l) listing)

let asm_line_classifiers () =
  check_bool "directive" true (Hbc_core.Pseudo_asm.is_directive "\t.text");
  check_bool "label" true (Hbc_core.Pseudo_asm.is_label_def ".L_header_0:");
  Alcotest.(check (option string)) "label name" (Some ".L_header_0")
    (Hbc_core.Pseudo_asm.label_name ".L_header_0:");
  check_bool "poll" true (Hbc_core.Pseudo_asm.is_poll "\tpoll");
  check_bool "not poll" false (Hbc_core.Pseudo_asm.is_poll "\tpollute rax")

let rfc_poll_elision () =
  let listing = Hbc_core.Pseudo_asm.generate (compiled ()) in
  let rf = Hbc_core.Rollforward.compile listing in
  check_int "source has no polls" 0 (Hbc_core.Pseudo_asm.poll_sites rf.Hbc_core.Rollforward.source);
  check_int "destination keeps polls" 2
    (Hbc_core.Pseudo_asm.poll_sites rf.Hbc_core.Rollforward.destination)

let rfc_table_bijective () =
  let listing = Hbc_core.Pseudo_asm.generate (compiled ()) in
  let rf = Hbc_core.Rollforward.compile listing in
  check_int "one entry per instruction"
    (Hbc_core.Pseudo_asm.instruction_count listing)
    (List.length rf.Hbc_core.Rollforward.table);
  List.iter
    (fun (src, dst) ->
      Alcotest.(check (option string)) "forward" (Some dst) (Hbc_core.Rollforward.lookup rf src);
      Alcotest.(check (option string)) "inverse" (Some src) (Hbc_core.Rollforward.lookup_rollback rf dst))
    rf.Hbc_core.Rollforward.table

let rfc_no_duplicate_labels () =
  let listing = Hbc_core.Pseudo_asm.generate (compiled ()) in
  let rf = Hbc_core.Rollforward.compile listing in
  (* Link both twins: every label definition must be unique. *)
  let labels =
    List.filter_map Hbc_core.Pseudo_asm.label_name
      (rf.Hbc_core.Rollforward.source @ rf.Hbc_core.Rollforward.destination)
    @ List.filter_map
        (fun line ->
          (* generated __RF labels prefixing instruction lines; pure label
             lines were already collected above *)
          if Hbc_core.Pseudo_asm.is_label_def line then None
          else
            match String.index_opt line ':' with
            | Some i when String.length line > 5 && String.sub line 0 5 = "__RF_" ->
                Some (String.sub line 0 i)
            | _ -> None)
        (rf.Hbc_core.Rollforward.source @ rf.Hbc_core.Rollforward.destination)
  in
  let sorted = List.sort_uniq String.compare labels in
  check_int "no duplicates" (List.length sorted) (List.length labels)

let rfc_dst_branch_targets_renamed () =
  let listing = Hbc_core.Pseudo_asm.generate (compiled ()) in
  let rf = Hbc_core.Rollforward.compile listing in
  (* every jump in the destination twin must target a __rf_dst label *)
  List.iter
    (fun line ->
      let t = String.trim line in
      let after_label =
        match String.index_opt t ':' with
        | Some i when String.length t > 5 && String.sub t 0 5 = "__RF_" ->
            String.sub t (i + 1) (String.length t - i - 1)
        | _ -> t
      in
      let tt = String.trim after_label in
      if String.length tt > 3 && (String.sub tt 0 3 = "jmp" || String.sub tt 0 3 = "jnz" || String.sub tt 0 3 = "jge")
      then
        check_bool (Printf.sprintf "renamed target in %s" tt) true
          (let has_suffix s suf =
             String.length s >= String.length suf
             && String.sub s (String.length s - String.length suf) (String.length suf) = suf
           in
           has_suffix tt "__rf_dst"))
    rf.Hbc_core.Rollforward.destination

let rfc_addresses_resolved () =
  let listing = Hbc_core.Pseudo_asm.generate (compiled ()) in
  let rf = Hbc_core.Rollforward.compile listing in
  List.iter
    (fun (src, dst) ->
      match (Hbc_core.Rollforward.lookup_address rf src, Hbc_core.Rollforward.lookup_address rf dst) with
      | Some a, Some b -> check_bool "dst after src image" true (b > a)
      | _ -> Alcotest.fail "unresolved label")
    rf.Hbc_core.Rollforward.table

let linker_modes () =
  let nest = compiled () in
  let polling = Hbc_core.Linker.link Hbc_core.Linker.Software_polling nest in
  check_int "polls kept" 2 polling.Hbc_core.Linker.polling_sites;
  check_bool "no rollforward" true (polling.Hbc_core.Linker.rollforward = None);
  let interrupts = Hbc_core.Linker.link Hbc_core.Linker.Interrupts nest in
  check_int "polls stripped" 0 interrupts.Hbc_core.Linker.polling_sites;
  check_bool "tables present" true (interrupts.Hbc_core.Linker.rollforward <> None)

let rfc_roundtrip_random =
  (* The RFC must preserve non-poll instructions verbatim (modulo the label
     prefix) for arbitrary synthetic listings. *)
  QCheck.Test.make ~name:"rollforward preserves instruction text" ~count:100
    QCheck.(small_list (int_range 0 3))
    (fun shape ->
      let listing =
        List.concat_map
          (fun k ->
            match k with
            | 0 -> [ "\tmov rax, rbx" ]
            | 1 -> [ "\tpoll" ]
            | 2 -> [ ".L_x:" ]
            | _ -> [ "\tadd rax, 1" ])
          shape
      in
      let rf = Hbc_core.Rollforward.compile listing in
      Hbc_core.Pseudo_asm.poll_sites rf.Hbc_core.Rollforward.source = 0
      && Hbc_core.Pseudo_asm.poll_sites rf.Hbc_core.Rollforward.destination
         = Hbc_core.Pseudo_asm.poll_sites listing)

let asm_to_string_roundtrip () =
  let listing = [ "\t.text"; "f:"; "\tmov rax, 1"; "\tpoll" ] in
  let s = Hbc_core.Pseudo_asm.to_string listing in
  Alcotest.(check (list string)) "join/split" listing
    (String.split_on_char '\n' s |> List.filter (fun l -> l <> ""));
  Alcotest.(check string) "generated labels" "__RF_SRC_7" (Hbc_core.Rollforward.src_label 7);
  Alcotest.(check string) "generated labels" "__RF_DST_7" (Hbc_core.Rollforward.dst_label 7)

let qt = QCheck_alcotest.to_alcotest

let suite =
  [
    Alcotest.test_case "asm: structure" `Quick asm_structure;
    Alcotest.test_case "asm: line classifiers" `Quick asm_line_classifiers;
    Alcotest.test_case "rfc: poll elision" `Quick rfc_poll_elision;
    Alcotest.test_case "rfc: table bijective" `Quick rfc_table_bijective;
    Alcotest.test_case "rfc: unique labels across twins" `Quick rfc_no_duplicate_labels;
    Alcotest.test_case "rfc: dst branch targets renamed" `Quick rfc_dst_branch_targets_renamed;
    Alcotest.test_case "rfc: addresses resolved" `Quick rfc_addresses_resolved;
    Alcotest.test_case "linker: both modes" `Quick linker_modes;
    qt rfc_roundtrip_random;
    Alcotest.test_case "asm: to_string + label mints" `Quick asm_to_string_roundtrip;
  ]
