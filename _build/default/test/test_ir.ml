(* Tests for the loop-nest IR: indexing, loop IDs, nesting tree, tail
   segments, contexts, validation. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* A reusable 3-deep nest: a > b > c, plus a sequential sibling s under a. *)
let deep_nest () =
  let c =
    Ir.Nest.loop ~name:"c" ~bounds:(fun () _ -> (0, 4)) [ Ir.Nest.stmt ~name:"w" (fun () _ _ -> 1) ]
  in
  let b =
    Ir.Nest.loop ~name:"b"
      ~bounds:(fun () _ -> (0, 3))
      [ Ir.Nest.Nested c; Ir.Nest.stmt ~name:"tail_b" (fun () _ _ -> 1) ]
  in
  let s =
    Ir.Nest.loop ~name:"s" ~doall:false
      ~bounds:(fun () _ -> (0, 2))
      [ Ir.Nest.stmt ~name:"sw" (fun () _ _ -> 1) ]
  in
  let a =
    Ir.Nest.loop ~name:"a"
      ~bounds:(fun () _ -> (0, 5))
      [
        Ir.Nest.stmt ~name:"head_a" (fun () _ _ -> 1);
        Ir.Nest.Nested b;
        Ir.Nest.Nested s;
        Ir.Nest.stmt ~name:"tail_a" (fun () _ _ -> 1);
      ]
  in
  (a, b, c, s)

let index_assigns_preorder () =
  let a, b, c, s = deep_nest () in
  let n = Ir.Nest.index a in
  check_int "count" 4 n;
  check_int "a" 0 a.Ir.Nest.ordinal;
  check_int "b" 1 b.Ir.Nest.ordinal;
  check_int "c" 2 c.Ir.Nest.ordinal;
  check_int "s" 3 s.Ir.Nest.ordinal

let ids_level_index () =
  let a, b, c, s = deep_nest () in
  ignore (Ir.Nest.index a);
  check_bool "a = (0,0)" true (Ir.Loop_id.equal a.Ir.Nest.id (Ir.Loop_id.make ~level:0 ~index:0));
  check_bool "b = (1,0)" true (Ir.Loop_id.equal b.Ir.Nest.id (Ir.Loop_id.make ~level:1 ~index:0));
  check_bool "c = (2,0)" true (Ir.Loop_id.equal c.Ir.Nest.id (Ir.Loop_id.make ~level:2 ~index:0));
  check_bool "s pruned" true (Ir.Loop_id.is_none s.Ir.Nest.id)

let sibling_index_increments () =
  let mk name = Ir.Nest.loop ~name ~bounds:(fun () _ -> (0, 2)) [ Ir.Nest.stmt ~name:"w" (fun () _ _ -> 1) ] in
  let l1 = mk "l1" and l2 = mk "l2" in
  let root =
    Ir.Nest.loop ~name:"r" ~bounds:(fun () _ -> (0, 2)) [ Ir.Nest.Nested l1; Ir.Nest.Nested l2 ]
  in
  ignore (Ir.Nest.index root);
  check_int "l1 index" 0 l1.Ir.Nest.id.Ir.Loop_id.index;
  check_int "l2 index" 1 l2.Ir.Nest.id.Ir.Loop_id.index;
  check_int "same level" l1.Ir.Nest.id.Ir.Loop_id.level l2.Ir.Nest.id.Ir.Loop_id.level

let doall_under_sequential_pruned () =
  let inner =
    Ir.Nest.loop ~name:"inner" ~bounds:(fun () _ -> (0, 2)) [ Ir.Nest.stmt ~name:"w" (fun () _ _ -> 1) ]
  in
  let seq =
    Ir.Nest.loop ~name:"seq" ~doall:false ~bounds:(fun () _ -> (0, 2)) [ Ir.Nest.Nested inner ]
  in
  let root = Ir.Nest.loop ~name:"root" ~bounds:(fun () _ -> (0, 2)) [ Ir.Nest.Nested seq ] in
  ignore (Ir.Nest.index root);
  check_bool "inner pruned" true (Ir.Loop_id.is_none inner.Ir.Nest.id);
  let issues = Ir.Validate.check root in
  check_bool "warning raised" true
    (List.exists (function Ir.Validate.Doall_under_sequential _ -> true | _ -> false) issues);
  check_bool "not an error" true (Ir.Validate.errors issues = [])

let tree_structure () =
  let a, b, c, _ = deep_nest () in
  let tree = Ir.Nesting_tree.build a in
  check_int "size" 4 (Ir.Nesting_tree.size tree);
  Alcotest.(check (list int)) "leaves" [ c.Ir.Nest.ordinal ] (Ir.Nesting_tree.leaves tree);
  Alcotest.(check (list int)) "ancestors of c" [ b.Ir.Nest.ordinal; a.Ir.Nest.ordinal ]
    (Ir.Nesting_tree.ancestors tree c.Ir.Nest.ordinal);
  check_bool "a ancestor of c" true
    (Ir.Nesting_tree.is_ancestor tree ~ancestor:a.Ir.Nest.ordinal ~of_:c.Ir.Nest.ordinal);
  check_bool "c not ancestor of a" false
    (Ir.Nesting_tree.is_ancestor tree ~ancestor:c.Ir.Nest.ordinal ~of_:a.Ir.Nest.ordinal);
  check_int "max level" 2 (Ir.Nesting_tree.max_level tree)

let tail_segments () =
  let a, b, _, s = deep_nest () in
  ignore (Ir.Nest.index a);
  let tail_after_b = Ir.Nest.tail_segments a ~after:b in
  check_int "b tail: s and tail_a" 2 (List.length tail_after_b);
  let tail_after_s = Ir.Nest.tail_segments a ~after:s in
  check_int "s tail: tail_a" 1 (List.length tail_after_s);
  match tail_after_s with
  | [ Ir.Nest.Stmt st ] -> Alcotest.(check string) "name" "tail_a" st.Ir.Nest.stmt_name
  | _ -> Alcotest.fail "expected single stmt"

let tail_segments_missing () =
  let a, _, c, _ = deep_nest () in
  ignore (Ir.Nest.index a);
  Alcotest.check_raises "not a direct child" Not_found (fun () ->
      ignore (Ir.Nest.tail_segments a ~after:c))

let ctx_copy_shares_locals () =
  let set =
    [| Ir.Ctx.make ~ordinal:0 ~spec:{ Ir.Locals.nfloats = 1; nints = 0 } |]
  in
  set.(0).Ir.Ctx.lo <- 5;
  set.(0).Ir.Ctx.locals.Ir.Locals.floats.(0) <- 3.0;
  let copy = Ir.Ctx.copy_set set in
  copy.(0).Ir.Ctx.lo <- 9;
  check_int "original iv frozen" 5 set.(0).Ir.Ctx.lo;
  copy.(0).Ir.Ctx.locals.Ir.Locals.floats.(0) <- 7.0;
  Alcotest.(check (float 0.0)) "locals shared" 7.0 set.(0).Ir.Ctx.locals.Ir.Locals.floats.(0)

let ctx_refresh_subtree () =
  let specs = [| { Ir.Locals.nfloats = 1; nints = 0 }; { Ir.Locals.nfloats = 2; nints = 1 } |] in
  let set = [| Ir.Ctx.make ~ordinal:0 ~spec:specs.(0); Ir.Ctx.make ~ordinal:1 ~spec:specs.(1) |] in
  set.(1).Ir.Ctx.locals.Ir.Locals.floats.(0) <- 4.0;
  let copy = Ir.Ctx.copy_set set in
  Ir.Ctx.refresh_subtree copy ~ordinals:[ 1 ] ~specs;
  check_bool "fresh locals" true (copy.(1).Ir.Ctx.locals != set.(1).Ir.Ctx.locals);
  Alcotest.(check (float 0.0)) "zeroed" 0.0 copy.(1).Ir.Ctx.locals.Ir.Locals.floats.(0);
  check_bool "untouched ordinal still shared" true (copy.(0).Ir.Ctx.locals == set.(0).Ir.Ctx.locals)

let ctx_remaining () =
  let c = Ir.Ctx.make ~ordinal:0 ~spec:Ir.Locals.no_spec in
  Ir.Ctx.set_slice c ~lo:3 ~hi:10;
  check_int "remaining after current" 6 (Ir.Ctx.remaining c);
  Ir.Ctx.set_slice c ~lo:9 ~hi:10;
  check_int "none left" 0 (Ir.Ctx.remaining c)

let validate_empty_body () =
  let bad = Ir.Nest.loop ~name:"bad" ~bounds:(fun () _ -> (0, 1)) [] in
  ignore (Ir.Nest.index bad);
  let issues = Ir.Validate.check bad in
  check_bool "empty body is an error" true
    (List.exists (function Ir.Validate.Empty_body _ -> true | _ -> false)
       (Ir.Validate.errors issues))

let program_single_nest () =
  let l =
    Ir.Nest.loop ~name:"only" ~bounds:(fun _ _ -> (0, 1)) [ Ir.Nest.stmt ~name:"w" (fun _ _ _ -> 1) ]
  in
  let p =
    Ir.Program.v ~name:"p" ~make_env:(fun () -> ()) ~nests:[ l ]
      ~driver:(fun _ cpu -> cpu.Ir.Program.exec l)
      ~fingerprint:(fun _ -> 0.0)
      ()
  in
  check_bool "found" true (Ir.Program.single_nest p == l)

let loop_id_basics () =
  let id = Ir.Loop_id.make ~level:2 ~index:3 in
  Alcotest.(check string) "printing" "(2, 3)" (Ir.Loop_id.to_string id);
  check_bool "ordering" true (Ir.Loop_id.compare (Ir.Loop_id.make ~level:1 ~index:9) id < 0);
  check_bool "hash distinct" true (Ir.Loop_id.hash id <> Ir.Loop_id.hash Ir.Loop_id.none)

let locals_helpers () =
  let l = Ir.Locals.create { Ir.Locals.nfloats = 2; nints = 1 } in
  l.Ir.Locals.floats.(0) <- 3.0;
  l.Ir.Locals.ints.(0) <- 7;
  let c = Ir.Locals.copy l in
  c.Ir.Locals.floats.(0) <- 9.0;
  Alcotest.(check (float 0.0)) "copy is deep" 3.0 l.Ir.Locals.floats.(0);
  check_bool "equal on same content" true (Ir.Locals.equal l (Ir.Locals.copy l));
  Ir.Locals.clear l;
  Alcotest.(check (float 0.0)) "cleared" 0.0 l.Ir.Locals.floats.(0);
  check_int "cleared int" 0 l.Ir.Locals.ints.(0)

let loop_of_ordinal_lookup () =
  let a, b, c, _ = deep_nest () in
  ignore (Ir.Nest.index a);
  check_bool "finds b" true (Ir.Nest.loop_of_ordinal a b.Ir.Nest.ordinal == b);
  check_bool "finds c" true (Ir.Nest.loop_of_ordinal a c.Ir.Nest.ordinal == c);
  Alcotest.check_raises "missing ordinal" Not_found (fun () ->
      ignore (Ir.Nest.loop_of_ordinal a 99))

let suite =
  [
    Alcotest.test_case "index: preorder ordinals" `Quick index_assigns_preorder;
    Alcotest.test_case "index: (level, index) ids" `Quick ids_level_index;
    Alcotest.test_case "index: sibling indices" `Quick sibling_index_increments;
    Alcotest.test_case "prune: DOALL under sequential" `Quick doall_under_sequential_pruned;
    Alcotest.test_case "tree: structure queries" `Quick tree_structure;
    Alcotest.test_case "tail segments after child" `Quick tail_segments;
    Alcotest.test_case "tail segments: not a child" `Quick tail_segments_missing;
    Alcotest.test_case "ctx: copy freezes ivs, shares locals" `Quick ctx_copy_shares_locals;
    Alcotest.test_case "ctx: refresh subtree" `Quick ctx_refresh_subtree;
    Alcotest.test_case "ctx: remaining" `Quick ctx_remaining;
    Alcotest.test_case "validate: empty body" `Quick validate_empty_body;
    Alcotest.test_case "program: single nest" `Quick program_single_nest;
    Alcotest.test_case "loop ids" `Quick loop_id_basics;
    Alcotest.test_case "locals helpers" `Quick locals_helpers;
    Alcotest.test_case "loop_of_ordinal" `Quick loop_of_ordinal_lookup;
  ]
