(* Tests for the benchmark suite: generator invariants and, for every
   registered benchmark, agreement of the HBC and OpenMP executors with the
   sequential reference at a reduced scale. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let small = 0.12

(* ------------------------- matrix generator ----------------------- *)

let csr_invariants (m : Workloads.Matrix_gen.csr) =
  let n = m.Workloads.Matrix_gen.n in
  check_int "row_ptr length" (n + 1) (Array.length m.Workloads.Matrix_gen.row_ptr);
  check_int "starts at 0" 0 m.Workloads.Matrix_gen.row_ptr.(0);
  for i = 0 to n - 1 do
    check_bool "monotone" true
      (m.Workloads.Matrix_gen.row_ptr.(i) <= m.Workloads.Matrix_gen.row_ptr.(i + 1))
  done;
  check_int "col_ind sized" (Workloads.Matrix_gen.nnz m) (Array.length m.Workloads.Matrix_gen.col_ind);
  Array.iter (fun c -> check_bool "col in range" true (c >= 0 && c < n)) m.Workloads.Matrix_gen.col_ind

let arrowhead_pattern () =
  let m = Workloads.Matrix_gen.arrowhead ~n:500 in
  csr_invariants m;
  check_int "first row dense" 500 (Workloads.Matrix_gen.nnz_of_row m 0);
  for i = 1 to 499 do
    check_int "other rows: col0 + diagonal" 2 (Workloads.Matrix_gen.nnz_of_row m i)
  done;
  check_int "total" (500 + (2 * 499)) (Workloads.Matrix_gen.nnz m)

let powerlaw_skew_and_avg () =
  let n = 4_000 in
  let m = Workloads.Matrix_gen.powerlaw ~reverse:false ~n ~avg_nnz:20 ~seed:3 in
  csr_invariants m;
  let avg = Float.of_int (Workloads.Matrix_gen.nnz m) /. Float.of_int n in
  check_bool "average near target" true (avg > 12.0 && avg < 30.0);
  check_bool "sorted descending" true
    (Workloads.Matrix_gen.nnz_of_row m 0 >= Workloads.Matrix_gen.nnz_of_row m (n - 1));
  check_bool "heavy head" true (Workloads.Matrix_gen.nnz_of_row m 0 > 40);
  let r = Workloads.Matrix_gen.powerlaw ~reverse:true ~n ~avg_nnz:20 ~seed:3 in
  check_bool "reverse ascending" true
    (Workloads.Matrix_gen.nnz_of_row r 0 <= Workloads.Matrix_gen.nnz_of_row r (n - 1))

let random_uniform_rows () =
  let m = Workloads.Matrix_gen.random_uniform ~n:1_000 ~nnz_per_row:16 ~seed:4 in
  csr_invariants m;
  for i = 0 to 999 do
    check_int "uniform" 16 (Workloads.Matrix_gen.nnz_of_row m i)
  done

let dominant_diagonal () =
  let m0 = Workloads.Matrix_gen.powerlaw ~reverse:false ~n:300 ~avg_nnz:6 ~seed:5 in
  let m = Workloads.Matrix_gen.with_dominant_diagonal m0 in
  csr_invariants m;
  for i = 0 to 299 do
    let lo = m.Workloads.Matrix_gen.row_ptr.(i) and hi = m.Workloads.Matrix_gen.row_ptr.(i + 1) in
    let diag = ref 0.0 and off = ref 0.0 in
    for k = lo to hi - 1 do
      if m.Workloads.Matrix_gen.col_ind.(k) = i then diag := !diag +. m.Workloads.Matrix_gen.vals.(k)
      else off := !off +. Float.abs m.Workloads.Matrix_gen.vals.(k)
    done;
    check_bool "dominant" true (!diag > !off)
  done

let spmv_program_matches_reference () =
  let program =
    Workloads.Spmv.make_program ~name:"ref-check" ~make_matrix:(fun () ->
        Workloads.Matrix_gen.powerlaw ~reverse:false ~n:2_000 ~avg_nnz:10 ~seed:6)
  in
  let env = program.Ir.Program.make_env () in
  let expected = Array.make env.Workloads.Spmv.matrix.Workloads.Matrix_gen.n 0.0 in
  Workloads.Matrix_gen.spmv_reference env.Workloads.Spmv.matrix ~x:env.Workloads.Spmv.x ~y:expected;
  let r = Baselines.Serial_exec.run_program program in
  let env2 = program.Ir.Program.make_env () in
  Workloads.Matrix_gen.spmv_reference env2.Workloads.Spmv.matrix ~x:env2.Workloads.Spmv.x ~y:env2.Workloads.Spmv.y;
  Alcotest.(check (float 1e-6)) "checksums equal"
    (Workloads.Workload_util.checksum env2.Workloads.Spmv.y)
    r.Sim.Run_result.fingerprint

(* -------------------------- tensor / graph ------------------------ *)

let tensor_invariants () =
  let t = Workloads.Tensor.generate ~ni:800 ~avg_fibers:5 ~avg_nnz:7 ~nk:512 ~seed:7 in
  check_int "fiber_ptr len" 801 (Array.length t.Workloads.Tensor.fiber_ptr);
  check_bool "fibers positive" true (Workloads.Tensor.nfibers t > 800);
  check_bool "nnz positive" true (Workloads.Tensor.nnz t > Workloads.Tensor.nfibers t / 2);
  Array.iter (fun k -> check_bool "k in range" true (k >= 0 && k < 512)) t.Workloads.Tensor.nnz_k;
  (* reference agrees with the ttv program *)
  let v = Array.init 4096 (fun i -> Float.of_int (i mod 5) /. 5.0) in
  ignore v

let graph_invariants () =
  let g = Workloads.Graph.powerlaw ~n:3_000 ~avg_deg:10 ~alpha:1.6 ~seed:8 in
  check_int "in_ptr len" 3_001 (Array.length g.Workloads.Graph.in_ptr);
  Array.iter (fun s -> check_bool "src in range" true (s >= 0 && s < 3_000)) g.Workloads.Graph.in_src;
  Array.iter (fun d -> check_bool "outdeg >= 1" true (d >= 1)) g.Workloads.Graph.out_deg;
  let avg = Float.of_int (Workloads.Graph.edges g) /. 3_000.0 in
  check_bool "avg degree near target" true (avg > 6.0 && avg < 15.0);
  let maxdeg = ref 0 in
  for v = 0 to 2_999 do
    maxdeg := Stdlib.max !maxdeg (Workloads.Graph.in_degree g v)
  done;
  check_bool "heavy tail" true (!maxdeg > 50)

let mandelbrot_escape () =
  let v = Workloads.Mandelbrot.input2 ~scale:0.2 in
  (* far outside the set: escapes immediately; the cap binds inside *)
  check_bool "edge pixel escapes fast" true
    (Workloads.Mandelbrot.escape_iterations v ~px:0 ~py:0 < 4);
  let v1 = Workloads.Mandelbrot.input1 ~scale:0.2 in
  let deep = Workloads.Mandelbrot.escape_iterations v1 ~px:(v1.Workloads.Mandelbrot.width / 2)
      ~py:(v1.Workloads.Mandelbrot.height / 2)
  in
  check_bool "zoomed pixel is expensive" true (deep > 50)

(* ------------------ every benchmark vs sequential ----------------- *)

let registry_complete () =
  check_int "18 benchmarks" 18 (List.length Workloads.Registry.all);
  check_int "13 irregular" 13 (List.length (Workloads.Registry.irregular_set ()));
  check_int "5 regular" 5 (List.length (Workloads.Registry.regular_set ()));
  check_int "8 in TPAL suite" 8 (List.length (Workloads.Registry.tpal_set ()));
  check_int "5 manual irregular" 5 (List.length (Workloads.Registry.manual_irregular_set ()))

let benchmark_case (entry : Workloads.Registry.entry) =
  Alcotest.test_case entry.Workloads.Registry.name `Slow (fun () ->
      let (Ir.Program.Any p) = entry.Workloads.Registry.make small in
      let seq = Baselines.Serial_exec.run_program p in
      check_bool "nonzero work" true (seq.Sim.Run_result.work_cycles > 0);
      let hbc =
        Hbc_core.Executor.run { Hbc_core.Rt_config.default with workers = 16 } p
      in
      check_bool "hbc output matches"
        true
        (Sim.Run_result.fingerprints_close ~tol:1e-7 seq hbc);
      let omp = Baselines.Openmp.run_program (Baselines.Openmp.dynamic ~workers:16 ()) p in
      check_bool "omp output matches" true (Sim.Run_result.fingerprints_close ~tol:1e-7 seq omp);
      let tpal =
        Hbc_core.Executor.run
          { (Hbc_core.Rt_config.tpal ~chunk:entry.Workloads.Registry.tpal_chunk) with workers = 16 }
          p
      in
      check_bool "tpal output matches" true (Sim.Run_result.fingerprints_close ~tol:1e-7 seq tpal))

let registry_metadata_sane () =
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      check_bool (e.Workloads.Registry.name ^ " chunk positive") true
        (e.Workloads.Registry.tpal_chunk >= 1);
      check_bool (e.Workloads.Registry.name ^ " source named") true
        (String.length e.Workloads.Registry.source > 0);
      (* names resolve through find *)
      check_bool "find roundtrip" true
        (Workloads.Registry.find e.Workloads.Registry.name == e))
    Workloads.Registry.all;
  check_bool "unknown raises" true
    (try
       ignore (Workloads.Registry.find "no-such-benchmark");
       false
     with Not_found -> true)

let scaled_inputs_shrink () =
  let (Ir.Program.Any small_p) = (Workloads.Registry.find "plus-reduce-array").make 0.05 in
  let (Ir.Program.Any big_p) = (Workloads.Registry.find "plus-reduce-array").make 0.2 in
  let w p = (Baselines.Serial_exec.run_program p).Sim.Run_result.work_cycles in
  check_bool "scale grows work" true (w big_p > 2 * w small_p)

let suite =
  [
    Alcotest.test_case "matrix: arrowhead pattern" `Quick arrowhead_pattern;
    Alcotest.test_case "matrix: powerlaw skew" `Quick powerlaw_skew_and_avg;
    Alcotest.test_case "matrix: uniform rows" `Quick random_uniform_rows;
    Alcotest.test_case "matrix: dominant diagonal" `Quick dominant_diagonal;
    Alcotest.test_case "spmv program = reference product" `Quick spmv_program_matches_reference;
    Alcotest.test_case "tensor generator invariants" `Quick tensor_invariants;
    Alcotest.test_case "graph generator invariants" `Quick graph_invariants;
    Alcotest.test_case "mandelbrot escape behaviour" `Quick mandelbrot_escape;
    Alcotest.test_case "registry sets" `Quick registry_complete;
    Alcotest.test_case "registry metadata" `Quick registry_metadata_sane;
    Alcotest.test_case "scale parameter" `Quick scaled_inputs_shrink;
  ]
  @ List.map benchmark_case Workloads.Registry.all
