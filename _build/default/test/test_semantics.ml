(* Semantic tests: each benchmark's parallel nest computes the right thing,
   checked against small independent reference implementations (not against
   the nests themselves). *)

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let scale = 0.08

let run_seq p = Baselines.Serial_exec.run_program p

(* floyd-warshall against a tiny hand-checked instance via a second
   implementation over the same generated input. *)
let fw_reference () =
  let p = Workloads.Floyd_warshall.program ~scale:0.02 in
  let e = p.Ir.Program.make_env () in
  let n = e.Workloads.Floyd_warshall.n in
  let d = Array.copy e.Workloads.Floyd_warshall.dist in
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let via = d.((i * n) + k) +. d.((k * n) + j) in
        if via < d.((i * n) + j) then d.((i * n) + j) <- via
      done
    done
  done;
  let expected =
    Workloads.Workload_util.checksum (Array.map (fun x -> Workloads.Workload_util.fmin x 1.0e9) d)
  in
  let r = run_seq p in
  Alcotest.(check (float 1e-6)) "fingerprints" expected r.Sim.Run_result.fingerprint;
  (* triangle inequality holds in the result *)
  let e2 = p.Ir.Program.make_env () in
  let cpu_work = ref 0 in
  let cpu =
    {
      Ir.Program.exec = (fun nest -> Baselines.Serial_exec.run_nest ~charge:(fun c -> cpu_work := !cpu_work + c) e2 nest);
      advance = (fun _ -> ());
    }
  in
  p.Ir.Program.driver e2 cpu;
  let dist = e2.Workloads.Floyd_warshall.dist in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      for k = 0 to Stdlib.min (n - 1) 10 do
        if dist.((i * n) + j) > dist.((i * n) + k) +. dist.((k * n) + j) +. 1e-6 then ok := false
      done
    done
  done;
  check_bool "triangle inequality" true !ok

(* ttv against Tensor.ttv_reference *)
let ttv_reference () =
  let p = Workloads.Ttv.program ~scale:0.05 in
  let e = p.Ir.Program.make_env () in
  let expected = Array.make (Workloads.Tensor.nfibers e.Workloads.Ttv.tensor) 0.0 in
  Workloads.Tensor.ttv_reference e.Workloads.Ttv.tensor ~v:e.Workloads.Ttv.v ~out:expected;
  let r = run_seq p in
  Alcotest.(check (float 1e-6)) "checksum" (Workloads.Workload_util.checksum expected)
    r.Sim.Run_result.fingerprint

(* bfs: parents define a forest rooted at 0, consistent with edges, and
   every vertex reachable by reference BFS is visited. *)
let bfs_reference () =
  let p = Workloads.Graph_kernels.bfs ~scale:0.08 in
  let e = p.Ir.Program.make_env () in
  let g = e.Workloads.Graph_kernels.g in
  (* reference forward BFS over the reversed edges (in_src gives in-edges:
     src -> dst traversal needs out-adjacency; build it) *)
  let n = g.Workloads.Graph.n in
  let out_adj = Array.make n [] in
  for dst = 0 to n - 1 do
    for k = g.Workloads.Graph.in_ptr.(dst) to g.Workloads.Graph.in_ptr.(dst + 1) - 1 do
      let src = g.Workloads.Graph.in_src.(k) in
      out_adj.(src) <- dst :: out_adj.(src)
    done
  done;
  let reachable = Array.make n false in
  reachable.(0) <- true;
  let q = Queue.create () in
  Queue.add 0 q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    List.iter
      (fun w ->
        if not reachable.(w) then begin
          reachable.(w) <- true;
          Queue.add w q
        end)
      out_adj.(v)
  done;
  (* run the benchmark program sequentially *)
  let e2 = p.Ir.Program.make_env () in
  let cpu =
    {
      Ir.Program.exec = (fun nest -> Baselines.Serial_exec.run_nest ~charge:ignore e2 nest);
      advance = ignore;
    }
  in
  p.Ir.Program.driver e2 cpu;
  let parent = e2.Workloads.Graph_kernels.parent in
  let bad = ref 0 in
  for v = 0 to n - 1 do
    (* visited iff reachable (the benchmark caps rounds at 24; power-law
       diameters are far below that) *)
    if reachable.(v) <> (parent.(v) >= 0) then incr bad;
    if parent.(v) >= 0 && v <> 0 then begin
      (* the parent edge must exist: parent.(v) is an in-neighbor of v *)
      let ok = ref false in
      for k = g.Workloads.Graph.in_ptr.(v) to g.Workloads.Graph.in_ptr.(v + 1) - 1 do
        if g.Workloads.Graph.in_src.(k) = parent.(v) then ok := true
      done;
      if not !ok then incr bad
    end
  done;
  check_int "visited = reachable, parents are edges" 0 !bad

(* sssp: distances match Dijkstra on the same graph (Bellman-Ford rounds
   are capped, so compare against reference rounds, not full convergence). *)
let sssp_reference () =
  let p = Workloads.Graph_kernels.sssp ~scale:0.08 in
  let e = p.Ir.Program.make_env () in
  let g = e.Workloads.Graph_kernels.g in
  let n = g.Workloads.Graph.n in
  (* reference synchronous Bellman-Ford with the same number of rounds *)
  let dist = Array.make n Float.infinity in
  dist.(0) <- 0.0;
  let next = Array.make n Float.infinity in
  let rounds = ref 0 in
  let changed = ref 1 in
  while !rounds < 8 && !changed > 0 do
    changed := 0;
    for dst = 0 to n - 1 do
      let best = ref dist.(dst) in
      for k = g.Workloads.Graph.in_ptr.(dst) to g.Workloads.Graph.in_ptr.(dst + 1) - 1 do
        let cand = dist.(g.Workloads.Graph.in_src.(k)) +. g.Workloads.Graph.weights.(k) in
        if cand < !best then best := cand
      done;
      if !best < dist.(dst) then incr changed;
      next.(dst) <- !best
    done;
    Array.blit next 0 dist 0 n;
    incr rounds
  done;
  let expected =
    Workloads.Workload_util.checksum (Array.map (fun d -> Workloads.Workload_util.fmin d 1.0e9) dist)
  in
  let r = run_seq p in
  Alcotest.(check (float 1e-6)) "distances" expected r.Sim.Run_result.fingerprint

(* cc: labels are per-component minima after convergence on a small graph. *)
let cc_reference () =
  let p = Workloads.Graph_kernels.cc ~scale:0.05 in
  let e = p.Ir.Program.make_env () in
  let cpu =
    {
      Ir.Program.exec = (fun nest -> Baselines.Serial_exec.run_nest ~charge:ignore e nest);
      advance = ignore;
    }
  in
  p.Ir.Program.driver e cpu;
  let g = e.Workloads.Graph_kernels.g in
  let label = e.Workloads.Graph_kernels.label in
  (* stability: one more synchronous min-propagation round changes nothing
     (the driver ran to quiescence or the cap; check local consistency) *)
  let violations = ref 0 in
  for dst = 0 to g.Workloads.Graph.n - 1 do
    for k = g.Workloads.Graph.in_ptr.(dst) to g.Workloads.Graph.in_ptr.(dst + 1) - 1 do
      let src = g.Workloads.Graph.in_src.(k) in
      if e.Workloads.Graph_kernels.round < 10 && label.(src) < label.(dst) then incr violations
    done
  done;
  check_int "labels stable under propagation" 0 !violations

(* pr: ranks are positive and the update equation holds for spot vertices. *)
let pr_reference () =
  let p = Workloads.Graph_kernels.pr ~scale:0.05 in
  let e = p.Ir.Program.make_env () in
  let cpu =
    {
      Ir.Program.exec = (fun nest -> Baselines.Serial_exec.run_nest ~charge:ignore e nest);
      advance = ignore;
    }
  in
  p.Ir.Program.driver e cpu;
  let g = e.Workloads.Graph_kernels.g in
  check_bool "all ranks positive" true (Array.for_all (fun r -> r > 0.0) e.Workloads.Graph_kernels.rank);
  (* recompute one more pull for a handful of vertices from rank (equals
     rank_next's producer state only right after a round; instead verify
     ranks are bounded and not uniform) *)
  let mn = Array.fold_left Float.min Float.infinity e.Workloads.Graph_kernels.rank in
  let mx = Array.fold_left Float.max Float.neg_infinity e.Workloads.Graph_kernels.rank in
  check_bool "rank spread (irregular graph)" true (mx > 5.0 *. mn);
  check_bool "base rank floor" true (mn >= 0.15 /. Float.of_int g.Workloads.Graph.n -. 1e-12)

(* kmeans: every point is assigned to its nearest center (one extra pass
   with the final centers can relabel; check against the centers used for
   the final assignment round instead: assignments are internally
   consistent and counts sum to n). *)
let kmeans_reference () =
  let p = Workloads.Kmeans.program ~scale:0.05 in
  let e = p.Ir.Program.make_env () in
  let cpu =
    {
      Ir.Program.exec = (fun nest -> Baselines.Serial_exec.run_nest ~charge:ignore e nest);
      advance = ignore;
    }
  in
  p.Ir.Program.driver e cpu;
  let total = Array.fold_left ( + ) 0 e.Workloads.Kmeans.counts in
  check_int "counts sum to n" e.Workloads.Kmeans.n total;
  check_bool "assignments in range" true
    (Array.for_all (fun a -> a >= 0 && a < e.Workloads.Kmeans.k) e.Workloads.Kmeans.assignment)

(* cg: the residual norm decreases over iterations on the diagonally
   dominant system. *)
let cg_residual_decreases () =
  let p = Workloads.Cg.program ~scale:0.05 in
  let e = p.Ir.Program.make_env () in
  let first_rho = ref None and last_rho = ref 0.0 in
  let cpu =
    {
      Ir.Program.exec = (fun nest -> Baselines.Serial_exec.run_nest ~charge:ignore e nest);
      advance = ignore;
    }
  in
  p.Ir.Program.driver e cpu;
  last_rho := e.Workloads.Cg.rho;
  (match !first_rho with None -> first_rho := Some e.Workloads.Cg.rho | Some _ -> ());
  let n = e.Workloads.Cg.matrix.Workloads.Matrix_gen.n in
  let initial = Float.of_int n /. 3.0 (* E[x^2]=1/3 for U(0,1) entries *) in
  check_bool "residual shrank vs initial scale" true (!last_rho < initial)

(* srad smooths: variance of the image decreases. *)
let srad_smooths () =
  let p = Workloads.Srad.program ~scale:0.03 in
  let variance img =
    let n = Float.of_int (Array.length img) in
    let mean = Array.fold_left ( +. ) 0.0 img /. n in
    Array.fold_left (fun acc v -> acc +. ((v -. mean) *. (v -. mean))) 0.0 img /. n
  in
  let e = p.Ir.Program.make_env () in
  let before = variance e.Workloads.Srad.img in
  let cpu =
    {
      Ir.Program.exec = (fun nest -> Baselines.Serial_exec.run_nest ~charge:ignore e nest);
      advance = ignore;
    }
  in
  p.Ir.Program.driver e cpu;
  let after = variance e.Workloads.Srad.img in
  check_bool "diffusion reduced variance" true (after < before)

(* plus-reduce: exact expected sum. *)
let plus_reduce_exact () =
  let p = Workloads.Plus_reduce_array.program ~scale:0.02 in
  let e = p.Ir.Program.make_env () in
  let expected = Array.fold_left ( +. ) 0.0 e.Workloads.Plus_reduce_array.data in
  let r = run_seq p in
  Alcotest.(check (float 1e-6)) "sum" expected r.Sim.Run_result.fingerprint

(* mandelbrot is deterministic across executors at pixel granularity. *)
let mandelbrot_pixels_match () =
  let view = Workloads.Mandelbrot.input2 ~scale:0.15 in
  let p = Workloads.Mandelbrot.program_of_view ~name:"px" view in
  let seq = run_seq p in
  let hbc = Hbc_core.Executor.run { Hbc_core.Rt_config.default with workers = 8 } p in
  Alcotest.(check (float 0.0)) "bit-identical pixels" seq.Sim.Run_result.fingerprint
    hbc.Sim.Run_result.fingerprint

let hybrid_picks_and_matches () =
  let regular = Workloads.Kmeans.program ~scale in
  let irregular = Workloads.Spmv.powerlaw ~scale in
  check_bool "regular -> static" true (Baselines.Hybrid.chosen regular = `Static);
  check_bool "irregular -> heartbeat" true (Baselines.Hybrid.chosen irregular = `Heartbeat);
  let seq = run_seq irregular in
  let h = Baselines.Hybrid.run_program irregular in
  check_bool "hybrid output valid" true (Sim.Run_result.fingerprints_close seq h)

let suite =
  [
    Alcotest.test_case "floyd-warshall = reference APSP" `Slow fw_reference;
    Alcotest.test_case "ttv = reference contraction" `Quick ttv_reference;
    Alcotest.test_case "bfs = reference reachability" `Slow bfs_reference;
    Alcotest.test_case "sssp = reference Bellman-Ford" `Slow sssp_reference;
    Alcotest.test_case "cc labels stable" `Quick cc_reference;
    Alcotest.test_case "pr ranks sane" `Quick pr_reference;
    Alcotest.test_case "kmeans assignments consistent" `Quick kmeans_reference;
    Alcotest.test_case "cg residual decreases" `Quick cg_residual_decreases;
    Alcotest.test_case "srad smooths" `Quick srad_smooths;
    Alcotest.test_case "plus-reduce exact sum" `Quick plus_reduce_exact;
    Alcotest.test_case "mandelbrot pixels bit-identical" `Quick mandelbrot_pixels_match;
    Alcotest.test_case "hybrid scheduler picks and validates" `Quick hybrid_picks_and_matches;
  ]
