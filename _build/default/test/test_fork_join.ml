(* Tests for the recursive fork-join heartbeat extension. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* Naive Fibonacci with per-call leaf work: the canonical fork-join
   recursion with no manual granularity control. *)
let rec fib ctx n =
  if n < 2 then begin
    Hbc_core.Fork_join.advance ctx 25;
    n
  end
  else begin
    let a, b = Hbc_core.Fork_join.fork2 ctx (fun c -> fib c (n - 1)) (fun c -> fib c (n - 2)) in
    Hbc_core.Fork_join.advance ctx 12;
    a + b
  end

let rec fib_ref n = if n < 2 then n else fib_ref (n - 1) + fib_ref (n - 2)

(* Divide-and-conquer sum over an array slice. *)
let rec dc_sum ctx (data : float array) lo hi =
  if hi - lo <= 16 then begin
    let acc = ref 0.0 in
    for i = lo to hi - 1 do
      acc := !acc +. data.(i)
    done;
    Hbc_core.Fork_join.advance_bytes ctx ~compute:(9 * (hi - lo)) ~bytes:(8 * (hi - lo));
    !acc
  end
  else begin
    let mid = (lo + hi) / 2 in
    let a, b =
      Hbc_core.Fork_join.fork2 ctx
        (fun c -> dc_sum c data lo mid)
        (fun c -> dc_sum c data mid hi)
    in
    Hbc_core.Fork_join.advance ctx 8;
    a +. b
  end

let fib_correct_and_parallel () =
  let n = 21 in
  let result = ref 0 in
  let r = Hbc_core.Fork_join.run (fun ctx -> result := fib ctx n) in
  check_int "value" (fib_ref n) !result;
  check_bool "work recorded" true (r.Hbc_core.Fork_join.work_cycles > 0);
  check_bool "parallel" true (r.Hbc_core.Fork_join.makespan < r.Hbc_core.Fork_join.work_cycles);
  (* The heartbeat amortization claim: almost all forks stay sequential. *)
  check_bool "forks mostly sequential" true
    (r.Hbc_core.Fork_join.sequential_forks > 20 * r.Hbc_core.Fork_join.promoted_forks);
  check_bool "but some promoted" true (r.Hbc_core.Fork_join.promoted_forks > 0)

let dc_sum_matches_sequential () =
  let n = 150_000 in
  let data = Array.init n (fun i -> Float.of_int (i mod 91) /. 91.0) in
  let expected = Array.fold_left ( +. ) 0.0 data in
  let result = ref 0.0 in
  let r = Hbc_core.Fork_join.run (fun ctx -> result := dc_sum ctx data 0 n) in
  Alcotest.(check (float 1e-6)) "sum" expected !result;
  check_bool "speedup > 4x" true
    (Float.of_int r.Hbc_core.Fork_join.work_cycles
     /. Float.of_int r.Hbc_core.Fork_join.makespan
    > 4.0)

let deterministic () =
  let go () =
    let result = ref 0 in
    let r = Hbc_core.Fork_join.run (fun ctx -> result := fib ctx 18) in
    (r.Hbc_core.Fork_join.makespan, !result)
  in
  let a = go () and b = go () in
  check_bool "identical" true (a = b)

let no_promotion_stays_serial () =
  let cfg = { Hbc_core.Rt_config.default with promotion = false; workers = 4 } in
  let result = ref 0 in
  let r = Hbc_core.Fork_join.run ~cfg (fun ctx -> result := fib ctx 16) in
  check_int "value" (fib_ref 16) !result;
  check_int "no tasks" 0 r.Hbc_core.Fork_join.metrics.Sim.Metrics.tasks_spawned

let worker_sweep () =
  List.iter
    (fun w ->
      let cfg = { Hbc_core.Rt_config.default with workers = w } in
      let result = ref 0.0 in
      let data = Array.init 5_000 (fun i -> Float.of_int i) in
      ignore (Hbc_core.Fork_join.run ~cfg (fun ctx -> result := dc_sum ctx data 0 5_000));
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "%d workers" w)
        (Array.fold_left ( +. ) 0.0 data)
        !result)
    [ 1; 2; 16; 64 ]

let fib_values =
  QCheck.Test.make ~name:"fork-join fib equals reference for random n" ~count:12
    QCheck.(int_range 3 17)
    (fun n ->
      let result = ref 0 in
      ignore (Hbc_core.Fork_join.run (fun ctx -> result := fib ctx n));
      !result = fib_ref n)

let amortization_bound () =
  (* Heartbeat guarantee: promotions are bounded by delivered beats (each
     detected beat promotes at most one fork per worker). *)
  let r =
    Hbc_core.Fork_join.run (fun ctx ->
        ignore (dc_sum ctx (Array.make 120_000 1.0) 0 120_000))
  in
  let m = r.Hbc_core.Fork_join.metrics in
  check_bool "promotions <= detected beats" true
    (r.Hbc_core.Fork_join.promoted_forks <= m.Sim.Metrics.heartbeats_detected);
  check_bool "tasks = promotions" true
    (m.Sim.Metrics.tasks_spawned = r.Hbc_core.Fork_join.promoted_forks)

let suite =
  [
    Alcotest.test_case "fib: correct, parallel, amortized" `Quick fib_correct_and_parallel;
    Alcotest.test_case "dc-sum: matches sequential" `Quick dc_sum_matches_sequential;
    Alcotest.test_case "deterministic" `Quick deterministic;
    Alcotest.test_case "promotions off = serial" `Quick no_promotion_stays_serial;
    Alcotest.test_case "worker sweep" `Quick worker_sweep;
    QCheck_alcotest.to_alcotest fib_values;
    Alcotest.test_case "amortization bound" `Quick amortization_bound;
  ]
