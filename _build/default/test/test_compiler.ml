(* Tests for the HBC middle-end: perfect hash, outlining, chunking plans,
   leftover generation (Algorithms 1 and 2), task linking, pipeline. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* a(0) > b(1) > c(2); a also has a second child d(3). *)
let nest () =
  let c =
    Ir.Nest.loop ~name:"c" ~bounds:(fun () _ -> (0, 4)) [ Ir.Nest.stmt ~name:"w" (fun () _ _ -> 1) ]
  in
  let b =
    Ir.Nest.loop ~name:"b"
      ~bounds:(fun () _ -> (0, 3))
      [ Ir.Nest.Nested c; Ir.Nest.stmt ~name:"tb" (fun () _ _ -> 1) ]
  in
  let d =
    Ir.Nest.loop ~name:"d" ~bounds:(fun () _ -> (0, 2)) [ Ir.Nest.stmt ~name:"wd" (fun () _ _ -> 1) ]
  in
  let a =
    Ir.Nest.loop ~name:"a"
      ~bounds:(fun () _ -> (0, 5))
      [ Ir.Nest.Nested b; Ir.Nest.stmt ~name:"mid" (fun () _ _ -> 1); Ir.Nest.Nested d ]
  in
  (a, b, c, d)

(* -------------------------- perfect hash -------------------------- *)

let ph_basic () =
  let keys = [ (1, 0); (2, 0); (2, 1); (7, 3) ] in
  let t = Hbc_core.Perfect_hash.build keys in
  List.iteri
    (fun i k -> Alcotest.(check (option int)) "lookup" (Some i) (Hbc_core.Perfect_hash.lookup t k))
    keys;
  Alcotest.(check (option int)) "miss" None (Hbc_core.Perfect_hash.lookup t (9, 9))

let ph_duplicate_rejected () =
  Alcotest.check_raises "dup" (Invalid_argument "Perfect_hash.build: duplicate keys") (fun () ->
      ignore (Hbc_core.Perfect_hash.build [ (1, 2); (1, 2) ]))

let ph_random =
  QCheck.Test.make ~name:"perfect hash: random key sets" ~count:200
    QCheck.(small_list (pair (int_range 0 40) (int_range 0 40)))
    (fun pairs ->
      let keys = List.sort_uniq Stdlib.compare pairs in
      let t = Hbc_core.Perfect_hash.build keys in
      List.for_all
        (fun k ->
          match Hbc_core.Perfect_hash.lookup t k with
          | Some i -> List.nth keys i = k
          | None -> false)
        keys)

(* ---------------------------- pipeline ---------------------------- *)

let pipeline_artifacts () =
  let a, b, c, d = nest () in
  let compiled = Hbc_core.Pipeline.compile_nest a in
  check_int "loops" 4 (Array.length compiled.Hbc_core.Compiled.infos);
  (* outlined: one slice function per DOALL loop *)
  check_int "outlined" 4 (List.length compiled.Hbc_core.Compiled.outlined);
  (* slice array resolves loop ids *)
  let resolve l = Hbc_core.Compiled.slice_ordinal compiled l.Ir.Nest.id in
  Alcotest.(check (option int)) "a" (Some a.Ir.Nest.ordinal) (resolve a);
  Alcotest.(check (option int)) "b" (Some b.Ir.Nest.ordinal) (resolve b);
  Alcotest.(check (option int)) "c" (Some c.Ir.Nest.ordinal) (resolve c);
  Alcotest.(check (option int)) "d" (Some d.Ir.Nest.ordinal) (resolve d);
  (* chunking on leaves only *)
  let info o = Hbc_core.Compiled.info compiled o in
  check_bool "c chunked" true ((info c.Ir.Nest.ordinal).Hbc_core.Compiled.chunk = Hbc_core.Compiled.Adaptive);
  check_bool "d chunked" true ((info d.Ir.Nest.ordinal).Hbc_core.Compiled.chunk = Hbc_core.Compiled.Adaptive);
  check_bool "a not chunked" true ((info a.Ir.Nest.ordinal).Hbc_core.Compiled.chunk = Hbc_core.Compiled.No_chunking);
  check_bool "b not chunked" true ((info b.Ir.Nest.ordinal).Hbc_core.Compiled.chunk = Hbc_core.Compiled.No_chunking);
  (* promotion points at every DOALL latch *)
  Array.iter (fun i -> check_bool "prppt" true i.Hbc_core.Compiled.prppt) compiled.Hbc_core.Compiled.infos

let pipeline_rejects_invalid () =
  let bad = Ir.Nest.loop ~name:"bad" ~bounds:(fun () _ -> (0, 1)) [] in
  check_bool "raises" true
    (try
       ignore (Hbc_core.Pipeline.compile_nest bad);
       false
     with Hbc_core.Pipeline.Compile_error _ -> true)

(* ----------------------- leftover generation ---------------------- *)

let leftover_pairs_leaves_only () =
  let a, b, c, d = nest () in
  let tree = Ir.Nesting_tree.build a in
  let ls = Hbc_core.Leftover.generate_all ~all_pairs:false tree in
  let pairs = List.map (fun l -> (l.Hbc_core.Compiled.li, l.Hbc_core.Compiled.lj)) ls in
  (* Algorithm 1: leaves are c and d; ancestors of c: b, a; of d: a. *)
  Alcotest.(check (list (pair int int)))
    "pairs"
    [
      (c.Ir.Nest.ordinal, b.Ir.Nest.ordinal);
      (c.Ir.Nest.ordinal, a.Ir.Nest.ordinal);
      (d.Ir.Nest.ordinal, a.Ir.Nest.ordinal);
    ]
    pairs

let leftover_pairs_all () =
  let a, b, _, _ = nest () in
  let tree = Ir.Nesting_tree.build a in
  let ls = Hbc_core.Leftover.generate_all ~all_pairs:true tree in
  (* every (loop, proper ancestor) pair: (b,a), (c,b), (c,a), (d,a) *)
  check_int "count" 4 (List.length ls);
  check_bool "includes (b, a)" true
    (List.exists
       (fun l -> l.Hbc_core.Compiled.li = b.Ir.Nest.ordinal && l.Hbc_core.Compiled.lj = a.Ir.Nest.ordinal)
       ls)

let leftover_steps_shape () =
  let a, b, c, _ = nest () in
  let tree = Ir.Nesting_tree.build a in
  (* Algorithm 2 for (c, a): complete c, then tail of b after c, advance b,
     run b's slice, finally tail of a after b. *)
  let l = Hbc_core.Leftover.generate_one tree ~li:c.Ir.Nest.ordinal ~lj:a.Ir.Nest.ordinal in
  let co = c.Ir.Nest.ordinal and bo = b.Ir.Nest.ordinal and ao = a.Ir.Nest.ordinal in
  Alcotest.(check bool) "steps" true
    (l.Hbc_core.Compiled.steps
    = [
        Hbc_core.Compiled.Increase_iv co;
        Hbc_core.Compiled.Call_slice co;
        Hbc_core.Compiled.Tail_work { of_ = bo; after = co };
        Hbc_core.Compiled.Increase_iv bo;
        Hbc_core.Compiled.Call_slice bo;
        Hbc_core.Compiled.Tail_work { of_ = ao; after = bo };
      ])

let leftover_parent_pair_short () =
  let a, b, c, _ = nest () in
  let tree = Ir.Nesting_tree.build a in
  let l = Hbc_core.Leftover.generate_one tree ~li:c.Ir.Nest.ordinal ~lj:b.Ir.Nest.ordinal in
  Alcotest.(check bool) "3 steps for direct parent" true
    (l.Hbc_core.Compiled.steps
    = [
        Hbc_core.Compiled.Increase_iv c.Ir.Nest.ordinal;
        Hbc_core.Compiled.Call_slice c.Ir.Nest.ordinal;
        Hbc_core.Compiled.Tail_work { of_ = b.Ir.Nest.ordinal; after = c.Ir.Nest.ordinal };
      ])

let leftover_invalid_pair () =
  let a, _, c, _ = nest () in
  let tree = Ir.Nesting_tree.build a in
  check_bool "root has no ancestor" true
    (try
       ignore (Hbc_core.Leftover.generate_one tree ~li:a.Ir.Nest.ordinal ~lj:c.Ir.Nest.ordinal);
       false
     with Invalid_argument _ -> true)

let leftover_table_resolves () =
  let a, _, c, _ = nest () in
  let compiled = Hbc_core.Pipeline.compile_nest a in
  (match Hbc_core.Compiled.find_leftover compiled ~li:c.Ir.Nest.ordinal ~lj:a.Ir.Nest.ordinal with
  | Some l ->
      check_int "li" c.Ir.Nest.ordinal l.Hbc_core.Compiled.li;
      check_int "lj" a.Ir.Nest.ordinal l.Hbc_core.Compiled.lj
  | None -> Alcotest.fail "missing leftover");
  check_bool "no (a, c) entry" true
    (Hbc_core.Compiled.find_leftover compiled ~li:a.Ir.Nest.ordinal ~lj:c.Ir.Nest.ordinal = None)

(* A deeper chain exercises the quadratic pair growth. *)
let leftover_quadratic_growth () =
  let rec chain depth =
    if depth = 0 then
      Ir.Nest.loop ~name:"leaf" ~bounds:(fun () _ -> (0, 2)) [ Ir.Nest.stmt ~name:"w" (fun () _ _ -> 1) ]
    else
      Ir.Nest.loop ~name:(Printf.sprintf "l%d" depth)
        ~bounds:(fun () _ -> (0, 2))
        [ Ir.Nest.Nested (chain (depth - 1)) ]
  in
  let root = chain 5 in
  let tree = Ir.Nesting_tree.build root in
  let all = Hbc_core.Leftover.generate_all ~all_pairs:true tree in
  (* chain of 6 loops: sum_{k=1..5} k = 15 pairs *)
  check_int "pairs" 15 (List.length all);
  let leaves_only = Hbc_core.Leftover.generate_all ~all_pairs:false tree in
  check_int "leaf pairs" 5 (List.length leaves_only)

(* ------------------------- chunking plan -------------------------- *)

let chunking_modes () =
  let a, _, c, d = nest () in
  let tree = Ir.Nesting_tree.build a in
  let plan = Hbc_core.Chunking.plan tree ~mode:(Hbc_core.Compiled.Static 99) in
  Alcotest.(check (list (pair int bool)))
    "leaves get the mode"
    [ (c.Ir.Nest.ordinal, true); (d.Ir.Nest.ordinal, true) ]
    (List.map (fun (o, m) -> (o, m = Hbc_core.Compiled.Static 99)) plan)

let qt = QCheck_alcotest.to_alcotest

let suite =
  [
    Alcotest.test_case "perfect hash: basic" `Quick ph_basic;
    Alcotest.test_case "perfect hash: duplicates" `Quick ph_duplicate_rejected;
    qt ph_random;
    Alcotest.test_case "pipeline: artifacts" `Quick pipeline_artifacts;
    Alcotest.test_case "pipeline: rejects invalid nests" `Quick pipeline_rejects_invalid;
    Alcotest.test_case "leftovers: Algorithm 1 (leaves)" `Quick leftover_pairs_leaves_only;
    Alcotest.test_case "leftovers: all pairs" `Quick leftover_pairs_all;
    Alcotest.test_case "leftovers: Algorithm 2 steps" `Quick leftover_steps_shape;
    Alcotest.test_case "leftovers: parent pair" `Quick leftover_parent_pair_short;
    Alcotest.test_case "leftovers: invalid pair" `Quick leftover_invalid_pair;
    Alcotest.test_case "leftovers: table lookup" `Quick leftover_table_resolves;
    Alcotest.test_case "leftovers: quadratic growth" `Quick leftover_quadratic_growth;
    Alcotest.test_case "chunking: leaves only" `Quick chunking_modes;
  ]
