(* Writing your own workload against the public API, end to end:

   - an environment type holding inputs and outputs;
   - a two-level DOALL nest with a vector-valued reduction (a histogram:
     outer loop over text blocks, inner loop over a block's tokens,
     accumulating counts in the loop's locals, committed to the env);
   - validation against the sequential reference, inspection of the
     compiler artifacts (nesting tree, leftover tasks, rollforward tables).

   Run with: dune exec examples/custom_workload.exe *)

type env = {
  nblocks : int;
  block_ptr : int array;
  tokens : int array;  (** token class per word, 0..nbins-1 *)
  histogram : int array;  (** output: global counts per class *)
}

let nbins = 16

let block_ord = 0

let scan_ord = 1

let nest () =
  let scan_loop =
    Ir.Nest.loop ~name:"scan_block" ~bytes_per_iter:6
      ~locals_spec:{ Ir.Locals.nfloats = 0; nints = nbins }
      ~init:(fun _ (l : Ir.Locals.t) -> Array.fill l.Ir.Locals.ints 0 nbins 0)
      ~reduction:(fun dst src ->
        for b = 0 to nbins - 1 do
          dst.Ir.Locals.ints.(b) <- dst.Ir.Locals.ints.(b) + src.Ir.Locals.ints.(b)
        done)
      ~bounds:(fun e (ctxs : Ir.Ctx.set) ->
        let blk = ctxs.(block_ord).Ir.Ctx.lo in
        (e.block_ptr.(blk), e.block_ptr.(blk + 1)))
      [
        Ir.Nest.stmt ~name:"count" (fun e ctxs t ->
            let l = ctxs.(scan_ord).Ir.Ctx.locals in
            let bin = e.tokens.(t) in
            l.Ir.Locals.ints.(bin) <- l.Ir.Locals.ints.(bin) + 1;
            6);
      ]
  in
  Ir.Nest.loop ~name:"blocks"
    ~bounds:(fun e _ -> (0, e.nblocks))
    [
      Ir.Nest.Nested scan_loop;
      (* Tail work: merge the block's private counts into the global
         histogram. Runs in a leftover task when a promotion interrupts the
         scan mid-block. *)
      Ir.Nest.stmt ~name:"merge" (fun e ctxs _blk ->
          let l = ctxs.(scan_ord).Ir.Ctx.locals in
          for b = 0 to nbins - 1 do
            e.histogram.(b) <- e.histogram.(b) + l.Ir.Locals.ints.(b)
          done;
          3 * nbins);
    ]

let program =
  let root = nest () in
  Ir.Program.v ~name:"histogram"
    ~make_env:(fun () ->
      let rng = Sim.Sim_rng.create 2024 in
      let nblocks = 30_000 in
      (* Skewed block lengths: a few giant documents among many small ones. *)
      let sizes =
        Array.init nblocks (fun _ -> Sim.Sim_rng.zipf rng ~alpha:1.4 ~n:4_000)
      in
      let block_ptr = Array.make (nblocks + 1) 0 in
      for i = 0 to nblocks - 1 do
        block_ptr.(i + 1) <- block_ptr.(i) + sizes.(i)
      done;
      let tokens = Array.init block_ptr.(nblocks) (fun _ -> Sim.Sim_rng.int rng nbins) in
      { nblocks; block_ptr; tokens; histogram = Array.make nbins 0 })
    ~nests:[ root ]
    ~driver:(fun _ cpu -> cpu.Ir.Program.exec root)
    ~fingerprint:(fun e ->
      Array.to_seq e.histogram |> Seq.fold_lefti (fun acc i c -> acc +. (Float.of_int c *. Float.of_int (i + 1))) 0.0)
    ()

let () =
  (* Compiler artifacts. *)
  let compiled = Hbc_core.Pipeline.compile_program program in
  let nest = Hbc_core.Pipeline.nest_of compiled (Ir.Program.single_nest program) in
  Printf.printf "nesting tree:\n%s\n" (Format.asprintf "%a" Ir.Nesting_tree.pp nest.Hbc_core.Compiled.tree);
  Printf.printf "leftover tasks generated: %d (table size %d)\n"
    (Array.length nest.Hbc_core.Compiled.leftovers)
    (Hbc_core.Perfect_hash.table_size nest.Hbc_core.Compiled.leftover_table);
  Array.iter
    (fun (l : Hbc_core.Compiled.leftover) ->
      Printf.printf "  leftover (heartbeat in %d, split %d): %d steps\n" l.Hbc_core.Compiled.li
        l.Hbc_core.Compiled.lj (List.length l.Hbc_core.Compiled.steps))
    nest.Hbc_core.Compiled.leftovers;

  (* Heartbeat linker, both modes. *)
  let polling = Hbc_core.Linker.link Hbc_core.Linker.Software_polling nest in
  let interrupts = Hbc_core.Linker.link Hbc_core.Linker.Interrupts nest in
  Printf.printf "\nlinked (polling): %d instructions, %d poll sites\n"
    (Hbc_core.Pseudo_asm.instruction_count polling.Hbc_core.Linker.listing)
    polling.Hbc_core.Linker.polling_sites;
  (match interrupts.Hbc_core.Linker.rollforward with
  | Some rf ->
      Printf.printf "linked (interrupts): rollforward table with %d entries, e.g. %s -> %s\n"
        (List.length rf.Hbc_core.Rollforward.table)
        (fst (List.hd rf.Hbc_core.Rollforward.table))
        (snd (List.hd rf.Hbc_core.Rollforward.table))
  | None -> ());

  (* Run everywhere and validate. *)
  let seq = Baselines.Serial_exec.run_program program in
  let hbc = Hbc_core.Executor.run_program Hbc_core.Rt_config.default compiled in
  let omp = Baselines.Openmp.run_program (Baselines.Openmp.dynamic ()) program in
  Printf.printf "\nsequential fingerprint %.1f\n" seq.Sim.Run_result.fingerprint;
  Printf.printf "HBC    : %5.1fx speedup, output valid %b\n"
    (Sim.Run_result.speedup ~baseline:seq hbc)
    (Sim.Run_result.fingerprints_close seq hbc);
  Printf.printf "OpenMP : %5.1fx speedup, output valid %b\n"
    (Sim.Run_result.speedup ~baseline:seq omp)
    (Sim.Run_result.fingerprints_close seq omp)
