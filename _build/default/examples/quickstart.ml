(* Quickstart: express a nested DOALL loop, compile it with the HBC
   pipeline, and run it under heartbeat scheduling, comparing against the
   sequential reference and the OpenMP-like baseline.

   The program is the paper's running example (Fig. 1): sparse-matrix by
   dense-vector product, whose parallelism fluctuates between the row and
   column loops depending on the sparsity pattern.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Pick an input: the arrowhead matrix, the classic granularity-control
     challenge (one huge row, 300k tiny ones). *)
  let program =
    Workloads.Spmv.make_program ~name:"quickstart-spmv" ~make_matrix:(fun () ->
        Workloads.Matrix_gen.arrowhead ~n:120_000)
  in

  (* 2. Sequential reference: defines correct output and baseline cycles. *)
  let seq = Baselines.Serial_exec.run_program program in
  Printf.printf "sequential: %d cycles of work, fingerprint %.3f\n\n"
    seq.Sim.Run_result.work_cycles seq.Sim.Run_result.fingerprint;

  (* 3. OpenMP-like dynamic scheduling of the outermost loop only. *)
  let omp = Baselines.Openmp.run_program (Baselines.Openmp.dynamic ()) program in
  Printf.printf "OpenMP dynamic : %5.1fx speedup (valid output: %b)\n"
    (Sim.Run_result.speedup ~baseline:seq omp)
    (Sim.Run_result.fingerprints_close seq omp);

  (* 4. HBC: compile (outlining, loop-slice tasks, leftover tasks, task
     linking) and run under the heartbeat runtime with adaptive chunking. *)
  let compiled = Hbc_core.Pipeline.compile_program program in
  let hbc = Hbc_core.Executor.run_program Hbc_core.Rt_config.default compiled in
  Printf.printf "HBC (heartbeat): %5.1fx speedup (valid output: %b)\n"
    (Sim.Run_result.speedup ~baseline:seq hbc)
    (Sim.Run_result.fingerprints_close seq hbc);

  (* 5. Where did the parallelism come from? The promotion counters show the
     runtime splitting both the row loop (level 0) and, inside the huge
     first row, the column loop (level 1). *)
  let m = hbc.Sim.Run_result.metrics in
  Printf.printf "\npromotions: %d total" m.Sim.Metrics.promotions;
  Array.iteri
    (fun level n -> if n > 0 then Printf.printf ", level %d: %d" level n)
    m.Sim.Metrics.promotions_by_level;
  Printf.printf "\nheartbeats detected: %d; leftover tasks run: %d; steals: %d\n"
    m.Sim.Metrics.heartbeats_detected m.Sim.Metrics.leftover_tasks_run m.Sim.Metrics.steals
