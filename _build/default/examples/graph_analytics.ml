(* Graph analytics: the GraphIt-style DensePull kernels on a power-law graph
   you construct yourself, showing how nested-parallel pull loops (vertices
   over incoming edges) behave under heartbeat scheduling when degree skew
   makes the inner trip counts wildly irregular.

   Run with: dune exec examples/graph_analytics.exe *)

let () =
  let scale = 0.5 in
  let kernels =
    [
      ("pr (PageRank, 5 rounds)", Workloads.Graph_kernels.pr ~scale);
      ("bfs (frontier rounds)", Workloads.Graph_kernels.bfs ~scale);
      ("cc (label propagation)", Workloads.Graph_kernels.cc ~scale);
      ("sssp (Bellman-Ford rounds)", Workloads.Graph_kernels.sssp ~scale);
    ]
  in
  (* Inspect the input skew first. *)
  let g = Workloads.Graph.twitter_like ~scale in
  let max_deg = ref 0 and sum = ref 0 in
  for v = 0 to g.Workloads.Graph.n - 1 do
    let d = Workloads.Graph.in_degree g v in
    if d > !max_deg then max_deg := d;
    sum := !sum + d
  done;
  Printf.printf "graph: %d vertices, %d edges, avg in-degree %.1f, max in-degree %d\n\n"
    g.Workloads.Graph.n (Workloads.Graph.edges g)
    (Float.of_int !sum /. Float.of_int g.Workloads.Graph.n)
    !max_deg;
  List.iter
    (fun (name, program) ->
      let seq = Baselines.Serial_exec.run_program program in
      let hbc = Hbc_core.Executor.run Hbc_core.Rt_config.default program in
      let omp = Baselines.Openmp.run_program (Baselines.Openmp.dynamic ()) program in
      Printf.printf "%-28s OpenMP %5.1fx | HBC %5.1fx | valid %b | promotions %d\n" name
        (Sim.Run_result.speedup ~baseline:seq omp)
        (Sim.Run_result.speedup ~baseline:seq hbc)
        (Sim.Run_result.fingerprints_close seq hbc)
        hbc.Sim.Run_result.metrics.Sim.Metrics.promotions)
    kernels
