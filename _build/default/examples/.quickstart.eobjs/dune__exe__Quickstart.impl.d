examples/quickstart.ml: Array Baselines Hbc_core Printf Sim Workloads
