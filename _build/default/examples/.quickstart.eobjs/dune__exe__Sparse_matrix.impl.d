examples/sparse_matrix.ml: Array Baselines Float Hbc_core Ir List Printf Report Sim Workloads
