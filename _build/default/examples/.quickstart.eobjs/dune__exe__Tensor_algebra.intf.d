examples/tensor_algebra.mli:
