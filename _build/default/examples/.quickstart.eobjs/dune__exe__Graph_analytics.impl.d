examples/graph_analytics.ml: Baselines Float Hbc_core List Printf Sim Workloads
