examples/recursive_fork_join.ml: Array Float Hbc_core Printf Sim Stdlib
