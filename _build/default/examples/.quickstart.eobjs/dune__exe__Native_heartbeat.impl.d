examples/native_heartbeat.ml: Array Float Hb_parallel Printf Unix
