examples/quickstart.mli:
