examples/recursive_fork_join.mli:
