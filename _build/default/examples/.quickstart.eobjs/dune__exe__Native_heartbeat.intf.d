examples/native_heartbeat.mli:
