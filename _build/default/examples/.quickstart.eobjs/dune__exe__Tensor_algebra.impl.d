examples/tensor_algebra.ml: Array Baselines Hbc_core Printf Sim Workloads
