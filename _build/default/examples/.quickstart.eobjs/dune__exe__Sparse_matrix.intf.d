examples/sparse_matrix.mli:
