examples/custom_workload.ml: Array Baselines Float Format Hbc_core Ir List Printf Seq Sim
