examples/graph_analytics.mli:
