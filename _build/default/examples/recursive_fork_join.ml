(* Heartbeat scheduling for recursive fork-join programs — the extension
   the paper leaves as future work (HBC targets loops; TPAL's other
   benchmarks were recursive). Write naive divide-and-conquer with NO manual
   sequential cutoff: every fork is latent parallelism and the runtime
   materializes only a heartbeat's worth of tasks.

   Run with: dune exec examples/recursive_fork_join.exe *)

module FJ = Hbc_core.Fork_join

(* Naive Fibonacci: the classic granularity-control torture test. *)
let rec fib ctx n =
  if n < 2 then begin
    FJ.advance ctx 20;
    n
  end
  else begin
    let a, b = FJ.fork2 ctx (fun c -> fib c (n - 1)) (fun c -> fib c (n - 2)) in
    FJ.advance ctx 10;
    a + b
  end

(* Divide-and-conquer maximum-subarray (Kadane is linear, but the D&C
   formulation is the textbook fork-join recursion with nontrivial merge). *)
type span = { total : float; best : float; prefix : float; suffix : float }

let leaf_span v = { total = v; best = v; prefix = v; suffix = v }

let merge l r =
  {
    total = l.total +. r.total;
    best = Float.max (Float.max l.best r.best) (l.suffix +. r.prefix);
    prefix = Float.max l.prefix (l.total +. r.prefix);
    suffix = Float.max r.suffix (r.total +. l.suffix);
  }

let rec max_subarray ctx (data : float array) lo hi =
  if hi - lo = 1 then begin
    FJ.advance_bytes ctx ~compute:6 ~bytes:8;
    leaf_span data.(lo)
  end
  else begin
    let mid = (lo + hi) / 2 in
    let l, r =
      FJ.fork2 ctx
        (fun c -> max_subarray c data lo mid)
        (fun c -> max_subarray c data mid hi)
    in
    FJ.advance ctx 14;
    merge l r
  end

let report name (r : FJ.result) =
  Printf.printf
    "%-14s work %9d cy | makespan %8d cy | speedup %5.1fx | forks: %d sequential, %d promoted (%.2f%% promoted)\n"
    name r.FJ.work_cycles r.FJ.makespan
    (Float.of_int r.FJ.work_cycles /. Float.of_int r.FJ.makespan)
    r.FJ.sequential_forks r.FJ.promoted_forks
    (100.0
    *. Float.of_int r.FJ.promoted_forks
    /. Float.of_int (Stdlib.max 1 (r.FJ.sequential_forks + r.FJ.promoted_forks)))

let () =
  let result = ref 0 in
  let r = FJ.run (fun ctx -> result := fib ctx 24) in
  Printf.printf "fib 24 = %d\n" !result;
  report "fib" r;

  let n = 200_000 in
  let rng = Sim.Sim_rng.create 99 in
  let data = Array.init n (fun _ -> Sim.Sim_rng.float rng 2.0 -. 1.0) in
  let best = ref 0.0 in
  let r2 = FJ.run (fun ctx -> best := (max_subarray ctx data 0 n).best) in
  (* Kadane reference *)
  let kadane = ref Float.neg_infinity and cur = ref 0.0 in
  Array.iter
    (fun v ->
      cur := Float.max v (!cur +. v);
      kadane := Float.max !kadane !cur)
    data;
  Printf.printf "\nmax-subarray best = %.4f (Kadane reference %.4f)\n" !best !kadane;
  report "max-subarray" r2;
  print_endline
    "\nNote the promoted-fork percentage: heartbeat scheduling materializes a tiny,\n\
     bounded fraction of the logical forks, with no manual cutoff in the code."
