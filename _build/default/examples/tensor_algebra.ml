(* Sparse tensor algebra: TACO-style TTV and TTM kernels over a compressed
   sparse fiber tensor — three-level DOALL nests whose parallelism can sit
   in any of the three loops depending on the fiber-length distribution.
   The paper's point: TACO itself only parallelizes the outermost loop;
   heartbeat scheduling can safely expose all three.

   Run with: dune exec examples/tensor_algebra.exe *)

let run_one name program =
  let seq = Baselines.Serial_exec.run_program program in
      let hbc = Hbc_core.Executor.run Hbc_core.Rt_config.default program in
      let omp = Baselines.Openmp.run_program (Baselines.Openmp.dynamic ()) program in
      let m = hbc.Sim.Run_result.metrics in
      Printf.printf "%-4s OpenMP(outer only) %5.1fx | HBC %5.1fx | promotions L0=%d L1=%d L2=%d | valid %b\n"
        name
        (Sim.Run_result.speedup ~baseline:seq omp)
        (Sim.Run_result.speedup ~baseline:seq hbc)
        m.Sim.Metrics.promotions_by_level.(0) m.Sim.Metrics.promotions_by_level.(1)
        m.Sim.Metrics.promotions_by_level.(2)
        (Sim.Run_result.fingerprints_close seq hbc)

let () =
  let scale = 0.5 in
  run_one "ttv" (Workloads.Ttv.program ~scale);
  run_one "ttm" (Workloads.Ttm.program ~scale)
