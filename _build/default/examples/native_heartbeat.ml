(* The native (non-simulated) heartbeat runtime on OCaml 5 domains:
   heartbeat-promoted parallel_for and parallel_reduce over real threads.
   On a single-core machine this demonstrates correctness; on a multicore it
   also yields speedup.

   Run with: dune exec examples/native_heartbeat.exe *)

module Hb_par = Hb_parallel.Hb_par

let () =
  let n = 2_000_000 in
  let data = Array.init n (fun i -> Float.of_int (i mod 97) /. 97.0) in

  (* Sequential reference. *)
  let t0 = Unix.gettimeofday () in
  let expected = Array.fold_left ( +. ) 0.0 data in
  let t_seq = Unix.gettimeofday () -. t0 in

  Hb_par.with_pool ~num_domains:4 (fun pool ->
      (* Heartbeat-promoted reduction. *)
      let t0 = Unix.gettimeofday () in
      let total =
        Hb_par.parallel_reduce pool ~lo:0 ~hi:n ~init:0.0
          ~body:(fun acc i -> acc +. data.(i))
          ~combine:( +. )
      in
      let t_par = Unix.gettimeofday () -. t0 in
      Printf.printf "reduce: expected %.6f, got %.6f (|diff| %.2e)\n" expected total
        (Float.abs (expected -. total));
      Printf.printf "sequential %.1f ms, heartbeat %.1f ms, promotions %d on %d domains\n"
        (1000.0 *. t_seq) (1000.0 *. t_par) (Hb_par.promotions pool)
        (Hb_par.num_domains pool);

      (* Nested parallel_for: fill a matrix, check every cell. *)
      let rows = 600 and cols = 600 in
      let m = Array.make_matrix rows cols 0 in
      Hb_par.parallel_for pool ~lo:0 ~hi:rows (fun i ->
          Hb_par.parallel_for pool ~lo:0 ~hi:cols (fun j -> m.(i).(j) <- (i * cols) + j));
      let ok = ref true in
      for i = 0 to rows - 1 do
        for j = 0 to cols - 1 do
          if m.(i).(j) <> (i * cols) + j then ok := false
        done
      done;
      Printf.printf "nested parallel_for on %dx%d matrix: %s\n" rows cols
        (if !ok then "all cells correct" else "CORRUPTED"))
