(* Sparse-matrix workloads: how the same spmv kernel behaves under heartbeat
   scheduling across the paper's three sparsity patterns, and how adaptive
   chunking reacts to them (the Fig. 12 visualization).

   Run with: dune exec examples/sparse_matrix.exe *)

let run_one name program =
  let seq = Baselines.Serial_exec.run_program program in
  let request =
    Hbc_core.Run_request.make
      ~trace:
        (Obs.Trace.Sink.stream
           ~keep:(function Obs.Trace.Chunk_update _ -> true | _ -> false)
           ())
      ()
  in
  let hbc = Hbc_core.Executor.run ~request Hbc_core.Rt_config.default program in
  let omp = Baselines.Openmp.run_program (Baselines.Openmp.dynamic ()) program in
  Printf.printf "%-22s seq %9d cy | OpenMP %5.1fx | HBC %5.1fx | promotions L0=%d L1=%d\n" name
    seq.Sim.Run_result.work_cycles
    (Sim.Run_result.speedup ~baseline:seq omp)
    (Sim.Run_result.speedup ~baseline:seq hbc)
    hbc.Sim.Run_result.metrics.Sim.Metrics.promotions_by_level.(0)
    hbc.Sim.Run_result.metrics.Sim.Metrics.promotions_by_level.(1);
  hbc

let () =
  let scale = 0.5 in
  let programs =
    [
      ("spmv-arrowhead", Workloads.Spmv.arrowhead ~scale);
      ("spmv-powerlaw", Workloads.Spmv.powerlaw ~scale);
      ("spmv-powerlaw-reverse", Workloads.Spmv.powerlaw_reverse ~scale);
      ("spmv-random", Workloads.Spmv.random ~scale);
    ]
  in
  let results = List.map (fun (n, p) -> (n, p, run_one n p)) programs in
  print_newline ();

  (* Adaptive chunking trace: average chunk size chosen while the runtime
     worked in each region of the row space, next to the rows' density. *)
  List.iter
    (fun (name, program, hbc) ->
      let env = program.Ir.Program.make_env () in
      let matrix = env.Workloads.Spmv.matrix in
      let n = matrix.Workloads.Matrix_gen.n in
      let buckets = 8 in
      let sum = Array.make buckets 0.0 and cnt = Array.make buckets 0 in
      List.iter
        (fun (_, row, chunk) ->
          if row >= 0 && row < n then begin
            let b = row * buckets / n in
            sum.(b) <- sum.(b) +. Float.of_int chunk;
            cnt.(b) <- cnt.(b) + 1
          end)
        (Obs.Trace_query.chunk_updates hbc.Sim.Run_result.trace);
      let rows =
        List.init buckets (fun b ->
            let lo = b * n / buckets and hi = ((b + 1) * n / buckets) - 1 in
            let nnz = ref 0 in
            for i = lo to hi do
              nnz := !nnz + Workloads.Matrix_gen.nnz_of_row matrix i
            done;
            let avg_nnz = Float.of_int !nnz /. Float.of_int (hi - lo + 1) in
            let avg_chunk = if cnt.(b) = 0 then 0.0 else sum.(b) /. Float.of_int cnt.(b) in
            (Printf.sprintf "rows %6d..%6d nnz/row %7.1f" lo hi avg_nnz, avg_chunk))
      in
      print_string
        (Report.Ascii_chart.bars ~title:(name ^ ": AC chunk size by row region") rows);
      print_newline ())
    results
