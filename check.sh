#!/usr/bin/env bash
# Repo health check: build, full test suite, a tiny-scale smoke run of the
# fault-injection sweep (exits non-zero on any output-validation failure),
# a perf-gate report + bench-diff smoke, and (unless skipped) a
# kill-and-resume exercise of the campaign journal.
#
# Environment knobs:
#   TMPDIR                  scratch directory (default /tmp)
#   HBC_CHECK_SKIP_RESUME=1 skip the kill -9 resume test (needs job control
#                           and a POSIX kill; skip on minimal CI shells)
set -euo pipefail
cd "$(dirname "$0")"

TMP="${TMPDIR:-/tmp}"

dune build
dune runtest

dune exec bin/hbc_repro.exe -- fault-sweep --scale 0.04 --workers 8

# --- trace export smoke test: run one benchmark with --trace, then lint the
# exported Chrome trace JSON (parses, >=1 promotion, >=1 steal event) ---
REPRO=_build/default/bin/hbc_repro.exe
T=$(mktemp "$TMP/hbc-trace.XXXXXX.json")
"$REPRO" run spmv-powerlaw --scale 0.05 --workers 8 --trace "$T" > /dev/null
"$REPRO" trace-lint "$T"
rm -f "$T"

# --- sanitizer & fuzz smoke test: a sanitized run must report zero
# violations; the fixed-seed fuzz sweep must pass; a forced seeded bug must
# be caught (exit 1), shrunk to a JSON repro, and the repro must replay to
# the same failure class ---
"$REPRO" run spmv-powerlaw --scale 0.05 --workers 8 --sanitize > /dev/null
"$REPRO" fuzz --smoke > /dev/null
F=$(mktemp "$TMP/hbc-fuzz.XXXXXX.json")
rc=0
"$REPRO" fuzz --force-fail duplicate-leftover --out "$F" > /dev/null || rc=$?
if [ "$rc" -ne 1 ]; then
    echo "check.sh: forced seeded bug was not caught (exit $rc)" >&2
    exit 1
fi
"$REPRO" fuzz --replay "$F" > /dev/null
rm -f "$F"
echo "check.sh: sanitizer + fuzz smoke OK"

# --- native domains smoke test: the real-parallelism backend must produce
# the sequential fingerprint (exit 4 on mismatch) and its linearized trace
# must satisfy the full sanitizer invariant set (exit 3 on violation) ---
"$REPRO" run spmv-powerlaw --scale 0.05 --backend domains -e hbc -w 2 --sanitize > /dev/null
echo "check.sh: native domains smoke OK"

# --- native chaos smoke test: portable fault kinds inject on real domains
# (seed-deterministic decision streams), a dense stall plan must trip the
# polling-downgrade watchdog, and the chaotic run must still produce the
# sequential fingerprint (exit 4 on mismatch) with a clean sanitizer
# verdict (exit 3) ---
NC=$(mktemp "$TMP/hbc-nchaos.XXXXXX.txt")
"$REPRO" run spmv-powerlaw --scale 0.05 --backend domains -e hbc -w 2 \
    --beat polls:16 --sanitize \
    --fault-drop 0.4 --fault-steal 0.5 --fault-stall 0.9 --fault-wakeup 0.5 > "$NC"
grep -q "output valid     : true" "$NC" \
    || { echo "check.sh: native chaos run not validated" >&2; exit 1; }
grep -Eq "faults injected  : [1-9]" "$NC" \
    || { echo "check.sh: native chaos run injected nothing" >&2; exit 1; }
grep -Eq "downgrades       : [1-9]" "$NC" \
    || { echo "check.sh: stall plan never tripped the watchdog" >&2; exit 1; }
"$REPRO" fuzz --native --smoke > /dev/null
rm -f "$NC"
echo "check.sh: native chaos smoke OK"

# --- native pause/resume smoke test: pause a single-worker domains run at
# a deterministic poll-count boundary, resume from the checkpoint file, and
# require the resumed report to match an uninterrupted run's (makespan is
# wall-clock on this backend, so it is filtered from the comparison) ---
NCK=$(mktemp "$TMP/hbc-nck.XXXXXX.json")
NA=$(mktemp "$TMP/hbc-nrun.XXXXXX.txt"); NB=$(mktemp "$TMP/hbc-nrun.XXXXXX.txt")
"$REPRO" run spmv-powerlaw --scale 0.05 --backend domains -e hbc -w 1 \
    --beat polls:16 > "$NA"
"$REPRO" run spmv-powerlaw --scale 0.05 --backend domains -e hbc -w 1 \
    --beat polls:16 --pause-at 2000 --checkpoint "$NCK" > /dev/null
[ -s "$NCK" ] || { echo "check.sh: native pause wrote no checkpoint" >&2; exit 1; }
"$REPRO" run spmv-powerlaw --scale 0.05 --backend domains -e hbc -w 1 \
    --beat polls:16 --resume-from "$NCK" > "$NB"
grep -v makespan "$NA" > "$NA.f"; grep -v makespan "$NB" > "$NB.f"
cmp -s "$NA.f" "$NB.f" \
    || { echo "check.sh: native resumed run differs from uninterrupted" >&2; exit 1; }
rm -f "$NCK" "$NA" "$NB" "$NA.f" "$NB.f"
echo "check.sh: native pause/resume smoke OK"

# --- serve smoke test: a mixed-tenant overload run with the sanitizer on
# must hit the shed and deadline paths (exit 4 if either never fires, exit 3
# on any job/budget-conservation violation); equal seeds must journal
# byte-identical decisions; a zero-capacity queue must shed everything ---
D1=$(mktemp "$TMP/hbc-serve.XXXXXX.log"); D2=$(mktemp "$TMP/hbc-serve.XXXXXX.log")
"$REPRO" serve --tenants 3 --jobs 4 --queue-cap 2 --deadline 200000:800000 \
    --sanitize --verify --expect-shed --expect-deadline --seed 5 --decisions "$D1" > /dev/null
"$REPRO" serve --tenants 3 --jobs 4 --queue-cap 2 --deadline 200000:800000 \
    --sanitize --verify --expect-shed --expect-deadline --seed 5 --decisions "$D2" > /dev/null
cmp -s "$D1" "$D2" || { echo "check.sh: serve decisions not deterministic" >&2; exit 1; }
rm -f "$D1" "$D2"
"$REPRO" serve --queue-cap 0 --jobs 2 --expect-shed > /dev/null
"$REPRO" fuzz --serve --smoke > /dev/null
echo "check.sh: serve smoke OK"

# --- job pause/resume smoke test: pause a run at a heartbeat boundary,
# resume it from the checkpoint file, and require the resumed run's full
# report (makespan, fingerprint validity, promotion/steal counts) to be
# byte-identical to an uninterrupted run's ---
CK=$(mktemp "$TMP/hbc-ck.XXXXXX.json")
RA=$(mktemp "$TMP/hbc-run.XXXXXX.txt"); RB=$(mktemp "$TMP/hbc-run.XXXXXX.txt")
"$REPRO" run spmv-powerlaw --scale 0.05 --workers 8 > "$RA"
"$REPRO" run spmv-powerlaw --scale 0.05 --workers 8 \
    --pause-at 100000 --checkpoint "$CK" > /dev/null
[ -s "$CK" ] || { echo "check.sh: pause wrote no checkpoint" >&2; exit 1; }
"$REPRO" run spmv-powerlaw --scale 0.05 --workers 8 --resume-from "$CK" > "$RB"
cmp -s "$RA" "$RB" || { echo "check.sh: resumed run differs from uninterrupted" >&2; exit 1; }
rm -f "$CK" "$RA" "$RB"
echo "check.sh: pause/resume smoke OK"

# --- serve crash-recovery smoke test: kill a WAL-journaled campaign
# mid-write (exit 137), recover it from the WAL, and require the recovered
# decision journal to be byte-identical to an uninterrupted run's (and to
# the WAL body itself) ---
W=$(mktemp "$TMP/hbc-serve.XXXXXX.wal")
D1=$(mktemp "$TMP/hbc-serve.XXXXXX.log"); D2=$(mktemp "$TMP/hbc-serve.XXXXXX.log")
SERVE_CFG="--tenants 1 --jobs 3 --seed 42 --deadline 8000:8000 \
    --preempt-policy pause --max-preempts 50 --sanitize --verify"
"$REPRO" serve $SERVE_CFG --decisions "$D1" > /dev/null
rm -f "$W"   # --kill-after must start from an empty WAL, not mktemp's file
rc=0
"$REPRO" serve $SERVE_CFG --wal "$W" --kill-after 12 > /dev/null 2>&1 || rc=$?
if [ "$rc" -ne 137 ]; then
    echo "check.sh: injected WAL kill did not fire (exit $rc)" >&2
    exit 1
fi
"$REPRO" serve $SERVE_CFG --wal "$W" --decisions "$D2" > /dev/null
cmp -s "$D1" "$D2" || { echo "check.sh: recovered decisions differ from uninterrupted" >&2; exit 1; }
tail -n +2 "$W" | cmp -s - "$D2" || { echo "check.sh: WAL body differs from decisions" >&2; exit 1; }
rm -f "$W" "$D1" "$D2"
echo "check.sh: serve kill-and-recover smoke OK"

# --- perf-gate smoke test: emit a fresh report and diff it against the
# committed baseline; deterministic regressions exit non-zero here exactly
# as they do in CI ---
B=$(mktemp "$TMP/hbc-bench.XXXXXX.json")
dune exec bench/main.exe -- --report "$B" --label check > /dev/null
"$REPRO" bench-diff bench/baseline.json "$B"
rm -f "$B"

# --- domains-parallel campaign smoke test: a tiny campaign warmed across
# 2 domains must produce a journal and figure output byte-identical to the
# sequential run's ---
PDIR=$(mktemp -d "$TMP/hbc-par.XXXXXX")
"$REPRO" all --scale 0.01 --workers 4 --journal "$PDIR/j.jsonl" \
    > "$PDIR/seq.txt"
mv "$PDIR/j.jsonl" "$PDIR/seq.jsonl"
"$REPRO" all --scale 0.01 --workers 4 --journal "$PDIR/j.jsonl" \
    --parallel-trials 2 > "$PDIR/par.txt"
cmp -s "$PDIR/seq.jsonl" "$PDIR/j.jsonl" \
    || { echo "check.sh: parallel-trials journal differs from sequential" >&2; exit 1; }
cmp -s "$PDIR/seq.txt" "$PDIR/par.txt" \
    || { echo "check.sh: parallel-trials figure output differs from sequential" >&2; exit 1; }
rm -rf "$PDIR"
echo "check.sh: parallel-trials byte-identity OK"

# --- checkpoint/resume smoke test: seed a journal, kill a campaign, resume ---
if [ "${HBC_CHECK_SKIP_RESUME:-0}" = "1" ]; then
    echo "check.sh: skipping kill-and-resume test (HBC_CHECK_SKIP_RESUME=1)"
    exit 0
fi

J=$(mktemp "$TMP/hbc-journal.XXXXXX.jsonl")
trap 'rm -f "$J"' EXIT

# Seed the journal with one figure's trials.
"$REPRO" fig4 --journal "$J" --scale 0.02 --workers 8 > /dev/null
SEEDED=$(wc -l < "$J")
if [ "$SEEDED" -eq 0 ]; then
    echo "check.sh: journal empty after seeding run" >&2
    exit 1
fi

# Start a full campaign resuming from it, then kill it mid-flight (a crash,
# not a clean shutdown: resume must cope with whatever is on disk). The kill
# is guarded by a watchdog so a wedged campaign cannot hang the check.
"$REPRO" all --resume --journal "$J" --scale 0.02 --workers 8 > /dev/null 2>&1 &
PID=$!
sleep 3
kill -9 "$PID" 2>/dev/null || true
for _ in $(seq 1 20); do
    kill -0 "$PID" 2>/dev/null || break
    sleep 0.5
done
wait "$PID" 2>/dev/null || true
KILLED=$(wc -l < "$J")

# Resume again: the journal must have grown, the completed figure's trials
# must be served from it, and the campaign must run to the end.
OUT=$("$REPRO" all --resume --journal "$J" --scale 0.02 --workers 8)
echo "$OUT" | grep -q "fig16" || { echo "check.sh: resumed campaign did not finish" >&2; exit 1; }
echo "$OUT" | grep -Eq "journal: [1-9][0-9]* reused" \
    || { echo "check.sh: resumed campaign reused no journaled trials" >&2; exit 1; }
# The final journal holds at least the seeded trials (a torn trailing line
# from the kill may legitimately be compacted away, so compare to SEEDED).
FINAL=$(wc -l < "$J")
if [ "$FINAL" -lt "$SEEDED" ] || [ "$KILLED" -lt "$SEEDED" ]; then
    echo "check.sh: journal shrank across resume ($SEEDED -> $KILLED -> $FINAL)" >&2
    exit 1
fi
echo "check.sh: kill-and-resume OK (journal $SEEDED -> $KILLED -> $FINAL lines)"
