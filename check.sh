#!/usr/bin/env bash
# Repo health check: build, full test suite, and a tiny-scale smoke run of
# the fault-injection sweep (exits non-zero on any output-validation
# failure).
set -euo pipefail
cd "$(dirname "$0")"

dune build
dune runtest
dune exec bin/hbc_repro.exe -- fault-sweep --scale 0.04 --workers 8
