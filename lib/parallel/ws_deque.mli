(** Lock-free Chase–Lev work-stealing deque on OCaml [Atomic].

    The owner pushes and pops at the bottom without contention in the common
    case; thieves steal from the top with a compare-and-set. This is the
    classic dynamic circular work-stealing deque (Chase & Lev, SPAA'05) in
    its sequentially-consistent form — OCaml's [Atomic] operations are SC,
    so no explicit fences are needed.

    The interface is exactly the scheduler core's deque signature
    ({!Sched.Backend_intf.DEQUE}) — the same shape {!Sim.Deque} implements
    for the simulator and the sanitizer's shadow replay, which is what lets
    {!Sanitizer.Checker.Deque_discipline} audit this implementation against
    the sequential model on linearized native traces.

    Safety contract: {!push} and {!pop} may only be called by the owning
    domain; {!steal} may be called by any domain. *)

include Sched.Backend_intf.DEQUE

val to_list : 'a t -> 'a list
(** Owner-side snapshot of the deque contents, oldest (steal end) first.
    Only meaningful when no thief is racing; the native checkpoint code
    calls it at a quiescent single-worker pause boundary. *)
