(** The compiled-nest interpreter on real OCaml 5 domains.

    The second instantiation of the scheduler core: the same
    {!Sched.Policy} promotion choice, {!Sched.Adaptive_chunking} rule,
    {!Sched.Leftover_walk} and deque/steal/join discipline
    ([Sched.Core.Make (Domains_backend)]) that the virtual-time
    {!Hbc_core.Executor} runs — driven by wall-clock heartbeats and real
    parallelism instead of simulated time. Traced runs emit the same
    capture-gated {!Obs.Trace} events at the same operation boundaries,
    so {!Sanitizer.Checker} validates native streams with its full
    invariant set, and fingerprints cross-check against simulator runs
    of the same program. *)

exception Internal_error of string
(** Alias of {!Hbc_core.Executor.Internal_error}: a runtime invariant
    broke (a bug, not a user error). *)

(** When a native worker observes a heartbeat. *)
type beat_source =
  | Wall_us of float  (** interval timer, microseconds (the paper's mechanism) *)
  | Every_polls of int
      (** deterministic poll-count proxy: a beat every [n] leaf polls on a
          worker. With one worker the schedule is fully reproducible —
          benchgate and CI smoke runs use this. *)

val run_program :
  ?request:Hbc_core.Run_request.t ->
  ?beat:beat_source ->
  Hbc_core.Rt_config.t ->
  'e Hbc_core.Pipeline.program ->
  Sim.Run_result.t
(** Run one compiled program on [cfg.workers] domains (the caller is
    worker 0). The config's virtual cost model, mechanism and seed are
    ignored; policy, chunking, promotion and leftover knobs all apply.
    From the request, [trace], [sanitize] and [promotion_budget] apply.

    The result reuses the simulator's record: [makespan] is wall-clock
    microseconds (comparable only between native runs), [work_cycles]
    and [metrics.work_cycles] sum the per-worker body work,
    [metrics.promotions] counts splits; other metric counters stay 0.

    @raise Invalid_argument on simulator-only requests ([fault_plan],
    [pause_at]/[resume_from]). *)

val run :
  ?request:Hbc_core.Run_request.t ->
  ?beat:beat_source ->
  Hbc_core.Rt_config.t ->
  'e Ir.Program.t ->
  Sim.Run_result.t
(** Compile (with the chunk mode from the config) and run. *)
