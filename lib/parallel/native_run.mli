(** The compiled-nest interpreter on real OCaml 5 domains.

    The second instantiation of the scheduler core: the same
    {!Sched.Policy} promotion choice, {!Sched.Adaptive_chunking} rule,
    {!Sched.Leftover_walk} and deque/steal/join discipline
    ([Sched.Core.Make (Domains_backend)]) that the virtual-time
    {!Hbc_core.Executor} runs — driven by wall-clock heartbeats and real
    parallelism instead of simulated time. Traced runs emit the same
    capture-gated {!Obs.Trace} events at the same operation boundaries,
    so {!Sanitizer.Checker} validates native streams with its full
    invariant set, and fingerprints cross-check against simulator runs
    of the same program.

    {b Chaos.} A backend-portable fault plan ({!Sim.Fault_plan.portable})
    arms seed-deterministic fault injection on the domains backend:
    dropped beats and poll-counted stalls are drawn at beat boundaries,
    steal refusals inside the steal protocol, wakeup suppressions on the
    park/wake path. The injection {e decision sequences} are reproducible
    from [(plan seed, P)]; results never change — only performance. A
    starvation watchdog bounds the damage: a worker missing
    [cfg.watchdog_k] consecutive beats downgrades itself to polling
    fallback, and a monitor-sampled progress check disables further
    promotions when a busy worker stops progressing; both emit
    {!Obs.Trace.Mechanism_downgrade}.

    {b Pause/resume.} Under [Every_polls] with one worker, [pause_at]
    (a scheduling-point count) stops the run at a deterministic boundary
    and returns [Paused] with a {!Sim.Checkpoint_state}; [resume_from]
    replays from scratch with the request sink gated until the boundary,
    byte-verifies the re-derived state against the checkpoint
    ({!Sim.Checkpoint_state.equal}; mismatch is
    [Guard_aborted "resume-divergence: ..."]), then continues. The
    per-episode trace streams tile the uninterrupted run's stream exactly
    once. *)

exception Internal_error of string
(** Alias of {!Hbc_core.Executor.Internal_error}: a runtime invariant
    broke (a bug, not a user error). *)

(** When a native worker observes a heartbeat. *)
type beat_source =
  | Wall_us of float  (** interval timer, microseconds (the paper's mechanism) *)
  | Every_polls of int
      (** deterministic poll-count proxy: a beat every [n] leaf polls on a
          worker. With one worker the schedule is fully reproducible —
          benchgate, CI smoke and pause/resume use this. *)

val run_program :
  ?request:Hbc_core.Run_request.t ->
  ?beat:beat_source ->
  Hbc_core.Rt_config.t ->
  'e Hbc_core.Pipeline.program ->
  Sim.Run_result.t
(** Run one compiled program on [cfg.workers] domains (the caller is
    worker 0). The config's virtual cost model, mechanism and seed are
    ignored; policy, chunking, promotion, leftover and [watchdog_k]
    knobs all apply. From the request, [trace], [sanitize],
    [promotion_budget], portable [fault_plan]s and
    [pause_at]/[resume_from] (single worker, [Every_polls]) apply.

    The result reuses the simulator's record: [makespan] is wall-clock
    microseconds (comparable only between native runs), [work_cycles]
    and [metrics.work_cycles] sum the per-worker body work,
    [metrics.promotions] counts splits, the [metrics.faults_*] counters
    count injected chaos events ([faults_stall_cycles] carries the
    poll-counted stall total) and [metrics.downgrades] the watchdog
    trips; other counters stay 0.

    @raise Invalid_argument naming the offending feature when the fault
    plan has simulator-only kinds ({!Sim.Fault_plan.simulator_only}), or
    when [pause_at]/[resume_from] is requested under a wall-clock beat
    or with more than one worker. *)

val run :
  ?request:Hbc_core.Run_request.t ->
  ?beat:beat_source ->
  Hbc_core.Rt_config.t ->
  'e Ir.Program.t ->
  Sim.Run_result.t
(** Compile (with the chunk mode from the config) and run. *)
