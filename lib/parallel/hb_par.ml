(* The flat native API: a domain pool running the shared scheduler core
   ([Sched.Core.Make (Domains_backend)]) with wall-clock heartbeats.
   Promotion split points, deque discipline, steals and joins are the
   policy core's — the same code the virtual-time executor runs — so this
   file only holds the pool lifecycle and the chunked range walker. *)

module C = Sched.Core.Make (Domains_backend)

type pool = {
  b : Domains_backend.t;
  core : C.t;
  n : int;
  mutable domains : unit Domain.t list;
  hb_interval : float;  (* seconds *)
  promo_count : int Atomic.t;
  next_beat : float array;
  ac : Sched.Adaptive_chunking.t array;  (* per-member adaptive chunking *)
  mutable closed : bool;
}

let initial_chunk = 32

let now () = Unix.gettimeofday ()

let my_index pool = Domains_backend.worker_id pool.b

let worker pool i () =
  Domains_backend.register ~worker:i;
  C.scavenge pool.core

let create ?(heartbeat_us = 100.0) ~num_domains () =
  let n = Stdlib.max 1 num_domains in
  let b = Domains_backend.create ~workers:n ~trace:Obs.Trace.Sink.null ~capture:false in
  let pool =
    {
      b;
      core = C.create b;
      n;
      domains = [];
      hb_interval = heartbeat_us *. 1e-6;
      promo_count = Atomic.make 0;
      next_beat = Array.make n 0.0;
      ac =
        Array.init n (fun _ ->
            Sched.Adaptive_chunking.create ~initial_chunk ~target_polls:8 ~window:2 ());
      closed = false;
    }
  in
  let t0 = now () +. pool.hb_interval in
  Array.iteri (fun i _ -> pool.next_beat.(i) <- t0) pool.next_beat;
  (* The caller is worker 0; n-1 extra domains scavenge until shutdown.
     The monitor bounds how long a parked member can be stranded by a
     wakeup that raced its spin-to-park transition. *)
  Domains_backend.register ~worker:0;
  Domains_backend.start_monitor b;
  pool.domains <- List.init (n - 1) (fun i -> Domain.spawn (worker pool (i + 1)));
  pool

let shutdown pool =
  if not pool.closed then begin
    pool.closed <- true;
    C.set_finished pool.core;
    (* Members may be parked: hand every one a wake ticket so the
       finished flag is observed. *)
    Domains_backend.wake_all pool.b;
    List.iter Domain.join pool.domains;
    pool.domains <- [];
    Domains_backend.stop_monitor pool.b
  end

let with_pool ?heartbeat_us ~num_domains f =
  let pool = create ?heartbeat_us ~num_domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let num_domains pool = pool.n

let promotions pool = Atomic.get pool.promo_count

(* Poll the clock: true when a heartbeat interval elapsed on this member.
   Polls and beats also drive the member's adaptive chunking, exactly as in
   the simulated runtime (Sec. 5.1). *)
let poll_beat pool i =
  Sched.Adaptive_chunking.on_poll pool.ac.(i);
  let t = now () in
  if t >= pool.next_beat.(i) then begin
    pool.next_beat.(i) <- t +. pool.hb_interval;
    ignore (Sched.Adaptive_chunking.on_heartbeat pool.ac.(i));
    true
  end
  else false

let current_chunk pool i = Sched.Adaptive_chunking.chunk_size pool.ac.(i)

let chunk_size_of pool ~member = Sched.Adaptive_chunking.chunk_size pool.ac.(member)

(* Heartbeat-promoted execution of [lo, hi): run chunks sequentially; on a
   beat, hand the upper half of the remaining range to the scheduler as a
   core task and continue on the lower half, joining (with help-stealing,
   via the core's join_wait) at the end. *)
let rec run_range : 'a. pool -> ('a -> int -> 'a) -> ('a -> 'a -> 'a) -> 'a -> 'a -> int -> int -> 'a
    =
 fun pool body combine init acc lo hi ->
  let i = my_index pool in
  let l = ref lo and acc = ref acc in
  let result = ref None in
  while !result = None && !l < hi do
    let c = Stdlib.min (current_chunk pool i) (hi - !l) in
    for k = !l to !l + c - 1 do
      acc := body !acc k
    done;
    l := !l + c;
    if hi - !l > 1 && poll_beat pool i then begin
      let mid = Sched.Policy.split_point ~lo:!l ~hi in
      let slot = ref None in
      let join = C.new_join pool.core in
      Atomic.incr pool.promo_count;
      C.add_pending join;
      C.push_task pool.core
        (C.mk_task pool.core (fun () ->
             slot := Some (run_range pool body combine init init mid hi);
             C.finish_join pool.core join));
      let left = run_range pool body combine init !acc !l mid in
      C.join_wait pool.core join;
      (* join_wait's pending read is the acquire matching finish_join's
         release, so the slot write is visible here. *)
      result := Some (combine left (Option.get !slot))
    end
  done;
  match !result with Some r -> r | None -> !acc

let parallel_for pool ~lo ~hi body =
  if hi > lo then run_range pool (fun () k -> body k) (fun () () -> ()) () () lo hi

let parallel_reduce pool ~lo ~hi ~init ~body ~combine =
  if hi <= lo then init else run_range pool body combine init init lo hi
