(* Chase-Lev deque. [top] only increases (thief index); [bottom] is owned by
   the owner. Elements live in a circular buffer indexed modulo its size;
   the buffer grows by copying, and old buffers are left to the GC (the
   standard simplification of the dynamic variant in a managed runtime). *)

type 'a buffer = { mask : int; slots : 'a option array }

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  buffer : 'a buffer Atomic.t;
}

let make_buffer log_size =
  let size = 1 lsl log_size in
  { mask = size - 1; slots = Array.make size None }

let create () =
  { top = Atomic.make 0; bottom = Atomic.make 0; buffer = Atomic.make (make_buffer 6) }

let buf_get b i = b.slots.(i land b.mask)

let buf_set b i v = b.slots.(i land b.mask) <- v

let grow t b top bottom =
  let nb = { mask = (2 * (b.mask + 1)) - 1; slots = Array.make (2 * (b.mask + 1)) None } in
  for i = top to bottom - 1 do
    buf_set nb i (buf_get b i)
  done;
  Atomic.set t.buffer nb;
  nb

let push t x =
  let bottom = Atomic.get t.bottom in
  let top = Atomic.get t.top in
  let b = Atomic.get t.buffer in
  let b = if bottom - top > b.mask then grow t b top bottom else b in
  buf_set b bottom (Some x);
  Atomic.set t.bottom (bottom + 1)

let pop t =
  let bottom = Atomic.get t.bottom - 1 in
  let b = Atomic.get t.buffer in
  Atomic.set t.bottom bottom;
  let top = Atomic.get t.top in
  if bottom < top then begin
    (* empty: restore *)
    Atomic.set t.bottom top;
    None
  end
  else begin
    let x = buf_get b bottom in
    if bottom > top then begin
      buf_set b bottom None;
      x
    end
    else begin
      (* last element: race the thieves for it *)
      let won = Atomic.compare_and_set t.top top (top + 1) in
      Atomic.set t.bottom (top + 1);
      if won then begin
        buf_set b bottom None;
        x
      end
      else None
    end
  end

let steal t =
  let top = Atomic.get t.top in
  let bottom = Atomic.get t.bottom in
  if top >= bottom then None
  else begin
    let b = Atomic.get t.buffer in
    let x = buf_get b top in
    if Atomic.compare_and_set t.top top (top + 1) then x else None
  end

let size t = Stdlib.max 0 (Atomic.get t.bottom - Atomic.get t.top)

(* Owner-side snapshot, oldest (steal end) first. Only meaningful when no
   thief is racing — the checkpoint code calls it at a quiescent
   single-worker pause boundary. *)
let to_list t =
  let top = Atomic.get t.top in
  let bottom = Atomic.get t.bottom in
  let b = Atomic.get t.buffer in
  let out = ref [] in
  for i = bottom - 1 downto top do
    match buf_get b i with None -> () | Some x -> out := x :: !out
  done;
  !out
