(** A real heartbeat-scheduled parallel-for on OCaml 5 domains.

    This is the flat-loop native API: a domain pool running the shared
    scheduler core ([Sched.Core.Make (Domains_backend)] — the same
    promotion split, deque discipline, steals and joins the virtual-time
    executor instantiates over {!Sim_backend}) whose [parallel_for] polls
    a monotonic clock at chunk boundaries and, when a heartbeat interval
    has elapsed, promotes the remaining iterations by splitting them at
    {!Sched.Policy.split_point} and pushing the upper half as a stealable
    core task — all parallelism is latent until a heartbeat materializes
    it, so tight loops run at near-sequential speed.

    For running {e compiled programs} (nests, leftover tasks, traced and
    sanitized runs) natively, use {!Native_run} — or the backend-agnostic
    facade [Sched_run.run ~backend:Domains], which dispatches here.

    On the single-core container this library is exercised for correctness
    (results equal the sequential ones under any interleaving); on a real
    multicore it provides speedup too. *)

type pool

val create : ?heartbeat_us:float -> num_domains:int -> unit -> pool
(** Spawn [num_domains - 1] worker domains (the caller participates as the
    last member). [heartbeat_us] defaults to 100 (the paper's rate). *)

val shutdown : pool -> unit
(** Join all worker domains. Idempotent. *)

val with_pool : ?heartbeat_us:float -> num_domains:int -> (pool -> 'a) -> 'a

val parallel_for : pool -> lo:int -> hi:int -> (int -> unit) -> unit
(** Heartbeat-promoted loop over [\[lo, hi)]. The body may itself call
    [parallel_for] (nested parallelism) but must not raise. *)

val parallel_reduce :
  pool -> lo:int -> hi:int -> init:'a -> body:('a -> int -> 'a) -> combine:('a -> 'a -> 'a) -> 'a
(** Heartbeat-promoted reduction; [combine] must be associative and is
    applied in deterministic split order. *)

val num_domains : pool -> int

val promotions : pool -> int
(** Promotions performed since pool creation (observability/tests). *)

val chunk_size_of : pool -> member:int -> int
(** Current adaptive chunk size of a pool member (Sec. 5.1 running natively;
    observability/tests). *)
