(* The compiled-nest interpreter on real OCaml 5 domains.

   This is the executor's interpreter minus the virtual-time machinery:
   no cost charging, no membus, no fault injection — real time is simply
   spent. Everything the paper argues about is shared with the simulator
   through [lib/sched]: the promotion choice ([Sched.Policy]), the
   adaptive-chunking rule ([Sched.Adaptive_chunking]), the leftover walk
   ([Sched.Leftover_walk]) and the whole deque/steal/join discipline
   ([Sched.Core.Make (Domains_backend)]). Traced runs emit the same
   capture-gated [Obs.Trace] events at the same operation boundaries as
   the simulator, linearized by the backend's mutex, so the sanitizer
   validates native streams with its full invariant set; fingerprints
   cross-check against simulator runs of the same program. *)

module Compiled = Hbc_core.Compiled
module Rt_config = Hbc_core.Rt_config
module Pipeline = Hbc_core.Pipeline
module Run_request = Hbc_core.Run_request
module C = Sched.Core.Make (Domains_backend)

exception Internal_error = Hbc_core.Executor.Internal_error

(* When a native worker observes a heartbeat. [Wall_us] is the paper's
   interval timer; [Every_polls] is a deterministic poll-count proxy that
   makes single-domain runs reproducible (benchgate, CI smoke). *)
type beat_source = Wall_us of float | Every_polls of int

type status = Done | Promoted of int

type seg_result = Seg_ok | Seg_promoted of int

type task_state = { residual : int array; mutable no_promote : bool; mutable forbidden : int }

type run_state = {
  cfg : Rt_config.t;
  b : Domains_backend.t;
  core : C.t;
  beat : beat_source;
  next_beat : float array;  (* per worker, Wall_us only *)
  polls : int array;  (* per worker, Every_polls only *)
  ac : (int * int, Sched.Adaptive_chunking.t) Hashtbl.t array;
      (* per worker, keyed (nest_id, ord) — worker-private, no lock *)
  work : int array;  (* per-worker body-work cycles, summed at the end *)
  promotions : int Atomic.t;
  promo_left : int Atomic.t;  (* metered promotions; max_int = unmetered *)
  capture : bool;
  mutable exec_epoch : int;  (* driver-only mutation, between nests *)
}

type 'e nest_handle = { st : run_state; nest : 'e Compiled.nest; nest_id : int; env : 'e }

let wid (st : run_state) = Domains_backend.worker_id st.b

let emit (st : run_state) ev = Domains_backend.critical st.b (fun () -> Domains_backend.emit st.b ev)

let add_work (st : run_state) c = if c > 0 then st.work.(wid st) <- st.work.(wid st) + c

(* One heartbeat check on this worker. A leaf poll counts ([count_poll]);
   a non-leaf latch only reads the flag, exactly as in the simulator. *)
let consume (st : run_state) w ~count_poll =
  match st.beat with
  | Every_polls n ->
      if count_poll then st.polls.(w) <- st.polls.(w) + 1;
      if st.polls.(w) >= n then begin
        st.polls.(w) <- 0;
        true
      end
      else false
  | Wall_us us ->
      let t = Unix.gettimeofday () in
      if t >= st.next_beat.(w) then begin
        st.next_beat.(w) <- t +. (us *. 1e-6);
        true
      end
      else false

(* Spend one metered promotion, failing when racing workers drained the
   meter first; unmetered runs never touch the counter. *)
let spend_promotion st =
  if Atomic.get st.promo_left = Stdlib.max_int then true
  else begin
    let rec go () =
      let v = Atomic.get st.promo_left in
      v > 0 && (Atomic.compare_and_set st.promo_left v (v - 1) || go ())
    in
    go ()
  end

let fresh_task_state c =
  {
    residual = Array.make (Ir.Nesting_tree.size c.nest.Compiled.tree) 0;
    no_promote = false;
    forbidden = -1;
  }

let ac_for st ~worker ~nest_id ~ord =
  let tbl = st.ac.(worker) in
  let key = (nest_id, ord) in
  match Hashtbl.find_opt tbl key with
  | Some a -> a
  | None ->
      let a =
        Sched.Adaptive_chunking.create ~target_polls:st.cfg.Rt_config.ac_target_polls
          ~window:st.cfg.Rt_config.ac_window ()
      in
      Hashtbl.add tbl key a;
      a

(* Sequential subtree execution for non-DOALL (pruned) loops. *)
let rec serial_loop c (ctxs : Ir.Ctx.set) (l : _ Ir.Nest.loop) acc =
  let ctx = ctxs.(l.Ir.Nest.ordinal) in
  let lo, hi = l.Ir.Nest.bounds c.env ctxs in
  Ir.Ctx.set_slice ctx ~lo ~hi;
  (match l.Ir.Nest.init with Some f -> f c.env ctx.Ir.Ctx.locals | None -> ());
  while ctx.Ir.Ctx.lo < ctx.Ir.Ctx.hi do
    List.iter
      (fun seg ->
        match seg with
        | Ir.Nest.Stmt s -> acc := !acc + s.Ir.Nest.exec c.env ctxs ctx.Ir.Ctx.lo
        | Ir.Nest.Nested child -> serial_loop c ctxs child acc)
      l.Ir.Nest.body;
    ctx.Ir.Ctx.lo <- ctx.Ir.Ctx.lo + 1
  done

let exec_leaf_iteration c ctxs (info : _ Compiled.loop_info) iter acc =
  List.iter
    (fun seg ->
      match seg with
      | Ir.Nest.Stmt s -> acc := !acc + s.Ir.Nest.exec c.env ctxs iter
      | Ir.Nest.Nested child -> serial_loop c ctxs child acc)
    info.Compiled.loop.Ir.Nest.body

(* Same invocation-key scheme as the executor (content hash of the
   ancestor iteration vector + nest id + execution epoch), so spawned
   halves and leftover continuations of one invocation land on one key
   and the sanitizer's tiling check works on native traces unchanged. *)
let slice_key c (ctxs : Ir.Ctx.set) ord =
  let h = ref (((c.nest_id + 1) * 8191) + c.st.exec_epoch) in
  List.iter
    (fun o -> if o <> ord then h := (!h * 1000003) + ctxs.(o).Ir.Ctx.lo + 1)
    c.nest.Compiled.infos.(ord).Compiled.chain_from_root;
  ((!h * 1000003) + ord) land max_int

let emit_slice_enter c ctxs ord =
  let st = c.st in
  if st.capture then begin
    let ctx = ctxs.(ord) in
    emit st
      (Obs.Trace.Slice_enter
         {
           nest = c.nest_id;
           ord;
           key = slice_key c ctxs ord;
           lo = ctx.Ir.Ctx.lo;
           hi = ctx.Ir.Ctx.hi;
         })
  end

let emit_iter_exec c ctxs ord ~lo ~hi =
  let st = c.st in
  if st.capture && hi > lo then
    emit st (Obs.Trace.Iter_exec { nest = c.nest_id; ord; key = slice_key c ctxs ord; lo; hi })

let rec run_slice : 'e. 'e nest_handle -> task_state -> Ir.Ctx.set -> int -> status =
 fun c ts ctxs ord ->
  let info = c.nest.Compiled.infos.(ord) in
  let ctx = ctxs.(ord) in
  if not info.Compiled.doall then begin
    (* Bounds were set by the caller; run the subtree serially. *)
    let acc = ref 0 in
    while ctx.Ir.Ctx.lo < ctx.Ir.Ctx.hi do
      List.iter
        (fun seg ->
          match seg with
          | Ir.Nest.Stmt s -> acc := !acc + s.Ir.Nest.exec c.env ctxs ctx.Ir.Ctx.lo
          | Ir.Nest.Nested child -> serial_loop c ctxs child acc)
        info.Compiled.loop.Ir.Nest.body;
      ctx.Ir.Ctx.lo <- ctx.Ir.Ctx.lo + 1
    done;
    add_work c.st !acc;
    Done
  end
  else if info.Compiled.is_leaf then run_leaf c ts ctxs info
  else run_general c ts ctxs info

and run_leaf : 'e. 'e nest_handle -> task_state -> Ir.Ctx.set -> 'e Compiled.loop_info -> status
    =
 fun c ts ctxs info ->
  let st = c.st in
  let ord = info.Compiled.ordinal in
  let ctx = ctxs.(ord) in
  let w = wid st in
  let ac =
    match info.Compiled.chunk with
    | Compiled.Adaptive -> Some (ac_for st ~worker:w ~nest_id:c.nest_id ~ord)
    | Compiled.Static _ | Compiled.No_chunking -> None
  in
  if not st.cfg.Rt_config.chunk_transferring then ts.residual.(ord) <- 0;
  let result = ref None in
  let handle_beat () =
    (match ac with
    | Some a when st.capture -> (
        match Sched.Adaptive_chunking.on_heartbeat_full a with
        | Some d ->
            emit st
              (Obs.Trace.Chunk_update
                 {
                   key = ctxs.(c.nest.Compiled.root).Ir.Ctx.lo;
                   chunk = d.Sched.Adaptive_chunking.new_chunk;
                 });
            emit st
              (Obs.Trace.Chunk_decision
                 {
                   key = slice_key c ctxs ord;
                   old_chunk = d.Sched.Adaptive_chunking.old_chunk;
                   min_polls = d.Sched.Adaptive_chunking.min_polls;
                   chunk = d.Sched.Adaptive_chunking.new_chunk;
                 })
        | None -> ())
    | Some a -> ignore (Sched.Adaptive_chunking.on_heartbeat a)
    | None -> ());
    if st.cfg.Rt_config.promotion && not ts.no_promote && Atomic.get st.promo_left > 0 then
      promote c ts ctxs info
    else None
  in
  while !result = None && ctx.Ir.Ctx.lo < ctx.Ir.Ctx.hi do
    let s =
      match info.Compiled.chunk with
      | Compiled.No_chunking -> 1
      | Compiled.Static s -> s
      | Compiled.Adaptive -> Sched.Adaptive_chunking.chunk_size (Option.get ac)
    in
    if ts.residual.(ord) <= 0 then ts.residual.(ord) <- s;
    let start = ctx.Ir.Ctx.lo in
    let todo = Stdlib.min ts.residual.(ord) (ctx.Ir.Ctx.hi - start) in
    let acc = ref 0 in
    for k = 0 to todo - 1 do
      ctx.Ir.Ctx.lo <- start + k;
      exec_leaf_iteration c ctxs info (start + k) acc
    done;
    emit_iter_exec c ctxs ord ~lo:start ~hi:(start + todo);
    add_work st !acc;
    (* ctx.lo is the last executed iteration: the latch sees it, the
       leftover task resumes at lo + 1. *)
    ts.residual.(ord) <- ts.residual.(ord) - todo;
    if ts.residual.(ord) = 0 then begin
      (match ac with Some a -> Sched.Adaptive_chunking.on_poll a | None -> ());
      let beat = consume st w ~count_poll:true || st.cfg.Rt_config.force_promotion in
      if beat then begin
        match handle_beat () with
        | Some s -> result := Some s
        | None -> ctx.Ir.Ctx.lo <- ctx.Ir.Ctx.lo + 1
      end
      else ctx.Ir.Ctx.lo <- ctx.Ir.Ctx.lo + 1
    end
    else
      (* Partial chunk: the invocation ends here and the residual transfers
         to the next invocation of this leaf in this task. *)
      ctx.Ir.Ctx.lo <- ctx.Ir.Ctx.lo + 1
  done;
  match !result with Some s -> s | None -> Done

and run_general :
    'e. 'e nest_handle -> task_state -> Ir.Ctx.set -> 'e Compiled.loop_info -> status =
 fun c ts ctxs info ->
  let st = c.st in
  let ctx = ctxs.(info.Compiled.ordinal) in
  let result = ref None in
  while !result = None && ctx.Ir.Ctx.lo < ctx.Ir.Ctx.hi do
    let iter = ctx.Ir.Ctx.lo in
    match run_segments c ts ctxs info info.Compiled.loop.Ir.Nest.body iter with
    | Seg_promoted j when j = info.Compiled.ordinal -> result := Some Done
    | Seg_promoted j -> result := Some (Promoted j)
    | Seg_ok ->
        (* Emitted before the latch so a promotion splitting this loop
           cannot lose the completed iteration. *)
        emit_iter_exec c ctxs info.Compiled.ordinal ~lo:iter ~hi:(iter + 1);
        let beat = consume st (wid st) ~count_poll:false || st.cfg.Rt_config.force_promotion in
        if beat && st.cfg.Rt_config.promotion && not ts.no_promote && Atomic.get st.promo_left > 0
        then begin
          match promote c ts ctxs info with
          | Some s -> result := Some s
          | None -> ctx.Ir.Ctx.lo <- iter + 1
        end
        else ctx.Ir.Ctx.lo <- iter + 1
  done;
  match !result with Some s -> s | None -> Done

and run_segments :
    'e.
    'e nest_handle ->
    task_state ->
    Ir.Ctx.set ->
    'e Compiled.loop_info ->
    'e Ir.Nest.segment list ->
    int ->
    seg_result =
 fun c ts ctxs _info segs iter ->
  let st = c.st in
  let rec go = function
    | [] -> Seg_ok
    | Ir.Nest.Stmt s :: rest ->
        add_work st (s.Ir.Nest.exec c.env ctxs iter);
        go rest
    | Ir.Nest.Nested child :: rest ->
        let cinfo = c.nest.Compiled.infos.(child.Ir.Nest.ordinal) in
        if cinfo.Compiled.doall then begin
          let lo, hi = child.Ir.Nest.bounds c.env ctxs in
          Ir.Ctx.set_slice ctxs.(child.Ir.Nest.ordinal) ~lo ~hi;
          (match child.Ir.Nest.init with
          | Some f -> f c.env ctxs.(child.Ir.Nest.ordinal).Ir.Ctx.locals
          | None -> ());
          emit_slice_enter c ctxs child.Ir.Nest.ordinal;
          match run_slice c ts ctxs child.Ir.Nest.ordinal with
          | Done -> go rest
          | Promoted j -> Seg_promoted j
        end
        else begin
          let acc = ref 0 in
          serial_loop c ctxs child acc;
          add_work st !acc;
          go rest
        end
  in
  go segs

(* The promotion handler: policy-chosen split of the current context
   chain, task creation through the shared core, clone-optimized join.
   One native-only difference from the executor: reduction halves are
   combined on the owner after the join (in spawn order) instead of
   inside each spawned task — two tasks mutating the parent's locals
   concurrently would race; the join's acquire publishes their writes. *)
and promote :
    'e. 'e nest_handle -> task_state -> Ir.Ctx.set -> 'e Compiled.loop_info -> status option =
 fun c ts ctxs cur ->
  let st = c.st in
  let ts_forbidden = ts.forbidden in
  let statically_splittable o =
    c.nest.Compiled.infos.(o).Compiled.doall
    && (o = cur.Compiled.ordinal
       || Compiled.find_leftover c.nest ~li:cur.Compiled.ordinal ~lj:o <> None)
  in
  let splittable o = statically_splittable o && Ir.Ctx.remaining ctxs.(o) >= 1 in
  let chain = Sched.Policy.owned_suffix ~forbidden:ts_forbidden cur.Compiled.chain_from_root in
  match Sched.Policy.choose_target ~policy:st.cfg.Rt_config.policy ~splittable chain with
  | None -> None
  | Some tgt ->
      if not (spend_promotion st) then None
      else begin
        Atomic.incr st.promotions;
        if st.capture then
          emit st
            (Obs.Trace.Promote_choice
               {
                 cur = cur.Compiled.ordinal;
                 tgt;
                 chain =
                   List.map
                     (fun o -> (o, statically_splittable o, Ir.Ctx.remaining ctxs.(o)))
                     chain;
               });
        let tinfo = c.nest.Compiled.infos.(tgt) in
        emit st (Obs.Trace.promotion tinfo.Compiled.depth);
        let tctx = ctxs.(tgt) in
        let rem_lo = tctx.Ir.Ctx.lo + 1 and rem_hi = tctx.Ir.Ctx.hi in
        tctx.Ir.Ctx.hi <- tctx.Ir.Ctx.lo + 1;
        let mid = Sched.Policy.split_point ~lo:rem_lo ~hi:rem_hi in
        let join = C.new_join st.core in
        let reduction = tinfo.Compiled.loop.Ir.Nest.reduction in
        let spawned = ref [] in
        let spawn_slice lo hi =
          if hi > lo then begin
            let nctxs = Ir.Ctx.copy_set ctxs in
            Ir.Ctx.refresh_subtree nctxs ~ordinals:tinfo.Compiled.subtree
              ~specs:c.nest.Compiled.specs;
            Ir.Ctx.set_slice nctxs.(tgt) ~lo ~hi;
            (match tinfo.Compiled.loop.Ir.Nest.init with
            | Some f -> f c.env nctxs.(tgt).Ir.Ctx.locals
            | None -> ());
            spawned := nctxs :: !spawned;
            C.add_pending join;
            C.push_task st.core
              (C.mk_task st.core (fun () ->
                   let ts' = fresh_task_state c in
                   ts'.forbidden <- Option.value ~default:(-1) tinfo.Compiled.parent;
                   (match run_slice c ts' nctxs tgt with Done | Promoted _ -> ());
                   C.finish_join st.core join))
          end
        in
        spawn_slice rem_lo mid;
        spawn_slice mid rem_hi;
        (if tgt <> cur.Compiled.ordinal then
           match Compiled.find_leftover c.nest ~li:cur.Compiled.ordinal ~lj:tgt with
           | None ->
               raise
                 (Internal_error
                    (Printf.sprintf "missing leftover task for pair (%d, %d)" cur.Compiled.ordinal
                       tgt))
           | Some leftover -> (
               let lctxs = Ir.Ctx.copy_set ctxs in
               match st.cfg.Rt_config.leftover with
               | Rt_config.Spawn ->
                   C.add_pending join;
                   C.push_task st.core
                     (C.mk_task st.core (fun () ->
                          run_leftover c ~no_promote:false lctxs leftover;
                          C.finish_join st.core join))
               | Rt_config.Inline -> run_leftover c ~no_promote:false lctxs leftover));
        C.join_wait st.core join;
        (match reduction with
        | Some combine ->
            List.iter
              (fun nctxs -> combine tctx.Ir.Ctx.locals nctxs.(tgt).Ir.Ctx.locals)
              (List.rev !spawned)
        | None -> ());
        Some (if tgt = cur.Compiled.ordinal then Done else Promoted tgt)
      end

and run_leftover : 'e. 'e nest_handle -> no_promote:bool -> Ir.Ctx.set -> Compiled.leftover -> unit
    =
 fun c ~no_promote ctxs leftover ->
  let st = c.st in
  if st.capture then emit st Obs.Trace.Leftover_run;
  let ts = fresh_task_state c in
  ts.no_promote <- no_promote;
  ts.forbidden <- leftover.Compiled.lj;
  let steps = Array.of_list leftover.Compiled.steps in
  let is_call = function
    | Compiled.Call_slice o -> Some o
    | Compiled.Increase_iv _ | Compiled.Tail_work _ -> None
  in
  let exec step =
    match step with
    | Compiled.Increase_iv o ->
        ctxs.(o).Ir.Ctx.lo <- ctxs.(o).Ir.Ctx.lo + 1;
        Sched.Leftover_walk.Next
    | Compiled.Call_slice o -> (
        match run_slice c ts ctxs o with
        | Done -> Sched.Leftover_walk.Next
        | Promoted j when j = o -> Sched.Leftover_walk.Next
        | Promoted j -> Sched.Leftover_walk.Skip_past j)
    | Compiled.Tail_work { of_; after } -> (
        let info = c.nest.Compiled.infos.(of_) in
        let segs = Compiled.tail_of info ~after in
        match run_segments c ts ctxs info segs ctxs.(of_).Ir.Ctx.lo with
        | Seg_ok ->
            emit_iter_exec c ctxs of_ ~lo:ctxs.(of_).Ir.Ctx.lo ~hi:(ctxs.(of_).Ir.Ctx.lo + 1);
            Sched.Leftover_walk.Next
        | Seg_promoted j -> Sched.Leftover_walk.Skip_past j)
  in
  try Sched.Leftover_walk.run ~steps ~is_call ~exec
  with Sched.Leftover_walk.Missing_call j ->
    raise (Internal_error (Printf.sprintf "leftover skip: no Call_slice %d" j))

let exec_nest st (compiled : 'e Pipeline.program) (env : 'e) nest =
  let rec find i = function
    | [] -> raise (Internal_error "exec of a nest the program did not declare")
    | (src, cn) :: rest -> if src == nest then (i, cn) else find (i + 1) rest
  in
  let nest_id, cn = find 0 compiled.Pipeline.nests in
  st.exec_epoch <- st.exec_epoch + 1;
  let c = { st; nest = cn; nest_id; env } in
  let n = Ir.Nesting_tree.size cn.Compiled.tree in
  let ctxs = Array.init n (fun o -> Ir.Ctx.make ~ordinal:o ~spec:cn.Compiled.specs.(o)) in
  let root = cn.Compiled.root in
  let rinfo = cn.Compiled.infos.(root) in
  let lo, hi = rinfo.Compiled.loop.Ir.Nest.bounds env ctxs in
  Ir.Ctx.set_slice ctxs.(root) ~lo ~hi;
  (match rinfo.Compiled.loop.Ir.Nest.init with
  | Some f -> f env ctxs.(root).Ir.Ctx.locals
  | None -> ());
  if rinfo.Compiled.doall then emit_slice_enter c ctxs root;
  let ts = fresh_task_state c in
  (match run_slice c ts ctxs root with
  | Done -> ()
  | Promoted _ -> raise (Internal_error "root slice reported an ancestor promotion"));
  match rinfo.Compiled.loop.Ir.Nest.commit with Some f -> f env ctxs | None -> ()

let run_program ?(request = Run_request.default) ?(beat = Wall_us 100.0) (cfg : Rt_config.t)
    (compiled : 'e Pipeline.program) : Sim.Run_result.t =
  (match request.Run_request.fault_plan with
  | Some _ -> invalid_arg "Native_run: fault injection is simulator-only"
  | None -> ());
  (match (request.Run_request.pause_at, request.Run_request.resume_from) with
  | None, None -> ()
  | _ -> invalid_arg "Native_run: pause/resume checkpointing is simulator-only");
  let program = compiled.Pipeline.source in
  let env = program.Ir.Program.make_env () in
  let n = Stdlib.max 1 cfg.Rt_config.workers in
  let capture = Obs.Trace.Sink.enabled request.Run_request.trace in
  let b = Domains_backend.create ~workers:n ~trace:request.Run_request.trace ~capture in
  let core = C.create b in
  let st =
    {
      cfg;
      b;
      core;
      beat;
      next_beat = Array.make n 0.0;
      polls = Array.make n 0;
      ac = Array.init n (fun _ -> Hashtbl.create 8);
      work = Array.make n 0;
      promotions = Atomic.make 0;
      promo_left =
        Atomic.make
          (match request.Run_request.promotion_budget with
          | Some bud -> Stdlib.max 0 bud
          | None -> Stdlib.max_int);
      capture;
      exec_epoch = 0;
    }
  in
  (match beat with
  | Wall_us us ->
      let t0 = Unix.gettimeofday () +. (us *. 1e-6) in
      Array.iteri (fun i _ -> st.next_beat.(i) <- t0) st.next_beat
  | Every_polls _ -> ());
  Domains_backend.register ~worker:0;
  let domains =
    List.init (n - 1) (fun i ->
        Domain.spawn (fun () ->
            Domains_backend.register ~worker:(i + 1);
            C.scavenge core))
  in
  let t_start = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      C.set_finished core;
      List.iter Domain.join domains)
    (fun () ->
      (* Driver intervals cover only the serial segments between nests —
         while a nest runs, worker 0 records its own task intervals, and
         one interval spanning the whole run would overlap them. *)
      let mark = ref (Domains_backend.now b) in
      let driver_segment_ends () =
        if st.capture && Domains_backend.now b > !mark then
          emit st (Obs.Trace.Interval { t0 = !mark; kind = "driver" })
      in
      let cpu =
        {
          Ir.Program.exec =
            (fun nest ->
              driver_segment_ends ();
              exec_nest st compiled env nest;
              mark := Domains_backend.now b);
          advance = (fun cyc -> add_work st cyc);
        }
      in
      program.Ir.Program.driver env cpu;
      driver_segment_ends ());
  let elapsed_us = int_of_float ((Unix.gettimeofday () -. t_start) *. 1e6) in
  let metrics = Sim.Metrics.create () in
  metrics.Sim.Metrics.work_cycles <- Array.fold_left ( + ) 0 st.work;
  metrics.Sim.Metrics.promotions <- Atomic.get st.promotions;
  {
    (* makespan is wall microseconds here, not virtual cycles — comparable
       only between native runs. *)
    Sim.Run_result.makespan = elapsed_us;
    metrics;
    fingerprint = program.Ir.Program.fingerprint env;
    work_cycles = metrics.Sim.Metrics.work_cycles;
    dnf = false;
    termination = Sim.Run_result.Finished;
    trace = Obs.Trace.Sink.captured request.Run_request.trace;
    sanitizer = None;
  }

let run ?request ?beat cfg program =
  run_program ?request ?beat cfg (Pipeline.compile_program ~chunk:cfg.Rt_config.chunk program)
