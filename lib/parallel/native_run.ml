(* The compiled-nest interpreter on real OCaml 5 domains.

   This is the executor's interpreter minus the virtual-time machinery:
   no cost charging, no membus — real time is simply spent. Everything
   the paper argues about is shared with the simulator through
   [lib/sched]: the promotion choice ([Sched.Policy]), the
   adaptive-chunking rule ([Sched.Adaptive_chunking]), the leftover walk
   ([Sched.Leftover_walk]) and the whole deque/steal/join discipline
   ([Sched.Core.Make (Domains_backend)]). Traced runs emit the same
   capture-gated [Obs.Trace] events at the same operation boundaries as
   the simulator, linearized by the backend's mutex, so the sanitizer
   validates native streams with its full invariant set; fingerprints
   cross-check against simulator runs of the same program.

   Fault tolerance (the robustness layer, all strictly opt-in):

   - Chaos: a backend-portable [Sim.Fault_plan] attaches a
     [Sim.Fault_injector] to the backend. Steal refusals and wakeup
     suppressions are drawn inside the backend; dropped beats and
     poll-counted stalls are drawn here at beat boundaries. Decisions
     come from per-worker seeded streams, so the decision sequence is
     reproducible from (plan seed, P). Simulator-only kinds (cycle
     jitter, cycle-counted stalls) are refused with a precise error.

   - Watchdog ladder: rung 1 detects a beat-starved worker
     ([watchdog_k] consecutive suppressed beats) and downgrades it to
     polling fallback — beats always deliver from then on; rung 2 runs
     on the monitor domain, samples per-worker progress counters, and
     disables further promotions when a busy worker makes no progress
     for a bounded window. Both rungs emit [Mechanism_downgrade].

   - Pause/checkpoint-resume: under the deterministic [Every_polls]
     beat with one worker, a run can pause at a scheduling-point
     boundary, serialize a [Sim.Checkpoint_state], and resume by
     replaying from scratch with the trace gated until the boundary,
     where the re-derived state must be byte-identical (the same
     replay-with-verify scheme the simulator executor uses — fibers and
     stacks cannot be serialized, determinism can). *)

module Compiled = Hbc_core.Compiled
module Rt_config = Hbc_core.Rt_config
module Pipeline = Hbc_core.Pipeline
module Run_request = Hbc_core.Run_request
module C = Sched.Core.Make (Domains_backend)

exception Internal_error = Hbc_core.Executor.Internal_error

(* Pause/resume control flow: [Pause_now] unwinds the run at the armed
   boundary (the heap state it needs — contexts, live-slice registry,
   deques — survives the unwind untouched); [Resume_diverged] aborts a
   replay whose re-derived boundary state mismatched the checkpoint. *)
exception Pause_now

exception Resume_diverged of string

(* When a native worker observes a heartbeat. [Wall_us] is the paper's
   interval timer; [Every_polls] is a deterministic poll-count proxy that
   makes single-domain runs reproducible (benchgate, CI smoke). *)
type beat_source = Wall_us of float | Every_polls of int

type status = Done | Promoted of int

type seg_result = Seg_ok | Seg_promoted of int

type task_state = { residual : int array; mutable no_promote : bool; mutable forbidden : int }

(* Live-slice registry for checkpoint capture, armed only when the request
   pauses or resumes (same scheme as the executor's): one LIFO stack per
   worker holds the DOALL slice activations currently on that worker's
   stack; the checkpoint reads each context's remaining range in place at
   the pause boundary. Unarmed runs skip it entirely. *)
type live_slice = { ck_key : int; ck_nest : string; ck_ctx : Ir.Ctx.t }

type run_state = {
  cfg : Rt_config.t;
  b : Domains_backend.t;
  core : C.t;
  beat : beat_source;
  next_beat : float array;  (* per worker, Wall_us only *)
  polls : int array;  (* per worker, Every_polls only *)
  progress : int array;
      (* per-worker scheduling-point counter (every consume call), always
         bumped: the pause-boundary clock at P=1 and the liveness signal
         the monitor watchdog samples. Plain stores — monitor reads race,
         which the watchdog tolerates. *)
  ac : (int * int, Sched.Adaptive_chunking.t) Hashtbl.t array;
      (* per worker, keyed (nest_id, ord) — worker-private, no lock *)
  work : int array;  (* per-worker body-work cycles, summed at the end *)
  promotions : int Atomic.t;
  promo_left : int Atomic.t;  (* metered promotions; max_int = unmetered *)
  promo_disabled : bool Atomic.t;  (* watchdog rung 2: no further splits *)
  capture : bool;
  chaos : bool;  (* an active fault injector is attached to the backend *)
  stall_left : int array;  (* injected stall: polls left to ignore beats *)
  since_beat : int array;  (* consecutive suppressed beats (watchdog rung 1) *)
  downgraded : bool array;  (* rung 1 tripped: polling fallback, beats always land *)
  downgrades : int Atomic.t;
  live_slices : live_slice list array option;
  mutable next_mark : int;
      (* progress value of the next pause/regrant/verify boundary on
         worker 0; max_int when none is armed (the common case) *)
  mutable on_mark : unit -> unit;
  mutable exec_epoch : int;  (* driver-only mutation, between nests *)
}

type 'e nest_handle = { st : run_state; nest : 'e Compiled.nest; nest_id : int; env : 'e }

let wid (st : run_state) = Domains_backend.worker_id st.b

let emit (st : run_state) ev = Domains_backend.critical st.b (fun () -> Domains_backend.emit st.b ev)

let add_work (st : run_state) c = if c > 0 then st.work.(wid st) <- st.work.(wid st) + c

(* A beat reached [w]'s boundary under chaos on a non-downgraded worker:
   decide delivery. An injected stall window or a drop suppresses it;
   [watchdog_k] consecutive suppressions trip rung 1 — from then on the
   worker polls for beats directly (downgraded), so starvation is bounded
   by [watchdog_k] beat periods. *)
let chaos_beat st w =
  let inj = Domains_backend.injector st.b in
  let suppressed =
    if st.stall_left.(w) > 0 then true
    else begin
      let s = Sim.Fault_injector.stall_polls inj ~worker:w in
      if s > 0 then begin
        st.stall_left.(w) <- s;
        true
      end
      else Sim.Fault_injector.drop_beat inj ~worker:w
    end
  in
  if not suppressed then begin
    st.since_beat.(w) <- 0;
    true
  end
  else begin
    st.since_beat.(w) <- st.since_beat.(w) + 1;
    if st.since_beat.(w) >= st.cfg.Rt_config.watchdog_k then begin
      st.downgraded.(w) <- true;
      st.stall_left.(w) <- 0;
      Atomic.incr st.downgrades;
      emit st Obs.Trace.Mechanism_downgrade;
      (* the fallback poll delivers the beat that tripped the watchdog *)
      true
    end
    else false
  end

(* One heartbeat check on this worker. A leaf poll counts ([count_poll]);
   a non-leaf latch only reads the flag, exactly as in the simulator.
   Every call bumps the progress counter (one plain store — the untraced
   fault-free hot path stays allocation-free); chaos and pause marks cost
   nothing when unarmed thanks to the [chaos] bool and the max_int
   sentinel. *)
let consume (st : run_state) w ~count_poll =
  st.progress.(w) <- st.progress.(w) + 1;
  if count_poll && st.chaos && st.stall_left.(w) > 0 then
    st.stall_left.(w) <- st.stall_left.(w) - 1;
  if st.progress.(w) = st.next_mark then st.on_mark ();
  let boundary =
    match st.beat with
    | Every_polls n ->
        if count_poll then st.polls.(w) <- st.polls.(w) + 1;
        if st.polls.(w) >= n then begin
          st.polls.(w) <- 0;
          true
        end
        else false
    | Wall_us us ->
        let t = Unix.gettimeofday () in
        if t >= st.next_beat.(w) then begin
          st.next_beat.(w) <- t +. (us *. 1e-6);
          true
        end
        else false
  in
  boundary && ((not st.chaos) || st.downgraded.(w) || chaos_beat st w)

(* Spend one metered promotion, failing when racing workers drained the
   meter first; unmetered runs never touch the counter. *)
let spend_promotion st =
  if Atomic.get st.promo_left = Stdlib.max_int then true
  else begin
    let rec go () =
      let v = Atomic.get st.promo_left in
      v > 0 && (Atomic.compare_and_set st.promo_left v (v - 1) || go ())
    in
    go ()
  end

(* The promotion gate shared by leaf beats and general-loop latches: the
   rung-2 watchdog can veto all further splits (the run then degrades to
   serial execution of what remains, which is always correct). *)
let may_promote st (ts : task_state) =
  st.cfg.Rt_config.promotion && (not ts.no_promote)
  && Atomic.get st.promo_left > 0
  && not (Atomic.get st.promo_disabled)

let fresh_task_state c =
  {
    residual = Array.make (Ir.Nesting_tree.size c.nest.Compiled.tree) 0;
    no_promote = false;
    forbidden = -1;
  }

let ac_for st ~worker ~nest_id ~ord =
  let tbl = st.ac.(worker) in
  let key = (nest_id, ord) in
  match Hashtbl.find_opt tbl key with
  | Some a -> a
  | None ->
      let a =
        Sched.Adaptive_chunking.create ~target_polls:st.cfg.Rt_config.ac_target_polls
          ~window:st.cfg.Rt_config.ac_window ()
      in
      Hashtbl.add tbl key a;
      a

(* Sequential subtree execution for non-DOALL (pruned) loops. *)
let rec serial_loop c (ctxs : Ir.Ctx.set) (l : _ Ir.Nest.loop) acc =
  let ctx = ctxs.(l.Ir.Nest.ordinal) in
  let lo, hi = l.Ir.Nest.bounds c.env ctxs in
  Ir.Ctx.set_slice ctx ~lo ~hi;
  (match l.Ir.Nest.init with Some f -> f c.env ctx.Ir.Ctx.locals | None -> ());
  while ctx.Ir.Ctx.lo < ctx.Ir.Ctx.hi do
    List.iter
      (fun seg ->
        match seg with
        | Ir.Nest.Stmt s -> acc := !acc + s.Ir.Nest.exec c.env ctxs ctx.Ir.Ctx.lo
        | Ir.Nest.Nested child -> serial_loop c ctxs child acc)
      l.Ir.Nest.body;
    ctx.Ir.Ctx.lo <- ctx.Ir.Ctx.lo + 1
  done

let exec_leaf_iteration c ctxs (info : _ Compiled.loop_info) iter acc =
  List.iter
    (fun seg ->
      match seg with
      | Ir.Nest.Stmt s -> acc := !acc + s.Ir.Nest.exec c.env ctxs iter
      | Ir.Nest.Nested child -> serial_loop c ctxs child acc)
    info.Compiled.loop.Ir.Nest.body

(* Same invocation-key scheme as the executor (content hash of the
   ancestor iteration vector + nest id + execution epoch), so spawned
   halves and leftover continuations of one invocation land on one key
   and the sanitizer's tiling check works on native traces unchanged. *)
let slice_key c (ctxs : Ir.Ctx.set) ord =
  let h = ref (((c.nest_id + 1) * 8191) + c.st.exec_epoch) in
  List.iter
    (fun o -> if o <> ord then h := (!h * 1000003) + ctxs.(o).Ir.Ctx.lo + 1)
    c.nest.Compiled.infos.(ord).Compiled.chain_from_root;
  ((!h * 1000003) + ord) land max_int

let emit_slice_enter c ctxs ord =
  let st = c.st in
  if st.capture then begin
    let ctx = ctxs.(ord) in
    emit st
      (Obs.Trace.Slice_enter
         {
           nest = c.nest_id;
           ord;
           key = slice_key c ctxs ord;
           lo = ctx.Ir.Ctx.lo;
           hi = ctx.Ir.Ctx.hi;
         })
  end

let emit_iter_exec c ctxs ord ~lo ~hi =
  let st = c.st in
  if st.capture && hi > lo then
    emit st (Obs.Trace.Iter_exec { nest = c.nest_id; ord; key = slice_key c ctxs ord; lo; hi })

let rec run_slice : 'e. 'e nest_handle -> task_state -> Ir.Ctx.set -> int -> status =
 fun c ts ctxs ord ->
  match c.st.live_slices with
  | Some live when c.nest.Compiled.infos.(ord).Compiled.doall ->
      (* Slices never migrate workers mid-run (a task executes on the
         worker that started it), so registration and removal hit the
         same stack. A [Pause_now] unwind skips the removal on purpose:
         the checkpoint reads the still-registered activations. *)
      let w = wid c.st in
      live.(w) <-
        {
          ck_key = slice_key c ctxs ord;
          ck_nest = Printf.sprintf "%s#%d" c.nest.Compiled.source_name ord;
          ck_ctx = ctxs.(ord);
        }
        :: live.(w);
      let r = run_slice_body c ts ctxs ord in
      (match live.(w) with _ :: rest -> live.(w) <- rest | [] -> ());
      r
  | _ -> run_slice_body c ts ctxs ord

and run_slice_body : 'e. 'e nest_handle -> task_state -> Ir.Ctx.set -> int -> status =
 fun c ts ctxs ord ->
  let info = c.nest.Compiled.infos.(ord) in
  let ctx = ctxs.(ord) in
  if not info.Compiled.doall then begin
    (* Bounds were set by the caller; run the subtree serially. *)
    let acc = ref 0 in
    while ctx.Ir.Ctx.lo < ctx.Ir.Ctx.hi do
      List.iter
        (fun seg ->
          match seg with
          | Ir.Nest.Stmt s -> acc := !acc + s.Ir.Nest.exec c.env ctxs ctx.Ir.Ctx.lo
          | Ir.Nest.Nested child -> serial_loop c ctxs child acc)
        info.Compiled.loop.Ir.Nest.body;
      ctx.Ir.Ctx.lo <- ctx.Ir.Ctx.lo + 1
    done;
    add_work c.st !acc;
    Done
  end
  else if info.Compiled.is_leaf then run_leaf c ts ctxs info
  else run_general c ts ctxs info

and run_leaf : 'e. 'e nest_handle -> task_state -> Ir.Ctx.set -> 'e Compiled.loop_info -> status
    =
 fun c ts ctxs info ->
  let st = c.st in
  let ord = info.Compiled.ordinal in
  let ctx = ctxs.(ord) in
  let w = wid st in
  let ac =
    match info.Compiled.chunk with
    | Compiled.Adaptive -> Some (ac_for st ~worker:w ~nest_id:c.nest_id ~ord)
    | Compiled.Static _ | Compiled.No_chunking -> None
  in
  if not st.cfg.Rt_config.chunk_transferring then ts.residual.(ord) <- 0;
  let result = ref None in
  let handle_beat () =
    (match ac with
    | Some a when st.capture -> (
        match Sched.Adaptive_chunking.on_heartbeat_full a with
        | Some d ->
            emit st
              (Obs.Trace.Chunk_update
                 {
                   key = ctxs.(c.nest.Compiled.root).Ir.Ctx.lo;
                   chunk = d.Sched.Adaptive_chunking.new_chunk;
                 });
            emit st
              (Obs.Trace.Chunk_decision
                 {
                   key = slice_key c ctxs ord;
                   old_chunk = d.Sched.Adaptive_chunking.old_chunk;
                   min_polls = d.Sched.Adaptive_chunking.min_polls;
                   chunk = d.Sched.Adaptive_chunking.new_chunk;
                 })
        | None -> ())
    | Some a -> ignore (Sched.Adaptive_chunking.on_heartbeat a)
    | None -> ());
    if may_promote st ts then promote c ts ctxs info else None
  in
  while !result = None && ctx.Ir.Ctx.lo < ctx.Ir.Ctx.hi do
    let s =
      match info.Compiled.chunk with
      | Compiled.No_chunking -> 1
      | Compiled.Static s -> s
      | Compiled.Adaptive -> Sched.Adaptive_chunking.chunk_size (Option.get ac)
    in
    if ts.residual.(ord) <= 0 then ts.residual.(ord) <- s;
    let start = ctx.Ir.Ctx.lo in
    let todo = Stdlib.min ts.residual.(ord) (ctx.Ir.Ctx.hi - start) in
    let acc = ref 0 in
    for k = 0 to todo - 1 do
      ctx.Ir.Ctx.lo <- start + k;
      exec_leaf_iteration c ctxs info (start + k) acc
    done;
    emit_iter_exec c ctxs ord ~lo:start ~hi:(start + todo);
    add_work st !acc;
    (* ctx.lo is the last executed iteration: the latch sees it, the
       leftover task resumes at lo + 1. *)
    ts.residual.(ord) <- ts.residual.(ord) - todo;
    if ts.residual.(ord) = 0 then begin
      (match ac with Some a -> Sched.Adaptive_chunking.on_poll a | None -> ());
      let beat = consume st w ~count_poll:true || st.cfg.Rt_config.force_promotion in
      if beat then begin
        match handle_beat () with
        | Some s -> result := Some s
        | None -> ctx.Ir.Ctx.lo <- ctx.Ir.Ctx.lo + 1
      end
      else ctx.Ir.Ctx.lo <- ctx.Ir.Ctx.lo + 1
    end
    else
      (* Partial chunk: the invocation ends here and the residual transfers
         to the next invocation of this leaf in this task. *)
      ctx.Ir.Ctx.lo <- ctx.Ir.Ctx.lo + 1
  done;
  match !result with Some s -> s | None -> Done

and run_general :
    'e. 'e nest_handle -> task_state -> Ir.Ctx.set -> 'e Compiled.loop_info -> status =
 fun c ts ctxs info ->
  let st = c.st in
  let ctx = ctxs.(info.Compiled.ordinal) in
  let result = ref None in
  while !result = None && ctx.Ir.Ctx.lo < ctx.Ir.Ctx.hi do
    let iter = ctx.Ir.Ctx.lo in
    match run_segments c ts ctxs info info.Compiled.loop.Ir.Nest.body iter with
    | Seg_promoted j when j = info.Compiled.ordinal -> result := Some Done
    | Seg_promoted j -> result := Some (Promoted j)
    | Seg_ok ->
        (* Emitted before the latch so a promotion splitting this loop
           cannot lose the completed iteration. *)
        emit_iter_exec c ctxs info.Compiled.ordinal ~lo:iter ~hi:(iter + 1);
        let beat = consume st (wid st) ~count_poll:false || st.cfg.Rt_config.force_promotion in
        if beat && may_promote st ts then begin
          match promote c ts ctxs info with
          | Some s -> result := Some s
          | None -> ctx.Ir.Ctx.lo <- iter + 1
        end
        else ctx.Ir.Ctx.lo <- iter + 1
  done;
  match !result with Some s -> s | None -> Done

and run_segments :
    'e.
    'e nest_handle ->
    task_state ->
    Ir.Ctx.set ->
    'e Compiled.loop_info ->
    'e Ir.Nest.segment list ->
    int ->
    seg_result =
 fun c ts ctxs _info segs iter ->
  let st = c.st in
  let rec go = function
    | [] -> Seg_ok
    | Ir.Nest.Stmt s :: rest ->
        add_work st (s.Ir.Nest.exec c.env ctxs iter);
        go rest
    | Ir.Nest.Nested child :: rest ->
        let cinfo = c.nest.Compiled.infos.(child.Ir.Nest.ordinal) in
        if cinfo.Compiled.doall then begin
          let lo, hi = child.Ir.Nest.bounds c.env ctxs in
          Ir.Ctx.set_slice ctxs.(child.Ir.Nest.ordinal) ~lo ~hi;
          (match child.Ir.Nest.init with
          | Some f -> f c.env ctxs.(child.Ir.Nest.ordinal).Ir.Ctx.locals
          | None -> ());
          emit_slice_enter c ctxs child.Ir.Nest.ordinal;
          match run_slice c ts ctxs child.Ir.Nest.ordinal with
          | Done -> go rest
          | Promoted j -> Seg_promoted j
        end
        else begin
          let acc = ref 0 in
          serial_loop c ctxs child acc;
          add_work st !acc;
          go rest
        end
  in
  go segs

(* The promotion handler: policy-chosen split of the current context
   chain, task creation through the shared core, clone-optimized join.
   One native-only difference from the executor: reduction halves are
   combined on the owner after the join (in spawn order) instead of
   inside each spawned task — two tasks mutating the parent's locals
   concurrently would race; the join's acquire publishes their writes. *)
and promote :
    'e. 'e nest_handle -> task_state -> Ir.Ctx.set -> 'e Compiled.loop_info -> status option =
 fun c ts ctxs cur ->
  let st = c.st in
  let ts_forbidden = ts.forbidden in
  let statically_splittable o =
    c.nest.Compiled.infos.(o).Compiled.doall
    && (o = cur.Compiled.ordinal
       || Compiled.find_leftover c.nest ~li:cur.Compiled.ordinal ~lj:o <> None)
  in
  let splittable o = statically_splittable o && Ir.Ctx.remaining ctxs.(o) >= 1 in
  let chain = Sched.Policy.owned_suffix ~forbidden:ts_forbidden cur.Compiled.chain_from_root in
  match Sched.Policy.choose_target ~policy:st.cfg.Rt_config.policy ~splittable chain with
  | None -> None
  | Some tgt ->
      if not (spend_promotion st) then None
      else begin
        Atomic.incr st.promotions;
        if st.capture then
          emit st
            (Obs.Trace.Promote_choice
               {
                 cur = cur.Compiled.ordinal;
                 tgt;
                 chain =
                   List.map
                     (fun o -> (o, statically_splittable o, Ir.Ctx.remaining ctxs.(o)))
                     chain;
               });
        let tinfo = c.nest.Compiled.infos.(tgt) in
        emit st (Obs.Trace.promotion tinfo.Compiled.depth);
        let tctx = ctxs.(tgt) in
        let rem_lo = tctx.Ir.Ctx.lo + 1 and rem_hi = tctx.Ir.Ctx.hi in
        tctx.Ir.Ctx.hi <- tctx.Ir.Ctx.lo + 1;
        let mid = Sched.Policy.split_point ~lo:rem_lo ~hi:rem_hi in
        let join = C.new_join st.core in
        let reduction = tinfo.Compiled.loop.Ir.Nest.reduction in
        let spawned = ref [] in
        let spawn_slice lo hi =
          if hi > lo then begin
            let nctxs = Ir.Ctx.copy_set ctxs in
            Ir.Ctx.refresh_subtree nctxs ~ordinals:tinfo.Compiled.subtree
              ~specs:c.nest.Compiled.specs;
            Ir.Ctx.set_slice nctxs.(tgt) ~lo ~hi;
            (match tinfo.Compiled.loop.Ir.Nest.init with
            | Some f -> f c.env nctxs.(tgt).Ir.Ctx.locals
            | None -> ());
            spawned := nctxs :: !spawned;
            C.add_pending join;
            C.push_task st.core
              (C.mk_task st.core (fun () ->
                   let ts' = fresh_task_state c in
                   ts'.forbidden <- Option.value ~default:(-1) tinfo.Compiled.parent;
                   (match run_slice c ts' nctxs tgt with Done | Promoted _ -> ());
                   C.finish_join st.core join))
          end
        in
        spawn_slice rem_lo mid;
        spawn_slice mid rem_hi;
        (if tgt <> cur.Compiled.ordinal then
           match Compiled.find_leftover c.nest ~li:cur.Compiled.ordinal ~lj:tgt with
           | None ->
               raise
                 (Internal_error
                    (Printf.sprintf "missing leftover task for pair (%d, %d)" cur.Compiled.ordinal
                       tgt))
           | Some leftover -> (
               let lctxs = Ir.Ctx.copy_set ctxs in
               match st.cfg.Rt_config.leftover with
               | Rt_config.Spawn ->
                   C.add_pending join;
                   C.push_task st.core
                     (C.mk_task st.core (fun () ->
                          run_leftover c ~no_promote:false lctxs leftover;
                          C.finish_join st.core join))
               | Rt_config.Inline -> run_leftover c ~no_promote:false lctxs leftover));
        C.join_wait st.core join;
        (match reduction with
        | Some combine ->
            List.iter
              (fun nctxs -> combine tctx.Ir.Ctx.locals nctxs.(tgt).Ir.Ctx.locals)
              (List.rev !spawned)
        | None -> ());
        Some (if tgt = cur.Compiled.ordinal then Done else Promoted tgt)
      end

and run_leftover : 'e. 'e nest_handle -> no_promote:bool -> Ir.Ctx.set -> Compiled.leftover -> unit
    =
 fun c ~no_promote ctxs leftover ->
  let st = c.st in
  if st.capture then emit st Obs.Trace.Leftover_run;
  let ts = fresh_task_state c in
  ts.no_promote <- no_promote;
  ts.forbidden <- leftover.Compiled.lj;
  let steps = Array.of_list leftover.Compiled.steps in
  let is_call = function
    | Compiled.Call_slice o -> Some o
    | Compiled.Increase_iv _ | Compiled.Tail_work _ -> None
  in
  let exec step =
    match step with
    | Compiled.Increase_iv o ->
        ctxs.(o).Ir.Ctx.lo <- ctxs.(o).Ir.Ctx.lo + 1;
        Sched.Leftover_walk.Next
    | Compiled.Call_slice o -> (
        match run_slice c ts ctxs o with
        | Done -> Sched.Leftover_walk.Next
        | Promoted j when j = o -> Sched.Leftover_walk.Next
        | Promoted j -> Sched.Leftover_walk.Skip_past j)
    | Compiled.Tail_work { of_; after } -> (
        let info = c.nest.Compiled.infos.(of_) in
        let segs = Compiled.tail_of info ~after in
        match run_segments c ts ctxs info segs ctxs.(of_).Ir.Ctx.lo with
        | Seg_ok ->
            emit_iter_exec c ctxs of_ ~lo:ctxs.(of_).Ir.Ctx.lo ~hi:(ctxs.(of_).Ir.Ctx.lo + 1);
            Sched.Leftover_walk.Next
        | Seg_promoted j -> Sched.Leftover_walk.Skip_past j)
  in
  try Sched.Leftover_walk.run ~steps ~is_call ~exec
  with Sched.Leftover_walk.Missing_call j ->
    raise (Internal_error (Printf.sprintf "leftover skip: no Call_slice %d" j))

let exec_nest st (compiled : 'e Pipeline.program) (env : 'e) nest =
  let rec find i = function
    | [] -> raise (Internal_error "exec of a nest the program did not declare")
    | (src, cn) :: rest -> if src == nest then (i, cn) else find (i + 1) rest
  in
  let nest_id, cn = find 0 compiled.Pipeline.nests in
  st.exec_epoch <- st.exec_epoch + 1;
  let c = { st; nest = cn; nest_id; env } in
  let n = Ir.Nesting_tree.size cn.Compiled.tree in
  let ctxs = Array.init n (fun o -> Ir.Ctx.make ~ordinal:o ~spec:cn.Compiled.specs.(o)) in
  let root = cn.Compiled.root in
  let rinfo = cn.Compiled.infos.(root) in
  let lo, hi = rinfo.Compiled.loop.Ir.Nest.bounds env ctxs in
  Ir.Ctx.set_slice ctxs.(root) ~lo ~hi;
  (match rinfo.Compiled.loop.Ir.Nest.init with
  | Some f -> f env ctxs.(root).Ir.Ctx.locals
  | None -> ());
  if rinfo.Compiled.doall then emit_slice_enter c ctxs root;
  let ts = fresh_task_state c in
  (match run_slice c ts ctxs root with
  | Done -> ()
  | Promoted _ -> raise (Internal_error "root slice reported an ancestor promotion"));
  match rinfo.Compiled.loop.Ir.Nest.commit with Some f -> f env ctxs | None -> ()

let run_program ?(request = Run_request.default) ?(beat = Wall_us 100.0) (cfg : Rt_config.t)
    (compiled : 'e Pipeline.program) : Sim.Run_result.t =
  (* Capability checks, with precise errors: fault plans are accepted
     when every kind is backend-portable; pause/resume is accepted under
     the deterministic beat with one worker. *)
  (match request.Run_request.fault_plan with
  | Some plan when not (Sim.Fault_plan.is_zero plan) -> (
      match Sim.Fault_plan.simulator_only plan with
      | [] -> ()
      | bad ->
          invalid_arg
            (Printf.sprintf
               "Native_run: fault plan uses simulator-only kinds: %s; drop them or run on \
                --backend sim"
               (String.concat ", " bad)))
  | Some _ | None -> ());
  let pausing =
    Option.is_some request.Run_request.pause_at || Option.is_some request.Run_request.resume_from
  in
  let n = Stdlib.max 1 cfg.Rt_config.workers in
  if pausing then begin
    (match beat with
    | Every_polls _ -> ()
    | Wall_us _ ->
        invalid_arg
          "Native_run: pause/resume needs the deterministic Every_polls beat (--beat polls:N) — \
           wall-clock heartbeats cannot be replayed byte-identically");
    if n > 1 then
      invalid_arg
        "Native_run: pause/resume needs workers=1 — a multi-worker native replay is not \
         byte-reproducible; use workers=1 or --backend sim"
  end;
  let program = compiled.Pipeline.source in
  let env = program.Ir.Program.make_env () in
  let capture = Obs.Trace.Sink.enabled request.Run_request.trace in
  (* On resume the request's sink is muted until the replay passes the
     pause boundary: the observer already saw every earlier event during
     the original episodes, so the per-episode streams tile the
     uninterrupted stream exactly once. Fault counters are NOT gated —
     the replay re-derives them from zero, like the simulator's counting
     sink. *)
  let resuming = Option.is_some request.Run_request.resume_from in
  let gate = ref (not resuming) in
  let observer =
    if resuming && capture then
      Obs.Trace.Sink.fn (fun ~time ~worker ev ->
          if !gate then Obs.Trace.Sink.emit request.Run_request.trace ~time ~worker ev)
    else request.Run_request.trace
  in
  let b = Domains_backend.create ~workers:n ~trace:observer ~capture in
  (* Injected-fault accounting: the injector's own sink counts each kind
     into atomics (the untraced chaos path has no mutex to rely on) and
     forwards the event into the linearized trace. Injector draws happen
     outside [critical] sections (leaf polls, try_steal's veto hook, the
     post-critical wake path), so taking [critical] here cannot deadlock. *)
  let f_drops = Atomic.make 0 in
  let f_steals = Atomic.make 0 in
  let f_stalls = Atomic.make 0 in
  let f_stall_polls = Atomic.make 0 in
  let f_wakeups = Atomic.make 0 in
  (match request.Run_request.fault_plan with
  | Some plan when not (Sim.Fault_plan.is_zero plan) ->
      let sink =
        Obs.Trace.Sink.fn (fun ~time:_ ~worker:_ ev ->
            (match ev with
            | Obs.Trace.Fault_injected f -> (
                match f with
                | Obs.Trace.Beat_dropped -> Atomic.incr f_drops
                | Obs.Trace.Steal_failed -> Atomic.incr f_steals
                | Obs.Trace.Stall p ->
                    Atomic.incr f_stalls;
                    ignore (Atomic.fetch_and_add f_stall_polls p)
                | Obs.Trace.Wakeup_delayed -> Atomic.incr f_wakeups
                | Obs.Trace.Beat_delayed _ -> ())
            | _ -> ());
            Domains_backend.critical b (fun () -> Domains_backend.emit b ev))
      in
      Domains_backend.set_injector b (Sim.Fault_injector.create plan ~num_workers:n ~trace:sink ())
  | Some _ | None -> ());
  let core = C.create b in
  let st =
    {
      cfg;
      b;
      core;
      beat;
      next_beat = Array.make n 0.0;
      polls = Array.make n 0;
      progress = Array.make n 0;
      ac = Array.init n (fun _ -> Hashtbl.create 8);
      work = Array.make n 0;
      promotions = Atomic.make 0;
      promo_left =
        Atomic.make
          (match request.Run_request.resume_from with
          | Some ck -> (
              (* The replay restarts from zero under the first episode's
                 grant; this episode's own grant applies at the boundary. *)
              match ck.Sim.Checkpoint_state.granted with
              | Some g -> Stdlib.max 0 g
              | None -> Stdlib.max_int)
          | None -> (
              match request.Run_request.promotion_budget with
              | Some bud -> Stdlib.max 0 bud
              | None -> Stdlib.max_int));
      promo_disabled = Atomic.make false;
      capture;
      chaos = Sim.Fault_injector.active (Domains_backend.injector b);
      stall_left = Array.make n 0;
      since_beat = Array.make n 0;
      downgraded = Array.make n false;
      downgrades = Atomic.make 0;
      live_slices = (if pausing then Some (Array.make n []) else None);
      next_mark = Stdlib.max_int;
      on_mark = (fun () -> ());
      exec_epoch = 0;
    }
  in
  (match beat with
  | Wall_us us ->
      let t0 = Unix.gettimeofday () +. (us *. 1e-6) in
      Array.iteri (fun i _ -> st.next_beat.(i) <- t0) st.next_beat
  | Every_polls _ -> ());
  (* Observational state at a pause boundary. Every field is a pure
     function of the single-worker deterministic dispatch history, so an
     uninterrupted replay reaching the same boundary re-derives the same
     bytes — that is the resume-divergence check. *)
  let checkpoint_now ~at_cycle ~episode ~granted ~regrants =
    let live = match st.live_slices with Some l -> l | None -> [||] in
    let slices =
      List.concat
        (List.init (Array.length live) (fun w ->
             (* stacks are LIFO; serialize bottom-to-top for a stable order *)
             List.rev_map
               (fun e ->
                 {
                   Sim.Checkpoint_state.sl_worker = w;
                   sl_task = e.ck_key;
                   sl_nest = e.ck_nest;
                   sl_lo = e.ck_ctx.Ir.Ctx.lo;
                   sl_hi = e.ck_ctx.Ir.Ctx.hi;
                 })
               live.(w)))
    in
    {
      Sim.Checkpoint_state.at_cycle;
      episode;
      rng_state = Int64.of_int (Domains_backend.rng_word b ~worker:0);
      next_task_id = C.next_task_id core;
      work_cycles = Array.fold_left ( + ) 0 st.work;
      promotions_used = Atomic.get st.promotions;
      granted;
      regrants;
      clocks = Array.copy st.progress;
      deques = Array.init n (fun w -> Domains_backend.deque_task_ids b ~worker:w);
      slices;
    }
  in
  (* Boundary agenda: an ascending list of (progress, action) marks that
     [consume] fires synchronously on worker 0 — regrant replays, the
     resume byte-verify, and the pause point itself. *)
  let marks = ref [] in
  let arm ms =
    marks := ms;
    st.next_mark <- (match ms with [] -> Stdlib.max_int | (p, _) :: _ -> p)
  in
  st.on_mark <-
    (fun () ->
      match !marks with
      | [] -> st.next_mark <- Stdlib.max_int
      | (_, act) :: rest ->
          arm rest;
          act ());
  let applied = ref (-1) in
  (match request.Run_request.resume_from with
  | None -> (
      match request.Run_request.pause_at with
      | Some p -> arm [ (p, fun () -> raise Pause_now) ]
      | None -> ())
  | Some ck ->
      let verify () =
        let derived =
          checkpoint_now ~at_cycle:ck.Sim.Checkpoint_state.at_cycle
            ~episode:ck.Sim.Checkpoint_state.episode ~granted:ck.Sim.Checkpoint_state.granted
            ~regrants:ck.Sim.Checkpoint_state.regrants
        in
        if not (Sim.Checkpoint_state.equal derived ck) then
          raise
            (Resume_diverged
               (Printf.sprintf "replayed state %s does not match checkpoint %s"
                  (Sim.Checkpoint_state.digest derived)
                  (Sim.Checkpoint_state.digest ck)))
        else begin
          (* The replay reproduced the paused state exactly: open the
             gate, apply this episode's grant (None keeps the remaining
             balance, which is what byte-identical continuation needs),
             and run for real. *)
          gate := true;
          (match request.Run_request.promotion_budget with
          | Some g ->
              Atomic.set st.promo_left (Stdlib.max 0 g);
              applied := Stdlib.max 0 g
          | None -> applied := -1);
          match request.Run_request.pause_at with
          | Some p when p > ck.Sim.Checkpoint_state.at_cycle ->
              arm [ (p, fun () -> raise Pause_now) ]
          | Some _ | None -> ()
        end
      in
      arm
        (List.map
           (fun (cyc, g) -> (cyc, fun () -> if g >= 0 then Atomic.set st.promo_left g))
           ck.Sim.Checkpoint_state.regrants
        @ [ (ck.Sim.Checkpoint_state.at_cycle, verify) ]));
  (* Watchdog rung 2, sampled on the monitor domain: a busy worker whose
     progress counter has not moved for [stuck_after] consecutive samples
     (one sample every [sample_every] park-timeout periods) is considered
     stuck; further promotions are disabled so no new tasks land behind
     it, and the run degrades to finishing what is already split. *)
  let tick =
    if not st.chaos then fun () -> ()
    else begin
      let sample_every = 16 and stuck_after = 8 in
      let last = Array.make n (-1) in
      let stuck = Array.make n 0 in
      let ticks = ref 0 in
      fun () ->
        incr ticks;
        if !ticks mod sample_every = 0 then
          for w = 0 to n - 1 do
            let p = st.progress.(w) in
            if Domains_backend.is_busy b ~worker:w && p = last.(w) then begin
              stuck.(w) <- stuck.(w) + 1;
              if stuck.(w) = stuck_after && not (Atomic.get st.promo_disabled) then begin
                Atomic.set st.promo_disabled true;
                Atomic.incr st.downgrades;
                Domains_backend.critical b (fun () ->
                    Domains_backend.emit b Obs.Trace.Mechanism_downgrade)
              end
            end
            else stuck.(w) <- 0;
            last.(w) <- p
          done
    end
  in
  Domains_backend.register ~worker:0;
  Domains_backend.start_monitor ~tick b;
  let domains =
    List.init (n - 1) (fun i ->
        Domain.spawn (fun () ->
            Domains_backend.register ~worker:(i + 1);
            C.scavenge core))
  in
  let t_start = Unix.gettimeofday () in
  let termination = ref Sim.Run_result.Finished in
  (try
     Fun.protect
       ~finally:(fun () ->
         C.set_finished core;
         (* Wake every parked scavenger so it observes the finished flag;
            the monitor keeps broadcasting until after the joins, so a
            worker that parks in the race window is freed within one
            timeout. Only then is the monitor stopped. *)
         Domains_backend.wake_all b;
         List.iter Domain.join domains;
         Domains_backend.stop_monitor b)
       (fun () ->
         (* The driver itself counts as task depth so inline tasks do not
            clear worker 0's busy flag when they finish; busy is what the
            rung-2 watchdog samples. *)
         (C.depth core).(0) <- 1;
         Domains_backend.set_busy b ~worker:0 ~busy:true;
         (* Driver intervals cover only the serial segments between nests —
            while a nest runs, worker 0 records its own task intervals, and
            one interval spanning the whole run would overlap them. *)
         let mark = ref (Domains_backend.now b) in
         let driver_segment_ends () =
           if st.capture && Domains_backend.now b > !mark then
             emit st (Obs.Trace.Interval { t0 = !mark; kind = "driver" })
         in
         let cpu =
           {
             Ir.Program.exec =
               (fun nest ->
                 driver_segment_ends ();
                 exec_nest st compiled env nest;
                 mark := Domains_backend.now b);
             advance = (fun cyc -> add_work st cyc);
           }
         in
         program.Ir.Program.driver env cpu;
         driver_segment_ends ();
         (C.depth core).(0) <- 0;
         Domains_backend.set_busy b ~worker:0 ~busy:false)
   with
  | Pause_now ->
      (* The unwind skipped the live-registry pops and mutated nothing the
         checkpoint reads, so the boundary state is captured here intact. *)
      let p = Option.get request.Run_request.pause_at in
      termination :=
        Sim.Run_result.Paused
          (match request.Run_request.resume_from with
          | None ->
              checkpoint_now ~at_cycle:p ~episode:1 ~granted:request.Run_request.promotion_budget
                ~regrants:[]
          | Some ck ->
              checkpoint_now ~at_cycle:p
                ~episode:(ck.Sim.Checkpoint_state.episode + 1)
                ~granted:ck.Sim.Checkpoint_state.granted
                ~regrants:
                  (ck.Sim.Checkpoint_state.regrants
                  @ [ (ck.Sim.Checkpoint_state.at_cycle, !applied) ]))
  | Resume_diverged reason -> termination := Sim.Run_result.Guard_aborted ("resume-divergence: " ^ reason));
  (match (request.Run_request.resume_from, !termination) with
  | Some ck, Sim.Run_result.Finished when not !gate ->
      termination :=
        Sim.Run_result.Guard_aborted
          (Printf.sprintf "resume-divergence: run finished before the boundary at cycle %d"
             ck.Sim.Checkpoint_state.at_cycle)
  | _ -> ());
  let elapsed_us = int_of_float ((Unix.gettimeofday () -. t_start) *. 1e6) in
  let metrics = Sim.Metrics.create () in
  metrics.Sim.Metrics.work_cycles <- Array.fold_left ( + ) 0 st.work;
  metrics.Sim.Metrics.promotions <- Atomic.get st.promotions;
  metrics.Sim.Metrics.faults_beats_dropped <- Atomic.get f_drops;
  metrics.Sim.Metrics.faults_steals_failed <- Atomic.get f_steals;
  metrics.Sim.Metrics.faults_stalls <- Atomic.get f_stalls;
  (* stall windows are poll-counted natively; the cycle counter carries
     the poll total so faults_injected and reports stay meaningful *)
  metrics.Sim.Metrics.faults_stall_cycles <- Atomic.get f_stall_polls;
  metrics.Sim.Metrics.faults_wakeups_delayed <- Atomic.get f_wakeups;
  metrics.Sim.Metrics.downgrades <- Atomic.get st.downgrades;
  {
    (* makespan is wall microseconds here, not virtual cycles — comparable
       only between native runs. *)
    Sim.Run_result.makespan = elapsed_us;
    metrics;
    fingerprint = program.Ir.Program.fingerprint env;
    work_cycles = metrics.Sim.Metrics.work_cycles;
    dnf = false;
    termination = !termination;
    trace = Obs.Trace.Sink.captured request.Run_request.trace;
    sanitizer = None;
  }

let run ?request ?beat cfg program =
  run_program ?request ?beat cfg (Pipeline.compile_program ~chunk:cfg.Rt_config.chunk program)
