(** Real OCaml 5 domains as a scheduler backend
    ({!Sched.Backend_intf.BACKEND}).

    Worker identity lives in domain-local storage ({!register}); deques
    are the lock-free Chase–Lev {!Ws_deque}; victim selection is a
    per-worker xorshift; idling spins briefly, then parks on a condition
    variable until a wakeup ticket arrives (or the monitor's bounded
    park timeout fires). An untraced backend is fully lock-free on the
    scheduling fast path. A traced one (enabled sink) linearizes every
    deque-op + emission group under one global mutex and stamps events
    with a logical tick, so {!Sanitizer.Checker} validates native
    streams — shadow-deque replay included — with the same invariant set
    it runs on simulated ones.

    An attached {!Sim.Fault_injector} ({!set_injector}) arms chaos mode:
    steal attempts can be vetoed and parked-worker wakeups suppressed
    from per-worker seeded decision streams, reproducible from
    [(plan seed, P)]. Without an injector every chaos hook
    short-circuits on one bool. *)

type t

val register : worker:int -> unit
(** Bind the calling domain to a worker index (domain-local). The pool
    registers the caller as worker 0 and each spawned domain as 1..n-1. *)

val create : workers:int -> trace:Obs.Trace.Sink.t -> capture:bool -> t

val set_injector : t -> Sim.Fault_injector.t -> unit
(** Attach a fault injector (arming chaos mode iff it is active). Must be
    called before worker domains start — the [chaos] flag is read without
    synchronization on the scheduling fast path. *)

val injector : t -> Sim.Fault_injector.t
(** The attached injector ({!Sim.Fault_injector.inactive} by default). *)

val rng_word : t -> worker:int -> int
(** [worker]'s victim-selection xorshift state word (checkpointed at the
    single-worker pause boundary). *)

val deque_task_ids : t -> worker:int -> int list
(** Task ids in [worker]'s deque, oldest (steal end) first. Quiescent
    snapshots only (the single-worker pause boundary). *)

val wake_all : t -> unit
(** Unconditionally wake every parked worker (never chaos-suppressed);
    the shutdown path pairs this with the core's finished flag. *)

val start_monitor : ?tick:(unit -> unit) -> t -> unit
(** Spawn the monitor domain (no-op when [workers = 1] or already
    running): broadcasts the park condition every bounded timeout so a
    lost or chaos-suppressed wakeup strands a worker for at most one
    period, and calls [tick] once per period — the watchdog's sampling
    hook. *)

val stop_monitor : t -> unit
(** Stop and join the monitor domain, if running. Call only after the
    worker domains have been joined — the monitor is what bounds their
    park waits during shutdown races. *)

val is_busy : t -> worker:int -> bool
(** The [set_busy] flag for [worker] — true while it runs inside an
    outermost task. Monitor-sampled (racy reads are fine: the watchdog
    tolerates sampling error, it only needs eventual accuracy). *)

(** {2 BACKEND implementation} *)

val num_workers : t -> int

val worker_id : t -> int

val now : t -> int

val capture : t -> bool

val critical : t -> (unit -> unit) -> unit

val emit : t -> Obs.Trace.event -> unit

val push : t -> Sched.Task.t -> unit

val pop : t -> Sched.Task.t option

val steal_from : t -> victim:int -> Sched.Task.t option

val deque_empty : t -> worker:int -> bool

val random_victim : t -> int

val steal_vetoed : t -> bool

val keep_stolen : t -> Sched.Task.t -> bool

val pre_task : t -> unit

val on_task_claim : t -> unit

val wake_one : t -> unit

val unpark : t -> worker:int -> unit

val idle : t -> unit

val set_busy : t -> worker:int -> busy:bool -> unit

val charge_push : t -> unit

val charge_pop : t -> unit

val charge_steal_attempt : t -> unit

val charge_steal_success : t -> unit

val charge_join_slow : t -> unit
