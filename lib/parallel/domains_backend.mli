(** Real OCaml 5 domains as a scheduler backend
    ({!Sched.Backend_intf.BACKEND}).

    Worker identity lives in domain-local storage ({!register}); deques
    are the lock-free Chase–Lev {!Ws_deque}; victim selection is a
    per-worker xorshift; idling spins then sleeps (no parking). An
    untraced backend is fully lock-free. A traced one (enabled sink)
    linearizes every deque-op + emission group under one global mutex and
    stamps events with a logical tick, so {!Sanitizer.Checker} validates
    native streams — shadow-deque replay included — with the same
    invariant set it runs on simulated ones. *)

type t

val register : worker:int -> unit
(** Bind the calling domain to a worker index (domain-local). The pool
    registers the caller as worker 0 and each spawned domain as 1..n-1. *)

val create : workers:int -> trace:Obs.Trace.Sink.t -> capture:bool -> t

(** {2 BACKEND implementation} *)

val num_workers : t -> int

val worker_id : t -> int

val now : t -> int

val capture : t -> bool

val critical : t -> (unit -> unit) -> unit

val emit : t -> Obs.Trace.event -> unit

val push : t -> Sched.Task.t -> unit

val pop : t -> Sched.Task.t option

val steal_from : t -> victim:int -> Sched.Task.t option

val deque_empty : t -> worker:int -> bool

val random_victim : t -> int

val steal_vetoed : t -> bool

val keep_stolen : t -> Sched.Task.t -> bool

val pre_task : t -> unit

val on_task_claim : t -> unit

val wake_one : t -> unit

val unpark : t -> worker:int -> unit

val idle : t -> unit

val set_busy : t -> worker:int -> busy:bool -> unit

val charge_push : t -> unit

val charge_pop : t -> unit

val charge_steal_attempt : t -> unit

val charge_steal_success : t -> unit

val charge_join_slow : t -> unit
