(* Real OCaml 5 domains as a {!Sched.Backend_intf.BACKEND}: worker
   identity lives in domain-local storage, deques are the lock-free
   Chase–Lev {!Ws_deque}, victims come from a per-worker xorshift, and
   idling is bounded spinning then a short sleep.

   Tracing: an untraced backend has [critical] as a plain call and [emit]
   as a no-op — the scheduler runs fully lock-free. A traced backend
   takes one global mutex around every deque-op + emission group and
   stamps events with a logical tick drawn under that mutex, so the
   recorded stream is a linearization consistent with the real deque
   states: the sanitizer's shadow Chase–Lev replay and its clock-sanity
   invariant hold on native traces exactly as on simulated ones. Tracing
   serializes scheduling points only, never loop bodies. *)

type t = {
  n : int;
  deques : Sched.Task.t Ws_deque.t array;
  trace : Obs.Trace.Sink.t;
  traced : bool;  (* enabled sink: linearize scheduling points *)
  capture : bool;
  mu : Mutex.t;
  tick : int Atomic.t;  (* logical trace clock; bumped per emission *)
  rng : int array;  (* per-worker xorshift state for victim selection *)
  spins : int array;  (* consecutive idle rounds, drives spin-then-sleep *)
}

(* The worker index of the calling domain. Domains a pool did not
   register (never the case inside the scheduler) act as worker 0. *)
let index_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> -1)

let register ~worker = Domain.DLS.set index_key worker

let create ~workers ~trace ~capture =
  let n = Stdlib.max 1 workers in
  {
    n;
    deques = Array.init n (fun _ -> Ws_deque.create ());
    trace;
    traced = Obs.Trace.Sink.enabled trace;
    capture;
    mu = Mutex.create ();
    tick = Atomic.make 0;
    rng = Array.init n (fun i -> (i * 0x9E3779B9) + 1);
    spins = Array.make n 0;
  }

let num_workers b = b.n

let worker_id b =
  let i = Domain.DLS.get index_key in
  if i >= 0 && i < b.n then i else 0

let now b = Atomic.get b.tick

let capture b = b.capture

let critical b f =
  if b.traced then begin
    Mutex.lock b.mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock b.mu) f
  end
  else f ()

(* Only called inside [critical], so the tick order equals the mutex
   linearization order: stamps are globally nondecreasing. *)
let emit b ev =
  if b.traced then begin
    let t = Atomic.fetch_and_add b.tick 1 + 1 in
    Obs.Trace.Sink.emit b.trace ~time:t ~worker:(worker_id b) ev
  end

let push b task = Ws_deque.push b.deques.(worker_id b) task

let pop b = Ws_deque.pop b.deques.(worker_id b)

let steal_from b ~victim = Ws_deque.steal b.deques.(victim)

let deque_empty b ~worker = Ws_deque.size b.deques.(worker) = 0

let random_victim b =
  let w = worker_id b in
  let s = b.rng.(w) in
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 7) in
  let s = (s lxor (s lsl 17)) land max_int in
  b.rng.(w) <- s;
  s mod b.n

let steal_vetoed _b = false

let keep_stolen _b _task = true

let pre_task _b = ()

let on_task_claim b = b.spins.(worker_id b) <- 0

(* No parking natively: idle workers spin briefly, then sleep a hair so a
   starved machine still makes progress. Wakeups are therefore no-ops. *)
let wake_one _b = ()

let unpark _b ~worker:_ = ()

let spin_rounds = 64

let idle b =
  let w = worker_id b in
  let s = b.spins.(w) in
  if s < spin_rounds then begin
    b.spins.(w) <- s + 1;
    Domain.cpu_relax ()
  end
  else Unix.sleepf 50e-6

let set_busy _b ~worker:_ ~busy:_ = ()

let charge_push _b = ()

let charge_pop _b = ()

let charge_steal_attempt _b = ()

let charge_steal_success _b = ()

let charge_join_slow _b = ()
