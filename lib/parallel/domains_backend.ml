(* Real OCaml 5 domains as a {!Sched.Backend_intf.BACKEND}: worker
   identity lives in domain-local storage, deques are the lock-free
   Chase–Lev {!Ws_deque}, victims come from a per-worker xorshift, and
   idling is bounded spinning then a parked wait on a condition variable.

   Tracing: an untraced backend has [critical] as a plain call and [emit]
   as a no-op — the scheduler runs fully lock-free. A traced backend
   takes one global mutex around every deque-op + emission group and
   stamps events with a logical tick drawn under that mutex, so the
   recorded stream is a linearization consistent with the real deque
   states: the sanitizer's shadow Chase–Lev replay and its clock-sanity
   invariant hold on native traces exactly as on simulated ones. Tracing
   serializes scheduling points only, never loop bodies.

   Chaos: an attached {!Sim.Fault_injector} lets the backend refuse
   steals and suppress wakeup signals from per-worker seeded decision
   streams, so a chaos run is reproducible from (plan seed, P). With no
   injector attached ([chaos] false) every hook short-circuits on one
   immutable bool — the lock-free fast path is untouched.

   Parking: an idle worker spins [spin_rounds], then blocks on
   [park_cond] under [park_mu]. Wakeups hand out tickets under the same
   mutex, so a wakeup that races the spin-to-park transition is banked
   rather than lost: the worker consumes the ticket instead of waiting.
   The monitor domain ({!start_monitor}) broadcasts every
   [park_timeout_s] as the robustness backstop — a wakeup the chaos
   layer suppressed (or a genuinely lost signal) strands a worker for at
   most one timeout, not forever. *)

type t = {
  n : int;
  deques : Sched.Task.t Ws_deque.t array;
  trace : Obs.Trace.Sink.t;
  traced : bool;  (* enabled sink: linearize scheduling points *)
  capture : bool;
  mu : Mutex.t;
  tick : int Atomic.t;  (* logical trace clock; bumped per emission *)
  rng : int array;  (* per-worker xorshift state for victim selection *)
  spins : int array;  (* consecutive idle rounds, drives spin-then-park *)
  busy : bool array;  (* per-worker task-depth busy flag, monitor-sampled *)
  mutable injector : Sim.Fault_injector.t;
  mutable chaos : bool;  (* injector attached and active *)
  park_mu : Mutex.t;
  park_cond : Condition.t;
  mutable tickets : int;  (* banked wakeups, guarded by [park_mu] *)
  parked : int Atomic.t;  (* wake_one fast-path mirror of the wait count *)
  monitor_stop : bool Atomic.t;
  mutable monitor : unit Domain.t option;
}

(* The worker index of the calling domain. Domains a pool did not
   register (never the case inside the scheduler) act as worker 0. *)
let index_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> -1)

let register ~worker = Domain.DLS.set index_key worker

let create ~workers ~trace ~capture =
  let n = Stdlib.max 1 workers in
  {
    n;
    deques = Array.init n (fun _ -> Ws_deque.create ());
    trace;
    traced = Obs.Trace.Sink.enabled trace;
    capture;
    mu = Mutex.create ();
    tick = Atomic.make 0;
    rng = Array.init n (fun i -> (i * 0x9E3779B9) + 1);
    spins = Array.make n 0;
    busy = Array.make n false;
    injector = Sim.Fault_injector.inactive ~num_workers:n;
    chaos = false;
    park_mu = Mutex.create ();
    park_cond = Condition.create ();
    tickets = 0;
    parked = Atomic.make 0;
    monitor_stop = Atomic.make false;
    monitor = None;
  }

let set_injector b inj =
  b.injector <- inj;
  b.chaos <- Sim.Fault_injector.active inj

let injector b = b.injector

let num_workers b = b.n

let worker_id b =
  let i = Domain.DLS.get index_key in
  if i >= 0 && i < b.n then i else 0

let now b = Atomic.get b.tick

let capture b = b.capture

let critical b f =
  if b.traced then begin
    Mutex.lock b.mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock b.mu) f
  end
  else f ()

(* Only called inside [critical], so the tick order equals the mutex
   linearization order: stamps are globally nondecreasing. *)
let emit b ev =
  if b.traced then begin
    let t = Atomic.fetch_and_add b.tick 1 + 1 in
    Obs.Trace.Sink.emit b.trace ~time:t ~worker:(worker_id b) ev
  end

let push b task = Ws_deque.push b.deques.(worker_id b) task

let pop b = Ws_deque.pop b.deques.(worker_id b)

let steal_from b ~victim = Ws_deque.steal b.deques.(victim)

let deque_empty b ~worker = Ws_deque.size b.deques.(worker) = 0

let rng_word b ~worker = b.rng.(worker)

let deque_task_ids b ~worker =
  List.map (fun (t : Sched.Task.t) -> t.Sched.Task.id) (Ws_deque.to_list b.deques.(worker))

let random_victim b =
  let w = worker_id b in
  let s = b.rng.(w) in
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 7) in
  let s = (s lxor (s lsl 17)) land max_int in
  b.rng.(w) <- s;
  s mod b.n

(* Called by the core OUTSIDE [critical] (core.ml's try_steal), so the
   injector is free to emit its Fault_injected event through a sink that
   takes the trace mutex itself. *)
let steal_vetoed b =
  b.chaos && Sim.Fault_injector.steal_fails b.injector ~worker:(worker_id b)

let keep_stolen _b _task = true

let pre_task _b = ()

let on_task_claim b = b.spins.(worker_id b) <- 0

(* --- parked-worker wakeup ----------------------------------------- *)

(* How long a parked worker can be stranded by a lost or chaos-suppressed
   wakeup before the monitor's broadcast frees it. *)
let park_timeout_s = 200e-6

let wake_all b =
  Mutex.lock b.park_mu;
  b.tickets <- b.n;
  Condition.broadcast b.park_cond;
  Mutex.unlock b.park_mu

(* The [parked = 0] fast path keeps the promotion path allocation-free
   and lock-free when nobody sleeps (the common heartbeat-scheduling
   case: deques are empty, workers spin). The chaos draw models a lost
   futex wake; the monitor broadcast is the bounded recovery. *)
let wake_one b =
  if Atomic.get b.parked > 0 then begin
    if not (b.chaos && Sim.Fault_injector.delay_wakeup b.injector ~worker:(worker_id b)) then begin
      Mutex.lock b.park_mu;
      if b.tickets < b.n then b.tickets <- b.tickets + 1;
      Condition.signal b.park_cond;
      Mutex.unlock b.park_mu
    end
  end

(* Join-owner wakeup: broadcast, because the condition variable is shared
   and a targeted signal could wake the wrong sleeper while the owner
   keeps waiting for a ticket. *)
let unpark b ~worker:_ =
  if Atomic.get b.parked > 0 then begin
    if not (b.chaos && Sim.Fault_injector.delay_wakeup b.injector ~worker:(worker_id b)) then begin
      Mutex.lock b.park_mu;
      if b.tickets < b.n then b.tickets <- b.tickets + 1;
      Condition.broadcast b.park_cond;
      Mutex.unlock b.park_mu
    end
  end

let spin_rounds = 64

let idle b =
  let w = worker_id b in
  let s = b.spins.(w) in
  if s < spin_rounds then begin
    b.spins.(w) <- s + 1;
    Domain.cpu_relax ()
  end
  else if b.n = 1 then
    (* Single worker: nobody can wake it, so parking would strand it.
       (Unreachable in practice — a lone worker always finds its own
       tasks — but a sleep is the safe fallback.) *)
    Unix.sleepf 50e-6
  else begin
    Mutex.lock b.park_mu;
    if b.tickets > 0 then b.tickets <- b.tickets - 1
    else begin
      Atomic.incr b.parked;
      Condition.wait b.park_cond b.park_mu;
      Atomic.decr b.parked;
      if b.tickets > 0 then b.tickets <- b.tickets - 1
    end;
    Mutex.unlock b.park_mu;
    (* Spin again before re-parking: a fresh wakeup usually means work. *)
    b.spins.(w) <- 0
  end

(* --- monitor domain ------------------------------------------------ *)

let start_monitor ?(tick = fun () -> ()) b =
  if b.n > 1 && b.monitor = None then begin
    Atomic.set b.monitor_stop false;
    b.monitor <-
      Some
        (Domain.spawn (fun () ->
             while not (Atomic.get b.monitor_stop) do
               Unix.sleepf park_timeout_s;
               Mutex.lock b.park_mu;
               Condition.broadcast b.park_cond;
               Mutex.unlock b.park_mu;
               tick ()
             done))
  end

let stop_monitor b =
  match b.monitor with
  | None -> ()
  | Some d ->
      Atomic.set b.monitor_stop true;
      Domain.join d;
      b.monitor <- None

let set_busy b ~worker ~busy = b.busy.(worker) <- busy

let is_busy b ~worker = b.busy.(worker)

let charge_push _b = ()

let charge_pop _b = ()

let charge_steal_attempt _b = ()

let charge_steal_success _b = ()

let charge_join_slow _b = ()
