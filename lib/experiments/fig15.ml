(* Fig. 15: OpenMP parallelizing the outermost loop only vs every DOALL loop
   (nested parallel regions). Expected shape: nested regions flood the
   runtime with team creations and task spawns — the spmv variants and
   mandelbulb do not finish (DNF = slower than twice the sequential time),
   mandelbrot collapses to ~1.5x. *)

let render config =
  let entries = Workloads.Registry.manual_irregular_set () in
  let table =
    Report.Table.create
      ~title:"Figure 15: OpenMP dynamic, outermost-only vs all DOALL loops parallelized"
      ~columns:[ "benchmark"; "outermost only"; "all DOALL loops" ]
  in
  List.iter
    (fun entry ->
      let outer = Harness.run_omp ~tag:"omp-dyn1" config entry in
      let base = Harness.baseline config entry in
      let nested =
        Harness.run_omp config
          ~cfg:(fun c -> { c with Baselines.Openmp.nested = Baselines.Openmp.All_doall })
          ~request:(Hbc_core.Run_request.make ~max_cycles:(Harness.dnf_cap base) ())
          ~tag:"omp-nested" entry
      in
      Report.Table.add_row table
        [
          entry.Workloads.Registry.name;
          Harness.speedup_cell outer;
          Harness.speedup_cell nested;
        ])
    entries;
  Report.Table.render table

let figure =
  Figure.make ~id:"fig15"
    ~caption:"OpenMP parallelizing the outermost loop only vs all DOALL loops (DNF = did not finish)"
    render
