(* Serving experiment: the same seeded multi-tenant overload scenario
   offered to each service executor — HBC's metered promotions against the
   TPAL and OpenMP baselines. The paper only ever measures one job's
   makespan on a dedicated pool; here the pool is shared and the question
   is the tail: sojourn p50/p95/p99, goodput under overload, and how much
   work each service sheds or lets blow its deadline. Everything is
   virtual time, so every cell is deterministic from the seed. *)

let services =
  [
    ("hbc", Serve.Server.Hbc);
    ("tpal", Serve.Server.Tpal { chunk = 64 });
    ( "omp-static",
      Serve.Server.Omp
        { (Baselines.Openmp.dynamic ()) with Baselines.Openmp.schedule = Baselines.Openmp.Static }
    );
    ("omp-dynamic", Serve.Server.Omp (Baselines.Openmp.dynamic ()));
  ]

(* Two offered loads over the same tenant mix: arrivals comfortably apart,
   then an adversarial burst pattern against a short queue. *)
let loads =
  [
    ("steady", Serve.Arrival.Poisson { mean_gap = 2_000_000.0 }, 16);
    ("overload", Serve.Arrival.Adversarial { quiet = 200_000; burst = 4 }, 4);
  ]

let tenant arrival i =
  let workloads = [| "plus-reduce-array"; "mandelbrot"; "kmeans" |] in
  {
    Serve.Server.tenant_default with
    Serve.Server.weight = 1 + (i mod 2);
    arrival;
    jobs = 5;
    workloads = [ workloads.(i mod Array.length workloads) ];
    scale = 0.01;
    workers_wanted = 2 + (2 * (i mod 2));
    deadline = Some (1_000_000, 4_000_000);
  }

let config_for seed service arrival queue_capacity =
  {
    Serve.Server.default_config with
    Serve.Server.tenants = Array.init 3 (tenant arrival);
    pool = 8;
    queue_capacity;
    seed;
    service;
    sanitize = true;
  }

let render (config : Harness.config) =
  let sections =
    List.map
      (fun (load_label, arrival, qcap) ->
        let table =
          Report.Table.create
            ~title:(Printf.sprintf "Serving under %s load (3 tenants x 5 jobs, pool 8, queue %d)" load_label qcap)
            ~columns:
              [
                "service";
                "completed";
                "shed";
                "deadline";
                "failed";
                "p50 sojourn";
                "p95";
                "p99";
                "goodput";
                "violations";
              ]
        in
        List.iter
          (fun (name, service) ->
            let r = Serve.Server.run (config_for config.Harness.seed service arrival qcap) in
            let s = r.Serve.Server.stats in
            Report.Table.add_row table
              [
                name;
                Printf.sprintf "%d/%d" s.Serve.Server.completed s.Serve.Server.submitted;
                string_of_int s.Serve.Server.shed;
                string_of_int s.Serve.Server.deadline_exceeded;
                string_of_int s.Serve.Server.failed;
                Printf.sprintf "%.0f" s.Serve.Server.sojourn_p50;
                Printf.sprintf "%.0f" s.Serve.Server.sojourn_p95;
                Printf.sprintf "%.0f" s.Serve.Server.sojourn_p99;
                Printf.sprintf "%.3f" s.Serve.Server.goodput;
                string_of_int (List.length r.Serve.Server.violations);
              ])
          services;
        Report.Table.render table)
      loads
  in
  String.concat "\n"
    (sections
    @ [
        "Sojourns in virtual cycles; goodput is completed work cycles per server cycle.";
        "Deadline misses and sheds are the server degrading explicitly, never silent drops.";
      ])

let figure =
  Figure.make ~id:"serve-bench"
    ~caption:
      "Multi-tenant serving (not in the paper): tail sojourn and goodput for HBC vs TPAL/OpenMP \
       services under steady and adversarial-overload offered load"
    render
