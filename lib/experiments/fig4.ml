(* Fig. 4: 64-core speedups of OpenMP dynamic scheduling vs HBC over the 13
   irregular benchmarks. Expected shape: HBC wins on every benchmark; the
   paper reports geomeans 14.2x (OpenMP) vs 21.7x (HBC). *)

let render config =
  let entries = Workloads.Registry.irregular_set () in
  let table =
    Report.Table.create
      ~title:"Figure 4: speedup over sequential, irregular workloads (OpenMP dynamic vs HBC)"
      ~columns:[ "benchmark"; "OpenMP (dynamic)"; "HBC"; "HBC/OpenMP" ]
  in
  let omps = ref [] and hbcs = ref [] in
  List.iter
    (fun entry ->
      let omp = Harness.run_omp ~tag:"omp-dyn1" config entry in
      let hbc = Harness.run_hbc config entry in
      omps := omp :: !omps;
      hbcs := hbc :: !hbcs;
      Report.Table.add_row table
        [
          entry.Workloads.Registry.name;
          Harness.speedup_cell omp;
          Harness.speedup_cell hbc;
          Report.Table.cell_f ~decimals:2 (hbc.Harness.speedup /. Float.max 0.01 omp.Harness.speedup);
        ])
    entries;
  Report.Table.add_separator table;
  Report.Table.add_row table (Harness.geomean_row ~label:"geomean" [ !omps; !hbcs ]);
  (* Failed/DNF cells are non-numeric; chart them as 0 bars. *)
  let bar s = Option.value ~default:0.0 (float_of_string_opt s) in
  let chart =
    Report.Ascii_chart.grouped ~title:"speedup (x)" ~series:[ "OpenMP (dynamic)"; "HBC" ]
      (List.map
         (fun row -> match row with
           | name :: a :: b :: _ -> (name, [ bar a; bar b ])
           | _ -> ("", []))
         (Report.Table.rows table))
  in
  Report.Table.render table ^ "\n" ^ chart

let figure =
  Figure.make ~id:"fig4"
    ~caption:"64-core evaluation comparing OpenMP dynamic scheduling and HBC over irregular workloads"
    render
