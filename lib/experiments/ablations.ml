let speedup_cell o = Harness.speedup_cell ~decimals:1 o

(* ----------------- leftover task: spawned vs inline ---------------- *)

let leftover_task config =
  let entries = Workloads.Registry.tpal_set () in
  let table =
    Report.Table.create
      ~title:"Ablation: leftover task as a third parallel task (HBC) vs inline on the critical path (TPAL)"
      ~columns:[ "benchmark"; "leftover spawned"; "leftover inline"; "spawn/inline" ]
  in
  List.iter
    (fun entry ->
      let spawned = Harness.run_hbc config entry in
      let inline_ =
        Harness.run_hbc config
          ~cfg:(fun c -> { c with Hbc_core.Rt_config.leftover = Hbc_core.Rt_config.Inline })
          ~tag:"abl-leftover-inline" entry
      in
      Report.Table.add_row table
        [
          entry.Workloads.Registry.name;
          speedup_cell spawned;
          speedup_cell inline_;
          Report.Table.cell_f ~decimals:2
            (spawned.Harness.speedup /. Float.max 0.01 inline_.Harness.speedup);
        ])
    entries;
  Report.Table.render table

(* ------------- promotion policy: outer-first vs innermost ---------- *)

let promotion_policy config =
  let entries =
    [ "spmv-arrowhead"; "spmv-powerlaw"; "mandelbulb"; "ttv"; "pr" ]
    |> List.map Workloads.Registry.find
  in
  let table =
    Report.Table.create
      ~title:"Ablation: outer-loop-first promotion (the paper's policy) vs innermost-first"
      ~columns:[ "benchmark"; "outer-loop-first"; "innermost-first"; "outer/inner"; "tasks (outer)"; "tasks (inner)" ]
  in
  List.iter
    (fun entry ->
      let outer = Harness.run_hbc config entry in
      let inner =
        Harness.run_hbc config
          ~cfg:(fun c -> { c with Hbc_core.Rt_config.policy = Hbc_core.Rt_config.Innermost_first })
          ~tag:"abl-innermost" entry
      in
      Report.Table.add_row table
        [
          entry.Workloads.Registry.name;
          speedup_cell outer;
          speedup_cell inner;
          Report.Table.cell_f ~decimals:2
            (outer.Harness.speedup /. Float.max 0.01 inner.Harness.speedup);
          Report.Table.cell_i
            outer.Harness.result.Sim.Run_result.metrics.Sim.Metrics.tasks_spawned;
          Report.Table.cell_i
            inner.Harness.result.Sim.Run_result.metrics.Sim.Metrics.tasks_spawned;
        ])
    entries;
  Report.Table.render table

(* ---------------------- chunk transferring ------------------------ *)

let chunk_transferring config =
  let entries =
    [ "spmv-arrowhead"; "spmv-powerlaw"; "spmv-random"; "ttv" ] |> List.map Workloads.Registry.find
  in
  let table =
    Report.Table.create
      ~title:"Ablation: chunk-size transferring across leaf invocations (on = HBC, off = TPAL-style)"
      ~columns:
        [ "benchmark"; "transferring on"; "transferring off"; "beats detected on"; "beats detected off" ]
  in
  List.iter
    (fun entry ->
      let on = Harness.run_hbc config entry in
      let off =
        Harness.run_hbc config
          ~cfg:(fun c -> { c with Hbc_core.Rt_config.chunk_transferring = false })
          ~tag:"abl-no-transfer" entry
      in
      let det o = o.Harness.result.Sim.Run_result.metrics.Sim.Metrics.heartbeats_detected in
      Report.Table.add_row table
        [
          entry.Workloads.Registry.name;
          speedup_cell on;
          speedup_cell off;
          Report.Table.cell_i (det on);
          Report.Table.cell_i (det off);
        ])
    entries;
  Report.Table.render table

(* --------------- leftover enumeration: all pairs vs leaves --------- *)

let leftover_pairs config =
  let entries = [ "mandelbulb"; "ttv"; "ttm" ] |> List.map Workloads.Registry.find in
  let table =
    Report.Table.create
      ~title:"Ablation: leftover tasks for all (loop, ancestor) pairs vs Algorithm 1's leaves-only enumeration"
      ~columns:[ "benchmark"; "all pairs"; "leaves only" ]
  in
  List.iter
    (fun (entry : Workloads.Registry.entry) ->
      let all_pairs = Harness.run_hbc config entry in
      let rt =
        {
          Hbc_core.Rt_config.default with
          workers = config.Harness.workers;
          seed = config.Harness.seed;
        }
      in
      let leaves_cell =
        match
          Harness.trial config ~bench:entry.Workloads.Registry.name ~tag:"abl-leaves-only"
            ~signature:(Hbc_core.Rt_config.signature rt ^ "+leaves-only")
            (fun () ->
              let (Ir.Program.Any p) = entry.Workloads.Registry.make config.Harness.scale in
              let compiled = Hbc_core.Pipeline.compile_program ~all_leftover_pairs:false p in
              Hbc_core.Executor.run_program
                ~request:(Harness.guarded config Hbc_core.Run_request.default)
                rt compiled)
        with
        | Ok r ->
            let base = Harness.baseline config entry in
            Report.Table.cell_f (Sim.Run_result.speedup ~baseline:base r)
        | Error e -> Trial_error.cell e
      in
      Report.Table.add_row table
        [ entry.Workloads.Registry.name; speedup_cell all_pairs; leaves_cell ])
    entries;
  Report.Table.render table

(* ---------------------- heartbeat rate sweep ---------------------- *)

let heartbeat_rate config =
  let entries = [ "spmv-powerlaw"; "mandelbrot"; "srad" ] |> List.map Workloads.Registry.find in
  let intervals = [ 7_500; 15_000; 30_000; 60_000; 120_000; 240_000 ] in
  let table =
    Report.Table.create
      ~title:"Sensitivity: heartbeat interval (cycles; default 30k, i.e. 1/10 of the paper's 100 us)"
      ~columns:("benchmark" :: List.map (fun h -> Printf.sprintf "H=%dk" (h / 1000)) intervals)
  in
  List.iter
    (fun entry ->
      let cells =
        List.map
          (fun h ->
            let o =
              Harness.run_hbc config
                ~cfg:(fun c ->
                  {
                    c with
                    Hbc_core.Rt_config.cost =
                      { c.Hbc_core.Rt_config.cost with Sim.Cost_model.heartbeat_interval = h };
                  })
                ~tag:(Printf.sprintf "abl-h%d" h) entry
            in
            speedup_cell o)
          intervals
      in
      Report.Table.add_row table (entry.Workloads.Registry.name :: cells))
    entries;
  Report.Table.render table

(* ------------------------- AC window ------------------------------ *)

let ac_window config =
  let entries = [ "spmv-powerlaw"; "mandelbrot"; "plus-reduce-array" ] |> List.map Workloads.Registry.find in
  let windows = [ 1; 2; 3; 4; 8 ] in
  let table =
    Report.Table.create
      ~title:"Sensitivity: AC window size (the paper reports any window >= 2 behaves the same)"
      ~columns:("benchmark" :: List.map (fun w -> Printf.sprintf "window %d" w) windows)
  in
  List.iter
    (fun entry ->
      let cells =
        List.map
          (fun w ->
            let o =
              Harness.run_hbc config
                ~cfg:(fun c -> { c with Hbc_core.Rt_config.ac_window = w })
                ~tag:(Printf.sprintf "abl-w%d" w) entry
            in
            speedup_cell o)
          windows
      in
      Report.Table.add_row table (entry.Workloads.Registry.name :: cells))
    entries;
  Report.Table.render table

(* ----------------------- worker scaling --------------------------- *)

let worker_scaling config =
  let entries = [ "spmv-powerlaw"; "mandelbrot"; "pr" ] |> List.map Workloads.Registry.find in
  let counts = [ 1; 2; 4; 8; 16; 32; 64; 128 ] in
  let table =
    Report.Table.create ~title:"Sensitivity: HBC speedup vs simulated core count"
      ~columns:("benchmark" :: List.map string_of_int counts)
  in
  List.iter
    (fun entry ->
      let cells =
        List.map
          (fun w ->
            let cfg = { config with Harness.workers = w } in
            speedup_cell (Harness.run_hbc cfg entry))
          counts
      in
      Report.Table.add_row table (entry.Workloads.Registry.name :: cells))
    entries;
  Report.Table.render table

(* --------------------------- hybrid ------------------------------- *)

let hybrid config =
  let entries = Workloads.Registry.all in
  let table =
    Report.Table.create
      ~title:"Extension (Sec. 6.8's conclusion): hybrid static+heartbeat scheduler vs each policy alone"
      ~columns:[ "benchmark"; "class"; "OpenMP static"; "HBC"; "hybrid"; "hybrid picks" ]
  in
  let statics = ref [] and hbcs = ref [] and hybrids = ref [] in
  List.iter
    (fun (entry : Workloads.Registry.entry) ->
      let static =
        Harness.run_omp config
          ~cfg:(fun c -> { c with Baselines.Openmp.schedule = Baselines.Openmp.Static })
          ~tag:"omp-static" entry
      in
      let hbc = Harness.run_hbc config entry in
      let hybrid = if entry.Workloads.Registry.regular then static else hbc in
      statics := static :: !statics;
      hbcs := hbc :: !hbcs;
      hybrids := hybrid :: !hybrids;
      Report.Table.add_row table
        [
          entry.Workloads.Registry.name;
          (if entry.Workloads.Registry.regular then "regular" else "irregular");
          speedup_cell static;
          speedup_cell hbc;
          speedup_cell hybrid;
          (if entry.Workloads.Registry.regular then "static" else "heartbeat");
        ])
    entries;
  Report.Table.add_separator table;
  Report.Table.add_row table
    ("geomean" :: ""
    :: List.map
         (fun col ->
           let g, excluded =
             Report.Stats.geomean_excluding (List.map Harness.speedup_opt col)
           in
           if excluded = 0 then Report.Table.cell_f g
           else Printf.sprintf "%s (%d excl.)" (Report.Table.cell_f g) excluded)
         [ !statics; !hbcs; !hybrids ]);
  Report.Table.render table

(* --------------------- OpenMP schedule comparison ------------------ *)

let omp_schedules config =
  let entries =
    [ "mandelbrot"; "spmv-powerlaw"; "spmv-random"; "pr" ] |> List.map Workloads.Registry.find
  in
  let table =
    Report.Table.create
      ~title:"Baseline study: OpenMP schedules (static / dynamic,1 / guided) vs HBC"
      ~columns:[ "benchmark"; "static"; "dynamic(1)"; "guided"; "HBC" ]
  in
  List.iter
    (fun entry ->
      let static =
        Harness.run_omp config
          ~cfg:(fun c -> { c with Baselines.Openmp.schedule = Baselines.Openmp.Static })
          ~tag:"omp-static" entry
      in
      let dynamic = Harness.run_omp ~tag:"omp-dyn1" config entry in
      let guided =
        Harness.run_omp config
          ~cfg:(fun c -> { c with Baselines.Openmp.schedule = Baselines.Openmp.Guided 1 })
          ~tag:"omp-guided" entry
      in
      let hbc = Harness.run_hbc config entry in
      Report.Table.add_row table
        [
          entry.Workloads.Registry.name;
          speedup_cell static;
          speedup_cell dynamic;
          speedup_cell guided;
          speedup_cell hbc;
        ])
    entries;
  Report.Table.render table

let all =
  [
    ("leftover-task", leftover_task);
    ("promotion-policy", promotion_policy);
    ("chunk-transferring", chunk_transferring);
    ("leftover-pairs", leftover_pairs);
    ("heartbeat-rate", heartbeat_rate);
    ("ac-window", ac_window);
    ("worker-scaling", worker_scaling);
    ("hybrid", hybrid);
    ("omp-schedules", omp_schedules);
  ]
