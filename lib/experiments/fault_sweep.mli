(** Robustness experiment: sweep the injected heartbeat-delivery drop rate
    from 0 to 50% across three workloads for each signaling mechanism.
    Software polling is the flat control (no deliveries to drop); the
    interrupt mechanisms degrade with the drop rate until the starvation
    watchdog moves starved workers to software polling. Every cell is
    validated against the sequential reference — fault plans change
    performance, never results. *)

val drop_rates : float list

val render : Harness.config -> string

val figure : Figure.t
