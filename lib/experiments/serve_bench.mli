(** Serving experiment (beyond the paper): the same seeded multi-tenant
    overload scenario offered to the HBC, TPAL, and OpenMP service
    executors, comparing tail sojourn (p50/p95/p99), goodput under
    overload, sheds, and deadline misses. Deterministic from the seed;
    every run carries the serve sanitizers. *)

val render : Harness.config -> string

val figure : Figure.t
