let figures =
  [
    Fig4.figure;
    Fig5.figure;
    Fig6.figure;
    Fig7.figure;
    Fig8.figure;
    Fig9.figure;
    Fig10.figure;
    Fig11.figure;
    Fig12.figure;
    Fig13.figure;
    Fig14.figure;
    Fig15.figure;
    Fig16.figure;
    Fault_sweep.figure;
  ]

let find id =
  match List.find_opt (fun f -> f.Figure.id = id) figures with
  | Some f -> f
  | None -> raise Not_found

let render_one config (f : Figure.t) =
  let before = List.length (Harness.validation_failures ()) in
  let body = f.Figure.render config in
  let failures = Harness.validation_failures () in
  let fresh = List.filteri (fun i _ -> i >= before) failures in
  let warn =
    if fresh = [] then ""
    else
      "\nWARNING: output mismatch vs sequential reference: "
      ^ String.concat ", " (List.map (fun (b, t) -> b ^ "/" ^ t) fresh)
      ^ "\n"
  in
  Printf.sprintf "== %s: %s ==\n%s%s\n" f.Figure.id f.Figure.caption body warn

let render_all config =
  String.concat "\n" (List.map (render_one config) figures)
