let figures =
  [
    Fig4.figure;
    Fig5.figure;
    Fig6.figure;
    Fig7.figure;
    Fig8.figure;
    Fig9.figure;
    Fig10.figure;
    Fig11.figure;
    Fig12.figure;
    Fig13.figure;
    Fig14.figure;
    Fig15.figure;
    Fig16.figure;
    Fault_sweep.figure;
    Serve_bench.figure;
  ]

let find id =
  match List.find_opt (fun f -> f.Figure.id = id) figures with
  | Some f -> f
  | None -> raise Not_found

let render_one config (f : Figure.t) =
  let before = List.length (Harness.validation_failures ()) in
  let body = Figure.render_guarded f config in
  let failures = Harness.validation_failures () in
  let fresh = List.filteri (fun i _ -> i >= before) failures in
  let warn =
    if fresh = [] then ""
    else
      "\nWARNING: output mismatch vs sequential reference: "
      ^ String.concat ", " (List.map (fun (b, t) -> b ^ "/" ^ t) fresh)
      ^ "\n"
  in
  Printf.sprintf "== %s: %s ==\n%s%s\n" f.Figure.id f.Figure.caption body warn

(* End-of-campaign accounting: what the journal saved us, and which trials
   were quarantined — failures are reported, never silently dropped. *)
let campaign_summary () =
  let buf = Buffer.create 256 in
  (match Harness.journal () with
  | None -> ()
  | Some j ->
      Buffer.add_string buf
        (Printf.sprintf "journal: %d reused, %d recorded (%s)\n" (Checkpoint.hits j)
           (Checkpoint.appended j) (Checkpoint.path j));
      if Checkpoint.skipped_lines j > 0 then
        Buffer.add_string buf
          (Printf.sprintf "journal: dropped %d corrupt line(s) from an interrupted run\n"
             (Checkpoint.skipped_lines j)));
  (match Harness.quarantined () with
  | [] -> ()
  | qs ->
      Buffer.add_string buf (Printf.sprintf "quarantined trials (%d):\n" (List.length qs));
      List.iter
        (fun (label, e) ->
          Buffer.add_string buf (Printf.sprintf "  %s: %s\n" label (Trial_error.to_string e)))
        qs);
  Buffer.contents buf

let render_all config =
  let body = String.concat "\n" (List.map (render_one config) figures) in
  match campaign_summary () with "" -> body | summary -> body ^ "\n" ^ summary

(* Domains-parallel campaign: a warm phase renders figures concurrently
   (each domain claims whole figures off an atomic index; every trial
   result lands in the harness warm table), then the ordinary sequential
   [render_all] replays — trials hit the warm table instead of
   simulating, and journal/figure bytes come out identical to a
   sequential campaign because only the sequential pass writes them.
   Trials already in the journal are replayed from disk by the replay
   pass as usual; the warm phase recomputes them redundantly (it does
   not read the journal, by design), so [--resume] costs some warm-phase
   work but stays correct. *)
let render_all_parallel config ~domains =
  if domains <= 1 then render_all config
  else begin
  Harness.begin_warm ();
  let figs = Array.of_list figures in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < Array.length figs then begin
        (* Guarded render: per-figure aborts are reported by the replay
           pass, not here. *)
        ignore (Figure.render_guarded figs.(i) config);
        loop ()
      end
    in
    loop ()
  in
  let n = Stdlib.max 1 (Stdlib.min domains (Array.length figs)) in
  let spawned = Array.init (n - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join spawned;
  if config.Harness.verbose then
    Printf.eprintf "[warm] %d trial results from %d domain(s)\n%!" (Harness.warm_results ()) n;
  Harness.end_warm ();
  render_all config
  end
