(* Fig. 14: OpenMP dynamic scheduling with hand-tuned chunk sizes on the
   manually-written irregular benchmarks. Expected shape: growing the chunk
   degrades every benchmark except cg (whose tiny regular-ish rows amortize
   dispatch), so manual chunk tuning cannot rescue OpenMP. *)

let chunks = [ 1; 2; 4; 8; 16; 32 ]

let render config =
  let entries = Workloads.Registry.manual_irregular_set () in
  let table =
    Report.Table.create
      ~title:"Figure 14: OpenMP dynamic speedup vs chunk size (outermost loop only)"
      ~columns:("benchmark" :: List.map (fun c -> Printf.sprintf "chunk %d" c) chunks)
  in
  List.iter
    (fun entry ->
      let cells =
        List.map
          (fun chunk ->
            let o =
              Harness.run_omp config
                ~cfg:(fun c -> { c with Baselines.Openmp.schedule = Baselines.Openmp.Dynamic chunk })
                ~tag:(Printf.sprintf "omp-dyn%d" chunk)
                entry
            in
            Harness.speedup_cell o)
          chunks
      in
      Report.Table.add_row table (entry.Workloads.Registry.name :: cells))
    entries;
  Report.Table.render table

let figure =
  Figure.make ~id:"fig14"
    ~caption:"OpenMP dynamic scheduling with varying chunk sizes, outermost loop parallelized"
    render
