(** Entry points over the full figure set. *)

val figures : Figure.t list
(** Figures 4 through 16, in order. *)

val find : string -> Figure.t
(** Lookup by id ("fig4" .. "fig16").
    @raise Not_found otherwise. *)

val render_one : Harness.config -> Figure.t -> string
(** Render one figure, appending a validation warning when any run's output
    diverged from the sequential reference. *)

val campaign_summary : unit -> string
(** Journal reuse statistics and the quarantine list for the trials run so
    far; empty when there is nothing to report. *)

val render_all : Harness.config -> string
(** Render every figure (each guarded against aborts) followed by the
    campaign summary. *)

val render_all_parallel : Harness.config -> domains:int -> string
(** Like {!render_all}, but trial simulations are computed concurrently
    across [domains] OCaml domains (figure-granular work stealing) in a
    warm phase, then replayed sequentially. Output — figure text,
    journal, quarantine, summary — is byte-identical to {!render_all}
    for the same configuration; only wall-clock time changes.
    [domains <= 1] is exactly {!render_all}. *)
