(** Crash-safe campaign journal: every completed (or definitively failed)
    trial is appended as one JSON line and flushed, keyed by a content hash
    of the trial's full configuration — benchmark, tag, scale, workers,
    seed, and the runtime-config signature. A [run-all] restarted with
    [--resume] replays the journal instead of re-running trials; entries
    whose configuration hash no longer matches are simply never looked up
    again (hash-keyed invalidation). Torn trailing lines from a [kill -9]
    are skipped on load and rewritten away. *)

type status =
  | Completed of Sim.Run_result.t
      (** the trial produced a result (including paper-semantics DNF runs) *)
  | Failed of Trial_error.t
      (** the trial failed after exhausting retries; resuming quarantines it
          instead of re-running *)

type entry = {
  key : string;  (** hex content hash — the lookup key *)
  bench : string;
  tag : string;
  scale : float;
  workers : int;
  seed : int;  (** human-readable provenance; not part of the lookup *)
  status : status;
}

type t

val create : path:string -> resume:bool -> t
(** Open a journal. [resume = true] loads the existing file (skipping
    corrupt lines) and rewrites it compacted; [resume = false] truncates. *)

val path : t -> string

val find : t -> string -> entry option
(** Lookup by content-hash key; counts toward {!hits}. *)

val record : t -> entry -> unit
(** Append one entry and flush, so a crash loses at most the in-flight
    trial. *)

val loaded : t -> int
(** Entries recovered from disk at open time. *)

val hits : t -> int
(** Lookups served from the journal (trials skipped on resume). *)

val appended : t -> int
(** Entries recorded by this process. *)

val skipped_lines : t -> int
(** Corrupt (torn) lines dropped during load. *)

val close : t -> unit

(** {2 Codec (exposed for tests)} *)

val entry_to_json : entry -> string

val entry_of_json : string -> (entry, string) result
