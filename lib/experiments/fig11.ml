(* Fig. 11: ten invocations of mandelbrot alternating the two inputs —
   static chunk sizes against adaptive chunking. Expected shape: every
   static choice compromises one input; AC beats them all (paper: 28x vs at
   most 17x). *)

let static_chunks = [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512 ]

let render config =
  let scale = config.Harness.scale *. 0.7 in
  (* input 2's pixels are two orders of magnitude cheaper; give it a larger
     grid so each invocation carries comparable total work (as in the paper,
     where both inputs take seconds) and a static chunk must compromise. *)
  let v1 = Workloads.Mandelbrot.input1 ~scale in
  let v2 = Workloads.Mandelbrot.input2 ~scale:(scale *. 20.0) in
  (* five invocations of each input (the paper leaves the order open; grouped
     invocations are the common repeated-kernel scenario its text motivates) *)
  let views = [ v1; v1; v1; v1; v1; v2; v2; v2; v2; v2 ] in
  let program = Workloads.Mandelbrot.repeated ~scale ~views in
  (* Both the custom sequential reference and the chunk sweep run as
     journaled trials; if the reference itself fails, every cell degrades to
     its error instead of dividing by garbage. *)
  let compiled_baseline =
    Harness.trial config ~bench:"mandelbrot-mixed" ~tag:"seq" ~signature:"serial-exec" (fun () ->
        Baselines.Serial_exec.run_program program)
  in
  let run tag chunk =
    match compiled_baseline with
    | Error e -> Trial_error.cell e
    | Ok baseline -> (
        let rt =
          {
            Hbc_core.Rt_config.default with
            workers = config.Harness.workers;
            seed = config.Harness.seed;
            chunk;
          }
        in
        match
          Harness.trial config ~bench:"mandelbrot-mixed" ~tag
            ~signature:(Hbc_core.Rt_config.signature rt)
            (fun () ->
              Hbc_core.Executor.run
                ~request:(Harness.guarded config Hbc_core.Run_request.default)
                rt program)
        with
        | Ok r -> Report.Table.cell_f (Sim.Run_result.speedup ~baseline r)
        | Error e -> Trial_error.cell e)
  in
  let table =
    Report.Table.create
      ~title:"Figure 11: speedup of 10 mixed-input mandelbrot invocations, static chunks vs AC"
      ~columns:[ "chunking"; "speedup" ]
  in
  List.iter
    (fun c ->
      Report.Table.add_row table
        [
          Printf.sprintf "static %d" c;
          run (Printf.sprintf "static-%d" c) (Hbc_core.Compiled.Static c);
        ])
    static_chunks;
  Report.Table.add_separator table;
  Report.Table.add_row table [ "adaptive (AC)"; run "ac" Hbc_core.Compiled.Adaptive ];
  Report.Table.render table

let figure =
  Figure.make ~id:"fig11"
    ~caption:"Static chunk size vs adapting the chunk size at run-time over repeated invocations"
    render
