(** Structured taxonomy for everything that can go wrong with one figure
    trial. Every trial the harness runs is wrapped in this type instead of
    letting a bare exception unwind the whole campaign: a failing trial
    becomes a rendered [—(kind)] cell and (after bounded retries) a
    quarantine entry, never an aborted [run-all]. *)

type t =
  | Timeout of string
      (** the per-trial watchdog fired: virtual-cycle budget exceeded
          (fault-induced livelock) or wall-clock guard deadline passed *)
  | Deadlock of string
      (** the engine found live-but-parked workers with nothing scheduled to
          wake them; carries the per-worker snapshot *)
  | Invariant_violation of string
      (** a runtime internal invariant broke (executor internal error,
          assertion failure) *)
  | Result_mismatch of string
      (** the run finished but its output fingerprint diverged from the
          sequential reference *)
  | Crash of string  (** any other exception, by name *)

val kind : t -> string
(** Short stable label: "timeout", "deadlock", "invariant", "mismatch",
    "crash" — used in journal lines and table cells. *)

val detail : t -> string

val make : kind:string -> string -> t
(** Inverse of [kind]/[detail] (journal decoding); unknown kinds decode as
    {!Crash}. *)

val to_string : t -> string

val cell : t -> string
(** Table cell for a failed trial, e.g. ["—(timeout)"] — the campaign
    renders failures explicitly instead of dropping or averaging them. *)

val transient : t -> bool
(** Whether a retry can plausibly change the outcome. Only {!Crash} is:
    the simulator is deterministic, so the other kinds reproduce
    identically and retrying them just burns wall-clock. *)

val of_termination : Sim.Run_result.termination -> t option
(** [None] for [Finished] and [Dnf] (DNF is a *result* the figures render,
    not a trial error); the watchdog terminations map to {!Timeout}. *)

val of_exn : exn -> t
(** Classify an exception that escaped a trial. *)
