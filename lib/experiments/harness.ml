type config = {
  scale : float;
  workers : int;
  seed : int;
  verbose : bool;
  trial_budget : int option;
  wall_budget : float option;
  max_retries : int;
  retry_backoff : float;
}

let default_config =
  {
    scale = 1.0;
    workers = 64;
    seed = 1;
    verbose = false;
    trial_budget = None;
    wall_budget = None;
    max_retries = 1;
    retry_backoff = 0.05;
  }

type outcome = {
  result : Sim.Run_result.t;
  speedup : float;
  valid : bool;
  error : Trial_error.t option;
}

(* ------------------------------------------------------------------ *)
(* Campaign state: in-memory cache, journal, quarantine.               *)
(* ------------------------------------------------------------------ *)

let cache : (string, Sim.Run_result.t) Hashtbl.t = Hashtbl.create 64

let failures : (string * string) list ref = ref []

(* key -> (human label, error): trials that exhausted their retries (or were
   journaled as failed) are skipped and reported, never re-run. *)
let quarantine : (string, string * Trial_error.t) Hashtbl.t = Hashtbl.create 16

(* Domains-parallel campaigns run in two phases. The warm phase renders
   figures concurrently across domains with the journal OFF and every
   computed result parked in [warm] (mutex-guarded; trial simulations are
   deterministic, so a racy duplicate compute stores the same value). The
   replay phase then re-renders sequentially; a trial that finds its key
   in [warm] journals and caches the parked result exactly as a fresh
   compute would — so the journal, figure text, and quarantine are
   byte-identical to a sequential campaign's. *)
let warm : (string, Sim.Run_result.t) Hashtbl.t = Hashtbl.create 64

let warm_mutex = Mutex.create ()

let warming = Atomic.make false

let begin_warm () =
  Hashtbl.reset warm;
  Atomic.set warming true

(* Warm-phase bookkeeping (cache, quarantine, validation failures) is
   discarded: it was filled in nondeterministic domain order, and the
   sequential replay rebuilds all of it in the canonical order. *)
let end_warm () =
  Atomic.set warming false;
  Hashtbl.reset cache;
  Hashtbl.reset quarantine;
  failures := []

let warm_results () = Hashtbl.length warm

let add_failure entry_tag =
  Mutex.lock warm_mutex;
  failures := entry_tag :: !failures;
  Mutex.unlock warm_mutex

let journal_ref : Checkpoint.t option ref = ref None

let set_journal j = journal_ref := j

let journal () = !journal_ref

let clear_cache () =
  Hashtbl.reset cache;
  Hashtbl.reset quarantine;
  failures := []

let validation_failures () = List.rev !failures

let quarantined () =
  Hashtbl.fold (fun _ (label, e) acc -> (label, e) :: acc) quarantine []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* The trial key is a content hash of everything that determines the
   result: benchmark, tag, scale, workers, seed, and the executor-config
   signature (which itself covers seed, fault plan, cost model, ...).
   Changing any of them — including just the seed — yields a fresh key, so
   stale journal or cache entries can never be reused. *)
let trial_key config ~bench ~tag ~signature =
  Digest.to_hex
    (Digest.string
       (String.concat "|"
          [
            bench;
            tag;
            Printf.sprintf "%.9g" config.scale;
            string_of_int config.workers;
            string_of_int config.seed;
            signature;
          ]))

(* ------------------------------------------------------------------ *)
(* Watchdog arming.                                                    *)
(* ------------------------------------------------------------------ *)

(* Wall-clock guard armed lazily on its first poll, so the deadline starts
   when the run starts (the closure is created fresh per attempt). *)
let wall_guard secs =
  let deadline = ref None in
  fun () ->
    let now = Unix.gettimeofday () in
    match !deadline with
    | None ->
        deadline := Some (now +. secs);
        None
    | Some d ->
        if now > d then Some (Printf.sprintf "wall-clock budget %.1fs exceeded" secs) else None

(* Trial watchdogs arm on top of whatever the caller requested: an explicit
   per-request budget or guard wins; otherwise the campaign-level
   trial_budget / wall_budget apply. The guard closure is created fresh per
   attempt (the request is rebuilt), so retries get a fresh deadline. *)
let guarded config (req : Hbc_core.Run_request.t) =
  {
    req with
    Hbc_core.Run_request.cycle_budget =
      (match req.Hbc_core.Run_request.cycle_budget with
      | Some _ as b -> b
      | None -> config.trial_budget);
    guard =
      (match (req.Hbc_core.Run_request.guard, config.wall_budget) with
      | (Some _ as g), _ -> g
      | None, Some secs -> Some (wall_guard secs)
      | None, None -> None);
  }

(* ------------------------------------------------------------------ *)
(* The resilient trial runner.                                         *)
(* ------------------------------------------------------------------ *)

let classify_run (r : Sim.Run_result.t) =
  match Trial_error.of_termination r.Sim.Run_result.termination with
  | Some e -> Error e
  | None -> Ok r

let attempt_once compute =
  match compute () with r -> classify_run r | exception e -> Error (Trial_error.of_exn e)

(* Bounded retry with exponential backoff for transient failures;
   deterministic failures (timeout, deadlock, invariant, mismatch) fail
   fast. *)
let attempt_retries config label compute =
  let rec attempt n =
    match attempt_once compute with
    | Ok r -> Ok r
    | Error e when Trial_error.transient e && n < config.max_retries ->
        if config.retry_backoff > 0.0 then
          Unix.sleepf (config.retry_backoff *. Float.of_int (1 lsl n));
        if config.verbose then
          Printf.eprintf "[retry %d/%d] %s: %s\n%!" (n + 1) config.max_retries label
            (Trial_error.to_string e);
        attempt (n + 1)
    | Error e -> Error e
  in
  attempt 0

(* Warm phase: domains race only on [warm]; the journal, cache, and
   quarantine are untouched, so the replay phase starts from pristine
   state. Errors are not parked — the replay recomputes them (the
   simulation is deterministic) and quarantines in canonical order. *)
let warm_trial config ~key ~label compute =
  Mutex.lock warm_mutex;
  let hit = Hashtbl.find_opt warm key in
  Mutex.unlock warm_mutex;
  match hit with
  | Some r -> Ok r
  | None -> (
      if config.verbose then Printf.eprintf "[warm] %s\n%!" label;
      match attempt_retries config label compute with
      | Ok r ->
          Mutex.lock warm_mutex;
          Hashtbl.replace warm key r;
          Mutex.unlock warm_mutex;
          Ok r
      | Error e -> Error e)

let trial config ~bench ~tag ~signature compute =
  let key = trial_key config ~bench ~tag ~signature in
  let label = bench ^ "/" ^ tag in
  if Atomic.get warming then warm_trial config ~key ~label compute
  else
  match Hashtbl.find_opt cache key with
  | Some r -> Ok r
  | None -> (
      match Hashtbl.find_opt quarantine key with
      | Some (_, e) -> Error e
      | None -> (
          let record status =
            match !journal_ref with
            | None -> ()
            | Some j ->
                Checkpoint.record j
                  {
                    Checkpoint.key;
                    bench;
                    tag;
                    scale = config.scale;
                    workers = config.workers;
                    seed = config.seed;
                    status;
                  }
          in
          let from_journal =
            match !journal_ref with None -> None | Some j -> Checkpoint.find j key
          in
          match from_journal with
          | Some { Checkpoint.status = Checkpoint.Completed r; _ } ->
              if config.verbose then Printf.eprintf "[journal] %s\n%!" label;
              Hashtbl.replace cache key r;
              Ok r
          | Some { Checkpoint.status = Checkpoint.Failed e; _ } ->
              if config.verbose then Printf.eprintf "[quarantined] %s: %s\n%!" label (Trial_error.to_string e);
              Hashtbl.replace quarantine key (label, e);
              Error e
          | None -> (
              (* Warm results journal and cache exactly as a fresh compute
                 would, so a parallel campaign's journal matches the
                 sequential one byte for byte. *)
              let computed =
                match Hashtbl.find_opt warm key with
                | Some r ->
                    if config.verbose then Printf.eprintf "[replay] %s\n%!" label;
                    Ok r
                | None ->
                    if config.verbose then Printf.eprintf "[run] %s\n%!" label;
                    attempt_retries config label compute
              in
              match computed with
              | Ok r ->
                  Hashtbl.replace cache key r;
                  record (Checkpoint.Completed r);
                  Ok r
              | Error e ->
                  Hashtbl.replace quarantine key (label, e);
                  record (Checkpoint.Failed e);
                  if config.verbose then
                    Printf.eprintf "[failed] %s: %s\n%!" label (Trial_error.to_string e);
                  Error e)))

(* Placeholder for a trial that produced no result: zero work, so any
   speedup computed against or from it is 0 rather than garbage. *)
let errored_result () =
  {
    Sim.Run_result.makespan = 0;
    work_cycles = 0;
    fingerprint = Float.nan;
    dnf = false;
    termination = Sim.Run_result.Finished;
    metrics = Sim.Metrics.create ();
    trace = [];
    sanitizer = None;
  }

(* ------------------------------------------------------------------ *)
(* Executor frontends.                                                 *)
(* ------------------------------------------------------------------ *)

let baseline config entry =
  let result =
    trial config ~bench:entry.Workloads.Registry.name ~tag:"seq" ~signature:"serial-exec"
      (fun () ->
        let (Ir.Program.Any p) = entry.Workloads.Registry.make config.scale in
        Baselines.Serial_exec.run_program p)
  in
  match result with Ok r -> r | Error _ -> errored_result ()

let outcome_of config entry tag result =
  match result with
  | Error e -> { result = errored_result (); speedup = 0.0; valid = false; error = Some e }
  | Ok result ->
      let base = baseline config entry in
      let valid =
        result.Sim.Run_result.dnf
        || (not (Sim.Run_result.completed result))
        || Sim.Run_result.fingerprints_close base result
      in
      if not valid then add_failure (entry.Workloads.Registry.name, tag);
      let error =
        if valid then None
        else
          Some
            (Trial_error.Result_mismatch
               (Printf.sprintf "fingerprint %h diverged from sequential reference %h"
                  result.Sim.Run_result.fingerprint base.Sim.Run_result.fingerprint))
      in
      { result; speedup = Sim.Run_result.speedup ~baseline:base result; valid; error }

(* The trial key hashes the UNguarded request: budgets and wall guards are
   excluded from Run_request.signature by design (they abort rather than
   change results), while the fault plan, cycle cap, and whether a trace is
   captured all land in the hash — a traced trial never aliases an untraced
   one in the journal. *)
let run_hbc ?(cfg = fun c -> c) ?(request = Hbc_core.Run_request.default) ?(tag = "hbc") config
    entry =
  let rt =
    { (cfg Hbc_core.Rt_config.default) with
      Hbc_core.Rt_config.workers = config.workers;
      seed = config.seed;
    }
  in
  let signature =
    Hbc_core.Rt_config.signature rt ^ "+" ^ Hbc_core.Run_request.signature request
  in
  let result =
    trial config ~bench:entry.Workloads.Registry.name ~tag ~signature
      (fun () ->
        let (Ir.Program.Any p) = entry.Workloads.Registry.make config.scale in
        Hbc_core.Executor.run ~request:(guarded config request) rt p)
  in
  outcome_of config entry tag result

let run_tpal ?(request = Hbc_core.Run_request.default) ?(tag = "tpal") config entry =
  let rt =
    { (Hbc_core.Rt_config.tpal ~chunk:entry.Workloads.Registry.tpal_chunk) with
      Hbc_core.Rt_config.workers = config.workers;
      seed = config.seed;
    }
  in
  let signature =
    Hbc_core.Rt_config.signature rt ^ "+" ^ Hbc_core.Run_request.signature request
  in
  let result =
    trial config ~bench:entry.Workloads.Registry.name ~tag ~signature
      (fun () ->
        let (Ir.Program.Any p) = entry.Workloads.Registry.make config.scale in
        Hbc_core.Executor.run ~request:(guarded config request) rt p)
  in
  outcome_of config entry tag result

let run_omp ?(cfg = fun c -> c) ?(request = Hbc_core.Run_request.default) ?(tag = "omp") config
    entry =
  let oc =
    { (cfg (Baselines.Openmp.dynamic ())) with
      Baselines.Openmp.workers = config.workers;
      seed = config.seed;
    }
  in
  let signature =
    Baselines.Openmp.signature oc ^ "+" ^ Hbc_core.Run_request.signature request
  in
  let result =
    trial config ~bench:entry.Workloads.Registry.name ~tag ~signature
      (fun () ->
        let (Ir.Program.Any p) = entry.Workloads.Registry.make config.scale in
        Baselines.Openmp.run_program ~request:(guarded config request) oc p)
  in
  outcome_of config entry tag result

let dnf_cap base = 2 * base.Sim.Run_result.work_cycles

(* ------------------------------------------------------------------ *)
(* Error-aware rendering helpers.                                      *)
(* ------------------------------------------------------------------ *)

let speedup_cell ?(decimals = 1) o =
  match o.error with
  | Some e -> Trial_error.cell e
  | None ->
      if o.result.Sim.Run_result.dnf then "DNF" else Report.Table.cell_f ~decimals o.speedup

let metric_cell o f =
  match o.error with Some e -> Trial_error.cell e | None -> f o.result

let speedup_opt o =
  if o.error <> None || o.result.Sim.Run_result.dnf || o.speedup <= 0.0 then None
  else Some o.speedup

let geomean_row ~label columns =
  label
  :: List.map
       (fun col ->
         let g, excluded = Report.Stats.geomean_excluding (List.map speedup_opt col) in
         if excluded = 0 then Report.Table.cell_f g
         else Printf.sprintf "%s (%d excl.)" (Report.Table.cell_f g) excluded)
       columns
