(** Shared machinery for the per-figure experiments: configuration, cached
    and journaled runs, per-trial watchdogs, output validation against the
    sequential reference, and geomean summaries.

    Every run is a {e trial}: it is keyed by a content hash of its full
    configuration (benchmark, tag, scale, workers, seed, executor-config
    signature), consults the in-memory cache and the optional on-disk
    {!Checkpoint} journal before computing, is wrapped in the
    {!Trial_error} taxonomy instead of raising, retries transient failures
    with exponential backoff, and quarantines trials that keep failing so
    one bad run cannot sink a campaign. *)

type config = {
  scale : float;  (** input-size multiplier (1.0 = the documented defaults) *)
  workers : int;  (** simulated cores (paper: 64) *)
  seed : int;
  verbose : bool;
  trial_budget : int option;
      (** per-trial virtual-cycle watchdog; a trial past the budget aborts
          with {!Trial_error.Timeout} instead of livelocking the campaign *)
  wall_budget : float option;
      (** per-trial wall-clock guard in seconds, polled inside the engine *)
  max_retries : int;  (** bounded retries for transient (crash) failures *)
  retry_backoff : float;
      (** base backoff sleep in seconds, doubled per retry (0 disables) *)
}

val default_config : config

type outcome = {
  result : Sim.Run_result.t;
  speedup : float;
  valid : bool;
  error : Trial_error.t option;
      (** [Some _] when the trial failed (placeholder result) or its output
          mismatched the reference *)
}

val set_journal : Checkpoint.t option -> unit
(** Install (or remove) the campaign journal consulted and appended by every
    trial. *)

val journal : unit -> Checkpoint.t option

val trial :
  config ->
  bench:string ->
  tag:string ->
  signature:string ->
  (unit -> Sim.Run_result.t) ->
  (Sim.Run_result.t, Trial_error.t) result
(** Run one journaled, quarantine-aware, retried trial. [signature] must be
    a content hash/string covering every result-affecting knob not already
    in [config] (use {!Hbc_core.Rt_config.signature} /
    {!Baselines.Openmp.signature}). Figures with custom executors call this
    directly so they checkpoint and degrade like the standard runs. *)

val guarded : config -> Hbc_core.Run_request.t -> Hbc_core.Run_request.t
(** Arm the campaign's trial watchdogs (cycle budget, wall-clock guard) on a
    run request; explicit per-request budgets and guards win. Call inside
    the trial's compute closure so each retry gets a fresh wall deadline.
    Does not change {!Hbc_core.Run_request.signature}. *)

val baseline : config -> Workloads.Registry.entry -> Sim.Run_result.t
(** Sequential reference run (cached per benchmark and scale). On trial
    failure returns a zero-work placeholder, degrading dependent speedups
    to 0 instead of aborting. *)

val run_hbc :
  ?cfg:(Hbc_core.Rt_config.t -> Hbc_core.Rt_config.t) ->
  ?request:Hbc_core.Run_request.t ->
  ?tag:string ->
  config ->
  Workloads.Registry.entry ->
  outcome
(** Run under the heartbeat runtime; [cfg] tweaks the default HBC
    configuration (workers and seed are applied afterwards), [request]
    carries per-run knobs (fault plan, cycle cap, trace sink) and is armed
    with the campaign watchdogs via {!guarded}. Results are cached and
    journaled under [tag]; the trial key covers both the config and the
    request signatures, so e.g. traced and untraced runs never alias. *)

val run_tpal :
  ?request:Hbc_core.Run_request.t ->
  ?tag:string ->
  config ->
  Workloads.Registry.entry ->
  outcome

val run_omp :
  ?cfg:(Baselines.Openmp.config -> Baselines.Openmp.config) ->
  ?request:Hbc_core.Run_request.t ->
  ?tag:string ->
  config ->
  Workloads.Registry.entry ->
  outcome

val dnf_cap : Sim.Run_result.t -> int
(** Virtual-time cap marking a run as DNF: twice the sequential time — a
    parallel run slower than that reproduces the paper's
    did-not-finish-in-2-hours outcomes. *)

val validation_failures : unit -> (string * string) list
(** (benchmark, tag) pairs whose fingerprint diverged from the reference. *)

val quarantined : unit -> (string * Trial_error.t) list
(** Trials that failed definitively this campaign (label, error), sorted;
    rendered by the campaign summary instead of aborting [run-all]. *)

val speedup_cell : ?decimals:int -> outcome -> string
(** ["12.3"], ["DNF"], or ["—(timeout)"] — failed and did-not-finish trials
    render explicitly instead of as a bogus number. *)

val metric_cell : outcome -> (Sim.Run_result.t -> string) -> string
(** Render a metric from a successful trial's result, or the error cell. *)

val speedup_opt : outcome -> float option
(** [None] for failed or DNF trials — the explicit exclusion used by
    geomeans. *)

val geomean_row : label:string -> outcome list list -> string list
(** Build a geomean summary row from outcome columns; excluded (failed/DNF)
    trials are counted in the cell rather than silently averaged. *)

val clear_cache : unit -> unit
(** Reset the in-memory cache, quarantine, and validation failures (the
    journal, if any, is untouched). *)

val begin_warm : unit -> unit
(** Enter the warm phase of a domains-parallel campaign: until
    {!end_warm}, every trial computes (or reuses) its result in a
    mutex-guarded warm table shared across domains, touching neither the
    journal nor the sequential cache/quarantine state. *)

val end_warm : unit -> unit
(** Leave the warm phase and discard warm-phase bookkeeping (cache,
    quarantine, validation failures — all filled in nondeterministic
    domain order). The warm table itself is kept: the sequential replay
    pass that follows journals and caches each warm result exactly as a
    fresh compute would, making the campaign's journal and figure output
    byte-identical to a sequential run's. *)

val warm_results : unit -> int
(** Number of results parked in the warm table (introspection). *)
