(* Fig. 16: OpenMP static scheduling vs HBC on the regular benchmarks.
   Expected shape: static wins or ties everywhere except kmeans, where HBC's
   parallel array reduction beats the sequential OpenMP reduction by >50%;
   geomeans land close together. *)

let render config =
  let entries = Workloads.Registry.regular_set () in
  let table =
    Report.Table.create
      ~title:"Figure 16: speedup on regular workloads (OpenMP static vs HBC)"
      ~columns:[ "benchmark"; "OpenMP (static)"; "HBC"; "HBC/OpenMP" ]
  in
  let omps = ref [] and hbcs = ref [] in
  List.iter
    (fun entry ->
      let omp =
        Harness.run_omp config
          ~cfg:(fun c -> { c with Baselines.Openmp.schedule = Baselines.Openmp.Static })
          ~tag:"omp-static" entry
      in
      let hbc = Harness.run_hbc config entry in
      omps := omp :: !omps;
      hbcs := hbc :: !hbcs;
      Report.Table.add_row table
        [
          entry.Workloads.Registry.name;
          Harness.speedup_cell omp;
          Harness.speedup_cell hbc;
          Report.Table.cell_f ~decimals:2 (hbc.Harness.speedup /. Float.max 0.01 omp.Harness.speedup);
        ])
    entries;
  Report.Table.add_separator table;
  Report.Table.add_row table (Harness.geomean_row ~label:"geomean" [ !omps; !hbcs ]);
  (* Failed/DNF cells are non-numeric; chart them as 0 bars. *)
  let bar s = Option.value ~default:0.0 (float_of_string_opt s) in
  let chart =
    Report.Ascii_chart.grouped ~title:"speedup (x)" ~series:[ "OpenMP (static)"; "HBC" ]
      (List.map
         (fun row -> match row with
           | name :: a :: b :: _ -> (name, [ bar a; bar b ])
           | _ -> ("", []))
         (Report.Table.rows table))
  in
  Report.Table.render table ^ "\n" ^ chart

let figure =
  Figure.make ~id:"fig16"
    ~caption:"64-core evaluation comparing OpenMP static scheduling and HBC over regular workloads"
    render
