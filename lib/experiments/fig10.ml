(* Fig. 10: mandelbrot run time across static chunk sizes 2^0..2^10 for the
   two inputs. Expected shape: the high-latency input is best at chunk 1 and
   degrades as chunks grow; the low-latency input is the mirror image. *)

let chunks = [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024 ]

let render config =
  let scale = config.Harness.scale in
  (* A custom (non-registry) executor sweep, still journaled and watchdogged
     like any other trial via Harness.trial. *)
  let run_view view tag chunk =
    let rt =
      {
        Hbc_core.Rt_config.default with
        workers = config.Harness.workers;
        seed = config.Harness.seed;
        chunk = Hbc_core.Compiled.Static chunk;
      }
    in
    match
      Harness.trial config ~bench:tag
        ~tag:(Printf.sprintf "chunk-%d" chunk)
        ~signature:(Hbc_core.Rt_config.signature rt)
        (fun () ->
          let program = Workloads.Mandelbrot.program_of_view ~name:tag view in
          Hbc_core.Executor.run
            ~request:(Harness.guarded config Hbc_core.Run_request.default)
            rt program)
    with
    | Ok r ->
        Report.Table.cell_f ~decimals:3
          (1000.0
          *. Sim.Cost_model.seconds_of_cycles rt.Hbc_core.Rt_config.cost
               r.Sim.Run_result.makespan)
    | Error e -> Trial_error.cell e
  in
  let table =
    Report.Table.create
      ~title:"Figure 10: mandelbrot run time (simulated milliseconds) vs static chunk size"
      ~columns:[ "chunk"; "input 1 (high latency)"; "input 2 (low latency)" ]
  in
  let v1 = Workloads.Mandelbrot.input1 ~scale and v2 = Workloads.Mandelbrot.input2 ~scale in
  List.iter
    (fun chunk ->
      Report.Table.add_row table
        [
          Report.Table.cell_i chunk;
          run_view v1 "mandelbrot-in1" chunk;
          run_view v2 "mandelbrot-in2" chunk;
        ])
    chunks;
  Report.Table.render table

let figure =
  Figure.make ~id:"fig10" ~caption:"Optimal chunk size for mandelbrot is input-dependent" render
