(* Crash-safe trial journal: one JSON object per line, append-only, flushed
   after every record so a killed campaign loses at most the trial in
   flight. Lines that fail to parse (a torn write from a kill -9) are
   skipped on resume and the trial simply re-runs. *)

(* ------------------------------------------------------------------ *)
(* Minimal JSON (no external dependency): only what the journal emits.  *)
(* ------------------------------------------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let buf_escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.17g" f)
      else Buffer.add_string buf "null"
  | Str s ->
      Buffer.add_char buf '"';
      buf_escape buf s;
      Buffer.add_char buf '"'
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          write buf (Str k);
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 512 in
  write buf j;
  Buffer.contents buf

exception Parse_error of string

let parse (s : string) : json =
  let pos = ref 0 in
  let len = String.length s in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < len then s.[!pos] else '\255' in
  let next () =
    if !pos >= len then fail "unexpected end";
    let c = s.[!pos] in
    incr pos;
    c
  in
  let rec skip_ws () =
    if !pos < len && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) then begin
      incr pos;
      skip_ws ()
    end
  in
  let expect c = if next () <> c then fail (Printf.sprintf "expected '%c'" c) in
  let literal word v =
    if !pos + String.length word <= len && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail "bad literal"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          (match next () with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              let hex = String.init 4 (fun _ -> next ()) in
              let code = int_of_string ("0x" ^ hex) in
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else Buffer.add_string buf (Printf.sprintf "\\u%04x" code)
          | _ -> fail "bad escape");
          go ())
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < len && numchar s.[!pos] do incr pos done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with Some f -> Float f | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | 'n' -> literal "null" Null
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | '"' -> Str (parse_string ())
    | '[' ->
        expect '[';
        skip_ws ();
        if peek () = ']' then begin expect ']'; Arr [] end
        else begin
          let items = ref [] in
          let rec go () =
            items := parse_value () :: !items;
            skip_ws ();
            match next () with
            | ',' -> go ()
            | ']' -> ()
            | _ -> fail "expected ',' or ']'"
          in
          go ();
          Arr (List.rev !items)
        end
    | '{' ->
        expect '{';
        skip_ws ();
        if peek () = '}' then begin expect '}'; Obj [] end
        else begin
          let fields = ref [] in
          let rec go () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match next () with
            | ',' -> go ()
            | '}' -> ()
            | _ -> fail "expected ',' or '}'"
          in
          go ();
          Obj (List.rev !fields)
        end
    | _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Journal entries.                                                    *)
(* ------------------------------------------------------------------ *)

type status = Completed of Sim.Run_result.t | Failed of Trial_error.t

type entry = {
  key : string;
  bench : string;
  tag : string;
  scale : float;
  workers : int;
  seed : int;
  status : status;
}

let version = 1

let mem k fields = List.assoc_opt k fields

let get_str k fields = match mem k fields with Some (Str s) -> Some s | _ -> None

let get_int k fields = match mem k fields with Some (Int i) -> Some i | _ -> None

let get_float k fields =
  match mem k fields with Some (Float f) -> Some f | Some (Int i) -> Some (float_of_int i) | _ -> None

let get_bool k fields = match mem k fields with Some (Bool b) -> Some b | _ -> None

let termination_to_json (t : Sim.Run_result.termination) =
  match t with
  | Sim.Run_result.Finished -> Obj [ ("state", Str "finished") ]
  | Sim.Run_result.Dnf -> Obj [ ("state", Str "dnf") ]
  | Sim.Run_result.Budget_exceeded { budget; at } ->
      Obj [ ("state", Str "budget"); ("budget", Int budget); ("at", Int at) ]
  | Sim.Run_result.Guard_aborted reason ->
      Obj [ ("state", Str "guard"); ("reason", Str reason) ]

let termination_of_json = function
  | Obj fields -> (
      match get_str "state" fields with
      | Some "finished" -> Sim.Run_result.Finished
      | Some "dnf" -> Sim.Run_result.Dnf
      | Some "budget" ->
          Sim.Run_result.Budget_exceeded
            {
              budget = Option.value ~default:0 (get_int "budget" fields);
              at = Option.value ~default:0 (get_int "at" fields);
            }
      | Some "guard" ->
          Sim.Run_result.Guard_aborted (Option.value ~default:"" (get_str "reason" fields))
      | _ -> Sim.Run_result.Finished)
  | _ -> Sim.Run_result.Finished

let metrics_to_json (m : Sim.Metrics.t) =
  Obj
    [
      ("counters", Obj (List.map (fun (k, v) -> (k, Int v)) (Sim.Metrics.counters m)));
      ( "promotions_by_level",
        Arr (Array.to_list (Array.map (fun n -> Int n) m.Sim.Metrics.promotions_by_level)) );
      ( "overhead",
        Obj
          (Hashtbl.fold (fun k v acc -> (k, Int v) :: acc) m.Sim.Metrics.overhead_by_kind []
          |> List.sort compare) );
      ( "downgrades",
        Arr
          (List.rev_map (fun (w, t) -> Arr [ Int w; Int t ]) m.Sim.Metrics.mechanism_downgrades)
      );
      ( "chunk_trace",
        Arr
          (List.rev_map
             (fun (t, k, c) -> Arr [ Int t; Int k; Int c ])
             m.Sim.Metrics.chunk_trace) );
    ]

let metrics_of_json j =
  let m = Sim.Metrics.create () in
  (match j with
  | Obj fields ->
      (match mem "counters" fields with
      | Some (Obj counters) ->
          List.iter
            (fun (k, v) -> match v with Int i -> Sim.Metrics.restore_counter m k i | _ -> ())
            counters
      | _ -> ());
      (match mem "promotions_by_level" fields with
      | Some (Arr levels) ->
          List.iteri
            (fun i v ->
              match v with
              | Int n when i < Array.length m.Sim.Metrics.promotions_by_level ->
                  m.Sim.Metrics.promotions_by_level.(i) <- n
              | _ -> ())
            levels
      | _ -> ());
      (match mem "overhead" fields with
      | Some (Obj kinds) ->
          List.iter
            (fun (k, v) ->
              match v with Int i -> Hashtbl.replace m.Sim.Metrics.overhead_by_kind k i | _ -> ())
            kinds
      | _ -> ());
      (match mem "downgrades" fields with
      | Some (Arr items) ->
          m.Sim.Metrics.mechanism_downgrades <-
            List.rev
              (List.filter_map
                 (function Arr [ Int w; Int t ] -> Some (w, t) | _ -> None)
                 items)
      | _ -> ());
      (match mem "chunk_trace" fields with
      | Some (Arr items) ->
          m.Sim.Metrics.chunk_trace <-
            List.rev
              (List.filter_map
                 (function Arr [ Int t; Int k; Int c ] -> Some (t, k, c) | _ -> None)
                 items)
      | _ -> ())
  | _ -> ());
  m

let result_to_json (r : Sim.Run_result.t) =
  Obj
    [
      ("makespan", Int r.Sim.Run_result.makespan);
      ("work_cycles", Int r.Sim.Run_result.work_cycles);
      (* hex float: lossless round-trip for the output checksum *)
      ("fingerprint", Str (Printf.sprintf "%h" r.Sim.Run_result.fingerprint));
      ("dnf", Bool r.Sim.Run_result.dnf);
      ("termination", termination_to_json r.Sim.Run_result.termination);
      ("metrics", metrics_to_json r.Sim.Run_result.metrics);
    ]

let result_of_json j =
  match j with
  | Obj fields ->
      let fingerprint =
        match get_str "fingerprint" fields with
        | Some s -> ( match float_of_string_opt s with Some f -> f | None -> Float.nan)
        | None -> Float.nan
      in
      Some
        {
          Sim.Run_result.makespan = Option.value ~default:0 (get_int "makespan" fields);
          work_cycles = Option.value ~default:0 (get_int "work_cycles" fields);
          fingerprint;
          dnf = Option.value ~default:false (get_bool "dnf" fields);
          termination =
            (match mem "termination" fields with
            | Some t -> termination_of_json t
            | None -> Sim.Run_result.Finished);
          metrics =
            (match mem "metrics" fields with
            | Some m -> metrics_of_json m
            | None -> Sim.Metrics.create ());
        }
  | _ -> None

let entry_to_json e =
  let status_fields =
    match e.status with
    | Completed r -> [ ("status", Str "ok"); ("result", result_to_json r) ]
    | Failed err ->
        [
          ("status", Str "failed");
          ("error_kind", Str (Trial_error.kind err));
          ("error", Str (Trial_error.detail err));
        ]
  in
  to_string
    (Obj
       ([
          ("v", Int version);
          ("key", Str e.key);
          ("bench", Str e.bench);
          ("tag", Str e.tag);
          ("scale", Float e.scale);
          ("workers", Int e.workers);
          ("seed", Int e.seed);
        ]
       @ status_fields))

let entry_of_json line =
  match parse line with
  | exception Parse_error msg -> Error msg
  | Obj fields -> (
      let str k = get_str k fields in
      match (str "key", str "bench", str "tag", str "status") with
      | Some key, Some bench, Some tag, Some status_str -> (
          let base status =
            Ok
              {
                key;
                bench;
                tag;
                scale = Option.value ~default:1.0 (get_float "scale" fields);
                workers = Option.value ~default:0 (get_int "workers" fields);
                seed = Option.value ~default:0 (get_int "seed" fields);
                status;
              }
          in
          match status_str with
          | "ok" -> (
              match mem "result" fields with
              | Some rj -> (
                  match result_of_json rj with
                  | Some r -> base (Completed r)
                  | None -> Error "bad result payload")
              | None -> Error "missing result")
          | "failed" ->
              let kind = Option.value ~default:"crash" (str "error_kind") in
              let detail = Option.value ~default:"" (str "error") in
              base (Failed (Trial_error.make ~kind detail))
          | other -> Error (Printf.sprintf "unknown status %s" other))
      | _ -> Error "missing required fields")
  | _ -> Error "top level is not an object"
  | exception e -> Error (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* The journal itself.                                                 *)
(* ------------------------------------------------------------------ *)

type t = {
  path : string;
  table : (string, entry) Hashtbl.t;
  out : out_channel;
  mutable loaded : int;
  mutable hits : int;
  mutable appended : int;
  mutable skipped_lines : int;
}

let load_existing table path =
  let loaded = ref 0 and skipped = ref 0 in
  (if Sys.file_exists path then
     let ic = open_in path in
     Fun.protect
       ~finally:(fun () -> close_in_noerr ic)
       (fun () ->
         try
           while true do
             let line = input_line ic in
             if String.trim line <> "" then
               match entry_of_json line with
               | Ok e ->
                   Hashtbl.replace table e.key e;
                   incr loaded
               | Error _ -> incr skipped
           done
         with End_of_file -> ()));
  (!loaded, !skipped)

let create ~path ~resume =
  let table = Hashtbl.create 256 in
  let loaded, skipped_lines = if resume then load_existing table path else (0, 0) in
  (* On resume we rewrite the journal from the parsed entries: torn lines
     from a previous kill are dropped and the file stays one-valid-JSON-
     object-per-line. Without resume the journal starts fresh. *)
  let out = open_out path in
  Hashtbl.iter (fun _ e -> output_string out (entry_to_json e ^ "\n")) table;
  flush out;
  { path; table; out; loaded; hits = 0; appended = 0; skipped_lines }

let path t = t.path

let loaded t = t.loaded

let hits t = t.hits

let appended t = t.appended

let skipped_lines t = t.skipped_lines

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some e ->
      t.hits <- t.hits + 1;
      Some e
  | None -> None

let record t e =
  Hashtbl.replace t.table e.key e;
  output_string t.out (entry_to_json e ^ "\n");
  flush t.out;
  t.appended <- t.appended + 1

let close t = close_out_noerr t.out
