(* Crash-safe trial journal: one JSON object per line, append-only, flushed
   after every record so a killed campaign loses at most the trial in
   flight. Lines that fail to parse (a torn write from a kill -9) are
   skipped on resume and the trial simply re-runs.

   JSON encoding/decoding lives in {!Obs.Json} (shared with the trace
   exporter); this module only owns the journal schema. *)

open Obs.Json

(* ------------------------------------------------------------------ *)
(* Journal entries.                                                    *)
(* ------------------------------------------------------------------ *)

type status = Completed of Sim.Run_result.t | Failed of Trial_error.t

type entry = {
  key : string;
  bench : string;
  tag : string;
  scale : float;
  workers : int;
  seed : int;
  status : status;
}

(* v2: metrics are pure counters (downgrade/chunk-trace lists became trace
   events) and results carry an optional captured trace. v1 lines no longer
   parse into current metrics and are dropped on resume, forcing a re-run. *)
let version = 2

let termination_to_json (t : Sim.Run_result.termination) =
  match t with
  | Sim.Run_result.Finished -> Obj [ ("state", Str "finished") ]
  | Sim.Run_result.Dnf -> Obj [ ("state", Str "dnf") ]
  | Sim.Run_result.Budget_exceeded { budget; at } ->
      Obj [ ("state", Str "budget"); ("budget", Int budget); ("at", Int at) ]
  | Sim.Run_result.Guard_aborted reason ->
      Obj [ ("state", Str "guard"); ("reason", Str reason) ]
  | Sim.Run_result.Paused ck ->
      (* Byte-stable checkpoint codec string; journal round trips keep the
         resume-divergence byte check meaningful. *)
      Obj [ ("state", Str "paused"); ("ckpt", Str (Sim.Checkpoint_state.to_string ck)) ]

let termination_of_json = function
  | Obj fields -> (
      match get_str "state" fields with
      | Some "finished" -> Sim.Run_result.Finished
      | Some "dnf" -> Sim.Run_result.Dnf
      | Some "paused" -> (
          match
            Option.map Sim.Checkpoint_state.of_string (get_str "ckpt" fields)
          with
          | Some (Ok ck) -> Sim.Run_result.Paused ck
          | Some (Error _) | None -> Sim.Run_result.Finished)
      | Some "budget" ->
          Sim.Run_result.Budget_exceeded
            {
              budget = Option.value ~default:0 (get_int "budget" fields);
              at = Option.value ~default:0 (get_int "at" fields);
            }
      | Some "guard" ->
          Sim.Run_result.Guard_aborted (Option.value ~default:"" (get_str "reason" fields))
      | _ -> Sim.Run_result.Finished)
  | _ -> Sim.Run_result.Finished

let metrics_to_json (m : Sim.Metrics.t) =
  Obj
    [
      ("counters", Obj (List.map (fun (k, v) -> (k, Int v)) (Sim.Metrics.counters m)));
      ( "promotions_by_level",
        Arr (Array.to_list (Array.map (fun n -> Int n) m.Sim.Metrics.promotions_by_level)) );
      ( "overhead",
        Obj
          (Hashtbl.fold (fun k v acc -> (k, Int v) :: acc) m.Sim.Metrics.overhead_by_kind []
          |> List.sort compare) );
    ]

let metrics_of_json j =
  let m = Sim.Metrics.create () in
  (match j with
  | Obj fields ->
      (match mem "counters" fields with
      | Some (Obj counters) ->
          List.iter
            (fun (k, v) -> match v with Int i -> Sim.Metrics.restore_counter m k i | _ -> ())
            counters
      | _ -> ());
      (match mem "promotions_by_level" fields with
      | Some (Arr levels) ->
          List.iteri
            (fun i v ->
              match v with
              | Int n when i < Array.length m.Sim.Metrics.promotions_by_level ->
                  m.Sim.Metrics.promotions_by_level.(i) <- n
              | _ -> ())
            levels
      | _ -> ());
      (match mem "overhead" fields with
      | Some (Obj kinds) ->
          List.iter
            (fun (k, v) ->
              match v with Int i -> Hashtbl.replace m.Sim.Metrics.overhead_by_kind k i | _ -> ())
            kinds
      | _ -> ())
  | _ -> ());
  m

let result_to_json (r : Sim.Run_result.t) =
  let base =
    [
      ("makespan", Int r.Sim.Run_result.makespan);
      ("work_cycles", Int r.Sim.Run_result.work_cycles);
      (* hex float: lossless round-trip for the output checksum *)
      ("fingerprint", Str (Printf.sprintf "%h" r.Sim.Run_result.fingerprint));
      ("dnf", Bool r.Sim.Run_result.dnf);
      ("termination", termination_to_json r.Sim.Run_result.termination);
      ("metrics", metrics_to_json r.Sim.Run_result.metrics);
    ]
  in
  (* Omit optional fields entirely when absent: journal lines stay as small
     as before unless the trial captured events or ran sanitized. *)
  let base =
    match r.Sim.Run_result.sanitizer with
    | None -> base
    | Some s -> base @ [ ("sanitizer", Str s) ]
  in
  match r.Sim.Run_result.trace with
  | [] -> Obj base
  | recs -> Obj (base @ [ ("trace", Obs.Trace.records_to_json recs) ])

let result_of_json j =
  match j with
  | Obj fields ->
      let fingerprint =
        match get_str "fingerprint" fields with
        | Some s -> ( match float_of_string_opt s with Some f -> f | None -> Float.nan)
        | None -> Float.nan
      in
      Some
        {
          Sim.Run_result.makespan = Option.value ~default:0 (get_int "makespan" fields);
          work_cycles = Option.value ~default:0 (get_int "work_cycles" fields);
          fingerprint;
          dnf = Option.value ~default:false (get_bool "dnf" fields);
          termination =
            (match mem "termination" fields with
            | Some t -> termination_of_json t
            | None -> Sim.Run_result.Finished);
          metrics =
            (match mem "metrics" fields with
            | Some m -> metrics_of_json m
            | None -> Sim.Metrics.create ());
          trace =
            (match mem "trace" fields with
            | Some t -> Obs.Trace.records_of_json t
            | None -> []);
          sanitizer = get_str "sanitizer" fields;
        }
  | _ -> None

let entry_to_json e =
  let status_fields =
    match e.status with
    | Completed r -> [ ("status", Str "ok"); ("result", result_to_json r) ]
    | Failed err ->
        [
          ("status", Str "failed");
          ("error_kind", Str (Trial_error.kind err));
          ("error", Str (Trial_error.detail err));
        ]
  in
  to_string
    (Obj
       ([
          ("v", Int version);
          ("key", Str e.key);
          ("bench", Str e.bench);
          ("tag", Str e.tag);
          ("scale", Float e.scale);
          ("workers", Int e.workers);
          ("seed", Int e.seed);
        ]
       @ status_fields))

let entry_of_json line =
  match parse line with
  | exception Parse_error msg -> Error msg
  | Obj fields -> (
      if get_int "v" fields <> Some version then Error "version mismatch"
      else
        let str k = get_str k fields in
        match (str "key", str "bench", str "tag", str "status") with
        | Some key, Some bench, Some tag, Some status_str -> (
            let base status =
              Ok
                {
                  key;
                  bench;
                  tag;
                  scale = Option.value ~default:1.0 (get_float "scale" fields);
                  workers = Option.value ~default:0 (get_int "workers" fields);
                  seed = Option.value ~default:0 (get_int "seed" fields);
                  status;
                }
            in
            match status_str with
            | "ok" -> (
                match mem "result" fields with
                | Some rj -> (
                    match result_of_json rj with
                    | Some r -> base (Completed r)
                    | None -> Error "bad result payload")
                | None -> Error "missing result")
            | "failed" ->
                let kind = Option.value ~default:"crash" (str "error_kind") in
                let detail = Option.value ~default:"" (str "error") in
                base (Failed (Trial_error.make ~kind detail))
            | other -> Error (Printf.sprintf "unknown status %s" other))
        | _ -> Error "missing required fields")
  | _ -> Error "top level is not an object"
  | exception e -> Error (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* The journal itself.                                                 *)
(* ------------------------------------------------------------------ *)

type t = {
  path : string;
  table : (string, entry) Hashtbl.t;
  out : out_channel;
  mutable loaded : int;
  mutable hits : int;
  mutable appended : int;
  mutable skipped_lines : int;
}

let load_existing table path =
  let loaded = ref 0 and skipped = ref 0 in
  (if Sys.file_exists path then
     let ic = open_in path in
     Fun.protect
       ~finally:(fun () -> close_in_noerr ic)
       (fun () ->
         try
           while true do
             let line = input_line ic in
             if String.trim line <> "" then
               match entry_of_json line with
               | Ok e ->
                   Hashtbl.replace table e.key e;
                   incr loaded
               | Error _ -> incr skipped
           done
         with End_of_file -> ()));
  (!loaded, !skipped)

let create ~path ~resume =
  let table = Hashtbl.create 256 in
  let loaded, skipped_lines = if resume then load_existing table path else (0, 0) in
  (* On resume we rewrite the journal from the parsed entries: torn lines
     from a previous kill are dropped and the file stays one-valid-JSON-
     object-per-line. Without resume the journal starts fresh. *)
  let out = open_out path in
  Hashtbl.iter (fun _ e -> output_string out (entry_to_json e ^ "\n")) table;
  flush out;
  { path; table; out; loaded; hits = 0; appended = 0; skipped_lines }

let path t = t.path

let loaded t = t.loaded

let hits t = t.hits

let appended t = t.appended

let skipped_lines t = t.skipped_lines

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some e ->
      t.hits <- t.hits + 1;
      Some e
  | None -> None

let record t e =
  Hashtbl.replace t.table e.key e;
  output_string t.out (entry_to_json e ^ "\n");
  flush t.out;
  t.appended <- t.appended + 1

let close t = close_out_noerr t.out
