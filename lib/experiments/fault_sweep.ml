(* Robustness sweep: heartbeat-delivery drop rate 0..50% against each
   signaling mechanism. Software polling never sends deliveries, so it is
   the flat control; the interrupt mechanisms lose promotion opportunities
   as beats are dropped, and at high drop rates the starvation watchdog
   downgrades starved workers to software polling, which bounds the
   degradation. Outputs stay equal to the sequential reference at every
   drop rate — faults change performance, never results. *)

let drop_rates = [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5 ]

let benchmarks = [ "plus-reduce-array"; "spmv-powerlaw"; "mandelbrot" ]

let mechanisms =
  [
    ("software polling (control)", "poll", fun _entry c -> c);
    ( "kernel module",
      "km",
      fun entry c ->
        {
          c with
          Hbc_core.Rt_config.mechanism = Hbc_core.Rt_config.Interrupt_kernel_module;
          chunk = Hbc_core.Compiled.Static entry.Workloads.Registry.tpal_chunk;
        } );
    ( "ping thread",
      "ping",
      fun entry c ->
        {
          c with
          Hbc_core.Rt_config.mechanism = Hbc_core.Rt_config.Interrupt_ping_thread;
          chunk = Hbc_core.Compiled.Static entry.Workloads.Registry.tpal_chunk;
        } );
  ]

let plan config rate =
  if rate = 0.0 then None
  else Some { Sim.Fault_plan.none with Sim.Fault_plan.beat_drop_prob = rate; seed = config.Harness.seed }

let run config entry short cfg rate =
  Harness.run_hbc config ~cfg:(cfg entry)
    ~request:(Hbc_core.Run_request.make ?fault_plan:(plan config rate) ())
    ~tag:(Printf.sprintf "fault-%s-%.0f" short (rate *. 100.))
    entry

let render config =
  let sections =
    List.map
      (fun (label, short, cfg) ->
        let table =
          Report.Table.create
            ~title:(Printf.sprintf "Fault sweep [%s]: speedup vs heartbeat drop rate" label)
            ~columns:
              ("benchmark"
              :: List.map (fun r -> Printf.sprintf "drop %.0f%%" (r *. 100.)) drop_rates
              @ [ "downgrades"; "slowdown" ])
        in
        List.iter
          (fun name ->
            let entry = Workloads.Registry.find name in
            let outcomes = List.map (run config entry short cfg) drop_rates in
            let speedups = List.map (fun o -> o.Harness.speedup) outcomes in
            let last = List.nth outcomes (List.length outcomes - 1) in
            let downgrades_cell =
              Harness.metric_cell last (fun r ->
                  Report.Table.cell_i (Sim.Run_result.downgrades r))
            in
            let s0 = List.nth speedups 0 in
            let smax = List.nth speedups (List.length speedups - 1) in
            let slowdown = if smax > 0. then s0 /. smax else infinity in
            Report.Table.add_row table
              ((name :: List.map (Harness.speedup_cell ~decimals:2) outcomes)
              @ [ downgrades_cell; Report.Table.cell_f ~decimals:2 slowdown ]))
          benchmarks;
        Report.Table.render table)
      mechanisms
  in
  String.concat "\n" sections

let figure =
  Figure.make ~id:"fault-sweep"
    ~caption:
      "Graceful degradation: per-mechanism speedup as the heartbeat drop rate sweeps 0-50%"
    render
