(* Fig. 9: the three heartbeat signaling mechanisms under the full HBC
   runtime. Expected shape: the ping thread loses measurably (it misses a
   large share of beats); the kernel module and software polling are
   comparable — the paper's counter-intuitive headline result. *)

let render config =
  let entries = Workloads.Registry.tpal_set () in
  let table =
    Report.Table.create
      ~title:"Figure 9: speedup by heartbeat mechanism (interrupt ping thread / kernel module / software polling)"
      ~columns:
        [ "benchmark"; "ping thread"; "kernel module"; "software polling"; "ping missed %" ]
  in
  let pings = ref [] and kms = ref [] and polls = ref [] in
  List.iter
    (fun entry ->
      let chunk = Hbc_core.Compiled.Static entry.Workloads.Registry.tpal_chunk in
      let ping =
        Harness.run_hbc config
          ~cfg:(fun c ->
            {
              c with
              Hbc_core.Rt_config.mechanism = Hbc_core.Rt_config.Interrupt_ping_thread;
              chunk;
            })
          ~tag:"hbc-ping" entry
      in
      let km =
        Harness.run_hbc config
          ~cfg:(fun c ->
            {
              c with
              Hbc_core.Rt_config.mechanism = Hbc_core.Rt_config.Interrupt_kernel_module;
              chunk;
            })
          ~tag:"hbc-km" entry
      in
      let poll = Harness.run_hbc config entry in
      pings := ping :: !pings;
      kms := km :: !kms;
      polls := poll :: !polls;
      let missed_cell =
        Harness.metric_cell ping (fun r ->
            let m = r.Sim.Run_result.metrics in
            Report.Table.cell_f
              (100.0
              *. Float.of_int m.Sim.Metrics.heartbeats_missed
              /. Float.of_int (Stdlib.max 1 m.Sim.Metrics.heartbeats_generated)))
      in
      Report.Table.add_row table
        [
          entry.Workloads.Registry.name;
          Harness.speedup_cell ping;
          Harness.speedup_cell km;
          Harness.speedup_cell poll;
          missed_cell;
        ])
    entries;
  Report.Table.add_separator table;
  Report.Table.add_row table (Harness.geomean_row ~label:"geomean" [ !pings; !kms; !polls ]);
  Report.Table.render table

let figure =
  Figure.make ~id:"fig9" ~caption:"Software polling is as good as interrupt-based mechanisms"
    render
