(* Fig. 6: HBC vs the manually written TPAL binaries on the 8 iterative TPAL
   benchmarks. Expected shape: comparable geomeans; HBC ahead on
   mandelbrot/kmeans/srad (three-task promotions), behind ~20% on
   spmv-arrowhead (chunk-size transferring on tiny rows). *)

let render config =
  let entries = Workloads.Registry.tpal_set () in
  let table =
    Report.Table.create ~title:"Figure 6: speedup, TPAL (manual) vs HBC (automatic), 64 cores"
      ~columns:[ "benchmark"; "TPAL"; "HBC"; "HBC/TPAL" ]
  in
  let tpals = ref [] and hbcs = ref [] in
  List.iter
    (fun entry ->
      let tpal = Harness.run_tpal config entry in
      let hbc = Harness.run_hbc config entry in
      tpals := tpal :: !tpals;
      hbcs := hbc :: !hbcs;
      Report.Table.add_row table
        [
          entry.Workloads.Registry.name;
          Harness.speedup_cell tpal;
          Harness.speedup_cell hbc;
          Report.Table.cell_f ~decimals:2 (hbc.Harness.speedup /. Float.max 0.01 tpal.Harness.speedup);
        ])
    entries;
  Report.Table.add_separator table;
  Report.Table.add_row table (Harness.geomean_row ~label:"geomean" [ !tpals; !hbcs ]);
  (* Failed/DNF cells are non-numeric; chart them as 0 bars. *)
  let bar s = Option.value ~default:0.0 (float_of_string_opt s) in
  let chart =
    Report.Ascii_chart.grouped ~title:"speedup (x)" ~series:[ "TPAL"; "HBC" ]
      (List.map
         (fun row -> match row with
           | name :: a :: b :: _ -> (name, [ bar a; bar b ])
           | _ -> ("", []))
         (Report.Table.rows table))
  in
  Report.Table.render table ^ "\n" ^ chart

let figure =
  Figure.make ~id:"fig6"
    ~caption:"HBC automatically delivers comparable performance to the manually-generated TPAL binaries"
    render
