type t =
  | Timeout of string
  | Deadlock of string
  | Invariant_violation of string
  | Result_mismatch of string
  | Crash of string

let kind = function
  | Timeout _ -> "timeout"
  | Deadlock _ -> "deadlock"
  | Invariant_violation _ -> "invariant"
  | Result_mismatch _ -> "mismatch"
  | Crash _ -> "crash"

let detail = function
  | Timeout m | Deadlock m | Invariant_violation m | Result_mismatch m | Crash m -> m

let make ~kind:k detail =
  match k with
  | "timeout" -> Timeout detail
  | "deadlock" -> Deadlock detail
  | "invariant" -> Invariant_violation detail
  | "mismatch" -> Result_mismatch detail
  | _ -> Crash detail

let to_string e = Printf.sprintf "%s: %s" (kind e) (detail e)

let cell e = Printf.sprintf "\xe2\x80\x94(%s)" (kind e)

(* Only crashes are worth retrying: the simulator is deterministic, so a
   timeout, deadlock, invariant violation, or output mismatch reproduces
   identically, while a crash may be environmental (OOM, interrupted IO). *)
let transient = function
  | Crash _ -> true
  | Timeout _ | Deadlock _ | Invariant_violation _ | Result_mismatch _ -> false

let of_termination (t : Sim.Run_result.termination) =
  match t with
  | Sim.Run_result.Finished | Sim.Run_result.Dnf -> None
  | Sim.Run_result.Budget_exceeded { budget; at } ->
      Some (Timeout (Printf.sprintf "cycle budget %d exceeded at virtual time %d" budget at))
  | Sim.Run_result.Guard_aborted reason -> Some (Timeout reason)
  (* Campaign trials never arm a pause boundary; a paused result reaching
     the harness means the request was misbuilt, and caching it as a
     completed trial would poison the journal. *)
  | Sim.Run_result.Paused ck ->
      Some (Invariant_violation ("unexpected pause in campaign trial: " ^ Sim.Checkpoint_state.describe ck))

let of_exn (e : exn) =
  match e with
  | Sim.Engine.Deadlock msg -> Deadlock msg
  | Sim.Engine.Budget_exceeded { budget; time } ->
      Timeout (Printf.sprintf "cycle budget %d exceeded at virtual time %d" budget time)
  | Sim.Engine.Guard_stop reason -> Timeout reason
  | Hbc_core.Executor.Internal_error msg -> Invariant_violation msg
  | Assert_failure (file, line, _) ->
      Invariant_violation (Printf.sprintf "assertion failed at %s:%d" file line)
  | Stack_overflow -> Crash "stack overflow"
  | Out_of_memory -> Crash "out of memory"
  | e -> Crash (Printexc.to_string e)
