(** One reproduced figure: an identifier, the paper's caption, and a
    renderer producing the tables/charts for a given configuration. *)

type t = {
  id : string;  (** "fig4" ... "fig16" *)
  caption : string;
  render : Harness.config -> string;
}

val make : id:string -> caption:string -> (Harness.config -> string) -> t

val render_guarded : t -> Harness.config -> string
(** Render, converting any escaping exception into an explicit
    "figure aborted" body so one broken figure cannot sink a campaign. *)
