(* Fig. 12: visualization of adaptive chunking on the four spmv inputs — the
   chunk size chosen by AC moves inversely to the per-row non-zero count.
   Rows are bucketed; each bucket reports the average non-zeros per row and
   the average chunk size AC chose while working in that region. *)

let buckets = 16

let render config =
  let programs =
    [
      ("arrowhead", Workloads.Spmv.arrowhead ~scale:config.Harness.scale);
      ("powerlaw", Workloads.Spmv.powerlaw ~scale:config.Harness.scale);
      ("powerlaw-reverse", Workloads.Spmv.powerlaw_reverse ~scale:config.Harness.scale);
      ("random", Workloads.Spmv.random ~scale:config.Harness.scale);
    ]
  in
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, program) ->
      let rt =
        {
          Hbc_core.Rt_config.default with
          workers = config.Harness.workers;
          seed = config.Harness.seed;
        }
      in
      (* Capture only the AC decisions: a keep-filtered stream sink keeps the
         journaled trace proportional to the number of chunk updates, not to
         the run's full event volume. *)
      let request =
        Hbc_core.Run_request.make
          ~trace:
            (Obs.Trace.Sink.stream
               ~keep:(function Obs.Trace.Chunk_update _ -> true | _ -> false)
               ())
          ()
      in
      match
        Harness.trial config ~bench:("spmv-" ^ name) ~tag:"fig12-trace"
          ~signature:
            (Hbc_core.Rt_config.signature rt ^ "+" ^ Hbc_core.Run_request.signature request)
          (fun () -> Hbc_core.Executor.run ~request:(Harness.guarded config request) rt program)
      with
      | Error e ->
          Buffer.add_string buf
            (Printf.sprintf "Figure 12 (%s): unavailable — %s\n\n" name (Trial_error.to_string e))
      | Ok r ->
      let env = program.Ir.Program.make_env () in
      let matrix = env.Workloads.Spmv.matrix in
      let n = matrix.Workloads.Matrix_gen.n in
      let chunk_sum = Array.make buckets 0.0 and chunk_cnt = Array.make buckets 0 in
      List.iter
        (fun (_, row, chunk) ->
          if row >= 0 && row < n then begin
            let b = row * buckets / n in
            chunk_sum.(b) <- chunk_sum.(b) +. Float.of_int chunk;
            chunk_cnt.(b) <- chunk_cnt.(b) + 1
          end)
        (Obs.Trace_query.chunk_updates r.Sim.Run_result.trace);
      let table =
        Report.Table.create
          ~title:(Printf.sprintf "Figure 12 (%s): per-row non-zeros vs AC chunk size" name)
          ~columns:[ "row range"; "avg nnz/row"; "avg AC chunk"; "updates" ]
      in
      for b = 0 to buckets - 1 do
        let lo = b * n / buckets and hi = ((b + 1) * n / buckets) - 1 in
        let nnz = ref 0 in
        for i = lo to hi do
          nnz := !nnz + Workloads.Matrix_gen.nnz_of_row matrix i
        done;
        let rows = hi - lo + 1 in
        let avg_nnz = Float.of_int !nnz /. Float.of_int (Stdlib.max 1 rows) in
        let avg_chunk =
          if chunk_cnt.(b) = 0 then 0.0 else chunk_sum.(b) /. Float.of_int chunk_cnt.(b)
        in
        Report.Table.add_row table
          [
            Printf.sprintf "%d..%d" lo hi;
            Report.Table.cell_f avg_nnz;
            Report.Table.cell_f avg_chunk;
            Report.Table.cell_i chunk_cnt.(b);
          ]
      done;
      Buffer.add_string buf (Report.Table.render table);
      Buffer.add_char buf '\n')
    programs;
  Buffer.contents buf

let figure = Figure.make ~id:"fig12" ~caption:"Visualization of Adaptive Chunking" render
