type t = { id : string; caption : string; render : Harness.config -> string }

let make ~id ~caption render = { id; caption; render }

(* Graceful degradation at figure granularity: individual trials already
   catch their own failures, but a bug in a figure's own rendering code (or
   a trial error escaping a non-harness path) must not unwind the whole
   campaign either — it becomes an explicit aborted-figure body. *)
let render_guarded t config =
  match t.render config with
  | body -> body
  | exception e ->
      Printf.sprintf "!! figure %s aborted: %s\n" t.id (Trial_error.to_string (Trial_error.of_exn e))
