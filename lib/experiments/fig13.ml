(* Fig. 13: heartbeat detection rate under AC as the target polling count
   sweeps 0..20. Expected shape: a too-low target misses a large share of
   beats (down to ~50% for spmv-powerlaw); a target of 4 or more detects
   over 99%. *)

let targets = [ 1; 2; 3; 4; 6; 8; 12; 16; 20 ]

(* The detection rate is computed from the captured heartbeat events rather
   than the metrics counters; a keep filter drops everything else so the
   journaled trace stays proportional to the beat count. *)
let heartbeat_request () =
  Hbc_core.Run_request.make
    ~trace:
      (Obs.Trace.Sink.stream
         ~keep:(function
           | Obs.Trace.Heartbeat_generated | Obs.Trace.Heartbeat_detected
           | Obs.Trace.Heartbeat_missed ->
               true
           | _ -> false)
         ())
    ()

let render config =
  let entries = Workloads.Registry.tpal_set () in
  let table =
    Report.Table.create
      ~title:"Figure 13: heartbeat detection rate (%) vs AC target polling count"
      ~columns:("benchmark" :: List.map (fun t -> Printf.sprintf "target %d" t) targets)
  in
  List.iter
    (fun entry ->
      let cells =
        List.map
          (fun target ->
            let o =
              Harness.run_hbc config
                ~cfg:(fun c -> { c with Hbc_core.Rt_config.ac_target_polls = target })
                ~request:(heartbeat_request ())
                ~tag:(Printf.sprintf "ac-target-%d" target)
                entry
            in
            Harness.metric_cell o (fun r ->
                Report.Table.cell_f ~decimals:2
                  (Obs.Trace_query.detection_rate r.Sim.Run_result.trace)))
          targets
      in
      Report.Table.add_row table (entry.Workloads.Registry.name :: cells))
    entries;
  Report.Table.render table

let figure =
  Figure.make ~id:"fig13" ~caption:"Heartbeat detection rate via AC as the target polling count varies"
    render
