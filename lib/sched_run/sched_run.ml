(* The one front door for running a program: pick an engine, pick a
   backend, get a {!Sim.Run_result.t}. Dispatch is total over
   (engine × backend); the combinations a backend cannot express fail
   loudly with [invalid_arg] instead of silently falling back. *)

type engine =
  | Hbc of Hbc_core.Rt_config.t
  | Tpal of { chunk : int }
  | Openmp of Baselines.Openmp.config
  | Serial
  | Hybrid of { hbc : Hbc_core.Rt_config.t; omp : Baselines.Openmp.config }

let hbc = Hbc Hbc_core.Rt_config.hbc

let hybrid = Hybrid { hbc = Hbc_core.Rt_config.hbc; omp = Baselines.Openmp.dynamic () }

let run ?(request = Hbc_core.Run_request.default) ?backend ?beat engine
    (program : 'e Ir.Program.t) : Sim.Run_result.t =
  let backend = Option.value backend ~default:request.Hbc_core.Run_request.backend in
  (* The request carries the backend it actually ran on — journal keys and
     result provenance stay truthful even when the label overrode it. *)
  let request = { request with Hbc_core.Run_request.backend } in
  match (backend, engine) with
  | Sched.Policy.Sim, Hbc cfg -> Hbc_core.Executor.run ~request cfg program
  | Sched.Policy.Domains, Hbc cfg -> Hb_parallel.Native_run.run ~request ?beat cfg program
  | Sched.Policy.Sim, Tpal { chunk } ->
      Hbc_core.Executor.run ~request (Hbc_core.Rt_config.tpal ~chunk) program
  | Sched.Policy.Domains, Tpal { chunk } ->
      Hb_parallel.Native_run.run ~request ?beat (Hbc_core.Rt_config.tpal ~chunk) program
  | Sched.Policy.Sim, Openmp cfg -> Baselines.Openmp.run_program ~request cfg program
  | (Sched.Policy.Sim | Sched.Policy.Domains), Serial ->
      (* The sequential reference has no scheduler; it is backend-neutral. *)
      Baselines.Serial_exec.run_program ~request program
  | Sched.Policy.Sim, Hybrid { hbc; omp } ->
      Baselines.Hybrid.run_program ~hbc ~omp program
  | Sched.Policy.Domains, (Openmp _ | Hybrid _) ->
      invalid_arg
        "Sched_run.run: the OpenMP-model baselines are virtual-time simulations; run them on the \
         sim backend"
