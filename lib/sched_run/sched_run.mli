(** The backend-agnostic run facade: one entry point over every executor
    front end and both scheduler backends.

    [Executor.run] (virtual time), [Native_run.run] (OCaml 5 domains) and
    the [Baselines] executors all produce a {!Sim.Run_result.t} from an
    {!Ir.Program.t} and a {!Hbc_core.Run_request.t}; this module is the
    total dispatch over (engine × backend) so harnesses, the CLI and
    tests pick a combination instead of an entry point. The heartbeat
    engines ([Hbc], [Tpal]) run on either backend — the same
    [Sched.Core] policy functor instantiated over {!Sim_backend} or
    [Domains_backend]. The OpenMP-model baselines are virtual-time
    simulations and exist only on [Sim]; the sequential reference is
    backend-neutral. *)

type engine =
  | Hbc of Hbc_core.Rt_config.t  (** the heartbeat runtime under this configuration *)
  | Tpal of { chunk : int }  (** TPAL: static chunk, inline leftover, ping thread *)
  | Openmp of Baselines.Openmp.config  (** OpenMP-model baseline (sim only) *)
  | Serial  (** sequential reference; backend-neutral *)
  | Hybrid of { hbc : Hbc_core.Rt_config.t; omp : Baselines.Openmp.config }
      (** regularity-dispatched heartbeat/static hybrid (sim only) *)

val hbc : engine
(** [Hbc Rt_config.hbc] — the paper's configuration. *)

val hybrid : engine
(** The Sec. 6.8 hybrid under default configurations. *)

val run :
  ?request:Hbc_core.Run_request.t ->
  ?backend:Sched.Policy.backend_kind ->
  ?beat:Hb_parallel.Native_run.beat_source ->
  engine ->
  'e Ir.Program.t ->
  Sim.Run_result.t
(** Run [program] under [engine] on [backend] (default: the request's
    [backend] field, itself defaulting to [Sim]). The returned result's
    provenance is truthful: the request is re-stamped with the backend
    that actually ran, so journal signatures never alias across backends.
    [beat] applies to domains runs only (default wall-clock 100 µs).

    @raise Invalid_argument for combinations the backend cannot express:
    [Openmp]/[Hybrid] on [Domains]; a fault plan with simulator-only
    kinds ({!Sim.Fault_plan.simulator_only}) on [Domains] — portable
    plans inject natively; and pause/resume on [Domains] without a
    deterministic [Every_polls] beat and a single worker. *)
