type t = {
  target : int;
  window : int;
  mutable chunk : int;
  mutable polls : int;  (* since last heartbeat *)
  mutable log : int list;  (* poll counts of closed intervals, newest first *)
}

let create ?(initial_chunk = 1) ~target_polls ~window () =
  if target_polls < 1 then invalid_arg "Adaptive_chunking.create: target_polls < 1";
  if window < 1 then invalid_arg "Adaptive_chunking.create: window < 1";
  { target = target_polls; window; chunk = Stdlib.max 1 initial_chunk; polls = 0; log = [] }

let chunk_size t = t.chunk

let on_poll t = t.polls <- t.polls + 1

type decision = { old_chunk : int; new_chunk : int; min_polls : int }

(* The window is full: commit the update rule, reset the window, and return
   the window minimum (the rule's other input, for observability). *)
let close_window t =
  let minimum = List.fold_left Stdlib.min max_int t.log in
  t.log <- [];
  let ratio = Float.of_int minimum /. Float.of_int t.target in
  t.chunk <- Stdlib.max 1 (int_of_float (Float.round (Float.of_int t.chunk *. ratio)));
  minimum

(* Hot path: allocates nothing beyond the returned [Some] (the sanitizer's
   {!decision} record is only built by {!on_heartbeat_full}, which callers
   reserve for trace-capturing runs). *)
let on_heartbeat t =
  t.log <- t.polls :: t.log;
  t.polls <- 0;
  if List.length t.log >= t.window then begin
    ignore (close_window t : int);
    Some t.chunk
  end
  else None

let on_heartbeat_full t =
  let old_chunk = t.chunk in
  t.log <- t.polls :: t.log;
  t.polls <- 0;
  if List.length t.log >= t.window then begin
    let min_polls = close_window t in
    Some { old_chunk; new_chunk = t.chunk; min_polls }
  end
  else None

let polls_since_heartbeat t = t.polls

let intervals_logged t = List.length t.log
