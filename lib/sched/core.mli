(** The backend-agnostic scheduler core (deque discipline, steal protocol,
    joins) as a functor over {!Backend_intf.BACKEND}.

    [Make (Sim_backend)] is the virtual-time executor's scheduler —
    byte-identical to the historical in-executor code, pinned by golden
    tests. [Make (Domains_backend)] is the same scheduler on real OCaml 5
    domains. Both instantiations emit the same capture-gated trace events
    at the same operation boundaries, so {!Sanitizer.Checker} validates
    either stream with the identical invariant set. *)

module Make (B : Backend_intf.BACKEND) : sig
  type t

  type join
  (** A promotion's join: a pending count plus the owning worker. The
      owner blocks in {!join_wait}, helping (pop own deque, then steal)
      until every spawned task has called {!finish_join}. *)

  val create : B.t -> t

  val backend : t -> B.t

  val depth : t -> int array
  (** Per-worker task-nesting depth; drivers may claim depth directly so
      inline tasks do not clear the busy flag (see the executor's main). *)

  val finished : t -> bool

  val set_finished : t -> unit
  (** Signal scavenging workers to exit once their deques are dry. *)

  val next_task_id : t -> int
  (** Serial of the most recently created task (checkpoint capture). *)

  val mk_task : t -> (unit -> unit) -> Task.t

  val push_task : t -> Task.t -> unit
  (** Push onto the calling worker's deque bottom, emit the spawn events,
      charge the push cost, and wake one parked worker. *)

  val run_task : t -> Task.t -> unit

  val try_steal : t -> Task.t option
  (** One steal round: probe the last-pusher deque first (affinity), then
      up to 8 random victims. *)

  val new_join : t -> join
  (** A join owned by the calling worker, with no pending tasks yet. *)

  val add_pending : join -> unit

  val join_pending : join -> int

  val finish_join : t -> join -> unit

  val join_wait : t -> join -> unit

  val scavenge : t -> unit
  (** A non-driver worker's life: pop / steal / idle until {!set_finished}. *)
end
