(* The leftover-task step walker (Algorithm 2): execute the generated
   steps in order; a promotion inside a split ancestor [j] means the new
   leftover took over everything up to and including [j]'s remaining
   iterations and tail, so the walk resumes after its own Call_slice of
   [j]. The step datatype stays backend-side (it carries compiled
   closures); the walk only needs to recognize which steps are slice
   calls. *)

type outcome = Next | Skip_past of int

exception Missing_call of int

let run ~steps ~is_call ~exec =
  let len = Array.length steps in
  let i = ref 0 in
  let skip_past j =
    let rec find k =
      if k >= len then raise (Missing_call j)
      else match is_call steps.(k) with Some o when o = j -> k + 1 | _ -> find (k + 1)
    in
    i := find (!i + 1)
  in
  while !i < len do
    match exec steps.(!i) with Next -> incr i | Skip_past j -> skip_past j
  done
