(** The paper's scheduling policy, backend-agnostic.

    Everything here is pure: which loop a promotion splits
    ({!choose_target}, Sec. 2), which part of the context chain a task is
    allowed to split ({!owned_suffix}), and where a promoted range is cut
    ({!split_point}). Both the virtual-time executor and the native domains
    runtime call these functions, so the two backends promote identically
    by construction and the sanitizer checks them against one rule. *)

type promotion_policy =
  | Outer_loop_first
      (** the paper's policy: split the outermost loop with remaining
          iterations — coarsest tasks, best amortization (Sec. 2) *)
  | Innermost_first
      (** ablation: split the loop that received the heartbeat — finest
          tasks; shows why the paper's policy matters *)

type leftover_mode =
  | Spawn  (** HBC: the leftover is a third parallel task with a full closure *)
  | Inline
      (** TPAL: the leftover runs inline on the promoting task's critical
          path and can never be stolen (Sec. 6.3) *)

(** Which scheduler backend executes a run: the deterministic virtual-time
    simulator, or real OCaml 5 domains over the Chase–Lev deque. *)
type backend_kind = Sim | Domains

val backend_kind_to_string : backend_kind -> string

val backend_kind_of_string : string -> (backend_kind, string) result

val invert : promotion_policy -> promotion_policy
(** The opposite direction (used by the seeded [Promote_innermost] bug). *)

val owned_suffix : forbidden:int -> int list -> int list
(** [owned_suffix ~forbidden chain] is the suffix of [chain] strictly below
    the ownership boundary [forbidden]: contexts at or above it are frozen
    snapshots whose remaining iterations belong to the spawning task and
    must never be split. [forbidden < 0] means the task owns its whole
    chain (the root task) and the chain is returned unchanged. *)

val choose_target : policy:promotion_policy -> splittable:(int -> bool) -> int list -> int option
(** The promotion choice: the first [splittable] ordinal of the owned chain
    in policy order — chain order (outermost first) under
    [Outer_loop_first], reversed under [Innermost_first]. *)

val split_point : lo:int -> hi:int -> int
(** Where a promotion cuts the remaining range [\[lo, hi)]: the upper-biased
    midpoint [lo + (hi - lo + 1) / 2], matching the executor's historical
    arithmetic (pinned by trace-replay tests). *)
