(* A schedulable unit of the heartbeat runtime. [id] is a per-run serial
   used only by trace deque/lifecycle events; backends number tasks through
   {!Core.Make.mk_task} so the sequence is identical whatever deque the
   task lands in. *)
type t = { id : int; run : unit -> unit }
