type promotion_policy = Outer_loop_first | Innermost_first

type leftover_mode = Spawn | Inline

type backend_kind = Sim | Domains

let backend_kind_to_string = function Sim -> "sim" | Domains -> "domains"

let backend_kind_of_string = function
  | "sim" -> Ok Sim
  | "domains" -> Ok Domains
  | s -> Error (Printf.sprintf "unknown backend %S (expected sim or domains)" s)

let invert = function Outer_loop_first -> Innermost_first | Innermost_first -> Outer_loop_first

let owned_suffix ~forbidden chain =
  if forbidden < 0 then chain
  else begin
    let rec drop = function
      | [] -> []
      | o :: rest when o = forbidden -> rest
      | _ :: rest -> drop rest
    in
    drop chain
  end

let choose_target ~policy ~splittable chain =
  match policy with
  | Outer_loop_first -> List.find_opt splittable chain
  | Innermost_first -> List.find_opt splittable (List.rev chain)

let split_point ~lo ~hi = lo + (((hi - lo) + 1) / 2)
