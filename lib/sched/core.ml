(* The backend-agnostic scheduler core: per-worker deques under the
   work-stealing discipline with the clone optimization, steal protocol
   with last-pusher affinity, joins, and the task lifecycle trace events.
   This code is the executor's historical scheduler verbatim, with each
   machine-shaped line routed through a BACKEND hook; the simulator
   instantiation is pinned byte-identical to the pre-functor executor by
   the golden fingerprint/makespan tests.

   Concurrency notes (the simulator is single-fibered, so these only
   matter natively): join pending counts and the finished/task-id
   counters are Atomics; [last_pusher] is a racy affinity hint (reads
   may be stale, which only costs a wasted probe). Deque-op + emission
   groups go through [B.critical] so a tracing concurrent backend can
   linearize them for the sanitizer's shadow replay. *)

module Make (B : Backend_intf.BACKEND) = struct
  type t = {
    b : B.t;
    depth : int array;  (* task-nesting depth per worker, drives the busy flag *)
    mutable last_pusher : int;  (* steal-affinity hint: deque that grew last *)
    finished : bool Atomic.t;
    next_id : int Atomic.t;  (* trace-only task serial (captured runs) *)
  }

  type join = { pending : int Atomic.t; owner : int }

  let create b =
    {
      b;
      depth = Array.make (B.num_workers b) 0;
      last_pusher = 0;
      finished = Atomic.make false;
      next_id = Atomic.make 0;
    }

  let backend t = t.b

  let depth t = t.depth

  let finished t = Atomic.get t.finished

  let set_finished t = Atomic.set t.finished true

  let next_task_id t = Atomic.get t.next_id

  let mk_task t run = { Task.id = Atomic.fetch_and_add t.next_id 1 + 1; run }

  let push_task t task =
    let w = B.worker_id t.b in
    B.critical t.b (fun () ->
        B.push t.b task;
        t.last_pusher <- w;
        B.emit t.b Obs.Trace.Task_spawned;
        if B.capture t.b then B.emit t.b (Obs.Trace.Task_pushed { task = task.Task.id }));
    B.charge_push t.b;
    B.wake_one t.b

  let run_task t task =
    let w = B.worker_id t.b in
    B.on_task_claim t.b;
    if B.capture t.b then
      B.critical t.b (fun () -> B.emit t.b (Obs.Trace.Task_exec { task = task.Task.id }));
    B.pre_task t.b;
    t.depth.(w) <- t.depth.(w) + 1;
    if t.depth.(w) = 1 then B.set_busy t.b ~worker:w ~busy:true;
    let t0 = B.now t.b in
    task.Task.run ();
    if B.capture t.b && t.depth.(w) = 1 && B.now t.b > t0 then
      B.critical t.b (fun () -> B.emit t.b (Obs.Trace.Interval { t0; kind = "task" }));
    t.depth.(w) <- t.depth.(w) - 1;
    if t.depth.(w) = 0 then B.set_busy t.b ~worker:w ~busy:false

  let try_steal t =
    let n = B.num_workers t.b in
    let w = B.worker_id t.b in
    let probe v =
      B.critical t.b (fun () -> B.emit t.b Obs.Trace.Steal_attempt);
      B.charge_steal_attempt t.b;
      if B.steal_vetoed t.b then None
      else begin
        let got = ref None in
        B.critical t.b (fun () ->
            match B.steal_from t.b ~victim:v with
            | Some task ->
                B.emit t.b Obs.Trace.Steal_success;
                if B.capture t.b then
                  B.emit t.b (Obs.Trace.Task_stolen { task = task.Task.id; victim = v });
                got := Some task
            | None -> ());
        match !got with
        | Some task ->
            B.charge_steal_success t.b;
            if B.keep_stolen t.b task then Some task else None
        | None -> None
      end
    in
    let rec attempt k =
      if k = 0 || n = 1 then None
      else begin
        let v = B.random_victim t.b in
        if v = w then attempt (k - 1)
        else match probe v with Some task -> Some task | None -> attempt (k - 1)
      end
    in
    (* Deques are usually empty under heartbeat scheduling; probing the deque
       that grew most recently first saves most of the random-walk probes. *)
    let lp = t.last_pusher in
    if n > 1 && lp <> w && not (B.deque_empty t.b ~worker:lp) then
      match probe lp with Some task -> Some task | None -> attempt 8
    else attempt 8

  let new_join t = { pending = Atomic.make 0; owner = B.worker_id t.b }

  let add_pending join = Atomic.incr join.pending

  let join_pending join = Atomic.get join.pending

  let finish_join t join =
    let left = Atomic.fetch_and_add join.pending (-1) - 1 in
    if B.worker_id t.b <> join.owner then begin
      B.critical t.b (fun () -> B.emit t.b Obs.Trace.Task_joined_slow);
      B.charge_join_slow t.b
    end;
    if left = 0 then B.unpark t.b ~worker:join.owner

  (* Owner-side pop with its trace event, atomically. [charge] matches the
     historical cost attribution: join waits pay the pop cost, scavenging
     workers do not. *)
  let pop_own t ~charge =
    let popped = ref None in
    B.critical t.b (fun () ->
        match B.pop t.b with
        | Some task ->
            if B.capture t.b then B.emit t.b (Obs.Trace.Task_popped { task = task.Task.id });
            popped := Some task
        | None -> ());
    match !popped with
    | Some task ->
        if charge then B.charge_pop t.b;
        Some task
    | None -> None

  let join_wait t join =
    while Atomic.get join.pending > 0 do
      match pop_own t ~charge:true with
      | Some task -> run_task t task
      | None -> (
          match try_steal t with
          | Some task -> run_task t task
          | None -> if Atomic.get join.pending > 0 then B.idle t.b)
    done

  let scavenge t =
    while not (Atomic.get t.finished) do
      match pop_own t ~charge:false with
      | Some task -> run_task t task
      | None -> (
          match try_steal t with
          | Some task -> run_task t task
          | None -> if not (Atomic.get t.finished) then B.idle t.b)
    done
end
