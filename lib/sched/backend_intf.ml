(** The signatures {!Core.Make} is a functor over.

    A backend supplies the five machine-shaped concerns the policy core
    abstracts away: worker identity, a time source, the per-worker task
    deques, trace emission, and cost/idling behavior. The policy core
    supplies everything the paper argues about: deque discipline, the
    steal protocol, joins, and task lifecycle events. *)

(** Shape of a work-stealing deque a backend schedules over. The owner
    pushes and pops at the bottom; thieves steal at the top.
    [Hb_parallel.Ws_deque] (lock-free Chase–Lev on [Atomic]) implements it
    for real domains; [Sim.Deque] implements the same discipline for the
    deterministic simulator. *)
module type DEQUE = sig
  type 'a t

  val create : unit -> 'a t

  val push : 'a t -> 'a -> unit
  (** Owner-side push at the bottom. *)

  val pop : 'a t -> 'a option
  (** Owner-side pop of the newest element. *)

  val steal : 'a t -> 'a option
  (** Thief-side removal of the oldest element; [None] when empty or when
      the race for the element was lost. *)

  val size : 'a t -> int
  (** Snapshot size (approximate under concurrency; exact when quiescent). *)
end

(** One scheduler backend: the simulated machine or the real one.

    Contract for trace atomicity: the core wraps every deque operation
    together with the events describing it in {!BACKEND.critical}, and
    only calls {!BACKEND.emit} from inside such a section. A sequential
    backend implements [critical] as a plain call; a concurrent backend
    that records traces must make the section atomic (one global lock is
    enough — tracing a native run serializes its {e scheduling points},
    never its loop bodies) so the sanitizer's shadow-deque replay sees a
    linearization consistent with the real deque states. *)
module type BACKEND = sig
  type t

  val num_workers : t -> int

  val worker_id : t -> int
  (** Identity of the calling worker, in [0, num_workers). *)

  val now : t -> int
  (** Monotone time for trace stamps: virtual cycles in the simulator, a
      logical emission tick natively. *)

  val capture : t -> bool
  (** Whether the run's sink wants payload events (task ids, intervals);
      mirrors the executor's capture gate so uncaptured runs allocate
      nothing for them. *)

  val critical : t -> (unit -> unit) -> unit
  (** Run a deque-op + emission group atomically (see the contract above). *)

  val emit : t -> Obs.Trace.event -> unit
  (** Emit one trace event stamped with the current worker and {!now}.
      Only called from inside {!critical}. *)

  (* Deques *)

  val push : t -> Task.t -> unit
  (** Push onto the calling worker's own deque bottom. *)

  val pop : t -> Task.t option
  (** Pop from the calling worker's own deque bottom. *)

  val steal_from : t -> victim:int -> Task.t option

  val deque_empty : t -> worker:int -> bool

  val random_victim : t -> int
  (** Draw a steal victim in [0, num_workers) from the backend's RNG (the
      engine RNG in the simulator — part of the deterministic schedule —
      or a per-worker xorshift natively). *)

  (* Fault injection and seeded-bug hooks (identity on backends without
     an injector). *)

  val steal_vetoed : t -> bool
  (** An injected contention burst: the attempt's CAS loses even against a
      non-empty victim (the attempt cost is still paid). *)

  val keep_stolen : t -> Task.t -> bool
  (** False exactly when a seeded [Lose_stolen_task] bug swallows this
      successfully stolen task (sanitizer tests only). *)

  val pre_task : t -> unit
  (** Scheduling-point hook before a task body runs (injected OS-preemption
      stalls in the simulator). *)

  val on_task_claim : t -> unit
  (** The calling worker obtained a task (reset idle/backoff state). *)

  (* Blocking and wakeups *)

  val wake_one : t -> unit
  (** A task became available: wake one parked worker, if any. *)

  val unpark : t -> worker:int -> unit
  (** A join completed: wake its owner, if parked. *)

  val idle : t -> unit
  (** Nothing to pop or steal: park, back off, or spin — backend's choice. *)

  val set_busy : t -> worker:int -> busy:bool -> unit
  (** Outermost task-nesting transition (drives the heartbeat busy flag in
      the simulator; no-op natively). *)

  (* Overhead charging: virtual cycles + metrics attribution in the
     simulator, no-ops natively (real time is simply spent). *)

  val charge_push : t -> unit

  val charge_pop : t -> unit

  val charge_steal_attempt : t -> unit

  val charge_steal_success : t -> unit

  val charge_join_slow : t -> unit
end
