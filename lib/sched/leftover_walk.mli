(** Backend-agnostic driver for leftover-task step lists (Algorithm 2).

    A leftover task is a straight-line list of steps (increase an
    induction variable, call a loop slice, run a tail) generated at compile
    time; executing one is a walk over that list with one non-local rule:
    when a slice call reports that an {e ancestor} [j] was promoted, the
    new leftover task spawned by that promotion has taken over everything
    up to and including [j], so the walk must skip forward past its own
    call of [j]'s slice. Both backends execute leftovers through this
    walker, keeping the paper's Algorithm 2 semantics in one place. *)

type outcome =
  | Next  (** the step completed; continue with the next one *)
  | Skip_past of int  (** ancestor [j] was promoted; resume after [Call_slice j] *)

exception Missing_call of int
(** The skip rule found no [Call_slice j] ahead of the cursor — a compiler
    invariant violation, not a user error. *)

val run : steps:'s array -> is_call:('s -> int option) -> exec:('s -> outcome) -> unit
(** [run ~steps ~is_call ~exec] walks [steps] left to right. [is_call]
    classifies a step as [Some ordinal] when it is a slice call; [exec]
    executes one step and reports how to continue. *)
