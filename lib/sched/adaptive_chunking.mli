(** Adaptive chunking, AC (Sec. 5.1).

    Per worker and per leaf loop, AC adjusts the chunk size so that a small
    target number of polls happens per heartbeat interval. A sliding window
    logs the polls observed in each of the last [window] heartbeat
    intervals; at the end of a window the minimum poll count m is compared
    to the target T and the chunk size is rescaled by m/T (minimum 1).

    The module is a pure state machine so it can be property-tested in
    isolation and shared by every backend: the virtual-time executor and
    the native domains runtime drive the same rule from their polling
    paths, and the sanitizer replays it against both trace streams. *)

type t

val create : ?initial_chunk:int -> target_polls:int -> window:int -> unit -> t
(** [initial_chunk] defaults to 1 as in the paper. *)

val chunk_size : t -> int

val on_poll : t -> unit
(** Record one poll in the current heartbeat interval. *)

val on_heartbeat : t -> int option
(** Close the current interval. Returns [Some new_chunk] when this heartbeat
    completed a window and the chunk size was recomputed (even if unchanged
    in value). *)

type decision = { old_chunk : int; new_chunk : int; min_polls : int }
(** One committed recomputation: [new_chunk = max 1 (round (old_chunk *
    min_polls / target))]. The sanitizer replays this rule against traced
    decisions to validate chunk-size transitions. *)

val on_heartbeat_full : t -> decision option
(** Like {!on_heartbeat}, but exposing the inputs of the update rule. *)

val polls_since_heartbeat : t -> int

val intervals_logged : t -> int
