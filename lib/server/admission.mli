(** Bounded multi-tenant admission queue with weighted fair draining.

    One global capacity bounds the queue; {!offer} refuses (the caller
    sheds, explicitly) when it is full. Internally each tenant has its own
    FIFO lane (higher-priority jobs first within a lane), and {!pop}
    drains lanes by start-time fair queuing: each tenant carries a virtual
    finish time advanced by [cost / weight] per unit of service
    ({!charge}), and the non-empty lane with the smallest virtual time is
    served next (ties to the lower tenant id). A lane whose head does not
    pass the caller's [fits] predicate (not enough free pool workers) is
    skipped — backfill — so a wide job cannot head-of-line-block the pool.

    Everything is integer/float arithmetic over explicit state: no clocks,
    no randomness, deterministic replay. *)

type 'a t

val create : capacity:int -> weights:int array -> 'a t
(** One lane per entry of [weights]. [capacity] 0 is legal: every offer is
    refused (the zero-capacity shed-everything edge case). *)

val length : 'a t -> int

val tenant_length : 'a t -> tenant:int -> int

val offer : 'a t -> tenant:int -> priority:int -> 'a -> bool
(** Enqueue unless the global capacity is reached; false means the caller
    must shed the job (typed, never silent). *)

val pop : 'a t -> fits:('a -> bool) -> (int * 'a) option
(** Next (tenant, job) under weighted fairness, restricted to lane heads
    satisfying [fits]; None when no head fits (or the queue is empty). *)

val charge : 'a t -> tenant:int -> cost:int -> unit
(** Advance the tenant's virtual time by [cost / weight] after it consumed
    [cost] units of pool service (cycles × workers). *)
