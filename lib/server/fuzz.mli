(** Serve-mode differential fuzzing: interpret a {!Sanitizer.Fuzz.mix}
    (N tenants x arrival process x fault plan) as a full multi-tenant
    {!Server} run with sanitizers and serial-reference verification on,
    and classify everything that must never happen under contention —
    mismatching fingerprints, invariant violations, crashes, lost jobs.

    Sheds, deadline misses and budget/guard failures are {e not} fuzz
    failures: they are the server's typed, expected degradation paths. *)

type failure =
  | Mismatch of { job : int; workload : string }
      (** a completed job's fingerprint differs from its serial reference *)
  | Invariant of { job : int option; violation : Sanitizer.Checker.violation }
      (** sanitizer violation; [None] is the server-level checker *)
  | Crash of { job : int; reason : string }  (** the inner run raised *)
  | Lost_jobs of { submitted : int; accounted : int }
      (** terminal outcomes do not cover the submitted jobs *)
  | Recovery of string
      (** a WAL-recovered re-run of the campaign diverged from the
          uninterrupted run *)

val failure_kind : failure -> string
(** Stable class tag: ["mismatch"], ["violation:<invariant>"], ["crash"],
    ["lost-jobs"], ["recovery"]. *)

val failure_describe : failure -> string

type outcome = {
  mix : Sanitizer.Fuzz.mix;
  result : Server.result;
  failures : failure list;  (** empty: the mix passed *)
}

val config_of_mix : Sanitizer.Fuzz.mix -> Server.config
(** The serve configuration a mix denotes: [sanitize = true],
    [verify = true], everything else drawn from the mix.
    @raise Invalid_argument on an unparseable arrival codec. *)

val run_mix : Sanitizer.Fuzz.mix -> outcome
(** Run the mix end to end. Deterministic: equal mixes give equal
    outcomes. *)

val run_mix_recovery : Sanitizer.Fuzz.mix -> outcome
(** {!run_mix}, then crash-inject the same campaign: re-run it through a
    temporary WAL killed (with a torn trailing record) halfway through
    its decisions, recover from the partial log, and byte-compare the
    recovered journal against the uninterrupted run's. Divergence is
    reported as a {!Recovery} failure on top of the base outcome. *)
