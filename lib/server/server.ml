type service = Hbc | Tpal of { chunk : int } | Omp of Baselines.Openmp.config

let service_name = function Hbc -> "hbc" | Tpal _ -> "tpal" | Omp _ -> "omp"

type tenant_spec = {
  weight : int;
  arrival : Arrival.process;
  jobs : int;
  workloads : string list;
  scale : float;
  workers_wanted : int;
  deadline : (int * int) option;
  cycle_budget : (int * int) option;
  fault_plan : Sim.Fault_plan.t option;
  promotion_want : int;
  priority : int;
}

let tenant_default =
  {
    weight = 1;
    arrival = Arrival.Poisson { mean_gap = 5_000.0 };
    jobs = 4;
    workloads = [ "plus-reduce-array" ];
    scale = 0.02;
    workers_wanted = 4;
    deadline = None;
    cycle_budget = None;
    fault_plan = None;
    promotion_want = 16;
    priority = 0;
  }

type config = {
  tenants : tenant_spec array;
  pool : int;
  queue_capacity : int;
  seed : int;
  service : service;
  rt : Hbc_core.Rt_config.t;
  breaker : Breaker.config;
  meter : Meter.config;
  sanitize : bool;
  verify : bool;
  trace : Obs.Trace.Sink.t;
}

let default_config =
  {
    tenants = [||];
    pool = 8;
    queue_capacity = 16;
    seed = 1;
    service = Hbc;
    rt = Hbc_core.Rt_config.hbc;
    breaker = Breaker.default_config;
    meter = Meter.default_config;
    sanitize = false;
    verify = false;
    trace = Obs.Trace.Sink.null;
  }

type outcome = Completed | Deadline_exceeded | Rejected of string | Failed of string

let outcome_name = function
  | Completed -> "completed"
  | Deadline_exceeded -> "deadline"
  | Rejected r -> "rejected:" ^ r
  | Failed r -> "failed:" ^ r

type job_report = {
  job : int;
  tenant : int;
  workload : string;
  submit_time : int;
  start_time : int option;
  finish_time : int;
  outcome : outcome;
  granted : int;
  promotions : int;
  service_cycles : int option;
  sojourn : int option;
  work_cycles : int;
  fingerprint : float option;
  mismatch : bool;
}

type stats = {
  submitted : int;
  admitted : int;
  shed : int;
  completed : int;
  deadline_exceeded : int;
  failed : int;
  sojourn_p50 : float;
  sojourn_p95 : float;
  sojourn_p99 : float;
  goodput : float;
  makespan : int;
  breaker_opens : int;
}

type result = {
  reports : job_report list;
  stats : stats;
  decisions : string;
  violations : (int option * Sanitizer.Checker.violation) list;
}

(* One job's fixed identity, drawn before the run starts. *)
type pending = {
  id : int;
  p_tenant : int;
  p_workload : string;
  submit : int;
  deadline_abs : int option;
  budget_cap : int option;
  jseed : int;
  p_priority : int;
  workers : int;
  want : int;
}

type ev = Arrival of pending | Completion of completion

and completion = {
  c_job : pending;
  c_outcome : outcome;
  c_granted : int;
  c_promotions : int;
  c_service : int;
  c_work : int;
  c_fingerprint : float option;
  c_mismatch : bool;
  c_preempted : bool;
  c_violations : Sanitizer.Checker.violation list;
}

(* ------------------------------------------------------------------ *)
(* Job generation.                                                      *)
(* ------------------------------------------------------------------ *)

let draw_range rng = function
  | None -> None
  | Some (lo, hi) ->
      let lo = Stdlib.min lo hi and hi = Stdlib.max lo hi in
      Some (if hi = lo then lo else lo + Sim.Sim_rng.int rng (hi - lo + 1))

(* Per-tenant child streams in tenant order, then per-job draws in a fixed
   order: the whole offered load is a pure function of [cfg.seed]. *)
let generate_jobs cfg =
  let master = Sim.Sim_rng.create cfg.seed in
  let all = ref [] in
  Array.iteri
    (fun tenant spec ->
      let rng = Sim.Sim_rng.split master in
      let times = Arrival.times spec.arrival ~rng ~jobs:spec.jobs in
      List.iteri
        (fun k time ->
          let wl =
            match spec.workloads with
            | [] -> invalid_arg "Server: tenant with no workloads"
            | [ w ] -> w
            | ws -> List.nth ws (Sim.Sim_rng.int rng (List.length ws))
          in
          let deadline_rel = draw_range rng spec.deadline in
          let budget_cap = draw_range rng spec.cycle_budget in
          let jseed = 1 + Sim.Sim_rng.int rng 1_000_000 in
          all :=
            ( time,
              tenant,
              k,
              {
                id = 0;
                p_tenant = tenant;
                p_workload = wl;
                submit = time;
                deadline_abs = Option.map (fun d -> time + Stdlib.max 1 d) deadline_rel;
                budget_cap;
                jseed;
                p_priority = spec.priority;
                workers = Stdlib.max 1 (Stdlib.min spec.workers_wanted cfg.pool);
                want = Stdlib.max 0 spec.promotion_want;
              } )
            :: !all)
        times)
    cfg.tenants;
  (* Simultaneous arrivals are ordered (tenant, per-tenant index): one
     fixed submission order per seed, whatever the map/fold order above. *)
  let sorted = List.sort (fun (t1, a1, k1, _) (t2, a2, k2, _) -> compare (t1, a1, k1) (t2, a2, k2)) !all in
  List.mapi (fun id (_, _, _, p) -> { p with id }) sorted

(* ------------------------------------------------------------------ *)
(* Inner job execution.                                                 *)
(* ------------------------------------------------------------------ *)

(* Serial references are deterministic per (workload, scale): cache them
   across jobs so verification does not rerun the reference per job. *)
let serial_reference cache ~workload ~scale =
  let key = (workload, scale) in
  match Hashtbl.find_opt cache key with
  | Some r -> r
  | None ->
      let entry = Workloads.Registry.find workload in
      let (Ir.Program.Any p) = entry.Workloads.Registry.make scale in
      let r = Baselines.Serial_exec.run_program p in
      Hashtbl.add cache key r;
      r

let tenant_scale cfg (p : pending) = cfg.tenants.(p.p_tenant).scale

let run_job cfg serial_cache (p : pending) ~fault_plan ~grant ~now =
  let entry = Workloads.Registry.find p.p_workload in
  let (Ir.Program.Any prog) = entry.Workloads.Registry.make (tenant_scale cfg p) in
  let remaining = Option.map (fun d -> Stdlib.max 1 (d - now)) p.deadline_abs in
  let rt_base =
    match cfg.service with
    | Hbc -> cfg.rt
    | Tpal { chunk } -> Baselines.Tpal.config ~chunk
    | Omp _ -> cfg.rt
  in
  let rt = { rt_base with Hbc_core.Rt_config.workers = p.workers; seed = p.jseed } in
  let checker =
    if cfg.sanitize then Some (Sanitizer.Checker.create (Sanitizer.Checker.config_of_rt rt))
    else None
  in
  let trace =
    match checker with Some c -> Sanitizer.Checker.sink c | None -> Obs.Trace.Sink.null
  in
  let request =
    Hbc_core.Run_request.make ?deadline:remaining ?cycle_budget:p.budget_cap ?fault_plan ~trace
      ~sanitize:(checker <> None) ~tenant:p.p_tenant ~priority:p.p_priority
      ~promotion_budget:grant ()
  in
  let run () =
    match cfg.service with
    | Hbc | Tpal _ -> Hbc_core.Executor.run ~request rt prog
    | Omp ocfg ->
        Baselines.Openmp.run_program ~request
          { ocfg with Baselines.Openmp.workers = p.workers; seed = p.jseed }
          prog
  in
  match run () with
  | exception e ->
      (* A structured abort never escapes the executor as an exception, so
         anything raised here is a crash (e.g. an engine deadlock under an
         aggressive fault plan). The pool slot is still reclaimed after a
         deterministic penalty service time. *)
      let service =
        match (remaining, p.budget_cap) with
        | Some r, Some b -> Stdlib.min r b
        | Some r, None -> r
        | None, Some b -> b
        | None, None -> 1_000
      in
      ( Failed ("crash:" ^ Printexc.to_string e),
        service,
        0,
        0,
        None,
        false,
        false,
        match checker with Some c -> Sanitizer.Checker.violations c | None -> [] )
  | result ->
      let promotions = result.Sim.Run_result.metrics.Sim.Metrics.promotions in
      let service = Stdlib.max 1 result.Sim.Run_result.makespan in
      let preempted = result.Sim.Run_result.dnf in
      let outcome0 =
        match result.Sim.Run_result.termination with
        | Sim.Run_result.Finished -> Completed
        | Sim.Run_result.Dnf -> Deadline_exceeded
        | Sim.Run_result.Budget_exceeded _ -> Failed "budget"
        | Sim.Run_result.Guard_aborted reason -> Failed ("guard:" ^ reason)
      in
      let mismatch =
        cfg.verify && outcome0 = Completed
        &&
        let seq = serial_reference serial_cache ~workload:p.p_workload ~scale:(tenant_scale cfg p) in
        not (Sim.Run_result.fingerprints_close seq result)
      in
      let violations =
        match checker with
        | None -> []
        | Some c ->
            (* End-of-run tiling only applies to runs that actually
               finished: a preempted or aborted job legitimately leaves
               uncovered iterations behind. *)
            if result.Sim.Run_result.termination = Sim.Run_result.Finished then
              Sanitizer.Checker.finish c;
            Sanitizer.Checker.violations c
      in
      let outcome =
        if mismatch then Failed "mismatch"
        else if violations <> [] then Failed "invariant"
        else outcome0
      in
      ( outcome,
        service,
        promotions,
        result.Sim.Run_result.work_cycles,
        Some result.Sim.Run_result.fingerprint,
        mismatch,
        preempted,
        violations )

(* ------------------------------------------------------------------ *)
(* The server event loop.                                               *)
(* ------------------------------------------------------------------ *)

let run cfg =
  if cfg.pool < 1 then invalid_arg "Server: pool must have at least one worker";
  let jobs = generate_jobs cfg in
  let njobs = List.length jobs in
  let reports : job_report option array = Array.make njobs None in
  let decisions = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string decisions (s ^ "\n")) fmt in
  let server_checker = Sanitizer.Checker.create (Sanitizer.Checker.config_of_rt cfg.rt) in
  let sink = Obs.Trace.Sink.tee (Sanitizer.Checker.sink server_checker) cfg.trace in
  let emit ~time ev = Obs.Trace.Sink.emit sink ~time ~worker:(-1) ev in
  let now = ref 0 in
  let breaker_opens = ref 0 in
  let weights = Array.map (fun s -> Stdlib.max 1 s.weight) cfg.tenants in
  let meter =
    Meter.create ~config:cfg.meter ~weights
      ~emit:(fun ~time ~tenant ~amount ->
        emit ~time (Obs.Trace.Budget_refill { tenant; amount });
        line "t=%d refill tenant=%d amount=%d" time tenant amount)
      ()
  in
  let breakers =
    Array.init (Array.length cfg.tenants) (fun tenant ->
        Breaker.create ~config:cfg.breaker
          ~on_transition:(fun ~from_state ~to_state ->
            if to_state = Breaker.Open then incr breaker_opens;
            emit ~time:!now
              (Obs.Trace.Breaker_transition
                 {
                   tenant;
                   from_state = Breaker.state_name from_state;
                   to_state = Breaker.state_name to_state;
                 });
            line "t=%d breaker tenant=%d %s->%s" !now tenant (Breaker.state_name from_state)
              (Breaker.state_name to_state))
          ())
  in
  let queue = Admission.create ~capacity:cfg.queue_capacity ~weights in
  let serial_cache = Hashtbl.create 8 in
  let job_violations = ref [] in
  let free = ref cfg.pool in
  (* Event queue: sorted (time, seq) list. Arrivals enter first (they are
     known upfront), completions as they are scheduled; the global [seq]
     makes same-tick ordering total and deterministic. *)
  let events = ref [] in
  let seq = ref 0 in
  let push_event time ev =
    let s = !seq in
    incr seq;
    let rec ins = function
      | [] -> [ (time, s, ev) ]
      | ((t', s', _) as x) :: rest ->
          if (time, s) < (t', s') then (time, s, ev) :: x :: rest else x :: ins rest
    in
    events := ins !events
  in
  List.iter (fun p -> push_event p.submit (Arrival p)) jobs;
  let finalize (p : pending) ~start_time ~outcome ~granted ~promotions ~service ~work ~fp
      ~mismatch =
    let sojourn =
      match outcome with
      | Completed | Deadline_exceeded | Failed _ -> Some (!now - p.submit)
      | Rejected _ -> None
    in
    reports.(p.id) <-
      Some
        {
          job = p.id;
          tenant = p.p_tenant;
          workload = p.p_workload;
          submit_time = p.submit;
          start_time;
          finish_time = !now;
          outcome;
          granted;
          promotions;
          service_cycles = service;
          sojourn;
          work_cycles = work;
          fingerprint = fp;
          mismatch;
        }
  in
  let shed (p : pending) reason =
    emit ~time:!now (Obs.Trace.Job_shed { job = p.id; tenant = p.p_tenant; reason });
    line "t=%d shed job=%d tenant=%d reason=%s" !now p.id p.p_tenant reason;
    finalize p ~start_time:None ~outcome:(Rejected reason) ~granted:0 ~promotions:0 ~service:None
      ~work:0 ~fp:None ~mismatch:false
  in
  let expired (p : pending) =
    match p.deadline_abs with Some d -> !now >= d | None -> false
  in
  let rec dispatch () =
    match Admission.pop queue ~fits:(fun p -> expired p || p.workers <= !free) with
    | None -> ()
    | Some (_, p) when expired p ->
        (* The deadline passed while the job sat in the queue: it still
           terminates with full accounting, it just never held the pool. *)
        emit ~time:!now
          (Obs.Trace.Job_finished
             { job = p.id; tenant = p.p_tenant; state = "deadline"; promotions = 0 });
        line "t=%d finish job=%d tenant=%d outcome=deadline service=0" !now p.id p.p_tenant;
        finalize p ~start_time:None ~outcome:Deadline_exceeded ~granted:0 ~promotions:0
          ~service:None ~work:0 ~fp:None ~mismatch:false;
        dispatch ()
    | Some (tenant, p) ->
        let grant = Meter.grant meter ~tenant ~want:p.want in
        emit ~time:!now (Obs.Trace.Job_started { job = p.id; tenant; budget = grant });
        line "t=%d start job=%d tenant=%d workers=%d grant=%d deadline=%s" !now p.id tenant
          p.workers grant
          (match p.deadline_abs with Some d -> string_of_int d | None -> "none");
        free := !free - p.workers;
        let fault_plan = cfg.tenants.(tenant).fault_plan in
        let outcome, service, promotions, work, fp, mismatch, preempted, violations =
          run_job cfg serial_cache p ~fault_plan ~grant ~now:!now
        in
        List.iter (fun v -> job_violations := (Some p.id, v) :: !job_violations) violations;
        push_event (!now + service)
          (Completion
             {
               c_job = p;
               c_outcome = outcome;
               c_granted = grant;
               c_promotions = promotions;
               c_service = service;
               c_work = work;
               c_fingerprint = fp;
               c_mismatch = mismatch;
               c_preempted = preempted;
               c_violations = violations;
             });
        dispatch ()
  in
  let on_arrival (p : pending) =
    emit ~time:!now (Obs.Trace.Job_submitted { job = p.id; tenant = p.p_tenant });
    line "t=%d submit job=%d tenant=%d wl=%s" !now p.id p.p_tenant p.p_workload;
    if not (Breaker.admit breakers.(p.p_tenant) ~now:!now) then shed p "breaker-open"
    else if not (Admission.offer queue ~tenant:p.p_tenant ~priority:p.p_priority p) then
      shed p "queue-full"
    else begin
      emit ~time:!now
        (Obs.Trace.Job_admitted { job = p.id; tenant = p.p_tenant; queued = Admission.length queue });
      line "t=%d admit job=%d tenant=%d depth=%d" !now p.id p.p_tenant (Admission.length queue);
      dispatch ()
    end
  in
  let on_completion (c : completion) =
    let p = c.c_job in
    free := !free + p.workers;
    Admission.charge queue ~tenant:p.p_tenant ~cost:(c.c_service * p.workers);
    if c.c_preempted then begin
      emit ~time:!now (Obs.Trace.Job_preempted { job = p.id; tenant = p.p_tenant });
      line "t=%d preempt job=%d tenant=%d" !now p.id p.p_tenant
    end;
    emit ~time:!now
      (Obs.Trace.Job_finished
         {
           job = p.id;
           tenant = p.p_tenant;
           state = outcome_name c.c_outcome;
           promotions = c.c_promotions;
         });
    line "t=%d finish job=%d tenant=%d outcome=%s promotions=%d service=%d" !now p.id p.p_tenant
      (outcome_name c.c_outcome) c.c_promotions c.c_service;
    Meter.refund meter ~now:!now ~tenant:p.p_tenant (c.c_granted - c.c_promotions);
    (match c.c_outcome with
    | Completed -> Breaker.record breakers.(p.p_tenant) ~now:!now ~ok:true
    | Failed _ -> Breaker.record breakers.(p.p_tenant) ~now:!now ~ok:false
    | Deadline_exceeded | Rejected _ -> ());
    finalize p
      ~start_time:(Some (!now - c.c_service))
      ~outcome:c.c_outcome ~granted:c.c_granted ~promotions:c.c_promotions
      ~service:(Some c.c_service) ~work:c.c_work ~fp:c.c_fingerprint ~mismatch:c.c_mismatch;
    dispatch ()
  in
  let makespan = ref 0 in
  let rec loop () =
    match !events with
    | [] -> ()
    | (time, _, ev) :: rest ->
        events := rest;
        now := time;
        makespan := Stdlib.max !makespan time;
        Meter.advance meter ~now:time;
        (match ev with Arrival p -> on_arrival p | Completion c -> on_completion c);
        loop ()
  in
  (* Epoch-0 credit lands before the first arrival. *)
  Meter.advance meter ~now:0;
  loop ();
  Sanitizer.Checker.finish server_checker;
  let reports =
    Array.to_list reports
    |> List.mapi (fun id r ->
           match r with
           | Some r -> r
           | None ->
               (* Unreachable by construction (every submitted job is shed
                  or finished); keep the accounting honest if it ever is. *)
               {
                 job = id;
                 tenant = -1;
                 workload = "?";
                 submit_time = 0;
                 start_time = None;
                 finish_time = 0;
                 outcome = Failed "lost";
                 granted = 0;
                 promotions = 0;
                 service_cycles = None;
                 sojourn = None;
                 work_cycles = 0;
                 fingerprint = None;
                 mismatch = false;
               })
  in
  let count p = List.length (List.filter p reports) in
  let completed = List.filter (fun r -> r.outcome = Completed) reports in
  let sojourns =
    List.filter_map (fun r -> Option.map Float.of_int r.sojourn) completed
  in
  let stats =
    {
      submitted = njobs;
      admitted = count (fun r -> match r.outcome with Rejected _ -> false | _ -> true);
      shed = count (fun r -> match r.outcome with Rejected _ -> true | _ -> false);
      completed = List.length completed;
      deadline_exceeded = count (fun r -> r.outcome = Deadline_exceeded);
      failed = count (fun r -> match r.outcome with Failed _ -> true | _ -> false);
      sojourn_p50 = Report.Stats.percentile 50.0 sojourns;
      sojourn_p95 = Report.Stats.percentile 95.0 sojourns;
      sojourn_p99 = Report.Stats.percentile 99.0 sojourns;
      goodput =
        (if !makespan = 0 then 0.0
         else
           Float.of_int (List.fold_left (fun acc r -> acc + r.work_cycles) 0 completed)
           /. Float.of_int !makespan);
      makespan = !makespan;
      breaker_opens = !breaker_opens;
    }
  in
  let violations =
    List.map (fun v -> (None, v)) (Sanitizer.Checker.violations server_checker)
    @ List.rev !job_violations
  in
  { reports; stats; decisions = Buffer.contents decisions; violations }

let summary r =
  let s = r.stats in
  Printf.sprintf
    "serve: %d submitted, %d admitted, %d shed, %d completed, %d deadline, %d failed | sojourn \
     p50=%.0f p95=%.0f p99=%.0f | goodput=%.3f work/cycle | makespan=%d | breaker opens=%d | %d \
     violation(s)"
    s.submitted s.admitted s.shed s.completed s.deadline_exceeded s.failed s.sojourn_p50
    s.sojourn_p95 s.sojourn_p99 s.goodput s.makespan s.breaker_opens (List.length r.violations)
