type service = Hbc | Tpal of { chunk : int } | Omp of Baselines.Openmp.config

let service_name = function Hbc -> "hbc" | Tpal _ -> "tpal" | Omp _ -> "omp"

type preempt_policy = Cancel | Pause_and_requeue

let preempt_name = function Cancel -> "cancel" | Pause_and_requeue -> "pause"

let preempt_of_string = function
  | "cancel" -> Some Cancel
  | "pause" | "pause-and-requeue" -> Some Pause_and_requeue
  | _ -> None

exception Killed

exception Wal of string

type tenant_spec = {
  weight : int;
  arrival : Arrival.process;
  jobs : int;
  workloads : string list;
  scale : float;
  workers_wanted : int;
  deadline : (int * int) option;
  cycle_budget : (int * int) option;
  fault_plan : Sim.Fault_plan.t option;
  promotion_want : int;
  priority : int;
}

let tenant_default =
  {
    weight = 1;
    arrival = Arrival.Poisson { mean_gap = 5_000.0 };
    jobs = 4;
    workloads = [ "plus-reduce-array" ];
    scale = 0.02;
    workers_wanted = 4;
    deadline = None;
    cycle_budget = None;
    fault_plan = None;
    promotion_want = 16;
    priority = 0;
  }

type config = {
  tenants : tenant_spec array;
  pool : int;
  queue_capacity : int;
  seed : int;
  service : service;
  rt : Hbc_core.Rt_config.t;
  breaker : Breaker.config;
  meter : Meter.config;
  sanitize : bool;
  verify : bool;
  trace : Obs.Trace.Sink.t;
  preempt : preempt_policy;
  max_preempts : int;
  wal : string option;
  wal_kill_after : int option;
}

let default_config =
  {
    tenants = [||];
    pool = 8;
    queue_capacity = 16;
    seed = 1;
    service = Hbc;
    rt = Hbc_core.Rt_config.hbc;
    breaker = Breaker.default_config;
    meter = Meter.default_config;
    sanitize = false;
    verify = false;
    trace = Obs.Trace.Sink.null;
    preempt = Cancel;
    max_preempts = 4;
    wal = None;
    wal_kill_after = None;
  }

type outcome = Completed | Deadline_exceeded | Rejected of string | Failed of string

let outcome_name = function
  | Completed -> "completed"
  | Deadline_exceeded -> "deadline"
  | Rejected r -> "rejected:" ^ r
  | Failed r -> "failed:" ^ r

type job_report = {
  job : int;
  tenant : int;
  workload : string;
  submit_time : int;
  start_time : int option;
  finish_time : int;
  outcome : outcome;
  granted : int;
  promotions : int;
  service_cycles : int option;
  sojourn : int option;
  work_cycles : int;
  fingerprint : float option;
  mismatch : bool;
  episodes : int;
}

type stats = {
  submitted : int;
  admitted : int;
  shed : int;
  completed : int;
  deadline_exceeded : int;
  failed : int;
  checkpointed : int;
  resumed : int;
  sojourn_p50 : float;
  sojourn_p95 : float;
  sojourn_p99 : float;
  goodput : float;
  makespan : int;
  breaker_opens : int;
}

type result = {
  reports : job_report list;
  stats : stats;
  decisions : string;
  violations : (int option * Sanitizer.Checker.violation) list;
  wal_replayed : int;
}

(* One job's fixed identity, drawn before the run starts. [deadline_abs]
   is refreshed on requeue under [Pause_and_requeue]; everything else is
   immutable across episodes. *)
type pending = {
  id : int;
  p_tenant : int;
  p_workload : string;
  submit : int;
  deadline_abs : int option;
  p_quantum : int option;  (* the relative deadline draw, reused as the per-episode quantum *)
  budget_cap : int option;
  jseed : int;
  p_priority : int;
  workers : int;
  want : int;
  p_probe : bool;  (* admitted as a half-open breaker probe *)
  p_retries : int;  (* breaker deferrals so far (Pause_and_requeue only) *)
}

(* One inner executor episode's outcome. [x_outcome = None] means the run
   paused cooperatively at [x_pause]'s boundary; every metric is cumulative
   over the job's whole history (resumed runs replay from cycle 0 and
   recount), so [x_makespan] is the absolute inner cycle reached. *)
type exec = {
  x_outcome : outcome option;
  x_pause : Sim.Checkpoint_state.t option;
  x_makespan : int;
  x_promotions : int;
  x_work : int;
  x_fp : float option;
  x_mismatch : bool;
  x_preempted : bool;
  x_violations : Sanitizer.Checker.violation list;
}

type ev = Arrival of pending | Completion of completion
and completion = { c_job : pending; c_grant : int; c_service : int; c_exec : exec }

(* Mutable per-job episode state, keyed by job id. The checker persists
   across episodes: resumed runs mute their replayed prefix, so the sink
   sees each episode's events exactly once and its work-conservation
   tiling spans the whole pause/resume history. *)
type jctx = {
  mutable episodes : int;  (* completed pause/resume episodes *)
  mutable ck : Sim.Checkpoint_state.t option;
  mutable boundary : int;  (* inner cycle of the last checkpoint *)
  mutable granted_total : int;
  mutable remaining : int;  (* unconsumed grant refunded at the last pause *)
  mutable used_before : int;  (* cumulative promotions at the last boundary *)
  mutable work_before : int;
  mutable first_start : int;
  jchecker : Sanitizer.Checker.t option;
}

(* ------------------------------------------------------------------ *)
(* Job generation.                                                      *)
(* ------------------------------------------------------------------ *)

let draw_range rng = function
  | None -> None
  | Some (lo, hi) ->
      let lo = Stdlib.min lo hi and hi = Stdlib.max lo hi in
      Some (if hi = lo then lo else lo + Sim.Sim_rng.int rng (hi - lo + 1))

(* Per-tenant child streams in tenant order, then per-job draws in a fixed
   order: the whole offered load is a pure function of [cfg.seed]. *)
let generate_jobs cfg =
  let master = Sim.Sim_rng.create cfg.seed in
  let all = ref [] in
  Array.iteri
    (fun tenant spec ->
      let rng = Sim.Sim_rng.split master in
      let times = Arrival.times spec.arrival ~rng ~jobs:spec.jobs in
      List.iteri
        (fun k time ->
          let wl =
            match spec.workloads with
            | [] -> invalid_arg "Server: tenant with no workloads"
            | [ w ] -> w
            | ws -> List.nth ws (Sim.Sim_rng.int rng (List.length ws))
          in
          let deadline_rel = draw_range rng spec.deadline in
          let budget_cap = draw_range rng spec.cycle_budget in
          let jseed = 1 + Sim.Sim_rng.int rng 1_000_000 in
          all :=
            ( time,
              tenant,
              k,
              {
                id = 0;
                p_tenant = tenant;
                p_workload = wl;
                submit = time;
                deadline_abs = Option.map (fun d -> time + Stdlib.max 1 d) deadline_rel;
                p_quantum = Option.map (Stdlib.max 1) deadline_rel;
                budget_cap;
                jseed;
                p_priority = spec.priority;
                workers = Stdlib.max 1 (Stdlib.min spec.workers_wanted cfg.pool);
                want = Stdlib.max 0 spec.promotion_want;
                p_probe = false;
                p_retries = 0;
              } )
            :: !all)
        times)
    cfg.tenants;
  (* Simultaneous arrivals are ordered (tenant, per-tenant index): one
     fixed submission order per seed, whatever the map/fold order above. *)
  let sorted = List.sort (fun (t1, a1, k1, _) (t2, a2, k2, _) -> compare (t1, a1, k1) (t2, a2, k2)) !all in
  List.mapi (fun id (_, _, _, p) -> { p with id }) sorted

(* ------------------------------------------------------------------ *)
(* Inner job execution.                                                 *)
(* ------------------------------------------------------------------ *)

(* Serial references are deterministic per (workload, scale): cache them
   across jobs so verification does not rerun the reference per job. *)
let serial_reference cache ~workload ~scale =
  let key = (workload, scale) in
  match Hashtbl.find_opt cache key with
  | Some r -> r
  | None ->
      let entry = Workloads.Registry.find workload in
      let (Ir.Program.Any p) = entry.Workloads.Registry.make scale in
      let r = Baselines.Serial_exec.run_program p in
      Hashtbl.add cache key r;
      r

let tenant_scale cfg (p : pending) = cfg.tenants.(p.p_tenant).scale

let job_rt cfg (p : pending) =
  let rt_base =
    match cfg.service with
    | Hbc -> cfg.rt
    | Tpal { chunk } -> Baselines.Tpal.config ~chunk
    | Omp _ -> cfg.rt
  in
  { rt_base with Hbc_core.Rt_config.workers = p.workers; seed = p.jseed }

let run_job cfg serial_cache (p : pending) ~fault_plan ~grant ~checker ~pause_at ~deadline
    ~resume_from =
  let entry = Workloads.Registry.find p.p_workload in
  let (Ir.Program.Any prog) = entry.Workloads.Registry.make (tenant_scale cfg p) in
  let rt = job_rt cfg p in
  let boundary =
    match resume_from with Some ck -> ck.Sim.Checkpoint_state.at_cycle | None -> 0
  in
  let trace =
    match checker with Some c -> Sanitizer.Checker.sink c | None -> Obs.Trace.Sink.null
  in
  let request =
    Hbc_core.Run_request.make ?deadline ?cycle_budget:p.budget_cap ?fault_plan ?pause_at
      ?resume_from ~trace ~sanitize:(checker <> None) ~tenant:p.p_tenant
      ~priority:p.p_priority ~promotion_budget:grant ()
  in
  let run () =
    match cfg.service with
    | Hbc | Tpal _ -> Hbc_core.Executor.run ~request rt prog
    | Omp ocfg ->
        Baselines.Openmp.run_program ~request
          { ocfg with Baselines.Openmp.workers = p.workers; seed = p.jseed }
          prog
  in
  match run () with
  | exception e ->
      (* A structured abort never escapes the executor as an exception, so
         anything raised here is a crash (e.g. an engine deadlock under an
         aggressive fault plan). The pool slot is still reclaimed after a
         deterministic penalty service time. *)
      let penalty =
        match (deadline, p.budget_cap) with
        | Some d, Some b -> Stdlib.max 1 (Stdlib.min d b - boundary)
        | Some d, None -> Stdlib.max 1 (d - boundary)
        | None, Some b -> Stdlib.max 1 (b - boundary)
        | None, None -> 1_000
      in
      {
        x_outcome = Some (Failed ("crash:" ^ Printexc.to_string e));
        x_pause = None;
        x_makespan = boundary + penalty;
        x_promotions = 0;
        x_work = 0;
        x_fp = None;
        x_mismatch = false;
        x_preempted = false;
        x_violations =
          (match checker with Some c -> Sanitizer.Checker.violations c | None -> []);
      }
  | result -> (
      let promotions = result.Sim.Run_result.metrics.Sim.Metrics.promotions in
      match result.Sim.Run_result.termination with
      | Sim.Run_result.Paused ck ->
          (* Not a terminal state: no verification, no end-of-run tiling
             check (the persistent checker keeps accumulating), and the
             violation harvest waits for the terminal episode. *)
          {
            x_outcome = None;
            x_pause = Some ck;
            x_makespan = ck.Sim.Checkpoint_state.at_cycle;
            x_promotions = promotions;
            x_work = result.Sim.Run_result.work_cycles;
            x_fp = None;
            x_mismatch = false;
            x_preempted = false;
            x_violations = [];
          }
      | term ->
          let outcome0 =
            match term with
            | Sim.Run_result.Finished -> Completed
            | Sim.Run_result.Dnf -> Deadline_exceeded
            | Sim.Run_result.Budget_exceeded _ -> Failed "budget"
            | Sim.Run_result.Guard_aborted reason -> Failed ("guard:" ^ reason)
            | Sim.Run_result.Paused _ -> assert false
          in
          let mismatch =
            cfg.verify && outcome0 = Completed
            &&
            let seq =
              serial_reference serial_cache ~workload:p.p_workload ~scale:(tenant_scale cfg p)
            in
            not (Sim.Run_result.fingerprints_close seq result)
          in
          let violations =
            match checker with
            | None -> []
            | Some c ->
                (* End-of-run tiling only applies to runs that actually
                   finished: a preempted or aborted job legitimately leaves
                   uncovered iterations behind. *)
                if term = Sim.Run_result.Finished then Sanitizer.Checker.finish c;
                Sanitizer.Checker.violations c
          in
          let outcome =
            if mismatch then Failed "mismatch"
            else if violations <> [] then Failed "invariant"
            else outcome0
          in
          {
            x_outcome = Some outcome;
            x_pause = None;
            x_makespan = Stdlib.max 1 result.Sim.Run_result.makespan;
            x_promotions = promotions;
            x_work = result.Sim.Run_result.work_cycles;
            x_fp = Some result.Sim.Run_result.fingerprint;
            x_mismatch = mismatch;
            x_preempted = result.Sim.Run_result.dnf;
            x_violations = violations;
          })

(* ------------------------------------------------------------------ *)
(* Write-ahead decision log.                                            *)
(* ------------------------------------------------------------------ *)

(* The journal is the log AND the state: the campaign is a deterministic
   function of the config, so crash recovery re-runs it from the start and
   byte-verifies every regenerated decision line against the WAL prefix
   before appending anything new. A mismatch means the log belongs to a
   different campaign (or the code changed) and recovery must not continue
   over it. A torn final line — the classic mid-write crash — is dropped
   on open, exactly the repair rule of any write-ahead log. *)

let wal_header cfg =
  Printf.sprintf "#wal v1 seed=%d pool=%d queue=%d tenants=%d service=%s policy=%s preempts=%d"
    cfg.seed cfg.pool cfg.queue_capacity (Array.length cfg.tenants) (service_name cfg.service)
    (preempt_name cfg.preempt) cfg.max_preempts

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Returns the channel (positioned at the verified end of the log) and the
   already-committed decision lines to replay against. *)
let open_wal cfg path =
  let header = wal_header cfg in
  let existing = if Sys.file_exists path then read_file path else "" in
  if existing = "" then begin
    let ch = open_out_bin path in
    output_string ch (header ^ "\n");
    flush ch;
    (ch, [||])
  end
  else begin
    let torn = existing.[String.length existing - 1] <> '\n' in
    let parts = String.split_on_char '\n' existing in
    let lines =
      (* "a\nb\n" splits to ["a";"b";""]; a torn "a\nb\nfrag" to
         ["a";"b";"frag"]. Either way the last element is dropped. *)
      match List.rev parts with [] -> [] | _ :: rest -> List.rev rest
    in
    match lines with
    | [] -> raise (Wal (Printf.sprintf "%s: torn header, no committed record to recover" path))
    | h :: prefix ->
        if h <> header then
          raise (Wal (Printf.sprintf "%s: header mismatch: log %S, config %S" path h header));
        if torn then begin
          (* Repair: rewrite the committed prefix, dropping the torn tail. *)
          let ch = open_out_bin path in
          output_string ch (header ^ "\n");
          List.iter
            (fun l ->
              output_string ch l;
              output_char ch '\n')
            prefix;
          flush ch;
          (ch, Array.of_list prefix)
        end
        else (open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path, Array.of_list prefix)
  end

(* ------------------------------------------------------------------ *)
(* The server event loop.                                               *)
(* ------------------------------------------------------------------ *)

let run cfg =
  if cfg.pool < 1 then invalid_arg "Server: pool must have at least one worker";
  let jobs = generate_jobs cfg in
  let njobs = List.length jobs in
  let reports : job_report option array = Array.make njobs None in
  let decisions = Buffer.create 1024 in
  let wal_chan, wal_prefix =
    match cfg.wal with
    | None -> (None, [||])
    | Some path ->
        let ch, prefix = open_wal cfg path in
        (Some ch, prefix)
  in
  Fun.protect
    ~finally:(fun () ->
      match wal_chan with Some ch -> (try close_out ch with Sys_error _ -> ()) | None -> ())
  @@ fun () ->
  let replayed = Array.length wal_prefix in
  let wal_pos = ref 0 in
  let appended = ref 0 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string decisions s;
        Buffer.add_char decisions '\n';
        match wal_chan with
        | None -> ()
        | Some ch ->
            if !wal_pos < replayed then begin
              if wal_prefix.(!wal_pos) <> s then
                raise
                  (Wal
                     (Printf.sprintf "replay diverged at line %d: log %S, regenerated %S"
                        (!wal_pos + 2) wal_prefix.(!wal_pos) s));
              incr wal_pos
            end
            else begin
              (match cfg.wal_kill_after with
              | Some n when !appended >= n ->
                  (* Crash-injection hook: tear the next record mid-write,
                     as a power cut would, then die. *)
                  output_string ch (String.sub s 0 (Stdlib.max 1 (String.length s / 2)));
                  flush ch;
                  raise Killed
              | _ -> ());
              output_string ch s;
              output_char ch '\n';
              flush ch;
              incr appended;
              incr wal_pos
            end)
      fmt
  in
  let server_checker = Sanitizer.Checker.create (Sanitizer.Checker.config_of_rt cfg.rt) in
  let sink = Obs.Trace.Sink.tee (Sanitizer.Checker.sink server_checker) cfg.trace in
  let emit ~time ev = Obs.Trace.Sink.emit sink ~time ~worker:(-1) ev in
  let now = ref 0 in
  let breaker_opens = ref 0 in
  let ck_count = ref 0 in
  let resume_count = ref 0 in
  let weights = Array.map (fun s -> Stdlib.max 1 s.weight) cfg.tenants in
  let meter =
    Meter.create ~config:cfg.meter ~weights
      ~emit:(fun ~time ~tenant ~amount ->
        emit ~time (Obs.Trace.Budget_refill { tenant; amount });
        line "t=%d refill tenant=%d amount=%d" time tenant amount)
      ()
  in
  let breakers =
    Array.init (Array.length cfg.tenants) (fun tenant ->
        Breaker.create ~config:cfg.breaker
          ~on_transition:(fun ~from_state ~to_state ->
            if to_state = Breaker.Open then incr breaker_opens;
            emit ~time:!now
              (Obs.Trace.Breaker_transition
                 {
                   tenant;
                   from_state = Breaker.state_name from_state;
                   to_state = Breaker.state_name to_state;
                 });
            line "t=%d breaker tenant=%d %s->%s" !now tenant (Breaker.state_name from_state)
              (Breaker.state_name to_state))
          ())
  in
  let queue = Admission.create ~capacity:cfg.queue_capacity ~weights in
  let serial_cache = Hashtbl.create 8 in
  let ctxs : (int, jctx) Hashtbl.t = Hashtbl.create 32 in
  let job_violations = ref [] in
  let free = ref cfg.pool in
  (* Event queue: sorted (time, seq) list. Arrivals enter first (they are
     known upfront), completions and deferred retries as they are
     scheduled; the global [seq] makes same-tick ordering total and
     deterministic. *)
  let events = ref [] in
  let seq = ref 0 in
  let push_event time ev =
    let s = !seq in
    incr seq;
    let rec ins = function
      | [] -> [ (time, s, ev) ]
      | ((t', s', _) as x) :: rest ->
          if (time, s) < (t', s') then (time, s, ev) :: x :: rest else x :: ins rest
    in
    events := ins !events
  in
  List.iter (fun p -> push_event p.submit (Arrival p)) jobs;
  let finalize (p : pending) ~start_time ~outcome ~granted ~promotions ~service ~work ~fp
      ~mismatch ~episodes =
    let sojourn =
      match outcome with
      | Completed | Deadline_exceeded | Failed _ -> Some (!now - p.submit)
      | Rejected _ -> None
    in
    reports.(p.id) <-
      Some
        {
          job = p.id;
          tenant = p.p_tenant;
          workload = p.p_workload;
          submit_time = p.submit;
          start_time;
          finish_time = !now;
          outcome;
          granted;
          promotions;
          service_cycles = service;
          sojourn;
          work_cycles = work;
          fingerprint = fp;
          mismatch;
          episodes;
        }
  in
  let shed (p : pending) reason =
    emit ~time:!now (Obs.Trace.Job_shed { job = p.id; tenant = p.p_tenant; reason });
    line "t=%d shed job=%d tenant=%d reason=%s" !now p.id p.p_tenant reason;
    finalize p ~start_time:None ~outcome:(Rejected reason) ~granted:0 ~promotions:0 ~service:None
      ~work:0 ~fp:None ~mismatch:false ~episodes:0
  in
  let expired (p : pending) =
    match p.deadline_abs with Some d -> !now >= d | None -> false
  in
  let rec dispatch () =
    match Admission.pop queue ~fits:(fun p -> expired p || p.workers <= !free) with
    | None -> ()
    | Some (_, p) when expired p ->
        (* The deadline passed while the job sat in the queue: it still
           terminates with full accounting — including any episodes it
           already ran before being requeued — it just never holds the
           pool again. *)
        let ctx = Hashtbl.find_opt ctxs p.id in
        let episodes = match ctx with Some c -> c.episodes | None -> 0 in
        let used = match ctx with Some c -> c.used_before | None -> 0 in
        let work = match ctx with Some c -> c.work_before | None -> 0 in
        let granted = match ctx with Some c -> c.granted_total | None -> 0 in
        let started = match ctx with Some c when episodes > 0 -> Some c.first_start | _ -> None in
        let service = match ctx with Some c when c.boundary > 0 -> Some c.boundary | _ -> None in
        emit ~time:!now
          (Obs.Trace.Job_finished
             { job = p.id; tenant = p.p_tenant; state = "deadline"; promotions = used });
        line "t=%d finish job=%d tenant=%d outcome=deadline service=%d" !now p.id p.p_tenant
          (Option.value service ~default:0);
        finalize p ~start_time:started ~outcome:Deadline_exceeded ~granted ~promotions:used
          ~service ~work ~fp:None ~mismatch:false ~episodes;
        dispatch ()
    | Some (tenant, p) ->
        let ctx =
          match Hashtbl.find_opt ctxs p.id with
          | Some c -> c
          | None ->
              let c =
                {
                  episodes = 0;
                  ck = None;
                  boundary = 0;
                  granted_total = 0;
                  remaining = 0;
                  used_before = 0;
                  work_before = 0;
                  first_start = !now;
                  jchecker =
                    (if cfg.sanitize then
                       Some (Sanitizer.Checker.create (Sanitizer.Checker.config_of_rt (job_rt cfg p)))
                     else None);
                }
              in
              Hashtbl.add ctxs p.id c;
              c
        in
        let resume = ctx.ck in
        (* A resumed episode asks for exactly the unconsumed part of its
           previous grant — the amount refunded at the pause; when the
           meter can honour it, the job's promotion decisions are
           byte-identical to the uninterrupted run. *)
        let want = match resume with None -> p.want | Some _ -> ctx.remaining in
        let grant = Meter.grant meter ~tenant ~want in
        ctx.granted_total <- ctx.granted_total + grant;
        (match resume with
        | None ->
            emit ~time:!now (Obs.Trace.Job_started { job = p.id; tenant; budget = grant });
            line "t=%d start job=%d tenant=%d workers=%d grant=%d deadline=%s" !now p.id tenant
              p.workers grant
              (match p.deadline_abs with Some d -> string_of_int d | None -> "none")
        | Some ck ->
            incr resume_count;
            emit ~time:!now
              (Obs.Trace.Job_resumed { job = p.id; tenant; episode = ctx.episodes; budget = grant });
            line "t=%d resume job=%d tenant=%d episode=%d grant=%d boundary=%d" !now p.id tenant
              ctx.episodes grant ck.Sim.Checkpoint_state.at_cycle);
        free := !free - p.workers;
        (* Deadline-as-quantum: under Pause_and_requeue the relative
           deadline draw is the per-episode compute quantum. Episodes
           below the preemption cap are armed with a cooperative pause at
           the next quantum boundary; the final allowed episode runs
           against a hard inner deadline, so a job that never finishes
           still terminates as Deadline_exceeded. *)
        let pause_at, deadline =
          match (cfg.preempt, p.p_quantum) with
          | Cancel, _ -> (None, Option.map (fun d -> Stdlib.max 1 (d - !now)) p.deadline_abs)
          | Pause_and_requeue, None -> (None, None)
          | Pause_and_requeue, Some q ->
              if ctx.episodes < cfg.max_preempts then (Some (ctx.boundary + q), None)
              else (None, Some (ctx.boundary + q))
        in
        let x =
          run_job cfg serial_cache p ~fault_plan:cfg.tenants.(tenant).fault_plan ~grant
            ~checker:ctx.jchecker ~pause_at ~deadline ~resume_from:resume
        in
        let service = Stdlib.max 1 (x.x_makespan - ctx.boundary) in
        push_event (!now + service)
          (Completion { c_job = p; c_grant = grant; c_service = service; c_exec = x });
        dispatch ()
  in
  let on_arrival (p : pending) =
    if p.p_retries = 0 then begin
      emit ~time:!now (Obs.Trace.Job_submitted { job = p.id; tenant = p.p_tenant });
      line "t=%d submit job=%d tenant=%d wl=%s" !now p.id p.p_tenant p.p_workload
    end;
    let b = breakers.(p.p_tenant) in
    let was_closed = Breaker.state b = Breaker.Closed in
    if not (Breaker.admit b ~now:!now) then begin
      match cfg.preempt with
      | Pause_and_requeue when p.p_retries < cfg.max_preempts ->
          (* Quarantined, not shed: defer the submission past the breaker's
             cooldown and try admission again. *)
          let at = Breaker.retry_at b ~now:!now in
          line "t=%d defer job=%d tenant=%d retry=%d until=%d" !now p.id p.p_tenant
            (p.p_retries + 1) at;
          push_event at (Arrival { p with p_retries = p.p_retries + 1 })
      | _ -> shed p "breaker-open"
    end
    else begin
      let p = { p with p_probe = not was_closed } in
      if not (Admission.offer queue ~tenant:p.p_tenant ~priority:p.p_priority p) then
        shed p "queue-full"
      else begin
        emit ~time:!now
          (Obs.Trace.Job_admitted
             { job = p.id; tenant = p.p_tenant; queued = Admission.length queue });
        line "t=%d admit job=%d tenant=%d depth=%d" !now p.id p.p_tenant (Admission.length queue);
        dispatch ()
      end
    end
  in
  let on_completion (c : completion) =
    let p = c.c_job in
    let x = c.c_exec in
    free := !free + p.workers;
    Admission.charge queue ~tenant:p.p_tenant ~cost:(c.c_service * p.workers);
    let ctx = Hashtbl.find ctxs p.id in
    let used_episode = x.x_promotions - ctx.used_before in
    match x.x_pause with
    | Some ck ->
        let q = match p.p_quantum with Some q -> q | None -> assert false in
        let requeued = { p with deadline_abs = Some (!now + q) } in
        if Admission.offer queue ~tenant:p.p_tenant ~priority:p.p_priority requeued then begin
          incr ck_count;
          emit ~time:!now
            (Obs.Trace.Job_checkpointed
               { job = p.id; tenant = p.p_tenant; at_cycle = ck.Sim.Checkpoint_state.at_cycle });
          line "t=%d checkpoint job=%d tenant=%d cycle=%d episode=%d digest=%s" !now p.id
            p.p_tenant ck.Sim.Checkpoint_state.at_cycle (ctx.episodes + 1)
            (Sim.Checkpoint_state.digest ck);
          Meter.refund meter ~now:!now ~tenant:p.p_tenant (c.c_grant - used_episode);
          ctx.remaining <- Stdlib.max 0 (c.c_grant - used_episode);
          ctx.episodes <- ctx.episodes + 1;
          ctx.ck <- Some ck;
          ctx.boundary <- ck.Sim.Checkpoint_state.at_cycle;
          ctx.used_before <- x.x_promotions;
          ctx.work_before <- x.x_work;
          line "t=%d requeue job=%d tenant=%d depth=%d deadline=%d" !now p.id p.p_tenant
            (Admission.length queue) (!now + q);
          dispatch ()
        end
        else begin
          (* No room to re-enter admission: the pause degrades to a cancel
             with full cumulative accounting (never a silent drop). *)
          emit ~time:!now (Obs.Trace.Job_preempted { job = p.id; tenant = p.p_tenant });
          line "t=%d preempt job=%d tenant=%d reason=requeue-full" !now p.id p.p_tenant;
          emit ~time:!now
            (Obs.Trace.Job_finished
               { job = p.id; tenant = p.p_tenant; state = "deadline"; promotions = x.x_promotions });
          line "t=%d finish job=%d tenant=%d outcome=deadline promotions=%d service=%d" !now p.id
            p.p_tenant x.x_promotions c.c_service;
          Meter.refund meter ~now:!now ~tenant:p.p_tenant (c.c_grant - used_episode);
          finalize p ~start_time:(Some ctx.first_start) ~outcome:Deadline_exceeded
            ~granted:ctx.granted_total ~promotions:x.x_promotions
            ~service:(Some ck.Sim.Checkpoint_state.at_cycle) ~work:x.x_work ~fp:None
            ~mismatch:false ~episodes:ctx.episodes;
          dispatch ()
        end
    | None ->
        let outcome = match x.x_outcome with Some o -> o | None -> assert false in
        if x.x_preempted then begin
          emit ~time:!now (Obs.Trace.Job_preempted { job = p.id; tenant = p.p_tenant });
          line "t=%d preempt job=%d tenant=%d" !now p.id p.p_tenant
        end;
        emit ~time:!now
          (Obs.Trace.Job_finished
             {
               job = p.id;
               tenant = p.p_tenant;
               state = outcome_name outcome;
               promotions = x.x_promotions;
             });
        line "t=%d finish job=%d tenant=%d outcome=%s promotions=%d service=%d" !now p.id
          p.p_tenant (outcome_name outcome) x.x_promotions c.c_service;
        Meter.refund meter ~now:!now ~tenant:p.p_tenant (c.c_grant - used_episode);
        (match outcome with
        | Completed -> Breaker.record ~probe:p.p_probe breakers.(p.p_tenant) ~now:!now ~ok:true
        | Failed _ -> Breaker.record ~probe:p.p_probe breakers.(p.p_tenant) ~now:!now ~ok:false
        | Deadline_exceeded | Rejected _ -> ());
        List.iter (fun v -> job_violations := (Some p.id, v) :: !job_violations) x.x_violations;
        let start_time, service_total =
          match cfg.preempt with
          | Cancel -> (Some (!now - c.c_service), Some c.c_service)
          | Pause_and_requeue -> (Some ctx.first_start, Some x.x_makespan)
        in
        finalize p ~start_time ~outcome ~granted:ctx.granted_total ~promotions:x.x_promotions
          ~service:service_total ~work:x.x_work ~fp:x.x_fp ~mismatch:x.x_mismatch
          ~episodes:ctx.episodes;
        dispatch ()
  in
  let makespan = ref 0 in
  let rec loop () =
    match !events with
    | [] -> ()
    | (time, _, ev) :: rest ->
        events := rest;
        now := time;
        makespan := Stdlib.max !makespan time;
        Meter.advance meter ~now:time;
        (match ev with Arrival p -> on_arrival p | Completion c -> on_completion c);
        loop ()
  in
  (* Epoch-0 credit lands before the first arrival. *)
  Meter.advance meter ~now:0;
  loop ();
  Sanitizer.Checker.finish server_checker;
  let reports =
    Array.to_list reports
    |> List.mapi (fun id r ->
           match r with
           | Some r -> r
           | None ->
               (* Unreachable by construction (every submitted job is shed
                  or finished); keep the accounting honest if it ever is. *)
               {
                 job = id;
                 tenant = -1;
                 workload = "?";
                 submit_time = 0;
                 start_time = None;
                 finish_time = 0;
                 outcome = Failed "lost";
                 granted = 0;
                 promotions = 0;
                 service_cycles = None;
                 sojourn = None;
                 work_cycles = 0;
                 fingerprint = None;
                 mismatch = false;
                 episodes = 0;
               })
  in
  let count p = List.length (List.filter p reports) in
  let completed = List.filter (fun r -> r.outcome = Completed) reports in
  let sojourns =
    List.filter_map (fun r -> Option.map Float.of_int r.sojourn) completed
  in
  let stats =
    {
      submitted = njobs;
      admitted = count (fun r -> match r.outcome with Rejected _ -> false | _ -> true);
      shed = count (fun r -> match r.outcome with Rejected _ -> true | _ -> false);
      completed = List.length completed;
      deadline_exceeded = count (fun r -> r.outcome = Deadline_exceeded);
      failed = count (fun r -> match r.outcome with Failed _ -> true | _ -> false);
      checkpointed = !ck_count;
      resumed = !resume_count;
      sojourn_p50 = Report.Stats.percentile 50.0 sojourns;
      sojourn_p95 = Report.Stats.percentile 95.0 sojourns;
      sojourn_p99 = Report.Stats.percentile 99.0 sojourns;
      goodput =
        (if !makespan = 0 then 0.0
         else
           Float.of_int (List.fold_left (fun acc r -> acc + r.work_cycles) 0 completed)
           /. Float.of_int !makespan);
      makespan = !makespan;
      breaker_opens = !breaker_opens;
    }
  in
  let violations =
    List.map (fun v -> (None, v)) (Sanitizer.Checker.violations server_checker)
    @ List.rev !job_violations
  in
  { reports; stats; decisions = Buffer.contents decisions; violations; wal_replayed = replayed }

let summary r =
  let s = r.stats in
  Printf.sprintf
    "serve: %d submitted, %d admitted, %d shed, %d completed, %d deadline, %d failed | %d \
     checkpoint(s), %d resume(s) | sojourn p50=%.0f p95=%.0f p99=%.0f | goodput=%.3f work/cycle \
     | makespan=%d | breaker opens=%d | %d violation(s)"
    s.submitted s.admitted s.shed s.completed s.deadline_exceeded s.failed s.checkpointed
    s.resumed s.sojourn_p50 s.sojourn_p95 s.sojourn_p99 s.goodput s.makespan s.breaker_opens
    (List.length r.violations)
