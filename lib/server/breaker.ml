type state = Closed | Open | Half_open

let state_name = function Closed -> "closed" | Open -> "open" | Half_open -> "half-open"

type config = {
  failure_threshold : int;
  cooldown : int;
  backoff : float;
  probe_budget : int;
}

let default_config = { failure_threshold = 3; cooldown = 50_000; backoff = 2.0; probe_budget = 2 }

type t = {
  cfg : config;
  on_transition : from_state:state -> to_state:state -> unit;
  mutable st : state;
  mutable failures : int;  (* consecutive failures while closed *)
  mutable opened_at : int;
  mutable opens : int;  (* consecutive opens, drives the cooldown backoff *)
  mutable probes_left : int;
  mutable probe_successes : int;
}

let create ?(config = default_config) ~on_transition () =
  {
    cfg = config;
    on_transition;
    st = Closed;
    failures = 0;
    opened_at = 0;
    opens = 0;
    probes_left = 0;
    probe_successes = 0;
  }

let state t = t.st

(* Same shape as the harness's retry backoff: each consecutive open
   multiplies the cooldown, so a tenant that keeps failing its half-open
   probes is quarantined for exponentially longer. *)
let current_cooldown t =
  int_of_float (Float.round (Float.of_int t.cfg.cooldown *. (t.cfg.backoff ** Float.of_int (Stdlib.max 0 (t.opens - 1)))))

let transition t to_state =
  let from_state = t.st in
  if from_state <> to_state then begin
    t.st <- to_state;
    t.on_transition ~from_state ~to_state
  end

let trip t ~now =
  t.opens <- t.opens + 1;
  t.opened_at <- now;
  t.failures <- 0;
  transition t Open

let admit t ~now =
  match t.st with
  | Closed -> true
  | Open ->
      if now - t.opened_at >= current_cooldown t then begin
        transition t Half_open;
        t.probes_left <- t.cfg.probe_budget - 1;
        t.probe_successes <- 0;
        true
      end
      else false
  | Half_open ->
      if t.probes_left > 0 then begin
        t.probes_left <- t.probes_left - 1;
        true
      end
      else false

let record ?(probe = true) t ~now ~ok =
  match (t.st, ok) with
  | Closed, true -> t.failures <- 0
  | Closed, false ->
      t.failures <- t.failures + 1;
      if t.failures >= t.cfg.failure_threshold then trip t ~now
  | Half_open, true ->
      (* Only outcomes of jobs admitted AS half-open probes count toward
         closing: a job admitted while still closed that happens to finish
         during the half-open window is stale evidence — before the trip
         the tenant was failing, so its success says nothing about
         recovery, and counting it would close the breaker without the
         probe budget ever being exercised. *)
      if probe then begin
        t.probe_successes <- t.probe_successes + 1;
        if t.probe_successes >= t.cfg.probe_budget then begin
          t.opens <- 0;
          t.failures <- 0;
          transition t Closed
        end
      end
  | Half_open, false ->
      (* A failure re-trips whatever admitted the job: stale or probe, the
         tenant demonstrably still fails. *)
      trip t ~now
  | Open, _ ->
      (* A job admitted before the trip can complete while the breaker is
         already open; its outcome no longer changes the state. *)
      ()

(* Earliest virtual time at which [admit] could next return true; callers
   deferring a submission instead of shedding it (pause-and-requeue
   preemption) use it to schedule the retry. Best effort for half-open:
   probe outcomes decide the actual state, so retry one cooldown later. *)
let retry_at t ~now =
  match t.st with
  | Open -> Stdlib.max (now + 1) (t.opened_at + current_cooldown t)
  | Closed | Half_open -> now + Stdlib.max 1 t.cfg.cooldown
