(** Deterministic open-loop arrival processes for the job server.

    A process maps (seeded rng, job count) to a fixed, nondecreasing list
    of virtual arrival times computed before the run starts — offered load
    never reacts to admission decisions, so overload behaviour is exactly
    reproducible from the seed. *)

type process =
  | Poisson of { mean_gap : float }
      (** memoryless arrivals with the given mean inter-arrival gap, in
          virtual cycles (sampled via {!Sim.Sim_rng.exponential}) *)
  | Burst of { period : int; size : int }
      (** [size] simultaneous arrivals at t = 0, period, 2*period, ... —
          exercises same-tick admission ordering *)
  | Adversarial of { quiet : int; burst : int }
      (** silence for [quiet] cycles, then [burst] jobs in one tick,
          repeated — the worst case for a bounded queue *)

val times : process -> rng:Sim.Sim_rng.t -> jobs:int -> int list
(** Nondecreasing arrival times for [jobs] jobs, starting at virtual
    time >= 0. Only [Poisson] consumes randomness. *)

val to_string : process -> string
(** Round-trips with {!of_string}: "poisson:800", "burst:5000:4",
    "adversarial:20000:8". *)

val of_string : string -> process option
