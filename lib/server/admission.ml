(* Per-tenant FIFO lanes (priority-ordered within a lane) under one global
   capacity, drained by start-time fair queuing. *)

type 'a item = { prio : int; seq : int; payload : 'a }

type 'a t = {
  capacity : int;
  weights : int array;
  lanes : 'a item list array;  (* ordered: higher prio first, then arrival seq *)
  vtimes : float array;  (* per-tenant virtual finish time *)
  mutable vclock : float;  (* vtime of the last service, lower-bounds activations *)
  mutable total : int;
  mutable seq : int;
}

let create ~capacity ~weights =
  let n = Array.length weights in
  {
    capacity = Stdlib.max 0 capacity;
    weights = Array.copy weights;
    lanes = Array.make n [];
    vtimes = Array.make n 0.0;
    vclock = 0.0;
    total = 0;
    seq = 0;
  }

let length t = t.total

let tenant_length t ~tenant = List.length t.lanes.(tenant)

(* Priority first, then arrival order: a stable insertion so equal
   priorities keep FIFO semantics. *)
let rec insert item = function
  | [] -> [ item ]
  | x :: rest when x.prio >= item.prio -> x :: insert item rest
  | rest -> item :: rest

let offer t ~tenant ~priority payload =
  if t.total >= t.capacity then false
  else begin
    if t.lanes.(tenant) = [] then
      (* Activation: an idle tenant re-enters at the current virtual
         clock, so banked idleness never becomes unbounded credit. *)
      t.vtimes.(tenant) <- Stdlib.max t.vtimes.(tenant) t.vclock;
    t.lanes.(tenant) <- insert { prio = priority; seq = t.seq; payload } t.lanes.(tenant);
    t.seq <- t.seq + 1;
    t.total <- t.total + 1;
    true
  end

(* Tenants in (vtime, id) order; the head of the first lane whose head
   passes [fits] is served — backfilling across tenants so one tenant's
   oversized head cannot block the whole pool. *)
let pop t ~fits =
  let order =
    Array.to_list (Array.init (Array.length t.lanes) (fun i -> i))
    |> List.filter (fun i -> t.lanes.(i) <> [])
    |> List.sort (fun a b -> compare (t.vtimes.(a), a) (t.vtimes.(b), b))
  in
  let rec try_lanes = function
    | [] -> None
    | tenant :: rest -> (
        match t.lanes.(tenant) with
        | item :: tail when fits item.payload ->
            t.lanes.(tenant) <- tail;
            t.total <- t.total - 1;
            t.vclock <- Stdlib.max t.vclock t.vtimes.(tenant);
            Some (tenant, item.payload)
        | _ -> try_lanes rest)
  in
  try_lanes order

let charge t ~tenant ~cost =
  let w = Stdlib.max 1 t.weights.(tenant) in
  t.vtimes.(tenant) <- t.vtimes.(tenant) +. (Float.of_int cost /. Float.of_int w)
