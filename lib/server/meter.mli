(** Weighted per-tenant promotion meter.

    Promotion opportunities — the right to split a loop into stealable
    tasks — are the contended resource the server meters. Each tenant
    holds a balance credited every [refill_period] virtual cycles with
    [refill_amount * weight] promotions (capped at [burst_cap * weight]);
    a starting job is granted up to its request from the balance and
    refunds what it did not use at completion. Every credit is emitted as
    an {!Obs.Trace.Budget_refill} stamped with its epoch-boundary time, so
    the sanitizer can replay the exact balance and prove no tenant ever
    overdraws (budget conservation). *)

type config = { refill_period : int; refill_amount : int; burst_cap : int }

val default_config : config

type t

val create :
  ?config:config -> weights:int array -> emit:(time:int -> tenant:int -> amount:int -> unit) -> unit -> t
(** One balance per entry of [weights]; all balances start empty — call
    {!advance} [~now:0] to apply the epoch-0 credit. *)

val advance : t -> now:int -> unit
(** Credit every epoch boundary up to [now] (idempotent per epoch). Call
    it before any grant at [now] so refill events precede the grants they
    fund. *)

val balance : t -> tenant:int -> int

val grant : t -> tenant:int -> want:int -> int
(** Take up to [want] promotions from the balance; returns what was
    actually granted (possibly 0 — the job then runs serially). *)

val refund : t -> now:int -> tenant:int -> int -> unit
(** Return a job's unused grant (credited back up to the burst cap, and
    emitted as a refill so the sanitizer's replayed balance stays exact). *)
