type process =
  | Poisson of { mean_gap : float }
  | Burst of { period : int; size : int }
  | Adversarial of { quiet : int; burst : int }

let to_string = function
  | Poisson { mean_gap } -> Printf.sprintf "poisson:%g" mean_gap
  | Burst { period; size } -> Printf.sprintf "burst:%d:%d" period size
  | Adversarial { quiet; burst } -> Printf.sprintf "adversarial:%d:%d" quiet burst

let of_string s =
  match String.split_on_char ':' s with
  | [ "poisson"; g ] -> (
      match float_of_string_opt g with
      | Some g when g > 0.0 -> Some (Poisson { mean_gap = g })
      | _ -> None)
  | [ "burst"; p; n ] -> (
      match (int_of_string_opt p, int_of_string_opt n) with
      | Some p, Some n when p > 0 && n > 0 -> Some (Burst { period = p; size = n })
      | _ -> None)
  | [ "adversarial"; q; b ] -> (
      match (int_of_string_opt q, int_of_string_opt b) with
      | Some q, Some b when q > 0 && b > 0 -> Some (Adversarial { quiet = q; burst = b })
      | _ -> None)
  | _ -> None

(* All three processes are open loop: the whole schedule is fixed before
   the run, so admission decisions can never feed back into arrival times
   and two runs with one seed see byte-identical offered load. *)
let times process ~rng ~jobs =
  if jobs <= 0 then []
  else
    match process with
    | Poisson { mean_gap } ->
        let rate = 1.0 /. mean_gap in
        let t = ref 0 in
        List.init jobs (fun _ ->
            let gap = int_of_float (Float.round (Sim.Sim_rng.exponential rng ~rate)) in
            t := !t + Stdlib.max 0 gap;
            !t)
    | Burst { period; size } ->
        (* [size] simultaneous arrivals at every period boundary: the
           same-tick pile-up the admission queue must order and, at
           capacity, shed deterministically. *)
        List.init jobs (fun k -> k / size * period)
    | Adversarial { quiet; burst } ->
        (* Worst case for a bounded queue: total silence, then [burst]
           jobs in one tick, repeated. The quiet phase drains the pool so
           every burst slams an empty queue at full height. *)
        List.init jobs (fun k -> (k / burst + 1) * quiet)
