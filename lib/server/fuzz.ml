(* Interpret a sanitizer-level workload mix as a full serve run and
   classify anything that should never happen under contention. *)

type failure =
  | Mismatch of { job : int; workload : string }
  | Invariant of { job : int option; violation : Sanitizer.Checker.violation }
  | Crash of { job : int; reason : string }
  | Lost_jobs of { submitted : int; accounted : int }
  | Recovery of string

let failure_kind = function
  | Mismatch _ -> "mismatch"
  | Invariant { violation; _ } ->
      "violation:" ^ Sanitizer.Checker.invariant_name violation.Sanitizer.Checker.invariant
  | Crash _ -> "crash"
  | Lost_jobs _ -> "lost-jobs"
  | Recovery _ -> "recovery"

let failure_describe = function
  | Mismatch { job; workload } -> Printf.sprintf "job %d (%s): fingerprint mismatch" job workload
  | Invariant { job; violation } ->
      Printf.sprintf "%s: [%s @ t=%d] %s"
        (match job with Some j -> Printf.sprintf "job %d" j | None -> "server")
        (Sanitizer.Checker.invariant_name violation.Sanitizer.Checker.invariant)
        violation.Sanitizer.Checker.time violation.Sanitizer.Checker.message
  | Crash { job; reason } -> Printf.sprintf "job %d crashed: %s" job reason
  | Lost_jobs { submitted; accounted } ->
      Printf.sprintf "job conservation: %d submitted but %d accounted" submitted accounted
  | Recovery msg -> Printf.sprintf "crash recovery: %s" msg

type outcome = {
  mix : Sanitizer.Fuzz.mix;
  result : Server.result;
  failures : failure list;
}

let tenant_of_mix (t : Sanitizer.Fuzz.mix_tenant) =
  let arrival =
    match Arrival.of_string t.Sanitizer.Fuzz.mt_arrival with
    | Some a -> a
    | None -> invalid_arg ("Serve_fuzz: bad arrival codec " ^ t.Sanitizer.Fuzz.mt_arrival)
  in
  {
    Server.tenant_default with
    weight = t.mt_weight;
    arrival;
    jobs = t.mt_jobs;
    workloads = t.mt_workloads;
    scale = t.mt_scale;
    workers_wanted = t.mt_workers;
    deadline = t.mt_deadline;
    cycle_budget = t.mt_cycle_budget;
    fault_plan = t.mt_plan;
    promotion_want = t.mt_promotion_want;
  }

let config_of_mix (m : Sanitizer.Fuzz.mix) =
  let preempt =
    match Server.preempt_of_string m.Sanitizer.Fuzz.mix_preempt with
    | Some p -> p
    | None -> invalid_arg ("Serve_fuzz: bad preempt codec " ^ m.Sanitizer.Fuzz.mix_preempt)
  in
  {
    Server.default_config with
    tenants = Array.of_list (List.map tenant_of_mix m.Sanitizer.Fuzz.mix_tenants);
    pool = m.mix_pool;
    queue_capacity = m.mix_queue;
    seed = m.mix_seed;
    sanitize = true;
    verify = true;
    preempt;
  }

let classify (m : Sanitizer.Fuzz.mix) (r : Server.result) =
  let failures = ref [] in
  let add f = failures := f :: !failures in
  List.iter
    (fun (job, violation) -> add (Invariant { job; violation }))
    r.Server.violations;
  List.iter
    (fun (rep : Server.job_report) ->
      if rep.mismatch then add (Mismatch { job = rep.job; workload = rep.workload });
      match rep.outcome with
      | Server.Failed reason
        when String.length reason >= 6 && String.sub reason 0 6 = "crash:" ->
          add (Crash { job = rep.job; reason })
      | _ -> ())
    r.Server.reports;
  (* Every submitted job must reach exactly one terminal outcome. *)
  let s = r.Server.stats in
  let accounted = s.shed + s.completed + s.deadline_exceeded + s.failed in
  if accounted <> s.submitted || List.length r.Server.reports <> s.submitted then
    add (Lost_jobs { submitted = s.submitted; accounted });
  ignore m;
  List.rev !failures

let run_mix m =
  let result = Server.run (config_of_mix m) in
  { mix = m; result; failures = classify m result }

(* Crash-tolerance check: kill the same campaign halfway through its WAL
   (torn record and all), recover from the partial log, and demand the
   recovered decision journal be byte-identical to the uninterrupted
   run's. Any divergence — replay mismatch, missing kill, changed bytes —
   is a [Recovery] failure. *)
let run_mix_recovery m =
  let o = run_mix m in
  let cfg = config_of_mix m in
  let lines = List.length (String.split_on_char '\n' o.result.Server.decisions) - 1 in
  if lines < 2 then o
  else
    let wal = Filename.temp_file "hbc-fuzz" ".wal" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove wal with Sys_error _ -> ())
      (fun () ->
        let kill = Stdlib.max 1 (lines / 2) in
        let killed =
          match Server.run { cfg with wal = Some wal; wal_kill_after = Some kill } with
          | _ -> false
          | exception Server.Killed -> true
        in
        match Server.run { cfg with wal = Some wal } with
        | exception Server.Wal msg ->
            { o with failures = o.failures @ [ Recovery ("wal replay: " ^ msg) ] }
        | recovered ->
            let extra = ref [] in
            if not killed then
              extra := Recovery "kill hook did not fire before campaign end" :: !extra;
            if killed && recovered.Server.wal_replayed = 0 then
              extra := Recovery "recovery replayed no committed WAL lines" :: !extra;
            if recovered.Server.decisions <> o.result.Server.decisions then
              extra :=
                Recovery
                  (Printf.sprintf
                     "recovered decisions diverge from uninterrupted run (%d replayed)"
                     recovered.Server.wal_replayed)
                :: !extra;
            { o with failures = o.failures @ List.rev !extra })
