type config = { refill_period : int; refill_amount : int; burst_cap : int }

let default_config = { refill_period = 100_000; refill_amount = 32; burst_cap = 96 }

type t = {
  cfg : config;
  weights : int array;
  balances : int array;
  emit : time:int -> tenant:int -> amount:int -> unit;
  mutable last_epoch : int;  (* latest epoch already credited; -1 = none *)
}

let create ?(config = default_config) ~weights ~emit () =
  {
    cfg = config;
    weights = Array.copy weights;
    balances = Array.make (Array.length weights) 0;
    emit;
    last_epoch = -1;
  }

let balance t ~tenant = t.balances.(tenant)

let cap t tenant = t.cfg.burst_cap * t.weights.(tenant)

(* Credit every epoch boundary in (last, now], stamping each refill with
   its true boundary time so the trace stays in nondecreasing time order. *)
let advance t ~now =
  let epoch = now / t.cfg.refill_period in
  for e = t.last_epoch + 1 to epoch do
    let time = e * t.cfg.refill_period in
    Array.iteri
      (fun tenant w ->
        let delta = Stdlib.min (t.cfg.refill_amount * w) (cap t tenant - t.balances.(tenant)) in
        if delta > 0 then begin
          t.balances.(tenant) <- t.balances.(tenant) + delta;
          t.emit ~time ~tenant ~amount:delta
        end)
      t.weights
  done;
  if epoch > t.last_epoch then t.last_epoch <- epoch

let grant t ~tenant ~want =
  let g = Stdlib.max 0 (Stdlib.min want t.balances.(tenant)) in
  t.balances.(tenant) <- t.balances.(tenant) - g;
  g

let refund t ~now ~tenant amount =
  let credit = Stdlib.max 0 (Stdlib.min amount (cap t tenant - t.balances.(tenant))) in
  if credit > 0 then begin
    t.balances.(tenant) <- t.balances.(tenant) + credit;
    t.emit ~time:now ~tenant ~amount:credit
  end
