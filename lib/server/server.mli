(** Multi-tenant heartbeat job server over the virtual-time engine.

    A seeded stream of jobs from N tenants — each tenant an open-loop
    {!Arrival.process} over registry workloads — shares one simulated pool
    of workers. The server is itself a deterministic discrete-event
    simulation: admission, fairness, metering, breaker and deadline
    decisions all happen at virtual times, and each started job's service
    time is the makespan of a real inner {!Hbc_core.Executor} run on the
    job's slice of the pool (so deadlines are enforced by the engine's own
    cycle-cap watchdogs, per job, and one job's budget exhaustion can
    never terminate a co-scheduled job).

    Robustness behaviours, all explicit and typed:
    - a full bounded queue sheds at submission ([Rejected "queue-full"]);
    - a tenant tripping its {!Breaker} is quarantined
      ([Rejected "breaker-open"]) instead of stalling the pool;
    - under the default [Cancel] preemption policy a job passing its
      deadline is preempted ([Deadline_exceeded]) with partial results
      journaled and its pool share reclaimed;
    - under [Pause_and_requeue] the deadline draw becomes a per-episode
      compute quantum: the job is cooperatively paused at the quantum
      boundary, its {!Sim.Checkpoint_state} saved, its unconsumed grant
      refunded to the meter, and it re-enters admission with a refreshed
      deadline; the resumed episode continues from the checkpoint (replay
      with a muted trace prefix, byte-verified at the boundary) so a
      completed job's fingerprint is byte-identical to an uninterrupted
      run. Breaker-quarantined submissions are deferred past the cooldown
      instead of shed. After [max_preempts] pauses the final episode runs
      against a hard inner deadline and terminates.
    - promotion opportunities are metered per tenant ({!Meter}), and an
      exhausted grant degrades the job gracefully to serial execution.

    Every decision is emitted as an {!Obs.Trace} event (and mirrored in a
    textual decision journal for byte-identity tests); with [sanitize] the
    run carries a server-level {!Sanitizer.Checker} proving job, budget
    and resume conservation plus one per-job checker — persistent across
    pause/resume episodes — for the scheduler invariants.

    With [wal = Some path] the decision journal is a write-ahead log:
    every line is flushed to disk before the next decision is taken. The
    campaign being a deterministic function of the config, crash recovery
    re-runs it from the start, byte-verifies every regenerated line
    against the committed prefix (raising {!Wal} on divergence), drops a
    torn trailing record, and appends only past the verified prefix — so
    a killed serve process resumes with byte-identical subsequent
    decisions and zero lost or duplicated jobs. *)

type service = Hbc | Tpal of { chunk : int } | Omp of Baselines.Openmp.config

val service_name : service -> string

type preempt_policy =
  | Cancel  (** deadline kills the job; partial results journaled *)
  | Pause_and_requeue
      (** deadline quantum pauses the job at an engine boundary; it
          checkpoints, re-enters admission and later resumes *)

val preempt_name : preempt_policy -> string
(** "cancel" / "pause" — stable CLI and WAL-header names. *)

val preempt_of_string : string -> preempt_policy option

exception Killed
(** Raised by the [wal_kill_after] crash-injection hook after tearing the
    in-flight WAL record — the simulated power cut for recovery tests. *)

exception Wal of string
(** WAL recovery failure: header mismatch (the log belongs to a different
    campaign) or replay divergence against a committed line. *)

type tenant_spec = {
  weight : int;  (** fair-queuing and meter weight (>= 1) *)
  arrival : Arrival.process;
  jobs : int;
  workloads : string list;  (** registry names a job is drawn from *)
  scale : float;
  workers_wanted : int;  (** pool share per job (clamped to the pool) *)
  deadline : (int * int) option;
      (** per-job deadline range, in cycles relative to submission; under
          [Pause_and_requeue] the same draw is the per-episode quantum *)
  cycle_budget : (int * int) option;
      (** per-job livelock watchdog range (inner cycles); hitting it is a
          structural failure, unlike a deadline miss *)
  fault_plan : Sim.Fault_plan.t option;  (** a misbehaving tenant *)
  promotion_want : int;  (** promotion grant requested per job *)
  priority : int;  (** within-tenant queue ordering (higher first) *)
}

val tenant_default : tenant_spec

type config = {
  tenants : tenant_spec array;
  pool : int;  (** simulated workers shared by all jobs (>= 1) *)
  queue_capacity : int;  (** 0 is legal: everything sheds *)
  seed : int;
  service : service;
  rt : Hbc_core.Rt_config.t;  (** base runtime config (workers/seed overridden per job) *)
  breaker : Breaker.config;
  meter : Meter.config;
  sanitize : bool;  (** server-level + per-job invariant checkers *)
  verify : bool;  (** differential-check completed jobs against the serial reference *)
  trace : Obs.Trace.Sink.t;  (** extra sink for the server's own events *)
  preempt : preempt_policy;  (** what a deadline does to a running job *)
  max_preempts : int;
      (** pause/resume episodes (and breaker deferrals) allowed per job
          before the final episode runs against a hard deadline *)
  wal : string option;  (** write the decision journal through a WAL file *)
  wal_kill_after : int option;
      (** crash-injection: after this many WAL appends, tear the next
          record mid-write and raise {!Killed} *)
}

val default_config : config
(** 8-worker pool, 16-deep queue, HBC service, no tenants, [Cancel]
    preemption, no WAL. *)

type outcome =
  | Completed
  | Deadline_exceeded  (** preempted at its deadline (or expired while queued) *)
  | Rejected of string  (** shed at submission: "queue-full" or "breaker-open" *)
  | Failed of string  (** structural: "budget", "guard:*", "crash:*", "mismatch", "invariant" *)

val outcome_name : outcome -> string

type job_report = {
  job : int;
  tenant : int;
  workload : string;
  submit_time : int;
  start_time : int option;  (** None: shed, or expired while queued *)
  finish_time : int;
  outcome : outcome;
  granted : int;  (** metered promotion grants, summed across episodes *)
  promotions : int;  (** promotions actually used (<= granted) *)
  service_cycles : int option;  (** total inner compute across episodes *)
  sojourn : int option;  (** finish - submit, for admitted jobs *)
  work_cycles : int;
  fingerprint : float option;
  mismatch : bool;  (** verify-mode differential failure *)
  episodes : int;  (** completed pause/resume episodes (0: never paused) *)
}

type stats = {
  submitted : int;
  admitted : int;
  shed : int;
  completed : int;
  deadline_exceeded : int;
  failed : int;
  checkpointed : int;  (** pause events across all jobs *)
  resumed : int;  (** resume dispatches across all jobs *)
  sojourn_p50 : float;  (** over completed jobs, in cycles *)
  sojourn_p95 : float;
  sojourn_p99 : float;
  goodput : float;  (** completed work cycles per server cycle *)
  makespan : int;
  breaker_opens : int;
}

type result = {
  reports : job_report list;  (** in job-id (submission) order *)
  stats : stats;
  decisions : string;
      (** textual decision journal, one line per admit/shed/start/
          checkpoint/resume/finish/breaker/refill — byte-identical across
          equal-seed runs, including WAL-recovered ones *)
  violations : (int option * Sanitizer.Checker.violation) list;
      (** (job, violation); [None] is the server-level checker *)
  wal_replayed : int;
      (** committed WAL lines replayed (and byte-verified) before any new
          decision was appended; 0 on a fresh log or without a WAL *)
}

val run : config -> result
(** Deterministic: equal configs (same seed) give equal results, byte for
    byte including {!result.decisions} — and a run recovered from a
    partial WAL produces the same bytes as an uninterrupted one.
    @raise Invalid_argument on an empty pool or a tenant with no
    workloads.
    @raise Wal on WAL header mismatch or replay divergence.
    @raise Killed from the [wal_kill_after] hook. *)

val summary : result -> string
(** One line of counts and tail latencies for CLIs and smoke tests. *)
