(** Multi-tenant heartbeat job server over the virtual-time engine.

    A seeded stream of jobs from N tenants — each tenant an open-loop
    {!Arrival.process} over registry workloads — shares one simulated pool
    of workers. The server is itself a deterministic discrete-event
    simulation: admission, fairness, metering, breaker and deadline
    decisions all happen at virtual times, and each started job's service
    time is the makespan of a real inner {!Hbc_core.Executor} run on the
    job's slice of the pool (so deadlines are enforced by the engine's own
    cycle-cap watchdogs, per job, and one job's budget exhaustion can
    never terminate a co-scheduled job).

    Robustness behaviours, all explicit and typed:
    - a full bounded queue sheds at submission ([Rejected "queue-full"]);
    - a tenant tripping its {!Breaker} is quarantined
      ([Rejected "breaker-open"]) instead of stalling the pool;
    - a job passing its deadline is preempted ([Deadline_exceeded]) with
      partial results journaled and its pool share reclaimed;
    - promotion opportunities are metered per tenant ({!Meter}), and an
      exhausted grant degrades the job gracefully to serial execution.

    Every decision is emitted as an {!Obs.Trace} event (and mirrored in a
    textual decision journal for byte-identity tests); with [sanitize] the
    run carries a server-level {!Sanitizer.Checker} proving job and budget
    conservation plus one per-job checker for the scheduler invariants. *)

type service = Hbc | Tpal of { chunk : int } | Omp of Baselines.Openmp.config

val service_name : service -> string

type tenant_spec = {
  weight : int;  (** fair-queuing and meter weight (>= 1) *)
  arrival : Arrival.process;
  jobs : int;
  workloads : string list;  (** registry names a job is drawn from *)
  scale : float;
  workers_wanted : int;  (** pool share per job (clamped to the pool) *)
  deadline : (int * int) option;
      (** per-job deadline range, in cycles relative to submission *)
  cycle_budget : (int * int) option;
      (** per-job livelock watchdog range (inner cycles); hitting it is a
          structural failure, unlike a deadline miss *)
  fault_plan : Sim.Fault_plan.t option;  (** a misbehaving tenant *)
  promotion_want : int;  (** promotion grant requested per job *)
  priority : int;  (** within-tenant queue ordering (higher first) *)
}

val tenant_default : tenant_spec

type config = {
  tenants : tenant_spec array;
  pool : int;  (** simulated workers shared by all jobs (>= 1) *)
  queue_capacity : int;  (** 0 is legal: everything sheds *)
  seed : int;
  service : service;
  rt : Hbc_core.Rt_config.t;  (** base runtime config (workers/seed overridden per job) *)
  breaker : Breaker.config;
  meter : Meter.config;
  sanitize : bool;  (** server-level + per-job invariant checkers *)
  verify : bool;  (** differential-check completed jobs against the serial reference *)
  trace : Obs.Trace.Sink.t;  (** extra sink for the server's own events *)
}

val default_config : config
(** 8-worker pool, 16-deep queue, HBC service, no tenants. *)

type outcome =
  | Completed
  | Deadline_exceeded  (** preempted at its deadline (or expired while queued) *)
  | Rejected of string  (** shed at submission: "queue-full" or "breaker-open" *)
  | Failed of string  (** structural: "budget", "guard:*", "crash:*", "mismatch", "invariant" *)

val outcome_name : outcome -> string

type job_report = {
  job : int;
  tenant : int;
  workload : string;
  submit_time : int;
  start_time : int option;  (** None: shed, or expired while queued *)
  finish_time : int;
  outcome : outcome;
  granted : int;  (** metered promotion grant *)
  promotions : int;  (** promotions actually used (<= granted) *)
  service_cycles : int option;
  sojourn : int option;  (** finish - submit, for admitted jobs *)
  work_cycles : int;
  fingerprint : float option;
  mismatch : bool;  (** verify-mode differential failure *)
}

type stats = {
  submitted : int;
  admitted : int;
  shed : int;
  completed : int;
  deadline_exceeded : int;
  failed : int;
  sojourn_p50 : float;  (** over completed jobs, in cycles *)
  sojourn_p95 : float;
  sojourn_p99 : float;
  goodput : float;  (** completed work cycles per server cycle *)
  makespan : int;
  breaker_opens : int;
}

type result = {
  reports : job_report list;  (** in job-id (submission) order *)
  stats : stats;
  decisions : string;
      (** textual decision journal, one line per admit/shed/start/finish/
          breaker/refill — byte-identical across equal-seed runs *)
  violations : (int option * Sanitizer.Checker.violation) list;
      (** (job, violation); [None] is the server-level checker *)
}

val run : config -> result
(** Deterministic: equal configs (same seed) give equal results, byte for
    byte including {!result.decisions}.
    @raise Invalid_argument on an empty pool or a tenant with no
    workloads. *)

val summary : result -> string
(** One line of counts and tail latencies for CLIs and smoke tests. *)
