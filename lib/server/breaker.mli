(** Per-tenant circuit breaker: closed -> open -> half-open.

    A tenant whose jobs keep failing (livelocked by its fault plan, blowing
    its cycle budget) is quarantined instead of stalling the shared pool:
    after [failure_threshold] consecutive failures the breaker opens and
    the tenant's submissions are shed with reason "breaker-open". After a
    cooldown — grown exponentially per consecutive open, the same backoff
    shape the experiment harness uses for transient-trial retries — the
    breaker admits a budget of half-open probe jobs; all probes succeeding
    closes it, any probe failing re-opens it with a longer cooldown.

    All decisions are functions of virtual time and recorded outcomes, so
    breaker behaviour is deterministic per seed. *)

type state = Closed | Open | Half_open

val state_name : state -> string
(** "closed" / "open" / "half-open" — the strings carried by
    {!Obs.Trace.Breaker_transition} events. *)

type config = {
  failure_threshold : int;  (** consecutive failures that trip the breaker *)
  cooldown : int;  (** base quarantine, in virtual cycles *)
  backoff : float;  (** cooldown multiplier per consecutive open *)
  probe_budget : int;  (** half-open probe jobs (and successes required to close) *)
}

val default_config : config

type t

val create : ?config:config -> on_transition:(from_state:state -> to_state:state -> unit) -> unit -> t
(** [on_transition] fires on every state change (trace emission hook). *)

val state : t -> state

val admit : t -> now:int -> bool
(** May the tenant submit a job now? Transitions open -> half-open when
    the cooldown has elapsed (the admitted job is the first probe). *)

val record : ?probe:bool -> t -> now:int -> ok:bool -> unit
(** Feed a completed job's outcome back. [ok = false] means the job failed
    structurally (budget/guard/invariant) — deadline misses under overload
    are the server's fault, not the tenant's, and must not be recorded.

    [probe] (default true) says whether the job's ADMISSION consumed a
    half-open probe. Pass false for jobs admitted while the breaker was
    still closed: if such a job completes during a later half-open window
    its success is stale evidence and must not count toward re-closing
    (its failure still re-trips — the tenant demonstrably still fails). *)

val retry_at : t -> now:int -> int
(** Earliest virtual time at which {!admit} could next succeed (strictly
    after [now]); used to defer a submission instead of shedding it. *)
