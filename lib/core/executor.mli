(** The heartbeat runtime (Sec. 5) running a compiled program on the
    simulated multicore machine.

    Worker 0 executes the program's serial driver; invoking a nest runs its
    root loop-slice task. All workers share per-worker task deques under a
    work-stealing discipline with the clone optimization: a promotion pushes
    the two loop-slice halves and the leftover task onto the promoting
    worker's deque, runs them itself if nobody steals them (fast path, no
    synchronization cost), and pays the slow-path synchronization only for
    stolen tasks.

    A promotion (outer-loop-first, Sec. 2) picks the outermost loop of the
    current context chain with at least one remaining iteration, consumes
    its remaining iterations from the running task, splits them into two
    slice tasks, and materializes the leftover task from the leftover table.
    Reductions get fresh locals per slice half, combined at the join. *)

exception Did_not_finish
(** Raised internally when the run exceeds [max_cycles]; reported as
    [dnf = true] in the result. *)

exception Internal_error of string
(** A runtime invariant broke (a bug, not a user error). *)

(** Testing hook: a deliberately plantable scheduler bug, armed by the
    sanitizer tests and the fuzzer's forced-failure mode so the invariant
    checker can be shown to catch real scheduling mistakes. Never armed in
    normal operation. *)
type seeded_bug = Sim_backend.seeded_bug =
  | Duplicate_leftover
      (** the promotion handler pushes the leftover task twice, so its
          iterations execute twice (violates work conservation) *)
  | Lose_stolen_task
      (** one successfully stolen task is dropped on the floor (violates
          deque discipline / loses iterations; typically deadlocks) *)
  | Promote_innermost
      (** the promotion handler inverts the configured policy's direction
          (violates outer-loop-first) *)

val set_seeded_bug : seeded_bug option -> unit
(** Arm (or with [None] disarm) a seeded bug for subsequent runs. Global,
    read once per {!run_program} call. *)

val run_program : ?request:Run_request.t -> Rt_config.t -> 'e Pipeline.program -> Sim.Run_result.t
(** Run one compiled program. The optional {!Run_request.t} carries the
    per-run knobs — DNF cap, trial watchdogs, fault plan, trace sink; the
    default requests a plain, unobserved, uncapped run. Every scheduler
    action is emitted exactly once as an {!Obs.Trace.event} into the
    request's sink (teed with the metrics counting sink); emission never
    perturbs virtual time, so results are independent of the sink. *)

val run : ?request:Run_request.t -> Rt_config.t -> 'e Ir.Program.t -> Sim.Run_result.t
(** Compile (with the chunk mode from the config) and run.
    @deprecated New call sites should go through the backend-agnostic
    facade, [Sched_run.run (Hbc cfg)] — it dispatches between this
    simulator instantiation and the native domains one. *)
