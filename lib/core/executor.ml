exception Did_not_finish

exception Internal_error of string

type status = Done | Promoted of int

type seg_result = Seg_ok | Seg_promoted of int

(* The scheduler proper — deque discipline, steal protocol, joins, task
   lifecycle events — lives in the backend-agnostic policy core; this
   executor is its simulator instantiation plus the cost-annotated nest
   interpreter. The same functor over [Hb_parallel.Domains_backend] runs
   the identical policy on real OCaml 5 domains. *)
module S = Sched.Core.Make (Sim_backend)

type seeded_bug = Sim_backend.seeded_bug =
  | Duplicate_leftover  (* push the leftover task twice on promotion *)
  | Lose_stolen_task  (* drop one successfully stolen task on the floor *)
  | Promote_innermost  (* invert the promotion policy's target choice *)

let seeded_bug : seeded_bug option ref = ref None

let set_seeded_bug b = seeded_bug := b

(* [forbidden]: ordinal of the lowest loop in the enclosing context this
   task does NOT own (its frozen ancestors' iterations belong to the task
   that spawned it); promotions must never split it or anything above it.
   -1 when the task owns its whole chain (the root task). *)
type task_state = { residual : int array; mutable no_promote : bool; mutable forbidden : int }

(* Live-slice registry for checkpoint capture, armed only when the request
   pauses or resumes. One LIFO stack per worker holds the DOALL slice
   activations currently on that worker's fiber; the checkpoint reads each
   context's remaining range in place at the pause boundary. When armed it
   costs two list writes per slice activation and nothing per iteration;
   unarmed runs skip it entirely, keeping the hot path untouched. *)
type live_slice = { ck_key : int; ck_nest : string; ck_ctx : Ir.Ctx.t }

type run_state = {
  cfg : Rt_config.t;
  eng : Sim.Engine.t;
  hb : Heartbeat.t;
  metrics : Sim.Metrics.t;
  trace : Obs.Trace.Sink.t;  (* counting sink teed with the request's sink *)
  capture : bool;  (* the request's sink wants payload events (intervals) *)
  inj : Sim.Fault_injector.t;
  sb : Sim_backend.t;  (* the simulator as a scheduler backend (deques, RNG) *)
  sc : S.t;  (* the shared policy core instantiated over [sb] *)
  ac : (int * int * int, Sched.Adaptive_chunking.t) Hashtbl.t;
  bus : Sim.Membus.t;
  mutable exec_epoch : int;  (* bumped per exec_nest call, part of slice keys *)
  live_slices : live_slice list array option;
      (* per-worker stacks of live DOALL slices; Some only on pause/resume *)
  mutable promo_left : int;
      (* remaining metered promotions (max_int = unmetered); at 0 the run
         degrades gracefully: no more splits, remaining work runs serially *)
}

type 'e nest_handle = { st : run_state; nest : 'e Compiled.nest; nest_id : int; env : 'e }

let cm (st : run_state) = st.cfg.Rt_config.cost

let wid (st : run_state) = Sim.Engine.worker_id st.eng

(* Emit one trace event stamped with the current worker and virtual time.
   Emission never advances the clock or consumes randomness, so a run's
   results are identical whatever sink it carries. *)
let emit (st : run_state) ev =
  Obs.Trace.Sink.emit st.trace ~time:(Sim.Engine.now st.eng) ~worker:(wid st) ev

(* Charge overhead cycles: one engine advance, per-kind attribution. *)
let overhead (st : run_state) kind c =
  if c > 0 then begin
    Sim.Engine.advance st.eng c;
    Sim.Metrics.add_overhead st.metrics kind c
  end

let overheads (st : run_state) parts =
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 parts in
  if total > 0 then begin
    Sim.Engine.advance st.eng total;
    List.iter (fun (k, c) -> if c > 0 then Sim.Metrics.add_overhead st.metrics k c) parts
  end

(* Work plus overheads in a single advance (hot path: one event per chunk).
   Memory traffic is booked on the shared bus; time past the compute cost is
   a bandwidth stall. *)
let advance_mixed (st : run_state) ~work ?(bytes = 0) parts =
  let compute = List.fold_left (fun acc (_, c) -> acc + c) work parts in
  let total = Sim.Membus.serve st.bus ~now:(Sim.Engine.now st.eng) ~compute ~bytes in
  if total > 0 then Sim.Engine.advance st.eng total;
  st.metrics.Sim.Metrics.work_cycles <- st.metrics.Sim.Metrics.work_cycles + work;
  List.iter (fun (k, c) -> if c > 0 then Sim.Metrics.add_overhead st.metrics k c) parts;
  if total > compute then Sim.Metrics.add_overhead st.metrics "membus" (total - compute)

let add_work (st : run_state) c =
  st.metrics.Sim.Metrics.work_cycles <- st.metrics.Sim.Metrics.work_cycles + c;
  if c > 0 then Sim.Engine.advance st.eng c

let reduction_cost (spec : Ir.Locals.spec) =
  8 + (2 * (spec.Ir.Locals.nfloats + spec.Ir.Locals.nints))

let fresh_task_state c =
  {
    residual = Array.make (Ir.Nesting_tree.size c.nest.Compiled.tree) 0;
    no_promote = false;
    forbidden = -1;
  }

let ac_for st ~worker ~nest_id ~ord =
  let key = (worker, nest_id, ord) in
  match Hashtbl.find_opt st.ac key with
  | Some a -> a
  | None ->
      let a =
        Sched.Adaptive_chunking.create ~target_polls:st.cfg.Rt_config.ac_target_polls
          ~window:st.cfg.Rt_config.ac_window ()
      in
      Hashtbl.add st.ac key a;
      a

(* ------------------------------------------------------------------ *)
(* Interpreter for compiled nests.                                      *)
(* ------------------------------------------------------------------ *)

(* Sequential subtree execution for non-DOALL (pruned) loops: pure work,
   accumulated into [acc] and advanced by the caller. *)
let rec serial_loop c (ctxs : Ir.Ctx.set) (l : _ Ir.Nest.loop) acc acc_bytes =
  let ctx = ctxs.(l.Ir.Nest.ordinal) in
  let lo, hi = l.Ir.Nest.bounds c.env ctxs in
  Ir.Ctx.set_slice ctx ~lo ~hi;
  (match l.Ir.Nest.init with Some f -> f c.env ctx.Ir.Ctx.locals | None -> ());
  acc_bytes := !acc_bytes + ((hi - lo) * l.Ir.Nest.bytes_per_iter);
  while ctx.Ir.Ctx.lo < ctx.Ir.Ctx.hi do
    List.iter
      (fun seg ->
        match seg with
        | Ir.Nest.Stmt s -> acc := !acc + s.Ir.Nest.exec c.env ctxs ctx.Ir.Ctx.lo
        | Ir.Nest.Nested child -> serial_loop c ctxs child acc acc_bytes)
      l.Ir.Nest.body;
    ctx.Ir.Ctx.lo <- ctx.Ir.Ctx.lo + 1
  done

(* One leaf iteration: statements plus sequential sub-loops, cost
   accumulated without advancing. *)
let exec_leaf_iteration c ctxs (info : _ Compiled.loop_info) iter acc acc_bytes =
  List.iter
    (fun seg ->
      match seg with
      | Ir.Nest.Stmt s -> acc := !acc + s.Ir.Nest.exec c.env ctxs iter
      | Ir.Nest.Nested child -> serial_loop c ctxs child acc acc_bytes)
    info.Compiled.loop.Ir.Nest.body

(* Sanitizer bookkeeping: a loop-slice *invocation* is identified by the
   iteration vector of its ancestors (each ancestor's current iteration)
   plus the nest id, the loop ordinal, and an execution epoch bumped per
   [exec_nest] call (drivers may run the same nest repeatedly with
   identical bounds). Spawned slice halves and leftover tasks operate on
   copied context sets that preserve the ancestors' iterations, so every
   continuation of an invocation hashes to the same key and the sanitizer
   can check that its [Iter_exec] intervals tile the [Slice_enter] range
   exactly once. Computed only on captured runs. *)
let slice_key c (ctxs : Ir.Ctx.set) ord =
  let h = ref (((c.nest_id + 1) * 8191) + c.st.exec_epoch) in
  List.iter
    (fun o -> if o <> ord then h := (!h * 1000003) + ctxs.(o).Ir.Ctx.lo + 1)
    c.nest.Compiled.infos.(ord).Compiled.chain_from_root;
  ((!h * 1000003) + ord) land max_int

let emit_slice_enter c ctxs ord =
  let st = c.st in
  if st.capture then begin
    let ctx = ctxs.(ord) in
    emit st
      (Obs.Trace.Slice_enter
         {
           nest = c.nest_id;
           ord;
           key = slice_key c ctxs ord;
           lo = ctx.Ir.Ctx.lo;
           hi = ctx.Ir.Ctx.hi;
         })
  end

let emit_iter_exec c ctxs ord ~lo ~hi =
  let st = c.st in
  if st.capture && hi > lo then
    emit st (Obs.Trace.Iter_exec { nest = c.nest_id; ord; key = slice_key c ctxs ord; lo; hi })

let rec run_slice : 'e. 'e nest_handle -> task_state -> Ir.Ctx.set -> int -> status =
 fun c ts ctxs ord ->
  match c.st.live_slices with
  | Some live when c.nest.Compiled.infos.(ord).Compiled.doall ->
      (* Slices never migrate workers mid-run (a task executes on the fiber
         that started it), so registration and removal hit the same stack. *)
      let w = wid c.st in
      live.(w) <-
        {
          ck_key = slice_key c ctxs ord;
          ck_nest = Printf.sprintf "%s#%d" c.nest.Compiled.source_name ord;
          ck_ctx = ctxs.(ord);
        }
        :: live.(w);
      let r = run_slice_body c ts ctxs ord in
      (match live.(w) with _ :: rest -> live.(w) <- rest | [] -> ());
      r
  | _ -> run_slice_body c ts ctxs ord

and run_slice_body : 'e. 'e nest_handle -> task_state -> Ir.Ctx.set -> int -> status =
 fun c ts ctxs ord ->
  let st = c.st in
  let info = c.nest.Compiled.infos.(ord) in
  overheads st
    [
      ("outline-call", (cm st).Sim.Cost_model.outline_call_cost);
      ("closure", (cm st).Sim.Cost_model.closure_load_cost);
    ];
  let ctx = ctxs.(ord) in
  if not info.Compiled.doall then begin
    let acc = ref 0 in
    let acc_bytes = ref ((ctx.Ir.Ctx.hi - ctx.Ir.Ctx.lo) * info.Compiled.loop.Ir.Nest.bytes_per_iter) in
    (* Bounds were set by the caller; re-run the subtree serially. *)
    let saved_lo = ctx.Ir.Ctx.lo and saved_hi = ctx.Ir.Ctx.hi in
    let body_only () =
      while ctx.Ir.Ctx.lo < ctx.Ir.Ctx.hi do
        List.iter
          (fun seg ->
            match seg with
            | Ir.Nest.Stmt s -> acc := !acc + s.Ir.Nest.exec c.env ctxs ctx.Ir.Ctx.lo
            | Ir.Nest.Nested child -> serial_loop c ctxs child acc acc_bytes)
          info.Compiled.loop.Ir.Nest.body;
        ctx.Ir.Ctx.lo <- ctx.Ir.Ctx.lo + 1
      done
    in
    Ir.Ctx.set_slice ctx ~lo:saved_lo ~hi:saved_hi;
    body_only ();
    advance_mixed st ~work:!acc ~bytes:!acc_bytes [];
    Done
  end
  else if info.Compiled.is_leaf then run_leaf c ts ctxs info
  else run_general c ts ctxs info

and run_leaf : 'e. 'e nest_handle -> task_state -> Ir.Ctx.set -> 'e Compiled.loop_info -> status
    =
 fun c ts ctxs info ->
  let st = c.st in
  let costs = cm st in
  let ord = info.Compiled.ordinal in
  let ctx = ctxs.(ord) in
  let w = wid st in
  let ac =
    match info.Compiled.chunk with
    | Compiled.Adaptive -> Some (ac_for st ~worker:w ~nest_id:c.nest_id ~ord)
    | Compiled.Static _ | Compiled.No_chunking -> None
  in
  let transferring = st.cfg.Rt_config.chunk_transferring in
  if not transferring then ts.residual.(ord) <- 0;
  let transfer_cost = if transferring then costs.Sim.Cost_model.chunk_transfer_cost else 0 in
  let result = ref None in
  let handle_beat () =
    (* A detected heartbeat: let AC close its interval, then promote. *)
    (match ac with
    | Some a when st.capture -> (
        (* Capturing runs pay for the full decision record so the sanitizer
           can replay the update rule; plain runs take the alloc-free path. *)
        match Sched.Adaptive_chunking.on_heartbeat_full a with
        | Some d ->
            emit st
              (Obs.Trace.Chunk_update
                 { key = ctxs.(c.nest.Compiled.root).Ir.Ctx.lo; chunk = d.Sched.Adaptive_chunking.new_chunk });
            emit st
              (Obs.Trace.Chunk_decision
                 {
                   key = slice_key c ctxs ord;
                   old_chunk = d.Sched.Adaptive_chunking.old_chunk;
                   min_polls = d.Sched.Adaptive_chunking.min_polls;
                   chunk = d.Sched.Adaptive_chunking.new_chunk;
                 })
        | None -> ())
    | Some a -> (
        match Sched.Adaptive_chunking.on_heartbeat a with
        | Some chunk ->
            emit st
              (Obs.Trace.Chunk_update
                 { key = ctxs.(c.nest.Compiled.root).Ir.Ctx.lo; chunk })
        | None -> ())
    | None -> ());
    if st.cfg.Rt_config.promotion && not ts.no_promote && st.promo_left > 0 then
      promote c ts ctxs info
    else None
  in
  while !result = None && ctx.Ir.Ctx.lo < ctx.Ir.Ctx.hi do
    match info.Compiled.chunk with
    | Compiled.No_chunking ->
        (* Promotion point at every iteration: the configuration Fig. 8 calls
           "No chunking". *)
        let acc = ref 0 in
        let acc_bytes = ref info.Compiled.loop.Ir.Nest.bytes_per_iter in
        exec_leaf_iteration c ctxs info ctx.Ir.Ctx.lo acc acc_bytes;
        emit_iter_exec c ctxs ord ~lo:ctx.Ir.Ctx.lo ~hi:(ctx.Ir.Ctx.lo + 1);
        let poll = Heartbeat.poll_cost st.hb ~worker:w in
        advance_mixed st ~work:!acc ~bytes:!acc_bytes
          [ ("poll", poll); ("promotion-branch", costs.Sim.Cost_model.promotion_branch_cost) ];
        (match ac with Some a -> Sched.Adaptive_chunking.on_poll a | None -> ());
        let beat =
          Heartbeat.consume st.hb ~worker:w ~count_poll:true
          || st.cfg.Rt_config.force_promotion
        in
        if beat then begin
          match handle_beat () with
          | Some s -> result := Some s
          | None -> ctx.Ir.Ctx.lo <- ctx.Ir.Ctx.lo + 1
        end
        else ctx.Ir.Ctx.lo <- ctx.Ir.Ctx.lo + 1
    | Compiled.Static _ | Compiled.Adaptive ->
        let s =
          match info.Compiled.chunk with
          | Compiled.Static s -> s
          | Compiled.Adaptive -> Sched.Adaptive_chunking.chunk_size (Option.get ac)
          | Compiled.No_chunking -> 1
        in
        if ts.residual.(ord) <= 0 then ts.residual.(ord) <- s;
        let start = ctx.Ir.Ctx.lo in
        let n_left = ctx.Ir.Ctx.hi - start in
        let todo = Stdlib.min ts.residual.(ord) n_left in
        let acc = ref 0 in
        let acc_bytes = ref (todo * info.Compiled.loop.Ir.Nest.bytes_per_iter) in
        for k = 0 to todo - 1 do
          ctx.Ir.Ctx.lo <- start + k;
          exec_leaf_iteration c ctxs info (start + k) acc acc_bytes
        done;
        emit_iter_exec c ctxs ord ~lo:start ~hi:(start + todo);
        (* ctx.lo is the last executed iteration: the latch sees it, the
           leftover task resumes at lo + 1. *)
        ts.residual.(ord) <- ts.residual.(ord) - todo;
        let full_chunk = ts.residual.(ord) = 0 in
        if full_chunk then begin
          let poll = Heartbeat.poll_cost st.hb ~worker:w in
          advance_mixed st ~work:!acc ~bytes:!acc_bytes
            [
              ("chunking", 2);
              ("chunk-transfer", transfer_cost);
              ("poll", poll);
              ("promotion-branch", costs.Sim.Cost_model.promotion_branch_cost);
            ];
          (match ac with Some a -> Sched.Adaptive_chunking.on_poll a | None -> ());
          let beat =
            let b = Heartbeat.consume st.hb ~worker:w ~count_poll:true in
            b || st.cfg.Rt_config.force_promotion
          in
          if beat then begin
            match handle_beat () with
            | Some s -> result := Some s
            | None -> ctx.Ir.Ctx.lo <- ctx.Ir.Ctx.lo + 1
          end
          else ctx.Ir.Ctx.lo <- ctx.Ir.Ctx.lo + 1
        end
        else begin
          (* Partial chunk: the invocation ends here and the residual
             transfers to the next invocation of this leaf in this task. *)
          advance_mixed st ~work:!acc ~bytes:!acc_bytes
            [ ("chunking", 2); ("chunk-transfer", transfer_cost) ];
          ctx.Ir.Ctx.lo <- ctx.Ir.Ctx.lo + 1
        end
  done;
  match !result with Some s -> s | None -> Done

and run_general :
    'e. 'e nest_handle -> task_state -> Ir.Ctx.set -> 'e Compiled.loop_info -> status =
 fun c ts ctxs info ->
  let st = c.st in
  let costs = cm st in
  let ctx = ctxs.(info.Compiled.ordinal) in
  let result = ref None in
  while !result = None && ctx.Ir.Ctx.lo < ctx.Ir.Ctx.hi do
    let iter = ctx.Ir.Ctx.lo in
    match run_segments c ts ctxs info info.Compiled.loop.Ir.Nest.body iter with
    | Seg_promoted j when j = info.Compiled.ordinal -> result := Some Done
    | Seg_promoted j -> result := Some (Promoted j)
    | Seg_ok ->
        (* The iteration completed in full inside this task; emitted before
           the latch so a promotion splitting this loop cannot lose it. *)
        emit_iter_exec c ctxs info.Compiled.ordinal ~lo:iter ~hi:(iter + 1);
        (* Latch of a non-leaf DOALL loop: promotion-handler call guarded by
           a branch; the heartbeat visibility itself is the leaf poll's (or
           the interrupt flag), so no poll cost here. The iteration's own
           memory traffic is booked here too. *)
        advance_mixed st ~work:0 ~bytes:info.Compiled.loop.Ir.Nest.bytes_per_iter
          [ ("promotion-branch", costs.Sim.Cost_model.promotion_branch_cost) ];
        let beat =
          Heartbeat.consume st.hb ~worker:(wid st) ~count_poll:false
          || st.cfg.Rt_config.force_promotion
        in
        if beat && st.cfg.Rt_config.promotion && not ts.no_promote && st.promo_left > 0 then begin
          match promote c ts ctxs info with
          | Some s -> result := Some s
          | None -> ctx.Ir.Ctx.lo <- iter + 1
        end
        else ctx.Ir.Ctx.lo <- iter + 1
  done;
  match !result with Some s -> s | None -> Done

and run_segments :
    'e.
    'e nest_handle ->
    task_state ->
    Ir.Ctx.set ->
    'e Compiled.loop_info ->
    'e Ir.Nest.segment list ->
    int ->
    seg_result =
 fun c ts ctxs _info segs iter ->
  let st = c.st in
  let rec go = function
    | [] -> Seg_ok
    | Ir.Nest.Stmt s :: rest ->
        add_work st (s.Ir.Nest.exec c.env ctxs iter);
        go rest
    | Ir.Nest.Nested child :: rest ->
        let cinfo = c.nest.Compiled.infos.(child.Ir.Nest.ordinal) in
        if cinfo.Compiled.doall then begin
          let lo, hi = child.Ir.Nest.bounds c.env ctxs in
          Ir.Ctx.set_slice ctxs.(child.Ir.Nest.ordinal) ~lo ~hi;
          (* A fresh invocation (re)establishes the child's locals; a slice
             resumed by a leftover task keeps its partial state instead. *)
          (match child.Ir.Nest.init with
          | Some f -> f c.env ctxs.(child.Ir.Nest.ordinal).Ir.Ctx.locals
          | None -> ());
          emit_slice_enter c ctxs child.Ir.Nest.ordinal;
          overhead st "lst-store" (cm st).Sim.Cost_model.lst_store_cost;
          match run_slice c ts ctxs child.Ir.Nest.ordinal with
          | Done -> go rest
          | Promoted j -> Seg_promoted j
        end
        else begin
          let acc = ref 0 and acc_bytes = ref 0 in
          serial_loop c ctxs child acc acc_bytes;
          advance_mixed st ~work:!acc ~bytes:!acc_bytes [];
          go rest
        end
  in
  go segs

(* The promotion handler: outer-loop-first split of the current context
   chain, task creation, clone-optimized join. *)
and promote :
    'e. 'e nest_handle -> task_state -> Ir.Ctx.set -> 'e Compiled.loop_info -> status option =
 fun c ts ctxs cur ->
  let st = c.st in
  let ts_forbidden = ts.forbidden in
  (* splitting an ancestor needs its compiled leftover task; with
     Algorithm 1's leaves-only enumeration, promotions at non-leaf latches
     can only split the interrupted loop itself *)
  let statically_splittable o =
    c.nest.Compiled.infos.(o).Compiled.doall
    && (o = cur.Compiled.ordinal
       || Compiled.find_leftover c.nest ~li:cur.Compiled.ordinal ~lj:o <> None)
  in
  let splittable o = statically_splittable o && Ir.Ctx.remaining ctxs.(o) >= 1 in
  (* Only the suffix of the chain below the task's ownership boundary is a
     legal split target: contexts at or above [forbidden] are frozen
     snapshots whose remaining iterations belong to the spawning task. *)
  let chain = Sched.Policy.owned_suffix ~forbidden:ts_forbidden cur.Compiled.chain_from_root in
  let policy =
    if st.sb.Sim_backend.bug = Some Sim_backend.Promote_innermost then
      (* Seeded bug: silently invert the configured policy's direction. *)
      Sched.Policy.invert st.cfg.Rt_config.policy
    else st.cfg.Rt_config.policy
  in
  let target = Sched.Policy.choose_target ~policy ~splittable chain in
  match target with
  | None -> None
  | Some tgt ->
      (* A metered promotion is spent only when a split actually happens:
         beats with no eligible candidate cost nothing. *)
      if st.promo_left <> Stdlib.max_int then st.promo_left <- st.promo_left - 1;
      if st.capture then
        emit st
          (Obs.Trace.Promote_choice
             {
               cur = cur.Compiled.ordinal;
               tgt;
               chain =
                 List.map
                   (fun o -> (o, statically_splittable o, Ir.Ctx.remaining ctxs.(o)))
                   chain;
             });
      let tinfo = c.nest.Compiled.infos.(tgt) in
      emit st (Obs.Trace.promotion tinfo.Compiled.depth);
      overhead st "promotion" (cm st).Sim.Cost_model.promotion_handler_cost;
      let tctx = ctxs.(tgt) in
      let rem_lo = tctx.Ir.Ctx.lo + 1 and rem_hi = tctx.Ir.Ctx.hi in
      (* Consume the remaining iterations from the running task; everything
         from here on belongs to the spawned tasks. *)
      tctx.Ir.Ctx.hi <- tctx.Ir.Ctx.lo + 1;
      let mid = Sched.Policy.split_point ~lo:rem_lo ~hi:rem_hi in
      let join = S.new_join st.sc in
      let reduction = tinfo.Compiled.loop.Ir.Nest.reduction in
      let spawn_slice lo hi =
        if hi > lo then begin
          let nctxs = Ir.Ctx.copy_set ctxs in
          Ir.Ctx.refresh_subtree nctxs ~ordinals:tinfo.Compiled.subtree ~specs:c.nest.Compiled.specs;
          Ir.Ctx.set_slice nctxs.(tgt) ~lo ~hi;
          (match tinfo.Compiled.loop.Ir.Nest.init with
          | Some f -> f c.env nctxs.(tgt).Ir.Ctx.locals
          | None -> ());
          S.add_pending join;
          S.push_task st.sc
            (S.mk_task st.sc (fun () ->
                 let ts' = fresh_task_state c in
                 ts'.forbidden <- Option.value ~default:(-1) tinfo.Compiled.parent;
                 (match run_slice c ts' nctxs tgt with
                 | Done | Promoted _ -> ());
                 (match reduction with
                 | Some combine ->
                     overhead st "reduction" (reduction_cost c.nest.Compiled.specs.(tgt));
                     combine tctx.Ir.Ctx.locals nctxs.(tgt).Ir.Ctx.locals
                 | None -> ());
                 S.finish_join st.sc join))
        end
      in
      spawn_slice rem_lo mid;
      spawn_slice mid rem_hi;
      if tgt <> cur.Compiled.ordinal then begin
        match Compiled.find_leftover c.nest ~li:cur.Compiled.ordinal ~lj:tgt with
        | None ->
            raise
              (Internal_error
                 (Printf.sprintf "missing leftover task for pair (%d, %d)" cur.Compiled.ordinal
                    tgt))
        | Some leftover -> (
            let lctxs = Ir.Ctx.copy_set ctxs in
            match st.cfg.Rt_config.leftover with
            | Rt_config.Spawn ->
                S.add_pending join;
                S.push_task st.sc
                  (S.mk_task st.sc (fun () ->
                       run_leftover c ~no_promote:false lctxs leftover;
                       S.finish_join st.sc join));
                if
                  st.sb.Sim_backend.bug = Some Sim_backend.Duplicate_leftover
                  && not st.sb.Sim_backend.bug_fired
                then begin
                  (* Seeded bug: the leftover is pushed twice; its iterations
                     execute twice (the duplicate gets its own context copy
                     so both runs cover the full range). *)
                  st.sb.Sim_backend.bug_fired <- true;
                  let dctxs = Ir.Ctx.copy_set lctxs in
                  S.add_pending join;
                  S.push_task st.sc
                    (S.mk_task st.sc (fun () ->
                         run_leftover c ~no_promote:false dctxs leftover;
                         S.finish_join st.sc join))
                end
            | Rt_config.Inline ->
                (* TPAL: the leftover stays on the promoting task's critical
                   path — executed here, inside the handler, before the join;
                   it cannot be stolen, but its loops keep their promotion
                   points. *)
                run_leftover c ~no_promote:false lctxs leftover)
      end;
      S.join_wait st.sc join;
      Some (if tgt = cur.Compiled.ordinal then Done else Promoted tgt)

and run_leftover : 'e. 'e nest_handle -> no_promote:bool -> Ir.Ctx.set -> Compiled.leftover -> unit
    =
 fun c ~no_promote ctxs leftover ->
  let st = c.st in
  emit st Obs.Trace.Leftover_run;
  let ts = fresh_task_state c in
  ts.no_promote <- no_promote;
  ts.forbidden <- leftover.Compiled.lj;
  let steps = Array.of_list leftover.Compiled.steps in
  let is_call = function
    | Compiled.Call_slice o -> Some o
    | Compiled.Increase_iv _ | Compiled.Tail_work _ -> None
  in
  let exec step =
    match step with
    | Compiled.Increase_iv o ->
        ctxs.(o).Ir.Ctx.lo <- ctxs.(o).Ir.Ctx.lo + 1;
        Sched.Leftover_walk.Next
    | Compiled.Call_slice o -> (
        match run_slice c ts ctxs o with
        | Done -> Sched.Leftover_walk.Next
        | Promoted j when j = o -> Sched.Leftover_walk.Next
        | Promoted j -> Sched.Leftover_walk.Skip_past j)
    | Compiled.Tail_work { of_; after } -> (
        let info = c.nest.Compiled.infos.(of_) in
        let segs = Compiled.tail_of info ~after in
        match run_segments c ts ctxs info segs ctxs.(of_).Ir.Ctx.lo with
        | Seg_ok ->
            (* The tail just completed the in-flight iteration of [of_] that
               the promotion interrupted — it is only now fully executed. *)
            emit_iter_exec c ctxs of_ ~lo:ctxs.(of_).Ir.Ctx.lo ~hi:(ctxs.(of_).Ir.Ctx.lo + 1);
            Sched.Leftover_walk.Next
        | Seg_promoted j -> Sched.Leftover_walk.Skip_past j)
  in
  try Sched.Leftover_walk.run ~steps ~is_call ~exec
  with Sched.Leftover_walk.Missing_call j ->
    raise (Internal_error (Printf.sprintf "leftover skip: no Call_slice %d" j))

(* ------------------------------------------------------------------ *)
(* Top level.                                                           *)
(* ------------------------------------------------------------------ *)

let exec_nest st (compiled : 'e Pipeline.program) (env : 'e) nest =
  let rec find i = function
    | [] -> raise (Internal_error "exec of a nest the program did not declare")
    | (src, cn) :: rest -> if src == nest then (i, cn) else find (i + 1) rest
  in
  let nest_id, cn = find 0 compiled.Pipeline.nests in
  st.exec_epoch <- st.exec_epoch + 1;
  let c = { st; nest = cn; nest_id; env } in
  let n = Ir.Nesting_tree.size cn.Compiled.tree in
  let ctxs = Array.init n (fun o -> Ir.Ctx.make ~ordinal:o ~spec:cn.Compiled.specs.(o)) in
  let root = cn.Compiled.root in
  let rinfo = cn.Compiled.infos.(root) in
  let lo, hi = rinfo.Compiled.loop.Ir.Nest.bounds env ctxs in
  Ir.Ctx.set_slice ctxs.(root) ~lo ~hi;
  (match rinfo.Compiled.loop.Ir.Nest.init with
  | Some f -> f env ctxs.(root).Ir.Ctx.locals
  | None -> ());
  if rinfo.Compiled.doall then emit_slice_enter c ctxs root;
  overhead st "lst-store" (cm st).Sim.Cost_model.lst_store_cost;
  let ts = fresh_task_state c in
  (match run_slice c ts ctxs root with
  | Done -> ()
  | Promoted _ -> raise (Internal_error "root slice reported an ancestor promotion"));
  match rinfo.Compiled.loop.Ir.Nest.commit with Some f -> f env ctxs | None -> ()

let run_program ?(request = Run_request.default) (cfg : Rt_config.t)
    (compiled : 'e Pipeline.program) : Sim.Run_result.t =
  let program = compiled.Pipeline.source in
  let env = program.Ir.Program.make_env () in
  let eng = Sim.Engine.create ~seed:cfg.Rt_config.seed ~num_workers:cfg.Rt_config.workers () in
  let metrics = Sim.Metrics.create () in
  (* On resume the request's sink is muted until the replay passes the
     pause boundary: the observer already saw every earlier event during
     the original episodes, so the per-episode streams tile the
     uninterrupted stream exactly once. The counting sink is NOT gated —
     the replay re-derives the counters from cycle 0, which is exactly
     what makes the final metrics byte-identical to an uninterrupted
     run. *)
  let resuming = Option.is_some request.Run_request.resume_from in
  let gate = ref (not resuming) in
  let observer =
    if resuming && Obs.Trace.Sink.enabled request.Run_request.trace then
      Obs.Trace.Sink.fn (fun ~time ~worker ev ->
          if !gate then Obs.Trace.Sink.emit request.Run_request.trace ~time ~worker ev)
    else request.Run_request.trace
  in
  (* Every runtime event flows through one tee: the counting sink keeps
     the scalar counters; the request's sink is whatever the caller wants
     to observe (usually null). *)
  let trace = Obs.Trace.Sink.tee (Sim.Metrics.counting_sink metrics) observer in
  let inj =
    Sim.Fault_injector.create
      (Option.value request.Run_request.fault_plan ~default:Sim.Fault_plan.none)
      ~num_workers:cfg.Rt_config.workers ~trace
      ~now:(fun () -> Sim.Engine.now eng)
      ()
  in
  let hb = Heartbeat.create ~injector:inj ~trace cfg eng metrics in
  let capture = Obs.Trace.Sink.enabled request.Run_request.trace in
  let sb =
    Sim_backend.create ~eng ~cost:cfg.Rt_config.cost ~metrics ~trace ~capture ~inj ~hb
      ~workers:cfg.Rt_config.workers ~bug:!seeded_bug
  in
  let st =
    {
      cfg;
      eng;
      hb;
      metrics;
      trace;
      capture;
      inj;
      sb;
      sc = S.create sb;
      ac = Hashtbl.create 64;
      bus = Sim.Membus.create ~bytes_per_cycle:cfg.Rt_config.cost.Sim.Cost_model.dram_bytes_per_cycle;
      exec_epoch = 0;
      live_slices =
        (if resuming || Option.is_some request.Run_request.pause_at then
           Some (Array.make cfg.Rt_config.workers [])
         else None);
      promo_left =
        (match request.Run_request.resume_from with
        | Some ck -> (
            (* The replay restarts from cycle 0 under the first episode's
               grant; this episode's own grant applies at the boundary. *)
            match ck.Sim.Checkpoint_state.granted with
            | Some g -> Stdlib.max 0 g
            | None -> Stdlib.max_int)
        | None -> (
            match request.Run_request.promotion_budget with
            | Some b -> Stdlib.max 0 b
            | None -> Stdlib.max_int));
    }
  in
  Sim.Engine.set_diagnostics eng (fun w ->
      Printf.sprintf " deque=%d depth=%d%s"
        (Sim.Deque.length st.sb.Sim_backend.deques.(w))
        (S.depth st.sc).(w)
        (if Heartbeat.is_downgraded hb ~worker:w then " downgraded" else ""));
  Heartbeat.start hb;
  (* A per-job deadline is a second DNF-style cap: whichever of the two
     fires first preempts the run, and the server maps a deadline-armed
     DNF to its structured Deadline_exceeded outcome. *)
  (match (request.Run_request.max_cycles, request.Run_request.deadline) with
  | None, None -> ()
  | caps ->
      let cap =
        match caps with
        | Some a, Some b -> Stdlib.min a b
        | Some a, None | None, Some a -> a
        | None, None -> assert false
      in
      Sim.Engine.schedule_at eng ~time:cap (fun () -> raise Did_not_finish));
  (match request.Run_request.cycle_budget with
  | Some budget -> Sim.Engine.set_budget eng budget
  | None -> ());
  (match request.Run_request.guard with
  | Some guard -> Sim.Engine.set_guard eng guard
  | None -> ());
  let termination = ref Sim.Run_result.Finished in
  let main w =
    if w = 0 then begin
      (* The driver itself counts as task depth so inline tasks do not
         clear worker 0's busy flag when they finish. *)
      (S.depth st.sc).(0) <- 1;
      Heartbeat.set_busy hb ~worker:0 true;
      let cpu =
        {
          Ir.Program.exec = (fun nest -> exec_nest st compiled env nest);
          advance = (fun cyc -> add_work st cyc);
        }
      in
      let t0 = Sim.Engine.now eng in
      program.Ir.Program.driver env cpu;
      if st.capture && Sim.Engine.now eng > t0 then
        emit st (Obs.Trace.Interval { t0; kind = "driver" });
      (S.depth st.sc).(0) <- 0;
      Heartbeat.set_busy hb ~worker:0 false;
      S.set_finished st.sc;
      Heartbeat.stop hb;
      Sim.Engine.unpark_all eng
    end
    else S.scavenge st.sc
  in
  (* Observational state at the pause boundary the engine just stopped at.
     Every field is a pure function of the dispatch history, so an
     uninterrupted replay reaching the same boundary re-derives the same
     bytes — that is the resume-divergence check. *)
  let checkpoint_now ~at_cycle ~episode ~granted ~regrants =
    let live = match st.live_slices with Some l -> l | None -> [||] in
    let slices =
      List.concat
        (List.init (Array.length live) (fun w ->
             (* stacks are LIFO; serialize bottom-to-top for a stable order *)
             List.rev_map
               (fun e ->
                 {
                   Sim.Checkpoint_state.sl_worker = w;
                   sl_task = e.ck_key;
                   sl_nest = e.ck_nest;
                   sl_lo = e.ck_ctx.Ir.Ctx.lo;
                   sl_hi = e.ck_ctx.Ir.Ctx.hi;
                 })
               live.(w)))
    in
    {
      Sim.Checkpoint_state.at_cycle;
      episode;
      rng_state = Sim.Sim_rng.state (Sim.Engine.rng eng);
      next_task_id = S.next_task_id st.sc;
      work_cycles = metrics.Sim.Metrics.work_cycles;
      promotions_used = metrics.Sim.Metrics.promotions;
      granted;
      regrants;
      clocks = Array.init cfg.Rt_config.workers (fun w -> Sim.Engine.clock_of eng w);
      deques =
        Array.map
          (fun d -> List.map (fun (t : Sched.Task.t) -> t.Sched.Task.id) (Sim.Deque.to_list d))
          st.sb.Sim_backend.deques;
      slices;
    }
  in
  (try
     match request.Run_request.resume_from with
     | None ->
         (match request.Run_request.pause_at with
         | Some p -> Sim.Engine.set_pause_at eng p
         | None -> ());
         Sim.Engine.run eng main;
         if Sim.Engine.paused eng then
           termination :=
             Sim.Run_result.Paused
               (checkpoint_now
                  ~at_cycle:(Option.get request.Run_request.pause_at)
                  ~episode:1 ~granted:request.Run_request.promotion_budget ~regrants:[])
     | Some ck ->
         (* Effect fibers cannot be serialized, so resume replays the run
            from cycle 0 — determinism makes the replay byte-exact — and
            proves the re-derived boundary state matches the checkpoint
            before continuing past it. *)
         let ok = ref true in
         let diverged reason =
           ok := false;
           termination := Sim.Run_result.Guard_aborted ("resume-divergence: " ^ reason)
         in
         let started = ref false in
         let run_to cycle =
           Sim.Engine.set_pause_at eng cycle;
           if !started then Sim.Engine.continue_run eng
           else begin
             started := true;
             Sim.Engine.run eng main
           end;
           if not (Sim.Engine.paused eng) then
             diverged (Printf.sprintf "run finished before the boundary at cycle %d" cycle)
         in
         (* Re-apply the grant history so metered promotion decisions replay
            exactly as in the original episodes. *)
         List.iter
           (fun (cycle, grant) ->
             if !ok then begin
               run_to cycle;
               if !ok && grant >= 0 then st.promo_left <- grant
             end)
           ck.Sim.Checkpoint_state.regrants;
         if !ok then run_to ck.Sim.Checkpoint_state.at_cycle;
         if !ok then begin
           let derived =
             checkpoint_now ~at_cycle:ck.Sim.Checkpoint_state.at_cycle
               ~episode:ck.Sim.Checkpoint_state.episode
               ~granted:ck.Sim.Checkpoint_state.granted
               ~regrants:ck.Sim.Checkpoint_state.regrants
           in
           if not (Sim.Checkpoint_state.equal derived ck) then
             diverged
               (Printf.sprintf "replayed state %s does not match checkpoint %s"
                  (Sim.Checkpoint_state.digest derived)
                  (Sim.Checkpoint_state.digest ck))
           else begin
             (* The replay reproduced the paused state exactly: open the
                gate, apply this episode's grant (None keeps the remaining
                balance, which is what byte-identical continuation needs),
                and run for real. *)
             gate := true;
             let applied =
               match request.Run_request.promotion_budget with
               | Some g ->
                   st.promo_left <- Stdlib.max 0 g;
                   Stdlib.max 0 g
               | None -> -1
             in
             (match request.Run_request.pause_at with
             | Some p when p > ck.Sim.Checkpoint_state.at_cycle -> Sim.Engine.set_pause_at eng p
             | Some _ | None -> Sim.Engine.clear_pause eng);
             Sim.Engine.continue_run eng;
             if Sim.Engine.paused eng then
               termination :=
                 Sim.Run_result.Paused
                   (checkpoint_now
                      ~at_cycle:(Option.get request.Run_request.pause_at)
                      ~episode:(ck.Sim.Checkpoint_state.episode + 1)
                      ~granted:ck.Sim.Checkpoint_state.granted
                      ~regrants:
                        (ck.Sim.Checkpoint_state.regrants
                        @ [ (ck.Sim.Checkpoint_state.at_cycle, applied) ]))
           end
         end
   with
  | Did_not_finish -> termination := Sim.Run_result.Dnf
  | Sim.Engine.Budget_exceeded { budget; time } ->
      termination := Sim.Run_result.Budget_exceeded { budget; at = time }
  | Sim.Engine.Guard_stop reason -> termination := Sim.Run_result.Guard_aborted reason);
  {
    Sim.Run_result.makespan = Sim.Engine.max_time eng;
    metrics;
    fingerprint = program.Ir.Program.fingerprint env;
    work_cycles = metrics.Sim.Metrics.work_cycles;
    dnf = (!termination = Sim.Run_result.Dnf);
    termination = !termination;
    trace = Obs.Trace.Sink.captured request.Run_request.trace;
    sanitizer = None;
  }

let run ?request cfg program =
  run_program ?request cfg (Pipeline.compile_program ~chunk:cfg.Rt_config.chunk program)
