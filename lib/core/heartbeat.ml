type t = {
  config : Rt_config.t;
  eng : Sim.Engine.t;
  metrics : Sim.Metrics.t;
  trace : Obs.Trace.Sink.t;
  inj : Sim.Fault_injector.t;
  busy : bool array;
  (* software polling: index of the last heartbeat interval seen per worker *)
  last_interval : int array;
  (* interrupt mechanisms: pending-delivery flags *)
  pending : bool array;
  (* starvation watchdog: consecutive missed/undelivered beats per busy
     worker; at [watchdog_k] the worker falls back to software polling *)
  missed_streak : int array;
  downgraded : bool array;
  mutable cancel : (unit -> unit) option;
  mutable stopped : bool;
  mutable stretch_debt : int;  (* ping thread: accumulated period overrun *)
}

let create ?injector ?trace config eng metrics =
  let n = Sim.Engine.num_workers eng in
  let inj =
    match injector with Some i -> i | None -> Sim.Fault_injector.inactive ~num_workers:n
  in
  (* Standalone users get heartbeat counters for free; the executor passes
     its full tee (counting sink + the run request's sink) instead. *)
  let trace =
    match trace with Some s -> s | None -> Sim.Metrics.counting_sink metrics
  in
  {
    config;
    eng;
    metrics;
    trace;
    inj;
    busy = Array.make n false;
    last_interval = Array.make n 0;
    pending = Array.make n false;
    missed_streak = Array.make n 0;
    downgraded = Array.make n false;
    cancel = None;
    stopped = false;
    stretch_debt = 0;
  }

let interval t = t.config.Rt_config.cost.Sim.Cost_model.heartbeat_interval

let emit t w ev = Obs.Trace.Sink.emit t.trace ~time:(Sim.Engine.now t.eng) ~worker:w ev

(* A downgraded worker has left the interrupt pool: it neither receives
   broadcast/signal beats nor pays delivery costs — it polls. *)
let effective t worker =
  if t.downgraded.(worker) then Rt_config.Software_polling else t.config.Rt_config.mechanism

let is_downgraded t ~worker = t.downgraded.(worker)

(* Watchdog accounting. Only armed while fault injection is active, so the
   graceful-degradation path cannot perturb a fault-free run. *)
let note_missed t w =
  if
    Sim.Fault_injector.active t.inj
    && t.config.Rt_config.mechanism <> Rt_config.Software_polling
    && not t.downgraded.(w)
  then begin
    t.missed_streak.(w) <- t.missed_streak.(w) + 1;
    if t.missed_streak.(w) >= t.config.Rt_config.watchdog_k then begin
      t.downgraded.(w) <- true;
      emit t w Obs.Trace.Mechanism_downgrade;
      (* The polling baseline starts at the downgrade instant so the idle
         backlog does not surface as a burst of beats. *)
      t.last_interval.(w) <- Sim.Engine.now t.eng / interval t
    end
  end

(* A beat reaching worker [w]'s pending flag; an unconsumed previous beat is
   overwritten and counts missed (and feeds the watchdog). *)
let deliver t w =
  if t.pending.(w) then begin
    emit t w Obs.Trace.Heartbeat_missed;
    note_missed t w
  end
  else t.pending.(w) <- true

let kernel_module_beat t () =
  for w = 0 to Array.length t.busy - 1 do
    if t.busy.(w) && not t.downgraded.(w) then begin
      emit t w Obs.Trace.Heartbeat_generated;
      if Sim.Fault_injector.drop_beat t.inj ~worker:w then begin
        emit t w Obs.Trace.Heartbeat_missed;
        note_missed t w
      end
      else begin
        let j = Sim.Fault_injector.delivery_jitter t.inj ~worker:w in
        if j = 0 then deliver t w
        else
          Sim.Engine.schedule_at t.eng ~time:(Sim.Engine.now t.eng + j) (fun () ->
              if not t.downgraded.(w) then deliver t w)
      end
    end
  done

(* The ping thread is one sequential sender: each beat it walks the busy
   workers issuing one POSIX signal at a time. When signaling the team takes
   longer than the heartbeat interval, the next beat starts late — the
   effective heartbeat rate stretches and the difference shows up as missed
   beats, uniformly over workers (the paper reports up to 45% missed). *)
let rec ping_thread_beat t scheduled_time () =
  if not t.stopped then begin
    let beat_time = Sim.Engine.now t.eng in
    let send = t.config.Rt_config.cost.Sim.Cost_model.signal_send_cost in
    let busy_workers = ref [] in
    for w = Array.length t.busy - 1 downto 0 do
      if t.busy.(w) && not t.downgraded.(w) then busy_workers := w :: !busy_workers
    done;
    let finish = ref beat_time in
    List.iteri
      (fun i w ->
        (* the sender spends the send slot whether or not the signal is
           lost or delayed in delivery *)
        let delivery = beat_time + ((i + 1) * send) in
        finish := delivery;
        emit t w Obs.Trace.Heartbeat_generated;
        if Sim.Fault_injector.drop_beat t.inj ~worker:w then begin
          emit t w Obs.Trace.Heartbeat_missed;
          note_missed t w
        end
        else begin
          let j = Sim.Fault_injector.delivery_jitter t.inj ~worker:w in
          Sim.Engine.schedule_at t.eng ~time:(delivery + j) (fun () ->
              if not t.downgraded.(w) then deliver t w)
        end)
      !busy_workers;
    (* Next beat: on schedule if the team was signaled in time, otherwise as
       soon as the sender is free; skipped periods are lost heartbeats. *)
    let next_nominal = scheduled_time + interval t in
    let next = Stdlib.max next_nominal !finish in
    (* Period overrun accumulates; every full interval of accumulated debt
       is one heartbeat the machine never received — generated and missed,
       one pair of events per busy worker. *)
    t.stretch_debt <- t.stretch_debt + (next - next_nominal);
    while t.stretch_debt >= interval t do
      t.stretch_debt <- t.stretch_debt - interval t;
      List.iter
        (fun w ->
          emit t w Obs.Trace.Heartbeat_generated;
          emit t w Obs.Trace.Heartbeat_missed)
        !busy_workers
    done;
    Sim.Engine.schedule_at t.eng ~time:next (ping_thread_beat t next)
  end

let start t =
  let arm beat =
    t.cancel <- Some (Sim.Engine.every t.eng ~start:(interval t) ~interval:(interval t) beat)
  in
  match t.config.Rt_config.mechanism with
  | Rt_config.Software_polling -> ()
  | Rt_config.Interrupt_kernel_module -> arm (kernel_module_beat t)
  | Rt_config.Interrupt_ping_thread ->
      Sim.Engine.schedule_at t.eng ~time:(interval t) (ping_thread_beat t (interval t))

let stop t =
  t.stopped <- true;
  match t.cancel with
  | Some cancel ->
      cancel ();
      t.cancel <- None
  | None -> ()

let set_busy t ~worker v =
  t.busy.(worker) <- v;
  if v && effective t worker = Rt_config.Software_polling then
    t.last_interval.(worker) <- Sim.Engine.now t.eng / interval t

let poll_cost t ~worker =
  match effective t worker with
  | Rt_config.Software_polling -> t.config.Rt_config.cost.Sim.Cost_model.poll_cost
  | Rt_config.Interrupt_kernel_module | Rt_config.Interrupt_ping_thread -> 0

let consume t ~worker ~count_poll =
  let cm = t.config.Rt_config.cost in
  match effective t worker with
  | Rt_config.Software_polling ->
      if count_poll then emit t worker Obs.Trace.Poll;
      let cur = Sim.Engine.now t.eng / interval t in
      let last = t.last_interval.(worker) in
      if cur > last then begin
        t.last_interval.(worker) <- cur;
        (* One event per beat in the gap: the one this poll detects plus
           [gap - 1] the worker slept through. *)
        let gap = cur - last in
        for _ = 1 to gap do
          emit t worker Obs.Trace.Heartbeat_generated
        done;
        emit t worker Obs.Trace.Heartbeat_detected;
        for _ = 1 to gap - 1 do
          emit t worker Obs.Trace.Heartbeat_missed
        done;
        true
      end
      else false
  | (Rt_config.Interrupt_kernel_module | Rt_config.Interrupt_ping_thread) as mech ->
      if t.pending.(worker) then begin
        t.pending.(worker) <- false;
        t.missed_streak.(worker) <- 0;
        let c =
          (match mech with
          | Rt_config.Interrupt_kernel_module -> cm.Sim.Cost_model.interrupt_delivery_cost
          | Rt_config.Interrupt_ping_thread -> cm.Sim.Cost_model.signal_delivery_cost
          | Rt_config.Software_polling -> 0)
          + cm.Sim.Cost_model.rollforward_lookup_cost
        in
        Sim.Engine.advance t.eng c;
        Sim.Metrics.add_overhead t.metrics "interrupt" c;
        emit t worker Obs.Trace.Heartbeat_detected;
        true
      end
      else false
