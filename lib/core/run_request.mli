(** Per-run knobs, separated from the runtime configuration.

    {!Rt_config.t} describes the {e runtime being measured} — mechanism,
    chunking, costs, seed. A [Run_request.t] describes how {e one run} of
    it is driven and observed: DNF cap, trial watchdogs, fault plan, and
    the trace sink events are recorded into. Every executor front end
    ({!Executor}, [Baselines.Openmp], [Baselines.Serial_exec]) takes the
    same record through one labelled constructor, so the harness and tests
    no longer thread parallel optional arguments. *)

type t = {
  backend : Sched.Policy.backend_kind;
      (** which scheduler backend executes the run: [Sim] (the default),
          the virtual-time engine, or [Domains], real OCaml 5 domains via
          the native runner. Dispatched by the [Sched_run] facade;
          signature-keyed — a native trial never aliases a simulated one. *)
  max_cycles : int option;
      (** DNF cap on virtual time (the paper's did-not-finish semantics) *)
  cycle_budget : int option;
      (** per-trial virtual-cycle watchdog: aborts with
          [Run_result.Budget_exceeded] instead of letting a livelock spin
          forever. Unlike [max_cycles], hitting it is a trial error. *)
  guard : (unit -> string option) option;
      (** external abort hook polled during the run (wall-clock deadlines);
          [Some reason] yields a [Guard_aborted] termination *)
  fault_plan : Sim.Fault_plan.t option;
      (** opt-in deterministic fault injection; [None] (and any zero plan)
          leaves the run bit-identical to the fault-free runtime *)
  trace : Obs.Trace.Sink.t;
      (** where the run emits its trace events; {!Obs.Trace.Sink.null}
          (the default) records nothing and costs nothing *)
  sanitize : bool;
      (** declarative marker: the run's sink includes an invariant
          sanitizer. The executor treats it as any other sink; the flag
          exists so sanitized and unsanitized runs never alias in the
          journal (a sanitized run observes payload events an unsanitized
          run's journal entry would claim it had not) *)
  fuzz_case : string option;
      (** content hash of the fuzz case that produced this request, when
          the run is a fuzzer trial; journal-keyed like [sanitize] *)
  tenant : int option;
      (** serve-mode owner of the run; journal-keyed so one tenant's trial
          can never satisfy another tenant's cache lookup *)
  deadline : int option;
      (** per-job deadline in virtual cycles: a second DNF-style cap (the
          effective cap is the min of [max_cycles] and [deadline]); the
          server maps a deadline-cut run to [Deadline_exceeded] *)
  priority : int;
      (** admission-queue ordering hint within a tenant (higher first);
          0 for plain runs *)
  promotion_budget : int option;
      (** metered promotion grant: after this many promotions the executor
          stops splitting and degrades gracefully to serial execution of
          the remaining work. [None] is unmetered. *)
  pause_at : int option;
      (** cooperative preemption boundary in virtual cycles: the run stops
          at the first event at or past this time and terminates with
          [Run_result.Paused] carrying a {!Sim.Checkpoint_state} (unless it
          finishes first). *)
  resume_from : Sim.Checkpoint_state.t option;
      (** resume a previously paused run: the executor replays the job from
          cycle 0 with trace emission muted up to the checkpoint boundary,
          byte-verifies the re-derived checkpoint against this one, then
          continues live. Divergence aborts with [Guard_aborted]. *)
}

val default : t
(** No caps, no watchdogs, no faults, null sink. *)

val make :
  ?backend:Sched.Policy.backend_kind ->
  ?max_cycles:int ->
  ?cycle_budget:int ->
  ?guard:(unit -> string option) ->
  ?fault_plan:Sim.Fault_plan.t ->
  ?trace:Obs.Trace.Sink.t ->
  ?sanitize:bool ->
  ?fuzz_case:string ->
  ?tenant:int ->
  ?deadline:int ->
  ?priority:int ->
  ?promotion_budget:int ->
  ?pause_at:int ->
  ?resume_from:Sim.Checkpoint_state.t ->
  unit ->
  t

val signature : t -> string
(** Hex content hash of the request's result-affecting fields — the
    backend, the fault plan, the DNF cap, whether the sink captures records (a traced trial
    carries a trace in the journal; an untraced one must not alias it),
    the [sanitize] bit, the fuzz-case hash, and the serve-mode fields
    (tenant, deadline, priority, promotion budget — each changes what a
    run produces or whom its journal entry belongs to, so serve-mode
    entries never alias plain trials). [pause_at] and the [resume_from]
    checkpoint (hashed via its byte-stable codec) are included: a paused
    episode and an uninterrupted run of the same job produce different
    results and must never alias. Budgets, guards, and the sink closure
    itself are excluded: they never change a completed run's outcome.
    Combined with {!Rt_config.signature} to key journal entries. *)
