(* The virtual-time simulator as a {!Sched.Backend_intf.BACKEND}: worker
   identity and time come from the engine, deques are [Sim.Deque], costs
   advance the engine clock with per-kind metrics attribution, and idling
   is engine parking behind the fault-aware exponential backoff. The
   engine is single-fibered, so [critical] is a plain call and emission
   order is exactly the historical executor's — the functor instantiation
   is byte-identical to the pre-refactor code. *)

(* Deliberately plantable scheduler bugs, exercised by the sanitizer tests
   and the fuzzer's forced-failure mode. Testing hook: never armed in
   normal operation. *)
type seeded_bug =
  | Duplicate_leftover  (* push the leftover task twice on promotion *)
  | Lose_stolen_task  (* drop one successfully stolen task on the floor *)
  | Promote_innermost  (* invert the promotion policy's target choice *)

type t = {
  eng : Sim.Engine.t;
  cost : Sim.Cost_model.t;
  metrics : Sim.Metrics.t;
  trace : Obs.Trace.Sink.t;  (* counting sink teed with the request's sink *)
  capture : bool;  (* the request's sink wants payload events *)
  inj : Sim.Fault_injector.t;
  hb : Heartbeat.t;
  deques : Sched.Task.t Sim.Deque.t array;
  steal_fails : int array;  (* consecutive dry steal rounds, drives backoff *)
  bug : seeded_bug option;  (* armed seeded scheduler bug (tests/fuzzer) *)
  mutable bug_fired : bool;  (* one-shot bugs fire at most once per run *)
}

let create ~eng ~cost ~metrics ~trace ~capture ~inj ~hb ~workers ~bug =
  {
    eng;
    cost;
    metrics;
    trace;
    capture;
    inj;
    hb;
    deques = Array.init workers (fun _ -> Sim.Deque.create ());
    steal_fails = Array.make workers 0;
    bug;
    bug_fired = false;
  }

let num_workers b = Array.length b.deques

let worker_id b = Sim.Engine.worker_id b.eng

let now b = Sim.Engine.now b.eng

let capture b = b.capture

let critical _b f = f ()

let emit b ev = Obs.Trace.Sink.emit b.trace ~time:(now b) ~worker:(worker_id b) ev

(* Charge overhead cycles: one engine advance, per-kind attribution. *)
let overhead b kind c =
  if c > 0 then begin
    Sim.Engine.advance b.eng c;
    Sim.Metrics.add_overhead b.metrics kind c
  end

let push b task = Sim.Deque.push_bottom b.deques.(worker_id b) task

let pop b = Sim.Deque.pop_bottom b.deques.(worker_id b)

let steal_from b ~victim = Sim.Deque.steal b.deques.(victim)

let deque_empty b ~worker = Sim.Deque.is_empty b.deques.(worker)

let random_victim b = Sim.Sim_rng.int (Sim.Engine.rng b.eng) (num_workers b)

let steal_vetoed b = Sim.Fault_injector.steal_fails b.inj ~worker:(worker_id b)

let keep_stolen b _task =
  if b.bug = Some Lose_stolen_task && not b.bug_fired then begin
    (* Seeded bug: the stolen task vanishes — removed from the victim's
       deque but never executed. *)
    b.bug_fired <- true;
    false
  end
  else true

(* Injected OS-preemption stall at a scheduling point (no-op without an
   active fault plan). *)
let pre_task b =
  let c = Sim.Fault_injector.stall_cycles b.inj ~worker:(worker_id b) in
  if c > 0 then begin
    Sim.Engine.advance b.eng c;
    Sim.Metrics.add_overhead b.metrics "fault-stall" c
  end

let on_task_claim b = b.steal_fails.(worker_id b) <- 0

let wake_one b =
  let n = num_workers b in
  let start = Sim.Sim_rng.int (Sim.Engine.rng b.eng) n in
  let rec find k =
    if k < n then begin
      let w = (start + k) mod n in
      if Sim.Engine.is_parked b.eng w then Sim.Engine.unpark b.eng w else find (k + 1)
    end
  in
  find 0

let unpark b ~worker = Sim.Engine.unpark b.eng worker

(* A dry steal round under fault injection backs off exponentially (base
   [idle_backoff], jittered, bounded) before parking: parking instantly
   makes a worker blind to the end of an injected contention burst, while
   unbounded spinning burns the makespan. Zero-fault runs park
   immediately, exactly as before. *)
let backoff_rounds = 6

let should_park b =
  if not (Sim.Fault_injector.active b.inj) then true
  else begin
    let w = worker_id b in
    let f = b.steal_fails.(w) in
    if f >= backoff_rounds then begin
      b.steal_fails.(w) <- 0;
      true
    end
    else begin
      b.steal_fails.(w) <- f + 1;
      let d = b.cost.Sim.Cost_model.idle_backoff lsl f in
      let d = d + Sim.Fault_injector.backoff_jitter b.inj ~worker:w ~limit:(1 + (d / 2)) in
      overhead b "idle-backoff" d;
      false
    end
  end

let idle b = if should_park b then Sim.Engine.park b.eng

let set_busy b ~worker ~busy = Heartbeat.set_busy b.hb ~worker busy

let charge_push b = overhead b "promotion" b.cost.Sim.Cost_model.deque_push_cost

let charge_pop b = overhead b "join" b.cost.Sim.Cost_model.deque_pop_cost

let charge_steal_attempt b = overhead b "steal" b.cost.Sim.Cost_model.steal_attempt_cost

let charge_steal_success b = overhead b "steal" b.cost.Sim.Cost_model.steal_success_cost

let charge_join_slow b = overhead b "join" b.cost.Sim.Cost_model.join_slow_path_cost
