(* Moved to the backend-agnostic scheduler core (lib/sched) so the native
   domains runtime drives the same rule; re-exported here so existing
   [Hbc_core.Adaptive_chunking] callers keep working unchanged. *)
include Sched.Adaptive_chunking
