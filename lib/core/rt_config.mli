(** Runtime configuration for a heartbeat run. *)

type mechanism =
  | Software_polling  (** default: TSC polls at PRPPTs (Sec. 5.1) *)
  | Interrupt_ping_thread  (** POSIX-signal ping thread (Sec. 5.2) *)
  | Interrupt_kernel_module  (** hrtimer + IPI broadcast kernel module (Sec. 5.2) *)

type promotion_policy = Sched.Policy.promotion_policy =
  | Outer_loop_first
      (** the paper's policy: split the outermost loop with remaining
          iterations — coarsest tasks, best amortization (Sec. 2) *)
  | Innermost_first
      (** ablation: split the loop that received the heartbeat — finest
          tasks; shows why the paper's policy matters *)

type leftover_mode = Sched.Policy.leftover_mode =
  | Spawn  (** HBC: the leftover is a third parallel task with a full closure *)
  | Inline
      (** TPAL: the leftover lacks a complete closure, so it runs inline on
          the promoting task's critical path and can never be stolen as a
          third parallel task (Sec. 6.3); its loops still carry promotion
          points *)

type t = {
  cost : Sim.Cost_model.t;
  workers : int;
  mechanism : mechanism;
  chunk : Compiled.chunk_mode;  (** applied to every innermost DOALL loop *)
  ac_target_polls : int;  (** AC target polling count (paper sweeps 1..20) *)
  ac_window : int;  (** AC sliding-window size in heartbeats *)
  promotion : bool;  (** false: measure overheads only (Figs. 7, 8) *)
  force_promotion : bool;
      (** testing mode: treat every promotion-ready point as if a heartbeat
          had fired — the maximal-promotion schedule, exercising every
          loop-slice and leftover path; used by the differential tests *)
  leftover : leftover_mode;
  policy : promotion_policy;
  chunk_transferring : bool;
      (** carry the residual chunk counter across leaf-loop invocations
          (Sec. 3.2). HBC does; TPAL's manual chunking resets per invocation,
          trading heartbeat responsiveness inside short loops for zero
          bookkeeping on the critical path (the Sec. 6.3 spmv gap). *)
  seed : int;
  watchdog_k : int;
      (** starvation watchdog: consecutive missed/undelivered beats on a
          busy worker before its interrupt mechanism is downgraded to
          software polling (only armed while fault injection is active) *)
}
(** Per-run concerns — DNF cap, trial watchdogs, fault plan, trace sink —
    live in {!Run_request.t}, not here: this record describes the runtime
    being measured, a request describes one observed run of it. *)

val default : t
(** 64 workers, software polling, adaptive chunking, target polls and window
    of 8 (Sec. 6.6), promotions on. *)

val hbc : t
(** Alias of {!default}: the configuration the paper calls "HBC". *)

val hbc_kernel_module : t

val hbc_ping_thread : t

val tpal : chunk:int -> t
(** TPAL's manual runtime: ping-thread interrupts, static per-benchmark
    chunk size, inline leftover. *)

val signature : t -> string
(** Hex content hash of every result-affecting field (including the seed);
    the experiment journal keys cached trials on it combined with
    {!Run_request.signature}, so any configuration change invalidates
    stale entries. *)
