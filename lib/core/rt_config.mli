(** Runtime configuration for a heartbeat run. *)

type mechanism =
  | Software_polling  (** default: TSC polls at PRPPTs (Sec. 5.1) *)
  | Interrupt_ping_thread  (** POSIX-signal ping thread (Sec. 5.2) *)
  | Interrupt_kernel_module  (** hrtimer + IPI broadcast kernel module (Sec. 5.2) *)

type promotion_policy =
  | Outer_loop_first
      (** the paper's policy: split the outermost loop with remaining
          iterations — coarsest tasks, best amortization (Sec. 2) *)
  | Innermost_first
      (** ablation: split the loop that received the heartbeat — finest
          tasks; shows why the paper's policy matters *)

type leftover_mode =
  | Spawn  (** HBC: the leftover is a third parallel task with a full closure *)
  | Inline
      (** TPAL: the leftover lacks a complete closure, so it runs inline on
          the promoting task's critical path and can never be stolen as a
          third parallel task (Sec. 6.3); its loops still carry promotion
          points *)

type t = {
  cost : Sim.Cost_model.t;
  workers : int;
  mechanism : mechanism;
  chunk : Compiled.chunk_mode;  (** applied to every innermost DOALL loop *)
  ac_target_polls : int;  (** AC target polling count (paper sweeps 1..20) *)
  ac_window : int;  (** AC sliding-window size in heartbeats *)
  promotion : bool;  (** false: measure overheads only (Figs. 7, 8) *)
  force_promotion : bool;
      (** testing mode: treat every promotion-ready point as if a heartbeat
          had fired — the maximal-promotion schedule, exercising every
          loop-slice and leftover path; used by the differential tests *)
  leftover : leftover_mode;
  policy : promotion_policy;
  chunk_transferring : bool;
      (** carry the residual chunk counter across leaf-loop invocations
          (Sec. 3.2). HBC does; TPAL's manual chunking resets per invocation,
          trading heartbeat responsiveness inside short loops for zero
          bookkeeping on the critical path (the Sec. 6.3 spmv gap). *)
  seed : int;
  max_cycles : int option;  (** DNF cap on virtual time *)
  chunk_trace : bool;  (** record AC decisions for Fig. 12 *)
  timeline : bool;  (** record per-worker execution intervals (gantt) *)
  fault_plan : Sim.Fault_plan.t option;
      (** opt-in deterministic fault injection; [None] (and any zero plan)
          leaves every run bit-identical to the fault-free runtime *)
  watchdog_k : int;
      (** starvation watchdog: consecutive missed/undelivered beats on a
          busy worker before its interrupt mechanism is downgraded to
          software polling (only armed while fault injection is active) *)
  cycle_budget : int option;
      (** per-trial virtual-cycle watchdog: aborts the run with a
          {!Sim.Run_result.Budget_exceeded} termination instead of letting a
          fault-induced livelock spin forever. Unlike [max_cycles] (the
          paper's DNF semantics), hitting the budget is a trial error. *)
  guard : (unit -> string option) option;
      (** external abort hook polled during the run (wall-clock deadlines);
          [Some reason] yields a [Guard_aborted] termination *)
}

val default : t
(** 64 workers, software polling, adaptive chunking, target polls and window
    of 8 (Sec. 6.6), promotions on. *)

val hbc : t
(** Alias of {!default}: the configuration the paper calls "HBC". *)

val hbc_kernel_module : t

val hbc_ping_thread : t

val tpal : chunk:int -> t
(** TPAL's manual runtime: ping-thread interrupts, static per-benchmark
    chunk size, inline leftover. *)

val signature : t -> string
(** Hex content hash of every result-affecting field (including the seed and
    fault plan); the experiment journal keys cached trials on it, so any
    configuration change invalidates stale entries. Watchdog and trace
    fields are excluded — they do not alter completed results. *)
