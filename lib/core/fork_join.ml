type task = { run : unit -> unit }

(* One latent fork: [promote] turns its deferred branch into a stealable
   task; [None] once promoted or completed inline. *)
type frame = { mutable promote : (unit -> unit) option }

type fj_state = {
  cfg : Rt_config.t;
  eng : Sim.Engine.t;
  hb : Heartbeat.t;
  metrics : Sim.Metrics.t;
  deques : task Sim.Deque.t array;
  bus : Sim.Membus.t;
  mutable last_pusher : int;
  fork_countdown : int array;  (* per worker: forks until the next poll *)
  frames : frame list ref array;  (* per worker: latent forks, newest first *)
  mutable finished : bool;
  mutable promoted_forks : int;
  mutable sequential_forks : int;
}

type ctx = { st : fj_state }

type result = {
  makespan : int;
  work_cycles : int;
  metrics : Sim.Metrics.t;
  promoted_forks : int;
  sequential_forks : int;
}

let cm st = st.cfg.Rt_config.cost

let wid st = Sim.Engine.worker_id st.eng

let overhead st kind c =
  if c > 0 then begin
    Sim.Engine.advance st.eng c;
    Sim.Metrics.add_overhead st.metrics kind c
  end

let advance ctx c =
  let st = ctx.st in
  st.metrics.Sim.Metrics.work_cycles <- st.metrics.Sim.Metrics.work_cycles + c;
  if c > 0 then Sim.Engine.advance st.eng c

let advance_bytes ctx ~compute ~bytes =
  let st = ctx.st in
  st.metrics.Sim.Metrics.work_cycles <- st.metrics.Sim.Metrics.work_cycles + compute;
  let total = Sim.Membus.serve st.bus ~now:(Sim.Engine.now st.eng) ~compute ~bytes in
  if total > 0 then Sim.Engine.advance st.eng total;
  if total > compute then Sim.Metrics.add_overhead st.metrics "membus" (total - compute)

let wake_one st =
  let n = Array.length st.deques in
  let start = Sim.Sim_rng.int (Sim.Engine.rng st.eng) n in
  let rec find k =
    if k < n then begin
      let w = (start + k) mod n in
      if Sim.Engine.is_parked st.eng w then Sim.Engine.unpark st.eng w else find (k + 1)
    end
  in
  find 0

let push_task st task =
  Sim.Deque.push_bottom st.deques.(wid st) task;
  st.last_pusher <- wid st;
  st.metrics.Sim.Metrics.tasks_spawned <- st.metrics.Sim.Metrics.tasks_spawned + 1;
  overhead st "promotion" (cm st).Sim.Cost_model.deque_push_cost;
  wake_one st

let try_steal st =
  let n = Array.length st.deques in
  let w = wid st in
  let probe v =
    st.metrics.Sim.Metrics.steal_attempts <- st.metrics.Sim.Metrics.steal_attempts + 1;
    overhead st "steal" (cm st).Sim.Cost_model.steal_attempt_cost;
    match Sim.Deque.steal st.deques.(v) with
    | Some t ->
        st.metrics.Sim.Metrics.steals <- st.metrics.Sim.Metrics.steals + 1;
        overhead st "steal" (cm st).Sim.Cost_model.steal_success_cost;
        Some t
    | None -> None
  in
  let rec attempt k =
    if k = 0 || n = 1 then None
    else begin
      let v = Sim.Sim_rng.int (Sim.Engine.rng st.eng) n in
      if v = w then attempt (k - 1)
      else match probe v with Some t -> Some t | None -> attempt (k - 1)
    end
  in
  if n > 1 && st.last_pusher <> w && not (Sim.Deque.is_empty st.deques.(st.last_pusher)) then
    match probe st.last_pusher with Some t -> Some t | None -> attempt 8
  else attempt 8

(* A task executes with its own latent-fork stack: promotions must never
   reach the frames of whatever invocation the worker interrupted. *)
let with_fresh_frames st f =
  let w = wid st in
  let saved = !(st.frames.(w)) in
  st.frames.(w) := [];
  Fun.protect ~finally:(fun () -> st.frames.(w) := saved) f

let run_task st task =
  Heartbeat.set_busy st.hb ~worker:(wid st) true;
  with_fresh_frames st task.run;
  Heartbeat.set_busy st.hb ~worker:(wid st) false

(* Outermost-first promotion: activate the OLDEST latent fork — the largest
   piece of deferred work, the recursive analogue of the loop runtime's
   outer-loop-first policy. *)
let promote_oldest st =
  let w = wid st in
  let rec oldest_latent acc = function
    | [] -> acc
    | f :: rest -> oldest_latent (if f.promote <> None then Some f else acc) rest
  in
  match oldest_latent None !(st.frames.(w)) with
  | None -> false
  | Some frame ->
      let p = Option.get frame.promote in
      frame.promote <- None;
      st.promoted_forks <- st.promoted_forks + 1;
      Sim.Metrics.promotion_at_level st.metrics 0;
      overhead st "promotion" (cm st).Sim.Cost_model.promotion_handler_cost;
      p ();
      true

(* fork2: the heart of heartbeat scheduling for recursion. A fork is a
   promotion-ready point; the branches run sequentially unless a heartbeat
   elapsed, in which case the right branch becomes a stealable task. *)
let forks_per_poll = 16

let fork2 : 'a 'b. ctx -> (ctx -> 'a) -> (ctx -> 'b) -> 'a * 'b =
 fun ctx f g ->
  let st = ctx.st in
  let costs = cm st in
  let w = wid st in
  (* Like the loop chunking transformation, the TSC poll is amortized over a
     fixed fork budget; the remaining forks only pay the guard branch. *)
  overhead st "promotion-branch" costs.Sim.Cost_model.promotion_branch_cost;
  st.fork_countdown.(w) <- st.fork_countdown.(w) - 1;
  if st.fork_countdown.(w) <= 0 then begin
    st.fork_countdown.(w) <- forks_per_poll;
    let poll = Heartbeat.poll_cost st.hb ~worker:w in
    if poll > 0 then overhead st "poll" poll;
    st.metrics.Sim.Metrics.polls <- st.metrics.Sim.Metrics.polls + 1;
    if Heartbeat.consume st.hb ~worker:w ~count_poll:false && st.cfg.Rt_config.promotion then
      ignore (promote_oldest st)
  end;
  (* Register this fork as latent parallelism and run the first branch; a
     later heartbeat (possibly deep inside [f]) may promote our deferred
     second branch into a real task. *)
  let cell = ref None in
  let pending = ref 0 in
  let owner = w in
  let frame = { promote = None } in
  frame.promote <-
    Some
      (fun () ->
        pending := 1;
        push_task st
          {
            run =
              (fun () ->
                cell := Some (g ctx);
                pending := 0;
                if Sim.Engine.worker_id st.eng <> owner then begin
                  st.metrics.Sim.Metrics.join_slow_paths <-
                    st.metrics.Sim.Metrics.join_slow_paths + 1;
                  overhead st "join" costs.Sim.Cost_model.join_slow_path_cost
                end;
                Sim.Engine.unpark st.eng owner);
          });
  st.frames.(w) := frame :: !(st.frames.(w));
  let a = f ctx in
  (* Unregister: we are back at this fork's join point. *)
  (st.frames.(w) :=
     match !(st.frames.(w)) with
     | top :: rest when top == frame -> rest
     | other -> List.filter (fun fr -> fr != frame) other);
  match frame.promote with
  | Some _ ->
      (* Fast path: never promoted; run the second branch inline with zero
         synchronization. *)
      frame.promote <- None;
      st.sequential_forks <- st.sequential_forks + 1;
      let b = g ctx in
      (a, b)
  | None ->
      (* Slow path: the branch became a task; help until it completes. *)
      while !pending > 0 do
        match Sim.Deque.pop_bottom st.deques.(wid st) with
        | Some t ->
            overhead st "join" costs.Sim.Cost_model.deque_pop_cost;
            with_fresh_frames st t.run
        | None -> (
            match try_steal st with
            | Some t -> with_fresh_frames st t.run
            | None -> if !pending > 0 then Sim.Engine.park st.eng)
      done;
      (a, Option.get !cell)

let scavenge st w =
  while not st.finished do
    match Sim.Deque.pop_bottom st.deques.(w) with
    | Some t -> run_task st t
    | None -> (
        match try_steal st with
        | Some t -> run_task st t
        | None -> if not st.finished then Sim.Engine.park st.eng)
  done

let run ?(cfg = Rt_config.default) main =
  let eng = Sim.Engine.create ~seed:cfg.Rt_config.seed ~num_workers:cfg.Rt_config.workers () in
  let metrics = Sim.Metrics.create () in
  let hb = Heartbeat.create cfg eng metrics in
  let st =
    {
      cfg;
      eng;
      hb;
      metrics;
      deques = Array.init cfg.Rt_config.workers (fun _ -> Sim.Deque.create ());
      bus = Sim.Membus.create ~bytes_per_cycle:cfg.Rt_config.cost.Sim.Cost_model.dram_bytes_per_cycle;
      last_pusher = 0;
      fork_countdown = Array.make cfg.Rt_config.workers 0;
      frames = Array.init cfg.Rt_config.workers (fun _ -> ref []);
      finished = false;
      promoted_forks = 0;
      sequential_forks = 0;
    }
  in
  Heartbeat.start hb;
  Sim.Engine.run eng (fun w ->
      if w = 0 then begin
        Heartbeat.set_busy hb ~worker:0 true;
        main { st };
        Heartbeat.set_busy hb ~worker:0 false;
        st.finished <- true;
        Heartbeat.stop hb;
        Sim.Engine.unpark_all eng
      end
      else scavenge st w);
  {
    makespan = Sim.Engine.max_time eng;
    work_cycles = metrics.Sim.Metrics.work_cycles;
    metrics;
    promoted_forks = st.promoted_forks;
    sequential_forks = st.sequential_forks;
  }
