type mechanism = Software_polling | Interrupt_ping_thread | Interrupt_kernel_module

(* Policy types live in the backend-agnostic scheduler core; the equations
   keep the historical [Rt_config.Spawn] / [Rt_config.Outer_loop_first]
   constructors (and their Marshal representation) intact. *)
type leftover_mode = Sched.Policy.leftover_mode = Spawn | Inline

type promotion_policy = Sched.Policy.promotion_policy = Outer_loop_first | Innermost_first

type t = {
  cost : Sim.Cost_model.t;
  workers : int;
  mechanism : mechanism;
  chunk : Compiled.chunk_mode;
  ac_target_polls : int;
  ac_window : int;
  promotion : bool;
  force_promotion : bool;
  leftover : leftover_mode;
  policy : promotion_policy;
  chunk_transferring : bool;
  seed : int;
  watchdog_k : int;
}

let default =
  {
    cost = Sim.Cost_model.default;
    workers = 64;
    mechanism = Software_polling;
    chunk = Compiled.Adaptive;
    ac_target_polls = 8;
    ac_window = 2;
    promotion = true;
    force_promotion = false;
    leftover = Spawn;
    policy = Outer_loop_first;
    chunk_transferring = true;
    seed = 1;
    watchdog_k = 4;
  }

(* Content hash over every field that can change a run's *results* — half
   of the experiment journal's cache key (the other half is the
   Run_request signature, which covers the per-run fault plan and DNF
   cap). The record holds no closures, so Marshal is safe. *)
let signature t =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          ( t.cost,
            t.workers,
            t.mechanism,
            t.chunk,
            t.ac_target_polls,
            t.ac_window,
            t.promotion,
            t.force_promotion,
            t.leftover,
            t.policy,
            t.chunk_transferring,
            t.seed,
            t.watchdog_k )
          []))

let hbc = default

let hbc_kernel_module =
  { default with mechanism = Interrupt_kernel_module; chunk = Compiled.Static 64 }

let hbc_ping_thread =
  { default with mechanism = Interrupt_ping_thread; chunk = Compiled.Static 64 }

let tpal ~chunk =
  {
    default with
    mechanism = Interrupt_ping_thread;
    chunk = Compiled.Static chunk;
    leftover = Inline;
    force_promotion = false;
    policy = Outer_loop_first;
    chunk_transferring = false;
  }
