(** Heartbeat signaling mechanisms (Secs. 4 and 5).

    The executor consults this module at every promotion-ready program
    point. Mechanisms differ in cost and in how a beat becomes visible:

    - {e Software polling}: a poll (TSC read, {!poll_cost} cycles, charged by
      the caller as part of its batched advance) compares the worker's clock
      against heartbeat-interval boundaries.
    - {e Kernel module}: the executed image carries no polls; a broadcast
      timer callback marks every busy worker and {!consume} charges the
      interrupt delivery cost (3800 cycles) plus a rollforward-table lookup
      when a pending beat is taken.
    - {e Ping thread}: like the kernel module, but deliveries are serialized
      through one signaling thread; beats whose signal cannot be issued
      before the next beat are dropped — the source of the up-to-45%%-missed
      heartbeats the paper reports.

    Under an active {!Sim.Fault_injector}, interrupt deliveries can
    additionally be lost or jittered, and a {e starvation watchdog} is
    armed: a busy worker that misses [watchdog_k] consecutive beats (lost,
    jittered into each other, or overwritten unconsumed) is downgraded to
    software polling for the rest of the run — it leaves the interrupt pool,
    pays poll costs at its PRPPTs, and the downgrade is emitted as an
    {!Obs.Trace.Mechanism_downgrade} event. Without fault injection the
    watchdog is disarmed, so fault-free runs are bit-identical to the
    pre-fault-layer runtime.

    Every generated/detected/missed beat, poll, and downgrade is emitted
    as one {!Obs.Trace.event} into the run's sink; the counting sink
    derives the Fig. 13 counters from them. *)

type t

val create :
  ?injector:Sim.Fault_injector.t ->
  ?trace:Obs.Trace.Sink.t ->
  Rt_config.t ->
  Sim.Engine.t ->
  Sim.Metrics.t ->
  t
(** Without [?injector], an inert one is used (no faults, no watchdog).
    Without [?trace], events go straight to [metrics]'s counting sink —
    the executor passes its full tee instead. *)

val start : t -> unit
(** Arm the timer callbacks (no-op for software polling). *)

val stop : t -> unit

val set_busy : t -> worker:int -> bool -> unit
(** Only busy workers receive or account for heartbeats. *)

val is_downgraded : t -> worker:int -> bool
(** Has the watchdog moved this worker to software polling? *)

val poll_cost : t -> worker:int -> int
(** Cycles a PRPPT poll costs for this worker (0 under interrupts, the
    polling cost once the watchdog has downgraded it). *)

val consume : t -> worker:int -> count_poll:bool -> bool
(** Check (and consume) a heartbeat at a PRPPT. [count_poll] marks the call
    as a real leaf-latch poll for the polling statistics; the cached checks
    at outer-loop latches pass [false]. Charges the interrupt delivery cost
    when an interrupt-mode beat is taken; never charges the poll cost (the
    caller batches it via {!poll_cost}). *)
