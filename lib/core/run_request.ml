type t = {
  max_cycles : int option;
  cycle_budget : int option;
  guard : (unit -> string option) option;
  fault_plan : Sim.Fault_plan.t option;
  trace : Obs.Trace.Sink.t;
  sanitize : bool;
  fuzz_case : string option;
}

let default =
  {
    max_cycles = None;
    cycle_budget = None;
    guard = None;
    fault_plan = None;
    trace = Obs.Trace.Sink.null;
    sanitize = false;
    fuzz_case = None;
  }

let make ?max_cycles ?cycle_budget ?guard ?fault_plan ?(trace = Obs.Trace.Sink.null)
    ?(sanitize = false) ?fuzz_case () =
  { max_cycles; cycle_budget; guard; fault_plan; trace; sanitize; fuzz_case }

let signature t =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          (t.max_cycles, t.fault_plan, Obs.Trace.Sink.captures t.trace, t.sanitize, t.fuzz_case)
          []))
