type t = {
  backend : Sched.Policy.backend_kind;
  max_cycles : int option;
  cycle_budget : int option;
  guard : (unit -> string option) option;
  fault_plan : Sim.Fault_plan.t option;
  trace : Obs.Trace.Sink.t;
  sanitize : bool;
  fuzz_case : string option;
  tenant : int option;
  deadline : int option;
  priority : int;
  promotion_budget : int option;
  pause_at : int option;
  resume_from : Sim.Checkpoint_state.t option;
}

let default =
  {
    backend = Sched.Policy.Sim;
    max_cycles = None;
    cycle_budget = None;
    guard = None;
    fault_plan = None;
    trace = Obs.Trace.Sink.null;
    sanitize = false;
    fuzz_case = None;
    tenant = None;
    deadline = None;
    priority = 0;
    promotion_budget = None;
    pause_at = None;
    resume_from = None;
  }

let make ?(backend = Sched.Policy.Sim) ?max_cycles ?cycle_budget ?guard ?fault_plan
    ?(trace = Obs.Trace.Sink.null) ?(sanitize = false) ?fuzz_case ?tenant ?deadline ?(priority = 0)
    ?promotion_budget ?pause_at ?resume_from () =
  {
    backend;
    max_cycles;
    cycle_budget;
    guard;
    fault_plan;
    trace;
    sanitize;
    fuzz_case;
    tenant;
    deadline;
    priority;
    promotion_budget;
    pause_at;
    resume_from;
  }

let signature t =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          ( (* string, not the variant: byte-stable across constructor
               reorderings *)
            Sched.Policy.backend_kind_to_string t.backend,
            t.max_cycles,
            t.fault_plan,
            Obs.Trace.Sink.captures t.trace,
            t.sanitize,
            t.fuzz_case,
            t.tenant,
            t.deadline,
            t.priority,
            t.promotion_budget,
            t.pause_at,
            (* The checkpoint in its byte-stable codec form, not the record:
               Marshal over the record would hash physical structure, the
               codec string hashes content. *)
            Option.map Sim.Checkpoint_state.to_string t.resume_from )
          []))
