(** The deterministic virtual-time simulator as a scheduler backend
    ({!Sched.Backend_intf.BACKEND}).

    Worker identity and time come from {!Sim.Engine}; deques are
    {!Sim.Deque}; overhead charges advance the engine clock with per-kind
    metrics attribution; idling is engine parking behind the fault-aware
    exponential backoff. The engine is single-fibered, so [critical] is a
    plain call and [Sched.Core.Make (Sim_backend)] reproduces the
    pre-functor executor byte for byte (pinned by golden tests). *)

(** Testing hook: a deliberately plantable scheduler bug, armed by the
    sanitizer tests and the fuzzer's forced-failure mode. Never armed in
    normal operation. *)
type seeded_bug = Duplicate_leftover | Lose_stolen_task | Promote_innermost

type t = {
  eng : Sim.Engine.t;
  cost : Sim.Cost_model.t;
  metrics : Sim.Metrics.t;
  trace : Obs.Trace.Sink.t;  (** counting sink teed with the request's sink *)
  capture : bool;  (** the request's sink wants payload events *)
  inj : Sim.Fault_injector.t;
  hb : Heartbeat.t;
  deques : Sched.Task.t Sim.Deque.t array;
  steal_fails : int array;
  bug : seeded_bug option;
  mutable bug_fired : bool;
}

val create :
  eng:Sim.Engine.t ->
  cost:Sim.Cost_model.t ->
  metrics:Sim.Metrics.t ->
  trace:Obs.Trace.Sink.t ->
  capture:bool ->
  inj:Sim.Fault_injector.t ->
  hb:Heartbeat.t ->
  workers:int ->
  bug:seeded_bug option ->
  t

(** {2 BACKEND implementation} *)

val num_workers : t -> int

val worker_id : t -> int

val now : t -> int

val capture : t -> bool

val critical : t -> (unit -> unit) -> unit

val emit : t -> Obs.Trace.event -> unit

val push : t -> Sched.Task.t -> unit

val pop : t -> Sched.Task.t option

val steal_from : t -> victim:int -> Sched.Task.t option

val deque_empty : t -> worker:int -> bool

val random_victim : t -> int

val steal_vetoed : t -> bool

val keep_stolen : t -> Sched.Task.t -> bool

val pre_task : t -> unit

val on_task_claim : t -> unit

val wake_one : t -> unit

val unpark : t -> worker:int -> unit

val idle : t -> unit

val set_busy : t -> worker:int -> busy:bool -> unit

val charge_push : t -> unit

val charge_pop : t -> unit

val charge_steal_attempt : t -> unit

val charge_steal_success : t -> unit

val charge_join_slow : t -> unit

val overhead : t -> string -> int -> unit
(** Charge overhead cycles: one engine advance, per-kind attribution
    (shared with the executor's interpreter). *)
