open Trace

let count pred records =
  List.fold_left (fun acc r -> if pred r.event then acc + 1 else acc) 0 records

let filter pred records =
  List.filter (fun r -> pred r.event) records
  |> List.stable_sort (fun a b -> compare a.seq b.seq)

let intervals records =
  List.filter_map
    (fun r ->
      match r.event with
      | Interval { t0; kind } when r.time > t0 -> Some (r.seq, (r.worker, t0, r.time, kind))
      | _ -> None)
    records
  |> List.stable_sort (fun (sa, (_, a0, _, _)) (sb, (_, b0, _, _)) ->
         match compare a0 b0 with 0 -> compare sa sb | c -> c)
  |> List.map snd

let busy_cycles_of records worker =
  List.fold_left
    (fun acc (w, t0, t1, _) -> if w = worker then acc + (t1 - t0) else acc)
    0 (intervals records)

let chronological records = List.stable_sort (fun a b -> compare (a.time, a.seq) (b.time, b.seq)) records

let chunk_updates records =
  List.filter_map
    (fun r ->
      match r.event with Chunk_update { key; chunk } -> Some (r.time, key, chunk) | _ -> None)
    (chronological records)

let downgrades records =
  List.filter_map
    (fun r -> match r.event with Mechanism_downgrade -> Some (r.worker, r.time) | _ -> None)
    (chronological records)

let promotions_by_level ?(levels = 8) records =
  let out = Array.make (Stdlib.max 1 levels) 0 in
  List.iter
    (fun r ->
      match r.event with
      | Promotion { level } ->
          let l = Stdlib.min (Stdlib.max 0 level) (Array.length out - 1) in
          out.(l) <- out.(l) + 1
      | _ -> ())
    records;
  out

let detection_rate records =
  let generated = count (fun e -> e = Heartbeat_generated) records in
  if generated = 0 then 100.0
  else 100.0 *. float_of_int (count (fun e -> e = Heartbeat_detected) records) /. float_of_int generated

let windowed ~width pred records =
  let width = Stdlib.max 1 width in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun r ->
      if pred r.event then begin
        let w = r.time / width * width in
        Hashtbl.replace tbl w (1 + Option.value ~default:0 (Hashtbl.find_opt tbl w))
      end)
    records;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare
