(** Typed runtime trace events and the sink API they are recorded through.

    Every observable scheduler action — heartbeat lifecycle, promotions,
    steals, task spawn/join, adaptive-chunking decisions, injected faults,
    mechanism downgrades, worker execution intervals — is one {!event}
    value, stamped at emission with the worker id and the simulator's
    virtual time. The runtime never stores events itself; it emits them
    into whatever {!Sink.t} the run was given:

    - {!Sink.null} ignores everything and allocates nothing — a run traced
      into it is byte-identical (fingerprint, makespan, counters) to one
      without the trace layer, because emission never advances virtual
      time, consumes randomness, or allocates on the hot path;
    - {!Sink.ring} keeps a bounded per-worker ring buffer, overwriting the
      oldest records at capacity and counting the drops;
    - {!Sink.stream} keeps everything (optionally pre-filtered by [keep]);
    - {!Sink.fn} invokes a closure per event — {!Sim.Metrics} derives its
      scalar counters from exactly such a sink;
    - {!Sink.tee} fans one emission out to two sinks.

    Captured records carry a per-sink sequence number assigned at emission,
    so exports and cross-worker merges are deterministic: the same seed and
    configuration produce the same record list, byte for byte. *)

type fault =
  | Beat_dropped  (** an injected heartbeat-delivery loss *)
  | Beat_delayed of int  (** injected delivery jitter, in cycles *)
  | Steal_failed  (** an injected steal-CAS loss *)
  | Stall of int
      (** an injected OS-preemption stall: cycles on the simulator,
          counted polls on the domains backend *)
  | Wakeup_delayed
      (** an injected suppression of a parked-worker wakeup signal; the
          parked worker only recovers via the bounded park timeout *)

type event =
  | Heartbeat_generated
  | Heartbeat_detected
  | Heartbeat_missed
  | Poll
  | Promotion of { level : int }  (** nesting level of the split loop *)
  | Steal_attempt
  | Steal_success
  | Task_spawned
  | Task_joined_slow  (** a join finished by a worker other than the owner *)
  | Leftover_run
  | Chunk_update of { key : int; chunk : int }
      (** adaptive chunking committed a new chunk size; [key] is the outer
          iteration driving Fig. 12 *)
  | Fault_injected of fault
  | Mechanism_downgrade  (** watchdog fallback to software polling *)
  | Interval of { t0 : int; kind : string }
      (** a worker execution interval [t0, time); emitted at its end *)
  | Slice_enter of { nest : int; ord : int; key : int; lo : int; hi : int }
      (** a loop-slice invocation began covering iterations [lo, hi) of the
          loop at chain ordinal [ord]; [key] identifies the invocation
          (ancestor iteration vector + execution epoch) so the sanitizer can
          account coverage per invocation *)
  | Iter_exec of { nest : int; ord : int; key : int; lo : int; hi : int }
      (** iterations [lo, hi) of invocation [key] just executed; the
          sanitizer's work-conservation check requires the union of these
          intervals per [key] to tile its [Slice_enter] range exactly once *)
  | Task_pushed of { task : int }  (** owner pushed [task] at deque bottom *)
  | Task_popped of { task : int }  (** owner popped [task] at deque bottom *)
  | Task_stolen of { task : int; victim : int }
      (** the emitting worker stole [task] from the top of [victim]'s deque *)
  | Task_exec of { task : int }  (** [task]'s body started running *)
  | Chunk_decision of { key : int; old_chunk : int; min_polls : int; chunk : int }
      (** adaptive chunking recomputed [chunk] from [old_chunk] given the
          sliding-window minimum [min_polls]; the sanitizer replays the
          update rule to validate the transition *)
  | Promote_choice of { cur : int; tgt : int; chain : (int * bool * int) list }
      (** a promotion chose chain ordinal [tgt] while running [cur]; [chain]
          lists every owned candidate as (ordinal, splittable, remaining
          iterations) so the outer-loop-first policy can be checked *)
  | Job_submitted of { job : int; tenant : int }
      (** a serve-mode job arrived at the admission queue *)
  | Job_admitted of { job : int; tenant : int; queued : int }
      (** the job entered the bounded queue; [queued] is the depth after *)
  | Job_shed of { job : int; tenant : int; reason : string }
      (** explicit load shedding at submission ("queue-full",
          "breaker-open", ...); a shed job is terminal and never silent *)
  | Job_started of { job : int; tenant : int; budget : int }
      (** the job left the queue and took pool workers; [budget] is the
          promotion grant metered from its tenant's balance *)
  | Job_preempted of { job : int; tenant : int }
      (** the deadline watchdog cut the job mid-run; its pool share is
          reclaimed and partial results are journaled *)
  | Job_checkpointed of { job : int; tenant : int; at_cycle : int }
      (** the job was cooperatively paused at engine boundary [at_cycle]
          and its checkpoint saved; it will re-enter admission and resume
          (pause-and-requeue preemption, not a cancel) *)
  | Job_resumed of { job : int; tenant : int; episode : int; budget : int }
      (** a checkpointed job re-started from its saved state; [episode]
          counts completed pause/resume episodes before this one (first
          resume is episode 1) and [budget] is the fresh promotion grant
          metered for the new episode (the sanitizer debits it like a
          [Job_started] grant) *)
  | Job_finished of { job : int; tenant : int; state : string; promotions : int }
      (** terminal accounting for a started job: [state] is "completed",
          "deadline" or "failed-*"; [promotions] is what it actually used
          (the sanitizer checks [promotions <= budget]) *)
  | Breaker_transition of { tenant : int; from_state : string; to_state : string }
      (** a tenant circuit breaker moved (closed/open/half-open) *)
  | Budget_refill of { tenant : int; amount : int }
      (** the promotion meter credited [amount] to the tenant's balance *)

type record = { seq : int; time : int; worker : int; event : event }

val promotion : int -> event
(** [promotion level = Promotion { level }], but sharing a preallocated
    value for the small levels every real nest uses: emitting a promotion
    into any sink is allocation-free on the hot path. *)

val event_name : event -> string
(** Stable short name ("promotion", "steal-success", ...), used by the
    Perfetto exporter and the trace codec. *)

val fault_tag : fault -> string

module Sink : sig
  type t

  val null : t
  (** Drops every event. [enabled null = false], so emit sites can skip
      building payload events entirely. *)

  val stream : ?keep:(event -> bool) -> unit -> t
  (** Unbounded in-order capture of every event passing [keep] (default:
      all). *)

  val ring : ?keep:(event -> bool) -> workers:int -> capacity:int -> unit -> t
  (** Bounded capture: at most [capacity] records per worker, oldest
      overwritten first; {!dropped} counts the overwrites. Events from
      outside any worker context land in worker 0's ring. *)

  val fn : (time:int -> worker:int -> event -> unit) -> t
  (** Invoke a closure per event; captures nothing. *)

  val tee : t -> t -> t
  (** Emit into both sinks. [tee null s] is [s]. *)

  val enabled : t -> bool
  (** False only for {!null}: emit sites use it to avoid constructing
      payload-carrying events nobody will see. *)

  val captures : t -> bool
  (** True when the sink (or either side of a tee) stores records — i.e.
      {!captured} can return anything. Run signatures include this bit so
      journaled traced and untraced trials do not alias. *)

  val emit : t -> time:int -> worker:int -> event -> unit

  val captured : t -> record list
  (** Every stored record in emission ([seq]) order. Ring sinks merge their
      per-worker buffers by [seq]; [fn] and [null] sinks yield []. Tee sinks
      merge both branches' captures by record time (stable, left branch
      first on ties) — branch [seq] counters are independent, so time is
      the only cross-branch order. *)

  val dropped : t -> int
  (** Records overwritten by ring sinks (summed across a tee). *)
end

(** {2 Codec}

    Compact JSON for the experiment journal: a captured trace survives a
    [--resume] round trip, so figure queries run identically on replayed
    trials. Unknown event tags are skipped on read (forward
    compatibility); [seq] is reassigned from list order. *)

val records_to_json : record list -> Json.t

val records_of_json : Json.t -> record list
