(* Hand-rolled JSON, factored out of the experiment journal so the trace
   exporter and the checkpoint codec share one implementation. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let buf_escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.17g" f)
      else Buffer.add_string buf "null"
  | Str s ->
      Buffer.add_char buf '"';
      buf_escape buf s;
      Buffer.add_char buf '"'
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          write buf (Str k);
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 512 in
  write buf j;
  Buffer.contents buf

exception Parse_error of string

let parse (s : string) : t =
  let pos = ref 0 in
  let len = String.length s in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < len then s.[!pos] else '\255' in
  let next () =
    if !pos >= len then fail "unexpected end";
    let c = s.[!pos] in
    incr pos;
    c
  in
  let rec skip_ws () =
    if !pos < len && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) then begin
      incr pos;
      skip_ws ()
    end
  in
  let expect c = if next () <> c then fail (Printf.sprintf "expected '%c'" c) in
  let literal word v =
    if !pos + String.length word <= len && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail "bad literal"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          (match next () with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              let hex = String.init 4 (fun _ -> next ()) in
              let code = int_of_string ("0x" ^ hex) in
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else Buffer.add_string buf (Printf.sprintf "\\u%04x" code)
          | _ -> fail "bad escape");
          go ())
      | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < len && numchar s.[!pos] do
      incr pos
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with Some f -> Float f | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | 'n' -> literal "null" Null
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | '"' -> Str (parse_string ())
    | '[' ->
        expect '[';
        skip_ws ();
        if peek () = ']' then begin
          expect ']';
          Arr []
        end
        else begin
          let items = ref [] in
          let rec go () =
            items := parse_value () :: !items;
            skip_ws ();
            match next () with
            | ',' -> go ()
            | ']' -> ()
            | _ -> fail "expected ',' or ']'"
          in
          go ();
          Arr (List.rev !items)
        end
    | '{' ->
        expect '{';
        skip_ws ();
        if peek () = '}' then begin
          expect '}';
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec go () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match next () with
            | ',' -> go ()
            | '}' -> ()
            | _ -> fail "expected ',' or '}'"
          in
          go ();
          Obj (List.rev !fields)
        end
    | _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v

let mem k fields = List.assoc_opt k fields

let get_str k fields = match mem k fields with Some (Str s) -> Some s | _ -> None

let get_int k fields = match mem k fields with Some (Int i) -> Some i | _ -> None

let get_float k fields =
  match mem k fields with
  | Some (Float f) -> Some f
  | Some (Int i) -> Some (float_of_int i)
  | _ -> None

let get_bool k fields = match mem k fields with Some (Bool b) -> Some b | _ -> None
