(** Minimal JSON — no external dependency. One value type, a compact
    serializer, and a strict parser, shared by the experiment journal
    ({!Checkpoint}), the trace codec ({!Trace}) and the Perfetto exporter
    ({!Perfetto}). Serialization is deterministic: the same value always
    yields the same bytes (floats print as ["%.17g"], object fields keep
    their list order), which the byte-identical-trace tests rely on. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val write : Buffer.t -> t -> unit

val to_string : t -> string

val parse : string -> t
(** Strict parse of one JSON value; raises {!Parse_error} on malformed
    input or trailing garbage. Numbers without a fractional part come back
    as [Int]. *)

(** {2 Field accessors over [Obj] field lists}

    All are total: a missing key or a value of the wrong shape yields
    [None]. [get_float] accepts an [Int] and widens it. *)

val mem : string -> (string * t) list -> t option

val get_str : string -> (string * t) list -> string option

val get_int : string -> (string * t) list -> int option

val get_float : string -> (string * t) list -> float option

val get_bool : string -> (string * t) list -> bool option
