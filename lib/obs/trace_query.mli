(** Queries over captured trace records — the read-side API the figure
    pipeline, Gantt renderer, and tests use instead of poking ad-hoc
    [Metrics] list fields. All functions take records in any order and
    return chronologically sorted results where order matters. *)

val count : (Trace.event -> bool) -> Trace.record list -> int

val filter : (Trace.event -> bool) -> Trace.record list -> Trace.record list
(** Records whose event satisfies the predicate, in emission order. *)

val intervals : Trace.record list -> (int * int * int * string) list
(** Worker execution intervals as [(worker, t0, t1, kind)], chronological
    by start time (ties broken by emission order). Only
    {!Trace.Interval} events with [t1 > t0] contribute. *)

val busy_cycles_of : Trace.record list -> int -> int
(** Total interval cycles recorded for one worker. *)

val chunk_updates : Trace.record list -> (int * int * int) list
(** Adaptive-chunking decisions as [(time, key, chunk)], chronological. *)

val downgrades : Trace.record list -> (int * int) list
(** Watchdog downgrades as [(worker, time)], chronological. *)

val promotions_by_level : ?levels:int -> Trace.record list -> int array
(** Promotion counts bucketed by nesting level (default 8 buckets, deeper
    levels clamped into the last one) — the Fig. 5 shape. *)

val detection_rate : Trace.record list -> float
(** Detected heartbeats as a percentage of generated ones; 100.0 when the
    trace holds no generated beats (mirrors [Metrics.detection_rate]). *)

val windowed : width:int -> (Trace.event -> bool) -> Trace.record list -> (int * int) list
(** Aggregate matching events into fixed windows of [width] virtual
    cycles: [(window_start_time, count)] for every non-empty window,
    chronological. *)
