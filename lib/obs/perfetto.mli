(** Chrome [trace_event] / Perfetto-compatible JSON export.

    One virtual cycle maps to one microsecond of trace time ([ts]), so the
    Perfetto UI and [chrome://tracing] render virtual-time runs directly.
    Worker execution intervals become duration ("ph":"X") events on one
    track per worker; everything else becomes a thread-scoped instant
    ("ph":"i") carrying its payload in [args]; adaptive-chunking decisions
    additionally drive a "chunk-size" counter ("ph":"C") track.

    The export is deterministic: records are written in emission order, so
    equal traces produce byte-identical files. *)

val to_json : ?process_name:string -> Trace.record list -> Json.t

val to_string : ?process_name:string -> Trace.record list -> string
(** The full trace file: [{"traceEvents": [...], "displayTimeUnit": "ms"}]. *)
