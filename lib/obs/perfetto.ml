open Trace

let pid = 1

let common ~name ~ph ~ts ~tid extra =
  Json.Obj
    ([
       ("name", Json.Str name);
       ("ph", Json.Str ph);
       ("ts", Json.Int ts);
       ("pid", Json.Int pid);
       ("tid", Json.Int tid);
     ]
    @ extra)

let instant ~name ~ts ~tid args =
  common ~name ~ph:"i" ~ts ~tid
    (("s", Json.Str "t") :: (match args with [] -> [] | _ -> [ ("args", Json.Obj args) ]))

let event_to_json (r : record) =
  let tid = Stdlib.max 0 r.worker in
  match r.event with
  | Interval { t0; kind } ->
      [ common ~name:kind ~ph:"X" ~ts:t0 ~tid [ ("dur", Json.Int (r.time - t0)) ] ]
  | Promotion { level } ->
      [ instant ~name:(event_name r.event) ~ts:r.time ~tid [ ("level", Json.Int level) ] ]
  | Chunk_update { key; chunk } ->
      [
        instant ~name:(event_name r.event) ~ts:r.time ~tid
          [ ("key", Json.Int key); ("chunk", Json.Int chunk) ];
        common ~name:"chunk-size" ~ph:"C" ~ts:r.time ~tid
          [ ("args", Json.Obj [ ("chunk", Json.Int chunk) ]) ];
      ]
  | Fault_injected f ->
      let args =
        ("kind", Json.Str (fault_tag f))
        :: (match f with
           | Beat_delayed j -> [ ("cycles", Json.Int j) ]
           | Stall c -> [ ("cycles", Json.Int c) ]
           | Beat_dropped | Steal_failed | Wakeup_delayed -> [])
      in
      [ instant ~name:(event_name r.event) ~ts:r.time ~tid args ]
  | _ -> [ instant ~name:(event_name r.event) ~ts:r.time ~tid [] ]

let metadata ~process_name records =
  let workers =
    List.sort_uniq compare (List.map (fun r -> Stdlib.max 0 r.worker) records)
  in
  common ~name:"process_name" ~ph:"M" ~ts:0 ~tid:0
    [ ("args", Json.Obj [ ("name", Json.Str process_name) ]) ]
  :: List.map
       (fun w ->
         common ~name:"thread_name" ~ph:"M" ~ts:0 ~tid:w
           [ ("args", Json.Obj [ ("name", Json.Str (Printf.sprintf "worker %d" w)) ]) ])
       workers

let to_json ?(process_name = "hbc-sim") records =
  let events = List.concat_map event_to_json records in
  Json.Obj
    [
      ("traceEvents", Json.Arr (metadata ~process_name records @ events));
      ("displayTimeUnit", Json.Str "ms");
    ]

let to_string ?process_name records = Json.to_string (to_json ?process_name records)
