type fault =
  | Beat_dropped
  | Beat_delayed of int
  | Steal_failed
  | Stall of int
  | Wakeup_delayed

type event =
  | Heartbeat_generated
  | Heartbeat_detected
  | Heartbeat_missed
  | Poll
  | Promotion of { level : int }
  | Steal_attempt
  | Steal_success
  | Task_spawned
  | Task_joined_slow
  | Leftover_run
  | Chunk_update of { key : int; chunk : int }
  | Fault_injected of fault
  | Mechanism_downgrade
  | Interval of { t0 : int; kind : string }
  | Slice_enter of { nest : int; ord : int; key : int; lo : int; hi : int }
  | Iter_exec of { nest : int; ord : int; key : int; lo : int; hi : int }
  | Task_pushed of { task : int }
  | Task_popped of { task : int }
  | Task_stolen of { task : int; victim : int }
  | Task_exec of { task : int }
  | Chunk_decision of { key : int; old_chunk : int; min_polls : int; chunk : int }
  | Promote_choice of { cur : int; tgt : int; chain : (int * bool * int) list }
  | Job_submitted of { job : int; tenant : int }
  | Job_admitted of { job : int; tenant : int; queued : int }
  | Job_shed of { job : int; tenant : int; reason : string }
  | Job_started of { job : int; tenant : int; budget : int }
  | Job_preempted of { job : int; tenant : int }
  | Job_checkpointed of { job : int; tenant : int; at_cycle : int }
  | Job_resumed of { job : int; tenant : int; episode : int; budget : int }
  | Job_finished of { job : int; tenant : int; state : string; promotions : int }
  | Breaker_transition of { tenant : int; from_state : string; to_state : string }
  | Budget_refill of { tenant : int; amount : int }

type record = { seq : int; time : int; worker : int; event : event }

(* Promotion levels are tiny (loop-nest depth) and events are immutable,
   so every emission of a small level shares one preallocated value
   instead of allocating a fresh [Promotion] block on the hot path. *)
let promotion_cache = Array.init 8 (fun level -> Promotion { level })

let promotion level =
  if level >= 0 && level < 8 then promotion_cache.(level) else Promotion { level }

let event_name = function
  | Heartbeat_generated -> "heartbeat-generated"
  | Heartbeat_detected -> "heartbeat-detected"
  | Heartbeat_missed -> "heartbeat-missed"
  | Poll -> "poll"
  | Promotion _ -> "promotion"
  | Steal_attempt -> "steal-attempt"
  | Steal_success -> "steal-success"
  | Task_spawned -> "task-spawned"
  | Task_joined_slow -> "task-joined-slow"
  | Leftover_run -> "leftover-run"
  | Chunk_update _ -> "chunk-update"
  | Fault_injected _ -> "fault-injected"
  | Mechanism_downgrade -> "mechanism-downgrade"
  | Interval _ -> "interval"
  | Slice_enter _ -> "slice-enter"
  | Iter_exec _ -> "iter-exec"
  | Task_pushed _ -> "task-pushed"
  | Task_popped _ -> "task-popped"
  | Task_stolen _ -> "task-stolen"
  | Task_exec _ -> "task-exec"
  | Chunk_decision _ -> "chunk-decision"
  | Promote_choice _ -> "promote-choice"
  | Job_submitted _ -> "job-submitted"
  | Job_admitted _ -> "job-admitted"
  | Job_shed _ -> "job-shed"
  | Job_started _ -> "job-started"
  | Job_preempted _ -> "job-preempted"
  | Job_checkpointed _ -> "job-checkpointed"
  | Job_resumed _ -> "job-resumed"
  | Job_finished _ -> "job-finished"
  | Breaker_transition _ -> "breaker-transition"
  | Budget_refill _ -> "budget-refill"

module Sink = struct
  type stream = {
    s_keep : event -> bool;
    mutable items : record list;  (* newest first; reversed on capture *)
    mutable s_len : int;
    mutable s_seq : int;
  }

  (* One bounded buffer per worker; a slot's [seq >= 0] marks it filled.
     Overwrites advance [head] and count as drops. *)
  type ring = {
    r_keep : event -> bool;
    capacity : int;
    bufs : record array array;
    heads : int array;
    lens : int array;
    mutable r_seq : int;
    mutable r_dropped : int;
  }

  type t =
    | Null
    | Stream of stream
    | Ring of ring
    | Fn of (time:int -> worker:int -> event -> unit)
    | Tee of t * t

  let null = Null

  let keep_all _ = true

  let stream ?(keep = keep_all) () = Stream { s_keep = keep; items = []; s_len = 0; s_seq = 0 }

  let dummy = { seq = -1; time = 0; worker = 0; event = Poll }

  let ring ?(keep = keep_all) ~workers ~capacity () =
    let workers = Stdlib.max 1 workers and capacity = Stdlib.max 1 capacity in
    Ring
      {
        r_keep = keep;
        capacity;
        bufs = Array.init workers (fun _ -> Array.make capacity dummy);
        heads = Array.make workers 0;
        lens = Array.make workers 0;
        r_seq = 0;
        r_dropped = 0;
      }

  let fn f = Fn f

  let tee a b = match (a, b) with Null, s | s, Null -> s | a, b -> Tee (a, b)

  let rec enabled = function
    | Null -> false
    | Stream _ | Ring _ | Fn _ -> true
    | Tee (a, b) -> enabled a || enabled b

  let rec captures = function
    | Null | Fn _ -> false
    | Stream _ | Ring _ -> true
    | Tee (a, b) -> captures a || captures b

  let push_ring r ~time ~worker ev =
    let w = if worker < 0 || worker >= Array.length r.bufs then 0 else worker in
    let rec_ = { seq = r.r_seq; time; worker; event = ev } in
    r.r_seq <- r.r_seq + 1;
    if r.lens.(w) < r.capacity then begin
      r.bufs.(w).((r.heads.(w) + r.lens.(w)) mod r.capacity) <- rec_;
      r.lens.(w) <- r.lens.(w) + 1
    end
    else begin
      (* full: overwrite the oldest slot *)
      r.bufs.(w).(r.heads.(w)) <- rec_;
      r.heads.(w) <- (r.heads.(w) + 1) mod r.capacity;
      r.r_dropped <- r.r_dropped + 1
    end

  let rec emit t ~time ~worker ev =
    match t with
    | Null -> ()
    | Stream s ->
        if s.s_keep ev then begin
          s.items <- { seq = s.s_seq; time; worker; event = ev } :: s.items;
          s.s_len <- s.s_len + 1;
          s.s_seq <- s.s_seq + 1
        end
    | Ring r -> if r.r_keep ev then push_ring r ~time ~worker ev
    | Fn f -> f ~time ~worker ev
    | Tee (a, b) ->
        emit a ~time ~worker ev;
        emit b ~time ~worker ev

  let ring_records r =
    let out = ref [] in
    Array.iteri
      (fun w buf ->
        for i = r.lens.(w) - 1 downto 0 do
          out := buf.((r.heads.(w) + i) mod r.capacity) :: !out
        done)
      r.bufs;
    List.sort (fun a b -> compare a.seq b.seq) !out

  (* Each branch of a tee assigns its own [seq] numbers, so branch lists can
     only be recombined on the emission timestamp. Branch lists are already
     time-sorted (the engine dispatches in virtual-time order), so a stable
     merge — left branch first on ties — reconstructs one chronological
     stream instead of concatenating the branches back to back. *)
  let rec merge_by_time a b =
    match (a, b) with
    | [], l | l, [] -> l
    | x :: xs, y :: ys ->
        if x.time <= y.time then x :: merge_by_time xs b else y :: merge_by_time a ys

  let rec captured = function
    | Null | Fn _ -> []
    | Stream s -> List.rev s.items
    | Ring r -> ring_records r
    | Tee (a, b) -> merge_by_time (captured a) (captured b)

  let rec dropped = function
    | Null | Stream _ | Fn _ -> 0
    | Ring r -> r.r_dropped
    | Tee (a, b) -> dropped a + dropped b
end

(* ------------------------------------------------------------------ *)
(* Journal codec: one compact array per record.                        *)
(* ------------------------------------------------------------------ *)

let fault_tag = function
  | Beat_dropped -> "beat-dropped"
  | Beat_delayed _ -> "beat-delayed"
  | Steal_failed -> "steal-failed"
  | Stall _ -> "stall"
  | Wakeup_delayed -> "wakeup-delayed"

let record_to_json r =
  let base = [ Json.Int r.time; Json.Int r.worker ] in
  let tail =
    match r.event with
    | Heartbeat_generated -> [ Json.Str "hg" ]
    | Heartbeat_detected -> [ Json.Str "hd" ]
    | Heartbeat_missed -> [ Json.Str "hm" ]
    | Poll -> [ Json.Str "po" ]
    | Promotion { level } -> [ Json.Str "pr"; Json.Int level ]
    | Steal_attempt -> [ Json.Str "sa" ]
    | Steal_success -> [ Json.Str "ss" ]
    | Task_spawned -> [ Json.Str "ts" ]
    | Task_joined_slow -> [ Json.Str "tj" ]
    | Leftover_run -> [ Json.Str "lr" ]
    | Chunk_update { key; chunk } -> [ Json.Str "cu"; Json.Int key; Json.Int chunk ]
    | Fault_injected f ->
        Json.Str "fi" :: Json.Str (fault_tag f)
        :: (match f with
           | Beat_delayed j -> [ Json.Int j ]
           | Stall c -> [ Json.Int c ]
           | Beat_dropped | Steal_failed | Wakeup_delayed -> [])
    | Mechanism_downgrade -> [ Json.Str "md" ]
    | Interval { t0; kind } -> [ Json.Str "iv"; Json.Int t0; Json.Str kind ]
    | Slice_enter { nest; ord; key; lo; hi } ->
        [ Json.Str "se"; Json.Int nest; Json.Int ord; Json.Int key; Json.Int lo; Json.Int hi ]
    | Iter_exec { nest; ord; key; lo; hi } ->
        [ Json.Str "ie"; Json.Int nest; Json.Int ord; Json.Int key; Json.Int lo; Json.Int hi ]
    | Task_pushed { task } -> [ Json.Str "dp"; Json.Int task ]
    | Task_popped { task } -> [ Json.Str "dq"; Json.Int task ]
    | Task_stolen { task; victim } -> [ Json.Str "dl"; Json.Int task; Json.Int victim ]
    | Task_exec { task } -> [ Json.Str "dx"; Json.Int task ]
    | Chunk_decision { key; old_chunk; min_polls; chunk } ->
        [ Json.Str "cd"; Json.Int key; Json.Int old_chunk; Json.Int min_polls; Json.Int chunk ]
    | Promote_choice { cur; tgt; chain } ->
        [
          Json.Str "pc";
          Json.Int cur;
          Json.Int tgt;
          Json.Arr
            (List.map
               (fun (o, s, rem) ->
                 Json.Arr [ Json.Int o; Json.Int (if s then 1 else 0); Json.Int rem ])
               chain);
        ]
    | Job_submitted { job; tenant } -> [ Json.Str "jb"; Json.Int job; Json.Int tenant ]
    | Job_admitted { job; tenant; queued } ->
        [ Json.Str "ja"; Json.Int job; Json.Int tenant; Json.Int queued ]
    | Job_shed { job; tenant; reason } ->
        [ Json.Str "jh"; Json.Int job; Json.Int tenant; Json.Str reason ]
    | Job_started { job; tenant; budget } ->
        [ Json.Str "jr"; Json.Int job; Json.Int tenant; Json.Int budget ]
    | Job_preempted { job; tenant } -> [ Json.Str "jp"; Json.Int job; Json.Int tenant ]
    | Job_checkpointed { job; tenant; at_cycle } ->
        [ Json.Str "jk"; Json.Int job; Json.Int tenant; Json.Int at_cycle ]
    | Job_resumed { job; tenant; episode; budget } ->
        [ Json.Str "ju"; Json.Int job; Json.Int tenant; Json.Int episode; Json.Int budget ]
    | Job_finished { job; tenant; state; promotions } ->
        [ Json.Str "jf"; Json.Int job; Json.Int tenant; Json.Str state; Json.Int promotions ]
    | Breaker_transition { tenant; from_state; to_state } ->
        [ Json.Str "bk"; Json.Int tenant; Json.Str from_state; Json.Str to_state ]
    | Budget_refill { tenant; amount } -> [ Json.Str "br"; Json.Int tenant; Json.Int amount ]
  in
  Json.Arr (base @ tail)

let event_of_parts = function
  | [ Json.Str "hg" ] -> Some Heartbeat_generated
  | [ Json.Str "hd" ] -> Some Heartbeat_detected
  | [ Json.Str "hm" ] -> Some Heartbeat_missed
  | [ Json.Str "po" ] -> Some Poll
  | [ Json.Str "pr"; Json.Int level ] -> Some (Promotion { level })
  | [ Json.Str "sa" ] -> Some Steal_attempt
  | [ Json.Str "ss" ] -> Some Steal_success
  | [ Json.Str "ts" ] -> Some Task_spawned
  | [ Json.Str "tj" ] -> Some Task_joined_slow
  | [ Json.Str "lr" ] -> Some Leftover_run
  | [ Json.Str "cu"; Json.Int key; Json.Int chunk ] -> Some (Chunk_update { key; chunk })
  | [ Json.Str "fi"; Json.Str "beat-dropped" ] -> Some (Fault_injected Beat_dropped)
  | [ Json.Str "fi"; Json.Str "beat-delayed"; Json.Int j ] ->
      Some (Fault_injected (Beat_delayed j))
  | [ Json.Str "fi"; Json.Str "steal-failed" ] -> Some (Fault_injected Steal_failed)
  | [ Json.Str "fi"; Json.Str "stall"; Json.Int c ] -> Some (Fault_injected (Stall c))
  | [ Json.Str "fi"; Json.Str "wakeup-delayed" ] -> Some (Fault_injected Wakeup_delayed)
  | [ Json.Str "md" ] -> Some Mechanism_downgrade
  | [ Json.Str "iv"; Json.Int t0; Json.Str kind ] -> Some (Interval { t0; kind })
  | [ Json.Str "se"; Json.Int nest; Json.Int ord; Json.Int key; Json.Int lo; Json.Int hi ] ->
      Some (Slice_enter { nest; ord; key; lo; hi })
  | [ Json.Str "ie"; Json.Int nest; Json.Int ord; Json.Int key; Json.Int lo; Json.Int hi ] ->
      Some (Iter_exec { nest; ord; key; lo; hi })
  | [ Json.Str "dp"; Json.Int task ] -> Some (Task_pushed { task })
  | [ Json.Str "dq"; Json.Int task ] -> Some (Task_popped { task })
  | [ Json.Str "dl"; Json.Int task; Json.Int victim ] -> Some (Task_stolen { task; victim })
  | [ Json.Str "dx"; Json.Int task ] -> Some (Task_exec { task })
  | [ Json.Str "cd"; Json.Int key; Json.Int old_chunk; Json.Int min_polls; Json.Int chunk ] ->
      Some (Chunk_decision { key; old_chunk; min_polls; chunk })
  | [ Json.Str "pc"; Json.Int cur; Json.Int tgt; Json.Arr chain ] ->
      let parse_cand = function
        | Json.Arr [ Json.Int o; Json.Int s; Json.Int rem ] -> Some (o, s <> 0, rem)
        | _ -> None
      in
      let cands = List.filter_map parse_cand chain in
      if List.length cands = List.length chain then Some (Promote_choice { cur; tgt; chain = cands })
      else None
  | [ Json.Str "jb"; Json.Int job; Json.Int tenant ] -> Some (Job_submitted { job; tenant })
  | [ Json.Str "ja"; Json.Int job; Json.Int tenant; Json.Int queued ] ->
      Some (Job_admitted { job; tenant; queued })
  | [ Json.Str "jh"; Json.Int job; Json.Int tenant; Json.Str reason ] ->
      Some (Job_shed { job; tenant; reason })
  | [ Json.Str "jr"; Json.Int job; Json.Int tenant; Json.Int budget ] ->
      Some (Job_started { job; tenant; budget })
  | [ Json.Str "jp"; Json.Int job; Json.Int tenant ] -> Some (Job_preempted { job; tenant })
  | [ Json.Str "jk"; Json.Int job; Json.Int tenant; Json.Int at_cycle ] ->
      Some (Job_checkpointed { job; tenant; at_cycle })
  | [ Json.Str "ju"; Json.Int job; Json.Int tenant; Json.Int episode; Json.Int budget ] ->
      Some (Job_resumed { job; tenant; episode; budget })
  | [ Json.Str "jf"; Json.Int job; Json.Int tenant; Json.Str state; Json.Int promotions ] ->
      Some (Job_finished { job; tenant; state; promotions })
  | [ Json.Str "bk"; Json.Int tenant; Json.Str from_state; Json.Str to_state ] ->
      Some (Breaker_transition { tenant; from_state; to_state })
  | [ Json.Str "br"; Json.Int tenant; Json.Int amount ] -> Some (Budget_refill { tenant; amount })
  | _ -> None

let records_to_json records = Json.Arr (List.map record_to_json records)

let records_of_json = function
  | Json.Arr items ->
      let seq = ref (-1) in
      List.filter_map
        (function
          | Json.Arr (Json.Int time :: Json.Int worker :: parts) -> (
              match event_of_parts parts with
              | Some event ->
                  incr seq;
                  Some { seq = !seq; time; worker; event }
              | None -> None)
          | _ -> None)
        items
  | _ -> []
