type ctx = { mutable acc : Report.metric list (* newest first *) }

let det ctx name value =
  ctx.acc <- { Report.metric = name; value; kind = Report.Deterministic } :: ctx.acc

let deti ctx name value = det ctx name (float_of_int value)

let adv ctx name value =
  ctx.acc <- { Report.metric = name; value; kind = Report.Advisory } :: ctx.acc

(* Words allocated by [f]: the minor counter is a pure allocation count;
   subtracting promoted words from the major counter leaves only direct
   major-heap allocations, so neither number depends on when the GC chose
   to run.

   [Gc.minor_words ()] reads the young pointer and is exact; the
   [quick_stat] major/promoted counters are only flushed at a minor
   collection (stale mid-region on OCaml 5), so force one before each
   sample — the promotion it causes cancels out of [major - promoted].

   Reproducibility, measured across processes: minor words are exact
   and bit-stable for plain OCaml code, but the major delta jitters by a
   handful of words (runtime-internal major allocations leak into it),
   and bodies that run effect-handler fibers see tens of words of minor
   jitter from the fiber machinery. So [alloc_major_words] is always
   advisory, and callers whose body enters the executor pass
   [~det_alloc:false] to downgrade [alloc_minor_words] too — gating
   hard on a nondeterministic counter would make the perf gate flaky. *)
let sample () =
  Gc.minor ();
  let s = Gc.quick_stat () in
  (Gc.minor_words (), s.Gc.major_words -. s.Gc.promoted_words)

let run ~name ?(det_alloc = true) f =
  let ctx = { acc = [] } in
  let minor0, major0 = sample () in
  let t0 = Unix.gettimeofday () in
  f ctx;
  let t1 = Unix.gettimeofday () in
  let minor1, major1 = sample () in
  let minor = minor1 -. minor0 in
  let major = major1 -. major0 in
  (if det_alloc then det else adv) ctx "alloc_minor_words" minor;
  adv ctx "alloc_major_words" major;
  adv ctx "wall_ns" ((t1 -. t0) *. 1e9);
  { Report.probe = name; metrics = List.rev ctx.acc }
