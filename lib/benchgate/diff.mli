(** Regression diff between two {!Report.t} values: the binding half of the
    perf gate.

    All deterministic metrics are costs (cycles, allocation words, event
    counts): lower is better. A deterministic metric that grew by more than
    [threshold] (relative; default 2%) is a {!Regressed} line and makes the
    verdict {!Fail}; one that shrank past the threshold is {!Improved}
    (still {!Pass}). Advisory metrics (wall time) can at most {!Warn}, and
    only past the looser [adv_threshold] (default 25%) so timer jitter does
    not drown the table. Probes or metrics present on only one side —
    metric-set skew between an old baseline and a new suite — never fail
    the gate: they surface as {!Added} / {!Removed} warnings. *)

type status = Unchanged | Improved | Regressed | Changed | Added | Removed

type line = {
  probe : string;
  metric : string;
  kind : Report.kind option;  (** [None] for whole-probe Added/Removed lines *)
  old_v : float option;
  new_v : float option;
  delta_pct : float option;  (** [None] when either side is missing or old = 0 *)
  status : status;
}

type verdict = Pass | Warn | Fail

val status_name : status -> string

val verdict_name : verdict -> string

val compare :
  ?threshold:float -> ?adv_threshold:float -> old:Report.t -> new_:Report.t -> unit -> line list * verdict
(** Lines come out in the old report's probe order, new-only probes last;
    within a probe, old metric order then new-only metrics. *)

val exit_code : verdict -> int
(** [Fail -> 1], [Pass | Warn -> 0]: only deterministic regressions gate. *)

val render : ?threshold:float -> old:Report.t -> new_:Report.t -> line list -> verdict -> string
(** Human delta table (non-[Unchanged] lines, plus a one-line summary). *)
