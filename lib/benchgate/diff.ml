type status = Unchanged | Improved | Regressed | Changed | Added | Removed

type line = {
  probe : string;
  metric : string;
  kind : Report.kind option;
  old_v : float option;
  new_v : float option;
  delta_pct : float option;
  status : status;
}

type verdict = Pass | Warn | Fail

let status_name = function
  | Unchanged -> "ok"
  | Improved -> "improved"
  | Regressed -> "REGRESSED"
  | Changed -> "changed"
  | Added -> "added"
  | Removed -> "removed"

let verdict_name = function Pass -> "PASS" | Warn -> "WARN" | Fail -> "FAIL"

let exit_code = function Fail -> 1 | Pass | Warn -> 0

(* Names on the left side in their order, then right-only names in theirs. *)
let union_names left right = left @ List.filter (fun n -> not (List.mem n left)) right

let probe_names (r : Report.t) = List.map (fun p -> p.Report.probe) r.Report.probes

let metric_names (p : Report.probe) = List.map (fun m -> m.Report.metric) p.Report.metrics

let whole_probe_line ~probe status =
  { probe; metric = "*"; kind = None; old_v = None; new_v = None; delta_pct = None; status }

let compare_metric ~threshold ~adv_threshold ~probe (old_m : Report.metric option)
    (new_m : Report.metric option) name =
  let kind =
    match (old_m, new_m) with
    | _, Some m | Some m, _ -> Some m.Report.kind
    | None, None -> None
  in
  let old_v = Option.map (fun m -> m.Report.value) old_m in
  let new_v = Option.map (fun m -> m.Report.value) new_m in
  match (old_v, new_v) with
  | None, None -> None
  | Some _, None ->
      Some { probe; metric = name; kind; old_v; new_v; delta_pct = None; status = Removed }
  | None, Some _ ->
      Some { probe; metric = name; kind; old_v; new_v; delta_pct = None; status = Added }
  | Some o, Some n ->
      let delta_pct = if o = 0.0 then None else Some (100.0 *. (n -. o) /. o) in
      let rel = match delta_pct with Some p -> p /. 100.0 | None -> 0.0 in
      let status =
        match kind with
        | Some Report.Deterministic ->
            (* Lower is better: every deterministic metric is a cost. A
               baseline of exactly zero is a zero-cost guarantee, so any
               nonzero candidate is a regression. *)
            if o = 0.0 then if n = 0.0 then Unchanged else Regressed
            else if rel > threshold then Regressed
            else if rel < -.threshold then Improved
            else Unchanged
        | Some Report.Advisory ->
            if o <> 0.0 && Float.abs rel > adv_threshold then Changed else Unchanged
        | None -> Unchanged
      in
      Some { probe; metric = name; kind; old_v; new_v; delta_pct; status }

let compare ?(threshold = 0.02) ?(adv_threshold = 0.25) ~(old : Report.t) ~(new_ : Report.t) ()
    =
  let lines = ref [] in
  let push l = lines := l :: !lines in
  List.iter
    (fun name ->
      match (Report.find_probe old name, Report.find_probe new_ name) with
      | None, None -> ()
      | Some _, None -> push (whole_probe_line ~probe:name Removed)
      | None, Some _ -> push (whole_probe_line ~probe:name Added)
      | Some op, Some np ->
          List.iter
            (fun mname ->
              match
                compare_metric ~threshold ~adv_threshold ~probe:name
                  (Report.find_metric op mname) (Report.find_metric np mname) mname
              with
              | Some l -> push l
              | None -> ())
            (union_names (metric_names op) (metric_names np)))
    (union_names (probe_names old) (probe_names new_));
  let lines = List.rev !lines in
  let verdict =
    List.fold_left
      (fun acc l ->
        match (acc, l.status) with
        | Fail, _ | _, Regressed -> Fail
        | Warn, _ | _, (Changed | Added | Removed) -> Warn
        | Pass, (Unchanged | Improved) -> Pass)
      Pass lines
  in
  (lines, verdict)

(* ------------------------------------------------------------------ *)
(* Rendering. Self-contained (benchgate's own Report module shadows the
   report library, so Report.Table is out of reach here).               *)
(* ------------------------------------------------------------------ *)

let cell_opt = function
  | None -> "-"
  | Some v ->
      if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
      else Printf.sprintf "%.4g" v

let cell_pct = function None -> "-" | Some p -> Printf.sprintf "%+.2f%%" p

let render_rows header rows =
  let widths = Array.of_list (List.map String.length header) in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- Stdlib.max widths.(i) (String.length cell)))
    rows;
  let buf = Buffer.create 1024 in
  let pad i s = s ^ String.make (widths.(i) - String.length s) ' ' in
  let emit_row cells =
    Buffer.add_string buf "  ";
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad i cell))
      cells;
    Buffer.add_char buf '\n'
  in
  emit_row header;
  emit_row (List.mapi (fun i _ -> String.make widths.(i) '-') header);
  List.iter emit_row rows;
  Buffer.contents buf

let render ?(threshold = 0.02) ~(old : Report.t) ~(new_ : Report.t) lines verdict =
  let interesting = List.filter (fun l -> l.status <> Unchanged) lines in
  let rows =
    List.map
      (fun l ->
        [
          l.probe;
          l.metric;
          (match l.kind with Some k -> Report.kind_tag k | None -> "-");
          cell_opt l.old_v;
          cell_opt l.new_v;
          cell_pct l.delta_pct;
          status_name l.status;
        ])
      interesting
  in
  let count st = List.length (List.filter (fun l -> l.status = st) lines) in
  let header =
    Printf.sprintf "bench-diff: %s -> %s (gate: deterministic metric +%.0f%% hard-fails)\n"
      old.Report.label new_.Report.label (100.0 *. threshold)
  in
  let body =
    if interesting = [] then "  no differences\n"
    else render_rows [ "probe"; "metric"; "class"; "old"; "new"; "delta"; "status" ] rows
  in
  let summary =
    Printf.sprintf
      "%s: %d comparisons, %d regressed, %d improved, %d advisory-changed, %d added, %d removed\n"
      (verdict_name verdict) (List.length lines) (count Regressed) (count Improved)
      (count Changed) (count Added) (count Removed)
  in
  header ^ body ^ summary
