type kind = Deterministic | Advisory

type metric = { metric : string; value : float; kind : kind }

type probe = { probe : string; metrics : metric list }

type t = {
  schema : int;
  label : string;
  notes : (string * string) list;
  probes : probe list;
}

let schema_version = 1

let make ?(notes = []) ~label probes = { schema = schema_version; label; notes; probes }

let find_probe t name = List.find_opt (fun p -> p.probe = name) t.probes

let find_metric p name = List.find_opt (fun m -> m.metric = name) p.metrics

let kind_tag = function Deterministic -> "det" | Advisory -> "adv"

exception Malformed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

let kind_of_tag = function
  | "det" -> Deterministic
  | "adv" -> Advisory
  | other -> fail "unknown metric kind %S" other

let metric_to_json m =
  Obs.Json.Obj
    [
      ("metric", Obs.Json.Str m.metric);
      ("value", Obs.Json.Float m.value);
      ("kind", Obs.Json.Str (kind_tag m.kind));
    ]

let probe_to_json p =
  Obs.Json.Obj
    [
      ("probe", Obs.Json.Str p.probe);
      ("metrics", Obs.Json.Arr (List.map metric_to_json p.metrics));
    ]

let to_json t =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Int t.schema);
      ("label", Obs.Json.Str t.label);
      ("notes", Obs.Json.Obj (List.map (fun (k, v) -> (k, Obs.Json.Str v)) t.notes));
      ("probes", Obs.Json.Arr (List.map probe_to_json t.probes));
    ]

let metric_of_json = function
  | Obs.Json.Obj fields ->
      let metric =
        match Obs.Json.get_str "metric" fields with
        | Some n -> n
        | None -> fail "metric without a name"
      in
      let value =
        match Obs.Json.get_float "value" fields with
        | Some v -> v
        | None -> fail "metric %S without a numeric value" metric
      in
      let kind =
        match Obs.Json.get_str "kind" fields with
        | Some tag -> kind_of_tag tag
        | None -> fail "metric %S without a kind" metric
      in
      { metric; value; kind }
  | _ -> fail "metric is not an object"

let probe_of_json = function
  | Obs.Json.Obj fields ->
      let probe =
        match Obs.Json.get_str "probe" fields with
        | Some n -> n
        | None -> fail "probe without a name"
      in
      let metrics =
        match Obs.Json.mem "metrics" fields with
        | Some (Obs.Json.Arr ms) -> List.map metric_of_json ms
        | _ -> fail "probe %S without a metrics array" probe
      in
      { probe; metrics }
  | _ -> fail "probe is not an object"

let of_json = function
  | Obs.Json.Obj fields ->
      let schema =
        match Obs.Json.get_int "schema" fields with
        | Some v -> v
        | None -> fail "report without a schema field"
      in
      if schema <> schema_version then
        fail "unsupported report schema %d (this build reads %d)" schema schema_version;
      let label = Option.value ~default:"" (Obs.Json.get_str "label" fields) in
      let notes =
        match Obs.Json.mem "notes" fields with
        | Some (Obs.Json.Obj kvs) ->
            List.filter_map
              (fun (k, v) -> match v with Obs.Json.Str s -> Some (k, s) | _ -> None)
              kvs
        | _ -> []
      in
      let probes =
        match Obs.Json.mem "probes" fields with
        | Some (Obs.Json.Arr ps) -> List.map probe_of_json ps
        | _ -> fail "report without a probes array"
      in
      { schema; label; notes; probes }
  | _ -> fail "report top level is not an object"

let to_string t = Obs.Json.to_string (to_json t)

let of_string s = of_json (Obs.Json.parse s)

let write_file path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_string t);
      output_char oc '\n')

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_string (String.trim (really_input_string ic (in_channel_length ic))))
