(** The repo's standard perf-gate suite.

    Micro probes cover the runtime primitives whose costs the cost model
    abstracts (deque, rng, perfect-hash leftover table, adaptive chunking)
    plus the two measured hot paths of the simulator itself (trace emission
    into the null-sink fast path, the engine's event-dispatch loop). Macro
    probes run one tiny-scale simulation per figure family of the paper's
    evaluation and record its deterministic scheduler counters.

    Probe names are stable identifiers: [bench/baseline.json] is keyed on
    them, so renaming one shows up as metric-set skew (warn), not silently
    as a pass. *)

val tiny_scale : float

val tiny_workers : int

val micro : unit -> Report.probe list

val macro : unit -> Report.probe list

val all : unit -> Report.probe list
(** [micro () @ macro ()]. *)

val report : ?notes:(string * string) list -> label:string -> unit -> Report.t
(** Run the full suite; scale/workers provenance is merged into [notes]. *)
