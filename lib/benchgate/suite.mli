(** The repo's standard perf-gate suite.

    Micro probes cover the runtime primitives whose costs the cost model
    abstracts (deque, rng, perfect-hash leftover table, adaptive chunking)
    plus the two measured hot paths of the simulator itself (trace emission
    into the null-sink fast path, the engine's event-dispatch loop). Macro
    probes run one tiny-scale simulation per figure family of the paper's
    evaluation and record its deterministic scheduler counters.

    Probe names are stable identifiers: [bench/baseline.json] is keyed on
    them, so renaming one shows up as metric-set skew (warn), not silently
    as a pass. *)

val tiny_scale : float

val tiny_workers : int

val micro : unit -> Report.probe list

val macro : unit -> Report.probe list

val p_sweep : unit -> Report.probe list
(** The event-engine scaling gate: a fixed-iteration synthetic engine
    workload at P ∈ {16, 64, 256} simulated cores. Events dispatched,
    work cycles, makespan, and (engine fibers being deterministic
    allocators) alloc words all gate det, so P-scaling regressions fail
    CI like alloc regressions do. *)

val nightly : unit -> Report.probe list
(** The P=1024 sweep point. Run from the CI nightly profile only; never
    part of {!all}, never gates PRs. *)

val serve : unit -> Report.probe list

val all : unit -> Report.probe list
(** [micro () @ macro () @ p_sweep () @ serve ()]. *)

val report :
  ?notes:(string * string) list -> ?probes:Report.probe list -> label:string -> unit -> Report.t
(** Build a report from [probes] (default: the full {!all} suite);
    scale/workers provenance is merged into [notes]. Pass an explicit
    probe list to emit a partial-suite report (CI's split micro/macro
    steps, the nightly sweep). *)
