(** Probe runner: wraps one measured body with the standard instrument set.

    Besides whatever deterministic metrics the body reports itself (virtual
    cycles, counters), every probe automatically records

    - [alloc_minor_words]: words allocated in the minor heap (Gc delta) —
      deterministic for plain OCaml bodies, hence gated; bodies that run
      effect-handler fibers pass [~det_alloc:false] because the fiber
      machinery adds a few dozen words of cross-process jitter;
    - [alloc_major_words]: words allocated directly in the major heap
      ([major_words - promoted_words] delta) — always {!Report.Advisory};
      runtime-internal major allocations make it jitter by a few words;
    - [wall_ns]: elapsed wall-clock time, {!Report.Advisory} only.

    The body receives a context to report its own metrics through {!det} /
    {!adv}; context metrics appear in declaration order, then the automatic
    instruments. *)

type ctx

val det : ctx -> string -> float -> unit
(** Report one deterministic metric. *)

val deti : ctx -> string -> int -> unit

val adv : ctx -> string -> float -> unit
(** Report one advisory (non-gating) metric. *)

val run : name:string -> ?det_alloc:bool -> (ctx -> unit) -> Report.probe
(** [run ~name body] measures [body]. [det_alloc] (default [true])
    selects whether [alloc_minor_words] is deterministic or advisory. *)
