let tiny_scale = 0.03

let tiny_workers = 8

let seed = 1

(* --------------------------- micro probes ------------------------- *)

let micro_deque () =
  Probe.run ~name:"micro/deque" (fun ctx ->
      let d = Sim.Deque.create () in
      let rounds = 4096 in
      for _ = 1 to rounds do
        for i = 0 to 7 do
          Sim.Deque.push_bottom d i
        done;
        for _ = 1 to 4 do
          ignore (Sim.Deque.pop_bottom d)
        done;
        for _ = 1 to 4 do
          ignore (Sim.Deque.steal d)
        done
      done;
      Probe.deti ctx "ops" (rounds * 16))

let micro_rng () =
  Probe.run ~name:"micro/rng-zipf" (fun ctx ->
      let r = Sim.Sim_rng.create seed in
      let draws = 16384 in
      for _ = 1 to draws do
        ignore (Sim.Sim_rng.zipf r ~alpha:1.4 ~n:1000)
      done;
      Probe.deti ctx "draws" draws)

let micro_perfect_hash () =
  Probe.run ~name:"micro/perfect-hash" (fun ctx ->
      let keys = List.init 24 (fun i -> (i, i / 2)) in
      let t = Hbc_core.Perfect_hash.build keys in
      let lookups = 16384 in
      for i = 1 to lookups do
        ignore (Hbc_core.Perfect_hash.lookup t (i mod 24, i mod 12))
      done;
      Probe.deti ctx "lookups" lookups)

let micro_adaptive_chunking () =
  Probe.run ~name:"micro/adaptive-chunking" (fun ctx ->
      let ac = Sched.Adaptive_chunking.create ~target_polls:8 ~window:4 () in
      let beats = 2048 in
      for _ = 1 to beats do
        for _ = 1 to 8 do
          Sched.Adaptive_chunking.on_poll ac
        done;
        ignore (Sched.Adaptive_chunking.on_heartbeat ac)
      done;
      Probe.deti ctx "beats" beats)

(* The executor's fast path: every runtime event goes through a tee of the
   counting sink and the request's sink, which for an untraced run is
   [null]. This probe emits the exact event mix of a promotion-heavy run
   into that tee: its allocation words are the per-event cost of
   observability when nobody is recording. *)
let micro_trace_emission () =
  Probe.run ~name:"micro/trace-null-emission" (fun ctx ->
      let m = Sim.Metrics.create () in
      let sink = Obs.Trace.Sink.tee (Sim.Metrics.counting_sink m) Obs.Trace.Sink.null in
      let rounds = 4096 in
      for i = 1 to rounds do
        Obs.Trace.Sink.emit sink ~time:i ~worker:(i land 7) Obs.Trace.Poll;
        Obs.Trace.Sink.emit sink ~time:i ~worker:(i land 7) Obs.Trace.Steal_attempt;
        Obs.Trace.Sink.emit sink ~time:i ~worker:(i land 7) (Obs.Trace.promotion (i land 3));
        Obs.Trace.Sink.emit sink ~time:i ~worker:(i land 7) Obs.Trace.Heartbeat_generated
      done;
      Probe.deti ctx "events" (rounds * 4);
      Probe.deti ctx "counted_promotions" m.Sim.Metrics.promotions)

(* The engine's dispatch loop: workers ticking their clocks plus one
   recurring timer, i.e. the event pattern every simulated run is made of.
   [events_processed] and the makespan pin the dispatch behavior; the
   allocation words price one event. *)
let micro_engine_dispatch () =
  Probe.run ~name:"micro/engine-dispatch" (fun ctx ->
      let eng = Sim.Engine.create ~seed ~num_workers:4 () in
      let ticks = ref 0 in
      let cancel = Sim.Engine.every eng ~start:16 ~interval:16 (fun () -> incr ticks) in
      Sim.Engine.run eng (fun _w ->
          for _ = 1 to 2048 do
            Sim.Engine.advance eng 3
          done);
      cancel ();
      Probe.deti ctx "events_processed" (Sim.Engine.events_processed eng);
      Probe.deti ctx "makespan_cycles" (Sim.Engine.max_time eng);
      Probe.deti ctx "timer_ticks" !ticks)

(* Checkpoint capture at a pause boundary, priced end to end: pause a
   real run mid-flight, serialize the checkpoint through its byte-stable
   codec, then resume and run to completion. The codec length, slice and
   iteration counts pin the capture itself; the resumed makespan equalling
   the uninterrupted one pins the replay (hot-path cost shows up in the
   makespan/overhead metrics of the macro probes, which share the
   executor's pause-check). Effect fibers: alloc advisory. *)
let micro_checkpoint_capture () =
  Probe.run ~name:"micro/checkpoint-capture" ~det_alloc:false (fun ctx ->
      let entry = Workloads.Registry.find "spmv-powerlaw" in
      let rt = { Hbc_core.Rt_config.default with workers = tiny_workers; seed } in
      let (Ir.Program.Any p) = entry.Workloads.Registry.make tiny_scale in
      let full = Hbc_core.Executor.run rt p in
      let boundary = full.Sim.Run_result.makespan / 2 in
      let paused =
        Hbc_core.Executor.run ~request:(Hbc_core.Run_request.make ~pause_at:boundary ()) rt p
      in
      let ck =
        match paused.Sim.Run_result.termination with
        | Sim.Run_result.Paused ck -> ck
        | _ -> failwith "checkpoint probe: run did not pause"
      in
      let encoded = Sim.Checkpoint_state.to_string ck in
      let rounds = 256 in
      for _ = 1 to rounds do
        ignore (Sim.Checkpoint_state.to_string ck)
      done;
      let resumed =
        Hbc_core.Executor.run ~request:(Hbc_core.Run_request.make ~resume_from:ck ()) rt p
      in
      Probe.deti ctx "encodes" rounds;
      Probe.deti ctx "checkpoint_bytes" (String.length encoded);
      Probe.deti ctx "live_slices" (List.length ck.Sim.Checkpoint_state.slices);
      Probe.deti ctx "remaining_iters" (Sim.Checkpoint_state.remaining_iterations ck);
      Probe.deti ctx "resumed_makespan" resumed.Sim.Run_result.makespan;
      Probe.deti ctx "identical"
        (if
           resumed.Sim.Run_result.makespan = full.Sim.Run_result.makespan
           && resumed.Sim.Run_result.fingerprint = full.Sim.Run_result.fingerprint
         then 1
         else 0))

(* The domains backend's dispatch overhead: one worker, deterministic
   poll-count heartbeats, untraced (the backend's lock-free fast path —
   identity critical sections, no-op emission). Single-worker scheduling
   is fully deterministic (the owner pops its own spawned halves in
   order), so promotions and body work gate; real time is advisory. *)
let micro_domains_dispatch () =
  Probe.run ~name:"micro/domains-dispatch" ~det_alloc:false (fun ctx ->
      let entry = Workloads.Registry.find "spmv-powerlaw" in
      let rt = { Hbc_core.Rt_config.default with workers = 1; seed } in
      let (Ir.Program.Any p) = entry.Workloads.Registry.make tiny_scale in
      let r = Hb_parallel.Native_run.run ~beat:(Hb_parallel.Native_run.Every_polls 64) rt p in
      Probe.deti ctx "promotions" r.Sim.Run_result.metrics.Sim.Metrics.promotions;
      Probe.deti ctx "work_cycles" r.Sim.Run_result.work_cycles;
      Probe.adv ctx "makespan_wall_us" (Float.of_int r.Sim.Run_result.makespan))

(* The chaos-era guarantee on the untraced native fast path: with no
   injector attached and no sink enabled, the backend hooks the scheduler
   hits per scheduling point — steal-veto check, wake probe, emission,
   critical section, charge — are single loads/stores and must allocate
   NOTHING. The loop's minor words are measured directly and gated as a
   deterministic metric, so the baseline pins them at zero and any draw,
   closure or boxing added to the hot path fails the gate. *)
let micro_native_untraced_overhead () =
  Probe.run ~name:"micro/native-untraced-overhead" (fun ctx ->
      let b =
        Hb_parallel.Domains_backend.create ~workers:1 ~trace:Obs.Trace.Sink.null ~capture:false
      in
      Hb_parallel.Domains_backend.register ~worker:0;
      let rounds = 65536 in
      let vetoes = ref 0 in
      let w0 = Gc.minor_words () in
      for _ = 1 to rounds do
        if Hb_parallel.Domains_backend.steal_vetoed b then incr vetoes;
        Hb_parallel.Domains_backend.wake_one b;
        Hb_parallel.Domains_backend.emit b Obs.Trace.Mechanism_downgrade;
        Hb_parallel.Domains_backend.critical b ignore;
        Hb_parallel.Domains_backend.charge_push b;
        Hb_parallel.Domains_backend.charge_steal_attempt b
      done;
      let hot_words = int_of_float (Gc.minor_words () -. w0) in
      Probe.deti ctx "rounds" rounds;
      Probe.deti ctx "vetoes" !vetoes;
      Probe.deti ctx "hot_path_alloc_words" hot_words)

let micro () =
  [
    micro_deque ();
    micro_rng ();
    micro_perfect_hash ();
    micro_adaptive_chunking ();
    micro_trace_emission ();
    micro_engine_dispatch ();
    micro_checkpoint_capture ();
    micro_domains_dispatch ();
    micro_native_untraced_overhead ();
  ]

(* --------------------------- macro probes ------------------------- *)

let result_metrics ctx (r : Sim.Run_result.t) =
  let m = r.Sim.Run_result.metrics in
  Probe.deti ctx "makespan_cycles" r.Sim.Run_result.makespan;
  Probe.deti ctx "work_cycles" r.Sim.Run_result.work_cycles;
  Probe.deti ctx "overhead_cycles" m.Sim.Metrics.overhead_cycles;
  Probe.deti ctx "promotions" m.Sim.Metrics.promotions;
  Probe.deti ctx "tasks_spawned" m.Sim.Metrics.tasks_spawned;
  Probe.deti ctx "steals" m.Sim.Metrics.steals;
  Probe.deti ctx "steal_attempts" m.Sim.Metrics.steal_attempts;
  Probe.deti ctx "polls" m.Sim.Metrics.polls;
  Probe.deti ctx "heartbeats_detected" m.Sim.Metrics.heartbeats_detected

(* Macro bodies run the effect-handler executor, whose fiber machinery
   allocates nondeterministically (see Probe): alloc words advisory. *)
let hbc_probe ~name ?(cfg = fun c -> c) bench =
  Probe.run ~name ~det_alloc:false (fun ctx ->
      let entry = Workloads.Registry.find bench in
      let rt =
        { (cfg Hbc_core.Rt_config.default) with Hbc_core.Rt_config.workers = tiny_workers; seed }
      in
      let (Ir.Program.Any p) = entry.Workloads.Registry.make tiny_scale in
      result_metrics ctx (Hbc_core.Executor.run rt p))

let omp_probe ~name ~schedule bench =
  Probe.run ~name ~det_alloc:false (fun ctx ->
      let entry = Workloads.Registry.find bench in
      let oc =
        { (Baselines.Openmp.dynamic ()) with Baselines.Openmp.workers = tiny_workers; seed; schedule }
      in
      let (Ir.Program.Any p) = entry.Workloads.Registry.make tiny_scale in
      result_metrics ctx (Baselines.Openmp.run_program oc p))

let macro () =
  [
    (* Figs. 4-5: nested parallelism on the irregular suite. *)
    hbc_probe ~name:"macro/fig4-5/spmv-powerlaw-hbc" "spmv-powerlaw";
    (* Figs. 6-7: the TPAL runtime (static chunks, ping thread, inline
       leftover) on its own suite. *)
    hbc_probe ~name:"macro/fig6-7/plus-reduce-array-tpal"
      ~cfg:(fun _ ->
        Hbc_core.Rt_config.tpal
          ~chunk:(Workloads.Registry.find "plus-reduce-array").Workloads.Registry.tpal_chunk)
      "plus-reduce-array";
    (* Figs. 8, 10, 11: chunking mechanisms under software polling. *)
    hbc_probe ~name:"macro/fig8-10-11/mandelbrot-static-chunk"
      ~cfg:(fun c ->
        {
          c with
          Hbc_core.Rt_config.chunk =
            Hbc_core.Compiled.Static (Workloads.Registry.find "mandelbrot").Workloads.Registry.tpal_chunk;
        })
      "mandelbrot";
    (* Fig. 9: interrupt-based signaling (kernel-module broadcast). *)
    hbc_probe ~name:"macro/fig9/spmv-arrowhead-kernel-module"
      ~cfg:(fun c ->
        { c with Hbc_core.Rt_config.mechanism = Hbc_core.Rt_config.Interrupt_kernel_module })
      "spmv-arrowhead";
    (* Figs. 12-13: adaptive chunking (the default HBC configuration). *)
    hbc_probe ~name:"macro/fig12-13/kmeans-adaptive" "kmeans";
    (* Figs. 14-15: the hand-written irregular graph kernels. *)
    hbc_probe ~name:"macro/fig14-15/bfs-hbc" "bfs";
    (* Fig. 16: regular workloads against OpenMP static. *)
    omp_probe ~name:"macro/fig16/srad-omp-static" ~schedule:Baselines.Openmp.Static "srad";
  ]

(* --------------------------- P-sweep probes ----------------------- *)

(* Datacenter-scale event-engine scaling gate. Each probe drives a pure
   engine workload at P simulated cores and a fixed per-worker iteration
   count: every worker advances by a mixed schedule of cost-model-sized
   steps (50..1073 cycles — the poll/steal/promotion cost range), a
   recurring heartbeat-interval timer fires throughout, and one
   far-future callback parks in the calendar queue's overflow bucket.
   Unlike the executor macros this path has no effect-handler executor
   fibers, only engine fibers, which allocate deterministically — so
   alloc words gate det here, and a per-event allocation regression in
   the queue fails CI at any P. Events dispatched, work cycles, and
   makespan pin the dispatch behavior itself: a scheduling change that
   alters event counts at P=256 but not P=16 is a scaling regression
   this sweep exists to catch. *)
let p_sweep_iters = 1024

let p_sweep_probe p =
  Probe.run ~name:(Printf.sprintf "macro/p-sweep/engine-p%d" p) (fun ctx ->
      let eng = Sim.Engine.create ~seed ~num_workers:p () in
      let ticks = ref 0 in
      let cancel =
        Sim.Engine.every eng ~start:30_000 ~interval:30_000 (fun () -> incr ticks)
      in
      (* Beyond the wheel horizon: exercises the sorted overflow lane. *)
      Sim.Engine.schedule_at eng ~time:1_000_000_000 (fun () -> ());
      let work = ref 0 in
      Sim.Engine.run eng (fun w ->
          for i = 1 to p_sweep_iters do
            let c = 50 + ((i * ((w land 7) + 7)) land 1023) in
            work := !work + c;
            Sim.Engine.advance eng c
          done);
      cancel ();
      Probe.deti ctx "events_dispatched" (Sim.Engine.events_processed eng);
      Probe.deti ctx "work_cycles" !work;
      Probe.deti ctx "makespan_cycles" (Sim.Engine.max_time eng);
      Probe.deti ctx "timer_ticks" !ticks)

let p_sweep () = List.map p_sweep_probe [ 16; 64; 256 ]

(* The nightly-profile sweep: P=1024 is minutes of fiber setup on CI
   runners, so it runs from the workflow_dispatch nightly profile and
   never gates PRs. *)
let nightly () = [ p_sweep_probe 1024 ]

(* --------------------------- serve probes ------------------------- *)

(* Multi-tenant serving: tail latency and goodput are deterministic
   functions of the seed (virtual time end to end), so p50/p99 sojourn and
   goodput-under-overload are gated like any other det metric. Inner runs
   use effect fibers: alloc advisory. *)
let serve_probe ~name mk =
  Probe.run ~name ~det_alloc:false (fun ctx ->
      let r = Serve.Server.run (mk ()) in
      let s = r.Serve.Server.stats in
      Probe.deti ctx "submitted" s.Serve.Server.submitted;
      Probe.deti ctx "completed" s.Serve.Server.completed;
      Probe.deti ctx "shed" s.Serve.Server.shed;
      Probe.deti ctx "deadline_exceeded" s.Serve.Server.deadline_exceeded;
      Probe.deti ctx "failed" s.Serve.Server.failed;
      Probe.deti ctx "breaker_opens" s.Serve.Server.breaker_opens;
      Probe.deti ctx "makespan_cycles" s.Serve.Server.makespan;
      Probe.det ctx "sojourn_p50_cycles" s.Serve.Server.sojourn_p50;
      Probe.det ctx "sojourn_p99_cycles" s.Serve.Server.sojourn_p99;
      Probe.det ctx "goodput" s.Serve.Server.goodput)

(* Light load: everything admits and completes; pins the happy-path tail. *)
let serve_steady () =
  serve_probe ~name:"serve/steady-tail" (fun () ->
      {
        Serve.Server.default_config with
        Serve.Server.tenants =
          [|
            {
              Serve.Server.tenant_default with
              Serve.Server.arrival = Serve.Arrival.Poisson { mean_gap = 60_000.0 };
              jobs = 4;
            };
            {
              Serve.Server.tenant_default with
              Serve.Server.weight = 2;
              arrival = Serve.Arrival.Burst { period = 120_000; size = 2 };
              jobs = 4;
              workloads = [ "mandelbrot" ];
              scale = 0.01;
            };
          |];
        seed = 11;
      })

(* Sustained overload: adversarial bursts against a short queue, tight
   deadlines, and one budget-starved tenant that trips its breaker. Pins
   the degradation path: shed counts, deadline accounting, breaker opens,
   and goodput under overload. *)
let serve_overload () =
  serve_probe ~name:"serve/overload-goodput" (fun () ->
      {
        Serve.Server.default_config with
        Serve.Server.tenants =
          [|
            {
              Serve.Server.tenant_default with
              Serve.Server.arrival = Serve.Arrival.Adversarial { quiet = 30_000; burst = 6 };
              jobs = 12;
              deadline = Some (40_000, 120_000);
            };
            {
              Serve.Server.tenant_default with
              Serve.Server.weight = 3;
              arrival = Serve.Arrival.Poisson { mean_gap = 8_000.0 };
              jobs = 8;
              workloads = [ "spmv-powerlaw" ];
              deadline = Some (60_000, 200_000);
            };
            {
              Serve.Server.tenant_default with
              Serve.Server.arrival = Serve.Arrival.Burst { period = 25_000; size = 4 };
              jobs = 8;
              cycle_budget = Some (2_000, 4_000);
            };
          |];
        queue_capacity = 6;
        seed = 7;
      })

(* Preempt–resume serving: tight deadlines under [Pause_and_requeue], so
   every job is checkpointed and resumed many times yet still completes.
   Pins the checkpoint/resume counts and the preempted tail. *)
let serve_preempt () =
  Probe.run ~name:"serve/preempt-resume" ~det_alloc:false (fun ctx ->
      let r =
        Serve.Server.run
          {
            Serve.Server.default_config with
            Serve.Server.tenants =
              [|
                {
                  Serve.Server.tenant_default with
                  Serve.Server.arrival = Serve.Arrival.Burst { period = 30_000; size = 3 };
                  jobs = 3;
                  scale = 0.01;
                  workers_wanted = 2;
                  deadline = Some (8_000, 8_000);
                };
              |];
            seed = 42;
            preempt = Serve.Server.Pause_and_requeue;
            max_preempts = 50;
          }
      in
      let s = r.Serve.Server.stats in
      Probe.deti ctx "submitted" s.Serve.Server.submitted;
      Probe.deti ctx "completed" s.Serve.Server.completed;
      Probe.deti ctx "checkpointed" s.Serve.Server.checkpointed;
      Probe.deti ctx "resumed" s.Serve.Server.resumed;
      Probe.deti ctx "makespan_cycles" s.Serve.Server.makespan;
      Probe.det ctx "sojourn_p50_cycles" s.Serve.Server.sojourn_p50)

let serve () = [ serve_steady (); serve_overload (); serve_preempt () ]

let all () = micro () @ macro () @ p_sweep () @ serve ()

let report ?(notes = []) ?probes ~label () =
  let provenance =
    [
      ("suite_scale", Printf.sprintf "%.3f" tiny_scale);
      ("suite_workers", string_of_int tiny_workers);
      ("suite_seed", string_of_int seed);
    ]
  in
  let probes = match probes with Some ps -> ps | None -> all () in
  Report.make ~notes:(notes @ provenance) ~label probes
