(** Machine-readable benchmark reports: the perf-gate's unit of exchange.

    A report is a suite of named probes, each carrying a flat list of
    metrics. Every metric is classed {!Deterministic} (virtual cycles,
    event/operation counts, allocation words — a pure function of the code
    under test, so any drift is a real change) or {!Advisory} (wall-clock
    time — machine-dependent, never gated on). Reports serialize with
    {!Obs.Json} to the committed [BENCH_PR<k>.json] files and to
    [bench/baseline.json], and {!Diff} compares two of them. *)

type kind = Deterministic | Advisory

type metric = { metric : string; value : float; kind : kind }

type probe = { probe : string; metrics : metric list }

type t = {
  schema : int;  (** codec version, bumped on layout changes *)
  label : string;  (** human tag, e.g. ["PR4"] or ["ci"] *)
  notes : (string * string) list;
      (** free-form provenance (optimization before/after records, scale) *)
  probes : probe list;
}

val schema_version : int

val make : ?notes:(string * string) list -> label:string -> probe list -> t

val find_probe : t -> string -> probe option

val find_metric : probe -> string -> metric option

val kind_tag : kind -> string
(** ["det"] / ["adv"], the on-disk tags. *)

(** {2 Codec}

    Serialization is deterministic (field order fixed, floats as
    ["%.17g"]), so an unchanged suite produces byte-identical reports. *)

exception Malformed of string
(** Raised by {!of_string} / {!read_file} on JSON that parses but does not
    describe a report (wrong schema, missing fields, bad kind tags). *)

val to_json : t -> Obs.Json.t

val of_json : Obs.Json.t -> t

val to_string : t -> string

val of_string : string -> t
(** @raise Malformed on shape errors, {!Obs.Json.Parse_error} on syntax. *)

val write_file : string -> t -> unit

val read_file : string -> t
(** @raise Sys_error when unreadable, {!Malformed} / {!Obs.Json.Parse_error}
    as {!of_string}. *)
