(** OpenMP-like runtime: the paper's comparison baseline (clang/libomp).

    Models a parallel-for team with static or dynamic scheduling. A parallel
    region forks the team (fork cost), workers grab contiguous blocks
    (static) or chunks from a shared queue (dynamic, per-grab dispatch
    cost), and a barrier joins the region. Nested DOALL loops run serially
    by default ([Outermost_only], the good practice all the paper's OpenMP
    numbers use); [All_doall] reproduces the Sec. 6.7 experiment where every
    DOALL loop gets a pragma: each inner invocation creates a nested region
    whose team construction contends on a global runtime lock and whose
    tasks pay the few-thousand-cycle spawn cost, which is what makes
    spmv-style benchmarks not finish.

    Loops listed in the program's [omp_serial_nests] run sequentially on the
    master (e.g. Rodinia kmeans' center-update reduction), reproducing the
    original benchmarks' pragma placement. Root-loop reductions are combined
    sequentially by the master at the join, as libomp-era benchmarks do. *)

type schedule =
  | Static
  | Dynamic of int  (** dynamic chunk size (default 1) *)
  | Guided of int
      (** guided self-scheduling: chunks proportional to the remaining
          iterations per team member, floored at the given minimum *)

type nested_mode = Outermost_only | All_doall

type config = {
  cost : Sim.Cost_model.t;
  workers : int;
  schedule : schedule;
  nested : nested_mode;
  seed : int;
}
(** Per-run knobs (DNF cap, trial watchdogs, trace sink) arrive through
    the shared {!Hbc_core.Run_request.t} instead. *)

val dynamic : ?chunk:int -> ?workers:int -> unit -> config
(** The paper's default OpenMP configuration: [schedule(dynamic, 1)],
    outermost loop only, 64 workers. *)

val static : ?workers:int -> unit -> config

val guided : ?min_chunk:int -> ?workers:int -> unit -> config

val run_program :
  ?request:Hbc_core.Run_request.t -> config -> 'e Ir.Program.t -> Sim.Run_result.t
(** The request's fault plan is ignored — fault injection models heartbeat
    machinery the OpenMP runtime does not have. Tracing records each
    worker's parallel-region intervals ("omp-region"); the fine-grained
    scheduler events have no OpenMP analogue. *)

val signature : config -> string
(** Hex content hash of the result-affecting fields (seed included), used by
    the experiment journal as part of the trial cache key. *)
