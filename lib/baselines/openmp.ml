exception Did_not_finish

type schedule = Static | Dynamic of int | Guided of int

type nested_mode = Outermost_only | All_doall

type config = {
  cost : Sim.Cost_model.t;
  workers : int;
  schedule : schedule;
  nested : nested_mode;
  seed : int;
}

let dynamic ?(chunk = 1) ?(workers = 64) () =
  {
    cost = Sim.Cost_model.default;
    workers;
    schedule = Dynamic chunk;
    nested = Outermost_only;
    seed = 1;
  }

(* Content hash of the result-affecting fields, mirroring
   [Rt_config.signature]; per-run knobs live in the Run_request and are
   hashed by its own signature. *)
let signature t =
  Digest.to_hex
    (Digest.string (Marshal.to_string (t.cost, t.workers, t.schedule, t.nested, t.seed) []))

let static ?(workers = 64) () = { (dynamic ~workers ()) with schedule = Static }

let guided ?(min_chunk = 1) ?(workers = 64) () =
  { (dynamic ~workers ()) with schedule = Guided min_chunk }

type region = {
  rid : int;
  participate : int -> unit;
  mutable arrived : int;
}

type run_state = {
  cfg : config;
  eng : Sim.Engine.t;
  metrics : Sim.Metrics.t;
  trace : Obs.Trace.Sink.t;
  capture : bool;
  mutable current : region option;
  mutable next_rid : int;
  mutable finished : bool;
  mutable nested_lock_free_at : int;  (* global libomp lock for nested team creation *)
  mutable dispatch_free_at : int;  (* shared dynamic-schedule counter occupancy *)
  bus : Sim.Membus.t;
  last_seen : int array;
}

let overhead st kind c =
  if c > 0 then begin
    Sim.Engine.advance st.eng c;
    Sim.Metrics.add_overhead st.metrics kind c
  end

let add_work st c =
  st.metrics.Sim.Metrics.work_cycles <- st.metrics.Sim.Metrics.work_cycles + c;
  if c > 0 then Sim.Engine.advance st.eng c

(* Work with its memory traffic booked on the shared bus. *)
let add_work_bytes st c bytes =
  st.metrics.Sim.Metrics.work_cycles <- st.metrics.Sim.Metrics.work_cycles + c;
  let total = Sim.Membus.serve st.bus ~now:(Sim.Engine.now st.eng) ~compute:c ~bytes in
  if total > 0 then Sim.Engine.advance st.eng total;
  if total > c then Sim.Metrics.add_overhead st.metrics "membus" (total - c)

let reduction_cost (spec : Ir.Locals.spec) =
  8 + (2 * (spec.Ir.Locals.nfloats + spec.Ir.Locals.nints))

(* Serial execution of a subtree into an accumulator (no scheduling cost). *)
let rec serial_into acc acc_bytes env ctxs (l : _ Ir.Nest.loop) =
  let ctx = ctxs.(l.Ir.Nest.ordinal) in
  (match l.Ir.Nest.init with Some f -> f env ctx.Ir.Ctx.locals | None -> ());
  acc_bytes := !acc_bytes + ((ctx.Ir.Ctx.hi - ctx.Ir.Ctx.lo) * l.Ir.Nest.bytes_per_iter);
  while ctx.Ir.Ctx.lo < ctx.Ir.Ctx.hi do
    List.iter
      (fun seg ->
        match seg with
        | Ir.Nest.Stmt s -> acc := !acc + s.Ir.Nest.exec env ctxs ctx.Ir.Ctx.lo
        | Ir.Nest.Nested child ->
            let lo, hi = child.Ir.Nest.bounds env ctxs in
            Ir.Ctx.set_slice ctxs.(child.Ir.Nest.ordinal) ~lo ~hi;
            serial_into acc acc_bytes env ctxs child)
      l.Ir.Nest.body;
    ctx.Ir.Ctx.lo <- ctx.Ir.Ctx.lo + 1
  done

(* One iteration of a parallelized loop. In [All_doall] mode every nested
   DOALL invocation builds a nested team: grab the global runtime lock, pay
   the fork, spawn one task per inner iteration, run them (serially: the
   machine is already fully subscribed), and join. *)
let rec omp_iteration st env ctxs (l : _ Ir.Nest.loop) iter acc acc_bytes =
  acc_bytes := !acc_bytes + l.Ir.Nest.bytes_per_iter;
  List.iter
    (fun seg ->
      match seg with
      | Ir.Nest.Stmt s -> acc := !acc + s.Ir.Nest.exec env ctxs iter
      | Ir.Nest.Nested child -> (
          let lo, hi = child.Ir.Nest.bounds env ctxs in
          Ir.Ctx.set_slice ctxs.(child.Ir.Nest.ordinal) ~lo ~hi;
          match st.cfg.nested with
          | Outermost_only -> serial_into acc acc_bytes env ctxs child
          | All_doall when not child.Ir.Nest.doall -> serial_into acc acc_bytes env ctxs child
          | All_doall ->
              (* Flush accumulated work so lock contention happens in virtual
                 time order. *)
              add_work_bytes st !acc !acc_bytes;
              acc := 0;
              acc_bytes := 0;
              let now = Sim.Engine.now st.eng in
              let wait = Stdlib.max 0 (st.nested_lock_free_at - now) in
              overhead st "omp-contention" wait;
              (* Team construction owns the runtime lock for substantially
                 longer than a top-level fork: thread-pool churn under
                 oversubscription. *)
              st.nested_lock_free_at <-
                Sim.Engine.now st.eng + (3 * st.cfg.cost.Sim.Cost_model.omp_fork_cost);
              overhead st "omp-fork" st.cfg.cost.Sim.Cost_model.omp_fork_cost;
              let iters = Stdlib.max 0 (hi - lo) in
              overhead st "omp-spawn" (iters * st.cfg.cost.Sim.Cost_model.omp_task_spawn_cost);
              st.metrics.Sim.Metrics.tasks_spawned <-
                st.metrics.Sim.Metrics.tasks_spawned + iters;
              (match child.Ir.Nest.init with
              | Some f -> f env ctxs.(child.Ir.Nest.ordinal).Ir.Ctx.locals
              | None -> ());
              let cctx = ctxs.(child.Ir.Nest.ordinal) in
              while cctx.Ir.Ctx.lo < cctx.Ir.Ctx.hi do
                omp_iteration st env ctxs child cctx.Ir.Ctx.lo acc acc_bytes;
                cctx.Ir.Ctx.lo <- cctx.Ir.Ctx.lo + 1
              done;
              add_work_bytes st !acc !acc_bytes;
              acc := 0;
              acc_bytes := 0;
              overhead st "omp-join" st.cfg.cost.Sim.Cost_model.omp_join_cost))
    l.Ir.Nest.body

let exec_nest st (prog : _ Ir.Program.t) env (nest : _ Ir.Nest.loop) =
  let serial_requested = List.mem nest.Ir.Nest.loop_name prog.Ir.Program.omp_serial_nests in
  if serial_requested then begin
    let work = ref 0 in
    Serial_exec.run_nest ~charge:(fun c -> work := !work + c) env nest;
    add_work st !work
  end
  else begin
    let n = Ir.Nest.index nest in
    let specs = Ir.Nest.locals_specs nest in
    overhead st "omp-fork" st.cfg.cost.Sim.Cost_model.omp_fork_cost;
    (* Root bounds are evaluated once by the master, like libomp does. *)
    let probe_ctxs = Array.init n (fun o -> Ir.Ctx.make ~ordinal:o ~spec:specs.(o)) in
    let lo, hi = nest.Ir.Nest.bounds env probe_ctxs in
    let counter = ref lo in
    let per_worker_ctxs = Array.make st.cfg.workers None in
    let participate w =
      let t0 = Sim.Engine.now st.eng in
      let ctxs = Array.init n (fun o -> Ir.Ctx.make ~ordinal:o ~spec:specs.(o)) in
      per_worker_ctxs.(w) <- Some ctxs;
      Ir.Ctx.set_slice ctxs.(nest.Ir.Nest.ordinal) ~lo ~hi;
      (match nest.Ir.Nest.init with
      | Some f -> f env ctxs.(nest.Ir.Nest.ordinal).Ir.Ctx.locals
      | None -> ());
      overhead st "omp-setup" st.cfg.cost.Sim.Cost_model.omp_static_setup_cost;
      (match st.cfg.schedule with
      | Static ->
          let len = hi - lo in
          let p = st.cfg.workers in
          let blo = lo + (w * len / p) and bhi = lo + ((w + 1) * len / p) in
          let acc = ref 0 and acc_bytes = ref 0 in
          let ctx = ctxs.(nest.Ir.Nest.ordinal) in
          for i = blo to bhi - 1 do
            ctx.Ir.Ctx.lo <- i;
            omp_iteration st env ctxs nest i acc acc_bytes;
            (* Book traffic in bounded batches so the bus interleaves
               fairly between team members. *)
            if !acc > 200_000 then begin
              add_work_bytes st !acc !acc_bytes;
              acc := 0;
              acc_bytes := 0
            end
          done;
          add_work_bytes st !acc !acc_bytes
      | Dynamic _ | Guided _ ->
          let continue_ = ref true in
          let ctx = ctxs.(nest.Ir.Nest.ordinal) in
          while !continue_ do
            let k = !counter in
            if k >= hi then continue_ := false
            else begin
              let chunk =
                match st.cfg.schedule with
                | Dynamic c -> c
                | Guided min_chunk ->
                    (* libomp's guided: proportional to the remaining
                       iterations per team member, floored at min_chunk. *)
                    Stdlib.max min_chunk ((hi - k) / (2 * st.cfg.workers))
                | Static -> assert false
              in
              counter := Stdlib.min hi (k + chunk);
              (* The dynamic-schedule counter is one shared cache line: each
                 grab owns it exclusively for a few cycles, serializing
                 fine-grained dynamic scheduling across 64 threads. *)
              let now = Sim.Engine.now st.eng in
              let wait = Stdlib.max 0 (st.dispatch_free_at - now) in
              st.dispatch_free_at <-
                Stdlib.max now st.dispatch_free_at + st.cfg.cost.Sim.Cost_model.omp_dispatch_hold;
              overhead st "omp-contention" wait;
              overhead st "omp-dispatch" st.cfg.cost.Sim.Cost_model.omp_dispatch_cost;
              let acc = ref 0 and acc_bytes = ref 0 in
              for i = k to Stdlib.min hi (k + chunk) - 1 do
                ctx.Ir.Ctx.lo <- i;
                omp_iteration st env ctxs nest i acc acc_bytes
              done;
              add_work_bytes st !acc !acc_bytes
            end
          done);
      if st.capture && Sim.Engine.now st.eng > t0 then
        Obs.Trace.Sink.emit st.trace ~time:(Sim.Engine.now st.eng) ~worker:w
          (Obs.Trace.Interval { t0; kind = "omp-region" })
    in
    let region = { rid = st.next_rid; participate; arrived = 0 } in
    st.next_rid <- st.next_rid + 1;
    st.current <- Some region;
    Sim.Engine.unpark_all st.eng;
    (* Master participates too. *)
    st.last_seen.(0) <- region.rid;
    participate 0;
    region.arrived <- region.arrived + 1;
    while region.arrived < st.cfg.workers do
      Sim.Engine.park st.eng
    done;
    st.current <- None;
    (* Sequential reduction of the team's private copies by the master. *)
    (match nest.Ir.Nest.reduction with
    | Some combine ->
        let master_ctxs = Option.get per_worker_ctxs.(0) in
        for w = 1 to st.cfg.workers - 1 do
          match per_worker_ctxs.(w) with
          | Some ctxs ->
              overhead st "omp-reduce" (reduction_cost specs.(nest.Ir.Nest.ordinal));
              combine master_ctxs.(nest.Ir.Nest.ordinal).Ir.Ctx.locals
                ctxs.(nest.Ir.Nest.ordinal).Ir.Ctx.locals
          | None -> ()
        done;
        (match nest.Ir.Nest.commit with Some f -> f env master_ctxs | None -> ())
    | None -> (
        match (nest.Ir.Nest.commit, per_worker_ctxs.(0)) with
        | Some f, Some master_ctxs -> f env master_ctxs
        | _ -> ()));
    overhead st "omp-join" st.cfg.cost.Sim.Cost_model.omp_join_cost
  end

let omp_worker st w =
  while not st.finished do
    match st.current with
    | Some r when st.last_seen.(w) < r.rid ->
        st.last_seen.(w) <- r.rid;
        r.participate w;
        r.arrived <- r.arrived + 1;
        if r.arrived = st.cfg.workers then Sim.Engine.unpark st.eng 0
    | Some _ | None -> if not st.finished then Sim.Engine.park st.eng
  done

let run_program ?(request = Hbc_core.Run_request.default) cfg (prog : _ Ir.Program.t) =
  let env = prog.Ir.Program.make_env () in
  let eng = Sim.Engine.create ~seed:cfg.seed ~num_workers:cfg.workers () in
  let metrics = Sim.Metrics.create () in
  let st =
    {
      cfg;
      eng;
      metrics;
      trace = request.Hbc_core.Run_request.trace;
      capture = Obs.Trace.Sink.enabled request.Hbc_core.Run_request.trace;
      current = None;
      next_rid = 1;
      finished = false;
      nested_lock_free_at = 0;
      dispatch_free_at = 0;
      bus = Sim.Membus.create ~bytes_per_cycle:cfg.cost.Sim.Cost_model.dram_bytes_per_cycle;
      last_seen = Array.make cfg.workers 0;
    }
  in
  (match request.Hbc_core.Run_request.max_cycles with
  | Some cap -> Sim.Engine.schedule_at eng ~time:cap (fun () -> raise Did_not_finish)
  | None -> ());
  (match request.Hbc_core.Run_request.cycle_budget with
  | Some b -> Sim.Engine.set_budget eng b
  | None -> ());
  (match request.Hbc_core.Run_request.guard with
  | Some g -> Sim.Engine.set_guard eng g
  | None -> ());
  let termination = ref Sim.Run_result.Finished in
  (try
     Sim.Engine.run eng (fun w ->
         if w = 0 then begin
           let cpu =
             {
               Ir.Program.exec = (fun nest -> exec_nest st prog env nest);
               advance = (fun c -> add_work st c);
             }
           in
           prog.Ir.Program.driver env cpu;
           st.finished <- true;
           Sim.Engine.unpark_all eng
         end
         else omp_worker st w)
   with
  | Did_not_finish -> termination := Sim.Run_result.Dnf
  | Sim.Engine.Budget_exceeded { budget; time } ->
      termination := Sim.Run_result.Budget_exceeded { budget; at = time }
  | Sim.Engine.Guard_stop reason -> termination := Sim.Run_result.Guard_aborted reason);
  {
    Sim.Run_result.makespan = Sim.Engine.max_time eng;
    work_cycles = metrics.Sim.Metrics.work_cycles;
    fingerprint = prog.Ir.Program.fingerprint env;
    dnf = (!termination = Sim.Run_result.Dnf);
    termination = !termination;
    metrics;
    trace = Obs.Trace.Sink.captured request.Hbc_core.Run_request.trace;
    sanitizer = None;
  }
