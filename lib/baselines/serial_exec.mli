(** Sequential reference executor.

    Runs a program exactly as the clang [-O3] sequential build would: body
    statements only, no scheduling machinery, no polling, no outlining
    costs. Its [work_cycles] is the baseline of every speedup in the paper's
    figures, and its fingerprint is the ground truth all parallel executors
    are validated against. *)

val run_nest : charge:(int -> unit) -> 'e -> 'e Ir.Nest.loop -> unit
(** Execute one nest in place with a caller-supplied cycle sink. The nest
    must have been indexed ({!Ir.Nest.index} or {!Ir.Program.v}). *)

val run_program : ?request:Hbc_core.Run_request.t -> 'e Ir.Program.t -> Sim.Run_result.t
(** [makespan = work_cycles] by construction. The request is accepted for
    interface uniformity and ignored: a sequential reference run has no
    virtual time to cap, no scheduler to fault, and no events to trace. *)
