(** The TPAL baseline (Rainey et al., PLDI'21), Sec. 6.3.

    TPAL is heartbeat scheduling with the manual code generation the paper
    automates. Three differences against HBC, all encoded as runtime
    configuration of the same heartbeat executor:

    - heartbeats come from an interrupt ping thread (no software polling);
    - leaf loops use a hand-tuned static chunk size (no adaptive chunking,
      and hence no chunk-size-transferring cost on the critical path beyond
      the static counter);
    - a promotion produces only two parallel loop-slice tasks; the leftover
      work runs inline on the promoting task's critical path and, lacking a
      complete closure, is never itself promoted. *)

val config : chunk:int -> Hbc_core.Rt_config.t

val run_program : chunk:int -> 'e Ir.Program.t -> Sim.Run_result.t
(** [chunk] is the per-benchmark hand-tuned static chunk size.
    @deprecated New call sites should go through the backend-agnostic
    facade, [Sched_run.run (Tpal { chunk })]. *)
