let run_nest ~charge env (root : _ Ir.Nest.loop) =
  let n = Ir.Nest.index root in
  let specs = Ir.Nest.locals_specs root in
  let ctxs = Array.init n (fun o -> Ir.Ctx.make ~ordinal:o ~spec:specs.(o)) in
  let acc = ref 0 in
  let rec run_loop (l : _ Ir.Nest.loop) =
    let ctx = ctxs.(l.Ir.Nest.ordinal) in
    (match l.Ir.Nest.init with Some f -> f env ctx.Ir.Ctx.locals | None -> ());
    while ctx.Ir.Ctx.lo < ctx.Ir.Ctx.hi do
      List.iter
        (fun seg ->
          match seg with
          | Ir.Nest.Stmt s -> acc := !acc + s.Ir.Nest.exec env ctxs ctx.Ir.Ctx.lo
          | Ir.Nest.Nested child ->
              let lo, hi = child.Ir.Nest.bounds env ctxs in
              Ir.Ctx.set_slice ctxs.(child.Ir.Nest.ordinal) ~lo ~hi;
              run_loop child)
        l.Ir.Nest.body;
      ctx.Ir.Ctx.lo <- ctx.Ir.Ctx.lo + 1
    done
  in
  let lo, hi = root.Ir.Nest.bounds env ctxs in
  Ir.Ctx.set_slice ctxs.(root.Ir.Nest.ordinal) ~lo ~hi;
  run_loop root;
  (match root.Ir.Nest.commit with Some f -> f env ctxs | None -> ());
  charge !acc

(* The request is accepted for interface uniformity with the parallel
   executors but is inert here: the sequential reference has no virtual
   clock, no scheduler, and by definition no events to trace. *)
let run_program ?request:_ (p : _ Ir.Program.t) =
  let env = p.Ir.Program.make_env () in
  let work = ref 0 in
  let charge c = work := !work + c in
  let cpu =
    { Ir.Program.exec = (fun nest -> run_nest ~charge env nest); advance = charge }
  in
  p.Ir.Program.driver env cpu;
  {
    Sim.Run_result.makespan = !work;
    work_cycles = !work;
    fingerprint = p.Ir.Program.fingerprint env;
    dnf = false;
    termination = Sim.Run_result.Finished;
    metrics = Sim.Metrics.create ();
    trace = [];
    sanitizer = None;
  }
