type t = {
  mutable heartbeats_generated : int;
  mutable heartbeats_detected : int;
  mutable heartbeats_missed : int;
  mutable polls : int;
  mutable promotions : int;
  promotions_by_level : int array;
  mutable tasks_spawned : int;
  mutable leftover_tasks_run : int;
  mutable steals : int;
  mutable steal_attempts : int;
  mutable join_slow_paths : int;
  mutable chunk_updates : int;
  mutable work_cycles : int;
  mutable overhead_cycles : int;
  overhead_by_kind : (string, int) Hashtbl.t;
  mutable faults_beats_dropped : int;
  mutable faults_beats_delayed : int;
  mutable faults_steals_failed : int;
  mutable faults_stalls : int;
  mutable faults_stall_cycles : int;
  mutable faults_wakeups_delayed : int;
  mutable downgrades : int;
}

let create () =
  {
    heartbeats_generated = 0;
    heartbeats_detected = 0;
    heartbeats_missed = 0;
    polls = 0;
    promotions = 0;
    promotions_by_level = Array.make 8 0;
    tasks_spawned = 0;
    leftover_tasks_run = 0;
    steals = 0;
    steal_attempts = 0;
    join_slow_paths = 0;
    chunk_updates = 0;
    work_cycles = 0;
    overhead_cycles = 0;
    overhead_by_kind = Hashtbl.create 16;
    faults_beats_dropped = 0;
    faults_beats_delayed = 0;
    faults_steals_failed = 0;
    faults_stalls = 0;
    faults_stall_cycles = 0;
    faults_wakeups_delayed = 0;
    downgrades = 0;
  }

let add_overhead t kind c =
  t.overhead_cycles <- t.overhead_cycles + c;
  let prev = Option.value ~default:0 (Hashtbl.find_opt t.overhead_by_kind kind) in
  Hashtbl.replace t.overhead_by_kind kind (prev + c)

let promotion_at_level t level =
  t.promotions <- t.promotions + 1;
  let level = Stdlib.min level (Array.length t.promotions_by_level - 1) in
  t.promotions_by_level.(level) <- t.promotions_by_level.(level) + 1

let overhead_of t kind =
  Option.value ~default:0 (Hashtbl.find_opt t.overhead_by_kind kind)

let promotion_share_by_level t =
  let total = Float.of_int t.promotions in
  Array.map
    (fun n -> if total = 0.0 then 0.0 else 100.0 *. Float.of_int n /. total)
    t.promotions_by_level

let detection_rate t =
  if t.heartbeats_generated = 0 then 100.0
  else 100.0 *. Float.of_int t.heartbeats_detected /. Float.of_int t.heartbeats_generated

let downgrade_count t = t.downgrades

let faults_injected t =
  t.faults_beats_dropped + t.faults_beats_delayed + t.faults_steals_failed + t.faults_stalls
  + t.faults_wakeups_delayed

(* The always-on counting sink: every scalar counter that reflects a
   discrete runtime occurrence is derived from the trace-event stream, so
   the runtime has exactly one emission site per occurrence and the
   counters cannot drift from what a capturing sink records. *)
let count_event t (ev : Obs.Trace.event) =
  match ev with
  | Obs.Trace.Heartbeat_generated -> t.heartbeats_generated <- t.heartbeats_generated + 1
  | Obs.Trace.Heartbeat_detected -> t.heartbeats_detected <- t.heartbeats_detected + 1
  | Obs.Trace.Heartbeat_missed -> t.heartbeats_missed <- t.heartbeats_missed + 1
  | Obs.Trace.Poll -> t.polls <- t.polls + 1
  | Obs.Trace.Promotion { level } -> promotion_at_level t level
  | Obs.Trace.Steal_attempt -> t.steal_attempts <- t.steal_attempts + 1
  | Obs.Trace.Steal_success -> t.steals <- t.steals + 1
  | Obs.Trace.Task_spawned -> t.tasks_spawned <- t.tasks_spawned + 1
  | Obs.Trace.Task_joined_slow -> t.join_slow_paths <- t.join_slow_paths + 1
  | Obs.Trace.Leftover_run -> t.leftover_tasks_run <- t.leftover_tasks_run + 1
  | Obs.Trace.Chunk_update _ -> t.chunk_updates <- t.chunk_updates + 1
  | Obs.Trace.Fault_injected Obs.Trace.Beat_dropped ->
      t.faults_beats_dropped <- t.faults_beats_dropped + 1
  | Obs.Trace.Fault_injected (Obs.Trace.Beat_delayed _) ->
      t.faults_beats_delayed <- t.faults_beats_delayed + 1
  | Obs.Trace.Fault_injected Obs.Trace.Steal_failed ->
      t.faults_steals_failed <- t.faults_steals_failed + 1
  | Obs.Trace.Fault_injected (Obs.Trace.Stall c) ->
      t.faults_stalls <- t.faults_stalls + 1;
      t.faults_stall_cycles <- t.faults_stall_cycles + c
  | Obs.Trace.Fault_injected Obs.Trace.Wakeup_delayed ->
      t.faults_wakeups_delayed <- t.faults_wakeups_delayed + 1
  | Obs.Trace.Mechanism_downgrade -> t.downgrades <- t.downgrades + 1
  | Obs.Trace.Interval _ -> ()
  (* Sanitizer bookkeeping events: pure trace payload, no scalar counter.
     The discrete occurrences they describe are already counted above
     (Task_spawned, Steal_success, Promotion, Chunk_update). *)
  | Obs.Trace.Slice_enter _ | Obs.Trace.Iter_exec _ | Obs.Trace.Task_pushed _
  | Obs.Trace.Task_popped _ | Obs.Trace.Task_stolen _ | Obs.Trace.Task_exec _
  | Obs.Trace.Chunk_decision _ | Obs.Trace.Promote_choice _ -> ()
  (* Server-layer lifecycle events: counted by the serve report, not by the
     per-run scalar counters (a single run never emits them). *)
  | Obs.Trace.Job_submitted _ | Obs.Trace.Job_admitted _ | Obs.Trace.Job_shed _
  | Obs.Trace.Job_started _ | Obs.Trace.Job_preempted _ | Obs.Trace.Job_checkpointed _
  | Obs.Trace.Job_resumed _ | Obs.Trace.Job_finished _ | Obs.Trace.Breaker_transition _
  | Obs.Trace.Budget_refill _ -> ()

let counting_sink t = Obs.Trace.Sink.fn (fun ~time:_ ~worker:_ ev -> count_event t ev)

(* Scalar-counter reflection for the experiment journal: one authoritative
   list of (name, getter, setter) so the checkpoint codec cannot silently
   drift from the record when counters are added. *)
let counter_specs : (string * (t -> int) * (t -> int -> unit)) list =
  [
    ("heartbeats_generated", (fun t -> t.heartbeats_generated), fun t v -> t.heartbeats_generated <- v);
    ("heartbeats_detected", (fun t -> t.heartbeats_detected), fun t v -> t.heartbeats_detected <- v);
    ("heartbeats_missed", (fun t -> t.heartbeats_missed), fun t v -> t.heartbeats_missed <- v);
    ("polls", (fun t -> t.polls), fun t v -> t.polls <- v);
    ("promotions", (fun t -> t.promotions), fun t v -> t.promotions <- v);
    ("tasks_spawned", (fun t -> t.tasks_spawned), fun t v -> t.tasks_spawned <- v);
    ("leftover_tasks_run", (fun t -> t.leftover_tasks_run), fun t v -> t.leftover_tasks_run <- v);
    ("steals", (fun t -> t.steals), fun t v -> t.steals <- v);
    ("steal_attempts", (fun t -> t.steal_attempts), fun t v -> t.steal_attempts <- v);
    ("join_slow_paths", (fun t -> t.join_slow_paths), fun t v -> t.join_slow_paths <- v);
    ("chunk_updates", (fun t -> t.chunk_updates), fun t v -> t.chunk_updates <- v);
    ("work_cycles", (fun t -> t.work_cycles), fun t v -> t.work_cycles <- v);
    ("overhead_cycles", (fun t -> t.overhead_cycles), fun t v -> t.overhead_cycles <- v);
    ("faults_beats_dropped", (fun t -> t.faults_beats_dropped), fun t v -> t.faults_beats_dropped <- v);
    ("faults_beats_delayed", (fun t -> t.faults_beats_delayed), fun t v -> t.faults_beats_delayed <- v);
    ("faults_steals_failed", (fun t -> t.faults_steals_failed), fun t v -> t.faults_steals_failed <- v);
    ("faults_stalls", (fun t -> t.faults_stalls), fun t v -> t.faults_stalls <- v);
    ("faults_stall_cycles", (fun t -> t.faults_stall_cycles), fun t v -> t.faults_stall_cycles <- v);
    ("faults_wakeups_delayed", (fun t -> t.faults_wakeups_delayed), fun t v -> t.faults_wakeups_delayed <- v);
    ("downgrades", (fun t -> t.downgrades), fun t v -> t.downgrades <- v);
  ]

let counters t = List.map (fun (name, get, _) -> (name, get t)) counter_specs

let restore_counter t name v =
  match List.find_opt (fun (n, _, _) -> n = name) counter_specs with
  | Some (_, _, set) -> set t v
  | None -> ()
