(** Serializable pause-boundary state of a run.

    Captured when the engine stops at a {!Engine.set_pause_at} boundary: the
    remaining iteration ranges of every live slice (in the paper's leftover
    [lo+1] resume representation), per-worker deque contents as shadow-
    replayable task identities, per-worker clocks, the engine RNG word, and
    the cycle/promotion budget consumed so far.

    Effect continuations cannot be serialized, so resuming does not restore
    from this record. Instead the executor re-runs the job from cycle 0 —
    runs are pure functions of the seed — and checks that the re-derived
    checkpoint at the same boundary is byte-identical before continuing past
    it ({!equal}). The codec is byte-stable: equal states give equal
    {!to_string} output, so a {!digest} identifies a checkpoint in journals
    and WALs. *)

type slice = {
  sl_worker : int;  (** worker whose stack holds the slice *)
  sl_task : int;  (** task identity (as in the trace / shadow deques) *)
  sl_nest : string;  (** source nest the slice belongs to *)
  sl_lo : int;  (** next iteration to run *)
  sl_hi : int;  (** exclusive upper bound of the remaining range *)
}

type t = {
  at_cycle : int;  (** pause boundary (absolute virtual time) *)
  episode : int;  (** number of completed pause/resume episodes before this *)
  rng_state : int64;  (** engine RNG word at the boundary *)
  next_task_id : int;  (** task-id counter at the boundary *)
  work_cycles : int;  (** body work executed so far *)
  promotions_used : int;  (** promotions consumed so far (all episodes) *)
  granted : int option;  (** promotion grant at cycle 0 ([None] = unmetered) *)
  regrants : (int * int) list;
      (** grant history at past resume boundaries, oldest first: each
          [(cycle, grant)] says the promotion budget was reset to [grant]
          when the run resumed past the boundary at [cycle] ([-1] = kept
          the remaining balance). A replay re-applies these so metered
          promotion decisions reproduce exactly across many episodes. *)
  clocks : int array;  (** per-worker virtual clocks *)
  deques : int list array;  (** per-worker deque task ids, oldest first *)
  slices : slice list;  (** live slices with their remaining ranges *)
}

val to_json : t -> Obs.Json.t
val of_json : Obs.Json.t -> (t, string) result

val to_string : t -> string
(** Byte-stable serialization: structurally equal states produce identical
    strings (deterministic field order, canonical number formatting). *)

val of_string : string -> (t, string) result

val equal : t -> t -> bool
(** Byte equality of {!to_string} — the resume-divergence check. *)

val digest : t -> string
(** Content hash of {!to_string} (hex MD5). *)

val remaining_iterations : t -> int
(** Total iterations still owed by live slices. *)

val describe : t -> string
(** One-line human summary for logs and decision journals. *)
