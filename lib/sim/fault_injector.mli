(** Seed-deterministic fault scheduler over a {!Fault_plan}.

    The runtime consults the injector at its failure-prone points (heartbeat
    delivery, steal attempts, scheduling-loop iterations) and the injector
    answers from per-worker splitmix streams derived from the plan's seed:
    identical plans yield identical fault schedules, independent of wall
    time. Injection decisions are emitted as {!Obs.Trace.Fault_injected}
    events into the run's trace sink (stamped via [now]); the run's
    counting sink derives the [faults_*] counters from them. The caller
    models their consequences (missed beats, wasted cycles).

    An injector built from {!Fault_plan.none} (or any plan for which
    {!Fault_plan.is_zero} holds) is {e inert}: every query returns the
    neutral answer without consuming randomness or emitting events, so a
    zero-fault run is bit-identical to one without the fault layer. *)

type t

val create :
  Fault_plan.t ->
  num_workers:int ->
  ?trace:Obs.Trace.Sink.t ->
  ?now:(unit -> int) ->
  unit ->
  t
(** [now] supplies the virtual-time stamp for emitted fault events
    (typically [Engine.now]); it is never called by an inert injector. *)

val inactive : num_workers:int -> t
(** [create Fault_plan.none]. *)

val active : t -> bool
(** False iff the plan is zero; callers gate fault-only behaviour (watchdog,
    steal backoff) on this so the layer stays strictly opt-in. *)

val plan : t -> Fault_plan.t

val drop_beat : t -> worker:int -> bool
(** Should this heartbeat delivery to [worker] be lost? *)

val delivery_jitter : t -> worker:int -> int
(** Extra delivery delay in cycles for a non-dropped beat (0 when the plan
    has no jitter). *)

val steal_fails : t -> worker:int -> bool
(** Should [worker]'s next steal attempt fail as if the CAS lost? Once
    triggered, the failure persists for [steal_fail_burst] consecutive
    attempts by that worker, modelling a contention burst. *)

val stall_cycles : t -> worker:int -> int
(** Cycles of injected OS-preemption stall at a scheduling point (0 most of
    the time). Simulator-side stall duration; draws only when the plan has
    [stall_prob > 0]. *)

val stall_polls : t -> worker:int -> int
(** Counted polls of injected stall at a heartbeat-poll boundary (0 most of
    the time). Domains-backend stall duration; draws only when the plan has
    both [stall_prob > 0] and [stall_polls > 0], so sim and native stalls
    consume disjoint plan knobs. *)

val delay_wakeup : t -> worker:int -> bool
(** Should this parked-worker wakeup signal be suppressed? (The bounded
    park timeout then bounds the stranding.) *)

val backoff_jitter : t -> worker:int -> limit:int -> int
(** Uniform jitter in [\[0, limit)] for the executor's steal backoff; 0 when
    the injector is inert or [limit <= 0]. *)
