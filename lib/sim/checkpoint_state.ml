(* A paused run's observational state, captured at an engine pause
   boundary. OCaml effect continuations cannot be serialized, so this is
   not the mechanism that *restores* a run — resume re-executes the job
   from cycle 0 under the same seed (determinism makes that byte-exact)
   and uses this record to prove, field by field, that the replay reached
   the identical boundary before continuing past it. The codec is
   byte-stable: equal states serialize to equal strings, so digests can
   stand in for whole checkpoints in journals and WALs. *)

type slice = { sl_worker : int; sl_task : int; sl_nest : string; sl_lo : int; sl_hi : int }

type t = {
  at_cycle : int;
  episode : int;
  rng_state : int64;
  next_task_id : int;
  work_cycles : int;
  promotions_used : int;
  granted : int option;
  regrants : (int * int) list;
  clocks : int array;
  deques : int list array;
  slices : slice list;
}

let slice_to_json s =
  Obs.Json.Arr
    [
      Obs.Json.Int s.sl_worker;
      Obs.Json.Int s.sl_task;
      Obs.Json.Str s.sl_nest;
      Obs.Json.Int s.sl_lo;
      Obs.Json.Int s.sl_hi;
    ]

let slice_of_json = function
  | Obs.Json.Arr
      [
        Obs.Json.Int sl_worker;
        Obs.Json.Int sl_task;
        Obs.Json.Str sl_nest;
        Obs.Json.Int sl_lo;
        Obs.Json.Int sl_hi;
      ] ->
      Ok { sl_worker; sl_task; sl_nest; sl_lo; sl_hi }
  | _ -> Error "malformed checkpoint slice"

let to_json t =
  let ints l = Obs.Json.Arr (List.map (fun i -> Obs.Json.Int i) l) in
  Obs.Json.Obj
    [
      ("v", Obs.Json.Int 1);
      ("at_cycle", Obs.Json.Int t.at_cycle);
      ("episode", Obs.Json.Int t.episode);
      (* Full 64-bit state: Json.Int is a 63-bit OCaml int, so the raw
         generator word travels as a decimal string. *)
      ("rng", Obs.Json.Str (Int64.to_string t.rng_state));
      ("next_task_id", Obs.Json.Int t.next_task_id);
      ("work_cycles", Obs.Json.Int t.work_cycles);
      ("promotions_used", Obs.Json.Int t.promotions_used);
      ( "granted",
        match t.granted with None -> Obs.Json.Null | Some g -> Obs.Json.Int g );
      ( "regrants",
        Obs.Json.Arr
          (List.map
             (fun (cycle, grant) -> Obs.Json.Arr [ Obs.Json.Int cycle; Obs.Json.Int grant ])
             t.regrants) );
      ("clocks", ints (Array.to_list t.clocks));
      ("deques", Obs.Json.Arr (Array.to_list (Array.map ints t.deques)));
      ("slices", Obs.Json.Arr (List.map slice_to_json t.slices));
    ]

let of_json j =
  let open Obs.Json in
  let ( let* ) = Result.bind in
  match j with
  | Obj fields ->
      let int name = Option.to_result ~none:("missing field " ^ name) (get_int name fields) in
      let* v = int "v" in
      if v <> 1 then Error (Printf.sprintf "unsupported checkpoint version %d" v)
      else
        let* at_cycle = int "at_cycle" in
        let* episode = int "episode" in
        let* rng_state =
          match get_str "rng" fields with
          | Some s -> (
              match Int64.of_string_opt s with
              | Some i -> Ok i
              | None -> Error "bad rng state")
          | None -> Error "missing field rng"
        in
        let* next_task_id = int "next_task_id" in
        let* work_cycles = int "work_cycles" in
        let* promotions_used = int "promotions_used" in
        let* granted =
          match mem "granted" fields with
          | Some Null -> Ok None
          | Some (Int g) -> Ok (Some g)
          | _ -> Error "missing field granted"
        in
        let* regrants =
          match mem "regrants" fields with
          | Some (Arr l) ->
              List.fold_left
                (fun acc j ->
                  let* acc = acc in
                  match j with
                  | Arr [ Int cycle; Int grant ] -> Ok ((cycle, grant) :: acc)
                  | _ -> Error "bad regrants")
                (Ok []) l
              |> Result.map List.rev
          | _ -> Error "missing field regrants"
        in
        let ints name =
          match mem name fields with
          | Some (Arr l) ->
              List.fold_left
                (fun acc j ->
                  let* acc = acc in
                  match j with Int i -> Ok (i :: acc) | _ -> Error ("bad " ^ name))
                (Ok []) l
              |> Result.map List.rev
          | _ -> Error ("missing field " ^ name)
        in
        let* clocks = ints "clocks" in
        let* deques =
          match mem "deques" fields with
          | Some (Arr l) ->
              List.fold_left
                (fun acc j ->
                  let* acc = acc in
                  match j with
                  | Arr l ->
                      let* ids =
                        List.fold_left
                          (fun acc j ->
                            let* acc = acc in
                            match j with Int i -> Ok (i :: acc) | _ -> Error "bad deque entry")
                          (Ok []) l
                      in
                      Ok (List.rev ids :: acc)
                  | _ -> Error "bad deques")
                (Ok []) l
              |> Result.map List.rev
          | _ -> Error "missing field deques"
        in
        let* slices =
          match mem "slices" fields with
          | Some (Arr l) ->
              List.fold_left
                (fun acc j ->
                  let* acc = acc in
                  let* s = slice_of_json j in
                  Ok (s :: acc))
                (Ok []) l
              |> Result.map List.rev
          | _ -> Error "missing field slices"
        in
        Ok
          {
            at_cycle;
            episode;
            rng_state;
            next_task_id;
            work_cycles;
            promotions_used;
            granted;
            regrants;
            clocks = Array.of_list clocks;
            deques = Array.of_list deques;
            slices;
          }
  | _ -> Error "checkpoint must be a JSON object"

let to_string t = Obs.Json.to_string (to_json t)

let of_string s =
  match Obs.Json.parse s with
  | j -> of_json j
  | exception Obs.Json.Parse_error msg -> Error ("checkpoint parse error: " ^ msg)

let equal a b = String.equal (to_string a) (to_string b)

let digest t = Digest.to_hex (Digest.string (to_string t))

let remaining_iterations t = List.fold_left (fun acc s -> acc + (s.sl_hi - s.sl_lo)) 0 t.slices

let describe t =
  Printf.sprintf "checkpoint@%d ep=%d tasks=%d live-slices=%d remaining-iters=%d" t.at_cycle
    t.episode t.next_task_id (List.length t.slices) (remaining_iterations t)
