(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic choice in the simulator and in the synthetic input
    generators goes through this module so that whole experiments are
    reproducible from a single seed. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds give equal streams. *)

val copy : t -> t
(** Independent copy continuing from the current state. *)

val state : t -> int64
(** Raw generator state, for checkpointing. Restoring it with
    {!set_state} resumes the exact stream. *)

val set_state : t -> int64 -> unit
(** Overwrite the generator state (checkpoint restore). *)

val split : t -> t
(** [split t] derives a statistically independent child generator and
    advances [t]; used to give each worker or generator its own stream. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val exponential : t -> rate:float -> float
(** [exponential t ~rate] samples an exponential inter-arrival time with
    the given rate (mean [1 /. rate]); [rate] must be positive. Drives the
    server's Poisson arrival processes. *)

val zipf : t -> alpha:float -> n:int -> int
(** [zipf t ~alpha ~n] samples from a Zipf distribution over [\[1, n\]] with
    exponent [alpha] (rejection-free inverse-CDF approximation). Used by the
    power-law matrix, tensor, and graph generators. *)
