(* Hierarchical calendar-queue event queue for the virtual-time engine.

   The engine's former binary min-heap made every push/pop O(log n) and
   compared (time, seq) pairs all the way up and down the tree. At
   datacenter-scale simulations (P in the hundreds, tens of millions of
   events) those comparisons dominate the dispatch loop. This queue
   exploits what the event population actually looks like: virtual time
   advances monotonically, and almost every event lands within a bounded
   horizon of the current dispatch time — worker advances are
   per-instruction costs (tens to ~1200 cycles) and the heartbeat timers
   re-arm one interval out (30k cycles at the default cost model).

   Structure (two wheel levels + sorted overflow + overdue lane):

   - Level 0: [w0] one-cycle buckets covering the current [w0]-aligned
     block of virtual time. A bucket holds every queued event of exactly
     one time, as an intrusive FIFO list over a shared node pool (flat
     int arrays). Pushing appends in O(1); the global [seq] stamp is
     monotone in real execution order, so append order IS (time, seq)
     order within a bucket.

   - Level 1: [w1] block-granular buckets covering the next [w1 - 1]
     blocks ([w0 * w1] cycles of horizon — 64k at the defaults, enough
     for every advance and timer re-arm the runtime produces). A level-1
     bucket's list is in push (= seq) order; when the dispatch cursor
     exhausts a block, the next non-empty level-1 bucket is promoted by
     re-linking its nodes into level-0 buckets, preserving order. Each
     event is touched at most twice: O(1) amortized.

   - A sorted overflow bucket for events past the level-1 horizon:
     parallel int arrays kept sorted by (time, seq) with insertion from
     the end (far-future pushes are rare and mostly monotone). When the
     cursor's block advances, the in-horizon prefix migrates into the
     wheels; when both wheels drain, the cursor jumps directly to the
     earliest overflow time — no empty-window scans.

   - A tiny sorted overdue lane for events pushed behind the cursor.
     The engine never does this on its own — worker clocks only move
     forward — but [schedule_at] with a stale time is legal and must
     keep global (time, seq) order: any overdue event is strictly
     earlier than everything in the wheels or overflow, so the lane is
     always served first.

   Events are unboxed: a queued event is flat ints (time, seq, payload
   code). The engine keeps continuations and callback closures in side
   tables indexed by the code, so pushing and popping allocate nothing.

   Pop order is exactly the heap's: strictly increasing (time, seq).
   [top_time]/[top_code] peek without removing (the engine's pause
   boundary and starvation checks need the peek); [drop] removes the
   peeked minimum. *)

type t = {
  w0 : int;  (* level-0 buckets (one cycle each); power of two *)
  mask0 : int;
  w1 : int;  (* level-1 buckets (one block = w0 cycles each); power of two *)
  mask1 : int;
  l0_head : int array;  (* bucket -> first node, or -1 *)
  l0_tail : int array;
  l1_head : int array;
  l1_tail : int array;
  mutable l0_count : int;
  mutable l1_count : int;
  mutable cur_block : int;  (* level-0 window = block [cur_block] = [cur_block*w0, ...) *)
  mutable cursor : int;  (* next candidate time; within the current block *)
  (* node pool (intrusive lists) *)
  mutable pool_time : int array;
  mutable pool_seq : int array;
  mutable pool_code : int array;
  mutable pool_next : int array;
  mutable pool_hwm : int;  (* nodes ever allocated *)
  mutable free : int;  (* freelist head, or -1 *)
  (* beyond-horizon overflow, sorted by (time, seq) *)
  mutable ovf_time : int array;
  mutable ovf_seq : int array;
  mutable ovf_code : int array;
  mutable ovf_len : int;
  (* overdue lane (time < cursor), sorted by (time, seq); almost always empty *)
  mutable due_time : int array;
  mutable due_seq : int array;
  mutable due_code : int array;
  mutable due_len : int;
  mutable size : int;
}

let default_width = 256

let default_blocks = 256

let create ?(width = default_width) ?(blocks = default_blocks) () =
  if width <= 0 || width land (width - 1) <> 0 then
    invalid_arg "Event_queue.create: width must be a positive power of two";
  if blocks <= 0 || blocks land (blocks - 1) <> 0 then
    invalid_arg "Event_queue.create: blocks must be a positive power of two";
  {
    w0 = width;
    mask0 = width - 1;
    w1 = blocks;
    mask1 = blocks - 1;
    l0_head = Array.make width (-1);
    l0_tail = Array.make width (-1);
    l1_head = Array.make blocks (-1);
    l1_tail = Array.make blocks (-1);
    l0_count = 0;
    l1_count = 0;
    cur_block = 0;
    cursor = 0;
    pool_time = Array.make 64 0;
    pool_seq = Array.make 64 0;
    pool_code = Array.make 64 0;
    pool_next = Array.make 64 (-1);
    pool_hwm = 0;
    free = -1;
    ovf_time = Array.make 16 0;
    ovf_seq = Array.make 16 0;
    ovf_code = Array.make 16 0;
    ovf_len = 0;
    due_time = Array.make 4 0;
    due_seq = Array.make 4 0;
    due_code = Array.make 4 0;
    due_len = 0;
    size = 0;
  }

let is_empty q = q.size = 0

let length q = q.size

let overflow_length q = q.ovf_len

let overdue_length q = q.due_len

(* ------------------------------ pool ------------------------------ *)

let alloc_node q ~time ~seq ~code =
  let n =
    if q.free >= 0 then begin
      let n = q.free in
      q.free <- q.pool_next.(n);
      n
    end
    else begin
      if q.pool_hwm = Array.length q.pool_seq then begin
        let cap = 2 * q.pool_hwm in
        let grow a =
          let b = Array.make cap 0 in
          Array.blit a 0 b 0 q.pool_hwm;
          b
        in
        q.pool_time <- grow q.pool_time;
        q.pool_seq <- grow q.pool_seq;
        q.pool_code <- grow q.pool_code;
        q.pool_next <- grow q.pool_next
      end;
      let n = q.pool_hwm in
      q.pool_hwm <- n + 1;
      n
    end
  in
  q.pool_time.(n) <- time;
  q.pool_seq.(n) <- seq;
  q.pool_code.(n) <- code;
  q.pool_next.(n) <- -1;
  n

let free_node q n =
  q.pool_next.(n) <- q.free;
  q.free <- n

let l0_append q n =
  let b = q.pool_time.(n) land q.mask0 in
  q.pool_next.(n) <- -1;
  if q.l0_head.(b) < 0 then q.l0_head.(b) <- n else q.pool_next.(q.l0_tail.(b)) <- n;
  q.l0_tail.(b) <- n;
  q.l0_count <- q.l0_count + 1

let l1_append q n =
  let b = q.pool_time.(n) / q.w0 land q.mask1 in
  q.pool_next.(n) <- -1;
  if q.l1_head.(b) < 0 then q.l1_head.(b) <- n else q.pool_next.(q.l1_tail.(b)) <- n;
  q.l1_tail.(b) <- n;
  q.l1_count <- q.l1_count + 1

(* --------------------------- sorted lanes ------------------------- *)

(* Insert keeping (time, seq) order. The scan starts from the end: both
   lanes are pushed with monotonically increasing stamps in the common
   case, so the loop body rarely runs at all. *)
let lane_insert times seqs codes len ~time ~seq ~code =
  let pos = ref !len in
  while !pos > 0 && (times.(!pos - 1) > time || (times.(!pos - 1) = time && seqs.(!pos - 1) > seq))
  do
    decr pos
  done;
  let shift = !len - !pos in
  if shift > 0 then begin
    Array.blit times !pos times (!pos + 1) shift;
    Array.blit seqs !pos seqs (!pos + 1) shift;
    Array.blit codes !pos codes (!pos + 1) shift
  end;
  times.(!pos) <- time;
  seqs.(!pos) <- seq;
  codes.(!pos) <- code;
  incr len

let ovf_push q ~time ~seq ~code =
  if q.ovf_len = Array.length q.ovf_time then begin
    let cap = 2 * q.ovf_len in
    let grow a =
      let b = Array.make cap 0 in
      Array.blit a 0 b 0 q.ovf_len;
      b
    in
    q.ovf_time <- grow q.ovf_time;
    q.ovf_seq <- grow q.ovf_seq;
    q.ovf_code <- grow q.ovf_code
  end;
  let len = ref q.ovf_len in
  lane_insert q.ovf_time q.ovf_seq q.ovf_code len ~time ~seq ~code;
  q.ovf_len <- !len

let due_push q ~time ~seq ~code =
  if q.due_len = Array.length q.due_time then begin
    let cap = 2 * q.due_len in
    let grow a =
      let b = Array.make cap 0 in
      Array.blit a 0 b 0 q.due_len;
      b
    in
    q.due_time <- grow q.due_time;
    q.due_seq <- grow q.due_seq;
    q.due_code <- grow q.due_code
  end;
  let len = ref q.due_len in
  lane_insert q.due_time q.due_seq q.due_code len ~time ~seq ~code;
  q.due_len <- !len

(* ------------------------------ push ------------------------------ *)

let push q ~time ~seq ~code =
  if q.size = 0 then begin
    (* Empty queue: re-anchor the window at the new event. *)
    q.cursor <- time;
    q.cur_block <- time / q.w0;
    l0_append q (alloc_node q ~time ~seq ~code)
  end
  else if time < q.cursor then due_push q ~time ~seq ~code
  else begin
    let b = time / q.w0 in
    if b = q.cur_block then l0_append q (alloc_node q ~time ~seq ~code)
    else if b - q.cur_block < q.w1 then l1_append q (alloc_node q ~time ~seq ~code)
    else ovf_push q ~time ~seq ~code
  end;
  q.size <- q.size + 1

(* ------------------------------ peek ------------------------------ *)

(* Pull the sorted in-horizon overflow prefix into the wheels after
   [cur_block] moved. Sorted order means per-bucket appends arrive in
   ascending (time, seq); anything pushed later carries a larger seq, so
   bucket FIFO order stays correct. *)
let migrate_overflow q =
  let k = ref 0 in
  while !k < q.ovf_len && (q.ovf_time.(!k) / q.w0) - q.cur_block < q.w1 do
    let n = alloc_node q ~time:q.ovf_time.(!k) ~seq:q.ovf_seq.(!k) ~code:q.ovf_code.(!k) in
    if q.ovf_time.(!k) / q.w0 = q.cur_block then l0_append q n else l1_append q n;
    incr k
  done;
  let moved = !k in
  if moved > 0 then begin
    let rest = q.ovf_len - moved in
    Array.blit q.ovf_time moved q.ovf_time 0 rest;
    Array.blit q.ovf_seq moved q.ovf_seq 0 rest;
    Array.blit q.ovf_code moved q.ovf_code 0 rest;
    q.ovf_len <- rest
  end

(* Advance to the next block holding events. Only called when level 0 is
   empty; the promoted level-1 list re-links node by node into level-0
   buckets in list (= seq) order, so FIFO order per time is preserved. *)
let advance_block q =
  if q.l1_count > 0 then begin
    let b = ref (q.cur_block + 1) in
    while q.l1_head.(!b land q.mask1) < 0 do
      incr b
    done;
    q.cur_block <- !b;
    q.cursor <- !b * q.w0;
    let slot = !b land q.mask1 in
    let n = ref q.l1_head.(slot) in
    q.l1_head.(slot) <- -1;
    q.l1_tail.(slot) <- -1;
    while !n >= 0 do
      let next = q.pool_next.(!n) in
      q.l1_count <- q.l1_count - 1;
      l0_append q !n;
      n := next
    done;
    migrate_overflow q
  end
  else begin
    (* Both wheels empty: jump straight to the earliest overflow event. *)
    q.cur_block <- q.ovf_time.(0) / q.w0;
    q.cursor <- q.cur_block * q.w0;
    migrate_overflow q
  end

(* Position the cursor on the earliest queued event. Callers guarantee
   the queue is non-empty. Returns the node id of the wheel's minimum, or
   -1 when the minimum lives in the overdue lane. *)
let position q =
  if q.due_len > 0 then -1
  else begin
    if q.l0_count = 0 then advance_block q;
    let b = ref (q.cursor land q.mask0) in
    while q.l0_head.(!b) < 0 do
      q.cursor <- q.cursor + 1;
      b := q.cursor land q.mask0
    done;
    q.l0_head.(!b)
  end

let top_time q = if q.due_len > 0 then q.due_time.(0) else (ignore (position q); q.cursor)

let top_code q =
  let n = position q in
  if n < 0 then q.due_code.(0) else q.pool_code.(n)

let top_seq q =
  let n = position q in
  if n < 0 then q.due_seq.(0) else q.pool_seq.(n)

(* ------------------------------ drop ------------------------------ *)

let drop q =
  let n = position q in
  if n < 0 then begin
    let rest = q.due_len - 1 in
    Array.blit q.due_time 1 q.due_time 0 rest;
    Array.blit q.due_seq 1 q.due_seq 0 rest;
    Array.blit q.due_code 1 q.due_code 0 rest;
    q.due_len <- rest
  end
  else begin
    let b = q.cursor land q.mask0 in
    let next = q.pool_next.(n) in
    q.l0_head.(b) <- next;
    if next < 0 then q.l0_tail.(b) <- -1;
    free_node q n;
    q.l0_count <- q.l0_count - 1
  end;
  q.size <- q.size - 1
