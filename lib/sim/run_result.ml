type termination =
  | Finished
  | Dnf
  | Budget_exceeded of { budget : int; at : int }
  | Guard_aborted of string
  | Paused of Checkpoint_state.t

type t = {
  makespan : int;
  work_cycles : int;
  fingerprint : float;
  dnf : bool;
  termination : termination;
  metrics : Metrics.t;
  trace : Obs.Trace.record list;
  mutable sanitizer : string option;
}

let completed r = r.termination = Finished

let termination_to_string = function
  | Finished -> "finished"
  | Dnf -> "dnf"
  | Budget_exceeded { budget; at } -> Printf.sprintf "budget-exceeded(%d at %d)" budget at
  | Guard_aborted reason -> Printf.sprintf "guard-aborted(%s)" reason
  | Paused ck -> Printf.sprintf "paused(%s)" (Checkpoint_state.describe ck)

let speedup ~baseline r =
  if r.dnf || (not (completed r)) || r.makespan = 0 then 0.0
  else Float.of_int baseline.work_cycles /. Float.of_int r.makespan

let overhead_pct r =
  if r.work_cycles = 0 then 0.0
  else 100.0 *. Float.of_int (r.makespan - r.work_cycles) /. Float.of_int r.work_cycles

let faults_injected r = Metrics.faults_injected r.metrics

let downgrades r = Metrics.downgrade_count r.metrics

let degraded r = Metrics.downgrade_count r.metrics > 0

let fingerprints_close ?(tol = 1e-6) a b =
  let scale = Float.max (Float.abs a.fingerprint) (Float.abs b.fingerprint) in
  if scale = 0.0 then true else Float.abs (a.fingerprint -. b.fingerprint) /. scale <= tol
