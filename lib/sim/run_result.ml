type t = {
  makespan : int;
  work_cycles : int;
  fingerprint : float;
  dnf : bool;
  metrics : Metrics.t;
}

let speedup ~baseline r =
  if r.dnf || r.makespan = 0 then 0.0
  else Float.of_int baseline.work_cycles /. Float.of_int r.makespan

let overhead_pct r =
  if r.work_cycles = 0 then 0.0
  else 100.0 *. Float.of_int (r.makespan - r.work_cycles) /. Float.of_int r.work_cycles

let faults_injected r = Metrics.faults_injected r.metrics

let downgrades r = Metrics.downgrade_count r.metrics

let degraded r = r.metrics.Metrics.mechanism_downgrades <> []

let fingerprints_close ?(tol = 1e-6) a b =
  let scale = Float.max (Float.abs a.fingerprint) (Float.abs b.fingerprint) in
  if scale = 0.0 then true else Float.abs (a.fingerprint -. b.fingerprint) /. scale <= tol
