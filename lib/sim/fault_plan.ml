type t = {
  seed : int;
  beat_drop_prob : float;
  beat_jitter : int;
  steal_fail_prob : float;
  steal_fail_burst : int;
  stall_prob : float;
  stall_cycles : int;
}

let none =
  {
    seed = 0;
    beat_drop_prob = 0.0;
    beat_jitter = 0;
    steal_fail_prob = 0.0;
    steal_fail_burst = 0;
    stall_prob = 0.0;
    stall_cycles = 0;
  }

let is_zero t =
  t.beat_drop_prob = 0.0 && t.beat_jitter = 0 && t.steal_fail_prob = 0.0 && t.stall_prob = 0.0

let with_seed t seed = { t with seed }

let random rng =
  {
    seed = Sim_rng.int rng 1_000_000;
    beat_drop_prob = Sim_rng.float rng 0.5;
    beat_jitter = Sim_rng.int rng 5_000;
    steal_fail_prob = Sim_rng.float rng 0.4;
    steal_fail_burst = 1 + Sim_rng.int rng 4;
    stall_prob = Sim_rng.float rng 0.02;
    stall_cycles = 1 + Sim_rng.int rng 10_000;
  }

let to_string t =
  if is_zero t then "no faults"
  else
    Printf.sprintf
      "seed=%d drop=%.0f%% jitter<=%dcy steal-fail=%.0f%%x%d stall=%.1f%%<=%dcy" t.seed
      (100.0 *. t.beat_drop_prob) t.beat_jitter
      (100.0 *. t.steal_fail_prob)
      t.steal_fail_burst
      (100.0 *. t.stall_prob)
      t.stall_cycles
