type t = {
  seed : int;
  beat_drop_prob : float;
  beat_jitter : int;
  steal_fail_prob : float;
  steal_fail_burst : int;
  stall_prob : float;
  stall_cycles : int;
  stall_polls : int;
  delay_wakeup_prob : float;
}

let none =
  {
    seed = 0;
    beat_drop_prob = 0.0;
    beat_jitter = 0;
    steal_fail_prob = 0.0;
    steal_fail_burst = 0;
    stall_prob = 0.0;
    stall_cycles = 0;
    stall_polls = 0;
    delay_wakeup_prob = 0.0;
  }

let is_zero t =
  t.beat_drop_prob = 0.0 && t.beat_jitter = 0 && t.steal_fail_prob = 0.0 && t.stall_prob = 0.0
  && t.delay_wakeup_prob = 0.0

let with_seed t seed = { t with seed }

let random rng =
  {
    none with
    seed = Sim_rng.int rng 1_000_000;
    beat_drop_prob = Sim_rng.float rng 0.5;
    beat_jitter = Sim_rng.int rng 5_000;
    steal_fail_prob = Sim_rng.float rng 0.4;
    steal_fail_burst = 1 + Sim_rng.int rng 4;
    stall_prob = Sim_rng.float rng 0.02;
    stall_cycles = 1 + Sim_rng.int rng 10_000;
  }

let random_portable rng =
  {
    none with
    seed = Sim_rng.int rng 1_000_000;
    beat_drop_prob = Sim_rng.float rng 0.5;
    steal_fail_prob = Sim_rng.float rng 0.4;
    steal_fail_burst = 1 + Sim_rng.int rng 4;
    stall_prob = Sim_rng.float rng 0.02;
    stall_polls = 1 + Sim_rng.int rng 256;
    delay_wakeup_prob = Sim_rng.float rng 0.3;
  }

(* A fault kind is backend-portable when the domains backend can model it
   without virtual time: steal refusal, dropped beats, wakeup suppression
   and poll-counted stalls qualify; cycle-granular delivery jitter and
   cycle-counted stall windows only make sense on the simulator clock. *)
let simulator_only t =
  let out = [] in
  let out = if t.beat_jitter > 0 then "beat-jitter (cycle-granular delivery delay)" :: out else out in
  let out =
    if t.stall_prob > 0.0 && t.stall_polls = 0 then
      "stall-cycles (cycle-counted stall window; set stall_polls for native)" :: out
    else out
  in
  List.rev out

let portable t = simulator_only t = []

let to_string t =
  if is_zero t then "no faults"
  else
    Printf.sprintf
      "seed=%d drop=%.0f%% jitter<=%dcy steal-fail=%.0f%%x%d stall=%.1f%%<=%dcy/%dpolls wakeup-delay=%.0f%%"
      t.seed
      (100.0 *. t.beat_drop_prob)
      t.beat_jitter
      (100.0 *. t.steal_fail_prob)
      t.steal_fail_burst
      (100.0 *. t.stall_prob)
      t.stall_cycles t.stall_polls
      (100.0 *. t.delay_wakeup_prob)

(* Byte-stable codec: fields in fixed order, floats via %.17g so a plan
   round-trips exactly (repro files, fuzz cases, serve journals). *)
let to_json t =
  Obs.Json.Obj
    [
      ("v", Obs.Json.Int 1);
      ("seed", Obs.Json.Int t.seed);
      ("beat_drop_prob", Obs.Json.Float t.beat_drop_prob);
      ("beat_jitter", Obs.Json.Int t.beat_jitter);
      ("steal_fail_prob", Obs.Json.Float t.steal_fail_prob);
      ("steal_fail_burst", Obs.Json.Int t.steal_fail_burst);
      ("stall_prob", Obs.Json.Float t.stall_prob);
      ("stall_cycles", Obs.Json.Int t.stall_cycles);
      ("stall_polls", Obs.Json.Int t.stall_polls);
      ("delay_wakeup_prob", Obs.Json.Float t.delay_wakeup_prob);
    ]

let of_json = function
  | Obs.Json.Obj fields ->
      let ( let* ) = Option.bind in
      let int k = Obs.Json.get_int k fields in
      let num k = Obs.Json.get_float k fields in
      let* seed = int "seed" in
      let* beat_drop_prob = num "beat_drop_prob" in
      let* beat_jitter = int "beat_jitter" in
      let* steal_fail_prob = num "steal_fail_prob" in
      let* steal_fail_burst = int "steal_fail_burst" in
      let* stall_prob = num "stall_prob" in
      let* stall_cycles = int "stall_cycles" in
      (* v0 plans predate the portable kinds: absent fields read as zero *)
      let stall_polls = Option.value ~default:0 (int "stall_polls") in
      let delay_wakeup_prob = Option.value ~default:0.0 (num "delay_wakeup_prob") in
      Some
        {
          seed;
          beat_drop_prob;
          beat_jitter;
          steal_fail_prob;
          steal_fail_burst;
          stall_prob;
          stall_cycles;
          stall_polls;
          delay_wakeup_prob;
        }
  | _ -> None
