(** Declarative, seed-deterministic fault plans.

    A plan describes {e what can go wrong} during a simulated run: heartbeat
    deliveries dropped or jittered (modelling the ping thread's up-to-45%%
    signal loss and kernel-module interrupt latency under OS noise), steal
    attempts that fail in bursts (CAS contention on a crowded deque), and
    per-worker stall windows (OS preemption of a simulated core).

    Plans are pure data; {!Fault_injector} turns one into a stream of
    per-worker decisions driven off {!Sim_rng}, so identical plans produce
    identical fault schedules. The cross-cutting contract of the whole layer
    is: a fault plan may change {e performance}, never {e results} — every
    executor output under any plan must equal the sequential reference. *)

type t = {
  seed : int;  (** root of the per-worker decision streams *)
  beat_drop_prob : float;
      (** probability in [\[0, 1\]] that an interrupt/signal heartbeat
          delivery is lost before reaching its worker *)
  beat_jitter : int;
      (** maximum extra delivery delay in cycles for a non-dropped beat
          (uniform in [\[0, beat_jitter\]]) *)
  steal_fail_prob : float;
      (** probability that a steal attempt starts a forced-failure burst *)
  steal_fail_burst : int;
      (** consecutive forced steal failures per triggered burst (contended
          CAS retries); 0 or 1 means single failures *)
  stall_prob : float;
      (** per-scheduling-point probability that a worker is preempted *)
  stall_cycles : int;
      (** maximum stall window in cycles (uniform in [\[1, stall_cycles\]]) *)
}

val none : t
(** The zero plan: every probability 0, every window 0. Running under
    [none] is bit-identical to running with no fault layer at all. *)

val is_zero : t -> bool
(** True when the plan can never inject anything (the seed is ignored). *)

val with_seed : t -> int -> t

val random : Sim_rng.t -> t
(** Draw a bounded random plan (drop up to 50%, jitter up to 5k cycles,
    steal-failure bursts up to 4, stalls up to 10k cycles) for
    property-style differential testing. *)

val to_string : t -> string
(** One-line human-readable summary, e.g. for experiment captions. *)
