(** Declarative, seed-deterministic fault plans.

    A plan describes {e what can go wrong} during a run: heartbeat
    deliveries dropped or jittered (modelling the ping thread's up-to-45%%
    signal loss and kernel-module interrupt latency under OS noise), steal
    attempts that fail in bursts (CAS contention on a crowded deque),
    per-worker stall windows (OS preemption of a core), and suppressed
    parked-worker wakeup signals (a lost futex wake).

    Plans are pure data; {!Fault_injector} turns one into a stream of
    per-worker decisions driven off {!Sim_rng}, so identical plans produce
    identical fault schedules. The cross-cutting contract of the whole layer
    is: a fault plan may change {e performance}, never {e results} — every
    executor output under any plan must equal the sequential reference.

    {b Portability.} Most kinds are backend-portable: the OCaml 5 domains
    backend draws the same per-worker decision streams from [(seed, P)], so
    a native chaos run is reproducible too. Two knobs are simulator-only
    because they are denominated in virtual-time cycles: [beat_jitter]
    (cycle-granular delivery delay) and a [stall_prob] whose window is given
    only in [stall_cycles] (native stalls are counted in polls via
    [stall_polls]). {!simulator_only} names the offending knobs so callers
    can refuse them with a precise error. *)

type t = {
  seed : int;  (** root of the per-worker decision streams *)
  beat_drop_prob : float;
      (** probability in [\[0, 1\]] that an interrupt/signal heartbeat
          delivery is lost before reaching its worker *)
  beat_jitter : int;
      (** maximum extra delivery delay in cycles for a non-dropped beat
          (uniform in [\[0, beat_jitter\]]); {e simulator-only} *)
  steal_fail_prob : float;
      (** probability that a steal attempt starts a forced-failure burst *)
  steal_fail_burst : int;
      (** consecutive forced steal failures per triggered burst (contended
          CAS retries); 0 or 1 means single failures *)
  stall_prob : float;
      (** per-scheduling-point probability that a worker is preempted *)
  stall_cycles : int;
      (** maximum stall window in cycles (uniform in [\[1, stall_cycles\]]);
          the simulator's stall duration *)
  stall_polls : int;
      (** maximum stall window in counted polls (uniform in
          [\[1, stall_polls\]]); the domains backend's stall duration — a
          stalled worker ignores that many of its own heartbeat polls *)
  delay_wakeup_prob : float;
      (** probability that a parked-worker wakeup signal is suppressed
          (domains backend; the bounded park timeout is the recovery path) *)
}

val none : t
(** The zero plan: every probability 0, every window 0. Running under
    [none] is bit-identical to running with no fault layer at all. *)

val is_zero : t -> bool
(** True when the plan can never inject anything (the seed is ignored). *)

val with_seed : t -> int -> t

val random : Sim_rng.t -> t
(** Draw a bounded random plan (drop up to 50%, jitter up to 5k cycles,
    steal-failure bursts up to 4, stalls up to 10k cycles) for
    property-style differential testing on the simulator. The portable-only
    knobs stay zero so existing sim sweeps are unchanged. *)

val random_portable : Sim_rng.t -> t
(** Draw a bounded random plan using only backend-portable kinds (drop,
    steal refusal, poll-counted stalls up to 256 polls, wakeup suppression
    up to 30%) — suitable for native chaos campaigns. *)

val simulator_only : t -> string list
(** Human-readable names of the plan's simulator-only features, empty when
    the plan is portable to the domains backend. *)

val portable : t -> bool
(** [simulator_only t = []]. *)

val to_string : t -> string
(** One-line human-readable summary, e.g. for experiment captions. *)

val to_json : t -> Obs.Json.t
(** Byte-stable codec (fixed field order, ["%.17g"] floats): plans embed in
    fuzz repros and serve journals and round-trip exactly. *)

val of_json : Obs.Json.t -> t option
(** Inverse of {!to_json}; plans written before the portable kinds existed
    read back with those knobs zero. *)
