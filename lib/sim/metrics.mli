(** Counters collected during a simulated run.

    One [Metrics.t] is attached to each run; the experiment harness reads it
    to build the paper's figures (promotion nesting levels for Fig. 5,
    heartbeat detection rates for Fig. 13, chunk-size traces for Fig. 12,
    overhead component attribution for Figs. 7 and 8). *)

type t = {
  mutable heartbeats_generated : int;
  mutable heartbeats_detected : int;
  mutable heartbeats_missed : int;
  mutable polls : int;
  mutable promotions : int;
  promotions_by_level : int array;  (** indexed by nesting level, up to 8 *)
  mutable tasks_spawned : int;
  mutable leftover_tasks_run : int;
  mutable steals : int;
  mutable steal_attempts : int;
  mutable join_slow_paths : int;
  mutable chunk_updates : int;
  mutable work_cycles : int;  (** useful (baseline) body cycles *)
  mutable overhead_cycles : int;  (** everything that is not body work *)
  overhead_by_kind : (string, int) Hashtbl.t;
      (** attribution: "poll", "chunk-transfer", "closure", "outline-call",
          "promotion-branch", "interrupt", ... *)
  mutable chunk_trace : (int * int * int) list;
      (** (virtual time, outer iteration key, new chunk size), newest first *)
  mutable timeline : (int * int * int * string) list;
      (** execution intervals (worker, start, end, kind), newest first;
          recorded only when the run asks for a timeline *)
  mutable faults_beats_dropped : int;
      (** injected heartbeat-delivery losses ({!Fault_injector}) *)
  mutable faults_beats_delayed : int;  (** injected delivery-jitter events *)
  mutable faults_steals_failed : int;  (** injected steal-attempt failures *)
  mutable faults_stalls : int;  (** injected per-worker stall windows *)
  mutable faults_stall_cycles : int;  (** total cycles lost to stalls *)
  mutable mechanism_downgrades : (int * int) list;
      (** watchdog fallbacks to software polling, (worker, virtual time),
          newest first *)
}

val create : unit -> t

val add_overhead : t -> string -> int -> unit
(** Bump both the per-kind attribution and the overhead total. *)

val promotion_at_level : t -> int -> unit

val overhead_of : t -> string -> int

val promotion_share_by_level : t -> float array
(** Percentage of promotions per nesting level (sums to 100 when any). *)

val detection_rate : t -> float
(** Detected heartbeats as a percentage of generated ones (100.0 if none
    were generated). *)

val record_chunk_update : t -> time:int -> key:int -> chunk:int -> unit

val record_downgrade : t -> worker:int -> time:int -> unit
(** Log a watchdog downgrade of one worker's heartbeat mechanism. *)

val downgrade_count : t -> int

val faults_injected : t -> int
(** Total injected fault events (drops + delays + steal failures + stalls). *)

val counters : t -> (string * int) list
(** Every scalar counter as (name, value), for the experiment journal. The
    non-scalar state (per-level promotions, overhead attribution, downgrade
    log, traces) is serialized separately by the checkpoint layer. *)

val restore_counter : t -> string -> int -> unit
(** Set one scalar counter by its {!counters} name; unknown names are
    ignored (journal forward-compatibility). *)

val record_interval : t -> worker:int -> t0:int -> t1:int -> kind:string -> unit

val busy_cycles_of : t -> int -> int
(** Total recorded interval cycles for one worker. *)
