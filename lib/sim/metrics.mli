(** Scalar counters collected during a simulated run.

    One [Metrics.t] is attached to each run; the experiment harness reads
    it to build the paper's figures (promotion nesting levels for Fig. 5,
    heartbeat detection rates for Fig. 13, overhead component attribution
    for Figs. 7 and 8).

    Since the trace redesign, [Metrics] holds {e only} counters. Every
    discrete runtime occurrence (a promotion, a steal, a detected
    heartbeat, an injected fault, ...) is emitted exactly once as an
    {!Obs.Trace.event}; the run wires an always-on {!counting_sink} that
    derives these counters from that stream. Event {e logs} — chunk-size
    evolution, execution timelines, downgrade schedules — live in the
    captured trace ({!Run_result.t.trace}) and are queried through
    [Obs.Trace_query]. *)

type t = {
  mutable heartbeats_generated : int;
  mutable heartbeats_detected : int;
  mutable heartbeats_missed : int;
  mutable polls : int;
  mutable promotions : int;
  promotions_by_level : int array;  (** indexed by nesting level, up to 8 *)
  mutable tasks_spawned : int;
  mutable leftover_tasks_run : int;
  mutable steals : int;
  mutable steal_attempts : int;
  mutable join_slow_paths : int;
  mutable chunk_updates : int;
  mutable work_cycles : int;  (** useful (baseline) body cycles *)
  mutable overhead_cycles : int;  (** everything that is not body work *)
  overhead_by_kind : (string, int) Hashtbl.t;
      (** attribution: "poll", "chunk-transfer", "closure", "outline-call",
          "promotion-branch", "interrupt", ... *)
  mutable faults_beats_dropped : int;
      (** injected heartbeat-delivery losses ({!Fault_injector}) *)
  mutable faults_beats_delayed : int;  (** injected delivery-jitter events *)
  mutable faults_steals_failed : int;  (** injected steal-attempt failures *)
  mutable faults_stalls : int;  (** injected per-worker stall windows *)
  mutable faults_stall_cycles : int;  (** total cycles lost to stalls *)
  mutable faults_wakeups_delayed : int;
      (** injected parked-worker wakeup suppressions (domains backend) *)
  mutable downgrades : int;
      (** watchdog fallbacks from an interrupt mechanism to software
          polling; the per-worker schedule is in the trace *)
}

val create : unit -> t

val add_overhead : t -> string -> int -> unit
(** Bump both the per-kind attribution and the overhead total. Cycle
    attribution is not a discrete event, so it stays a direct call. *)

val promotion_at_level : t -> int -> unit

val overhead_of : t -> string -> int

val promotion_share_by_level : t -> float array
(** Percentage of promotions per nesting level (sums to 100 when any). *)

val detection_rate : t -> float
(** Detected heartbeats as a percentage of generated ones (100.0 if none
    were generated). *)

val downgrade_count : t -> int

val faults_injected : t -> int
(** Total injected fault events (drops + delays + steal failures + stalls). *)

val count_event : t -> Obs.Trace.event -> unit
(** Apply one event to the counters; {!counting_sink} per event. *)

val counting_sink : t -> Obs.Trace.Sink.t
(** The always-on sink every run tees with the caller's: it folds the
    event stream into these counters and stores nothing. *)

val counters : t -> (string * int) list
(** Every scalar counter as (name, value), for the experiment journal. The
    non-scalar state (per-level promotions, overhead attribution) is
    serialized separately by the checkpoint layer. *)

val restore_counter : t -> string -> int -> unit
(** Set one scalar counter by its {!counters} name; unknown names are
    ignored (journal forward-compatibility). *)
