type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let state t = t.state

let set_state t s = t.state <- s

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = next_int64 t in
  { state = seed }

let int t bound =
  assert (bound > 0);
  (* Keep 62 bits so the value fits OCaml's 63-bit int without wrapping. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  (* 53 random bits scaled to [0, 1). *)
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Inverse-CDF: -ln(1-u)/rate with u in [0, 1). 1-u is in (0, 1], so the
   log never sees 0 and the sample is always finite and non-negative. *)
let exponential t ~rate =
  assert (rate > 0.0);
  let u = float t 1.0 in
  -.Float.log (1.0 -. u) /. rate

(* Inverse-CDF sampling against the generalized harmonic number; the CDF is
   approximated by the continuous integral, which is accurate enough for
   workload generation and avoids O(n) tables. *)
let zipf t ~alpha ~n =
  assert (n >= 1);
  if n = 1 then 1
  else begin
    let u = Stdlib.max 1e-12 (float t 1.0) in
    if Float.abs (alpha -. 1.0) < 1e-9 then begin
      let hmax = Float.log (Float.of_int n +. 0.5) -. Float.log 0.5 in
      let x = 0.5 *. Float.exp (u *. hmax) in
      let k = Stdlib.max 1 (Stdlib.min n (int_of_float (Float.round x))) in
      k
    end
    else begin
      let one_minus = 1.0 -. alpha in
      let edge v = ((v ** one_minus) -. (0.5 ** one_minus)) /. one_minus in
      let hmax = edge (Float.of_int n +. 0.5) in
      let x = ((u *. hmax *. one_minus) +. (0.5 ** one_minus)) ** (1.0 /. one_minus) in
      Stdlib.max 1 (Stdlib.min n (int_of_float (Float.round x)))
    end
  end
