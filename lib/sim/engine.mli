(** Deterministic virtual-time multicore engine.

    Each simulated worker (core) runs as an OCaml-5 fiber. Workers advance a
    private virtual clock by performing {!advance}; the engine always resumes
    the runnable fiber with the smallest clock, so all shared-state mutations
    happen in virtual-time order and a run is a pure function of its inputs.

    Besides workers, the engine supports timed callbacks ({!schedule_at},
    {!every}); the heartbeat interrupt sources are built on them. *)

type t

exception Deadlock of string
(** Raised when live workers are all parked and no event can wake them. The
    message carries a per-worker state snapshot (clock, parked/runnable/
    finished, plus the {!set_diagnostics} hook's output) for diagnosis. *)

exception Budget_exceeded of { budget : int; time : int }
(** Raised from {!run} when the next event's virtual time passes the
    {!set_budget} cap: the structured abort for fault-induced livelocks that
    keep generating events instead of finishing. *)

exception Guard_stop of string
(** Raised from {!run} when the {!set_guard} hook requests an abort (e.g. a
    wall-clock deadline), carrying the hook's reason. *)

val create : ?seed:int -> num_workers:int -> unit -> t

val set_budget : t -> int -> unit
(** Arm the virtual-cycle watchdog: any event dispatched past this virtual
    time aborts the run with {!Budget_exceeded}. Unlike a scheduled
    callback, the check also fires when the heap only contains
    self-rescheduling callbacks. *)

val set_guard : t -> ?every:int -> (unit -> string option) -> unit
(** Install an external abort hook, polled every [every] (default 4096)
    event dispatches; returning [Some reason] aborts the run with
    {!Guard_stop}. Used for wall-clock trial deadlines. *)

val num_workers : t -> int

val rng : t -> Sim_rng.t
(** Engine-level RNG (steal victim selection); deterministic per seed. *)

val set_diagnostics : t -> (int -> string) -> unit
(** Install a per-worker annotation hook (e.g. deque depth) appended to
    each worker's line in {!Deadlock} snapshots. *)

val worker_id : t -> int
(** Id of the currently running worker; [-1] inside a timed callback. *)

val now : t -> int
(** Virtual time of the running worker (or of the callback being run). *)

val clock_of : t -> int -> int
(** Virtual clock of an arbitrary worker. *)

val advance : t -> int -> unit
(** [advance t c] consumes [c] cycles on the current worker, yielding to any
    worker or callback whose virtual time is earlier. Must be called from
    worker context. *)

val park : t -> unit
(** Block the current worker until {!unpark} or {!unpark_all}. Its clock
    jumps to the waking time. *)

val is_parked : t -> int -> bool

val unpark : t -> int -> unit
(** Wake worker [w] (no-op if it is not parked) at the caller's time. *)

val unpark_all : t -> unit

val schedule_at : t -> time:int -> (unit -> unit) -> unit
(** Run a callback at an absolute virtual time (engine context). *)

val every : t -> start:int -> interval:int -> (unit -> unit) -> unit -> unit
(** [every t ~start ~interval f] runs [f] at [start], [start+interval], ...
    Returns a cancellation function. Recurring callbacks do not keep the
    engine alive once all workers finished. *)

val run : t -> (int -> unit) -> unit
(** [run t main] starts [num_workers] fibers, worker [w] executing [main w]
    from virtual time 0, and processes events until all workers finish —
    or until the {!set_pause_at} boundary is reached, in which case the
    engine stops with its heap and fiber continuations intact ({!paused}
    becomes true) and can be continued with {!continue_run}.
    @raise Deadlock if all unfinished workers are parked with nothing
    scheduled to wake them. *)

val set_pause_at : t -> int -> unit
(** Arm a cooperative pause boundary: the dispatch loop stops *before*
    dispatching any event whose virtual time is [>=] the boundary. Unlike
    {!set_budget} this is not an abort — every continuation, clock, and
    queued event is preserved, so {!continue_run} resumes the identical
    dispatch sequence an uninterrupted run would have had. *)

val clear_pause : t -> unit
(** Disarm the pause boundary. The {!paused} flag is left as is (it is
    {!continue_run}'s job to reset it), so a paused engine stays
    continuable after its boundary is cleared. *)

val paused : t -> bool
(** True when {!run} (or {!continue_run}) returned at a pause boundary
    rather than by all workers finishing. *)

val continue_run : t -> unit
(** Continue a paused engine ({!paused} must be true). Typically the caller
    first moves or clears the boundary with {!set_pause_at}/{!clear_pause};
    otherwise the engine pauses again immediately. *)

val max_time : t -> int
(** Largest virtual clock reached across workers (the makespan after
    {!run} returns). *)

val events_processed : t -> int
(** Total events (resumes and callbacks) dispatched so far: a deterministic
    load figure for the perf-gate's engine probe. *)
