(** Hierarchical calendar-queue event queue: the engine's dispatch
    substrate.

    A priority queue over (virtual time, seq) pairs with an int payload
    code, popping in strictly increasing (time, seq) order — exactly the
    order the engine's former binary heap produced, but with O(1)
    amortized push and pop at high event rates.

    Two wheel levels cover the near future: level 0 holds [width]
    one-cycle buckets for the current block of virtual time, level 1
    holds [blocks] block-granular buckets covering a
    [width * blocks]-cycle horizon. Events past the horizon fall back to
    a sorted overflow bucket that migrates into the wheels as time
    advances; events pushed behind the cursor land in a small sorted
    overdue lane that is always served first. Queued events are three
    unboxed ints, so steady-state scheduling allocates nothing. *)

type t

val create : ?width:int -> ?blocks:int -> unit -> t
(** [width] (default 256) is the number of one-cycle level-0 buckets;
    [blocks] (default 256) the number of level-1 block buckets. Both
    must be powers of two. The wheel horizon is [width * blocks]
    virtual cycles. *)

val is_empty : t -> bool

val length : t -> int
(** Total queued events across buckets, overflow, and overdue lanes. *)

val overflow_length : t -> int
(** Events currently in the far-future overflow bucket (introspection
    for tests and stats). *)

val overdue_length : t -> int
(** Events currently in the behind-cursor overdue lane. *)

val push : t -> time:int -> seq:int -> code:int -> unit
(** Enqueue. [seq] must be globally unique; pops tie-break equal times
    by it, FIFO when the pusher's stamps are monotone. *)

val top_time : t -> int
(** Virtual time of the earliest queued event. Undefined when empty —
    callers check {!is_empty} first. *)

val top_seq : t -> int
(** Seq stamp of the earliest queued event. Undefined when empty. *)

val top_code : t -> int
(** Payload code of the earliest queued event. Undefined when empty. *)

val drop : t -> unit
(** Remove the earliest queued event (the one {!top_time}/{!top_code}
    describe). Undefined when empty. *)
