type t = {
  plan : Fault_plan.t;
  active : bool;
  rngs : Sim_rng.t array;  (* one decision stream per worker *)
  burst_left : int array;  (* remaining forced steal failures per worker *)
  metrics : Metrics.t;
}

let create plan ~num_workers metrics =
  let parent = Sim_rng.create plan.Fault_plan.seed in
  {
    plan;
    active = not (Fault_plan.is_zero plan);
    rngs = Array.init num_workers (fun _ -> Sim_rng.split parent);
    burst_left = Array.make num_workers 0;
    metrics;
  }

let inactive ~num_workers metrics = create Fault_plan.none ~num_workers metrics

let active t = t.active

let plan t = t.plan

(* Each feature draws only when its own plan knob is non-zero, so e.g. a
   beat-drop-only sweep consumes the same stream positions whether or not
   the other knobs exist; and an inert injector never draws at all. *)

let drop_beat t ~worker =
  if
    t.active
    && t.plan.Fault_plan.beat_drop_prob > 0.0
    && Sim_rng.float t.rngs.(worker) 1.0 < t.plan.Fault_plan.beat_drop_prob
  then begin
    t.metrics.Metrics.faults_beats_dropped <- t.metrics.Metrics.faults_beats_dropped + 1;
    true
  end
  else false

let delivery_jitter t ~worker =
  if t.active && t.plan.Fault_plan.beat_jitter > 0 then begin
    let j = Sim_rng.int t.rngs.(worker) (t.plan.Fault_plan.beat_jitter + 1) in
    if j > 0 then
      t.metrics.Metrics.faults_beats_delayed <- t.metrics.Metrics.faults_beats_delayed + 1;
    j
  end
  else 0

let steal_fails t ~worker =
  if not (t.active && t.plan.Fault_plan.steal_fail_prob > 0.0) then false
  else if t.burst_left.(worker) > 0 then begin
    t.burst_left.(worker) <- t.burst_left.(worker) - 1;
    t.metrics.Metrics.faults_steals_failed <- t.metrics.Metrics.faults_steals_failed + 1;
    true
  end
  else if Sim_rng.float t.rngs.(worker) 1.0 < t.plan.Fault_plan.steal_fail_prob then begin
    t.burst_left.(worker) <- Stdlib.max 0 (t.plan.Fault_plan.steal_fail_burst - 1);
    t.metrics.Metrics.faults_steals_failed <- t.metrics.Metrics.faults_steals_failed + 1;
    true
  end
  else false

let stall_cycles t ~worker =
  if
    t.active
    && t.plan.Fault_plan.stall_prob > 0.0
    && Sim_rng.float t.rngs.(worker) 1.0 < t.plan.Fault_plan.stall_prob
  then begin
    let c = 1 + Sim_rng.int t.rngs.(worker) (Stdlib.max 1 t.plan.Fault_plan.stall_cycles) in
    t.metrics.Metrics.faults_stalls <- t.metrics.Metrics.faults_stalls + 1;
    t.metrics.Metrics.faults_stall_cycles <- t.metrics.Metrics.faults_stall_cycles + c;
    c
  end
  else 0

let backoff_jitter t ~worker ~limit =
  if t.active && limit > 0 then Sim_rng.int t.rngs.(worker) limit else 0
