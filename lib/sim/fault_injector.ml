type t = {
  plan : Fault_plan.t;
  active : bool;
  rngs : Sim_rng.t array;  (* one decision stream per worker *)
  burst_left : int array;  (* remaining forced steal failures per worker *)
  trace : Obs.Trace.Sink.t;
  now : unit -> int;
}

let create plan ~num_workers ?(trace = Obs.Trace.Sink.null) ?(now = fun () -> 0) () =
  let parent = Sim_rng.create plan.Fault_plan.seed in
  {
    plan;
    active = not (Fault_plan.is_zero plan);
    rngs = Array.init num_workers (fun _ -> Sim_rng.split parent);
    burst_left = Array.make num_workers 0;
    trace;
    now;
  }

let inactive ~num_workers = create Fault_plan.none ~num_workers ()

let active t = t.active

let plan t = t.plan

let booked t ~worker fault =
  Obs.Trace.Sink.emit t.trace ~time:(t.now ()) ~worker (Obs.Trace.Fault_injected fault)

(* Each feature draws only when its own plan knob is non-zero, so e.g. a
   beat-drop-only sweep consumes the same stream positions whether or not
   the other knobs exist; and an inert injector never draws at all. *)

let drop_beat t ~worker =
  if
    t.active
    && t.plan.Fault_plan.beat_drop_prob > 0.0
    && Sim_rng.float t.rngs.(worker) 1.0 < t.plan.Fault_plan.beat_drop_prob
  then begin
    booked t ~worker Obs.Trace.Beat_dropped;
    true
  end
  else false

let delivery_jitter t ~worker =
  if t.active && t.plan.Fault_plan.beat_jitter > 0 then begin
    let j = Sim_rng.int t.rngs.(worker) (t.plan.Fault_plan.beat_jitter + 1) in
    if j > 0 then booked t ~worker (Obs.Trace.Beat_delayed j);
    j
  end
  else 0

let steal_fails t ~worker =
  if not (t.active && t.plan.Fault_plan.steal_fail_prob > 0.0) then false
  else if t.burst_left.(worker) > 0 then begin
    t.burst_left.(worker) <- t.burst_left.(worker) - 1;
    booked t ~worker Obs.Trace.Steal_failed;
    true
  end
  else if Sim_rng.float t.rngs.(worker) 1.0 < t.plan.Fault_plan.steal_fail_prob then begin
    t.burst_left.(worker) <- Stdlib.max 0 (t.plan.Fault_plan.steal_fail_burst - 1);
    booked t ~worker Obs.Trace.Steal_failed;
    true
  end
  else false

let stall_cycles t ~worker =
  if
    t.active
    && t.plan.Fault_plan.stall_prob > 0.0
    && Sim_rng.float t.rngs.(worker) 1.0 < t.plan.Fault_plan.stall_prob
  then begin
    let c = 1 + Sim_rng.int t.rngs.(worker) (Stdlib.max 1 t.plan.Fault_plan.stall_cycles) in
    booked t ~worker (Obs.Trace.Stall c);
    c
  end
  else 0

let stall_polls t ~worker =
  if
    t.active
    && t.plan.Fault_plan.stall_prob > 0.0
    && t.plan.Fault_plan.stall_polls > 0
    && Sim_rng.float t.rngs.(worker) 1.0 < t.plan.Fault_plan.stall_prob
  then begin
    let n = 1 + Sim_rng.int t.rngs.(worker) t.plan.Fault_plan.stall_polls in
    booked t ~worker (Obs.Trace.Stall n);
    n
  end
  else 0

let delay_wakeup t ~worker =
  if
    t.active
    && t.plan.Fault_plan.delay_wakeup_prob > 0.0
    && Sim_rng.float t.rngs.(worker) 1.0 < t.plan.Fault_plan.delay_wakeup_prob
  then begin
    booked t ~worker Obs.Trace.Wakeup_delayed;
    true
  end
  else false

let backoff_jitter t ~worker ~limit =
  if t.active && limit > 0 then Sim_rng.int t.rngs.(worker) limit else 0
