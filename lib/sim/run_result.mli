(** Common result record for every executor (sequential, OpenMP-like, TPAL,
    HBC): the experiment harness computes speedups, overheads, and figure
    rows from these. *)

type t = {
  makespan : int;  (** virtual cycles from program start to completion *)
  work_cycles : int;  (** pure body work (equals the sequential baseline) *)
  fingerprint : float;  (** output checksum, compared against sequential *)
  dnf : bool;  (** true when the run exceeded its virtual-time cap *)
  metrics : Metrics.t;
}

val speedup : baseline:t -> t -> float
(** [speedup ~baseline r] is baseline work over [r]'s makespan; 0 for DNF. *)

val overhead_pct : t -> float
(** Overhead of a sequential-with-overheads run against its own pure work,
    in percent. *)

val faults_injected : t -> int
(** Total fault events the run's {!Fault_injector} injected (0 without a
    fault plan). *)

val downgrades : t -> int
(** Watchdog fallbacks from an interrupt mechanism to software polling. *)

val degraded : t -> bool
(** True when at least one worker was downgraded during the run. *)

val fingerprints_close : ?tol:float -> t -> t -> bool
(** Relative comparison (default tolerance 1e-6) — parallel reductions
    reassociate floating-point sums. *)
