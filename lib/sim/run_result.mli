(** Common result record for every executor (sequential, OpenMP-like, TPAL,
    HBC): the experiment harness computes speedups, overheads, and figure
    rows from these. *)

type termination =
  | Finished  (** the program ran to completion *)
  | Dnf  (** exceeded the virtual-time DNF cap (the paper's did-not-finish) *)
  | Budget_exceeded of { budget : int; at : int }
      (** aborted by the per-trial virtual-cycle watchdog
          ({!Engine.set_budget}): the run was livelocked or pathologically
          slow; partial counters only *)
  | Guard_aborted of string
      (** aborted by an external guard (wall-clock deadline); partial
          counters only *)
  | Paused of Checkpoint_state.t
      (** cooperatively paused at an engine pause boundary; the payload is
          the serializable checkpoint a later run can resume from (see
          {!Checkpoint_state}); partial counters, resumable *)

type t = {
  makespan : int;  (** virtual cycles from program start to completion *)
  work_cycles : int;  (** pure body work (equals the sequential baseline) *)
  fingerprint : float;  (** output checksum, compared against sequential *)
  dnf : bool;  (** true when the run exceeded its virtual-time cap *)
  termination : termination;  (** how the run ended (watchdog taxonomy) *)
  metrics : Metrics.t;
  trace : Obs.Trace.record list;
      (** the records captured by the run's trace sink ([] when the run was
          given a non-capturing sink); queried via [Obs.Trace_query] by the
          figure pipeline, the Gantt renderer, and the Perfetto exporter *)
  mutable sanitizer : string option;
      (** one-line sanitizer status ("sanitizer: OK ..." / "sanitizer: N
          violation(s) ..."), filled in by callers that ran the executor
          under an invariant sanitizer; [None] for unsanitized runs.
          Mutable because the sanitizer's verdict (its [finish] checks)
          only exists after the run's record is built. *)
}

val completed : t -> bool
(** True only for {!Finished} runs; budget/guard-aborted runs carry partial
    state and must not contribute speedups. *)

val termination_to_string : termination -> string

val speedup : baseline:t -> t -> float
(** [speedup ~baseline r] is baseline work over [r]'s makespan; 0 for DNF
    and for budget/guard-aborted runs. *)

val overhead_pct : t -> float
(** Overhead of a sequential-with-overheads run against its own pure work,
    in percent. *)

val faults_injected : t -> int
(** Total fault events the run's {!Fault_injector} injected (0 without a
    fault plan). *)

val downgrades : t -> int
(** Watchdog fallbacks from an interrupt mechanism to software polling. *)

val degraded : t -> bool
(** True when at least one worker was downgraded during the run. *)

val fingerprints_close : ?tol:float -> t -> t -> bool
(** Relative comparison (default tolerance 1e-6) — parallel reductions
    reassociate floating-point sums. *)
