type event =
  | Resume of (unit, unit) Effect.Deep.continuation * int
  | Callback of (unit -> unit)

exception Deadlock of string

exception Budget_exceeded of { budget : int; time : int }

exception Guard_stop of string

(* Binary min-heap on (time, seq); seq breaks ties FIFO for determinism. *)
module Heap = struct
  type entry = { time : int; seq : int; ev : event }
  type t = { mutable arr : entry array; mutable size : int }

  let dummy = { time = 0; seq = 0; ev = Callback ignore }
  let create () = { arr = Array.make 64 dummy; size = 0 }
  let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

  let push h e =
    if h.size = Array.length h.arr then begin
      let bigger = Array.make (2 * h.size) dummy in
      Array.blit h.arr 0 bigger 0 h.size;
      h.arr <- bigger
    end;
    let i = ref h.size in
    h.size <- h.size + 1;
    h.arr.(!i) <- e;
    let continue = ref true in
    while !continue && !i > 0 do
      let parent = (!i - 1) / 2 in
      if less h.arr.(!i) h.arr.(parent) then begin
        let tmp = h.arr.(parent) in
        h.arr.(parent) <- h.arr.(!i);
        h.arr.(!i) <- tmp;
        i := parent
      end
      else continue := false
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.arr.(0) in
      h.size <- h.size - 1;
      h.arr.(0) <- h.arr.(h.size);
      h.arr.(h.size) <- dummy;
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && less h.arr.(l) h.arr.(!smallest) then smallest := l;
        if r < h.size && less h.arr.(r) h.arr.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = h.arr.(!smallest) in
          h.arr.(!smallest) <- h.arr.(!i);
          h.arr.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end
end

type t = {
  nworkers : int;
  clocks : int array;
  parked : (unit, unit) Effect.Deep.continuation option array;
  finished : bool array;
  heap : Heap.t;
  mutable seq : int;
  mutable live : int;
  mutable current : int;  (* worker id, or -1 in engine/callback context *)
  mutable engine_time : int;
  mutable pending_resumes : int;
  rng : Sim_rng.t;
  mutable diagnostics : (int -> string) option;
  mutable budget : int option;  (* virtual-cycle watchdog: abort past this time *)
  mutable guard : (unit -> string option) option;
  mutable guard_every : int;
  mutable guard_countdown : int;
}

type _ Effect.t += Advance : int -> unit Effect.t
type _ Effect.t += Park : unit Effect.t

let create ?(seed = 42) ~num_workers () =
  {
    nworkers = num_workers;
    clocks = Array.make num_workers 0;
    parked = Array.make num_workers None;
    finished = Array.make num_workers false;
    heap = Heap.create ();
    seq = 0;
    live = 0;
    current = -1;
    engine_time = 0;
    pending_resumes = 0;
    rng = Sim_rng.create seed;
    diagnostics = None;
    budget = None;
    guard = None;
    guard_every = 4096;
    guard_countdown = 4096;
  }

let set_diagnostics t f = t.diagnostics <- Some f

let set_budget t budget = t.budget <- Some budget

let set_guard t ?(every = 4096) f =
  t.guard <- Some f;
  t.guard_every <- Stdlib.max 1 every;
  t.guard_countdown <- t.guard_every

(* Watchdog checks on every event dispatch. The budget check fires as soon as
   virtual time passes the cap — even when the run is livelocked on events
   that keep rescheduling themselves — and the guard hook lets a caller
   abort on external conditions (wall-clock deadlines) without the engine
   depending on the clock itself. *)
let check_watchdogs t time =
  (match t.budget with
  | Some b when time > b -> raise (Budget_exceeded { budget = b; time })
  | Some _ | None -> ());
  match t.guard with
  | None -> ()
  | Some f ->
      t.guard_countdown <- t.guard_countdown - 1;
      if t.guard_countdown <= 0 then begin
        t.guard_countdown <- t.guard_every;
        match f () with Some reason -> raise (Guard_stop reason) | None -> ()
      end

(* Deadlock reports carry a per-worker snapshot (clock, park/finish state,
   plus whatever the runtime's diagnostics hook adds — deque depth, task
   nesting) so a hung run is diagnosable from the exception alone. *)
let deadlock t reason =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "%s (engine time %d)" reason t.engine_time;
  for w = 0 to t.nworkers - 1 do
    let state =
      if t.finished.(w) then "finished"
      else if Option.is_some t.parked.(w) then "parked"
      else "runnable"
    in
    let extra = match t.diagnostics with Some f -> f w | None -> "" in
    Printf.bprintf buf "\n  worker %d: clock=%d %s%s" w t.clocks.(w) state extra
  done;
  raise (Deadlock (Buffer.contents buf))

let num_workers t = t.nworkers
let rng t = t.rng
let worker_id t = t.current

let now t = if t.current >= 0 then t.clocks.(t.current) else t.engine_time

let clock_of t w = t.clocks.(w)

let push_event t time ev =
  (match ev with Resume _ -> t.pending_resumes <- t.pending_resumes + 1 | Callback _ -> ());
  Heap.push t.heap { time; seq = t.seq; ev };
  t.seq <- t.seq + 1

let advance t c =
  assert (t.current >= 0);
  assert (c >= 0);
  Effect.perform (Advance c)

let park t =
  assert (t.current >= 0);
  Effect.perform Park

let is_parked t w = Option.is_some t.parked.(w)

let unpark t w =
  match t.parked.(w) with
  | None -> ()
  | Some k ->
      t.parked.(w) <- None;
      t.clocks.(w) <- Stdlib.max t.clocks.(w) (now t);
      push_event t t.clocks.(w) (Resume (k, w))

let unpark_all t =
  for w = 0 to t.nworkers - 1 do
    unpark t w
  done

let schedule_at t ~time f = push_event t time (Callback f)

let every t ~start ~interval f =
  let alive = ref true in
  let rec arm time =
    schedule_at t ~time (fun () ->
        if !alive then begin
          f ();
          arm (time + interval)
        end)
  in
  arm start;
  fun () -> alive := false

let start_worker t w main =
  t.current <- w;
  Effect.Deep.match_with
    (fun () -> main w)
    ()
    {
      retc =
        (fun () ->
          t.finished.(w) <- true;
          t.live <- t.live - 1);
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Advance c ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  t.clocks.(w) <- t.clocks.(w) + c;
                  push_event t t.clocks.(w) (Resume (k, w)))
          | Park -> Some (fun (k : (a, unit) Effect.Deep.continuation) -> t.parked.(w) <- Some k)
          | _ -> None);
    }

let run t main =
  t.live <- t.nworkers;
  for w = 0 to t.nworkers - 1 do
    push_event t 0 (Callback (fun () -> start_worker t w main))
  done;
  let starved = ref 0 in
  let rec loop () =
    if t.live > 0 then begin
      if t.pending_resumes = 0 then begin
        (* Only callbacks remain. If every live worker is parked, no callback
           body can produce progress by itself unless it unparks someone, so
           run callbacks until one does or the heap drains. *)
        incr starved;
        if !starved > 100_000 then
          deadlock t "workers parked; callbacks firing without waking anyone";
        match Heap.pop t.heap with
        | None -> deadlock t "live workers parked and event queue empty"
        | Some { time; ev = Callback f; _ } ->
            check_watchdogs t time;
            t.current <- -1;
            t.engine_time <- time;
            f ();
            loop ()
        | Some { ev = Resume _; _ } -> assert false
      end
      else begin
        starved := 0;
        match Heap.pop t.heap with
        | None -> deadlock t "pending resumes not in heap"
        | Some { time; ev; _ } ->
            check_watchdogs t time;
            (match ev with
            | Resume (k, w) ->
                t.pending_resumes <- t.pending_resumes - 1;
                t.current <- w;
                t.engine_time <- time;
                Effect.Deep.continue k ()
            | Callback f ->
                t.current <- -1;
                t.engine_time <- time;
                f ());
            loop ()
      end
    end
  in
  loop ();
  t.current <- -1

let max_time t = Array.fold_left Stdlib.max 0 t.clocks
