type event =
  | Resume of (unit, unit) Effect.Deep.continuation * int
  | Callback of (unit -> unit)

exception Deadlock of string

exception Budget_exceeded of { budget : int; time : int }

exception Guard_stop of string

(* Binary min-heap on (time, seq); seq breaks ties FIFO for determinism.

   Stored as parallel arrays rather than an array of entry records: the
   dispatch loop is the hottest path in the simulator, and the record
   representation cost one 4-word allocation per push plus a 2-word
   [Some] per pop. With parallel arrays both are gone — [push] writes
   three flat slots ([times]/[seqs] are unboxed int arrays) and the
   caller reads the top in place with [top_time]/[top_ev] before
   [drop]ping it, so steady-state scheduling allocates nothing beyond
   the event payload itself. *)
module Heap = struct
  type t = {
    mutable times : int array;
    mutable seqs : int array;
    mutable evs : event array;
    mutable size : int;
  }

  let dummy_ev = Callback ignore

  let create () =
    {
      times = Array.make 64 0;
      seqs = Array.make 64 0;
      evs = Array.make 64 dummy_ev;
      size = 0;
    }

  let less h i j =
    h.times.(i) < h.times.(j) || (h.times.(i) = h.times.(j) && h.seqs.(i) < h.seqs.(j))

  let swap h i j =
    let t = h.times.(i) and s = h.seqs.(i) and e = h.evs.(i) in
    h.times.(i) <- h.times.(j);
    h.seqs.(i) <- h.seqs.(j);
    h.evs.(i) <- h.evs.(j);
    h.times.(j) <- t;
    h.seqs.(j) <- s;
    h.evs.(j) <- e

  let push h ~time ~seq ev =
    if h.size = Array.length h.times then begin
      let cap = 2 * h.size in
      let times = Array.make cap 0 and seqs = Array.make cap 0 and evs = Array.make cap dummy_ev in
      Array.blit h.times 0 times 0 h.size;
      Array.blit h.seqs 0 seqs 0 h.size;
      Array.blit h.evs 0 evs 0 h.size;
      h.times <- times;
      h.seqs <- seqs;
      h.evs <- evs
    end;
    let i = ref h.size in
    h.size <- h.size + 1;
    h.times.(!i) <- time;
    h.seqs.(!i) <- seq;
    h.evs.(!i) <- ev;
    let continue = ref true in
    while !continue && !i > 0 do
      let parent = (!i - 1) / 2 in
      if less h !i parent then begin
        swap h !i parent;
        i := parent
      end
      else continue := false
    done

  let is_empty h = h.size = 0

  (* Valid only when not empty; callers check [is_empty] first. *)
  let top_time h = h.times.(0)
  let top_ev h = h.evs.(0)

  let drop h =
    h.size <- h.size - 1;
    h.times.(0) <- h.times.(h.size);
    h.seqs.(0) <- h.seqs.(h.size);
    h.evs.(0) <- h.evs.(h.size);
    h.evs.(h.size) <- dummy_ev (* don't retain popped continuations *);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.size && less h l !smallest then smallest := l;
      if r < h.size && less h r !smallest then smallest := r;
      if !smallest <> !i then begin
        swap h !smallest !i;
        i := !smallest
      end
      else continue := false
    done
end

type t = {
  nworkers : int;
  clocks : int array;
  parked : (unit, unit) Effect.Deep.continuation option array;
  finished : bool array;
  heap : Heap.t;
  mutable seq : int;
  mutable dispatched : int;
  mutable live : int;
  mutable current : int;  (* worker id, or -1 in engine/callback context *)
  mutable engine_time : int;
  mutable pending_resumes : int;
  rng : Sim_rng.t;
  mutable diagnostics : (int -> string) option;
  mutable budget : int option;  (* virtual-cycle watchdog: abort past this time *)
  mutable guard : (unit -> string option) option;
  mutable guard_every : int;
  mutable guard_countdown : int;
  mutable pause_at : int option;  (* cooperative pause boundary (absolute time) *)
  mutable paused : bool;
}

type _ Effect.t += Advance : int -> unit Effect.t
type _ Effect.t += Park : unit Effect.t

let create ?(seed = 42) ~num_workers () =
  {
    nworkers = num_workers;
    clocks = Array.make num_workers 0;
    parked = Array.make num_workers None;
    finished = Array.make num_workers false;
    heap = Heap.create ();
    seq = 0;
    dispatched = 0;
    live = 0;
    current = -1;
    engine_time = 0;
    pending_resumes = 0;
    rng = Sim_rng.create seed;
    diagnostics = None;
    budget = None;
    guard = None;
    guard_every = 4096;
    guard_countdown = 4096;
    pause_at = None;
    paused = false;
  }

let set_pause_at t time = t.pause_at <- Some time

(* Disarms the boundary only: [paused] stays true so [continue_run]'s
   guard still accepts the engine (it resets the flag itself). *)
let clear_pause t = t.pause_at <- None

let paused t = t.paused

let set_diagnostics t f = t.diagnostics <- Some f

let set_budget t budget = t.budget <- Some budget

let set_guard t ?(every = 4096) f =
  t.guard <- Some f;
  t.guard_every <- Stdlib.max 1 every;
  t.guard_countdown <- t.guard_every

(* Watchdog checks on every event dispatch. The budget check fires as soon as
   virtual time passes the cap — even when the run is livelocked on events
   that keep rescheduling themselves — and the guard hook lets a caller
   abort on external conditions (wall-clock deadlines) without the engine
   depending on the clock itself. *)
let check_watchdogs t time =
  t.dispatched <- t.dispatched + 1;
  (match t.budget with
  | Some b when time > b -> raise (Budget_exceeded { budget = b; time })
  | Some _ | None -> ());
  match t.guard with
  | None -> ()
  | Some f ->
      t.guard_countdown <- t.guard_countdown - 1;
      if t.guard_countdown <= 0 then begin
        t.guard_countdown <- t.guard_every;
        match f () with Some reason -> raise (Guard_stop reason) | None -> ()
      end

(* Deadlock reports carry a per-worker snapshot (clock, park/finish state,
   plus whatever the runtime's diagnostics hook adds — deque depth, task
   nesting) so a hung run is diagnosable from the exception alone. *)
let deadlock t reason =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "%s (engine time %d)" reason t.engine_time;
  for w = 0 to t.nworkers - 1 do
    let state =
      if t.finished.(w) then "finished"
      else if Option.is_some t.parked.(w) then "parked"
      else "runnable"
    in
    let extra = match t.diagnostics with Some f -> f w | None -> "" in
    Printf.bprintf buf "\n  worker %d: clock=%d %s%s" w t.clocks.(w) state extra
  done;
  raise (Deadlock (Buffer.contents buf))

let num_workers t = t.nworkers
let rng t = t.rng
let worker_id t = t.current

let now t = if t.current >= 0 then t.clocks.(t.current) else t.engine_time

let clock_of t w = t.clocks.(w)

let push_event t time ev =
  (match ev with Resume _ -> t.pending_resumes <- t.pending_resumes + 1 | Callback _ -> ());
  Heap.push t.heap ~time ~seq:t.seq ev;
  t.seq <- t.seq + 1

let advance t c =
  assert (t.current >= 0);
  assert (c >= 0);
  Effect.perform (Advance c)

let park t =
  assert (t.current >= 0);
  Effect.perform Park

let is_parked t w = Option.is_some t.parked.(w)

let unpark t w =
  match t.parked.(w) with
  | None -> ()
  | Some k ->
      t.parked.(w) <- None;
      t.clocks.(w) <- Stdlib.max t.clocks.(w) (now t);
      push_event t t.clocks.(w) (Resume (k, w))

let unpark_all t =
  for w = 0 to t.nworkers - 1 do
    unpark t w
  done

let schedule_at t ~time f = push_event t time (Callback f)

(* One [tick] closure is allocated per timer, not per firing: rearming
   pushes the same closure again with a bumped [next], so a recurring
   timer costs only the Callback cell per tick on the hot path. *)
let every t ~start ~interval f =
  let alive = ref true in
  let next = ref start in
  let rec tick () =
    if !alive then begin
      f ();
      next := !next + interval;
      schedule_at t ~time:!next tick
    end
  in
  schedule_at t ~time:start tick;
  fun () -> alive := false

let start_worker t w main =
  t.current <- w;
  Effect.Deep.match_with
    (fun () -> main w)
    ()
    {
      retc =
        (fun () ->
          t.finished.(w) <- true;
          t.live <- t.live - 1);
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Advance c ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  t.clocks.(w) <- t.clocks.(w) + c;
                  push_event t t.clocks.(w) (Resume (k, w)))
          | Park -> Some (fun (k : (a, unit) Effect.Deep.continuation) -> t.parked.(w) <- Some k)
          | _ -> None);
    }

(* The dispatch loop, shared by [run] and [continue_run]. A pause boundary
   is checked *before* the top event is dropped or counted, so a paused
   engine holds the exact pre-dispatch state: resuming it replays the same
   dispatch sequence (and [dispatched] counts) an uninterrupted run has. *)
let run_loop t =
  let starved = ref 0 in
  let must_pause () =
    match t.pause_at with
    | None -> false
    | Some p -> (not (Heap.is_empty t.heap)) && Heap.top_time t.heap >= p
  in
  let rec loop () =
    if t.live > 0 then begin
      if must_pause () then t.paused <- true
      else if t.pending_resumes = 0 then begin
        (* Only callbacks remain. If every live worker is parked, no callback
           body can produce progress by itself unless it unparks someone, so
           run callbacks until one does or the heap drains. *)
        incr starved;
        if !starved > 100_000 then
          deadlock t "workers parked; callbacks firing without waking anyone";
        if Heap.is_empty t.heap then deadlock t "live workers parked and event queue empty";
        let time = Heap.top_time t.heap in
        (match Heap.top_ev t.heap with
        | Callback f ->
            Heap.drop t.heap;
            check_watchdogs t time;
            t.current <- -1;
            t.engine_time <- time;
            f ()
        | Resume _ -> assert false);
        loop ()
      end
      else begin
        starved := 0;
        if Heap.is_empty t.heap then deadlock t "pending resumes not in heap";
        let time = Heap.top_time t.heap in
        let ev = Heap.top_ev t.heap in
        Heap.drop t.heap;
        check_watchdogs t time;
        (match ev with
        | Resume (k, w) ->
            t.pending_resumes <- t.pending_resumes - 1;
            t.current <- w;
            t.engine_time <- time;
            Effect.Deep.continue k ()
        | Callback f ->
            t.current <- -1;
            t.engine_time <- time;
            f ());
        loop ()
      end
    end
  in
  loop ();
  t.current <- -1

let run t main =
  t.live <- t.nworkers;
  for w = 0 to t.nworkers - 1 do
    push_event t 0 (Callback (fun () -> start_worker t w main))
  done;
  run_loop t

let continue_run t =
  if not t.paused then invalid_arg "Engine.continue_run: engine is not paused";
  t.paused <- false;
  run_loop t

let max_time t = Array.fold_left Stdlib.max 0 t.clocks

let events_processed t = t.dispatched
