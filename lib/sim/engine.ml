exception Deadlock of string

exception Budget_exceeded of { budget : int; time : int }

exception Guard_stop of string

(* Events live in the calendar queue (Event_queue) as unboxed ints: an
   event is (time, seq, code), where the code identifies the payload in
   an engine-side table. Codes [0, nworkers) are worker resumes — a
   worker has at most one outstanding continuation (it is either
   running, parked, or waiting on exactly one queued resume), so the
   continuation lives in a per-worker slot and pushing a resume writes
   three flat ints plus one slot store. Codes >= nworkers are timed
   callbacks; the closure lives in a free-listed slot table. Neither
   path allocates on push or pop, so steady-state scheduling costs no
   minor words beyond closures the caller already made. *)

(* A continuation slot's empty state. Never resumed: slots are read only
   for codes the queue handed back, and each push fills the slot first.
   An immediate is a valid member of any boxed array, so this is safe
   for the GC; it is just never a valid continuation. *)
let dummy_k : (unit, unit) Effect.Deep.continuation = Obj.magic 0

let dummy_cb : unit -> unit = ignore

type t = {
  nworkers : int;
  clocks : int array;
  parked : (unit, unit) Effect.Deep.continuation option array;
  finished : bool array;
  q : Event_queue.t;
  resume_ks : (unit, unit) Effect.Deep.continuation array;  (* valid iff a resume is queued *)
  mutable cbs : (unit -> unit) array;  (* callback slots, indexed by code - nworkers *)
  mutable cb_hwm : int;  (* callback slots ever allocated *)
  mutable cb_free : int array;  (* freelist stack of callback slots *)
  mutable cb_free_len : int;
  mutable seq : int;
  mutable dispatched : int;
  mutable live : int;
  mutable current : int;  (* worker id, or -1 in engine/callback context *)
  mutable engine_time : int;
  mutable pending_resumes : int;
  rng : Sim_rng.t;
  mutable diagnostics : (int -> string) option;
  mutable budget : int option;  (* virtual-cycle watchdog: abort past this time *)
  mutable guard : (unit -> string option) option;
  mutable guard_every : int;
  mutable guard_countdown : int;
  mutable pause_at : int option;  (* cooperative pause boundary (absolute time) *)
  mutable paused : bool;
}

type _ Effect.t += Advance : int -> unit Effect.t
type _ Effect.t += Park : unit Effect.t

let create ?(seed = 42) ~num_workers () =
  {
    nworkers = num_workers;
    clocks = Array.make num_workers 0;
    parked = Array.make num_workers None;
    finished = Array.make num_workers false;
    q = Event_queue.create ();
    resume_ks = Array.make num_workers dummy_k;
    cbs = Array.make 16 dummy_cb;
    cb_hwm = 0;
    cb_free = Array.make 16 0;
    cb_free_len = 0;
    seq = 0;
    dispatched = 0;
    live = 0;
    current = -1;
    engine_time = 0;
    pending_resumes = 0;
    rng = Sim_rng.create seed;
    diagnostics = None;
    budget = None;
    guard = None;
    guard_every = 4096;
    guard_countdown = 4096;
    pause_at = None;
    paused = false;
  }

let set_pause_at t time = t.pause_at <- Some time

(* Disarms the boundary only: [paused] stays true so [continue_run]'s
   guard still accepts the engine (it resets the flag itself). *)
let clear_pause t = t.pause_at <- None

let paused t = t.paused

let set_diagnostics t f = t.diagnostics <- Some f

let set_budget t budget = t.budget <- Some budget

let set_guard t ?(every = 4096) f =
  t.guard <- Some f;
  t.guard_every <- Stdlib.max 1 every;
  t.guard_countdown <- t.guard_every

(* Watchdog checks on every event dispatch. The budget check fires as soon as
   virtual time passes the cap — even when the run is livelocked on events
   that keep rescheduling themselves — and the guard hook lets a caller
   abort on external conditions (wall-clock deadlines) without the engine
   depending on the clock itself. *)
let check_watchdogs t time =
  t.dispatched <- t.dispatched + 1;
  (match t.budget with
  | Some b when time > b -> raise (Budget_exceeded { budget = b; time })
  | Some _ | None -> ());
  match t.guard with
  | None -> ()
  | Some f ->
      t.guard_countdown <- t.guard_countdown - 1;
      if t.guard_countdown <= 0 then begin
        t.guard_countdown <- t.guard_every;
        match f () with Some reason -> raise (Guard_stop reason) | None -> ()
      end

(* Deadlock reports carry a per-worker snapshot (clock, park/finish state,
   plus whatever the runtime's diagnostics hook adds — deque depth, task
   nesting) so a hung run is diagnosable from the exception alone. *)
let deadlock t reason =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "%s (engine time %d)" reason t.engine_time;
  for w = 0 to t.nworkers - 1 do
    let state =
      if t.finished.(w) then "finished"
      else if Option.is_some t.parked.(w) then "parked"
      else "runnable"
    in
    let extra = match t.diagnostics with Some f -> f w | None -> "" in
    Printf.bprintf buf "\n  worker %d: clock=%d %s%s" w t.clocks.(w) state extra
  done;
  raise (Deadlock (Buffer.contents buf))

let num_workers t = t.nworkers
let rng t = t.rng
let worker_id t = t.current

let now t = if t.current >= 0 then t.clocks.(t.current) else t.engine_time

let clock_of t w = t.clocks.(w)

let push_resume t ~time w k =
  t.resume_ks.(w) <- k;
  t.pending_resumes <- t.pending_resumes + 1;
  Event_queue.push t.q ~time ~seq:t.seq ~code:w;
  t.seq <- t.seq + 1

let cb_slot t =
  if t.cb_free_len > 0 then begin
    t.cb_free_len <- t.cb_free_len - 1;
    t.cb_free.(t.cb_free_len)
  end
  else begin
    if t.cb_hwm = Array.length t.cbs then begin
      let cap = 2 * t.cb_hwm in
      let cbs = Array.make cap dummy_cb in
      Array.blit t.cbs 0 cbs 0 t.cb_hwm;
      t.cbs <- cbs;
      let free = Array.make cap 0 in
      Array.blit t.cb_free 0 free 0 t.cb_free_len;
      t.cb_free <- free
    end;
    let slot = t.cb_hwm in
    t.cb_hwm <- slot + 1;
    slot
  end

let push_callback t ~time f =
  let slot = cb_slot t in
  t.cbs.(slot) <- f;
  Event_queue.push t.q ~time ~seq:t.seq ~code:(t.nworkers + slot);
  t.seq <- t.seq + 1

(* Take the payload of the queue's top event out of its slot. Callers
   drop the queue entry themselves. *)
let take_callback t code =
  let slot = code - t.nworkers in
  let f = t.cbs.(slot) in
  t.cbs.(slot) <- dummy_cb (* don't retain fired closures *);
  t.cb_free.(t.cb_free_len) <- slot;
  t.cb_free_len <- t.cb_free_len + 1;
  f

let take_resume t w =
  let k = t.resume_ks.(w) in
  t.resume_ks.(w) <- dummy_k (* don't retain resumed continuations *);
  k

let advance t c =
  assert (t.current >= 0);
  assert (c >= 0);
  Effect.perform (Advance c)

let park t =
  assert (t.current >= 0);
  Effect.perform Park

let is_parked t w = Option.is_some t.parked.(w)

let unpark t w =
  match t.parked.(w) with
  | None -> ()
  | Some k ->
      t.parked.(w) <- None;
      t.clocks.(w) <- Stdlib.max t.clocks.(w) (now t);
      push_resume t ~time:t.clocks.(w) w k

let unpark_all t =
  for w = 0 to t.nworkers - 1 do
    unpark t w
  done

let schedule_at t ~time f = push_callback t ~time f

(* One [tick] closure is allocated per timer, not per firing: rearming
   pushes the same closure again with a bumped [next], so a recurring
   timer costs only its free-listed slot on the hot path. *)
let every t ~start ~interval f =
  let alive = ref true in
  let next = ref start in
  let rec tick () =
    if !alive then begin
      f ();
      next := !next + interval;
      schedule_at t ~time:!next tick
    end
  in
  schedule_at t ~time:start tick;
  fun () -> alive := false

let start_worker t w main =
  t.current <- w;
  Effect.Deep.match_with
    (fun () -> main w)
    ()
    {
      retc =
        (fun () ->
          t.finished.(w) <- true;
          t.live <- t.live - 1);
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Advance c ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  t.clocks.(w) <- t.clocks.(w) + c;
                  push_resume t ~time:t.clocks.(w) w k)
          | Park -> Some (fun (k : (a, unit) Effect.Deep.continuation) -> t.parked.(w) <- Some k)
          | _ -> None);
    }

(* The dispatch loop, shared by [run] and [continue_run]. A pause boundary
   is checked *before* the top event is dropped or counted, so a paused
   engine holds the exact pre-dispatch state: resuming it replays the same
   dispatch sequence (and [dispatched] counts) an uninterrupted run has. *)
let run_loop t =
  let starved = ref 0 in
  let must_pause () =
    match t.pause_at with
    | None -> false
    | Some p -> (not (Event_queue.is_empty t.q)) && Event_queue.top_time t.q >= p
  in
  let rec loop () =
    if t.live > 0 then begin
      if must_pause () then t.paused <- true
      else if t.pending_resumes = 0 then begin
        (* Only callbacks remain. If every live worker is parked, no callback
           body can produce progress by itself unless it unparks someone, so
           run callbacks until one does or the queue drains. *)
        incr starved;
        if !starved > 100_000 then
          deadlock t "workers parked; callbacks firing without waking anyone";
        if Event_queue.is_empty t.q then deadlock t "live workers parked and event queue empty";
        let time = Event_queue.top_time t.q in
        let code = Event_queue.top_code t.q in
        assert (code >= t.nworkers);
        let f = take_callback t code in
        Event_queue.drop t.q;
        check_watchdogs t time;
        t.current <- -1;
        t.engine_time <- time;
        f ();
        loop ()
      end
      else begin
        starved := 0;
        if Event_queue.is_empty t.q then deadlock t "pending resumes not in queue";
        let time = Event_queue.top_time t.q in
        let code = Event_queue.top_code t.q in
        Event_queue.drop t.q;
        check_watchdogs t time;
        if code < t.nworkers then begin
          let k = take_resume t code in
          t.pending_resumes <- t.pending_resumes - 1;
          t.current <- code;
          t.engine_time <- time;
          Effect.Deep.continue k ()
        end
        else begin
          let f = take_callback t code in
          t.current <- -1;
          t.engine_time <- time;
          f ()
        end;
        loop ()
      end
    end
  in
  loop ();
  t.current <- -1

let run t main =
  t.live <- t.nworkers;
  for w = 0 to t.nworkers - 1 do
    push_callback t ~time:0 (fun () -> start_worker t w main)
  done;
  run_loop t

let continue_run t =
  if not t.paused then invalid_arg "Engine.continue_run: engine is not paused";
  t.paused <- false;
  run_loop t

let max_time t = Array.fold_left Stdlib.max 0 t.clocks

let events_processed t = t.dispatched
