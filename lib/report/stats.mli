(** Small statistics helpers for the experiment harness. *)

val geomean : float list -> float
(** Geometric mean of the positive entries; 0 if none. *)

val geomean_excluding : float option list -> float * int
(** Geometric mean of the [Some] entries plus the count of excluded [None]s
    (DNF / failed trials), so callers render the exclusion explicitly
    rather than averaging a bogus value. *)

val mean : float list -> float

val median : float list -> float

val percentile : float -> float list -> float
(** [percentile p xs] is the nearest-rank p-th percentile (p in
    [\[0, 100\]]) of [xs]; 0 for the empty list. Always an observed sample
    value, so tail-latency probes stay exactly reproducible. *)

val minimum : float list -> float

val maximum : float list -> float
