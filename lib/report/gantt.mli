(** ASCII gantt chart of per-worker execution timelines. *)

val render : ?width:int -> workers:int -> makespan:int -> Obs.Trace.record list -> string
(** [render ~workers ~makespan records] draws one row per worker, one column
    per [makespan/width] cycles: '#' = executing, '.' = idle, with a
    per-worker utilization percentage and an aggregate summary. Only the
    [Interval] events in [records] contribute; they are sorted
    chronologically first ({!Obs.Trace_query.intervals}), so the rendering
    does not depend on capture order. *)

val utilization : workers:int -> makespan:int -> Obs.Trace.record list -> float
(** Aggregate busy fraction in percent. *)
