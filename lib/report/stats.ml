let geomean xs =
  let xs = List.filter (fun x -> x > 0.0) xs in
  match xs with
  | [] -> 0.0
  | _ ->
      let n = Float.of_int (List.length xs) in
      Float.exp (List.fold_left (fun acc x -> acc +. Float.log x) 0.0 xs /. n)

(* Explicit DNF/error handling: callers pass [None] for trials that must
   not contribute (did-not-finish, quarantined), and get back how many were
   excluded so tables can say so instead of silently averaging. *)
let geomean_excluding xs =
  let present = List.filter_map Fun.id xs in
  let excluded = List.length xs - List.length present in
  (geomean present, excluded)

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. Float.of_int (List.length xs)

let median = function
  | [] -> 0.0
  | xs ->
      let sorted = List.sort Float.compare xs in
      let n = List.length sorted in
      if n mod 2 = 1 then List.nth sorted (n / 2)
      else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.0

(* Nearest-rank percentile on the sorted sample: no interpolation, so the
   result is always an observed value and the deterministic perf gate can
   compare it exactly across runs. *)
let percentile p = function
  | [] -> 0.0
  | xs ->
      let sorted = List.sort Float.compare xs in
      let n = List.length sorted in
      let rank = int_of_float (Float.ceil (p /. 100.0 *. Float.of_int n)) in
      let idx = Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)) in
      List.nth sorted idx

let minimum = function [] -> 0.0 | xs -> List.fold_left Float.min Float.infinity xs

let maximum = function [] -> 0.0 | xs -> List.fold_left Float.max Float.neg_infinity xs
