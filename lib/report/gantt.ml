(* Execution intervals arrive as raw trace records in emission order
   (interval events are stamped at their *end* time). Rendering first
   extracts and chronologically sorts them via Trace_query.intervals, so the
   chart is independent of sink internals — a ring sink's per-worker merge
   and a stream sink's capture produce the same picture. *)

let utilization ~workers ~makespan records =
  if makespan <= 0 || workers <= 0 then 0.0
  else begin
    let busy =
      List.fold_left
        (fun acc (_, t0, t1, _) -> acc + Stdlib.max 0 (t1 - t0))
        0
        (Obs.Trace_query.intervals records)
    in
    100.0 *. Float.of_int busy /. Float.of_int (workers * makespan)
  end

let render ?(width = 80) ~workers ~makespan records =
  let buf = Buffer.create 4096 in
  if makespan <= 0 then Buffer.add_string buf "(empty timeline)\n"
  else begin
    let cell_cycles = Float.of_int makespan /. Float.of_int width in
    let rows = Array.init workers (fun _ -> Bytes.make width '.') in
    let busy = Array.make workers 0 in
    List.iter
      (fun (w, t0, t1, _) ->
        if w >= 0 && w < workers && t1 > t0 then begin
          busy.(w) <- busy.(w) + (t1 - t0);
          let c0 = int_of_float (Float.of_int t0 /. cell_cycles) in
          let c1 = int_of_float (Float.of_int (t1 - 1) /. cell_cycles) in
          for c = Stdlib.max 0 c0 to Stdlib.min (width - 1) c1 do
            Bytes.set rows.(w) c '#'
          done
        end)
      (Obs.Trace_query.intervals records);
    Buffer.add_string buf
      (Printf.sprintf "timeline: %d workers, %d cycles, %.1f cycles/column\n" workers makespan
         cell_cycles);
    Array.iteri
      (fun w row ->
        Buffer.add_string buf
          (Printf.sprintf "w%02d |%s| %5.1f%%\n" w (Bytes.to_string row)
             (100.0 *. Float.of_int busy.(w) /. Float.of_int makespan)))
      rows;
    Buffer.add_string buf
      (Printf.sprintf "aggregate utilization: %.1f%%\n" (utilization ~workers ~makespan records))
  end;
  Buffer.contents buf
