(** Deterministic adversarial-schedule fuzzer.

    A {!case} is a small, fully-serializable description of one stress
    run: a registry workload at a tiny scale, a seeded draw of the
    runtime knobs ({!Hbc_core.Rt_config}), a deterministic fault plan
    (heartbeat drops/jitter, steal-failure bursts, stalls), and optionally
    a {!Hbc_core.Executor.seeded_bug} (the forced-failure mode that proves
    the pipeline catches real scheduler bugs).

    Every case runs under the {!Checker} {e and} is differentially
    checked against the sequential reference's fingerprint. A failing case
    is {!shrink}'d — halve the workload, drop fault events, reset knobs —
    to a minimal case with the same failure kind, serialized as JSON that
    [hbc_repro fuzz --replay case.json] re-executes byte-identically
    (equal seeds give equal schedules). *)

type case = {
  seed : int;  (** runtime + fault-plan seed: the whole schedule *)
  workload : string;  (** registry benchmark name *)
  scale : float;
  workers : int;
  mechanism : Hbc_core.Rt_config.mechanism;
  chunk : Hbc_core.Compiled.chunk_mode;
  policy : Hbc_core.Rt_config.promotion_policy;
  leftover : Hbc_core.Rt_config.leftover_mode;
  chunk_transferring : bool;
  ac_target_polls : int;
  ac_window : int;
  plan : Sim.Fault_plan.t;  (** {!Sim.Fault_plan.none} for fault-free cases *)
  bug : Hbc_core.Executor.seeded_bug option;  (** forced-failure mode *)
  native_beat : int option;
      (** [Some n]: run on the real domains backend with a deterministic
          beat every [n] polls ({!Hb_parallel.Native_run.Every_polls});
          [None]: the virtual-time simulator. Omitted from the canonical
          JSON when [None], so pre-native repro hashes are unchanged. *)
}

type failure =
  | Violations of Checker.violation list  (** non-empty *)
  | Mismatch of { expected : float; got : float }
      (** fingerprint differs from the sequential reference *)
  | Dnf  (** exceeded the generous virtual-time cap *)
  | Crash of string  (** the run raised (deadlock, internal error, ...) *)

val failure_kind : failure -> string
(** Stable class tag used to decide whether a shrunk or replayed case
    reproduces "the same" failure: ["violation:<invariant>"] (first
    violation's invariant), ["mismatch"], ["dnf"], or ["crash"]. *)

val failure_describe : failure -> string

type outcome = {
  case : case;
  failure : failure option;
  sanitizer_summary : string;
  makespan : int;
}

val gen : Sim.Sim_rng.t -> case
(** Draw one random (bug-free) case. Equal generator states draw equal
    cases, so a whole campaign replays from its seed list. *)

val gen_native : Sim.Sim_rng.t -> case
(** Draw one random native chaos case: the domains backend under a
    deterministic [Every_polls] beat, a backend-portable fault plan
    ({!Sim.Fault_plan.random_portable}, or none), 1–4 workers and no
    seeded bug. The sanitizer and differential fingerprint check apply
    exactly as in sim mode — chaos may only change performance, never
    results. *)

(** {2 Serve-mode workload mixes}

    A {!mix} is the serve-mode analogue of a {!case}: N tenants, each with
    an arrival process (in {!Arrival.of_string} codec form — plain data,
    the sanitizer sits below the server in the dependency order), a
    workload set, weights, deadline/budget ranges, and optionally a fault
    plan marking one misbehaving tenant. [Serve.Fuzz] interprets a
    mix as a full multi-tenant serve run with sanitizers and differential
    verification on. *)

type mix_tenant = {
  mt_weight : int;
  mt_arrival : string;  (** arrival-process codec, e.g. ["poisson:5000"] *)
  mt_jobs : int;
  mt_workloads : string list;  (** registry names *)
  mt_scale : float;
  mt_workers : int;  (** pool share wanted per job *)
  mt_deadline : (int * int) option;
  mt_cycle_budget : (int * int) option;
  mt_plan : Sim.Fault_plan.t option;  (** the faulty tenant, if any *)
  mt_promotion_want : int;
}

type mix = {
  mix_seed : int;
  mix_pool : int;
  mix_queue : int;
  mix_preempt : string;
      (** preemption-policy codec ("cancel" / "pause"): what a deadline
          draw means — kill, or checkpoint-and-requeue *)
  mix_tenants : mix_tenant list;
}

val gen_mix : Sim.Sim_rng.t -> mix
(** Draw one random workload mix (2–4 tenants, at most one faulty,
    either preemption policy). Equal generator states draw equal
    mixes. *)

val mix_hash : mix -> string
(** Hex digest identifying the mix in campaign journals. *)

val mix_describe : mix -> string

val run_case : case -> outcome
(** Execute the case: sequential reference, then the heartbeat executor
    under the sanitizer with the case's fault plan (and seeded bug, if
    any). Never raises; crashes are folded into the outcome. *)

val shrink : case -> kind:string -> case * int
(** Greedily minimize the case while {!run_case} keeps failing with
    [kind]; returns the smallest case found and how many candidate runs
    were spent. The input case must itself fail with [kind]. *)

val case_to_json : case -> Obs.Json.t

val case_of_json : Obs.Json.t -> (case, string) result

val case_hash : case -> string
(** Hex digest of the canonical JSON encoding; stamped into
    {!Hbc_core.Run_request.fuzz_case} so fuzz trials never alias ordinary
    runs in the experiment journal. *)

val repro_to_json : case -> kind:string -> summary:string -> Obs.Json.t
(** The repro-file format: the case plus the failure class it must
    reproduce and a human-readable summary. *)

val repro_of_json : Obs.Json.t -> (case * string, string) result
(** Parse a repro file back into (case, expected failure kind). *)

val bug_to_string : Hbc_core.Executor.seeded_bug -> string

val bug_of_string : string -> (Hbc_core.Executor.seeded_bug, string) result
(** "duplicate-leftover" | "lose-stolen-task" | "promote-innermost". *)
